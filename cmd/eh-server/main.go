// Command eh-server serves EmptyHeaded over HTTP/JSON: concurrent datalog
// queries against a shared engine, with plan and result caching, a
// bounded worker pool (see internal/server), and optional persistence: a
// data directory it restores from on boot (mmap zero-copy, so a large
// database is serving in milliseconds) and snapshots to on SIGTERM.
//
// With -wal-dir the server keeps a write-ahead log of streaming updates
// (POST /update): every acknowledged batch is journaled under the
// configured -fsync policy before it applies, the log replays on boot
// on top of the -data-dir snapshot, and a successful snapshot truncates
// the segments it absorbed.
//
// Every request is traced through its lifecycle phases; /metrics serves
// latency histograms, /debug/queries lists recent traces, and
// -slow-query-ms enables a structured slow-query log (see
// docs/OBSERVABILITY.md). -pprof-addr serves net/http/pprof on a
// separate listener, off by default.
//
// Usage:
//
//	eh-server -addr :8080 -graph edges.txt                # serve an edge list as Edge
//	eh-server -addr :8080 -synthetic 10000 -degree 16     # serve a synthetic power-law graph
//	eh-server -addr :8080 -data-dir /data/eh              # restore on boot, snapshot on SIGTERM
//	eh-server -addr :8080 -data-dir /data/eh -wal-dir /data/eh-wal -fsync always
//	eh-server -addr :8080                                 # start empty; POST /load
//
// Quickstart once running:
//
//	curl -s localhost:8080/query -d '{"query":"TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>."}'
//	curl -s localhost:8080/update -d '{"name":"Edge","inserts":[[1,2],[2,3]]}'
//	curl -s localhost:8080/snapshot -d '{}'               # persist now (with -data-dir)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/obs"
	"emptyheaded/internal/server"
	"emptyheaded/internal/storage"
	"emptyheaded/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	graphPath := flag.String("graph", "", "edge list file served as relation Edge")
	name := flag.String("name", "Edge", "relation name for the startup graph")
	directed := flag.Bool("directed", false, "load the startup graph as directed")
	synthetic := flag.Int("synthetic", 0, "serve a synthetic power-law graph with this many vertices (when no -graph)")
	degree := flag.Int("degree", 16, "average degree of the synthetic graph")
	seed := flag.Int64("seed", 1, "synthetic graph seed")
	dataDir := flag.String("data-dir", "", "snapshot directory: auto-restore on boot, snapshot on SIGTERM, default for /snapshot and /restore")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: journal /update batches, replay on boot, truncate on snapshot")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (durable per batch), interval, or off")
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "flush cadence for -fsync interval")
	compactRatio := flag.Float64("compact-ratio", core.DefaultCompactRatio, "overlay/base row ratio that triggers background compaction (0 disables)")
	compactMin := flag.Int("compact-min", core.DefaultCompactMin, "minimum overlay rows before compaction is considered")
	workers := flag.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission gate size (0 = 4x workers)")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max time a request waits for a worker slot")
	planCache := flag.Int("plan-cache", 256, "plan cache entries")
	resultCache := flag.Int("result-cache", 128, "result cache entries")
	timeout := flag.Duration("query-timeout", 0, "per-query execution timeout (0 = none)")
	queryDeadline := flag.Duration("query-deadline", 30*time.Second, "per-request wall-clock deadline: queries past it get 504 (0 = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive durability failures before entering read-only degraded mode (0 = default 3, <0 disables)")
	breakerProbe := flag.Duration("breaker-probe", 0, "degraded-mode recovery probe interval (0 = default 1s)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on 503 shed/degraded responses (0 = default 1s)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (e.g. 127.0.0.1:6060; empty = disabled)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log requests slower than this many milliseconds as slow_query events (0 = disabled)")
	slowQueryLog := flag.String("slow-query-log", "", "slow-query log file, appended (default stderr); superseded by -event-log")
	eventLog := flag.String("event-log", "", "unified structured event log file, appended (default: the -slow-query-log file, else stderr)")
	eventLogMaxMB := flag.Int("event-log-max-mb", 64, "rotate the event log when it exceeds this many MiB (0 = never)")
	eventLogKeep := flag.Int("event-log-keep", 3, "rotated event-log files retained")
	workloadCap := flag.Int("workload-cap", 0, "fingerprints retained in the workload registry (0 = default 256)")
	noWorkload := flag.Bool("no-workload-stats", false, "disable the workload profiler (per-fingerprint stats, relation heat, default kernel-counter collection)")
	traceRing := flag.Int("trace-ring", 0, "completed request traces retained for /debug/queries (0 = default 128)")
	provRing := flag.Int("prov-ring", 0, "provenance records retained for /debug/provenance (0 = default 256)")
	auditFraction := flag.Float64("audit-fraction", 0, "fraction of cached serves re-executed and compared by the background result-cache auditor (0 disables; POST /debug/audit sweeps on demand)")
	noProvenance := flag.Bool("no-provenance", false, "disable determination-provenance recording (/debug/provenance, result lineage)")
	flag.Parse()

	eng := core.New()
	eng.Opts.Timeout = *timeout

	var slowW io.Writer
	if *slowQueryMS > 0 && *slowQueryLog != "" {
		f, err := os.OpenFile(*slowQueryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(fmt.Errorf("slow-query log %s: %w", *slowQueryLog, err))
		}
		defer f.Close()
		slowW = f
	}
	// The unified event log: -event-log gets a size-rotated file; without
	// it, events share the slow-query writer (or stderr), unrotated.
	var events *obs.EventLog
	if *eventLog != "" {
		el, err := obs.OpenEventLog(*eventLog, int64(*eventLogMaxMB)<<20, *eventLogKeep)
		if err != nil {
			fatal(err)
		}
		defer el.Close()
		events = el
	} else if slowW != nil {
		events = obs.NewEventLog(slowW)
	} else {
		events = obs.NewEventLog(os.Stderr)
	}

	// The server and its listener come up before the data loads: /healthz
	// answers liveness immediately and /readyz reports boot progress
	// (loading → restoring → replaying-wal → ready) while a large restore
	// or WAL replay runs, so orchestrators can distinguish a slow boot
	// from a dead process.
	s := server.New(eng, server.Config{
		Workers:              *workers,
		QueueDepth:           *queue,
		QueueWait:            *queueWait,
		PlanCacheSize:        *planCache,
		ResultCacheSize:      *resultCache,
		DataDir:              *dataDir,
		TraceRing:            *traceRing,
		SlowQueryThreshold:   time.Duration(*slowQueryMS) * time.Millisecond,
		SlowQueryLog:         slowW,
		QueryDeadline:        *queryDeadline,
		RetryAfter:           *retryAfter,
		BreakerThreshold:     *breakerThreshold,
		BreakerProbe:         *breakerProbe,
		WorkloadCap:          *workloadCap,
		DisableWorkloadStats: *noWorkload,
		Events:               events,
		ProvenanceRing:       *provRing,
		AuditFraction:        *auditFraction,
		DisableProvenance:    *noProvenance,
	})
	s.SetBootPhase("loading")
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	lnErr := make(chan error, 1)
	go func() { lnErr <- httpSrv.Serve(ln) }()
	log.Printf("eh-server: listening on %s", *addr)

	// Boot order: a restorable snapshot in -data-dir wins (that is the
	// deploy-survival path); otherwise fall back to the seed flags.
	switch {
	case *dataDir != "" && storage.Exists(*dataDir):
		s.SetBootPhase("restoring")
		t0 := time.Now()
		cat, err := eng.Restore(*dataDir)
		if err != nil {
			fatal(fmt.Errorf("restore %s: %w", *dataDir, err))
		}
		log.Printf("eh-server: restored %s from %s in %v", cat, *dataDir, time.Since(t0))
	case *graphPath != "":
		f, err := os.Open(*graphPath)
		if err != nil {
			fatal(err)
		}
		if err := eng.LoadEdgeList(*name, f, !*directed); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
	case *synthetic > 0:
		g := gen.PowerLaw(*synthetic, *synthetic**degree, 2.1, *seed)
		eng.LoadGraph(*name, g)
	}
	// Loads are not journaled — the WAL covers /update batches only. A
	// database seeded from flags would therefore not survive a crash, so
	// with both -data-dir and -wal-dir configured the seed is snapshotted
	// immediately: base in the snapshot, updates in the log.
	if *walDir != "" && *dataDir != "" && !storage.Exists(*dataDir) && len(eng.Relations()) > 0 {
		t0 := time.Now()
		cat, err := eng.Snapshot(*dataDir)
		if err != nil {
			fatal(fmt.Errorf("initial snapshot %s: %w", *dataDir, err))
		}
		log.Printf("eh-server: seed snapshot %s to %s in %v", cat, *dataDir, time.Since(t0))
	}
	// WAL opens after the snapshot restore, so its records replay on top
	// of the restored state (records the snapshot already absorbed were
	// truncated away; survivors re-apply idempotently).
	if *walDir != "" {
		s.SetBootPhase("replaying-wal")
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		eng.SetAutoCompact(*compactRatio, *compactMin)
		st, err := eng.OpenWAL(core.WALConfig{
			Dir:          *walDir,
			Sync:         policy,
			SyncInterval: *fsyncInterval,
			SnapshotDir:  *dataDir,
		})
		if err != nil {
			fatal(fmt.Errorf("wal %s: %w", *walDir, err))
		}
		log.Printf("eh-server: wal %s (fsync=%s): replayed %d records (%d rows, %d relations) in %dus%s",
			*walDir, policy, st.Records, st.Rows, st.Relations, st.DurationUS,
			map[bool]string{true: ", torn tail truncated", false: ""}[st.Truncated])
	}
	for _, ri := range eng.Relations() {
		log.Printf("eh-server: relation %s arity=%d cardinality=%d", ri.Name, ri.Arity, ri.Cardinality)
	}
	s.SetBootPhase("ready")

	// Profiling stays off the serving listener: enabling it never
	// exposes pprof to query clients, and a wedged worker pool can't
	// starve the endpoints needed to debug it.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("eh-server: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("eh-server: pprof listener: %v", err)
			}
		}()
	}

	// SIGTERM/SIGINT: stop accepting requests, drain in-flight ones, then
	// snapshot to -data-dir so the next boot restores instead of
	// re-parsing text loads.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("eh-server: shutdown signal, draining")
		// Flip readiness first so load balancers stop routing here while
		// in-flight requests drain.
		s.SetBootPhase("draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("eh-server: shutdown: %v", err)
		}
		if *dataDir != "" {
			t0 := time.Now()
			cat, err := eng.Snapshot(*dataDir)
			if err != nil {
				log.Printf("eh-server: final snapshot failed: %v", err)
			} else {
				log.Printf("eh-server: snapshotted %s to %s in %v", cat, *dataDir, time.Since(t0))
			}
		}
		// Close the WAL last: if the final snapshot failed (or there is
		// no data dir), its records remain the recovery source.
		if *walDir != "" {
			if err := eng.CloseWAL(); err != nil {
				log.Printf("eh-server: wal close: %v", err)
			}
		}
		s.Close()
	}()

	if err := <-lnErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eh-server:", err)
	os.Exit(1)
}
