// Command eh-bench regenerates the tables and figures of the paper's
// evaluation (§5, Appendices A-B) on the synthetic dataset stand-ins, and
// doubles as a load generator against a live eh-server.
//
// Usage:
//
//	eh-bench [-exp table5,fig7] [-quick] [-reps 3]
//	eh-bench -serve-url http://localhost:8080 [-serve-duration 5s] [-serve-concurrency 8] [-serve-mix queries.txt]
//	eh-bench -serve-url http://localhost:8080 -mixed [-update-concurrency 2] [-update-batch 64] [-delete-frac 0.5]
//
// With no -exp flag every experiment runs in paper order. With -serve-url
// the experiments are skipped: the query mix (one datalog program per
// line of -serve-mix, or the built-in triangle/path/degree mix over Edge)
// is replayed against the server and throughput plus latency percentiles
// are reported. Adding -mixed interleaves a streaming-update workload
// (random insert/delete batches against /update) with the query replay
// and additionally reports update throughput, update latency, and the
// server's WAL/compaction counters over the run — query p50/p99 under
// churn is the headline number.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"emptyheaded/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(bench.IDs(), ",")+") or 'all'")
	quick := flag.Bool("quick", false, "smaller sweeps for fast runs")
	reps := flag.Int("reps", 3, "repetitions per measurement (fastest kept)")
	serveURL := flag.String("serve-url", "", "load-generator mode: replay a query mix against this eh-server base URL")
	serveDuration := flag.Duration("serve-duration", 5*time.Second, "load-generator measurement window")
	serveConcurrency := flag.Int("serve-concurrency", 8, "load-generator client workers")
	serveMix := flag.String("serve-mix", "", "file with one datalog program per line (default: built-in triangle/path/degree mix)")
	serveRelation := flag.String("serve-relation", "Edge", "edge relation name used by the built-in mix")
	serveNoCache := flag.Bool("serve-nocache", false, "set no_cache on requests (measure execution, not result-cache hits)")
	mixed := flag.Bool("mixed", false, "mixed workload: stream /update batches alongside the query replay (needs -serve-url)")
	updateConcurrency := flag.Int("update-concurrency", 2, "update workers for -mixed")
	updateBatch := flag.Int("update-batch", 64, "rows per update batch for -mixed")
	deleteFrac := flag.Float64("delete-frac", 0.5, "fraction of -mixed update batches that delete a previously inserted batch")
	keySpace := flag.Int("keyspace", 1<<20, "vertex id space for -mixed random edges")
	seed := flag.Int64("update-seed", 1, "seed for the -mixed update stream")
	serveRetries := flag.Int("serve-retries", 3, "total attempts per shed (503/429) request, first included; 1 disables retries")
	flag.Parse()

	// Resolve the query mix once; both serve modes honor -serve-mix.
	queries := bench.DefaultQueryMix(*serveRelation)
	if *serveURL != "" && *serveMix != "" {
		data, err := os.ReadFile(*serveMix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eh-bench:", err)
			os.Exit(1)
		}
		queries = queries[:0]
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
				queries = append(queries, line)
			}
		}
		if len(queries) == 0 {
			fmt.Fprintf(os.Stderr, "eh-bench: %s contains no queries\n", *serveMix)
			os.Exit(2)
		}
	}

	if *mixed {
		if *serveURL == "" {
			fmt.Fprintln(os.Stderr, "eh-bench: -mixed requires -serve-url")
			os.Exit(2)
		}
		rep, err := bench.RunMixed(bench.MixedConfig{
			URL:               *serveURL,
			Queries:           queries,
			Relation:          *serveRelation,
			QueryConcurrency:  *serveConcurrency,
			UpdateConcurrency: *updateConcurrency,
			Duration:          *serveDuration,
			BatchRows:         *updateBatch,
			DeleteFrac:        *deleteFrac,
			KeySpace:          *keySpace,
			Seed:              *seed,
			NoResultCache:     *serveNoCache,
			Retry:             bench.RetryPolicy{MaxAttempts: *serveRetries},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "eh-bench:", err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
		return
	}

	if *serveURL != "" {
		rep, err := bench.RunLoad(bench.LoadConfig{
			URL:           *serveURL,
			Queries:       queries,
			Concurrency:   *serveConcurrency,
			Duration:      *serveDuration,
			NoResultCache: *serveNoCache,
			Retry:         bench.RetryPolicy{MaxAttempts: *serveRetries},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "eh-bench:", err)
			os.Exit(1)
		}
		fmt.Println(rep.Format())
		return
	}

	cfg := bench.DefaultConfig
	cfg.Quick = *quick
	cfg.Reps = *reps

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		f, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "eh-bench: unknown experiment %q (known: %s)\n",
				id, strings.Join(bench.IDs(), ","))
			os.Exit(2)
		}
		t := f(cfg)
		fmt.Println(t.Format())
	}
}
