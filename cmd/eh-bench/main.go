// Command eh-bench regenerates the tables and figures of the paper's
// evaluation (§5, Appendices A-B) on the synthetic dataset stand-ins.
//
// Usage:
//
//	eh-bench [-exp table5,fig7] [-quick] [-reps 3]
//
// With no -exp flag every experiment runs in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"emptyheaded/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(bench.IDs(), ",")+") or 'all'")
	quick := flag.Bool("quick", false, "smaller sweeps for fast runs")
	reps := flag.Int("reps", 3, "repetitions per measurement (fastest kept)")
	flag.Parse()

	cfg := bench.DefaultConfig
	cfg.Quick = *quick
	cfg.Reps = *reps

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		f, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "eh-bench: unknown experiment %q (known: %s)\n",
				id, strings.Join(bench.IDs(), ","))
			os.Exit(2)
		}
		t := f(cfg)
		fmt.Println(t.Format())
	}
}
