// Command eh-snap converts datasets to EmptyHeaded binary snapshots
// offline and inspects existing snapshots — so a production eh-server
// boots straight into mmap restore without ever paying a text parse.
//
// Usage:
//
//	eh-snap -out /data/eh -edges edges.txt [-undirected] [-name Edge]
//	    convert a "src dst" edge list
//	eh-snap -out /data/eh -tuples rel.txt -name R -arity 3 [-op SUM]
//	    convert a whitespace-separated tuple file (arity integer columns,
//	    plus one trailing float annotation column when -op is set)
//	eh-snap -out /data/eh -synthetic 100000 -degree 16 [-seed 1]
//	    generate and snapshot a synthetic power-law graph
//	eh-snap -stats /data/eh
//	    print catalog stats for an existing snapshot
//
// When -out already holds a snapshot, the existing relations are
// restored first and the new relation is added alongside them (use
// -replace to start fresh), so one snapshot directory can accumulate a
// whole multi-relation database across invocations. Accumulating
// another -edges load onto a dictionary-encoded snapshot is rejected:
// it would rebuild the shared identifier dictionary from the new file
// alone and corrupt the decoding of the existing relations.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/storage"
)

func main() {
	out := flag.String("out", "", "snapshot directory to write")
	statsDir := flag.String("stats", "", "print catalog stats for this snapshot directory and exit")
	edges := flag.String("edges", "", "edge list file (\"src dst\" per line)")
	tuples := flag.String("tuples", "", "tuple file (whitespace-separated integer columns)")
	name := flag.String("name", "Edge", "relation name")
	arity := flag.Int("arity", 2, "tuple file arity (integer key columns)")
	opName := flag.String("op", "", "annotation semiring for -tuples (SUM, COUNT, MIN, MAX); the file carries one trailing float column")
	undirected := flag.Bool("undirected", false, "load -edges undirected")
	synthetic := flag.Int("synthetic", 0, "generate a synthetic power-law graph with this many vertices")
	degree := flag.Int("degree", 16, "average degree of the synthetic graph")
	seed := flag.Int64("seed", 1, "synthetic graph seed")
	replace := flag.Bool("replace", false, "start from an empty database even if -out already holds a snapshot")
	flag.Parse()

	if *statsDir != "" {
		printStats(*statsDir)
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-out is required (or -stats to inspect)"))
	}

	eng := core.New()
	accumulated := false
	if !*replace && storage.Exists(*out) {
		t0 := time.Now()
		cat, err := eng.Restore(*out)
		if err != nil {
			fatal(fmt.Errorf("restore existing snapshot %s: %w", *out, err))
		}
		fmt.Printf("restored existing %s in %v\n", cat, time.Since(t0))
		accumulated = true
	}
	// An -edges load rebuilds the identifier dictionary from its own file
	// and would replace the database-wide dictionary the restored
	// relations were encoded under, silently corrupting their decoding.
	// Accumulation therefore only accepts raw-coded sources (-tuples,
	// -synthetic) next to a dictionary-encoded snapshot.
	if accumulated && *edges != "" && eng.DB.Dict() != nil {
		fatal(fmt.Errorf("%s already holds a dictionary-encoded snapshot; adding -edges would replace its dictionary and corrupt existing relations (use -replace to start fresh, or -tuples for raw-coded data)", *out))
	}

	t0 := time.Now()
	switch {
	case *edges != "":
		f, err := os.Open(*edges)
		if err != nil {
			fatal(err)
		}
		if err := eng.LoadEdgeList(*name, f, *undirected); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
	case *tuples != "":
		if err := loadTuples(eng, *tuples, *name, *arity, *opName); err != nil {
			fatal(err)
		}
	case *synthetic > 0:
		eng.LoadGraph(*name, gen.PowerLaw(*synthetic, *synthetic**degree, 2.1, *seed))
	default:
		fatal(fmt.Errorf("one of -edges, -tuples or -synthetic is required"))
	}
	loadD := time.Since(t0)

	t0 = time.Now()
	cat, err := eng.Snapshot(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded in %v, snapshotted in %v\n", loadD, time.Since(t0))
	printCatalog(cat)
}

// loadTuples parses a whitespace-separated tuple file: arity integer
// columns, plus one trailing float annotation column when op is set.
func loadTuples(eng *core.Engine, path, name string, arity int, opName string) error {
	if arity <= 0 {
		return fmt.Errorf("-arity must be positive")
	}
	var op semiring.Op
	annotated := opName != ""
	if annotated {
		var err error
		if op, err = semiring.ParseOp(opName); err != nil {
			return err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	cols := make([][]uint32, arity)
	var anns []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		want := arity
		if annotated {
			want++
		}
		if len(fields) != want {
			return fmt.Errorf("%s:%d: %d fields, want %d", path, lineNo, len(fields), want)
		}
		for c := 0; c < arity; c++ {
			v, err := strconv.ParseUint(fields[c], 10, 32)
			if err != nil {
				return fmt.Errorf("%s:%d: column %d: %v", path, lineNo, c, err)
			}
			cols[c] = append(cols[c], uint32(v))
		}
		if annotated {
			a, err := strconv.ParseFloat(fields[arity], 64)
			if err != nil {
				return fmt.Errorf("%s:%d: annotation: %v", path, lineNo, err)
			}
			anns = append(anns, a)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !annotated {
		op = semiring.None
	}
	return eng.AddRelationColumns(name, cols, anns, op)
}

func printStats(dir string) {
	cat, err := storage.ReadCatalog(dir)
	if err != nil {
		fatal(err)
	}
	printCatalog(cat)
}

func printCatalog(cat *storage.Catalog) {
	fmt.Println(cat)
	fmt.Printf("%-20s %5s %12s %6s %10s %10s %8s %12s\n", "RELATION", "ARITY", "CARDINALITY", "OP", "EPOCH", "WATERMARK", "CRC32", "BYTES")
	for _, r := range cat.Relations {
		op := r.Op
		if !r.Annotated {
			op = "-"
		}
		// WALSeq is the relation's WAL applied-seq watermark; "-" marks
		// epoch-only lineage (never journaled, or a pre-provenance
		// snapshot).
		wm := "-"
		if r.WALSeq > 0 {
			wm = fmt.Sprintf("%d", r.WALSeq)
		}
		fmt.Printf("%-20s %5d %12d %6s %10d %10s %08x %12d\n",
			r.Name, r.Arity, r.Cardinality, op, r.Epoch, wm, r.Checksum, r.Bytes)
	}
	if cat.Dict != nil {
		fmt.Printf("%-20s %5s %12d %6s %10d %10s %08x %12d\n",
			"(dictionary)", "-", cat.Dict.Count, "-", cat.DictEpoch, "-", cat.Dict.Checksum, cat.Dict.Bytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eh-snap:", err)
	os.Exit(1)
}
