// Command eh-gen emits synthetic graphs as edge lists: Chung-Lu power-law
// graphs (the dataset stand-ins of DESIGN.md) or Erdős–Rényi graphs, or a
// named dataset preset from Table 3.
//
// Usage:
//
//	eh-gen -type powerlaw -n 10000 -m 100000 -exponent 2.3 -seed 1 > g.txt
//	eh-gen -preset gplus > gplus.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"emptyheaded/internal/datasets"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
)

func main() {
	typ := flag.String("type", "powerlaw", "graph model: powerlaw or er")
	n := flag.Int("n", 10000, "vertex count")
	m := flag.Int("m", 100000, "undirected edge count")
	exponent := flag.Float64("exponent", 2.3, "power-law degree exponent")
	seed := flag.Int64("seed", 1, "random seed")
	preset := flag.String("preset", "", "named dataset preset (gplus, higgs, livejournal, orkut, patents, twitter)")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *preset != "":
		if _, ok := datasets.ByName(*preset); !ok {
			fmt.Fprintf(os.Stderr, "eh-gen: unknown preset %q\n", *preset)
			os.Exit(2)
		}
		g = datasets.Load(*preset)
	case *typ == "powerlaw":
		g = gen.PowerLaw(*n, *m, *exponent, *seed)
	case *typ == "er":
		g = gen.ErdosRenyi(*n, *m, *seed)
	default:
		fmt.Fprintf(os.Stderr, "eh-gen: unknown type %q\n", *typ)
		os.Exit(2)
	}
	if err := g.WriteEdgeList(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eh-gen:", err)
		os.Exit(1)
	}
}
