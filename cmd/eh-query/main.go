// Command eh-query runs a datalog query against an edge-list graph.
//
// Usage:
//
//	eh-query -graph edges.txt [-directed] [-explain] [-analyze] [-limit 20] 'TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.'
//
// The graph is registered as the relation Edge (undirected by default:
// each edge is loaded in both directions). -explain prints the physical
// plan without running; -analyze runs the query with live kernel
// counters and prints the plan annotated with actuals (EXPLAIN ANALYZE)
// before the results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emptyheaded"
)

func main() {
	graphPath := flag.String("graph", "", "edge list file (src dst per line)")
	directed := flag.Bool("directed", false, "load edges as directed")
	explain := flag.Bool("explain", false, "print the physical plan instead of running")
	analyze := flag.Bool("analyze", false, "run with live kernel counters and print the plan annotated with actuals")
	limit := flag.Int("limit", 20, "max result tuples to print")
	flag.Parse()

	if *graphPath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eh-query -graph edges.txt [flags] '<datalog query>'")
		os.Exit(2)
	}
	query := flag.Arg(0)

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	eng := emptyheaded.New()
	if err := eng.LoadEdgeList("Edge", f, !*directed); err != nil {
		fatal(err)
	}
	if *explain {
		plan, err := eng.Explain(query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}
	t0 := time.Now()
	var res *emptyheaded.Result
	if *analyze {
		var annotated string
		res, annotated, err = eng.RunAnalyze(query)
		if err != nil {
			fatal(err)
		}
		if annotated == "" {
			fmt.Println("(no pinned plan: multi-rule or recursive program, counters unavailable)")
		} else {
			fmt.Print(annotated)
			fmt.Println()
		}
	} else {
		res, err = eng.Run(query)
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(t0)
	if res.Trie.Arity == 0 {
		fmt.Printf("%s = %g\n", res.Name, res.Scalar())
	} else {
		fmt.Printf("%s: %d tuples\n", res.Name, res.Cardinality())
		n := 0
		res.ForEach(func(tp []uint32, ann float64) {
			if n >= *limit {
				return
			}
			n++
			fmt.Printf("  %v", tp)
			if res.Trie.Annotated {
				fmt.Printf(" : %g", ann)
			}
			fmt.Println()
		})
		if res.Cardinality() > *limit {
			fmt.Printf("  ... (%d more)\n", res.Cardinality()-*limit)
		}
	}
	fmt.Printf("elapsed: %s\n", elapsed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eh-query:", err)
	os.Exit(1)
}
