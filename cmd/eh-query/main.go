// Command eh-query runs a datalog query against an edge-list graph, or
// against a live eh-server.
//
// Usage:
//
//	eh-query -graph edges.txt [-directed] [-explain] [-analyze] [-algo auto] [-limit 20] 'TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.'
//	eh-query -serve-url http://localhost:8080 [-limit 20] 'TC(;w:long) :- ...'
//
// The graph is registered as the relation Edge (undirected by default:
// each edge is loaded in both directions). -explain prints the physical
// plan without running; -analyze runs the query with live kernel
// counters and prints the plan annotated with actuals (EXPLAIN ANALYZE)
// — including the per-level kernel routes (layout pair + algorithm) the
// adaptive set layouts dispatched to — before the results. -algo pins
// the uint∩uint intersection algorithm (auto|merge|shuffle|galloping);
// with -serve-url it travels as the /query "kernel" hint.
//
// With -serve-url the query is POSTed to the server's /query endpoint
// instead of executing locally. Shed responses (503 overload or
// degraded, 429) are retried with jittered exponential backoff honoring
// the server's Retry-After hint — see docs/RESILIENCE.md; -serve-retries
// bounds the attempts.
//
// With -top (and -serve-url, no query argument) the server's workload
// profiler is fetched from /debug/workload and rendered as a table of
// the hottest query fingerprints — count, latency quantiles, cache-hit
// rate, rows — sorted by -sort (count|latency|rows), -n rows deep.
//
// With -why "T(1,2,3)" (local -graph mode) the query's output tuple is
// probed for provenance: is it derivable, through which contributing
// rows of each body relation (classified base vs streamed overlay), and
// against what lineage — see docs/PROVENANCE.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"emptyheaded"
	"emptyheaded/internal/bench"
	"emptyheaded/internal/core"
	"emptyheaded/internal/set"
)

func main() {
	graphPath := flag.String("graph", "", "edge list file (src dst per line)")
	directed := flag.Bool("directed", false, "load edges as directed")
	explain := flag.Bool("explain", false, "print the physical plan instead of running")
	analyze := flag.Bool("analyze", false, "run with live kernel counters and print the plan annotated with actuals")
	limit := flag.Int("limit", 20, "max result tuples to print")
	serveURL := flag.String("serve-url", "", "POST the query to this eh-server base URL instead of executing locally")
	serveRetries := flag.Int("serve-retries", 3, "total attempts per shed (503/429) response, first included; 1 disables retries")
	top := flag.Bool("top", false, "render the server's workload profile (requires -serve-url, no query argument)")
	topSort := flag.String("sort", "count", "workload sort key for -top: count, latency or rows")
	topN := flag.Int("n", 20, "fingerprints shown by -top")
	why := flag.String("why", "", `probe why this output tuple (e.g. "T(1,2,3)") is in the result: per-atom contributing rows, base vs overlay, with lineage (requires -graph)`)
	algoName := flag.String("algo", "", "pin the uint∩uint intersection algorithm: auto|merge|shuffle|galloping (default: the skew-based hybrid rule)")
	flag.Parse()

	algo, err := set.ParseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}

	if *top {
		if *serveURL == "" || flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: eh-query -serve-url http://host:8080 -top [-sort count|latency|rows] [-n 20]")
			os.Exit(2)
		}
		workloadTop(*serveURL, *topSort, *topN, *serveRetries)
		return
	}

	if (*graphPath == "" && *serveURL == "") || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eh-query -graph edges.txt [flags] '<datalog query>'")
		fmt.Fprintln(os.Stderr, "       eh-query -serve-url http://host:8080 [flags] '<datalog query>'")
		fmt.Fprintln(os.Stderr, "       eh-query -serve-url http://host:8080 -top")
		os.Exit(2)
	}
	query := flag.Arg(0)

	if *serveURL != "" {
		if *why != "" {
			fatal(fmt.Errorf("-why probes locally; it cannot be combined with -serve-url"))
		}
		remote(*serveURL, query, *limit, *serveRetries, *algoName, *analyze)
		return
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	eng := emptyheaded.New(emptyheaded.WithKernelAlgo(algo))
	if err := eng.LoadEdgeList("Edge", f, !*directed); err != nil {
		fatal(err)
	}
	if *explain {
		plan, err := eng.Explain(query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}
	if *why != "" {
		rep, err := eng.Why(query, *why)
		if err != nil {
			fatal(err)
		}
		printWhy(rep)
		return
	}
	t0 := time.Now()
	var res *emptyheaded.Result
	if *analyze {
		var annotated string
		res, annotated, err = eng.RunAnalyze(query)
		if err != nil {
			fatal(err)
		}
		if annotated == "" {
			fmt.Println("(no pinned plan: multi-rule or recursive program, counters unavailable)")
		} else {
			fmt.Print(annotated)
			fmt.Println()
		}
	} else {
		res, err = eng.Run(query)
		if err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(t0)
	if res.Trie.Arity == 0 {
		fmt.Printf("%s = %g\n", res.Name, res.Scalar())
	} else {
		fmt.Printf("%s: %d tuples\n", res.Name, res.Cardinality())
		n := 0
		res.ForEach(func(tp []uint32, ann float64) {
			if n >= *limit {
				return
			}
			n++
			fmt.Printf("  %v", tp)
			if res.Trie.Annotated {
				fmt.Printf(" : %g", ann)
			}
			fmt.Println()
		})
		if res.Cardinality() > *limit {
			fmt.Printf("  ... (%d more)\n", res.Cardinality()-*limit)
		}
	}
	fmt.Printf("elapsed: %s\n", elapsed)
}

// remote posts the query to a live eh-server with the shed-retry policy
// applied and renders the JSON response in the local output format.
func remote(baseURL, query string, limit, retries int, algoName string, analyze bool) {
	req := struct {
		Query   string `json:"query"`
		Limit   int    `json:"limit,omitempty"`
		Analyze bool   `json:"analyze,omitempty"`
		Kernel  *struct {
			Algo string `json:"algo"`
		} `json:"kernel,omitempty"`
	}{Query: query, Limit: limit, Analyze: analyze}
	if algoName != "" {
		req.Kernel = &struct {
			Algo string `json:"algo"`
		}{Algo: algoName}
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	rc := bench.NewRetryClient(&http.Client{Timeout: 60 * time.Second},
		bench.RetryPolicy{MaxAttempts: retries})
	t0 := time.Now()
	resp, err := rc.Post(baseURL+"/query", "application/json", body)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(t0)
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(raw)
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		if n := rc.Retries(); n > 0 {
			msg = fmt.Sprintf("%s (after %d retries)", msg, n)
		}
		fatal(fmt.Errorf("server: %d: %s", resp.StatusCode, msg))
	}
	var qr struct {
		Name        string    `json:"name"`
		Cardinality int       `json:"cardinality"`
		Scalar      *float64  `json:"scalar"`
		Tuples      [][]int64 `json:"tuples"`
		Anns        []float64 `json:"anns"`
		Truncated   bool      `json:"truncated"`
		Analyze     *struct {
			Kernel string `json:"kernel"`
			Plan   string `json:"plan"`
		} `json:"analyze"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		fatal(fmt.Errorf("decode response: %w", err))
	}
	if qr.Analyze != nil && qr.Analyze.Plan != "" {
		fmt.Printf("-- kernel: %s\n", qr.Analyze.Kernel)
		fmt.Print(qr.Analyze.Plan)
		fmt.Println()
	}
	if qr.Scalar != nil {
		fmt.Printf("%s = %g\n", qr.Name, *qr.Scalar)
	} else {
		fmt.Printf("%s: %d tuples%s\n", qr.Name, qr.Cardinality,
			map[bool]string{true: " (truncated)", false: ""}[qr.Truncated])
		for i, tp := range qr.Tuples {
			fmt.Printf("  %v", tp)
			if i < len(qr.Anns) {
				fmt.Printf(" : %g", qr.Anns[i])
			}
			fmt.Println()
		}
		if qr.Cardinality > len(qr.Tuples) {
			fmt.Printf("  ... (%d more)\n", qr.Cardinality-len(qr.Tuples))
		}
	}
	if n := rc.Retries(); n > 0 {
		fmt.Printf("retries: %d\n", n)
	}
	fmt.Printf("elapsed: %s\n", elapsed)
}

// workloadTop fetches /debug/workload and renders the hottest
// fingerprints as a table.
func workloadTop(baseURL, sortKey string, n, retries int) {
	rc := bench.NewRetryClient(&http.Client{Timeout: 30 * time.Second},
		bench.RetryPolicy{MaxAttempts: retries})
	resp, err := rc.Get(fmt.Sprintf("%s/debug/workload?sort=%s&n=%d", baseURL, sortKey, n))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(raw)
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		fatal(fmt.Errorf("server: %d: %s", resp.StatusCode, msg))
	}
	var wl struct {
		Totals struct {
			Fingerprints int   `json:"fingerprints"`
			Observed     int64 `json:"observed"`
			ResultHits   int64 `json:"result_hits"`
			PlanHits     int64 `json:"plan_hits"`
			Misses       int64 `json:"misses"`
			Errors       int64 `json:"errors"`
		} `json:"totals"`
		Fingerprints []struct {
			Fingerprint string           `json:"fingerprint"`
			Query       string           `json:"query"`
			Count       int64            `json:"count"`
			Errors      int64            `json:"errors"`
			Routes      map[string]int64 `json:"routes"`
			AvgUS       float64          `json:"avg_us"`
			P50US       float64          `json:"p50_us"`
			P99US       float64          `json:"p99_us"`
			Rows        int64            `json:"rows"`
		} `json:"fingerprints"`
	}
	if err := json.Unmarshal(raw, &wl); err != nil {
		fatal(fmt.Errorf("decode /debug/workload: %w", err))
	}
	t := wl.Totals
	fmt.Printf("workload: %d fingerprints, %d queries observed (%d result hits, %d plan hits, %d misses, %d errors)\n",
		t.Fingerprints, t.Observed, t.ResultHits, t.PlanHits, t.Misses, t.Errors)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "COUNT\tP50\tP99\tCACHE%\tROWS\tERR\tQUERY")
	for _, fp := range wl.Fingerprints {
		hitPct := 0.0
		if fp.Count > 0 {
			// "Cache hit" for the table means the query skipped execution
			// entirely (result-cache route).
			hitPct = 100 * float64(fp.Routes["result_hit"]) / float64(fp.Count)
		}
		q := fp.Query
		if q == "" {
			q = fp.Fingerprint
		}
		if len(q) > 72 {
			q = q[:69] + "..."
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.0f%%\t%d\t%d\t%s\n",
			fp.Count, usDur(fp.P50US), usDur(fp.P99US), hitPct, fp.Rows, fp.Errors, q)
	}
	tw.Flush()
}

// printWhy renders a per-tuple provenance probe: derivability, each
// body atom's contributing rows (base vs overlay), and the lineage of
// the relations involved.
func printWhy(rep *core.WhyReport) {
	if rep.Err != "" {
		fmt.Printf("%s: probe error: %s\n", rep.Tuple, rep.Err)
	} else if rep.Derivable {
		plural := ""
		if rep.Derivations != 1 {
			plural = "s"
		}
		fmt.Printf("%s: derivable (%d derivation%s)\n", rep.Tuple, rep.Derivations, plural)
	} else {
		fmt.Printf("%s: NOT derivable\n", rep.Tuple)
	}
	for _, a := range rep.Atoms {
		if a.Err != "" {
			fmt.Printf("  %s: %s\n", a.Pattern, a.Err)
			continue
		}
		suffix := ""
		if a.OverlayRows > 0 {
			suffix = fmt.Sprintf(", %d from overlay", a.OverlayRows)
		}
		fmt.Printf("  %s: %d matching row(s)%s\n", a.Pattern, a.Total, suffix)
		for _, row := range a.Rows {
			ann := ""
			if row.Ann != 0 {
				ann = fmt.Sprintf(" : %g", row.Ann)
			}
			fmt.Printf("    %v%s  [%s]\n", row.Tuple, ann, row.Source)
		}
		if a.Truncated {
			fmt.Printf("    ... (%d more)\n", a.Total-len(a.Rows))
		}
	}
	fmt.Println("lineage:")
	for _, rl := range rep.Relations {
		wm := "epoch-only"
		if rl.WALSeq > 0 {
			wm = fmt.Sprintf("wal_seq=%d", rl.WALSeq)
		}
		fmt.Printf("  %-20s epoch=%d overlay_gen=%d %s\n", rl.Name, rl.Epoch, rl.OverlayGen, wm)
	}
}

// usDur renders microseconds as a compact duration.
func usDur(us float64) string {
	return time.Duration(us * float64(time.Microsecond)).Round(time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eh-query:", err)
	os.Exit(1)
}
