package emptyheaded

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates the experiment via
// internal/bench (quick configuration) and logs the resulting table; run
// cmd/eh-bench for the full-size sweeps.

import (
	"testing"

	"emptyheaded/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	f, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.Config{Reps: 1, Quick: true, PairwiseBudget: 20_000_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := f(cfg)
		if i == 0 {
			b.StopTimer()
			b.Logf("\n%s", t.Format())
			b.StartTimer()
		}
	}
}

// BenchmarkTable3 regenerates the dataset inventory (Table 3).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure5 regenerates the uint-vs-bitset density sweep (Fig. 5).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6 regenerates the composite-layout sweep (Fig. 6).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates the node-ordering sweep (Fig. 7).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable4 regenerates the layout-granularity study (Table 4).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5 regenerates the triangle-counting comparison (Table 5).
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6 regenerates the PageRank comparison (Table 6).
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7 regenerates the SSSP comparison (Table 7).
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8 regenerates the pattern-query ablations (Table 8).
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkTable9 regenerates the ordering build times (Table 9).
func BenchmarkTable9(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkTable10 regenerates the ordering-impact study (Table 10).
func BenchmarkTable10(b *testing.B) { runExperiment(b, "table10") }

// BenchmarkTable11 regenerates the feature ablations (Table 11).
func BenchmarkTable11(b *testing.B) { runExperiment(b, "table11") }

// BenchmarkTable13 regenerates the selection-query study (Table 13).
func BenchmarkTable13(b *testing.B) { runExperiment(b, "table13") }
