// Package emptyheaded is a Go implementation of EmptyHeaded, the
// relational engine for graph processing of Aberger, Tu, Olukotun and Ré
// (SIGMOD 2016).
//
// EmptyHeaded executes a datalog-like query language over trie-stored
// relations. Query plans are generalized hypertree decompositions (GHDs);
// within each GHD bag the engine runs the generic worst-case optimal join,
// and across bags Yannakakis' algorithm. The storage engine picks set
// layouts (uint vs bitset) and intersection algorithms (shuffle vs
// galloping) per set based on density and cardinality skew.
//
// Quick start:
//
//	eng := emptyheaded.New()
//	eng.LoadGraph("Edge", g)                 // *graph.Graph, or LoadEdgeList
//	res, err := eng.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
//	fmt.Println(res.Scalar())                // triangle count
//
// To serve queries over HTTP with plan/result caching and admission
// control, run cmd/eh-server (see internal/server and the README's curl
// quickstart); cmd/eh-bench -serve-url load-tests a running server.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results.
package emptyheaded

import (
	"io"

	"emptyheaded/internal/core"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trie"
)

// Engine is an EmptyHeaded database + query engine instance.
type Engine struct {
	c *core.Engine
}

// Result is the output of a query: a relation (tuples with optional
// semiring annotations) or a scalar.
type Result = exec.Result

// Graph re-exports the graph substrate type accepted by LoadGraph.
type Graph = graph.Graph

// Option configures an Engine.
type Option func(*exec.Options)

// WithUintLayout stores every set as a sorted uint array, disabling the
// SIMD-friendly layout optimizer (the paper's "-R" ablation).
func WithUintLayout() Option {
	return func(o *exec.Options) {
		o.Layout = trie.UintLayout
		o.LayoutName = "uint"
	}
}

// WithBitsetLayout forces the bitset layout for every set.
func WithBitsetLayout() Option {
	return func(o *exec.Options) {
		o.Layout = trie.BitsetLayout
		o.LayoutName = "bitset"
	}
}

// WithCompositeLayout forces the block-level composite layout.
func WithCompositeLayout() Option {
	return func(o *exec.Options) {
		o.Layout = trie.CompositeLayout
		o.LayoutName = "composite"
	}
}

// WithMergeOnly disables intersection-algorithm selection (scalar merge
// everywhere; combined with WithUintLayout this is the paper's "-RA").
func WithMergeOnly() Option {
	return func(o *exec.Options) { o.Intersect.Algo = set.AlgoMerge }
}

// WithoutSIMD processes dense words bit-by-bit (the "-S" ablation).
func WithoutSIMD() Option {
	return func(o *exec.Options) { o.Intersect.BitByBit = true }
}

// WithKernelAlgo pins the uint∩uint intersection algorithm (AlgoAuto
// keeps the paper's cardinality-skew rule; see set.ParseAlgo for the
// names accepted on the wire).
func WithKernelAlgo(a set.Algo) Option {
	return func(o *exec.Options) { o.Intersect.Algo = a }
}

// WithSingleBagPlans forces single-bag GHDs (the "-GHD" ablation; the
// plan shape of engines without GHD optimizers, like LogicBlox).
func WithSingleBagPlans() Option {
	return func(o *exec.Options) { o.SingleBag = true }
}

// WithoutSelectionPushdown disables cross-bag selection pushdown
// (Table 13's "-GHD").
func WithoutSelectionPushdown() Option {
	return func(o *exec.Options) { o.NoPushdown = true }
}

// WithParallelism bounds the number of worker goroutines per join.
func WithParallelism(n int) Option {
	return func(o *exec.Options) { o.Parallelism = n }
}

// New returns an engine; options select ablations and tuning.
func New(opts ...Option) *Engine {
	var o exec.Options
	for _, f := range opts {
		f(&o)
	}
	return &Engine{c: core.NewWithOptions(o)}
}

// LoadGraph registers a graph as the binary edge relation name.
func (e *Engine) LoadGraph(name string, g *Graph) { e.c.LoadGraph(name, g) }

// LoadEdgeList reads a "src dst" edge list and registers it as relation
// name; vertex identifiers are dictionary encoded (§2.2 of the paper).
func (e *Engine) LoadEdgeList(name string, r io.Reader, undirected bool) error {
	return e.c.LoadEdgeList(name, r, undirected)
}

// AddRelation registers a relation from raw tuples.
func (e *Engine) AddRelation(name string, arity int, tuples [][]uint32) {
	e.c.AddRelation(name, arity, tuples)
}

// AddAnnotatedRelation registers a relation whose tuples carry semiring
// annotations ("SUM", "MIN", "MAX", "COUNT").
func (e *Engine) AddAnnotatedRelation(name string, arity int, aggregate string, tuples [][]uint32, anns []float64) error {
	op, err := semiring.ParseOp(aggregate)
	if err != nil {
		return err
	}
	return e.c.AddAnnotatedRelation(name, arity, op, tuples, anns)
}

// Alias makes alias another name for target (pattern queries conventionally
// spell the edge relation R, S, T, …).
func (e *Engine) Alias(alias, target string) error { return e.c.Alias(alias, target) }

// Run parses and executes a datalog program and returns the result of the
// final rule group.
func (e *Engine) Run(query string) (*Result, error) { return e.c.Run(query) }

// Explain renders the physical plan of a single-rule query: the GHD, the
// global attribute order, and the generated loop nest (Figure 1).
func (e *Engine) Explain(query string) (string, error) { return e.c.Explain(query) }

// RunAnalyze executes a query with live kernel counters enabled and
// returns the result together with the plan annotated with actuals —
// per-level intersection counts, input/output cardinalities, and wall
// time per bag (EXPLAIN ANALYZE). Multi-rule and recursive programs run
// without a pinned plan and return an empty annotation.
func (e *Engine) RunAnalyze(query string) (*Result, string, error) { return e.c.RunAnalyze(query) }

// Why probes why tuple (a spec like "T(1,2,3)") is in the query's
// output: the final rule re-runs with the output bindings pinned as
// selection constants, and each body relation lists the contributing
// rows that join under them, classified base vs overlay (fact
// attribution — see docs/PROVENANCE.md and `eh-query -why`).
func (e *Engine) Why(query, tuple string) (*core.WhyReport, error) {
	return e.c.Why(query, tuple)
}

// Insert streams tuples into a relation without rebuilding its trie:
// the rows land in the relation's delta overlay and queries see the
// merged view immediately (see docs/DURABILITY.md). A relation that
// doesn't exist yet is created with the tuples' arity.
func (e *Engine) Insert(name string, tuples [][]uint32) error {
	cols, err := core.RowsToColumns(tuples)
	if err != nil {
		return err
	}
	_, err = e.c.Update(core.UpdateBatch{Rel: name, InsCols: cols})
	return err
}

// Delete streams full-tuple deletes into a relation (deleting an
// absent tuple is a no-op).
func (e *Engine) Delete(name string, tuples [][]uint32) error {
	cols, err := core.RowsToColumns(tuples)
	if err != nil {
		return err
	}
	_, err = e.c.Update(core.UpdateBatch{Rel: name, DelCols: cols})
	return err
}

// Compact folds a relation's pending overlay into a fresh base trie
// (queries are unaffected; the overlay simply resets).
func (e *Engine) Compact(name string) error {
	_, err := e.c.Compact(name)
	return err
}
