// Package datasets provides deterministic synthetic stand-ins for the six
// graphs of Table 3. The real datasets (SNAP/KONECT downloads) are not
// available offline, so each is replaced by a Chung-Lu power-law graph
// whose parameters are chosen to preserve the property the experiments
// depend on — the *relative density-skew ordering* (Google+ ≫ Higgs ≫
// LiveJournal ≈ Orkut ≈ Patents) and relative scale — at roughly 100×
// reduced node count so benchmarks run on one machine. See DESIGN.md.
package datasets

import (
	"sort"
	"sync"

	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/set"
)

// Preset describes one synthetic dataset.
type Preset struct {
	Name string
	// Nodes and UndirEdges are the generation targets.
	Nodes      int
	UndirEdges int
	// Exponent is the power-law degree exponent; smaller = more skew.
	Exponent float64
	Seed     int64
	// Description mirrors Table 3.
	Description string
	// PaperNodesM / PaperEdgesM record the original sizes (millions).
	PaperNodesM float64
	PaperEdgesM float64
	// PaperSkew is the density skew reported in Table 3.
	PaperSkew float64
}

// Presets is the Table 3 inventory. Exponents are tuned so Google+ has by
// far the largest density skew, Higgs a moderate one, and the remaining
// graphs low skew, matching the ordering in Table 3.
// Presets is the Table 3 inventory. Google+ is the dense, high-skew graph
// (the paper's set-level optimizer picks bitsets for 41% of its
// neighborhoods); Patents is the very sparse low-skew one. The parameters
// below reproduce that neighborhood-density ordering, which is the
// property Tables 4, 5, 8, 10 and 11 depend on.
var Presets = []Preset{
	{Name: "gplus", Nodes: 8000, UndirEdges: 160000, Exponent: 1.8, Seed: 101,
		Description: "User network (Google+)", PaperNodesM: 0.11, PaperEdgesM: 12.2, PaperSkew: 1.17},
	{Name: "higgs", Nodes: 40000, UndirEdges: 125000, Exponent: 2.1, Seed: 102,
		Description: "Tweets about Higgs Boson", PaperNodesM: 0.4, PaperEdgesM: 12.5, PaperSkew: 0.23},
	{Name: "livejournal", Nodes: 48000, UndirEdges: 430000, Exponent: 2.6, Seed: 103,
		Description: "User network (LiveJournal)", PaperNodesM: 4.8, PaperEdgesM: 43.4, PaperSkew: 0.09},
	{Name: "orkut", Nodes: 31000, UndirEdges: 560000, Exponent: 2.7, Seed: 104,
		Description: "User network (Orkut)", PaperNodesM: 3.1, PaperEdgesM: 117.2, PaperSkew: 0.08},
	{Name: "patents", Nodes: 38000, UndirEdges: 80000, Exponent: 3.2, Seed: 105,
		Description: "Citation network (Patents)", PaperNodesM: 3.8, PaperEdgesM: 16.5, PaperSkew: 0.09},
	{Name: "twitter", Nodes: 100000, UndirEdges: 1200000, Exponent: 2.0, Seed: 106,
		Description: "Follower network (Twitter)", PaperNodesM: 41.7, PaperEdgesM: 757.8, PaperSkew: 0.12},
}

// Small is the five-dataset subset used by the micro-benchmark tables
// (Tables 4, 8-11 exclude Twitter).
var Small = []string{"gplus", "higgs", "livejournal", "orkut", "patents"}

var (
	mu    sync.Mutex
	cache = map[string]*graph.Graph{}
)

// ByName returns the preset with the given name.
func ByName(name string) (Preset, bool) {
	for _, p := range Presets {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// Load generates (or returns the cached) undirected graph for a preset
// name. Generation is deterministic per preset.
func Load(name string) *graph.Graph {
	mu.Lock()
	defer mu.Unlock()
	if g, ok := cache[name]; ok {
		return g
	}
	p, ok := ByName(name)
	if !ok {
		panic("datasets: unknown dataset " + name)
	}
	g := gen.PowerLaw(p.Nodes, p.UndirEdges, p.Exponent, p.Seed)
	cache[name] = g
	return g
}

// LoadPruned returns the degree-ordered, src>dst pruned version used by
// the symmetric pattern benchmarks (§5.2.1).
func LoadPruned(name string) *graph.Graph {
	mu.Lock()
	if g, ok := cache[name+"/pruned"]; ok {
		mu.Unlock()
		return g
	}
	mu.Unlock()
	g := Load(name).Reorder(graph.OrderDegree, 0).Prune()
	mu.Lock()
	cache[name+"/pruned"] = g
	mu.Unlock()
	return g
}

// Names returns all preset names in Table 3 order.
func Names() []string {
	out := make([]string, len(Presets))
	for i, p := range Presets {
		out[i] = p.Name
	}
	return out
}

// BitsetFraction measures the fraction of non-trivial neighborhood sets
// for which the set-level optimizer (§4.4) would choose the bitset layout.
// This is the operative notion of "density skew" in the experiments: the
// paper reports 41% for Google+ (§5.2.1) versus nearly none for Patents.
func BitsetFraction(g *graph.Graph) float64 {
	total, dense := 0, 0
	for _, ns := range g.Adj {
		if len(ns) == 0 {
			continue
		}
		total++
		if set.ChooseLayout(ns) == set.Bitset {
			dense++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dense) / float64(total)
}

// DensityOrdering returns preset names sorted by measured bitset fraction,
// descending; tests use it to verify the synthetic graphs preserve the
// Table 3 / §5.2.1 density ordering (Google+ densest).
func DensityOrdering(names []string) []string {
	type ns struct {
		name string
		frac float64
	}
	var xs []ns
	for _, n := range names {
		xs = append(xs, ns{n, BitsetFraction(Load(n))})
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].frac > xs[j].frac })
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = x.name
	}
	return out
}
