package datasets

import "testing"

func TestLoadAllPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for _, p := range Presets {
		g := Load(p.Name)
		if g.N != p.Nodes {
			t.Fatalf("%s: N=%d want %d", p.Name, g.N, p.Nodes)
		}
		if g.Edges() < int64(p.UndirEdges) { // directed ≈ 2× undirected
			t.Fatalf("%s: too few edges: %d", p.Name, g.Edges())
		}
		// Cached: same pointer on second load.
		if Load(p.Name) != g {
			t.Fatalf("%s: cache miss", p.Name)
		}
	}
}

func TestDensityOrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	// §5.2.1: Google+ is the dense dataset (41% bitset neighborhoods);
	// Patents is the very sparse one where uint suffices.
	order := DensityOrdering([]string{"gplus", "higgs", "patents"})
	if order[0] != "gplus" {
		t.Fatalf("gplus should be densest, got order %v", order)
	}
	if order[len(order)-1] != "patents" {
		t.Fatalf("patents should be sparsest, got order %v", order)
	}
	if f := BitsetFraction(Load("gplus")); f < 0.05 {
		t.Fatalf("gplus bitset fraction %.3f too small for layout experiments", f)
	}
	if f := BitsetFraction(Load("patents")); f > 0.05 {
		t.Fatalf("patents bitset fraction %.3f should be near zero", f)
	}
}

func TestLoadPruned(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	p := LoadPruned("patents")
	for u, ns := range p.Adj {
		for _, v := range ns {
			if uint32(u) <= v {
				t.Fatalf("pruned edge %d→%d violates src>dst", u, v)
			}
		}
	}
	full := Load("patents")
	if p.Edges()*2 != full.Edges() {
		t.Fatalf("pruned edges %d should be half of %d", p.Edges(), full.Edges())
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("gplus"); !ok {
		t.Fatal("gplus missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("nope should be missing")
	}
	if len(Names()) != len(Presets) {
		t.Fatal("Names length mismatch")
	}
}
