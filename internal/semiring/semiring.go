// Package semiring implements the annotation algebra of EmptyHeaded.
//
// Following Green et al.'s provenance semirings (§2.2, §3.2 of the paper),
// every trie can annotate its values with elements of a semiring
// (S, ⊕, ⊗, 0, 1). Aggregations are ⊕-folds performed when an attribute is
// projected away; joining annotated attributes multiplies annotations
// with ⊗. SUM, COUNT, MIN and MAX are all instances.
//
// Annotations are carried as float64: COUNT stays exact up to 2^53 and
// SUM/MIN/MAX for PageRank and SSSP are naturally floating point.
package semiring

import (
	"fmt"
	"math"
)

// Op identifies an aggregation semiring.
type Op uint8

const (
	// None marks an un-annotated relation (implicitly the counting
	// semiring with annotation 1 per tuple).
	None Op = iota
	// Sum is (ℝ, +, ×, 0, 1).
	Sum
	// Count is Sum with a default per-tuple annotation of 1.
	Count
	// Min is (ℝ∪{+∞}, min, +, +∞, 0): "addition" is min, "multiplication"
	// is arithmetic + (the tropical semiring used by shortest paths).
	Min
	// Max is (ℝ∪{−∞}, max, +, −∞, 0).
	Max
)

// ParseOp maps the query-language aggregate names to Ops.
func ParseOp(name string) (Op, error) {
	switch name {
	case "SUM":
		return Sum, nil
	case "COUNT":
		return Count, nil
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	}
	return None, fmt.Errorf("semiring: unknown aggregate %q", name)
}

// String returns the aggregate name.
func (op Op) String() string {
	switch op {
	case None:
		return "NONE"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Zero returns the ⊕-identity (the value of an empty aggregation).
func (op Op) Zero() float64 {
	switch op {
	case Min:
		return math.Inf(1)
	case Max:
		return math.Inf(-1)
	default:
		return 0
	}
}

// One returns the ⊗-identity (the annotation of an un-annotated tuple).
func (op Op) One() float64 {
	switch op {
	case Min, Max:
		return 0
	default:
		return 1
	}
}

// Add is the semiring ⊕ (the aggregation combine step).
func (op Op) Add(a, b float64) float64 {
	switch op {
	case Min:
		return math.Min(a, b)
	case Max:
		return math.Max(a, b)
	default:
		return a + b
	}
}

// Mul is the semiring ⊗ (applied when annotated relations are joined:
// "when aggregated attributes are joined with each other their annotation
// values are multiplied by default", Appendix A.2).
func (op Op) Mul(a, b float64) float64 {
	switch op {
	case Min, Max:
		return a + b
	default:
		return a * b
	}
}

// Monotone reports whether the aggregate is monotonically improving
// (MIN/MAX), which is the engine's trigger for seminaive recursion (§3.3).
func (op Op) Monotone() bool { return op == Min || op == Max }

// Better reports whether a strictly improves on b under the aggregate's
// preference order; only meaningful for monotone aggregates.
func (op Op) Better(a, b float64) bool {
	switch op {
	case Min:
		return a < b
	case Max:
		return a > b
	}
	return false
}
