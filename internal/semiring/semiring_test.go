package semiring

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseOp(t *testing.T) {
	cases := map[string]Op{"SUM": Sum, "COUNT": Count, "MIN": Min, "MAX": Max}
	for name, want := range cases {
		got, err := ParseOp(name)
		if err != nil || got != want {
			t.Fatalf("ParseOp(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseOp("AVG"); err == nil {
		t.Fatal("ParseOp(AVG) should fail")
	}
}

func TestIdentities(t *testing.T) {
	for _, op := range []Op{Sum, Count, Min, Max} {
		for _, x := range []float64{-3, 0, 1, 42.5} {
			if got := op.Add(op.Zero(), x); got != x {
				t.Fatalf("%s: 0⊕%v = %v", op, x, got)
			}
			if got := op.Mul(op.One(), x); got != x {
				t.Fatalf("%s: 1⊗%v = %v", op, x, got)
			}
		}
	}
}

func TestTropical(t *testing.T) {
	if Min.Add(3, 5) != 3 || Min.Mul(3, 5) != 8 {
		t.Fatal("Min semiring ops wrong")
	}
	if Max.Add(3, 5) != 5 || Max.Mul(3, 5) != 8 {
		t.Fatal("Max semiring ops wrong")
	}
	if !math.IsInf(Min.Zero(), 1) || !math.IsInf(Max.Zero(), -1) {
		t.Fatal("tropical zeros wrong")
	}
}

func TestMonotone(t *testing.T) {
	if !Min.Monotone() || !Max.Monotone() || Sum.Monotone() || Count.Monotone() {
		t.Fatal("Monotone flags wrong")
	}
	if !Min.Better(1, 2) || Min.Better(2, 1) || Min.Better(1, 1) {
		t.Fatal("Min.Better wrong")
	}
	if !Max.Better(2, 1) || Max.Better(1, 2) {
		t.Fatal("Max.Better wrong")
	}
}

// Semiring laws: ⊕ commutative/associative, ⊗ associative, ⊗ distributes
// over ⊕ (checked approximately for Sum due to float rounding; exactly for
// the tropical semirings).
func TestQuickSemiringLaws(t *testing.T) {
	approx := func(a, b float64) bool {
		if math.IsInf(a, 0) || math.IsInf(b, 0) {
			return a == b
		}
		d := math.Abs(a - b)
		return d <= 1e-9*(1+math.Abs(a)+math.Abs(b))
	}
	for _, op := range []Op{Sum, Min, Max} {
		op := op
		f := func(a, b, c float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
				return true
			}
			// Keep magnitudes sane for float stability.
			clamp := func(x float64) float64 { return math.Mod(x, 1e6) }
			a, b, c = clamp(a), clamp(b), clamp(c)
			if !approx(op.Add(a, b), op.Add(b, a)) {
				return false
			}
			if !approx(op.Add(op.Add(a, b), c), op.Add(a, op.Add(b, c))) {
				return false
			}
			if !approx(op.Mul(op.Mul(a, b), c), op.Mul(a, op.Mul(b, c))) {
				return false
			}
			if !approx(op.Mul(a, op.Add(b, c)), op.Add(op.Mul(a, b), op.Mul(a, c))) {
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
}
