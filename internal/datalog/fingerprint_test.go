package datalog

import "testing"

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestFingerprintAlphaEquivalence(t *testing.T) {
	cases := [][2]string{
		{
			`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`,
			`TC(;c:long) :- Edge(a,b),  Edge(b,d), Edge(a,d);  c = <<COUNT(*)>>.`,
		},
		{
			`P(x,z) :- Edge(x,y),Edge(y,z).`,
			`P(a,c) :- Edge(a,b),Edge(b,c).`,
		},
		{
			`Deg(x;w:long) :- Edge(x,y); w=<<COUNT(y)>>.`,
			`Deg(u;n:long) :- Edge(u,v); n=<<COUNT(v)>>.`,
		},
	}
	for _, c := range cases {
		a, b := mustParse(t, c[0]), mustParse(t, c[1])
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("fingerprints differ for alpha-equivalent queries:\n  %s\n  %s\nnorm a: %s\nnorm b: %s",
				c[0], c[1], a.Normalize(), b.Normalize())
		}
	}
}

func TestFingerprintDistinguishesQueries(t *testing.T) {
	qs := []string{
		`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`,
		`P(x,z) :- Edge(x,y),Edge(y,z).`,
		`P(x,y) :- Edge(x,y),Edge(y,z).`,              // different head projection
		`P(x,z) :- Edge(x,y),Edge(y,z),Edge(x,z).`,    // extra atom
		`Q(x,z) :- Edge(x,y),Edge(y,z).`,              // different head name
		`P(x,z) :- Edge(x,y),Foo(y,z).`,               // different predicate
		`S(y) :- Edge(1,y).`,                          // constant
		`S(y) :- Edge(2,y).`,                          // different constant
		`Deg(x;w:long) :- Edge(x,y); w=<<COUNT(y)>>.`, // distinct-agg
		`Deg(x;w:long) :- Edge(x,y); w=<<COUNT(*)>>.`, // multiplicity agg
		`Deg(x;w:long) :- Edge(x,y); w=<<SUM(y)>>.`,   // different op
		`R(x;w) :- Edge(x,y); w=1+<<COUNT(y)>>.`,      // wrapped expression
	}
	seen := map[string]string{}
	for _, q := range qs {
		fp := mustParse(t, q).Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Errorf("fingerprint collision:\n  %s\n  %s", prev, q)
		}
		seen[fp] = q
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	src := `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`
	p := mustParse(t, src)
	before := p.Rules[0].String()
	p.Normalize()
	if after := p.Rules[0].String(); after != before {
		t.Errorf("Normalize mutated the program:\n  before: %s\n  after:  %s", before, after)
	}
}

func TestNormalizeMultiRuleProgram(t *testing.T) {
	a := mustParse(t, "N(;w:long) :- Edge(x,y); w=<<COUNT(*)>>.\nTwoN(;u) :- Edge(p,q); u=2*<<COUNT(*)>>.")
	b := mustParse(t, "N(;c:long) :- Edge(a,b); c=<<COUNT(*)>>.\nTwoN(;k) :- Edge(s,t); k=2*<<COUNT(*)>>.")
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("multi-rule fingerprints differ:\n%s\n---\n%s", a.Normalize(), b.Normalize())
	}
}
