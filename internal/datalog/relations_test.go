package datalog

import (
	"reflect"
	"testing"
)

func TestProgramRelations(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{
			`Tri(x,y,z) :- R(x,y),S(y,z),T(x,z).`,
			[]string{"R", "S", "T", "Tri"},
		},
		{
			// RefExpr (1/N) and multi-rule heads must all appear.
			`N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.
PageRank(x;y:float) :- Edge(x,z); y=1/N.`,
			[]string{"Edge", "N", "PageRank"},
		},
		{
			`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`,
			[]string{"Edge", "TC"},
		},
	}
	for _, c := range cases {
		prog, err := Parse(c.query)
		if err != nil {
			t.Fatalf("parse %q: %v", c.query, err)
		}
		got := prog.Relations()
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("Relations(%q) = %v, want %v", c.query, got, c.want)
		}
	}
}
