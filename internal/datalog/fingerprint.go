package datalog

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
)

// Normalize renders the program in a canonical form: variables are
// renamed v0, v1, … in order of first appearance within each rule (head
// first, then body), and the rule is re-serialized with fixed spacing via
// Rule.String. Two programs that differ only in variable names or
// whitespace normalize identically; atom order is preserved because the
// GHD optimizer is sensitive to it. The plan cache keys on this form so
// alpha-equivalent queries share one compiled plan.
func (p *Program) Normalize() string {
	var sb strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			sb.WriteByte('\n')
		}
		nr, _ := normalizeRule(r)
		sb.WriteString(nr.String())
	}
	return sb.String()
}

// FinalVarMap returns the canonical-renaming map (source variable → v0,
// v1, …) of the program's final rule — the one whose head becomes the
// query result. Two alpha-equivalent programs map corresponding variables
// to the same canonical name, which lets the query service translate
// result attribute names between spellings that share a fingerprint.
func (p *Program) FinalVarMap() map[string]string {
	if len(p.Rules) == 0 {
		return map[string]string{}
	}
	_, m := normalizeRule(p.Rules[len(p.Rules)-1])
	return m
}

// Fingerprint is the hex SHA-256 of the normalized program, the cache key
// used by the query service's plan and result caches.
func (p *Program) Fingerprint() string {
	sum := sha256.Sum256([]byte(p.Normalize()))
	return hex.EncodeToString(sum[:])
}

// normalizeRule returns a deep-enough copy of r with canonical variable
// names plus the renaming map used; r itself is never mutated.
func normalizeRule(r *Rule) (*Rule, map[string]string) {
	m := map[string]string{}
	rename := func(v string) string {
		if v == "" || v == "*" {
			return v
		}
		if nv, ok := m[v]; ok {
			return nv
		}
		nv := "v" + strconv.Itoa(len(m))
		m[v] = nv
		return nv
	}

	nr := &Rule{Head: r.Head}
	nr.Head.Vars = make([]string, len(r.Head.Vars))
	for i, v := range r.Head.Vars {
		nr.Head.Vars[i] = rename(v)
	}
	for _, a := range r.Atoms {
		na := &Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
		for i, t := range a.Args {
			if t.Var != "" {
				na.Args[i] = Term{Var: rename(t.Var)}
			} else {
				na.Args[i] = t
			}
		}
		nr.Atoms = append(nr.Atoms, na)
	}
	// The annotation alias and assignment variable share one namespace
	// with the body variables (w in `(;w:long) … ; w=<<COUNT(*)>>`).
	nr.Head.AnnVar = rename(r.Head.AnnVar)
	if r.Assign != nil {
		nr.Assign = &Assign{Var: rename(r.Assign.Var), Expr: renameExpr(r.Assign.Expr, m)}
	}
	return nr, m
}

// renameExpr rewrites aggregate arguments under the rule's variable
// mapping; relation references (RefExpr) keep their names. Expr nodes are
// values in the parser, but FindAgg tolerates pointers, so both spellings
// are handled.
func renameExpr(e Expr, m map[string]string) Expr {
	ren := func(v string) string {
		if nv, ok := m[v]; ok {
			return nv
		}
		return v
	}
	switch x := e.(type) {
	case AggExpr:
		x.Arg = ren(x.Arg)
		return x
	case *AggExpr:
		c := *x
		c.Arg = ren(c.Arg)
		return c
	case BinExpr:
		x.L = renameExpr(x.L, m)
		x.R = renameExpr(x.R, m)
		return x
	case *BinExpr:
		c := *x
		c.L = renameExpr(c.L, m)
		c.R = renameExpr(c.R, m)
		return c
	}
	return e
}
