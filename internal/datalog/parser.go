package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a program: one or more rules, each terminated by '.'.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	prog := &Program{}
	for {
		if p.peek().kind == tokEOF {
			break
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("datalog: empty program")
	}
	return prog, nil
}

// ParseRule parses exactly one rule.
func ParseRule(src string) (*Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 {
		return nil, fmt.Errorf("datalog: expected one rule, got %d", len(prog.Rules))
	}
	return prog.Rules[0], nil
}

// --- lexer ------------------------------------------------------------

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokColon
	tokDot
	tokStar
	tokTurnstile // :-
	tokAggOpen   // <<
	tokAggClose  // >>
	tokEq
	tokPlus
	tokMinus
	tokSlash
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) emit(kind tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) run() {
	s := l.src
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == ':' && i+1 < len(s) && s[i+1] == '-':
			l.emit(tokTurnstile, ":-", i)
			i += 2
		case c == '<' && i+1 < len(s) && s[i+1] == '<':
			l.emit(tokAggOpen, "<<", i)
			i += 2
		case c == '>' && i+1 < len(s) && s[i+1] == '>':
			l.emit(tokAggClose, ">>", i)
			i += 2
		case c == '(':
			l.emit(tokLParen, "(", i)
			i++
		case c == ')':
			l.emit(tokRParen, ")", i)
			i++
		case c == '[':
			l.emit(tokLBracket, "[", i)
			i++
		case c == ']':
			l.emit(tokRBracket, "]", i)
			i++
		case c == ',':
			l.emit(tokComma, ",", i)
			i++
		case c == ';':
			l.emit(tokSemi, ";", i)
			i++
		case c == ':':
			l.emit(tokColon, ":", i)
			i++
		case c == '.' && (i+1 >= len(s) || !isDigit(s[i+1])):
			l.emit(tokDot, ".", i)
			i++
		case c == '*':
			l.emit(tokStar, "*", i)
			i++
		case c == '=':
			l.emit(tokEq, "=", i)
			i++
		case c == '+':
			l.emit(tokPlus, "+", i)
			i++
		case c == '-':
			l.emit(tokMinus, "-", i)
			i++
		case c == '/':
			l.emit(tokSlash, "/", i)
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < len(s) && s[j] != quote {
				j++
			}
			if j >= len(s) {
				l.emit(tokEOF, "", i) // unterminated; parser reports
				return
			}
			l.emit(tokString, s[i+1:j], i)
			i = j + 1
		case isDigit(c) || (c == '.' && i+1 < len(s) && isDigit(s[i+1])):
			j := i
			for j < len(s) && (isDigit(s[j]) || s[j] == '.' ||
				(j > i && (s[j] == 'e' || s[j] == 'E')) ||
				(j > i && (s[j] == '+' || s[j] == '-') && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				// Stop a trailing '.' that terminates the rule: "5." → 5, DOT.
				if s[j] == '.' && (j+1 >= len(s) || !isDigit(s[j+1])) {
					break
				}
				j++
			}
			l.emit(tokNumber, s[i:j], i)
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			l.emit(tokIdent, s[i:j], i)
			i = j
		default:
			l.emit(tokEOF, string(c), i) // invalid char; parser reports
			return
		}
	}
	l.emit(tokEOF, "", len(s))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}
func isIdentPart(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '\''
}

// --- parser -----------------------------------------------------------

type parser struct {
	lex *lexer
	i   int
}

func (p *parser) peek() token { return p.lex.toks[p.i] }
func (p *parser) next() token {
	t := p.lex.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("datalog: expected %s at position %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

// rule := head ":-" atom ("," atom)* (";" assign)? "."
func (p *parser) rule() (*Rule, error) {
	head, err := p.head()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokTurnstile, "':-'"); err != nil {
		return nil, err
	}
	r := &Rule{Head: *head}
	for {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		r.Atoms = append(r.Atoms, a)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind == tokSemi {
		p.next()
		asg, err := p.assign()
		if err != nil {
			return nil, err
		}
		r.Assign = asg
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return nil, err
	}
	if err := validate(r); err != nil {
		return nil, err
	}
	return r, nil
}

// head := ident "*"? "(" vars? (";" annDecl)? ")" ("[" "i" "=" num "]")?
func (p *parser) head() (*Head, error) {
	name, err := p.expect(tokIdent, "head name")
	if err != nil {
		return nil, err
	}
	h := &Head{Name: name.text}
	if p.peek().kind == tokStar {
		p.next()
		h.Recursive = true
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent {
		h.Vars = append(h.Vars, p.next().text)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind == tokSemi {
		p.next()
		av, err := p.expect(tokIdent, "annotation alias")
		if err != nil {
			return nil, err
		}
		h.AnnVar = av.text
		if p.peek().kind == tokColon {
			p.next()
			at, err := p.expect(tokIdent, "annotation type")
			if err != nil {
				return nil, err
			}
			h.AnnType = at.text
		}
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	// Kleene-star bound: "(…)*[i=5]" puts '*' after the ')' in Table 1.
	if p.peek().kind == tokStar {
		p.next()
		h.Recursive = true
	}
	if p.peek().kind == tokLBracket {
		p.next()
		iv, err := p.expect(tokIdent, "iteration variable")
		if err != nil {
			return nil, err
		}
		if iv.text != "i" {
			return nil, fmt.Errorf("datalog: expected [i=k], got [%s=...]", iv.text)
		}
		if _, err := p.expect(tokEq, "'='"); err != nil {
			return nil, err
		}
		n, err := p.expect(tokNumber, "iteration count")
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(n.text)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("datalog: bad iteration count %q", n.text)
		}
		h.Iterations = k
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// atom := ident "(" term ("," term)* ")"
func (p *parser) atom() (*Atom, error) {
	name, err := p.expect(tokIdent, "atom name")
	if err != nil {
		return nil, err
	}
	a := &Atom{Pred: name.text}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		switch t.kind {
		case tokIdent:
			a.Args = append(a.Args, Term{Var: t.text})
		case tokString:
			a.Args = append(a.Args, Term{Const: &Const{IsString: true, Str: t.text}})
		case tokNumber:
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("datalog: bad number %q", t.text)
			}
			a.Args = append(a.Args, Term{Const: &Const{Num: v}})
		default:
			return nil, fmt.Errorf("datalog: expected term at position %d, got %q", t.pos, t.text)
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return a, nil
}

// assign := ident "=" expr
func (p *parser) assign() (*Assign, error) {
	v, err := p.expect(tokIdent, "annotation variable")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEq, "'='"); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Assign{Var: v.text, Expr: e}, nil
}

// expr := term (("+"|"-") term)*
// term := factor (("*"|"/") factor)*
// factor := number | ident | "<<" AGG "(" (ident|"*") ")" ">>" | "(" expr ")"
func (p *parser) expr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokPlus && k != tokMinus {
			return left, nil
		}
		op := byte('+')
		if k == tokMinus {
			op = '-'
		}
		p.next()
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokStar && k != tokSlash {
			return left, nil
		}
		op := byte('*')
		if k == tokSlash {
			op = '/'
		}
		p.next()
		right, err := p.factor()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) factor() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("datalog: bad number %q", t.text)
		}
		return NumExpr{Value: v}, nil
	case tokIdent:
		return RefExpr{Name: t.text}, nil
	case tokLParen:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokAggOpen:
		op, err := p.expect(tokIdent, "aggregate name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		arg := "*"
		switch p.peek().kind {
		case tokStar:
			p.next()
		case tokIdent:
			arg = p.next().text
		default:
			return nil, fmt.Errorf("datalog: expected aggregate argument at %d", p.peek().pos)
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAggClose, "'>>'"); err != nil {
			return nil, err
		}
		return AggExpr{Op: strings.ToUpper(op.text), Arg: arg}, nil
	}
	return nil, fmt.Errorf("datalog: unexpected token %q at position %d", t.text, t.pos)
}

// validate applies the static checks: head vars appear in the body, the
// assignment targets the declared annotation alias, and at most one
// aggregate appears.
func validate(r *Rule) error {
	bodyVars := map[string]bool{}
	for _, a := range r.Atoms {
		for _, t := range a.Args {
			if t.Var != "" {
				bodyVars[t.Var] = true
			}
		}
	}
	for _, v := range r.Head.Vars {
		if !bodyVars[v] {
			return fmt.Errorf("datalog: head variable %s not bound in body", v)
		}
	}
	if r.Assign != nil {
		if r.Head.AnnVar == "" {
			return fmt.Errorf("datalog: assignment %s= without annotation alias in head", r.Assign.Var)
		}
		if r.Assign.Var != r.Head.AnnVar {
			return fmt.Errorf("datalog: assignment targets %s, head declares %s", r.Assign.Var, r.Head.AnnVar)
		}
		if agg := FindAgg(r.Assign.Expr); agg != nil {
			if agg.Arg != "*" && !bodyVars[agg.Arg] {
				return fmt.Errorf("datalog: aggregate over unbound variable %s", agg.Arg)
			}
			if n := countAggs(r.Assign.Expr); n > 1 {
				return fmt.Errorf("datalog: at most one aggregate per rule, found %d", n)
			}
		}
	}
	if r.Head.AnnVar != "" && r.Assign == nil {
		return fmt.Errorf("datalog: head declares annotation %s but body has no assignment", r.Head.AnnVar)
	}
	return nil
}

func countAggs(e Expr) int {
	switch x := e.(type) {
	case AggExpr:
		return 1
	case BinExpr:
		return countAggs(x.L) + countAggs(x.R)
	case *BinExpr:
		return countAggs(x.L) + countAggs(x.R)
	default:
		_ = x
		return 0
	}
}
