// Package datalog implements EmptyHeaded's query language (§2.3): datalog
// rules with conjunctive bodies, semiring aggregation annotations, selection
// constants, and limited Kleene-star recursion. The concrete grammar covers
// every query in Tables 1 and 12 of the paper.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a sequence of rules executed in order; rules sharing a head
// name where a later rule is starred form a recursive group.
type Program struct {
	Rules []*Rule
}

// Rule is one datalog rule.
type Rule struct {
	Head Head
	// Body atoms, in source order.
	Atoms []*Atom
	// Assign is the annotation expression after the body's ';'
	// (e.g. y = 0.15+0.85*<<SUM(z)>>), nil when the head is un-annotated.
	Assign *Assign
}

// Head is the rule head.
type Head struct {
	Name string
	// Vars are the group-by (key) variables.
	Vars []string
	// AnnVar/AnnType describe the annotation alias after ';'
	// (e.g. "w" and "long" in CountTriangle(;w:long)); empty if none.
	AnnVar  string
	AnnType string
	// Recursive marks a Kleene-star head (R*(..)).
	Recursive bool
	// Iterations is the [i=k] bound; 0 means run to fixpoint.
	Iterations int
}

// Atom is one body atom; Args align positionally with the relation.
type Atom struct {
	Pred string
	Args []Term
}

// Term is a variable or a constant.
type Term struct {
	Var   string // non-empty for variables
	Const *Const // non-nil for constants
}

// Const is a literal: a quoted string or a number.
type Const struct {
	IsString bool
	Str      string
	Num      float64
}

// Assign is the annotation assignment `var = expr`.
type Assign struct {
	Var  string
	Expr Expr
}

// Expr is an annotation expression AST node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// NumExpr is a numeric literal.
type NumExpr struct{ Value float64 }

// RefExpr references a zero-arity (scalar) relation by name, e.g. N in
// PageRank's 1/N.
type RefExpr struct{ Name string }

// AggExpr is a semiring aggregate <<OP(arg)>>; Arg is "*" for COUNT(*).
type AggExpr struct {
	Op  string
	Arg string
}

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

func (NumExpr) exprNode() {}
func (RefExpr) exprNode() {}
func (AggExpr) exprNode() {}
func (BinExpr) exprNode() {}

func (e NumExpr) String() string { return fmt.Sprintf("%g", e.Value) }
func (e RefExpr) String() string { return e.Name }
func (e AggExpr) String() string { return fmt.Sprintf("<<%s(%s)>>", e.Op, e.Arg) }
func (e BinExpr) String() string {
	return fmt.Sprintf("(%s%c%s)", e.L, e.Op, e.R)
}

// FindAgg returns the single aggregate term inside e, or nil. Multiple
// aggregates in one expression are rejected at parse time.
func FindAgg(e Expr) *AggExpr {
	switch x := e.(type) {
	case AggExpr:
		return &x
	case *AggExpr:
		return x
	case BinExpr:
		if a := FindAgg(x.L); a != nil {
			return a
		}
		return FindAgg(x.R)
	case *BinExpr:
		if a := FindAgg(x.L); a != nil {
			return a
		}
		return FindAgg(x.R)
	}
	return nil
}

// Relations returns the sorted distinct relation names the program
// touches: every body atom, every head (a head may shadow — or, before
// its rule runs, read — a stored relation of the same name), and every
// scalar relation referenced inside annotation expressions (e.g. N in
// PageRank's 1/N). This is the conservative read set the query service
// keys result-cache entries on: a cached result stays valid exactly
// while none of these relations (nor the dictionary) change.
func (p *Program) Relations() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case RefExpr:
			add(x.Name)
		case *RefExpr:
			add(x.Name)
		case BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		}
	}
	for _, r := range p.Rules {
		add(r.Head.Name)
		for _, a := range r.Atoms {
			add(a.Pred)
		}
		if r.Assign != nil {
			walkExpr(r.Assign.Expr)
		}
	}
	sort.Strings(out)
	return out
}

// Vars returns the distinct body variables of r in first-appearance order.
func (r *Rule) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range r.Atoms {
		for _, t := range a.Args {
			if t.Var != "" && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	return out
}

// String reconstructs rule source (normalized), used in tests and Explain.
func (r *Rule) String() string {
	var sb strings.Builder
	sb.WriteString(r.Head.Name)
	if r.Head.Recursive {
		sb.WriteString("*")
	}
	sb.WriteString("(")
	sb.WriteString(strings.Join(r.Head.Vars, ","))
	if r.Head.AnnVar != "" {
		sb.WriteString(";")
		sb.WriteString(r.Head.AnnVar)
		if r.Head.AnnType != "" {
			sb.WriteString(":")
			sb.WriteString(r.Head.AnnType)
		}
	}
	sb.WriteString(")")
	if r.Head.Iterations > 0 {
		fmt.Fprintf(&sb, "[i=%d]", r.Head.Iterations)
	}
	sb.WriteString(" :- ")
	for i, a := range r.Atoms {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(a.Pred)
		sb.WriteString("(")
		for j, t := range a.Args {
			if j > 0 {
				sb.WriteString(",")
			}
			if t.Var != "" {
				sb.WriteString(t.Var)
			} else if t.Const.IsString {
				fmt.Fprintf(&sb, "%q", t.Const.Str)
			} else {
				fmt.Fprintf(&sb, "%g", t.Const.Num)
			}
		}
		sb.WriteString(")")
	}
	if r.Assign != nil {
		fmt.Fprintf(&sb, "; %s=%s", r.Assign.Var, r.Assign.Expr)
	}
	sb.WriteString(".")
	return sb.String()
}
