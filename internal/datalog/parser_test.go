package datalog

import (
	"strings"
	"testing"
)

// TestTable1Queries parses every example query from Table 1 of the paper.
func TestTable1Queries(t *testing.T) {
	queries := map[string]string{
		"Triangle":      `Triangle(x,y,z) :- R(x,y),S(y,z),T(x,z).`,
		"4-Clique":      `FourClique(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w),V(y,w),Q(z,w).`,
		"Lollipop":      `Lollipop(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w).`,
		"Barbell":       `Barbell(x,y,z,x2,y2,z2) :- R(x,y),S(y,z),T(x,z),U(x,x2),R2(x2,y2),S2(y2,z2),T2(x2,z2).`,
		"CountTriangle": `CountTriangle(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.`,
		"PageRank": `N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.
			PageRank(x;y:float) :- Edge(x,z); y=1/N.
			PageRank(x;y:float)*[i=5] :- Edge(x,z),PageRank(z),InvDeg(z); y=0.15+0.85*<<SUM(z)>>.`,
		"SSSP": `SSSP(x;y:int) :- Edge("0",x); y=1.
			SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.`,
	}
	for name, src := range queries {
		t.Run(name, func(t *testing.T) {
			prog, err := Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(prog.Rules) == 0 {
				t.Fatal("no rules")
			}
		})
	}
}

// TestTable12SelectionQueries parses the selection queries of Table 12.
func TestTable12SelectionQueries(t *testing.T) {
	queries := []string{
		`S4Clique(x,y,z,w) :- R(x,y),S(y,z),T(x,z),U(x,w),V(y,w),Q(z,w),P(x,"7").`,
		`SBarbell(x,y,z,x2,y2,z2) :- R(x,y),S(y,z),T(x,z),U(x,"7"),V("7",x2),R2(x2,y2),S2(y2,z2),T2(x2,z2).`,
	}
	for _, src := range queries {
		if _, err := Parse(src); err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
	}
}

func TestTriangleStructure(t *testing.T) {
	r, err := ParseRule(`Triangle(x,y,z) :- R(x,y),S(y,z),T(x,z).`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Head.Name != "Triangle" || len(r.Head.Vars) != 3 {
		t.Fatalf("head: %+v", r.Head)
	}
	if len(r.Atoms) != 3 {
		t.Fatalf("atoms: %d", len(r.Atoms))
	}
	if r.Atoms[1].Pred != "S" || r.Atoms[1].Args[0].Var != "y" || r.Atoms[1].Args[1].Var != "z" {
		t.Fatalf("atom[1]: %+v", r.Atoms[1])
	}
	if r.Assign != nil || r.Head.Recursive {
		t.Fatal("triangle should be plain")
	}
}

func TestCountStructure(t *testing.T) {
	r, err := ParseRule(`CountTriangle(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Head.Vars) != 0 || r.Head.AnnVar != "w" || r.Head.AnnType != "long" {
		t.Fatalf("head: %+v", r.Head)
	}
	agg := FindAgg(r.Assign.Expr)
	if agg == nil || agg.Op != "COUNT" || agg.Arg != "*" {
		t.Fatalf("agg: %+v", agg)
	}
}

func TestPageRankRecursiveStructure(t *testing.T) {
	r, err := ParseRule(`PageRank(x;y:float)*[i=5] :- Edge(x,z),PageRank(z),InvDeg(z); y=0.15+0.85*<<SUM(z)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Head.Recursive || r.Head.Iterations != 5 {
		t.Fatalf("head: %+v", r.Head)
	}
	agg := FindAgg(r.Assign.Expr)
	if agg == nil || agg.Op != "SUM" || agg.Arg != "z" {
		t.Fatalf("agg: %+v", agg)
	}
	// Expression shape: 0.15 + (0.85 * <<SUM(z)>>)
	bin, ok := r.Assign.Expr.(BinExpr)
	if !ok || bin.Op != '+' {
		t.Fatalf("expr: %v", r.Assign.Expr)
	}
	if n, ok := bin.L.(NumExpr); !ok || n.Value != 0.15 {
		t.Fatalf("lhs: %v", bin.L)
	}
	mul, ok := bin.R.(BinExpr)
	if !ok || mul.Op != '*' {
		t.Fatalf("rhs: %v", bin.R)
	}
}

func TestSSSPStructure(t *testing.T) {
	prog, err := Parse(`SSSP(x;y:int) :- Edge("5",x); y=1.
		SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules: %d", len(prog.Rules))
	}
	base, rec := prog.Rules[0], prog.Rules[1]
	if base.Head.Recursive || !rec.Head.Recursive {
		t.Fatal("recursion flags wrong")
	}
	c := base.Atoms[0].Args[0].Const
	if c == nil || !c.IsString || c.Str != "5" {
		t.Fatalf("selection constant: %+v", base.Atoms[0].Args[0])
	}
	if agg := FindAgg(rec.Assign.Expr); agg == nil || agg.Op != "MIN" || agg.Arg != "w" {
		t.Fatalf("agg: %+v", FindAgg(rec.Assign.Expr))
	}
}

func TestScalarRefExpr(t *testing.T) {
	r, err := ParseRule(`PageRank(x;y:float) :- Edge(x,z); y=1/N.`)
	if err != nil {
		t.Fatal(err)
	}
	bin, ok := r.Assign.Expr.(BinExpr)
	if !ok || bin.Op != '/' {
		t.Fatalf("expr: %v", r.Assign.Expr)
	}
	if ref, ok := bin.R.(RefExpr); !ok || ref.Name != "N" {
		t.Fatalf("ref: %v", bin.R)
	}
}

func TestNumericConstants(t *testing.T) {
	r, err := ParseRule(`Q(x) :- Edge(42,x).`)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Atoms[0].Args[0].Const
	if c == nil || c.IsString || c.Num != 42 {
		t.Fatalf("const: %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                                  // empty
		`Q(x)`,                              // no body
		`Q(x) :- R(x,y)`,                    // missing dot
		`Q(q) :- R(x,y).`,                   // unbound head var
		`Q(x;w) :- R(x,y).`,                 // annotation without assignment
		`Q(x) :- R(x,y); w=<<COUNT(*)>>.`,   // assignment without annotation
		`Q(x;w) :- R(x,y); v=<<COUNT(*)>>.`, // wrong assignment target
		`Q(x;w) :- R(x,y); w=<<COUNT(q)>>.`, // aggregate over unbound var
		`Q(x;w) :- R(x,y); w=<<SUM(x)>>+<<SUM(y)>>.`, // two aggregates
		`Q(x)[j=5] :- R(x,y).`,                       // bad iteration var
		`Q(x) :- R(x,"unterminated.`,                 // unterminated string
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
	// triangle listing
	Triangle(x,y,z) :-
		R(x,y),  // edge 1
		S(y,z),
		T(x,z).
	`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripString(t *testing.T) {
	srcs := []string{
		`Triangle(x,y,z) :- R(x,y),S(y,z),T(x,z).`,
		`CountTriangle(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.`,
		`SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.`,
	}
	for _, src := range srcs {
		r1, err := ParseRule(src)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ParseRule(r1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", r1.String(), err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("round trip: %q vs %q", r1.String(), r2.String())
		}
	}
}

func TestRuleVars(t *testing.T) {
	r, err := ParseRule(`Q(x) :- R(x,y),S(y,z),P(x,"3").`)
	if err != nil {
		t.Fatal(err)
	}
	vars := r.Vars()
	want := []string{"x", "y", "z"}
	if strings.Join(vars, ",") != strings.Join(want, ",") {
		t.Fatalf("vars=%v want %v", vars, want)
	}
}
