package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/fault"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/obs"
	"emptyheaded/internal/prov"
)

// queryWithProv posts a /query with the provenance flag set.
func queryWithProv(t *testing.T, base, query string) QueryResponse {
	t.Helper()
	var qr QueryResponse
	code, body := postJSON(t, base+"/query", QueryRequest{Query: query, Provenance: true}, &qr)
	if code != http.StatusOK {
		t.Fatalf("/query %q: status %d, body %s", query, code, body)
	}
	return qr
}

func TestProvenanceInlineAndRing(t *testing.T) {
	s, ts := newTestService(t, Config{})

	// First execution: a miss, so the record describes a fresh run.
	qr1 := queryWithProv(t, ts.URL, triangleQ)
	rec := qr1.Provenance
	if rec == nil {
		t.Fatal("provenance requested but absent")
	}
	if rec.TraceID != qr1.TraceID || rec.Cached || rec.Fingerprint == "" {
		t.Fatalf("miss record: %+v", rec)
	}
	// The read set includes head shadows (epoch 0); the real relation
	// must carry a live epoch.
	edgeIdx := -1
	for i, rl := range rec.Relations {
		if rl.Relation == "Edge" {
			edgeIdx = i
		}
	}
	if edgeIdx < 0 || rec.Relations[edgeIdx].Epoch == 0 {
		t.Fatalf("lineage: %+v", rec.Relations)
	}

	// Cached serve: the fill-time record re-stamped with this trace.
	qr2 := queryWithProv(t, ts.URL, triangleQ)
	if !qr2.ResultCached || qr2.Provenance == nil {
		t.Fatalf("cached serve: %+v", qr2)
	}
	if !qr2.Provenance.Cached || qr2.Provenance.TraceID != qr2.TraceID {
		t.Fatalf("serve record not re-stamped: %+v", qr2.Provenance)
	}
	if qr2.Provenance.Relations[edgeIdx] != rec.Relations[edgeIdx] {
		t.Fatalf("serve lineage diverges from fill lineage: %+v vs %+v",
			qr2.Provenance.Relations[edgeIdx], rec.Relations[edgeIdx])
	}

	// A request without the flag executes with provenance recorded but
	// not attached.
	if qr := runQuery(t, ts.URL, pathQ); qr.Provenance != nil {
		t.Fatalf("unrequested provenance attached: %+v", qr.Provenance)
	}

	// Ring listing: both triangle records plus the path one.
	var list struct {
		Stats   prov.Stats     `json:"stats"`
		Records []*prov.Record `json:"records"`
	}
	if code := getJSON(t, ts.URL+"/debug/provenance", &list); code != http.StatusOK {
		t.Fatalf("/debug/provenance: %d", code)
	}
	if list.Stats.Retained < 3 || len(list.Records) < 3 {
		t.Fatalf("ring: %+v (%d records)", list.Stats, len(list.Records))
	}

	// Point lookup by trace id, and 404 for an unknown one.
	var got prov.Record
	if code := getJSON(t, fmt.Sprintf("%s/debug/provenance/%d", ts.URL, qr1.TraceID), &got); code != http.StatusOK {
		t.Fatalf("/debug/provenance/<id>: %d", code)
	}
	if got.Fingerprint != rec.Fingerprint {
		t.Fatalf("lookup: %+v", got)
	}
	var errBody map[string]any
	if code := getJSON(t, ts.URL+"/debug/provenance/999999999", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}

	// The trace links its provenance record.
	var trOut struct {
		ID         uint64       `json:"id"`
		Provenance *prov.Record `json:"provenance"`
	}
	getJSON(t, fmt.Sprintf("%s/debug/trace/%d", ts.URL, qr1.TraceID), &trOut)
	if trOut.ID != qr1.TraceID || trOut.Provenance == nil || trOut.Provenance.Fingerprint != rec.Fingerprint {
		t.Fatalf("trace link: %+v", trOut)
	}

	// The workload registry links each fingerprint's last record.
	var wl struct {
		Fingerprints []struct {
			Fingerprint string       `json:"fingerprint"`
			Provenance  *prov.Record `json:"provenance"`
		} `json:"fingerprints"`
	}
	getJSON(t, ts.URL+"/debug/workload", &wl)
	found := false
	for _, row := range wl.Fingerprints {
		if row.Fingerprint == rec.Fingerprint {
			found = true
			if row.Provenance == nil {
				t.Fatalf("workload row without provenance: %+v", row)
			}
		}
	}
	if !found {
		t.Fatalf("fingerprint missing from workload: %+v", wl)
	}

	// The cached entry carries its fill-time record.
	var cache struct {
		ResultCache struct {
			Entries []struct {
				Key        string       `json:"key"`
				Provenance *prov.Record `json:"provenance"`
			} `json:"entries"`
		} `json:"result_cache"`
	}
	getJSON(t, ts.URL+"/debug/cache", &cache)
	if len(cache.ResultCache.Entries) == 0 || cache.ResultCache.Entries[0].Provenance == nil {
		t.Fatalf("cache entries missing provenance: %+v", cache.ResultCache)
	}

	// /stats reports the section.
	st := s.StatsSnapshot()
	if !st.Provenance.Enabled || st.Provenance.Ring.Total < 3 {
		t.Fatalf("stats provenance: %+v", st.Provenance)
	}
}

func TestProvenanceDisabled(t *testing.T) {
	_, ts := newTestService(t, Config{DisableProvenance: true})
	qr := queryWithProv(t, ts.URL, triangleQ)
	if qr.Provenance != nil {
		t.Fatalf("disabled provenance still attached: %+v", qr.Provenance)
	}
	var out map[string]any
	if code := getJSON(t, ts.URL+"/debug/provenance", &out); code != http.StatusNotFound {
		t.Fatalf("/debug/provenance while disabled: %d", code)
	}
	if code := getJSON(t, ts.URL+"/debug/diff?a=1&b=2", &out); code != http.StatusNotFound {
		t.Fatalf("/debug/diff while disabled: %d", code)
	}
}

// TestProvenanceDiffWhyChanged: two executions of the same fingerprint
// straddling an update diff to exactly the drifted relation.
func TestProvenanceDiffWhyChanged(t *testing.T) {
	_, ts := newTestService(t, Config{})

	qr1 := queryWithProv(t, ts.URL, triangleQ)
	var upOut map[string]any
	if code, body := postJSON(t, ts.URL+"/update", UpdateRequest{
		Name:    "Edge",
		Inserts: [][]uint32{{200, 201}, {201, 202}, {200, 202}},
	}, &upOut); code != http.StatusOK {
		t.Fatalf("/update: %d %s", code, body)
	}
	qr2 := queryWithProv(t, ts.URL, triangleQ)
	if qr2.ResultCached {
		t.Fatalf("epoch bump should invalidate the cache: %+v", qr2)
	}

	var out struct {
		Diff prov.DiffReport `json:"diff"`
	}
	url := fmt.Sprintf("%s/debug/diff?a=%d&b=%d", ts.URL, qr1.TraceID, qr2.TraceID)
	if code := getJSON(t, url, &out); code != http.StatusOK {
		t.Fatalf("/debug/diff: %d", code)
	}
	d := out.Diff
	if d.FromTrace != qr1.TraceID || d.ToTrace != qr2.TraceID {
		t.Fatalf("diff traces: %+v", d)
	}
	if len(d.Drifted) != 1 || d.Drifted[0].Relation != "Edge" {
		t.Fatalf("drift attribution: %+v", d.Drifted)
	}
	if d.Drifted[0].ToEpoch != d.Drifted[0].FromEpoch+1 {
		t.Fatalf("epoch drift: %+v", d.Drifted[0])
	}
	if d.Drifted[0].OverlayRowsDelta != 3 {
		t.Fatalf("overlay attribution: %+v", d.Drifted[0])
	}
	// The test service runs without a WAL, so lineage is epoch-only.
	if !d.EpochOnly {
		t.Fatalf("no WAL ⇒ epoch-only: %+v", d)
	}

	// Different fingerprints are not comparable.
	qr3 := queryWithProv(t, ts.URL, pathQ)
	var errBody map[string]any
	url = fmt.Sprintf("%s/debug/diff?a=%d&b=%d", ts.URL, qr1.TraceID, qr3.TraceID)
	if code := getJSON(t, url, &errBody); code != http.StatusBadRequest {
		t.Fatalf("cross-fingerprint diff: %d (%v)", code, errBody)
	}
	// Malformed / missing ids.
	if code := getJSON(t, ts.URL+"/debug/diff?a=zzz&b=1", &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/debug/diff?a=%d&b=999999999", ts.URL, qr1.TraceID), &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}
}

// TestAuditCatchesFaultInjectedStaleEntry is the auditor's reason to
// exist, end to end: a fault-injected epoch skew plants a cache entry
// whose validity stamp lies, one real update makes the lie current, the
// cache serves stale bytes — and the on-demand audit sweep detects it,
// emits exactly one audit_mismatch event, bumps eh_audit_mismatch_total,
// evicts the entry, and the next request recomputes correctly.
func TestAuditCatchesFaultInjectedStaleEntry(t *testing.T) {
	restore := fault.Enable(fault.New(1, fault.Rule{
		Point: "server.cache.stamp", Kind: fault.Err, OnCall: 1,
	}))
	defer restore()
	sink := &syncWriter{}
	_, ts := newTestService(t, Config{Events: obs.NewEventLog(sink)})

	// Fill the cache through the armed fault: the entry's epoch stamp is
	// one ahead of the truth.
	qr1 := runQuery(t, ts.URL, triangleQ)
	if qr1.Scalar == nil {
		t.Fatalf("triangle scalar: %+v", qr1)
	}
	base := *qr1.Scalar

	// One real update catches the actual epoch up to the lying stamp and
	// closes a new triangle (codes 200-202 are fresh vertices): the
	// cached count is now stale by 6 ordered bindings.
	if code, body := postJSON(t, ts.URL+"/update", UpdateRequest{
		Name: "Edge",
		Inserts: [][]uint32{
			{200, 201}, {201, 202}, {200, 202},
			{201, 200}, {202, 201}, {202, 200},
		},
	}, nil); code != http.StatusOK {
		t.Fatalf("/update: %d %s", code, body)
	}

	// The lie holds: the entry passes its freshness check and the stale
	// count is served from cache.
	qr2 := runQuery(t, ts.URL, triangleQ)
	if !qr2.ResultCached || *qr2.Scalar != base {
		t.Fatalf("expected stale cached serve: cached=%v scalar=%v (base %v)",
			qr2.ResultCached, *qr2.Scalar, base)
	}

	// The sweep re-executes and catches it.
	var audit struct {
		Checked      int      `json:"checked"`
		SkippedStale int      `json:"skipped_stale"`
		Mismatches   int      `json:"mismatches"`
		Evicted      []string `json:"evicted"`
		Errors       int      `json:"errors"`
	}
	if code, body := postJSON(t, ts.URL+"/debug/audit", nil, &audit); code != http.StatusOK {
		t.Fatalf("/debug/audit: %d %s", code, body)
	}
	if audit.Mismatches != 1 || len(audit.Evicted) != 1 || audit.Errors != 0 {
		t.Fatalf("audit sweep: %+v", audit)
	}

	// Exactly one audit_mismatch event, carrying the drift attribution.
	events := sink.String()
	if n := strings.Count(events, `"kind":"audit_mismatch"`); n != 1 {
		t.Fatalf("audit_mismatch events: %d in\n%s", n, events)
	}
	for _, line := range strings.Split(strings.TrimSpace(events), "\n") {
		if !strings.Contains(line, `"kind":"audit_mismatch"`) {
			continue
		}
		var ev struct {
			CachedCardinality int `json:"cached_cardinality"`
			CardinalityDelta  int `json:"cardinality_delta"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line: %v (%s)", err, line)
		}
	}

	// The counter is on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metricsBody), "eh_audit_mismatch_total 1") {
		t.Fatalf("/metrics missing eh_audit_mismatch_total 1")
	}

	// The entry is gone: the next request recomputes and sees the new
	// triangle (6 ordered bindings on a complete directed 3-cycle).
	qr3 := runQuery(t, ts.URL, triangleQ)
	if qr3.ResultCached {
		t.Fatalf("evicted entry still serving: %+v", qr3)
	}
	if *qr3.Scalar != base+6 {
		t.Fatalf("recomputed count %v, want %v", *qr3.Scalar, base+6)
	}

	// A follow-up sweep over the now-correct cache finds nothing.
	if code, _ := postJSON(t, ts.URL+"/debug/audit", nil, &audit); code != http.StatusOK || audit.Mismatches != 0 {
		t.Fatalf("clean sweep: %+v", audit)
	}
}

// TestAuditSamplerRuns: with AuditFraction 1 every cached serve queues a
// background audit; a fresh entry audits clean.
func TestAuditSamplerRuns(t *testing.T) {
	s, ts := newTestService(t, Config{AuditFraction: 1})
	runQuery(t, ts.URL, triangleQ)
	runQuery(t, ts.URL, triangleQ) // cached serve → sampled
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.StatsSnapshot().Provenance.Audit
		if st.Checks >= 1 {
			if st.Mismatches != 0 || st.Errors != 0 {
				t.Fatalf("fresh entry audited dirty: %+v", st)
			}
			if st.Sampled < 1 {
				t.Fatalf("sampled counter: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampled audit never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func benchServeProvenance(b *testing.B, disable bool) {
	eng := core.New()
	eng.Opts.Parallelism = 1
	eng.LoadGraph("Edge", gen.PowerLaw(1000, 15000, 2.1, 17))
	s := New(eng, Config{Workers: 1, DisableProvenance: disable})
	defer s.Close()
	h := s.Handler()
	body, _ := json.Marshal(QueryRequest{Query: triangleQ, NoCache: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkServeProvenanceOn(b *testing.B)  { benchServeProvenance(b, false) }
func BenchmarkServeProvenanceOff(b *testing.B) { benchServeProvenance(b, true) }

// TestProvenanceOverheadGate is this PR's CI gate: the serving path with
// provenance recording on (the default) must cost < 3% over the
// provenance-off path on triangle + 2-path. Env-gated so tier-1
// `go test ./...` stays timing-free; methodology mirrors the workload
// profiler's gate (interleaved runs, min-of-N, best of 5 attempts).
func TestProvenanceOverheadGate(t *testing.T) {
	if os.Getenv("EH_PROV_GATE") == "" {
		t.Skip("set EH_PROV_GATE=1 to run the provenance overhead gate")
	}
	for _, tc := range []struct {
		name, q string
		rounds  int
	}{
		{"triangle", triangleQ, 25},
		{"path2", pathQ, 15},
	} {
		newSrv := func(disable bool) (*Server, http.Handler) {
			eng := core.New()
			eng.Opts.Parallelism = 1
			eng.LoadGraph("Edge", gen.PowerLaw(3000, 60000, 2.1, 17))
			s := New(eng, Config{Workers: 1, DisableProvenance: disable})
			return s, s.Handler()
		}
		sOn, hOn := newSrv(false)
		sOff, hOff := newSrv(true)
		defer sOn.Close()
		defer sOff.Close()
		body, _ := json.Marshal(QueryRequest{Query: tc.q, NoCache: true})
		run := func(h http.Handler) time.Duration {
			req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
			w := httptest.NewRecorder()
			start := time.Now()
			h.ServeHTTP(w, req)
			d := time.Since(start)
			if w.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", tc.name, w.Code, w.Body.String())
			}
			return d
		}
		run(hOff) // warm indexes + plan caches on both sides
		run(hOn)
		measure := func() (off, on time.Duration) {
			offs := make([]time.Duration, 0, tc.rounds)
			ons := make([]time.Duration, 0, tc.rounds)
			for i := 0; i < tc.rounds; i++ {
				offs = append(offs, run(hOff))
				ons = append(ons, run(hOn))
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			sort.Slice(ons, func(i, j int) bool { return ons[i] < ons[j] })
			return offs[0], ons[0]
		}
		best := 1e9
		for attempt := 0; attempt < 5; attempt++ {
			off, on := measure()
			overhead := float64(on-off) / float64(off)
			t.Logf("%s attempt %d: off=%v on=%v overhead=%.2f%%", tc.name, attempt, off, on, overhead*100)
			if overhead < best {
				best = overhead
			}
			if best <= 0.03 {
				break
			}
		}
		if best > 0.03 {
			t.Errorf("%s: provenance overhead %.2f%% exceeds 3%% in all attempts",
				tc.name, best*100)
		}
	}
}
