package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Errors mapped to 503 by the HTTP layer.
var (
	errQueueFull    = errors.New("server: admission queue full")
	errQueueTimeout = errors.New("server: timed out waiting for a worker slot")
)

// admission is the bounded worker-pool controller: at most `workers`
// queries execute at once, at most `queueDepth` more wait (up to
// queueWait each); everything beyond that is rejected immediately so an
// overloaded server degrades with fast 503s instead of goroutine pileup.
type admission struct {
	slots      chan struct{}
	queueDepth int64
	queueWait  time.Duration

	queued           atomic.Int64
	active           atomic.Int64
	rejectedFull     atomic.Int64
	rejectedTimeout  atomic.Int64
	admittedLifetime atomic.Int64
}

func newAdmission(workers, queueDepth int, queueWait time.Duration) *admission {
	return &admission{
		slots:      make(chan struct{}, workers),
		queueDepth: int64(queueDepth),
		queueWait:  queueWait,
	}
}

// acquire blocks until a worker slot is free (bounded by the queue depth,
// the queue wait and the request context) and returns the release
// function, or reports why admission was refused.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a.queued.Add(1) > a.queueDepth {
		a.queued.Add(-1)
		a.rejectedFull.Add(1)
		return nil, errQueueFull
	}
	defer a.queued.Add(-1)

	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		// A cancelled waiter must never hold a slot: if the context
		// raced the slot send and both were ready, give the slot back.
		if err := ctx.Err(); err != nil {
			<-a.slots
			return nil, err
		}
	case <-timer.C:
		a.rejectedTimeout.Add(1)
		return nil, errQueueTimeout
	case <-ctx.Done():
		// Client abandonment, not server overload: don't book it as a
		// timeout rejection.
		return nil, ctx.Err()
	}
	a.active.Add(1)
	a.admittedLifetime.Add(1)
	return func() {
		a.active.Add(-1)
		<-a.slots
	}, nil
}

// AdmissionStats is the JSON rendering of the controller's state.
type AdmissionStats struct {
	Workers         int   `json:"workers"`
	QueueDepth      int   `json:"queue_depth"`
	Active          int64 `json:"active"`
	Queued          int64 `json:"queued"`
	Admitted        int64 `json:"admitted"`
	RejectedFull    int64 `json:"rejected_full"`
	RejectedTimeout int64 `json:"rejected_timeout"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Workers:         cap(a.slots),
		QueueDepth:      int(a.queueDepth),
		Active:          a.active.Load(),
		Queued:          a.queued.Load(),
		Admitted:        a.admittedLifetime.Load(),
		RejectedFull:    a.rejectedFull.Load(),
		RejectedTimeout: a.rejectedTimeout.Load(),
	}
}
