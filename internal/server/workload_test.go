package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/obs"
)

// getStatus fetches url and returns only the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

type workloadReply struct {
	Totals       obs.WorkloadTotals     `json:"totals"`
	Sort         string                 `json:"sort"`
	Fingerprints []obs.FingerprintStats `json:"fingerprints"`
}

// TestWorkloadReplay is the acceptance-criterion test: drive a known
// query mix and verify /debug/workload reproduces it — counts, routes,
// rows, latency and kernel-counter aggregates.
func TestWorkloadReplay(t *testing.T) {
	_, ts := newTestService(t, Config{})

	// Triangle: one miss (parse+compile+execute), then two result-cache
	// serves. Path: two executions (NoCache skips the result cache, the
	// second reuses the cached plan).
	tri := runQuery(t, ts.URL, triangleQ)
	runQuery(t, ts.URL, triangleQ)
	runQuery(t, ts.URL, triangleQ)
	var p1, p2 QueryResponse
	if code, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: pathQ, NoCache: true}, &p1); code != http.StatusOK {
		t.Fatalf("path query: status %d body %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: pathQ, NoCache: true}, &p2); code != http.StatusOK {
		t.Fatalf("path query: status %d body %s", code, body)
	}

	var wl workloadReply
	if code := getJSON(t, ts.URL+"/debug/workload?sort=count", &wl); code != http.StatusOK {
		t.Fatalf("/debug/workload: status %d", code)
	}
	if wl.Totals.Observed != 5 || wl.Totals.Fingerprints != 2 {
		t.Fatalf("totals: %+v", wl.Totals)
	}
	if wl.Totals.ResultHits != 2 || wl.Totals.Misses != 2 || wl.Totals.PlanHits != 1 {
		t.Fatalf("route totals: %+v", wl.Totals)
	}
	if len(wl.Fingerprints) != 2 {
		t.Fatalf("got %d fingerprints", len(wl.Fingerprints))
	}
	triRow := wl.Fingerprints[0]
	if triRow.Count != 3 {
		t.Fatalf("count-sorted top row: %+v", triRow)
	}
	if triRow.Query != triangleQ {
		t.Fatalf("sample spelling %q", triRow.Query)
	}
	if triRow.Routes[obs.RouteMiss] != 1 || triRow.Routes[obs.RouteResultHit] != 2 {
		t.Fatalf("triangle routes: %+v", triRow.Routes)
	}
	// The miss execution collected kernel counters by default.
	if triRow.Intersections == 0 || triRow.Probes == 0 {
		t.Fatalf("no kernel counters aggregated: %+v", triRow)
	}
	if triRow.TotalUS <= 0 || triRow.AvgUS <= 0 || triRow.P50US <= 0 || triRow.MaxUS < int64(triRow.P99US) {
		t.Fatalf("latency aggregates: %+v", triRow)
	}
	if triRow.PhasesUS["execute"] <= 0 {
		t.Fatalf("phase aggregates missing execute: %+v", triRow.PhasesUS)
	}
	if triRow.LastTraceID == 0 || triRow.FirstSeen == "" || triRow.LastSeen == "" {
		t.Fatalf("identity fields: %+v", triRow)
	}
	_ = tri

	pathRow := wl.Fingerprints[1]
	if pathRow.Count != 2 || pathRow.Routes[obs.RouteMiss] != 1 || pathRow.Routes[obs.RoutePlanHit] != 1 {
		t.Fatalf("path row: %+v", pathRow)
	}
	if want := int64(p1.Cardinality + p2.Cardinality); pathRow.Rows != want {
		t.Fatalf("path rows %d, want %d", pathRow.Rows, want)
	}

	// Sort + limit parameters.
	var byRows workloadReply
	if code := getJSON(t, ts.URL+"/debug/workload?sort=rows&n=1", &byRows); code != http.StatusOK {
		t.Fatal("rows sort failed")
	}
	if len(byRows.Fingerprints) != 1 || byRows.Fingerprints[0].Fingerprint != pathRow.Fingerprint {
		t.Fatalf("rows sort top: %+v", byRows.Fingerprints)
	}
	if code := getStatus(t, ts.URL+"/debug/workload?sort=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus sort: status %d", code)
	}
	if code := getStatus(t, ts.URL+"/debug/workload?n=zero"); code != http.StatusBadRequest {
		t.Fatalf("bogus n: status %d", code)
	}
}

func TestDebugRelationsHeat(t *testing.T) {
	_, ts := newTestService(t, Config{})
	runQuery(t, ts.URL, triangleQ)
	if code, body := postJSON(t, ts.URL+"/update",
		UpdateRequest{Name: "Edge", Inserts: [][]uint32{{1, 2}, {4, 9}}}, nil); code != http.StatusOK {
		t.Fatalf("/update: status %d body %s", code, body)
	}
	runQuery(t, ts.URL, pathQ) // reads Edge through the overlay now

	var reply struct {
		Relations []struct {
			Name        string            `json:"name"`
			Arity       int               `json:"arity"`
			Cardinality int               `json:"cardinality"`
			HasOverlay  bool              `json:"has_overlay"`
			Heat        *obs.RelationHeat `json:"heat"`
		} `json:"relations"`
	}
	if code := getJSON(t, ts.URL+"/debug/relations", &reply); code != http.StatusOK {
		t.Fatalf("/debug/relations: status %d", code)
	}
	var edge *struct {
		Name        string            `json:"name"`
		Arity       int               `json:"arity"`
		Cardinality int               `json:"cardinality"`
		HasOverlay  bool              `json:"has_overlay"`
		Heat        *obs.RelationHeat `json:"heat"`
	}
	for i := range reply.Relations {
		if reply.Relations[i].Name == "Edge" {
			edge = &reply.Relations[i]
		}
	}
	if edge == nil {
		t.Fatalf("Edge missing from %+v", reply.Relations)
	}
	if edge.Arity != 2 || edge.Cardinality == 0 {
		t.Fatalf("catalog join: %+v", edge)
	}
	if !edge.HasOverlay {
		t.Fatal("update applied but has_overlay false")
	}
	if edge.Heat == nil {
		t.Fatal("Edge has no heat row")
	}
	h := edge.Heat
	if h.Reads != 2 {
		t.Fatalf("reads %d, want 2 (triangle + path)", h.Reads)
	}
	if h.OverlayReads != 1 {
		t.Fatalf("overlay reads %d, want 1 (only the post-update query)", h.OverlayReads)
	}
	if h.Probes == 0 || h.Intersections == 0 {
		t.Fatalf("no loop-nest attribution: %+v", h)
	}
	if len(h.LevelProbes) == 0 {
		t.Fatalf("no per-column probes: %+v", h)
	}
	if h.UpdateBatches != 1 || h.UpdateRows != 2 || h.UpdateBytes != 2*2*4 {
		t.Fatalf("update counters: %+v", h)
	}
	if h.LastRead == "" || h.LastUpdate == "" {
		t.Fatalf("timestamps: %+v", h)
	}
}

func TestDebugCacheEndpoint(t *testing.T) {
	_, ts := newTestService(t, Config{})
	runQuery(t, ts.URL, triangleQ) // miss: fills plan + result cache
	runQuery(t, ts.URL, triangleQ) // fast-path result serve: bumps entry hits

	var reply struct {
		PlanCache struct {
			Stats   PlanCacheStats `json:"stats"`
			Entries []struct {
				Fingerprint string   `json:"fingerprint"`
				Reads       []string `json:"reads"`
				Epoch       uint64   `json:"epoch"`
				Hits        int64    `json:"hits"`
			} `json:"entries"`
		} `json:"plan_cache"`
		ResultCache struct {
			Stats   CacheStats `json:"stats"`
			Entries []struct {
				Key         string   `json:"key"`
				Reads       []string `json:"reads"`
				RelEpochs   []uint64 `json:"rel_epochs"`
				AgeS        float64  `json:"age_s"`
				Hits        int64    `json:"hits"`
				Cardinality int      `json:"cardinality"`
				ApproxBytes int64    `json:"approx_bytes"`
			} `json:"entries"`
		} `json:"result_cache"`
	}
	if code := getJSON(t, ts.URL+"/debug/cache", &reply); code != http.StatusOK {
		t.Fatalf("/debug/cache: status %d", code)
	}
	if len(reply.PlanCache.Entries) != 1 {
		t.Fatalf("plan entries: %+v", reply.PlanCache.Entries)
	}
	pe := reply.PlanCache.Entries[0]
	if pe.Fingerprint == "" || len(pe.Reads) == 0 {
		t.Fatalf("plan entry: %+v", pe)
	}
	hasEdge := false
	for _, r := range pe.Reads {
		hasEdge = hasEdge || r == "Edge"
	}
	if !hasEdge {
		t.Fatalf("plan entry read set misses Edge: %+v", pe)
	}
	if pe.Hits != 1 {
		t.Fatalf("plan entry hits %d, want 1 (the fast-path serve)", pe.Hits)
	}
	if len(reply.ResultCache.Entries) != 1 {
		t.Fatalf("result entries: %+v", reply.ResultCache.Entries)
	}
	re := reply.ResultCache.Entries[0]
	if !strings.Contains(re.Key, pe.Fingerprint) {
		t.Fatalf("result key %q does not embed fingerprint %q", re.Key, pe.Fingerprint)
	}
	if len(re.Reads) == 0 || len(re.RelEpochs) != len(re.Reads) {
		t.Fatalf("result entry read set: %+v", re)
	}
	if re.Hits != 1 {
		t.Fatalf("result entry hits %d, want 1", re.Hits)
	}
	if re.AgeS < 0 || re.AgeS > 60 {
		t.Fatalf("result entry age %g", re.AgeS)
	}
}

// TestWorkloadDisabled verifies DisableWorkloadStats turns the whole
// profiler off without touching query serving.
func TestWorkloadDisabled(t *testing.T) {
	s, ts := newTestService(t, Config{DisableWorkloadStats: true})
	qr := runQuery(t, ts.URL, triangleQ)
	if qr.Scalar == nil {
		t.Fatal("query did not run")
	}
	if code := getStatus(t, ts.URL+"/debug/workload"); code != http.StatusNotFound {
		t.Fatalf("/debug/workload while disabled: status %d", code)
	}
	// /debug/relations still serves the catalog, just without heat.
	var reply struct {
		Relations []struct {
			Name string            `json:"name"`
			Heat *obs.RelationHeat `json:"heat"`
		} `json:"relations"`
	}
	if code := getJSON(t, ts.URL+"/debug/relations", &reply); code != http.StatusOK {
		t.Fatalf("/debug/relations: status %d", code)
	}
	if len(reply.Relations) == 0 || reply.Relations[0].Heat != nil {
		t.Fatalf("disabled profiler produced heat: %+v", reply.Relations)
	}
	if st := s.StatsSnapshot(); st.Workload.Observed != 0 {
		t.Fatalf("disabled profiler observed queries: %+v", st.Workload)
	}
}

// TestWorkloadRegistryEvictionHTTP drives more fingerprints than the
// registry holds through the real handler stack.
func TestWorkloadRegistryEvictionHTTP(t *testing.T) {
	_, ts := newTestService(t, Config{WorkloadCap: 2})
	queries := []string{triangleQ, pathQ, degreeQ}
	for _, q := range queries {
		runQuery(t, ts.URL, q)
	}
	var wl workloadReply
	if code := getJSON(t, ts.URL+"/debug/workload", &wl); code != http.StatusOK {
		t.Fatal("workload fetch failed")
	}
	if wl.Totals.Fingerprints != 2 || wl.Totals.Evictions != 1 || wl.Totals.Observed != 3 {
		t.Fatalf("capacity 2 after 3 fingerprints: %+v", wl.Totals)
	}
}

// TestMetricsWorkloadFamilies checks the PR's /metrics additions: cache
// hit ratios in [0,1], route counters consistent with traffic, and
// eh_build_info present exactly once.
func TestMetricsWorkloadFamilies(t *testing.T) {
	_, ts := newTestService(t, Config{})
	runQuery(t, ts.URL, triangleQ)
	runQuery(t, ts.URL, triangleQ)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	ratioRe := regexp.MustCompile(`(?m)^emptyheaded_cache_hit_ratio\{cache="(plan|result)"\} (\S+)$`)
	ratios := ratioRe.FindAllStringSubmatch(text, -1)
	if len(ratios) != 2 {
		t.Fatalf("cache hit ratio series: %v", ratios)
	}
	for _, m := range ratios {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v < 0 || v > 1 {
			t.Fatalf("ratio %s=%s not in [0,1]", m[1], m[2])
		}
	}

	routeRe := regexp.MustCompile(`(?m)^emptyheaded_query_route_total\{route="(result_hit|plan_hit|miss)"\} (\d+)$`)
	total := int64(0)
	for _, m := range routeRe.FindAllStringSubmatch(text, -1) {
		n, _ := strconv.ParseInt(m[2], 10, 64)
		if n < 0 {
			t.Fatalf("negative route counter: %v", m)
		}
		total += n
	}
	if total != 2 {
		t.Fatalf("route counters sum to %d, want 2 queries", total)
	}

	for _, want := range []string{
		"emptyheaded_workload_fingerprints 1",
		"emptyheaded_workload_observed_total 2",
		"emptyheaded_events_total",
		`emptyheaded_relation_reads_total{relation="Edge"}`,
		`emptyheaded_relation_probes_total{relation="Edge"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	if n := strings.Count(text, "\neh_build_info{"); n != 1 {
		t.Fatalf("eh_build_info appears %d times, want exactly 1", n)
	}
}

// benchServeQuery measures the full request path — handler, execute,
// render — with the workload profiler on (the default) or off, so the
// bench artifact records the profiler's end-to-end cost.
func benchServeQuery(b *testing.B, disable bool) {
	eng := core.New()
	eng.Opts.Parallelism = 1
	eng.LoadGraph("Edge", gen.PowerLaw(1000, 15000, 2.1, 17))
	s := New(eng, Config{Workers: 1, DisableWorkloadStats: disable})
	defer s.Close()
	h := s.Handler()
	body, _ := json.Marshal(QueryRequest{Query: triangleQ, NoCache: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkServeQueryWorkload(b *testing.B)   { benchServeQuery(b, false) }
func BenchmarkServeQueryNoWorkload(b *testing.B) { benchServeQuery(b, true) }

// TestWorkloadOverheadGate is the CI gate extension for this PR: the
// whole serving path with the workload profiler on (the default) must
// cost < 3% over the profiler-off path on triangle + 2-path. Env-gated
// so tier-1 `go test ./...` stays timing-free. Methodology mirrors
// exec's TestAnalyzeOverheadGate: interleaved runs, min-of-N, best of 5
// attempts (the extra attempts absorb scheduler noise on the ~20ms
// request path).
func TestWorkloadOverheadGate(t *testing.T) {
	if os.Getenv("EH_WORKLOAD_GATE") == "" {
		t.Skip("set EH_WORKLOAD_GATE=1 to run the workload-profiler overhead gate")
	}
	for _, tc := range []struct {
		name, q string
		rounds  int
	}{
		{"triangle", triangleQ, 25},
		{"path2", pathQ, 15},
	} {
		newSrv := func(disable bool) (*Server, http.Handler) {
			eng := core.New()
			eng.Opts.Parallelism = 1
			eng.LoadGraph("Edge", gen.PowerLaw(3000, 60000, 2.1, 17))
			s := New(eng, Config{Workers: 1, DisableWorkloadStats: disable})
			return s, s.Handler()
		}
		sOn, hOn := newSrv(false)
		sOff, hOff := newSrv(true)
		defer sOn.Close()
		defer sOff.Close()
		body, _ := json.Marshal(QueryRequest{Query: tc.q, NoCache: true})
		run := func(h http.Handler) time.Duration {
			req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
			w := httptest.NewRecorder()
			start := time.Now()
			h.ServeHTTP(w, req)
			d := time.Since(start)
			if w.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", tc.name, w.Code, w.Body.String())
			}
			return d
		}
		run(hOff) // warm indexes + plan caches on both sides
		run(hOn)
		measure := func() (off, on time.Duration) {
			offs := make([]time.Duration, 0, tc.rounds)
			ons := make([]time.Duration, 0, tc.rounds)
			for i := 0; i < tc.rounds; i++ {
				offs = append(offs, run(hOff))
				ons = append(ons, run(hOn))
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			sort.Slice(ons, func(i, j int) bool { return ons[i] < ons[j] })
			return offs[0], ons[0]
		}
		best := 1e9
		for attempt := 0; attempt < 5; attempt++ {
			off, on := measure()
			overhead := float64(on-off) / float64(off)
			t.Logf("%s attempt %d: off=%v on=%v overhead=%.2f%%", tc.name, attempt, off, on, overhead*100)
			if overhead < best {
				best = overhead
			}
			if best <= 0.03 {
				break
			}
		}
		if best > 0.03 {
			t.Errorf("%s: workload-profiler overhead %.2f%% exceeds 3%% in all attempts",
				tc.name, best*100)
		}
	}
}
