package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/fault"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/wal"
)

// newChaosService builds a WAL-backed test service whose file operations
// route through the given injector (points "wal.*").
func newChaosService(t *testing.T, cfg Config, in *fault.Injector) (*Server, *httptest.Server) {
	t.Helper()
	eng := core.New()
	eng.LoadGraph("Edge", gen.PowerLaw(150, 900, 2.1, 42))
	if _, err := eng.OpenWAL(core.WALConfig{Dir: t.TempDir(), Sync: wal.SyncAlways, FS: fault.NewFS(in, "wal")}); err != nil {
		t.Fatal(err)
	}
	s := New(eng, cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postUpdate(t *testing.T, base string) (int, string, http.Header) {
	t.Helper()
	body, err := json.Marshal(UpdateRequest{Name: "Edge", Inserts: [][]uint32{{200, 201}}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String(), resp.Header
}

// TestBreakerTripsAndRecovers drives the full degraded-mode cycle:
// persistent fsync failures trip the durability breaker, writes fail
// fast with Retry-After while queries and readiness report degraded,
// and once the disk heals the background probe restores writes.
func TestBreakerTripsAndRecovers(t *testing.T) {
	in := fault.New(31)
	s, ts := newChaosService(t, Config{
		BreakerThreshold: 2,
		BreakerProbe:     10 * time.Millisecond,
		RetryAfter:       2 * time.Second,
	}, in)

	// Healthy baseline: a write lands.
	if code, body, _ := postUpdate(t, ts.URL); code != http.StatusOK {
		t.Fatalf("baseline update: %d %s", code, body)
	}

	// The disk dies: every fsync fails from here on.
	in.Add(fault.Rule{Point: "wal.sync", Kind: fault.Err, OnCall: 1, Times: -1})
	for i := 0; i < 2; i++ {
		code, body, hdr := postUpdate(t, ts.URL)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("failing update %d: %d %s (%s)", i, code, body, in)
		}
		if hdr.Get("Retry-After") != "2" {
			t.Fatalf("failing update %d: Retry-After %q, want \"2\"", i, hdr.Get("Retry-After"))
		}
	}
	// Threshold reached: the breaker is open, writes fail fast without
	// touching the WAL.
	code, body, hdr := postUpdate(t, ts.URL)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded update: %d %s (%s)", code, body, in)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	// Reads keep serving.
	if qr := runQuery(t, ts.URL, triangleQ); qr.Cardinality < 0 {
		t.Fatal("query failed while degraded")
	}
	// Readiness reports the degradation.
	var rz struct {
		Ready    bool   `json:"ready"`
		Phase    string `json:"phase"`
		Degraded bool   `json:"degraded"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rz); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded: %d %+v", code, rz)
	}
	if rz.Ready || !rz.Degraded || rz.Phase != "ready" {
		t.Fatalf("/readyz payload %+v", rz)
	}
	if got := metricsText(t, ts.URL); !strings.Contains(got, "emptyheaded_degraded 1") ||
		!strings.Contains(got, "emptyheaded_breaker_trips_total 1") {
		t.Fatalf("/metrics does not show the open breaker (%s)", in)
	}

	// The disk heals; the probe loop notices and writes resume.
	in.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body, _ := postUpdate(t, ts.URL)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: last %d %s (%s)", code, body, in)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/readyz", &rz); code != http.StatusOK || !rz.Ready {
		t.Fatalf("/readyz after recovery: %d %+v", code, rz)
	}
	_ = s
}

// TestPanicIsolation: an injected executor panic becomes a 500 carrying
// the request's trace ID, the worker slot is reusable, and the panic is
// counted — the process never dies.
func TestPanicIsolation(t *testing.T) {
	_, ts := newTestService(t, Config{})
	in := fault.New(32, fault.Rule{Point: "exec.worker", Kind: fault.PanicKind, OnCall: 1})
	restore := fault.Enable(in)
	var qr QueryResponse
	code, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: triangleQ, NoCache: true}, &qr)
	restore()
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking query: %d %s (%s)", code, body, in)
	}
	if !strings.Contains(body, "panic") || !strings.Contains(body, "trace_id") {
		t.Fatalf("panic 500 body %q lacks panic message or trace_id", body)
	}
	// The server keeps serving.
	runQuery(t, ts.URL, triangleQ)
	if got := metricsText(t, ts.URL); !strings.Contains(got, "emptyheaded_recovered_panics_total 1") {
		t.Fatalf("recovered panic not counted (%s)", in)
	}
}

// TestClientCancellationFreesSlot: a dropped client releases its worker
// slot promptly — with a single worker, a follow-up query is admitted
// and served instead of queue-timing out behind a zombie.
func TestClientCancellationFreesSlot(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1, QueueDepth: 4, QueueWait: time.Second})
	// Latency injection makes the query slow enough to cancel mid-flight
	// (each worker block claim sleeps).
	in := fault.New(33, fault.Rule{Point: "exec.worker", Kind: fault.Latency, OnCall: 1, Times: -1, Sleep: 50 * time.Millisecond})
	restore := fault.Enable(in)
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		body := strings.NewReader(`{"query":"` + pathQ + `","no_cache":true}`)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", body)
		if err != nil {
			errc <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // let it get admitted and run
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request reported success")
	}

	// The slot must come back within the cooperative stop interval.
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.stats().Active != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker slot never released after client cancel (%s)", in)
		}
		time.Sleep(10 * time.Millisecond)
	}
	in.Clear()
	// The single worker serves again without queue-timeout.
	runQuery(t, ts.URL, triangleQ)

	// The abandonment is counted (booking happens as the handler
	// unwinds, possibly after the client's error returns — poll).
	deadline = time.Now().Add(2 * time.Second)
	for s.res.cancelledClients.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancelled client never counted (%s)", in)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryDeadline: a configured per-request budget stops a slow query
// with 504 and counts it.
func TestQueryDeadline(t *testing.T) {
	_, ts := newTestService(t, Config{QueryDeadline: 60 * time.Millisecond})
	in := fault.New(34, fault.Rule{Point: "exec.worker", Kind: fault.Latency, OnCall: 1, Times: -1, Sleep: 40 * time.Millisecond})
	restore := fault.Enable(in)
	var qr QueryResponse
	code, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: pathQ, NoCache: true}, &qr)
	restore()
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: %d %s (%s)", code, body, in)
	}
	if got := metricsText(t, ts.URL); !strings.Contains(got, "emptyheaded_query_deadline_exceeded_total 1") {
		t.Fatalf("deadline exceed not counted (%s)", in)
	}
}

// metricsText fetches /metrics as a string.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 16384)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
