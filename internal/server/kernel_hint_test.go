package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestQueryKernelHint drives the /query kernel hint end to end: the
// hint pins the uint∩uint algorithm for one run, never changes the
// result, bypasses the result-cache read (a hinted request must
// execute) but still fills the cache, and echoes through the analyze
// payload. An unknown algorithm is rejected before admission.
func TestQueryKernelHint(t *testing.T) {
	_, ts := newTestService(t, Config{})

	base := runQuery(t, ts.URL, triangleQ)
	if base.Scalar == nil {
		t.Fatalf("no scalar: %+v", base)
	}

	// Hinted request: same scalar, not served from the result cache even
	// though the plain request above filled it.
	var hinted QueryResponse
	code, body := postJSON(t, ts.URL+"/query", map[string]any{
		"query":   triangleQ,
		"kernel":  map[string]string{"algo": "galloping"},
		"analyze": true,
	}, &hinted)
	if code != http.StatusOK {
		t.Fatalf("hinted query: code %d body %s", code, body)
	}
	if hinted.Scalar == nil || *hinted.Scalar != *base.Scalar {
		t.Fatalf("hint changed the result: %+v vs %+v", hinted.Scalar, base.Scalar)
	}
	if hinted.ResultCached {
		t.Fatal("hinted request served from result cache; it must execute")
	}
	if hinted.Analyze == nil || hinted.Analyze.Kernel != "galloping" {
		t.Fatalf("analyze kernel echo: %+v", hinted.Analyze)
	}

	// The per-level dispatch routes ride on the annotated plan.
	if hinted.Analyze.Plan == "" || !strings.Contains(hinted.Analyze.Plan, "kernels[") {
		t.Fatalf("annotated plan lacks kernel routes:\n%s", hinted.Analyze.Plan)
	}

	// "auto" is the explicit default spelling.
	var auto QueryResponse
	if code, body := postJSON(t, ts.URL+"/query", map[string]any{
		"query":  triangleQ,
		"kernel": map[string]string{"algo": "auto"},
	}, &auto); code != http.StatusOK {
		t.Fatalf("auto hint: code %d body %s", code, body)
	} else if *auto.Scalar != *base.Scalar {
		t.Fatalf("auto hint changed the result")
	}

	// Unknown algorithm: 400 before admission.
	if code, body := postJSON(t, ts.URL+"/query", map[string]any{
		"query":  triangleQ,
		"kernel": map[string]string{"algo": "simd"},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad algo: code %d body %s", code, body)
	}

	// An unhinted request still hits the cache the hinted run refilled.
	again := runQuery(t, ts.URL, triangleQ)
	if !again.ResultCached {
		t.Fatalf("plain request after hinted run not cached: %+v", again)
	}
}
