package server

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// errDegraded is the degraded read-only refusal: the durability breaker
// is open, so writes fail fast while queries and snapshots keep serving.
var errDegraded = errors.New("server degraded: durability failure, writes disabled (read-only mode)")

// resilience holds the failure-contract counters /metrics exports. They
// are booked at the single classification point (errStatus) plus the
// panic-recovery boundaries, so every 499/504/500-by-panic/degraded-503
// increments exactly one of them.
type resilience struct {
	recoveredPanics  atomic.Int64
	cancelledClients atomic.Int64
	deadlineExceeded atomic.Int64
	degradedRejected atomic.Int64
}

// breaker is the durability circuit breaker behind degraded read-only
// mode. It counts consecutive persistent write failures (WAL append or
// fsync errors surfacing as core.ErrDurability); at the threshold it
// opens, and an open breaker makes /update fail fast with Retry-After
// while reads serve normally. A background probe loop then exercises
// the disk (Engine.ProbeDurability → wal.Log.Probe, which also repairs
// a poisoned log by truncating to the last acked record); the first
// successful probe closes the breaker and writes resume.
type breaker struct {
	threshold  int // < 0 disables the breaker entirely
	probeEvery time.Duration
	probe      func() error

	open   atomic.Bool
	consec atomic.Int64
	trips  atomic.Int64

	// notify, when set, receives breaker state transitions ("breaker_trip",
	// "breaker_recover") for the structured event log. Called outside any
	// lock; the trip CAS and the recovery Store serialize the transitions.
	notify func(kind string, fields map[string]any)

	quit     chan struct{}
	quitOnce sync.Once
	probing  sync.WaitGroup
}

func newBreaker(threshold int, probeEvery time.Duration, probe func() error) *breaker {
	return &breaker{
		threshold:  threshold,
		probeEvery: probeEvery,
		probe:      probe,
		quit:       make(chan struct{}),
	}
}

// allow reports whether writes may proceed.
func (b *breaker) allow() bool { return !b.open.Load() }

// success books a durable write: any failure streak is forgiven.
func (b *breaker) success() { b.consec.Store(0) }

// failure books one durability failure; at the threshold the breaker
// opens and the probe loop starts. The CompareAndSwap makes concurrent
// failing updates race to at most one trip (and one probe goroutine).
func (b *breaker) failure() {
	if b.threshold < 0 {
		return
	}
	if n := b.consec.Add(1); n >= int64(b.threshold) {
		if b.open.CompareAndSwap(false, true) {
			b.trips.Add(1)
			if b.notify != nil {
				b.notify("breaker_trip", map[string]any{"consecutive_failures": n, "trips": b.trips.Load()})
			}
			b.probing.Add(1)
			go b.probeLoop()
		}
	}
}

// probeLoop probes the disk until it heals or the server closes. It
// runs only while the breaker is open — closed breakers cost nothing.
func (b *breaker) probeLoop() {
	defer b.probing.Done()
	t := time.NewTicker(b.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-b.quit:
			return
		case <-t.C:
			if b.probe() == nil {
				b.consec.Store(0)
				b.open.Store(false)
				if b.notify != nil {
					b.notify("breaker_recover", map[string]any{"trips": b.trips.Load()})
				}
				return
			}
		}
	}
}

// close stops any probe loop and waits for it to exit.
func (b *breaker) close() {
	b.quitOnce.Do(func() { close(b.quit) })
	b.probing.Wait()
}

// SetBootPhase publishes the server's boot phase ("loading",
// "restoring", "replaying-wal", "ready", "draining", ...). /readyz
// reports ready only in the "ready" phase with a closed breaker;
// embedders that construct a server over a pre-loaded engine start in
// "ready" and never need to call this.
func (s *Server) SetBootPhase(phase string) {
	s.bootPhase.Store(phase)
	s.obs.events.Emit("boot_phase", 0, map[string]any{"phase": phase})
}

// handleReady is /readyz: readiness for load balancers and orchestration.
// Unlike /healthz (pure liveness), it goes unready while the server is
// still booting — restoring a snapshot, replaying the WAL — or degraded.
// Degraded servers still answer reads, so a caller that only queries may
// choose to keep routing; the endpoint reports "degraded" separately so
// both policies are expressible.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	phase, _ := s.bootPhase.Load().(string)
	degraded := !s.brk.allow()
	ready := phase == "ready" && !degraded
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", s.retryAfterValue())
	}
	writeJSON(w, code, map[string]any{
		"ready":    ready,
		"phase":    phase,
		"degraded": degraded,
	})
}
