// Package server is EmptyHeaded's query service: an HTTP/JSON facade over
// core.Engine that serves concurrent datalog queries with an LRU plan
// cache (keyed by normalized query fingerprints, so repeated queries skip
// parsing and GHD optimization the way the paper's compiler amortizes
// codegen across runs), a result cache invalidated on relation mutation,
// and a bounded worker-pool admission controller.
//
// Endpoints:
//
//	POST /query     {"query": "...", "limit": 100}        run a datalog program
//	POST /explain   {"query": "..."}                      render the physical plan
//	GET  /relations                                       catalog of stored relations
//	POST /load      {"name": "Edge", "path"|"edges"|...}  load a relation, invalidate caches
//	POST /update    {"name": "Edge", "inserts"|...}       stream inserts/deletes (WAL + delta overlay)
//	POST /compact   {"name": "Edge"}                      fold a relation's overlay into its base
//	POST /snapshot  {"dir": "/data/snap"}                 persist the database (binary snapshot)
//	POST /restore   {"dir": "/data/snap"}                 replace the database from a snapshot
//	GET  /stats                                           per-endpoint latency + cache counters
//	GET  /metrics                                         the same counters in Prometheus text format
//	GET  /healthz                                         liveness
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/datalog"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/fault"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/obs"
	"emptyheaded/internal/prov"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
	"emptyheaded/internal/storage"
	"emptyheaded/internal/trace"
)

// Config sizes the service; zero values take the documented defaults.
type Config struct {
	// Workers bounds concurrently executing queries (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker slot (default
	// 4×Workers); beyond it requests 503 at once. Up to Workers more are
	// executing, so Workers+QueueDepth requests can be in flight.
	QueueDepth int
	// QueueWait bounds time spent waiting for a worker slot (default 2s).
	QueueWait time.Duration
	// PlanCacheSize is the number of cached prepared plans (default 256).
	PlanCacheSize int
	// ResultCacheSize is the number of cached query results (default 128).
	ResultCacheSize int
	// MaxCachedTuples: results with more tuples than this are not cached
	// (default 65536).
	MaxCachedTuples int
	// DefaultLimit caps tuples rendered in a response when the request
	// doesn't set its own limit (default 1000).
	DefaultLimit int
	// DataDir is the default snapshot directory for /snapshot and
	// /restore requests that don't name one (and the directory eh-server
	// auto-restores from on boot / snapshots to on SIGTERM). Empty means
	// requests must name a directory explicitly.
	DataDir string
	// TraceRing is how many completed query/update traces /debug/queries
	// retains (default 128).
	TraceRing int
	// SlowQueryThreshold: finished requests at or above it are written
	// to SlowQueryLog as one JSON line each (0 disables the log).
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query JSON lines (default
	// os.Stderr when SlowQueryThreshold is set).
	SlowQueryLog io.Writer
	// QueryDeadline bounds one /query request end to end — admission
	// wait, plan, execute, and render all share the budget — via a
	// context deadline that trips the loop nest's cooperative stop
	// flag. 0 means no budget (the request context still cancels on
	// client disconnect).
	QueryDeadline time.Duration
	// RetryAfter is the Retry-After hint attached to shed 503s
	// (admission, degraded mode, durability failures); default 1s.
	RetryAfter time.Duration
	// BreakerThreshold is how many consecutive durability failures trip
	// the read-only circuit breaker (default 3; < 0 disables it).
	BreakerThreshold int
	// BreakerProbe paces the tripped breaker's background disk probes
	// (default 1s).
	BreakerProbe time.Duration
	// WorkloadCap bounds the per-fingerprint workload registry (default
	// obs.DefaultWorkloadCap; least-recently-observed fingerprints
	// evict).
	WorkloadCap int
	// DisableWorkloadStats turns the workload profiler off: no
	// fingerprint registry, no relation heat, and queries stop
	// collecting kernel counters by default (Analyze requests still
	// do). The zero value keeps it on — profiling is the default.
	DisableWorkloadStats bool
	// Events is the unified structured event log (slow queries, WAL
	// rotations, compactions, snapshots, breaker transitions, panics,
	// boot phases). Nil falls back to wrapping SlowQueryLog when that
	// is set, else events are dropped.
	Events *obs.EventLog
	// ProvenanceRing is how many query provenance records
	// /debug/provenance retains (default 256).
	ProvenanceRing int
	// AuditFraction is the probability that one result-cache serve
	// triggers a background self-audit of the served entry (the entry's
	// query re-executes uncached and the responses are compared; a
	// mismatch evicts the entry and emits an audit_mismatch event). 0
	// disables sampling — POST /debug/audit still sweeps on demand.
	AuditFraction float64
	// DisableProvenance turns determination provenance off: no records,
	// no ring, no query_provenance events. The zero value keeps it on —
	// provenance is the default (its cost is bounded by the <3% CI
	// gate); the off switch exists for that gate's baseline.
	DisableProvenance bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 256
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 128
	}
	if c.MaxCachedTuples <= 0 {
		c.MaxCachedTuples = 65536
	}
	if c.DefaultLimit <= 0 {
		c.DefaultLimit = 1000
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 128
	}
	if c.SlowQueryThreshold > 0 && c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerProbe <= 0 {
		c.BreakerProbe = time.Second
	}
	if c.ProvenanceRing <= 0 {
		c.ProvenanceRing = 256
	}
	return c
}

// Server wraps one engine behind the HTTP query service. The engine's
// Opts must not be mutated once the server is serving.
type Server struct {
	eng     *core.Engine
	cfg     Config
	plans   *planCache
	results *lruCache
	adm     *admission
	start   time.Time

	// rec retains completed request traces for the debug endpoints; obs
	// owns the latency histograms and the slow-query log.
	rec *trace.Recorder
	obs *observability

	// gen is the database generation: it advances on every /restore.
	// Result-cache keys embed it because snapshot epochs are adopted
	// verbatim on install and are NOT comparable across generations — a
	// query in flight during a restore would otherwise cache a
	// pre-restore result whose epoch stamps can collide with the restored
	// database's epochs and be served as fresh.
	gen atomic.Uint64

	// brk is the durability circuit breaker behind degraded read-only
	// mode; res holds the failure-contract counters /metrics exports;
	// bootPhase (a string) feeds /readyz.
	brk       *breaker
	res       resilience
	bootPhase atomic.Value

	// workload is the per-fingerprint aggregate registry behind
	// /debug/workload; heat the per-relation counters behind
	// /debug/relations. Both nil when Config.DisableWorkloadStats.
	workload *obs.Workload
	heat     *obs.RelHeat

	// prov retains recent determination-provenance records (one per
	// served query: fingerprint + per-relation epoch/overlay/WAL-seq
	// lineage) for /debug/provenance and /debug/diff; nil when
	// Config.DisableProvenance. audit holds the result-cache
	// self-auditor's counters.
	prov  *prov.Ring
	audit auditCounters

	endpoints map[string]*latencyWindow
}

// New builds a server over eng. When the engine doesn't pin per-query
// parallelism explicitly, it is set so that Workers concurrent queries
// together use roughly GOMAXPROCS goroutines.
func New(eng *core.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if eng.Opts.Parallelism == 0 {
		if p := runtime.GOMAXPROCS(0) / cfg.Workers; p > 1 {
			eng.Opts.Parallelism = p
		} else {
			eng.Opts.Parallelism = 1
		}
	}
	s := &Server{
		eng:     eng,
		cfg:     cfg,
		plans:   newPlanCache(cfg.PlanCacheSize),
		results: newLRUCache(cfg.ResultCacheSize),
		adm:     newAdmission(cfg.Workers, cfg.QueueDepth, cfg.QueueWait),
		start:   time.Now(),
		rec:     trace.NewRecorder(cfg.TraceRing),
		obs:     newObservability(cfg),
		endpoints: map[string]*latencyWindow{
			"/query":     newLatencyWindow(),
			"/explain":   newLatencyWindow(),
			"/relations": newLatencyWindow(),
			"/load":      newLatencyWindow(),
			"/update":    newLatencyWindow(),
			"/compact":   newLatencyWindow(),
			"/snapshot":  newLatencyWindow(),
			"/restore":   newLatencyWindow(),
			"/stats":     newLatencyWindow(),
		},
	}
	if !cfg.DisableWorkloadStats {
		s.workload = obs.NewWorkload(cfg.WorkloadCap)
		s.heat = obs.NewRelHeat()
	}
	if !cfg.DisableProvenance {
		s.prov = prov.NewRing(cfg.ProvenanceRing)
	}
	s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerProbe, eng.ProbeDurability)
	// Breaker transitions land in the event log as paired breaker +
	// degraded-mode events.
	s.brk.notify = func(kind string, fields map[string]any) {
		switch kind {
		case "breaker_trip":
			s.obs.events.Emit(kind, 0, fields)
			s.obs.events.Emit("degraded_enter", 0, nil)
		case "breaker_recover":
			s.obs.events.Emit(kind, 0, fields)
			s.obs.events.Emit("degraded_exit", 0, nil)
		}
	}
	// Embedders serve a pre-loaded engine: ready from the start.
	// eh-server walks the phase through its boot sequence instead.
	s.bootPhase.Store("ready")
	// Feed the core subsystems' latency events (WAL fsyncs, overlay
	// compactions) into the server's histograms, and its state-changing
	// events (rotations, compactions, snapshots, replay) into the
	// unified event log.
	eng.SetObservers(core.Observers{
		WALFsync:   s.obs.fsync.Observe,
		Compaction: s.obs.compact.Observe,
		Event:      func(kind string, fields map[string]any) { s.obs.events.Emit(kind, 0, fields) },
	})
	return s
}

// Close releases the server's background resources (the breaker's
// probe loop). The HTTP listener is owned by the caller.
func (s *Server) Close() { s.brk.close() }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.instrument("/query", s.handleQuery))
	mux.HandleFunc("/explain", s.instrument("/explain", s.handleExplain))
	mux.HandleFunc("/relations", s.instrument("/relations", s.handleRelations))
	mux.HandleFunc("/load", s.instrument("/load", s.handleLoad))
	mux.HandleFunc("/update", s.instrument("/update", s.handleUpdate))
	mux.HandleFunc("/compact", s.instrument("/compact", s.handleCompact))
	mux.HandleFunc("/snapshot", s.instrument("/snapshot", s.handleSnapshot))
	mux.HandleFunc("/restore", s.instrument("/restore", s.handleRestore))
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/trace/", s.handleDebugTrace)
	mux.HandleFunc("/debug/workload", s.handleDebugWorkload)
	mux.HandleFunc("/debug/relations", s.handleDebugRelations)
	mux.HandleFunc("/debug/cache", s.handleDebugCache)
	mux.HandleFunc("/debug/provenance", s.handleDebugProvenance)
	mux.HandleFunc("/debug/provenance/", s.handleDebugProvenance)
	mux.HandleFunc("/debug/diff", s.handleDebugDiff)
	mux.HandleFunc("/debug/audit", s.handleDebugAudit)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/readyz", s.handleReady)
	return mux
}

// statusRecorder captures the response code for error accounting and
// whether anything was written (so panic recovery knows if a 500 can
// still go out).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	lw := s.endpoints[path]
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		// Panic isolation, outer boundary: a handler panic becomes a
		// 500 and the server keeps serving. (Query/update handlers also
		// recover closer in, to attach the trace ID.)
		defer func() {
			if v := recover(); v != nil {
				s.res.recoveredPanics.Add(1)
				s.obs.events.Emit("panic", 0, map[string]any{
					"endpoint": path, "error": fmt.Sprintf("%v", v),
				})
				if !rec.wrote {
					writeJSON(rec, http.StatusInternalServerError,
						map[string]string{"error": fmt.Sprintf("internal panic: %v", v)})
				}
			}
			lw.observe(time.Since(t0), rec.code >= 400)
		}()
		h(rec, r)
	}
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// statusClientClosedRequest is the de-facto "client closed request"
// status (nginx's 499): the client is gone, the code is for accounting.
const statusClientClosedRequest = 499

// errStatus maps err to its HTTP status and books the failure-contract
// counters. One classification point: every handler error goes through
// here exactly once.
func (s *Server) errStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, errDegraded):
		s.res.degradedRejected.Add(1)
		return http.StatusServiceUnavailable
	case errors.Is(err, errQueueFull), errors.Is(err, errQueueTimeout):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrDurability):
		return http.StatusServiceUnavailable
	case errors.Is(err, exec.ErrCanceled), errors.Is(err, context.Canceled):
		// The client went away (mid-execution or while queued).
		s.res.cancelledClients.Add(1)
		return statusClientClosedRequest
	case errors.Is(err, exec.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		s.res.deadlineExceeded.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, exec.ErrExecPanic):
		s.res.recoveredPanics.Add(1)
		s.obs.events.Emit("panic", 0, map[string]any{
			"boundary": "executor", "error": err.Error(),
		})
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

func (s *Server) writeErr(w http.ResponseWriter, err error) {
	s.writeErrTrace(w, err, 0)
}

// writeErrTrace renders err with its mapped status; shed responses
// (503) carry the Retry-After hint that defines the client side of the
// failure contract, and a non-zero trace ID rides along so a failed
// request can be pulled from /debug/trace/<id>.
func (s *Server) writeErrTrace(w http.ResponseWriter, err error, traceID uint64) {
	code := s.errStatus(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfterValue())
	}
	body := map[string]any{"error": err.Error()}
	if traceID != 0 {
		body["trace_id"] = traceID
	}
	writeJSON(w, code, body)
}

// retryAfterValue renders the configured Retry-After hint in whole
// seconds (minimum 1 — a zero would invite an immediate stampede).
func (s *Server) retryAfterValue() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// QueryRequest is the /query body.
type QueryRequest struct {
	Query string `json:"query"`
	// Limit caps tuples in the response and is pushed into listing
	// execution, which stops early instead of materializing the full
	// join (0 = server default; scalar results are unaffected). For
	// listings that project variables away the early stop is best
	// effort: the truncated response may hold fewer than Limit tuples
	// even when more exist.
	Limit int `json:"limit,omitempty"`
	// NoCache skips the result cache for this request (it still
	// populates and uses the plan cache).
	NoCache bool `json:"no_cache,omitempty"`
	// Columns selects the columnar wire shape: the response carries
	// per-attribute arrays ("columns") instead of row tuples. Big
	// listings serialize substantially faster this way (one array per
	// attribute instead of one small array per row), and the server
	// extracts them straight from the result trie's flat columns.
	Columns bool `json:"columns,omitempty"`
	// Analyze runs the query with the EXPLAIN ANALYZE collector and
	// attaches the live kernel counters, annotated plan and phase
	// breakdown to the response. Analyze requests always execute (the
	// result-cache read is skipped — counters of a cached serve would be
	// empty), but still fill the cache for later plain requests.
	Analyze bool `json:"analyze,omitempty"`
	// Provenance attaches the result's determination-provenance record
	// (fingerprint, generation and per-relation epoch / overlay-gen /
	// WAL-watermark lineage) to the response. Cached serves return the
	// fill-time record — the state that determined the bytes served —
	// re-stamped with this request's trace id and Cached: true.
	Provenance bool `json:"provenance,omitempty"`
	// Kernel optionally pins the set-kernel configuration for this
	// request. Results are identical under any kernel — only the dispatch
	// routes change — but hinted requests always execute (cache reads are
	// skipped) so the hint demonstrably steers the kernels; pair with
	// "analyze": true to see the routes taken per trie level.
	Kernel *KernelHint `json:"kernel,omitempty"`
}

// KernelHint is the /query "kernel" object: algo pins the uint∩uint
// intersection algorithm ("auto"|"merge"|"shuffle"|"galloping"; "auto"
// and "" keep the paper's skew-based hybrid rule).
type KernelHint struct {
	Algo string `json:"algo"`
}

// kernelConfig resolves the request's kernel hint to an exec override
// (nil when no hint was sent) plus its echo string for AnalyzeInfo.
func (req *QueryRequest) kernelConfig() (*set.Config, string, error) {
	if req.Kernel == nil {
		return nil, "auto", nil
	}
	algo, err := set.ParseAlgo(req.Kernel.Algo)
	if err != nil {
		return nil, "", err
	}
	return &set.Config{Algo: algo}, algo.String(), nil
}

// QueryResponse is the /query reply.
type QueryResponse struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs,omitempty"`
	// Cardinality is the number of result tuples. When Truncated is set,
	// execution stopped early under the request limit and Cardinality is
	// a lower bound, not the full result size.
	Cardinality int       `json:"cardinality"`
	Scalar      *float64  `json:"scalar,omitempty"`
	Tuples      [][]int64 `json:"tuples,omitempty"`
	// Columns holds the columnar wire shape (Columns[i] is attribute i of
	// every rendered tuple), mutually exclusive with Tuples; requested
	// via QueryRequest.Columns.
	Columns [][]int64 `json:"columns,omitempty"`
	// Anns holds per-tuple annotations, aligned with Tuples, when the
	// result is annotated.
	Anns      []float64 `json:"anns,omitempty"`
	Truncated bool      `json:"truncated,omitempty"`
	ElapsedUS int64     `json:"elapsed_us"`
	// PlanCached: the compiled plan (or at least the parse) came from
	// the plan cache. ResultCached: the whole response did.
	PlanCached   bool `json:"plan_cached"`
	ResultCached bool `json:"result_cached"`
	// TraceID names this request's lifecycle trace, retrievable via
	// /debug/trace/<id> while the ring retains it.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Analyze carries the EXPLAIN ANALYZE payload when requested.
	Analyze *AnalyzeInfo `json:"analyze,omitempty"`
	// Provenance carries the determination-provenance record when
	// requested (QueryRequest.Provenance; nil when provenance is
	// disabled). Also retrievable later via /debug/provenance/<trace_id>.
	Provenance *prov.Record `json:"provenance,omitempty"`
}

// cachedResult is one result-cache slot. Instead of the retired global
// database version, validity is the vector of per-relation epochs of the
// query's read set plus the dictionary epoch: a /load of relation R only
// invalidates entries whose reads include R (or that decode through a
// replaced dictionary), so unrelated hot queries keep their cache across
// loads.
type cachedResult struct {
	reads     []string
	relEpochs []uint64
	dictEpoch uint64
	resp      QueryResponse
	// createdAt stamps the fill time; serves observe the entry's age
	// into the result-cache age histogram.
	createdAt time.Time
	// query/fp/limit/columns reconstruct the request that filled the
	// entry, so the self-auditor can re-execute it; prov is the
	// fill-time determination-provenance record (nil when provenance is
	// disabled). All immutable after construction.
	query   string
	fp      string
	limit   int
	columns bool
	prov    *prov.Record
}

// fresh reports whether cr is still valid against db's current epochs.
func (cr *cachedResult) fresh(db *exec.DB) bool {
	eps, dictEpoch := db.EpochsWithDict(cr.reads)
	if dictEpoch != cr.dictEpoch {
		return false
	}
	for i, e := range eps {
		if e != cr.relEpochs[i] {
			return false
		}
	}
	return true
}

// resultCacheKey keys a cached response: database generation +
// fingerprint + response-shaping parameters (limit and wire shape). The
// generation prefix strands entries cached by queries that were already
// executing when a /restore swapped the database (they age out of the
// LRU).
func resultCacheKey(gen uint64, fp string, limit int, columns bool) string {
	return fmt.Sprintf("g%d/%s/%d/c=%t", gen, fp, limit, columns)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	if req.Query == "" {
		s.writeErr(w, badRequest("missing \"query\""))
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = s.cfg.DefaultLimit
	}
	t0 := time.Now()
	tr := s.rec.Start("query")

	// The request context cancels on client disconnect; a configured
	// query deadline shares the same cooperative-stop mechanism and
	// bounds the whole request — admission wait included.
	ctx := r.Context()
	if s.cfg.QueryDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryDeadline)
		defer cancel()
	}
	// Inner panic boundary: closer in than instrument's so the 500 can
	// carry this request's trace ID.
	defer func() {
		if v := recover(); v != nil {
			s.res.recoveredPanics.Add(1)
			tr.SetError(fmt.Sprintf("panic: %v", v))
			s.obs.finishTrace(tr)
			s.obs.events.Emit("panic", tr.ID, map[string]any{
				"endpoint": "/query", "error": fmt.Sprintf("%v", v),
			})
			if rec, ok := w.(*statusRecorder); !ok || !rec.wrote {
				writeJSON(w, http.StatusInternalServerError,
					map[string]any{"error": fmt.Sprintf("internal panic: %v", v), "trace_id": tr.ID})
			}
		}
	}()

	if _, _, err := req.kernelConfig(); err != nil {
		s.writeErr(w, badRequest("%v", err))
		return
	}
	// Fast path: an exact-text repeat whose result is cached is served
	// without taking a worker slot — a map lookup shouldn't queue behind
	// heavy joins. Analyze requests skip it (a cached serve has no
	// counters to report); kernel-hinted requests too (the hint steers
	// execution, so they must execute).
	if !req.NoCache && !req.Analyze && req.Kernel == nil {
		if resp, ok := s.cachedByText(&req, limit, tr); ok {
			resp.ElapsedUS = time.Since(t0).Microseconds()
			resp.TraceID = tr.ID
			tr.Annot("served", "result_cache_fast_path")
			s.obs.finishTrace(tr)
			s.obs.query.Observe(time.Since(t0))
			s.noteQuery(tr, &req, &resp, &runMeta{route: obs.RouteResultHit}, time.Since(t0), nil)
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	// The admission gate bounds all remaining per-query work — parsing
	// and GHD compilation included, since on a cache miss the optimizer
	// is the expensive step the plan cache exists to amortize.
	sp := tr.Begin("admission")
	release, err := s.adm.acquire(ctx)
	tr.End(sp)
	if err != nil {
		tr.SetError(err.Error())
		s.obs.finishTrace(tr)
		s.writeErrTrace(w, err, tr.ID)
		return
	}
	resp, meta, err := s.runQuery(ctx, &req, limit, tr)
	release()
	if err != nil {
		tr.SetError(err.Error())
		s.obs.finishTrace(tr)
		s.noteQuery(tr, &req, nil, meta, time.Since(t0), err)
		s.writeErrTrace(w, err, tr.ID)
		return
	}
	resp.ElapsedUS = time.Since(t0).Microseconds()
	resp.TraceID = tr.ID
	if req.Analyze {
		_, kecho, _ := req.kernelConfig()
		resp.Analyze = &AnalyzeInfo{
			TraceID:  tr.ID,
			TotalUS:  resp.ElapsedUS,
			PhasesUS: phasesOf(tr),
			Kernel:   kecho,
		}
		if meta != nil && meta.az != nil {
			resp.Analyze.Plan = meta.az.plan
			resp.Analyze.Bags = meta.az.bags
		}
	}
	s.obs.finishTrace(tr)
	s.obs.query.Observe(time.Since(t0))
	s.noteQuery(tr, &req, &resp, meta, time.Since(t0), nil)
	writeJSON(w, http.StatusOK, resp)
}

// cachedByText resolves an exact query text through the alias layer (no
// parsing) and serves a fresh result-cache entry, re-labeled with this
// spelling's attribute names. All lookups use peek so the full path's
// accounting isn't double-booked when this misses.
func (s *Server) cachedByText(req *QueryRequest, limit int, tr *trace.Trace) (QueryResponse, bool) {
	av, ok := s.plans.aliases.peek(req.Query)
	if !ok {
		return QueryResponse{}, false
	}
	alias := av.(*aliasEntry)
	tr.SetFingerprint(alias.fp)
	resultKey := resultCacheKey(s.gen.Load(), alias.fp, limit, req.Columns)
	rv, ok := s.results.peek(resultKey)
	if !ok {
		return QueryResponse{}, false
	}
	cr := rv.(*cachedResult)
	if !cr.fresh(s.eng.DB) {
		return QueryResponse{}, false
	}
	s.obs.cacheAge.Observe(time.Since(cr.createdAt))
	resp := cr.resp
	resp.Attrs = mapAttrs(resp.Attrs, alias.canonToClient)
	resp.ResultCached = true
	resp.PlanCached = true
	// peek skipped the accounting; book the served hits explicitly. A
	// fast-path serve is a plan-cache hit too: the cached plan's result
	// is what made skipping execution possible.
	s.plans.aliases.noteHit(req.Query)
	s.plans.plans.noteHit(alias.fp)
	s.results.noteHit(resultKey)
	s.noteHeatReads(s.eng.DB, cr.reads)
	if rec := s.provOnServe(cr, tr); rec != nil && req.Provenance {
		resp.Provenance = rec
	}
	s.maybeSampleAudit(resultKey)
	return resp, true
}

// mapAttrs relabels result attributes through m, keeping names m doesn't
// cover. Cached responses carry canonical (fingerprint-namespace) names,
// so a serve maps canonical → client spelling regardless of which
// spelling originally computed the result.
func mapAttrs(attrs []string, m map[string]string) []string {
	if len(attrs) == 0 {
		return attrs
	}
	out := make([]string, len(attrs))
	for i, a := range attrs {
		if v, ok := m[a]; ok {
			out[i] = v
		} else {
			out[i] = a
		}
	}
	return out
}

// runMeta carries execution metadata out of runQuery for the workload
// registry and the EXPLAIN ANALYZE payload: which cache route produced
// the response, the run's kernel counters (when collected), and the
// analyze rendering. The phase timings are stamped by the handler,
// which owns the request clock.
type runMeta struct {
	// route is the cache route: obs.RouteResultHit / RoutePlanHit /
	// RouteMiss.
	route string
	stats *exec.ExecStats
	az    *analyzeData
}

// runQuery executes one admitted /query request. ctx cancels execution
// cooperatively (client disconnect, query deadline).
func (s *Server) runQuery(ctx context.Context, req *QueryRequest, limit int, tr *trace.Trace) (QueryResponse, *runMeta, error) {
	// Fork per request: the query runs against a consistent snapshot of
	// relations + dictionary (a concurrent /load can't swap data mid
	// query), and intermediate head relations stay session-local. The
	// fork's global version gates plan recompilation; the fork's
	// per-relation epochs stamp result-cache entries. The generation is
	// read before the fork: a restore between the two strands this
	// request's cache fill under the old generation (harmless), never
	// files a pre-restore result under the new one.
	gen := s.gen.Load()
	fork := s.eng.DB.Fork()
	epoch := fork.Version()
	sp := tr.Begin("plan")
	entry, alias, planHit, err := s.prepared(req.Query, fork, epoch)
	if err != nil {
		tr.End(sp)
		return QueryResponse{}, nil, err
	}
	tr.SetFingerprint(entry.fp)
	relEpochs, dictEpoch := fork.EpochsWithDict(entry.reads)
	annotReadSet(tr, entry.reads, relEpochs, dictEpoch)
	meta := &runMeta{route: obs.RouteMiss}
	if planHit {
		meta.route = obs.RoutePlanHit
	}

	resultKey := resultCacheKey(gen, entry.fp, limit, req.Columns)
	if !req.NoCache && !req.Analyze && req.Kernel == nil {
		if v, ok := s.results.get(resultKey); ok {
			cr := v.(*cachedResult)
			if cr.fresh(fork) {
				tr.End(sp)
				tr.Annot("served", "result_cache")
				s.obs.cacheAge.Observe(time.Since(cr.createdAt))
				s.noteHeatReads(fork, cr.reads)
				resp := cr.resp // copy; attrs re-labeled per spelling
				resp.Attrs = mapAttrs(resp.Attrs, alias.canonToClient)
				resp.ResultCached = true
				resp.PlanCached = planHit
				if rec := s.provOnServe(cr, tr); rec != nil && req.Provenance {
					resp.Provenance = rec
				}
				s.maybeSampleAudit(resultKey)
				meta.route = obs.RouteResultHit
				return resp, meta, nil
			}
			s.results.remove(resultKey) // some read relation (or the dict) moved on
		}
	}

	prep, err := s.freshPrep(entry, fork, epoch)
	tr.End(sp)
	if err != nil {
		// Recompile against the fork failed (e.g. a relation vanished
		// since the entry was cached).
		s.plans.plans.remove(entry.fp)
		return QueryResponse{}, meta, badRequest("compile: %v", err)
	}
	// Push the response limit into execution with one row of headroom.
	// For all-output listings the budget counts distinct tuples, so a
	// result of exactly `limit` tuples is not flagged truncated; listings
	// that project variables away count pre-dedup rows and may return a
	// smaller truncated sample (see exec.Options.Limit). Aggregates and
	// other non-listing shapes run to completion.
	//
	// Kernel counters are collected whenever the workload profiler is on
	// (the default), not just for Analyze requests: the per-fingerprint
	// registry and relation heat map aggregate them. The collection cost
	// is bounded by the same <3% CI gate as EXPLAIN ANALYZE.
	collect := req.Analyze || s.workload != nil
	kcfg, _, kerr := req.kernelConfig()
	if kerr != nil {
		return QueryResponse{}, meta, badRequest("%v", kerr)
	}
	sp = tr.Begin("execute")
	res, err := prep.RunWith(fork, exec.RunParams{Limit: limit + 1, Collect: collect, Trace: tr, Ctx: ctx, Kernel: kcfg})
	tr.End(sp)
	if err != nil {
		if !errors.Is(err, exec.ErrTimeout) && !errors.Is(err, exec.ErrCanceled) &&
			!errors.Is(err, exec.ErrExecPanic) {
			err = badRequest("%v", err)
		}
		return QueryResponse{}, meta, err
	}
	s.noteHeatReads(fork, entry.reads)
	if res.Stats != nil {
		meta.stats = res.Stats
		if s.heat != nil && res.Plan != nil {
			for _, cell := range res.Plan.RelationLevelStats(res.Stats) {
				s.heat.NoteLevel(cell.Rel, cell.Col, cell.Probes, cell.Intersections, cell.Skipped, cell.WordParallel)
			}
		}
	}

	sp = tr.Begin("render")
	resp := s.render(res, limit, fork.Dict(), req.Columns)
	tr.End(sp)
	resp.Truncated = resp.Truncated || res.Truncated
	resp.PlanCached = planHit
	// Canonicalize attribute names before caching so a future serve (or a
	// recreated plan entry) can re-label them for any spelling.
	resp.Attrs = mapAttrs(resp.Attrs, entry.attrToCanon)
	// The provenance record stamps the lineage this execution ran
	// against (relEpochs/dictEpoch were read from the fork before the
	// run); it is recorded before the cache fill so the cached entry can
	// carry it.
	rec := s.noteProvenance(tr, entry.fp, gen, entry.reads, relEpochs, dictEpoch, resp.Cardinality)
	if !req.NoCache && res.Trie.Cardinality() <= s.cfg.MaxCachedTuples {
		// Analyze requests fill the cache too — with the plain response:
		// trace and counters are per-request, not part of the result.
		sp = tr.Begin("cache_fill")
		stampEpochs := relEpochs
		// Fault injection for the self-auditor's tests: a fired
		// "server.cache.stamp" rule mis-stamps this entry's validity
		// vector one epoch ahead, planting an entry that will claim
		// freshness after the next real mutation while its content is
		// stale — the bug class (epoch skew) the auditor exists to catch.
		if ferr := fault.Hit("server.cache.stamp"); ferr != nil {
			stampEpochs = make([]uint64, len(relEpochs))
			for i, e := range relEpochs {
				stampEpochs[i] = e
				// Head shadows in the read set never accrue epochs; only
				// real relations get the lying stamp.
				if e > 0 {
					stampEpochs[i] = e + 1
				}
			}
		}
		s.results.put(resultKey, &cachedResult{
			reads:     entry.reads,
			relEpochs: stampEpochs,
			dictEpoch: dictEpoch,
			resp:      resp,
			createdAt: time.Now(),
			query:     req.Query,
			fp:        entry.fp,
			limit:     limit,
			columns:   req.Columns,
			prov:      rec,
		})
		tr.End(sp)
	}
	resp.Attrs = mapAttrs(resp.Attrs, alias.canonToClient)
	if rec != nil && req.Provenance {
		resp.Provenance = rec
	}
	if req.Analyze && res.Stats != nil {
		meta.az = &analyzeData{bags: res.Stats.Bags}
		if res.Plan != nil {
			meta.az.plan = res.Plan.ExplainAnalyze(res.Stats)
		}
	}
	return resp, meta, nil
}

// annotReadSet records the query's read set and the epochs it executed
// against — the slow-query log carries them so a stale-cache or
// epoch-churn incident can be diagnosed from the log alone.
func annotReadSet(tr *trace.Trace, reads []string, relEpochs []uint64, dictEpoch uint64) {
	if tr == nil || len(reads) == 0 {
		return
	}
	var b strings.Builder
	for i, r := range reads {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%d", r, relEpochs[i])
	}
	tr.Annot("read_epochs", b.String())
	tr.AnnotInt("dict_epoch", int64(dictEpoch))
}

// prepared resolves query text to a cached plan entry: exact text hit (no
// parse), fingerprint hit (re-parse, reuse compilation), or full prepare
// against the request's fork. Returns the entry, the alias carrying this
// spelling's attribute renaming, and whether the plan cache hit.
func (s *Server) prepared(query string, fork *exec.DB, epoch uint64) (*planEntry, *aliasEntry, bool, error) {
	lookup := func(fp string) *planEntry {
		if v, ok := s.plans.plans.get(fp); ok {
			return v.(*planEntry)
		}
		return nil
	}

	var entry *planEntry
	var alias *aliasEntry
	if v, ok := s.plans.aliases.get(query); ok {
		alias = v.(*aliasEntry)
		entry = lookup(alias.fp)
	}
	hit := entry != nil

	if entry == nil {
		prog, err := datalog.Parse(query)
		if err != nil {
			return nil, nil, false, badRequest("parse: %v", err)
		}
		s.plans.mu.Lock()
		s.plans.parses++
		s.plans.mu.Unlock()
		varMap := prog.FinalVarMap()
		alias = &aliasEntry{fp: prog.Fingerprint(), canonToClient: invert(varMap)}
		entry = lookup(alias.fp)
		hit = entry != nil
		if entry == nil {
			prep, err := exec.Prepare(fork, prog, s.eng.Opts)
			if err != nil {
				return nil, nil, false, badRequest("compile: %v", err)
			}
			entry = &planEntry{
				fp: alias.fp, prog: prog, attrToCanon: varMap,
				prep: prep, epoch: epoch, reads: prog.Relations(),
			}
			s.plans.plans.put(alias.fp, entry)
		}
		s.plans.aliases.put(query, alias)
	}
	return entry, alias, hit, nil
}

// freshPrep returns the entry's prepared plan, recompiling against the
// request's fork when the cached compilation belongs to another epoch
// (compiled constants are dictionary-encoded and GHD width estimates
// reflect cardinalities). entry.prep/epoch are guarded by plans.mu; a
// Prepared itself is immutable and safe to share.
func (s *Server) freshPrep(entry *planEntry, fork *exec.DB, epoch uint64) (*exec.Prepared, error) {
	s.plans.mu.Lock()
	prep, stale := entry.prep, entry.epoch != epoch
	s.plans.mu.Unlock()
	if !stale {
		return prep, nil
	}
	fresh, err := exec.Prepare(fork, entry.prog, s.eng.Opts)
	if err != nil {
		return nil, err
	}
	s.plans.mu.Lock()
	entry.prep = fresh
	entry.epoch = epoch
	s.plans.recompiles++
	s.plans.mu.Unlock()
	return fresh, nil
}

// invert flips a var→canonical map into canonical→var.
func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// columnarRenderMin is the listing size at which render switches from
// the per-tuple trie walk to columnar extraction: big listings bulk-copy
// out of the result trie's flat columns (leaf sets are the columns)
// instead of re-discovering every tuple through nested set iteration.
const columnarRenderMin = 4096

// render decodes a result into the wire shape, translating dense codes
// back to original vertex identifiers through the dictionary snapshot of
// the fork the query executed on (the live dictionary may already belong
// to a newer load). asColumns selects the columnar wire shape; row-shaped
// responses above columnarRenderMin still decode through the columnar
// extractor and only assemble rows at the end.
func (s *Server) render(res *exec.Result, limit int, dict *graph.Dictionary, asColumns bool) QueryResponse {
	resp := QueryResponse{
		Name:        res.Name,
		Attrs:       res.Attrs,
		Cardinality: res.Trie.Cardinality(),
	}
	if res.Trie.Arity == 0 {
		v := res.Scalar()
		resp.Scalar = &v
		return resp
	}
	if asColumns || resp.Cardinality >= columnarRenderMin {
		s.renderColumns(&resp, res, limit, dict, asColumns)
		return resp
	}
	s.renderWalk(&resp, res, limit, dict)
	return resp
}

// renderWalk is the row-at-a-time path for small listings.
func (s *Server) renderWalk(resp *QueryResponse, res *exec.Result, limit int, dict *graph.Dictionary) {
	annotated := res.Trie.Annotated
	res.ForEach(func(tuple []uint32, ann float64) {
		if len(resp.Tuples) >= limit {
			resp.Truncated = true
			return
		}
		row := make([]int64, len(tuple))
		for i, c := range tuple {
			if dict != nil {
				row[i] = dict.Decode(c)
			} else {
				row[i] = int64(c)
			}
		}
		resp.Tuples = append(resp.Tuples, row)
		if annotated {
			resp.Anns = append(resp.Anns, ann)
		}
	})
}

// renderColumns serializes straight from the result trie's flat columns:
// one bulk extraction per attribute, one decode pass per column, and —
// for row-shaped responses — one final row assembly over plain slices.
func (s *Server) renderColumns(resp *QueryResponse, res *exec.Result, limit int, dict *graph.Dictionary, asColumns bool) {
	cols, anns := res.Columns(limit)
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	if n < resp.Cardinality {
		resp.Truncated = true
	}
	decoded := make([][]int64, len(cols))
	for c, col := range cols {
		out := make([]int64, len(col))
		if dict != nil {
			for i, v := range col {
				out[i] = dict.Decode(v)
			}
		} else {
			for i, v := range col {
				out[i] = int64(v)
			}
		}
		decoded[c] = out
	}
	resp.Anns = anns
	if asColumns {
		resp.Columns = decoded
		return
	}
	resp.Tuples = make([][]int64, n)
	for i := 0; i < n; i++ {
		row := make([]int64, len(decoded))
		for c := range decoded {
			row[c] = decoded[c][i]
		}
		resp.Tuples[i] = row
	}
}

// ExplainRequest is the /explain body.
type ExplainRequest struct {
	Query string `json:"query"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	// Explain does the same parse + GHD-compile work as a query miss, so
	// it shares the admission gate.
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	plan, err := s.eng.Explain(req.Query)
	release()
	if err != nil {
		s.writeErr(w, badRequest("%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"relations": s.eng.Relations()})
}

// LoadRequest is the /load body; exactly one of Path, Edges, Tuples or
// Columns must be set. Path and Edges load a binary edge relation (Path
// reads a "src dst" edge-list file server-side, rebuilding the identifier
// dictionary); Tuples loads a generic relation of the given arity from
// dense codes, optionally annotated under Op; Columns loads the same
// shape column-wise (columns[i] holds attribute i of every row), feeding
// the columnar trie builder directly with no row transposition.
type LoadRequest struct {
	Name       string     `json:"name"`
	Path       string     `json:"path,omitempty"`
	Undirected bool       `json:"undirected,omitempty"`
	Edges      [][2]int64 `json:"edges,omitempty"`
	Tuples     [][]uint32 `json:"tuples,omitempty"`
	Columns    [][]uint32 `json:"columns,omitempty"`
	Arity      int        `json:"arity,omitempty"`
	Anns       []float64  `json:"anns,omitempty"`
	Op         string     `json:"op,omitempty"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	if req.Name == "" {
		s.writeErr(w, badRequest("missing \"name\""))
		return
	}
	t0 := time.Now()
	// Graph parsing and trie construction are heavy; bound them by the
	// same worker pool as queries.
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	err = s.load(&req)
	release()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	// No cache purge: result-cache entries carry the per-relation epochs
	// of their read sets, so entries that read req.Name (or that decode
	// through a dictionary this load replaced) invalidate lazily on their
	// next lookup, while unrelated queries keep serving from cache.
	// Plan-cache entries recompile lazily via the version check.
	rel, _ := s.eng.DB.Relation(req.Name)
	writeJSON(w, http.StatusOK, map[string]any{
		"name":        req.Name,
		"arity":       rel.Arity,
		"cardinality": rel.Cardinality(),
		"elapsed_us":  time.Since(t0).Microseconds(),
	})
}

func (s *Server) load(req *LoadRequest) error {
	switch {
	case req.Path != "":
		f, err := os.Open(req.Path)
		if err != nil {
			return badRequest("open %s: %v", req.Path, err)
		}
		defer f.Close()
		return s.eng.LoadEdgeList(req.Name, f, req.Undirected)
	case req.Edges != nil:
		g, dict := graph.FromEdgePairs(req.Edges, req.Undirected)
		s.eng.LoadGraphWithDict(req.Name, g, dict)
		return nil
	case req.Tuples != nil:
		if req.Arity <= 0 {
			return badRequest("tuple load requires \"arity\"")
		}
		for _, t := range req.Tuples {
			if len(t) != req.Arity {
				return badRequest("tuple %v does not match arity %d", t, req.Arity)
			}
		}
		if req.Anns == nil {
			s.eng.AddRelation(req.Name, req.Arity, req.Tuples)
			return nil
		}
		op, err := semiring.ParseOp(req.Op)
		if err != nil {
			return badRequest("%v", err)
		}
		if err := s.eng.AddAnnotatedRelation(req.Name, req.Arity, op, req.Tuples, req.Anns); err != nil {
			return badRequest("%v", err)
		}
		return nil
	case req.Columns != nil:
		if req.Arity > 0 && req.Arity != len(req.Columns) {
			return badRequest("%d columns do not match arity %d", len(req.Columns), req.Arity)
		}
		op := semiring.None
		if req.Anns != nil {
			var err error
			if op, err = semiring.ParseOp(req.Op); err != nil {
				return badRequest("%v", err)
			}
		}
		if err := s.eng.AddRelationColumns(req.Name, req.Columns, req.Anns, op); err != nil {
			return badRequest("%v", err)
		}
		return nil
	}
	return badRequest("one of \"path\", \"edges\", \"tuples\" or \"columns\" required")
}

// UpdateRequest is the /update body: streaming inserts and/or deletes
// against one relation, as rows (tuples of dense codes) or columns
// (columns[i] holds attribute i of every row — no server-side
// transposition). Deletes apply before inserts. Anns annotates the
// inserted rows when the relation is annotated; Op names the semiring
// when the batch creates a new annotated relation.
type UpdateRequest struct {
	Name          string     `json:"name"`
	Inserts       [][]uint32 `json:"inserts,omitempty"`
	InsertColumns [][]uint32 `json:"insert_columns,omitempty"`
	Deletes       [][]uint32 `json:"deletes,omitempty"`
	DeleteColumns [][]uint32 `json:"delete_columns,omitempty"`
	Anns          []float64  `json:"anns,omitempty"`
	Op            string     `json:"op,omitempty"`
}

// handleUpdate applies one streaming update batch: journaled in the WAL
// (when the server runs with one) before it applies, visible to queries
// through the relation's delta overlay immediately after. Only the
// updated relation's epoch advances, so cached results of queries that
// never read it survive.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	if req.Name == "" {
		s.writeErr(w, badRequest("missing \"name\""))
		return
	}
	b := core.UpdateBatch{Rel: req.Name, InsAnns: req.Anns}
	if req.Op != "" {
		op, err := semiring.ParseOp(req.Op)
		if err != nil {
			s.writeErr(w, badRequest("%v", err))
			return
		}
		b.Op = op
	}
	var err error
	if b.InsCols, err = updateCols(req.Inserts, req.InsertColumns, "insert"); err != nil {
		s.writeErr(w, err)
		return
	}
	if b.DelCols, err = updateCols(req.Deletes, req.DeleteColumns, "delete"); err != nil {
		s.writeErr(w, err)
		return
	}
	t0 := time.Now()
	tr := s.rec.Start("update")
	tr.Annot("relation", req.Name)
	// Degraded read-only mode fails writes fast — before admission, so a
	// broken disk doesn't let updates queue behind healthy queries.
	if !s.brk.allow() {
		tr.SetError(errDegraded.Error())
		s.obs.finishTrace(tr)
		s.writeErrTrace(w, errDegraded, tr.ID)
		return
	}
	// Mini-trie builds and the merged-view install are bounded by the
	// same worker pool as queries and loads.
	sp := tr.Begin("admission")
	release, err := s.adm.acquire(r.Context())
	tr.End(sp)
	if err != nil {
		tr.SetError(err.Error())
		s.obs.finishTrace(tr)
		s.writeErrTrace(w, err, tr.ID)
		return
	}
	res, err := s.eng.UpdateTraced(b, tr)
	release()
	if err != nil {
		tr.SetError(err.Error())
		s.obs.finishTrace(tr)
		if errors.Is(err, core.ErrDurability) {
			// The WAL could not persist the batch (disk full, I/O error):
			// a server-side, retryable failure — not a bad request. Book
			// it with the breaker; enough in a row trip read-only mode.
			s.brk.failure()
			s.writeErrTrace(w, err, tr.ID)
			return
		}
		s.writeErrTrace(w, badRequest("%v", err), tr.ID)
		return
	}
	s.brk.success()
	arity := len(b.InsCols)
	if arity == 0 {
		arity = len(b.DelCols)
	}
	rows := int64(res.Inserted + res.Deleted)
	// Bytes are estimated from the columnar payload (4-byte codes per
	// cell); annotation floats aren't counted.
	s.heat.NoteUpdate(res.Rel, rows, rows*int64(arity)*4)
	s.obs.finishTrace(tr)
	s.obs.update.Observe(time.Since(t0))
	writeJSON(w, http.StatusOK, map[string]any{
		"name":         res.Rel,
		"seq":          res.Seq,
		"inserted":     res.Inserted,
		"deleted":      res.Deleted,
		"cardinality":  res.Cardinality,
		"overlay_rows": res.OverlayRows,
		"trace_id":     tr.ID,
		"elapsed_us":   time.Since(t0).Microseconds(),
	})
}

// updateCols normalizes one side of an update request to columns.
func updateCols(rows [][]uint32, cols [][]uint32, side string) ([][]uint32, error) {
	if rows != nil && cols != nil {
		return nil, badRequest("give %ss as rows or columns, not both", side)
	}
	if cols != nil {
		return cols, nil
	}
	if len(rows) == 0 {
		return nil, nil
	}
	out, err := core.RowsToColumns(rows)
	if err != nil {
		return nil, badRequest("%s rows: %v", side, err)
	}
	return out, nil
}

// CompactRequest is the /compact body.
type CompactRequest struct {
	Name string `json:"name"`
}

// handleCompact folds the named relation's overlay into a fresh base
// trie (a no-op when the overlay is empty or a background compaction is
// already running).
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req CompactRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	if req.Name == "" {
		s.writeErr(w, badRequest("missing \"name\""))
		return
	}
	t0 := time.Now()
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	did, err := s.eng.Compact(req.Name)
	release()
	if err != nil {
		s.writeErr(w, badRequest("%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":       req.Name,
		"compacted":  did,
		"elapsed_us": time.Since(t0).Microseconds(),
	})
}

// SnapshotRequest is the /snapshot and /restore body; Dir falls back to
// the server's configured data directory.
type SnapshotRequest struct {
	Dir string `json:"dir,omitempty"`
}

func (s *Server) snapshotDir(req *SnapshotRequest) (string, error) {
	if req.Dir != "" {
		return req.Dir, nil
	}
	if s.cfg.DataDir != "" {
		return s.cfg.DataDir, nil
	}
	return "", badRequest("no \"dir\" in request and no -data-dir configured")
}

// handleSnapshot persists the whole database as a binary snapshot
// (POST /snapshot {"dir": "..."}). The snapshot is taken from a fork, so
// concurrent queries and loads proceed; the write itself is bounded by
// the admission gate like any other heavy operation.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req SnapshotRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	dir, err := s.snapshotDir(&req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	t0 := time.Now()
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	cat, err := s.eng.Snapshot(dir)
	release()
	if err != nil {
		s.writeErr(w, fmt.Errorf("snapshot: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":        dir,
		"relations":  len(cat.Relations),
		"tuples":     cat.CardinalityTotal(),
		"bytes":      cat.BytesTotal(),
		"elapsed_us": time.Since(t0).Microseconds(),
	})
}

// handleRestore atomically replaces the database from a snapshot
// directory (POST /restore {"dir": "..."}): in-flight queries finish on
// their forks of the old database, new requests see the restored one.
// The result cache is purged wholesale — snapshot epochs come from
// another database generation and are not comparable with the entries'
// stamps.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	var req SnapshotRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeErr(w, badRequest("bad request body: %v", err))
		return
	}
	dir, err := s.snapshotDir(&req)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	t0 := time.Now()
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	cat, err := s.eng.Restore(dir)
	if err == nil {
		// New generation first (strands in-flight cache fills), then drop
		// the old generation's entries wholesale.
		s.gen.Add(1)
		s.results.purge()
	}
	release()
	if err != nil {
		var ce *storage.CorruptionError
		if errors.As(err, &ce) {
			s.writeErr(w, &httpError{http.StatusConflict, err.Error()})
			return
		}
		s.writeErr(w, badRequest("restore: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":        dir,
		"relations":  len(cat.Relations),
		"tuples":     cat.CardinalityTotal(),
		"bytes":      cat.BytesTotal(),
		"elapsed_us": time.Since(t0).Microseconds(),
	})
}

// Stats is the /stats reply.
type Stats struct {
	UptimeS     float64                  `json:"uptime_s"`
	Epoch       uint64                   `json:"epoch"`
	Relations   int                      `json:"relations"`
	Endpoints   map[string]EndpointStats `json:"endpoints"`
	PlanCache   PlanCacheStats           `json:"plan_cache"`
	ResultCache CacheStats               `json:"result_cache"`
	Admission   AdmissionStats           `json:"admission"`
	Durability  core.DurabilityStats     `json:"durability"`
	Resilience  ResilienceStats          `json:"resilience"`
	// Workload summarizes the fingerprint registry (zero when workload
	// stats are disabled); Events the unified event log.
	Workload obs.WorkloadTotals `json:"workload"`
	Events   obs.EventLogStats  `json:"events"`
	// Provenance summarizes the determination-provenance ring and the
	// result-cache auditor (zero-valued when provenance is disabled).
	Provenance ProvenanceStats `json:"provenance"`
}

// ResilienceStats is the failure-contract section of /stats.
type ResilienceStats struct {
	RecoveredPanics  int64 `json:"recovered_panics"`
	CancelledClients int64 `json:"cancelled_clients"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	BreakerTrips     int64 `json:"breaker_trips"`
	Degraded         bool  `json:"degraded"`
	DegradedRejected int64 `json:"degraded_rejected"`
}

// StatsSnapshot returns the same payload /stats serves (used by the load
// generator to diff cache counters around a run).
func (s *Server) StatsSnapshot() Stats {
	eps := make(map[string]EndpointStats, len(s.endpoints))
	for p, lw := range s.endpoints {
		eps[p] = lw.snapshot()
	}
	return Stats{
		UptimeS:     time.Since(s.start).Seconds(),
		Epoch:       s.eng.Version(),
		Relations:   len(s.eng.DB.Names()),
		Endpoints:   eps,
		PlanCache:   s.plans.stats(),
		ResultCache: s.results.stats(),
		Admission:   s.adm.stats(),
		Durability:  s.eng.Durability(),
		Resilience: ResilienceStats{
			RecoveredPanics:  s.res.recoveredPanics.Load(),
			CancelledClients: s.res.cancelledClients.Load(),
			DeadlineExceeded: s.res.deadlineExceeded.Load(),
			BreakerTrips:     s.brk.trips.Load(),
			Degraded:         !s.brk.allow(),
			DegradedRejected: s.res.degradedRejected.Load(),
		},
		Workload:   s.workload.Totals(),
		Events:     s.obs.events.Stats(),
		Provenance: s.provenanceStats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}
