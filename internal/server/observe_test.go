package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQueryAnalyzeResponse(t *testing.T) {
	_, ts := newTestService(t, Config{})

	var qr QueryResponse
	code, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: triangleQ, Analyze: true}, &qr)
	if code != http.StatusOK {
		t.Fatalf("analyze query: status %d body %s", code, body)
	}
	if qr.Analyze == nil {
		t.Fatal("no analyze payload")
	}
	az := qr.Analyze
	if az.TraceID == 0 || az.TraceID != qr.TraceID {
		t.Fatalf("trace ids: analyze %d, response %d", az.TraceID, qr.TraceID)
	}
	// Per-bag per-level intersection counters made it to the wire.
	if len(az.Bags) == 0 {
		t.Fatal("no bag stats")
	}
	bag := az.Bags[0]
	if len(bag.Levels) != 3 {
		t.Fatalf("triangle bag has %d levels", len(bag.Levels))
	}
	for i, l := range bag.Levels {
		if l.Intersections == 0 {
			t.Fatalf("level %d has no intersections: %+v", i, l)
		}
	}
	if !strings.Contains(az.Plan, "actual:") {
		t.Fatalf("plan not annotated:\n%s", az.Plan)
	}
	// Phase timings partition the request: their sum stays within the
	// total and accounts for it up to a small bookkeeping gap.
	var sum int64
	for _, us := range az.PhasesUS {
		sum += us
	}
	if az.PhasesUS["execute"] == 0 && sum == 0 {
		t.Fatalf("empty phase breakdown: %v", az.PhasesUS)
	}
	if sum > az.TotalUS {
		t.Fatalf("phase sum %dµs exceeds total %dµs", sum, az.TotalUS)
	}
	if gap := az.TotalUS - sum; gap > 50_000 {
		t.Fatalf("phase sum %dµs leaves %dµs of the total %dµs unaccounted", sum, gap, az.TotalUS)
	}

	// A plain repeat serves from the result cache the analyze run filled,
	// without an analyze payload.
	var plain QueryResponse
	code, body = postJSON(t, ts.URL+"/query", QueryRequest{Query: triangleQ}, &plain)
	if code != http.StatusOK {
		t.Fatalf("plain repeat: status %d body %s", code, body)
	}
	if !plain.ResultCached || plain.Analyze != nil {
		t.Fatalf("plain repeat: cached=%v analyze=%v", plain.ResultCached, plain.Analyze)
	}
	if plain.Scalar == nil || qr.Scalar == nil || *plain.Scalar != *qr.Scalar {
		t.Fatalf("cached scalar %v != analyze scalar %v", plain.Scalar, qr.Scalar)
	}
}

func TestDebugQueryEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{})
	qr := runQuery(t, ts.URL, triangleQ)
	if qr.TraceID == 0 {
		t.Fatal("query response has no trace id")
	}

	resp, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Traces []traceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.ID == qr.TraceID {
			found = true
			if tr.Kind != "query" || tr.Fingerprint == "" || tr.Spans == 0 {
				t.Fatalf("trace summary malformed: %+v", tr)
			}
		}
	}
	if !found {
		t.Fatalf("trace %d not listed in %+v", qr.TraceID, list.Traces)
	}

	resp2, err := http.Get(ts.URL + "/debug/trace/" + strconv.FormatUint(qr.TraceID, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var full struct {
		ID    uint64 `json:"id"`
		Spans []struct {
			Name  string `json:"name"`
			DurUS int64  `json:"dur_us"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.ID != qr.TraceID {
		t.Fatalf("trace id %d, want %d", full.ID, qr.TraceID)
	}
	names := map[string]bool{}
	for _, sp := range full.Spans {
		if sp.DurUS < 0 {
			t.Fatalf("span %q left open", sp.Name)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"admission", "plan", "execute", "render", "bag 0"} {
		if !names[want] {
			t.Fatalf("trace missing span %q: %v", want, names)
		}
	}

	if resp3, err := http.Get(ts.URL + "/debug/trace/999999"); err != nil {
		t.Fatal(err)
	} else {
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace id: status %d", resp3.StatusCode)
		}
	}
}

// syncWriter makes a bytes.Buffer safe to share between the handler
// goroutines and the test's reads.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// slowQueryEvent is the slow_query event line: the unified event-log
// envelope (ts/seq/kind/trace_id) plus the slow-query fields.
type slowQueryEvent struct {
	TS          string            `json:"ts"`
	Seq         uint64            `json:"seq"`
	Kind        string            `json:"kind"`
	TraceID     uint64            `json:"trace_id"`
	Request     string            `json:"request"`
	Fingerprint string            `json:"fingerprint"`
	TotalUS     int64             `json:"total_us"`
	PhasesUS    map[string]int64  `json:"phases_us"`
	Attrs       map[string]string `json:"attrs"`
	Error       string            `json:"error"`
}

func TestSlowQueryLog(t *testing.T) {
	log := &syncWriter{}
	_, ts := newTestService(t, Config{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: log})

	qr := runQuery(t, ts.URL, triangleQ)
	out := strings.TrimSpace(log.String())
	if out == "" {
		t.Fatal("no slow-query event written")
	}
	// The slow-query writer is now the unified event sink; find our
	// request's slow_query event among whatever else was emitted.
	var line slowQueryEvent
	found := false
	for _, raw := range strings.Split(out, "\n") {
		var ev slowQueryEvent
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			t.Fatalf("event line not JSON: %v in %q", err, raw)
		}
		if ev.Kind == "slow_query" && ev.TraceID == qr.TraceID {
			line, found = ev, true
			break
		}
	}
	if !found {
		t.Fatalf("no slow_query event for trace %d in %q", qr.TraceID, out)
	}
	if line.TS == "" || line.Seq == 0 {
		t.Fatalf("event envelope incomplete: %+v", line)
	}
	if line.Request != "query" || line.Fingerprint == "" {
		t.Fatalf("slow-query event malformed: %+v", line)
	}
	if len(line.PhasesUS) == 0 {
		t.Fatalf("slow-query event has no phase breakdown: %+v", line)
	}
	if line.Attrs["read_epochs"] == "" {
		t.Fatalf("slow-query event missing read_epochs: %+v", line)
	}
}

// TestMetricsHistograms scrapes /metrics after query/update/compaction
// traffic and validates the histogram families: cumulative buckets are
// monotone, the +Inf bucket equals _count, and the expected families
// are present and populated.
func TestMetricsHistograms(t *testing.T) {
	_, ts := newTestService(t, Config{})

	runQuery(t, ts.URL, triangleQ)
	runQuery(t, ts.URL, triangleQ) // cached serve: populates result-cache age histogram
	if code, body := postJSON(t, ts.URL+"/update",
		UpdateRequest{Name: "Edge", Inserts: [][]uint32{{1, 2}, {7, 9}}}, nil); code != http.StatusOK {
		t.Fatalf("/update: status %d body %s", code, body)
	}
	var cres struct {
		Compacted bool `json:"compacted"`
	}
	if code, body := postJSON(t, ts.URL+"/compact", CompactRequest{Name: "Edge"}, &cres); code != http.StatusOK || !cres.Compacted {
		t.Fatalf("/compact: status %d compacted %v body %s", code, cres.Compacted, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Histogram invariants per (family, label-set) series.
	type series struct {
		last    uint64
		infSeen uint64
		count   uint64
		hasSum  bool
	}
	all := map[string]*series{}
	get := func(key string) *series {
		s, ok := all[key]
		if !ok {
			s = &series{}
			all[key] = s
		}
		return s
	}
	// normalize turns a label block with the le pair removed into the
	// canonical series key suffix: "{}" and "{phase="x",}" collapse to ""
	// and "{phase="x"}".
	normalize := func(labels string) string {
		labels = strings.Replace(labels, ",}", "}", 1)
		if labels == "{}" {
			return ""
		}
		return labels
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed metrics line %q", line)
		}
		name := fields[0]
		switch {
		case strings.Contains(name, "_bucket{"):
			fam := name[:strings.Index(name, "_bucket{")]
			labels := name[strings.Index(name, "{"):]
			le := ""
			if i := strings.Index(labels, `le="`); i >= 0 {
				le = labels[i+4 : i+4+strings.Index(labels[i+4:], `"`)]
			}
			key := fam + "|" + normalize(strings.Replace(labels, `le="`+le+`"`, "", 1))
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", line, err)
			}
			s := get(key)
			if v < s.last {
				t.Fatalf("non-monotone cumulative buckets at %q: %d after %d", line, v, s.last)
			}
			s.last = v
			if le == "+Inf" {
				s.infSeen = v
			}
		case strings.HasSuffix(name, "_sum") || strings.Contains(name, "_sum{"):
			fam := strings.SplitN(name, "_sum", 2)[0]
			labels := ""
			if i := strings.Index(name, "{"); i >= 0 {
				labels = name[i:]
			}
			get(fam + "|" + labels).hasSum = true
		case strings.HasSuffix(name, "_count") || strings.Contains(name, "_count{"):
			if !strings.Contains(name, "_seconds_count") && !strings.Contains(name, "_age_seconds") {
				continue // not one of ours (e.g. future counters)
			}
			fam := strings.SplitN(name, "_count", 2)[0]
			labels := ""
			if i := strings.Index(name, "{"); i >= 0 {
				labels = name[i:]
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("count value %q: %v", line, err)
			}
			get(fam + "|" + labels).count = v
		}
	}
	for key, s := range all {
		if s.infSeen != s.count {
			t.Fatalf("series %s: +Inf bucket %d != count %d", key, s.infSeen, s.count)
		}
		if !s.hasSum {
			t.Fatalf("series %s: missing _sum", key)
		}
	}

	// The families exist and the traffic above landed in them.
	for _, fam := range []string{
		"emptyheaded_query_seconds",
		"emptyheaded_update_seconds",
		"emptyheaded_compaction_seconds",
		"emptyheaded_result_cache_age_seconds",
	} {
		s, ok := all[fam+"|"]
		if !ok {
			t.Fatalf("missing histogram family %s in:\n%s", fam, text)
		}
		if s.count == 0 {
			t.Fatalf("family %s never observed", fam)
		}
	}
	phased, ok := all[`emptyheaded_query_phase_seconds|{phase="execute"}`]
	if !ok {
		keys := make([]string, 0, len(all))
		for k := range all {
			keys = append(keys, k)
		}
		t.Fatalf("missing execute phase series; have %v", keys)
	}
	if phased.count == 0 {
		t.Fatal("execute phase histogram never observed")
	}

	// Satellite counters that must be present for the update/compaction
	// families.
	for _, want := range []string{
		"emptyheaded_updates_total 1",
		"emptyheaded_compactions_total 1",
		fmt.Sprintf("emptyheaded_query_seconds_count %d", 2),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestMetricsOverlayBytes checks the per-overlay memory gauges appear
// while an overlay is live.
func TestMetricsOverlayBytes(t *testing.T) {
	_, ts := newTestService(t, Config{})
	if code, body := postJSON(t, ts.URL+"/update",
		UpdateRequest{Name: "Edge", Inserts: [][]uint32{{3, 4}}, Deletes: [][]uint32{{0, 1}}}, nil); code != http.StatusOK {
		t.Fatalf("/update: status %d body %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`emptyheaded_overlay_bytes{relation="Edge",side="ins"}`,
		`emptyheaded_overlay_bytes{relation="Edge",side="del"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}
