package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"emptyheaded/internal/exec"
	"emptyheaded/internal/metrics"
	"emptyheaded/internal/obs"
	"emptyheaded/internal/prov"
	"emptyheaded/internal/trace"
)

// queryPhases are the top-level /query lifecycle spans; each gets its
// own latency histogram in /metrics and a slot in AnalyzeInfo.Phases.
// (Nested spans — per-bag execution, WAL fsync attribution — live only
// in the trace itself.)
var queryPhases = []string{"admission", "plan", "execute", "render", "cache_fill"}

// observability bundles the server's latency histograms and the
// unified structured event log (which absorbed the PR 6 slow-query
// log: slow requests are now slow_query events alongside rotations,
// compactions, breaker transitions and panics, in one sequenced
// stream). Histograms are fixed-bucket and lock-free on Observe; the
// event log serializes line writes under its own mutex.
type observability struct {
	query    *metrics.Histogram
	phases   map[string]*metrics.Histogram
	update   *metrics.Histogram
	cacheAge *metrics.Histogram
	fsync    *metrics.Histogram
	compact  *metrics.Histogram

	slowThreshold time.Duration
	events        *obs.EventLog
}

func newObservability(cfg Config) *observability {
	o := &observability{
		query:         metrics.NewHistogram(metrics.LatencyBuckets),
		phases:        make(map[string]*metrics.Histogram, len(queryPhases)),
		update:        metrics.NewHistogram(metrics.LatencyBuckets),
		cacheAge:      metrics.NewHistogram(metrics.AgeBuckets),
		fsync:         metrics.NewHistogram(metrics.FsyncBuckets),
		compact:       metrics.NewHistogram(metrics.LatencyBuckets),
		slowThreshold: cfg.SlowQueryThreshold,
		events:        cfg.Events,
	}
	if o.events == nil {
		// Back-compat: a configured slow-query writer becomes the event
		// sink, so existing deployments keep their JSON lines (now with
		// the seq/kind envelope) in the same place.
		o.events = obs.NewEventLog(cfg.SlowQueryLog)
	}
	for _, p := range queryPhases {
		o.phases[p] = metrics.NewHistogram(metrics.LatencyBuckets)
	}
	return o
}

// phasesOf folds a trace's spans into total microseconds per top-level
// phase (nested and unknown spans are skipped).
func phasesOf(tr *trace.Trace) map[string]int64 {
	if tr == nil {
		return nil
	}
	out := make(map[string]int64, len(queryPhases))
	for _, sp := range tr.SpansSnapshot() {
		if sp.DurUS < 0 {
			continue
		}
		for _, p := range queryPhases {
			if sp.Name == p {
				out[p] += sp.DurUS
				break
			}
		}
	}
	return out
}

// finishTrace closes the trace, books its phases into the histograms,
// and emits a slow-query line when the request crossed the threshold.
func (o *observability) finishTrace(tr *trace.Trace) {
	if tr == nil {
		return
	}
	tr.Finish()
	for name, us := range phasesOf(tr) {
		o.phases[name].Observe(time.Duration(us) * time.Microsecond)
	}
	o.maybeLogSlow(tr)
}

// maybeLogSlow emits a slow_query event for requests that crossed the
// configured threshold. The fields mirror the PR 6 slow-query line;
// the ts/seq/trace_id envelope is stamped by the event log.
func (o *observability) maybeLogSlow(tr *trace.Trace) {
	if o.slowThreshold <= 0 || tr == nil {
		return
	}
	if time.Duration(tr.TotalUS)*time.Microsecond < o.slowThreshold {
		return
	}
	fields := map[string]any{
		"request":  tr.Kind,
		"total_us": tr.TotalUS,
	}
	if tr.Fingerprint != "" {
		fields["fingerprint"] = tr.Fingerprint
	}
	if ph := phasesOf(tr); len(ph) > 0 {
		fields["phases_us"] = ph
	}
	if len(tr.Attrs) > 0 {
		attrs := make(map[string]string, len(tr.Attrs))
		for _, a := range tr.Attrs {
			attrs[a.Key] = a.Val
		}
		fields["attrs"] = attrs
	}
	if tr.Error != "" {
		fields["error"] = tr.Error
	}
	o.events.Emit("slow_query", tr.ID, fields)
}

// AnalyzeInfo is the /query "analyze": true payload: the request's
// phase breakdown plus the live kernel counters and the annotated plan
// they produced.
type AnalyzeInfo struct {
	TraceID uint64 `json:"trace_id"`
	TotalUS int64  `json:"total_us"`
	// PhasesUS maps each top-level lifecycle phase to its total
	// microseconds; the phases partition the request's wall time (JSON
	// encoding and socket writes excepted).
	PhasesUS map[string]int64 `json:"phases_us"`
	// Plan is the physical plan annotated with actuals
	// (exec.Plan.ExplainAnalyze).
	Plan string `json:"plan,omitempty"`
	// Bags holds the raw per-bag, per-level execution counters.
	Bags []*exec.BagStats `json:"bags,omitempty"`
	// Kernel echoes the request's kernel hint as resolved ("auto" when
	// none was sent); the per-level routes actually taken are in
	// Bags[].Levels[].Kernel and on the annotated Plan's kernels[...]
	// columns.
	Kernel string `json:"kernel,omitempty"`
}

// analyzeData carries the execution-side analyze payload out of
// runQuery (the phase timings are stamped by the handler, which owns
// the request clock).
type analyzeData struct {
	plan string
	bags []*exec.BagStats
}

// traceSummary is one row of /debug/queries.
type traceSummary struct {
	ID          uint64 `json:"id"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Start       string `json:"start"`
	TotalUS     int64  `json:"total_us"`
	Spans       int    `json:"spans"`
	Error       string `json:"error,omitempty"`
}

// handleDebugQueries lists recently completed traces, newest first
// (GET /debug/queries?n=50).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	trs := s.rec.Completed(n)
	out := make([]traceSummary, 0, len(trs))
	for _, tr := range trs {
		out = append(out, traceSummary{
			ID:          tr.ID,
			Kind:        tr.Kind,
			Fingerprint: tr.Fingerprint,
			Start:       tr.Start.UTC().Format(time.RFC3339Nano),
			TotalUS:     tr.TotalUS,
			Spans:       len(tr.Spans),
			Error:       tr.Error,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleDebugTrace serves one full trace (GET /debug/trace/<id>): every
// span with offsets, durations and attributes.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		s.writeErr(w, badRequest("bad trace id %q", idStr))
		return
	}
	tr, ok := s.rec.Get(id)
	if !ok {
		s.writeErr(w, &httpError{http.StatusNotFound, "trace not retained (ring buffer wrapped or id never finished)"})
		return
	}
	// The embedded struct keeps the JSON flat (same shape as before);
	// the provenance record rides along when the ring still retains one
	// for this trace.
	out := struct {
		*trace.Trace
		Provenance *prov.Record `json:"provenance,omitempty"`
	}{Trace: tr}
	out.Provenance, _ = s.prov.Get(id)
	writeJSON(w, http.StatusOK, out)
}
