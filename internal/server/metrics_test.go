package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestService(t, Config{})

	// Generate some traffic so the counters are non-trivial.
	runQuery(t, ts.URL, triangleQ)
	runQuery(t, ts.URL, triangleQ)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		"# TYPE emptyheaded_requests_total counter",
		`emptyheaded_requests_total{endpoint="/query"} 2`,
		`emptyheaded_request_latency_us{endpoint="/query",quantile="0.99"}`,
		"# TYPE emptyheaded_plan_cache_hits_total counter",
		"emptyheaded_result_cache_hits_total 1",
		"emptyheaded_admission_admitted_total",
		"emptyheaded_relations 1",
		"# TYPE emptyheaded_recovered_panics_total counter",
		"emptyheaded_recovered_panics_total 0",
		"emptyheaded_query_cancelled_total 0",
		"emptyheaded_query_deadline_exceeded_total 0",
		"# TYPE emptyheaded_breaker_trips_total counter",
		"emptyheaded_breaker_trips_total 0",
		"# TYPE emptyheaded_degraded gauge",
		"emptyheaded_degraded 0",
		"emptyheaded_degraded_rejected_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}

	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed metrics line %q", line)
		}
	}
}

func TestQueryLimitPushdown(t *testing.T) {
	_, ts := newTestService(t, Config{})

	// The full 2-path listing (limit far above the result size), then a
	// limited request.
	var full QueryResponse
	code, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: pathQ, Limit: 1 << 20, NoCache: true}, &full)
	if code != http.StatusOK {
		t.Fatalf("full query: status %d body %s", code, body)
	}
	if full.Truncated {
		t.Fatalf("full query should not truncate: %d tuples", full.Cardinality)
	}

	// Note: responses decode into fresh structs each time — Truncated is
	// omitempty, so re-using a struct would keep a stale true.
	var qr QueryResponse
	code, body = postJSON(t, ts.URL+"/query", QueryRequest{Query: pathQ, Limit: 10, NoCache: true}, &qr)
	if code != http.StatusOK {
		t.Fatalf("limited query: status %d body %s", code, body)
	}
	if !qr.Truncated {
		t.Fatalf("limited query not marked truncated: %+v", qr)
	}
	// The middle variable is projected away, so the budget counts
	// pre-dedup rows: up to 10 tuples come back, and execution stopped
	// long before the full 18k-tuple listing.
	if len(qr.Tuples) == 0 || len(qr.Tuples) > 10 {
		t.Fatalf("limited query returned %d tuples, want 1..10", len(qr.Tuples))
	}
	if qr.Cardinality >= full.Cardinality {
		t.Fatalf("limited cardinality %d not reduced (full %d)", qr.Cardinality, full.Cardinality)
	}

	// An all-output listing (no projection): the limit fills exactly, and
	// a limit of exactly the full cardinality must not flag truncation.
	triListQ := `T3(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).`
	var triFull QueryResponse
	code, body = postJSON(t, ts.URL+"/query", QueryRequest{Query: triListQ, Limit: 1 << 20, NoCache: true}, &triFull)
	if code != http.StatusOK {
		t.Fatalf("triangle listing: status %d body %s", code, body)
	}
	if triFull.Truncated || triFull.Cardinality <= 10 {
		t.Fatalf("triangle listing full run: truncated=%v card=%d", triFull.Truncated, triFull.Cardinality)
	}
	var triLim QueryResponse
	code, body = postJSON(t, ts.URL+"/query", QueryRequest{Query: triListQ, Limit: 10, NoCache: true}, &triLim)
	if code != http.StatusOK {
		t.Fatalf("triangle listing limited: status %d body %s", code, body)
	}
	if !triLim.Truncated || len(triLim.Tuples) != 10 {
		t.Fatalf("triangle listing limit: truncated=%v tuples=%d want true,10", triLim.Truncated, len(triLim.Tuples))
	}
	var triExact QueryResponse
	code, body = postJSON(t, ts.URL+"/query",
		QueryRequest{Query: triListQ, Limit: triFull.Cardinality, NoCache: true}, &triExact)
	if code != http.StatusOK {
		t.Fatalf("exact-limit listing: status %d body %s", code, body)
	}
	if triExact.Truncated || len(triExact.Tuples) != triFull.Cardinality {
		t.Fatalf("exact-limit listing: truncated=%v tuples=%d want %d", triExact.Truncated, len(triExact.Tuples), triFull.Cardinality)
	}
}
