package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"emptyheaded/internal/metrics"
	"emptyheaded/internal/obs"
)

// handleMetrics serves the same counters as /stats in the Prometheus text
// exposition format (version 0.0.4), so load-test runs can be scraped
// alongside the benchmark artifacts. Everything is rendered from one
// StatsSnapshot for a consistent view.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.StatsSnapshot()
	var sb strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counterHeader := func(name, help string) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	gauge("emptyheaded_uptime_seconds", "Seconds since the server started.", st.UptimeS)
	gauge("emptyheaded_db_epoch", "Database mutation counter (cache invalidation epoch).", float64(st.Epoch))
	gauge("emptyheaded_relations", "Number of stored relations.", float64(st.Relations))

	// Per-endpoint request counters and latency quantiles, in a stable
	// order so scrapes diff cleanly.
	paths := make([]string, 0, len(st.Endpoints))
	for p := range st.Endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	counterHeader("emptyheaded_requests_total", "Requests served per endpoint.")
	for _, p := range paths {
		fmt.Fprintf(&sb, "emptyheaded_requests_total{endpoint=%q} %d\n", p, st.Endpoints[p].Requests)
	}
	counterHeader("emptyheaded_request_errors_total", "Requests answered with a 4xx/5xx status per endpoint.")
	for _, p := range paths {
		fmt.Fprintf(&sb, "emptyheaded_request_errors_total{endpoint=%q} %d\n", p, st.Endpoints[p].Errors)
	}
	fmt.Fprintf(&sb, "# HELP %s Request latency over the recent window, in microseconds.\n# TYPE %s gauge\n",
		"emptyheaded_request_latency_us", "emptyheaded_request_latency_us")
	for _, p := range paths {
		ep := st.Endpoints[p]
		fmt.Fprintf(&sb, "emptyheaded_request_latency_us{endpoint=%q,quantile=\"0.5\"} %g\n", p, ep.P50US)
		fmt.Fprintf(&sb, "emptyheaded_request_latency_us{endpoint=%q,quantile=\"0.99\"} %g\n", p, ep.P99US)
		fmt.Fprintf(&sb, "emptyheaded_request_latency_us{endpoint=%q,quantile=\"1.0\"} %g\n", p, ep.MaxUS)
	}

	cache := func(prefix string, cs CacheStats) {
		gauge(prefix+"_size", "Entries currently cached.", float64(cs.Size))
		gauge(prefix+"_capacity", "Cache capacity.", float64(cs.Capacity))
		counterHeader(prefix+"_hits_total", "Cache hits.")
		fmt.Fprintf(&sb, "%s_hits_total %d\n", prefix, cs.Hits)
		counterHeader(prefix+"_misses_total", "Cache misses.")
		fmt.Fprintf(&sb, "%s_misses_total %d\n", prefix, cs.Misses)
		counterHeader(prefix+"_evictions_total", "Cache evictions.")
		fmt.Fprintf(&sb, "%s_evictions_total %d\n", prefix, cs.Evictions)
	}
	cache("emptyheaded_plan_cache", st.PlanCache.CacheStats)
	counterHeader("emptyheaded_plan_cache_text_hits_total", "Exact-text alias hits that skipped parsing.")
	fmt.Fprintf(&sb, "emptyheaded_plan_cache_text_hits_total %d\n", st.PlanCache.TextHits)
	counterHeader("emptyheaded_plan_cache_parses_total", "datalog parses taken on the miss path.")
	fmt.Fprintf(&sb, "emptyheaded_plan_cache_parses_total %d\n", st.PlanCache.Parses)
	counterHeader("emptyheaded_plan_cache_recompiles_total", "Epoch-invalidated plan recompilations.")
	fmt.Fprintf(&sb, "emptyheaded_plan_cache_recompiles_total %d\n", st.PlanCache.Recompiles)
	cache("emptyheaded_result_cache", st.ResultCache)

	// Streaming-update subsystem: WAL, overlays, compaction, replay.
	d := st.Durability
	counterHeader("emptyheaded_updates_total", "Streaming update batches applied.")
	fmt.Fprintf(&sb, "emptyheaded_updates_total %d\n", d.Updates)
	counterHeader("emptyheaded_update_rows_total", "Inserted + deleted rows across update batches.")
	fmt.Fprintf(&sb, "emptyheaded_update_rows_total %d\n", d.UpdateRows)
	if d.WAL.Enabled {
		counterHeader("emptyheaded_wal_records_total", "Records appended to the write-ahead log.")
		fmt.Fprintf(&sb, "emptyheaded_wal_records_total %d\n", d.WAL.Records)
		counterHeader("emptyheaded_wal_bytes_total", "Payload bytes appended to the write-ahead log.")
		fmt.Fprintf(&sb, "emptyheaded_wal_bytes_total %d\n", d.WAL.Bytes)
		counterHeader("emptyheaded_wal_fsyncs_total", "Explicit WAL fsyncs.")
		fmt.Fprintf(&sb, "emptyheaded_wal_fsyncs_total %d\n", d.WAL.Fsyncs)
		counterHeader("emptyheaded_wal_fsync_seconds_total", "Total WAL fsync latency in seconds.")
		fmt.Fprintf(&sb, "emptyheaded_wal_fsync_seconds_total %g\n", float64(d.WAL.FsyncNanos)/1e9)
		gauge("emptyheaded_wal_segments", "Live WAL segment files.", float64(d.WAL.Segments))
		gauge("emptyheaded_wal_seq", "Last assigned WAL sequence number.", float64(d.WAL.Seq))
		gauge("emptyheaded_wal_replay_records", "Records replayed from the WAL on boot.", float64(d.Replay.Records))
		gauge("emptyheaded_wal_replay_duration_seconds", "WAL replay duration on boot, in seconds.", float64(d.Replay.DurationUS)/1e6)
	}
	counterHeader("emptyheaded_compactions_total", "Delta-overlay compactions run.")
	fmt.Fprintf(&sb, "emptyheaded_compactions_total %d\n", d.Compactions)
	counterHeader("emptyheaded_compact_seconds_total", "Total compaction wall time in seconds.")
	fmt.Fprintf(&sb, "emptyheaded_compact_seconds_total %g\n", float64(d.CompactTotalUS)/1e6)
	fmt.Fprintf(&sb, "# HELP %s Live delta-overlay rows (pending inserts + tombstones) per relation.\n# TYPE %s gauge\n",
		"emptyheaded_overlay_rows", "emptyheaded_overlay_rows")
	for _, ov := range d.Overlays {
		fmt.Fprintf(&sb, "emptyheaded_overlay_rows{relation=%q} %d\n", ov.Relation, ov.Rows)
	}
	fmt.Fprintf(&sb, "# HELP %s Estimated delta-overlay bytes per relation and side (ins/del).\n# TYPE %s gauge\n",
		"emptyheaded_overlay_bytes", "emptyheaded_overlay_bytes")
	for _, ov := range d.Overlays {
		fmt.Fprintf(&sb, "emptyheaded_overlay_bytes{relation=%q,side=\"ins\"} %d\n", ov.Relation, ov.InsBytes)
		fmt.Fprintf(&sb, "emptyheaded_overlay_bytes{relation=%q,side=\"del\"} %d\n", ov.Relation, ov.DelBytes)
	}

	// Latency histograms. Phase histograms share one family under a
	// phase label; the rest are unlabeled single-series families.
	histogram := func(name, help string, h *metrics.Histogram) {
		metrics.WritePromHeader(&sb, name, help)
		h.Snapshot().WriteProm(&sb, name, "")
	}
	histogram("emptyheaded_query_seconds", "End-to-end /query latency (cached serves included).", s.obs.query)
	metrics.WritePromHeader(&sb, "emptyheaded_query_phase_seconds", "Per-phase /query latency breakdown.")
	for _, p := range queryPhases {
		s.obs.phases[p].Snapshot().WriteProm(&sb, "emptyheaded_query_phase_seconds", fmt.Sprintf("phase=%q", p))
	}
	histogram("emptyheaded_update_seconds", "End-to-end /update latency.", s.obs.update)
	histogram("emptyheaded_result_cache_age_seconds", "Result-cache entry age at serve time.", s.obs.cacheAge)
	if d.WAL.Enabled {
		histogram("emptyheaded_wal_fsync_seconds", "WAL fsync latency.", s.obs.fsync)
	}
	histogram("emptyheaded_compaction_seconds", "Delta-overlay compaction duration.", s.obs.compact)

	gauge("emptyheaded_admission_workers", "Worker slots.", float64(st.Admission.Workers))
	gauge("emptyheaded_admission_queue_depth", "Admission queue capacity.", float64(st.Admission.QueueDepth))
	gauge("emptyheaded_admission_active", "Queries executing now.", float64(st.Admission.Active))
	gauge("emptyheaded_admission_queued", "Requests waiting for a worker slot.", float64(st.Admission.Queued))
	counterHeader("emptyheaded_admission_admitted_total", "Requests admitted to a worker slot.")
	fmt.Fprintf(&sb, "emptyheaded_admission_admitted_total %d\n", st.Admission.Admitted)
	counterHeader("emptyheaded_admission_rejected_total", "Requests rejected by the admission controller.")
	fmt.Fprintf(&sb, "emptyheaded_admission_rejected_total{reason=\"queue_full\"} %d\n", st.Admission.RejectedFull)
	fmt.Fprintf(&sb, "emptyheaded_admission_rejected_total{reason=\"queue_timeout\"} %d\n", st.Admission.RejectedTimeout)

	// Failure contract: panics survived, clients that hung up, budgets
	// blown, and the durability breaker behind degraded read-only mode.
	counterHeader("emptyheaded_recovered_panics_total", "Panics recovered at the request and executor boundaries.")
	fmt.Fprintf(&sb, "emptyheaded_recovered_panics_total %d\n", s.res.recoveredPanics.Load())
	counterHeader("emptyheaded_query_cancelled_total", "Queries abandoned by their client before completion.")
	fmt.Fprintf(&sb, "emptyheaded_query_cancelled_total %d\n", s.res.cancelledClients.Load())
	counterHeader("emptyheaded_query_deadline_exceeded_total", "Queries stopped by the per-request deadline budget.")
	fmt.Fprintf(&sb, "emptyheaded_query_deadline_exceeded_total %d\n", s.res.deadlineExceeded.Load())
	counterHeader("emptyheaded_breaker_trips_total", "Durability circuit-breaker trips into degraded mode.")
	fmt.Fprintf(&sb, "emptyheaded_breaker_trips_total %d\n", s.brk.trips.Load())
	degraded := 0.0
	if !s.brk.allow() {
		degraded = 1
	}
	gauge("emptyheaded_degraded", "1 while the server is in degraded read-only mode, else 0.", degraded)
	counterHeader("emptyheaded_degraded_rejected_total", "Writes fast-failed while degraded.")
	fmt.Fprintf(&sb, "emptyheaded_degraded_rejected_total %d\n", s.res.degradedRejected.Load())

	// Cache effectiveness as ready-made ratios (hits/(hits+misses); 0
	// before any lookup), plus the workload profiler's route breakdown.
	ratio := func(cs CacheStats) float64 {
		if total := cs.Hits + cs.Misses; total > 0 {
			return float64(cs.Hits) / float64(total)
		}
		return 0
	}
	fmt.Fprintf(&sb, "# HELP %s Cache hit ratio (hits/(hits+misses)) per cache.\n# TYPE %s gauge\n",
		"emptyheaded_cache_hit_ratio", "emptyheaded_cache_hit_ratio")
	fmt.Fprintf(&sb, "emptyheaded_cache_hit_ratio{cache=\"plan\"} %g\n", ratio(st.PlanCache.CacheStats))
	fmt.Fprintf(&sb, "emptyheaded_cache_hit_ratio{cache=\"result\"} %g\n", ratio(st.ResultCache))
	wl := st.Workload
	counterHeader("emptyheaded_query_route_total", "Finished queries per cache route (workload profiler).")
	fmt.Fprintf(&sb, "emptyheaded_query_route_total{route=\"result_hit\"} %d\n", wl.ResultHits)
	fmt.Fprintf(&sb, "emptyheaded_query_route_total{route=\"plan_hit\"} %d\n", wl.PlanHits)
	fmt.Fprintf(&sb, "emptyheaded_query_route_total{route=\"miss\"} %d\n", wl.Misses)
	gauge("emptyheaded_workload_fingerprints", "Fingerprints retained in the workload registry.", float64(wl.Fingerprints))
	counterHeader("emptyheaded_workload_observed_total", "Queries merged into the workload registry.")
	fmt.Fprintf(&sb, "emptyheaded_workload_observed_total %d\n", wl.Observed)
	counterHeader("emptyheaded_workload_evictions_total", "Fingerprints LRU-evicted from the workload registry.")
	fmt.Fprintf(&sb, "emptyheaded_workload_evictions_total %d\n", wl.Evictions)
	ev := st.Events
	counterHeader("emptyheaded_events_total", "Events written to the unified event log.")
	fmt.Fprintf(&sb, "emptyheaded_events_total %d\n", ev.Events)
	counterHeader("emptyheaded_event_log_rotations_total", "Size-triggered event-log rotations.")
	fmt.Fprintf(&sb, "emptyheaded_event_log_rotations_total %d\n", ev.Rotations)
	counterHeader("emptyheaded_event_log_dropped_total", "Events dropped on marshal/write failure.")
	fmt.Fprintf(&sb, "emptyheaded_event_log_dropped_total %d\n", ev.Dropped)

	// Relation heat: which relations the workload actually touches.
	if heat := s.heat.Snapshot(); len(heat) > 0 {
		counterHeader("emptyheaded_relation_reads_total", "Query executions reading each relation.")
		for _, h := range heat {
			fmt.Fprintf(&sb, "emptyheaded_relation_reads_total{relation=%q} %d\n", h.Relation, h.Reads)
		}
		counterHeader("emptyheaded_relation_probes_total", "Loop-nest probes attributed to each relation (participation counts).")
		for _, h := range heat {
			fmt.Fprintf(&sb, "emptyheaded_relation_probes_total{relation=%q} %d\n", h.Relation, h.Probes)
		}
		counterHeader("emptyheaded_relation_update_rows_total", "Streamed update rows applied to each relation.")
		for _, h := range heat {
			fmt.Fprintf(&sb, "emptyheaded_relation_update_rows_total{relation=%q} %d\n", h.Relation, h.UpdateRows)
		}
	}

	// Determination provenance: ring occupancy and the result-cache
	// self-auditor's counters. eh_audit_mismatch_total is the alerting
	// signal — any nonzero value means the cache served bytes the current
	// data no longer determines.
	pv := st.Provenance
	gauge("eh_provenance_ring_records", "Provenance records currently retained in the ring.", float64(pv.Ring.Retained))
	gauge("eh_provenance_ring_capacity", "Provenance ring capacity (0 = provenance disabled).", float64(pv.Ring.Capacity))
	counterHeader("eh_provenance_records_total", "Provenance records built since boot (executions + cached serves).")
	fmt.Fprintf(&sb, "eh_provenance_records_total %d\n", pv.Ring.Total)
	counterHeader("eh_audit_checks_total", "Result-cache audit re-executions (sampled + on-demand sweeps).")
	fmt.Fprintf(&sb, "eh_audit_checks_total %d\n", pv.Audit.Checks)
	counterHeader("eh_audit_mismatch_total", "Cache audits whose re-execution disagreed with the served bytes.")
	fmt.Fprintf(&sb, "eh_audit_mismatch_total %d\n", pv.Audit.Mismatches)
	counterHeader("eh_audit_evicted_total", "Cache entries evicted by the auditor.")
	fmt.Fprintf(&sb, "eh_audit_evicted_total %d\n", pv.Audit.Evicted)

	// Standard build-info gauge: constant 1, metadata in the labels.
	fmt.Fprintf(&sb, "# HELP eh_build_info Build metadata of the serving binary.\n# TYPE eh_build_info gauge\n")
	sb.WriteString(obs.ReadBuildInfo().PromLine())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}
