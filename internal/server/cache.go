package server

import (
	"container/list"
	"sync"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/exec"
)

// lruCache is a mutex-guarded LRU map with hit/miss/eviction counters.
type lruCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key  string
	val  any
	hits int64
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	ent := el.Value.(*lruEntry)
	ent.hits++
	c.ll.MoveToFront(el)
	return ent.val, true
}

// peek is get without hit/miss accounting, for the pre-admission fast
// path: the same request may re-resolve through get on the full path, and
// counting both lookups would double-book.
func (c *lruCache) peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// noteHit books a hit for a lookup that went through peek, on both the
// cache counter and the entry's own counter (the entry may have been
// evicted since the peek; the cache counter still books).
func (c *lruCache) noteHit(key string) {
	c.mu.Lock()
	c.hits++
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).hits++
	}
	c.mu.Unlock()
}

func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
		c.evictions++
	}
}

// cacheEntry is one snapshot row from entries(): the key, the live
// value, and how many hits the entry has absorbed since insertion.
type cacheEntry struct {
	key  string
	val  any
	hits int64
}

// entries snapshots the cache's contents, most recently used first.
func (c *lruCache) entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*lruEntry)
		out = append(out, cacheEntry{key: ent.key, val: ent.val, hits: ent.hits})
	}
	return out
}

func (c *lruCache) remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

func (c *lruCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.items = map[string]*list.Element{}
	return n
}

// CacheStats is the JSON rendering of one cache's counters.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// planEntry is one plan-cache slot: the parsed program plus its prepared
// (compiled) form and the database epoch the compilation is valid for.
// Constants in compiled plans are dictionary-encoded, so a load that
// swaps the dictionary invalidates the compilation (but never the parse:
// the entry recompiles in place on epoch mismatch). attrToCanon maps the
// entry's final-rule variable names to their canonical (fingerprint)
// names, so results can be re-labeled for alpha-renamed spellings.
type planEntry struct {
	fp          string
	prog        *datalog.Program
	attrToCanon map[string]string
	prep        *exec.Prepared
	epoch       uint64
	// reads is the program's conservative relation read set (sorted);
	// result-cache entries computed under this plan stamp their validity
	// with the epochs of exactly these relations.
	reads []string
}

// aliasEntry maps one exact query text to its fingerprint plus the
// reverse variable renaming (canonical name → this spelling's name) of
// its final rule, letting responses computed under another spelling's
// plan carry this client's attribute names.
type aliasEntry struct {
	fp            string
	canonToClient map[string]string
}

// planCache maps normalized-query fingerprints to prepared plans, with a
// raw-text alias layer in front: an exact textual repeat skips parsing
// entirely, while a reformatted or alpha-renamed variant re-parses but
// still reuses the compiled plan found under its fingerprint.
type planCache struct {
	aliases *lruCache // raw query text -> fingerprint
	plans   *lruCache // fingerprint   -> *planEntry
	mu      sync.Mutex
	// recompiles counts epoch-invalidated entries that kept their parse
	// but rebuilt the physical plan.
	recompiles int64
	// parses counts datalog.Parse calls taken on the miss path.
	parses int64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		// Aliases are cheap (two small strings); give them headroom so
		// textual variants don't thrash the plan slots.
		aliases: newLRUCache(4 * capacity),
		plans:   newLRUCache(capacity),
	}
}

// PlanCacheStats extends CacheStats with plan-specific counters.
type PlanCacheStats struct {
	CacheStats
	TextHits   int64 `json:"text_hits"`
	Parses     int64 `json:"parses"`
	Recompiles int64 `json:"recompiles"`
}

func (pc *planCache) stats() PlanCacheStats {
	pc.mu.Lock()
	recompiles, parses := pc.recompiles, pc.parses
	pc.mu.Unlock()
	a := pc.aliases.stats()
	return PlanCacheStats{
		CacheStats: pc.plans.stats(),
		TextHits:   a.Hits,
		Parses:     parses,
		Recompiles: recompiles,
	}
}
