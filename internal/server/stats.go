package server

import (
	"sort"
	"sync"
	"time"

	"emptyheaded/internal/quantile"
)

// latencyWindow aggregates request latencies for one endpoint: exact
// count/error/sum/max over the process lifetime plus a sliding window of
// recent samples for percentile estimates (p50/p99 are computed over the
// last windowSize observations, which is what an operator watching a live
// service wants — a process-lifetime p99 would never recover from one
// cold start).
type latencyWindow struct {
	mu     sync.Mutex
	count  int64
	errors int64
	sum    time.Duration
	max    time.Duration
	ring   []time.Duration
	idx    int
	filled bool
}

const windowSize = 2048

func newLatencyWindow() *latencyWindow {
	return &latencyWindow{ring: make([]time.Duration, windowSize)}
}

func (l *latencyWindow) observe(d time.Duration, isErr bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	if isErr {
		l.errors++
	}
	l.sum += d
	if d > l.max {
		l.max = d
	}
	l.ring[l.idx] = d
	l.idx++
	if l.idx == len(l.ring) {
		l.idx = 0
		l.filled = true
	}
}

// EndpointStats is the JSON rendering of one endpoint's counters.
type EndpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	AvgUS    float64 `json:"avg_us"`
	P50US    float64 `json:"p50_us"`
	P99US    float64 `json:"p99_us"`
	MaxUS    float64 `json:"max_us"`
}

func (l *latencyWindow) snapshot() EndpointStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := EndpointStats{Requests: l.count, Errors: l.errors}
	if l.count == 0 {
		return s
	}
	s.AvgUS = float64(l.sum.Microseconds()) / float64(l.count)
	s.MaxUS = float64(l.max.Microseconds())
	n := l.idx
	if l.filled {
		n = len(l.ring)
	}
	samples := append([]time.Duration(nil), l.ring[:n]...)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s.P50US = float64(samples[quantile.Index(len(samples), 0.50)].Microseconds())
	s.P99US = float64(samples[quantile.Index(len(samples), 0.99)].Microseconds())
	return s
}
