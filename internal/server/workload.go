package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/obs"
	"emptyheaded/internal/prov"
	"emptyheaded/internal/trace"
	"emptyheaded/internal/trie"
)

// noteQuery merges one finished /query request into the workload
// registry. Called on every terminal path of the handler — fast-path
// serve, full-path success, and error — exactly once each; requests
// that never resolved a fingerprint (parse errors, admission shed) are
// dropped by the registry.
func (s *Server) noteQuery(tr *trace.Trace, req *QueryRequest, resp *QueryResponse, meta *runMeta, elapsed time.Duration, err error) {
	if s.workload == nil || tr == nil {
		return
	}
	q := obs.QueryObs{
		Fingerprint: tr.Fingerprint,
		Query:       req.Query,
		TraceID:     tr.ID,
		Latency:     elapsed,
		PhasesUS:    phasesOf(tr),
		Route:       obs.RouteMiss,
	}
	if meta != nil {
		q.Route = meta.route
		if meta.stats != nil {
			q.Intersections, q.Probes, q.Skipped = meta.stats.Totals()
		}
	}
	if resp != nil {
		q.Rows = int64(resp.Cardinality)
	}
	if err != nil {
		// Client disconnects and deadline trips are cancellations, not
		// query failures; everything else books as an error.
		if errors.Is(err, exec.ErrCanceled) || errors.Is(err, context.Canceled) ||
			errors.Is(err, exec.ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
			q.Cancelled = true
		} else {
			q.Err = true
		}
	}
	s.workload.Observe(q)
}

// noteHeatReads books one query execution's read set into the relation
// heat map, classifying each read as overlay (served through a
// delta-overlay merged view) or base.
func (s *Server) noteHeatReads(db *exec.DB, reads []string) {
	if s.heat == nil {
		return
	}
	for _, name := range reads {
		overlay := false
		if rel, ok := db.Relation(name); ok {
			overlay = rel.HasOverlay()
		}
		s.heat.NoteRead(name, overlay)
	}
}

// handleDebugWorkload serves the per-fingerprint registry
// (GET /debug/workload?sort=count|latency|rows&n=20).
func (s *Server) handleDebugWorkload(w http.ResponseWriter, r *http.Request) {
	if s.workload == nil {
		s.writeErr(w, &httpError{http.StatusNotFound, "workload stats disabled"})
		return
	}
	sortKey := r.URL.Query().Get("sort")
	switch sortKey {
	case "", obs.SortCount:
		sortKey = obs.SortCount
	case obs.SortLatency, obs.SortRows:
	default:
		s.writeErr(w, badRequest("bad sort %q (count|latency|rows)", sortKey))
		return
	}
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			s.writeErr(w, badRequest("bad n %q", v))
			return
		}
		n = parsed
	}
	// Each fingerprint row links the provenance record of its last
	// observed execution (when the ring still retains it) — one click
	// from "this query is hot" to "this is the lineage it last ran on".
	type workloadRow struct {
		obs.FingerprintStats
		Provenance *prov.Record `json:"provenance,omitempty"`
	}
	top := s.workload.TopK(sortKey, n)
	rows := make([]workloadRow, len(top))
	for i, fs := range top {
		rows[i] = workloadRow{FingerprintStats: fs}
		rows[i].Provenance, _ = s.prov.Get(fs.LastTraceID)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"totals":       s.workload.Totals(),
		"sort":         sortKey,
		"fingerprints": rows,
	})
}

// relationHeatRow is one /debug/relations row: the catalog description
// joined with the relation's heat counters.
type relationHeatRow struct {
	core.RelationInfo
	// HasOverlay reports whether the relation currently serves through a
	// delta-overlay merged view (pending streaming updates).
	HasOverlay bool `json:"has_overlay"`
	// Heat carries the workload counters; nil when the relation has
	// never been read or updated since boot (or stats are disabled).
	Heat *obs.RelationHeat `json:"heat,omitempty"`
	// LayoutProfile is the per-level physical layout mix the adaptive
	// layout optimizer chose for the relation's canonical trie (sets and
	// members per layout per level).
	LayoutProfile []trie.LevelLayoutProfile `json:"layout_profile,omitempty"`
}

// handleDebugRelations serves the relation heat map joined with the
// catalog (GET /debug/relations). Relations that vanished from the
// catalog (dropped, restored over) keep their heat rows with zeroed
// catalog fields.
func (s *Server) handleDebugRelations(w http.ResponseWriter, r *http.Request) {
	heat := map[string]*obs.RelationHeat{}
	if s.heat != nil {
		snap := s.heat.Snapshot()
		for i := range snap {
			heat[snap[i].Relation] = &snap[i]
		}
	}
	rows := make([]relationHeatRow, 0, len(heat))
	seen := map[string]bool{}
	for _, info := range s.eng.Relations() {
		row := relationHeatRow{RelationInfo: info, Heat: heat[info.Name]}
		if rel, ok := s.eng.DB.Relation(info.Name); ok {
			row.HasOverlay = rel.HasOverlay()
			row.LayoutProfile = rel.Canonical().LayoutProfile()
		}
		rows = append(rows, row)
		seen[info.Name] = true
	}
	for _, h := range heat {
		if !seen[h.Relation] {
			rows = append(rows, relationHeatRow{
				RelationInfo: core.RelationInfo{Name: h.Relation},
				Heat:         h,
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"relations": rows})
}

// planCacheEntry is one /debug/cache plan row.
type planCacheEntry struct {
	Fingerprint string   `json:"fingerprint"`
	Reads       []string `json:"reads,omitempty"`
	// Epoch is the database version the cached compilation is valid for.
	Epoch uint64 `json:"epoch"`
	Hits  int64  `json:"hits"`
}

// resultCacheEntry is one /debug/cache result row.
type resultCacheEntry struct {
	Key   string   `json:"key"`
	Reads []string `json:"reads,omitempty"`
	// RelEpochs / DictEpoch stamp the entry's validity: the per-relation
	// epochs of the read set (aligned with Reads) and the dictionary
	// epoch at fill time.
	RelEpochs   []uint64 `json:"rel_epochs,omitempty"`
	DictEpoch   uint64   `json:"dict_epoch"`
	AgeS        float64  `json:"age_s"`
	Hits        int64    `json:"hits"`
	Cardinality int      `json:"cardinality"`
	Truncated   bool     `json:"truncated,omitempty"`
	// ApproxBytes estimates the cached payload (8 bytes per rendered
	// cell plus annotations).
	ApproxBytes int64 `json:"approx_bytes"`
	// Provenance is the record of the execution that filled the entry
	// (nil when provenance is disabled).
	Provenance *prov.Record `json:"provenance,omitempty"`
}

// handleDebugCache serves the plan and result caches' live contents
// (GET /debug/cache), most recently used first, with per-entry hit
// counts — which fingerprints the caches are actually retaining, and
// which entries earn their slots.
func (s *Server) handleDebugCache(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	plans := make([]planCacheEntry, 0)
	for _, ent := range s.plans.plans.entries() {
		pe := ent.val.(*planEntry)
		plans = append(plans, planCacheEntry{
			Fingerprint: pe.fp,
			Reads:       pe.reads,
			Epoch:       pe.epoch,
			Hits:        ent.hits,
		})
	}
	results := make([]resultCacheEntry, 0)
	for _, ent := range s.results.entries() {
		cr := ent.val.(*cachedResult)
		row := resultCacheEntry{
			Key:         ent.key,
			Reads:       cr.reads,
			RelEpochs:   cr.relEpochs,
			DictEpoch:   cr.dictEpoch,
			AgeS:        now.Sub(cr.createdAt).Seconds(),
			Hits:        ent.hits,
			Cardinality: cr.resp.Cardinality,
			Truncated:   cr.resp.Truncated,
			ApproxBytes: approxRespBytes(&cr.resp),
			Provenance:  cr.prov,
		}
		results = append(results, row)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"plan_cache": map[string]any{
			"stats":   s.plans.stats(),
			"entries": plans,
		},
		"result_cache": map[string]any{
			"stats":   s.results.stats(),
			"entries": results,
		},
	})
}

// approxRespBytes estimates a cached response's memory footprint from
// its rendered payload: 8 bytes per tuple/column cell and annotation.
func approxRespBytes(resp *QueryResponse) int64 {
	var cells int64
	for _, t := range resp.Tuples {
		cells += int64(len(t))
	}
	for _, c := range resp.Columns {
		cells += int64(len(c))
	}
	cells += int64(len(resp.Anns))
	return cells * 8
}
