package server

import (
	"encoding/json"
	"io"
	"testing"

	"emptyheaded/internal/core"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/gen"
)

// bigListing materializes a few-hundred-k-row 2-path listing once.
func bigListing(b *testing.B) (*exec.Result, int) {
	b.Helper()
	eng := core.New()
	eng.LoadGraph("Edge", gen.ErdosRenyi(4000, 16000, 5))
	res, err := eng.Run(`P2(x,z) :- Edge(x,y),Edge(y,z).`)
	if err != nil {
		b.Fatal(err)
	}
	return res, res.Cardinality()
}

// BenchmarkRenderWalk is the old path: per-tuple trie walk into row
// tuples, then JSON encoding.
func BenchmarkRenderWalk(b *testing.B) {
	res, n := bigListing(b)
	s := &Server{}
	enc := json.NewEncoder(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := QueryResponse{Name: res.Name, Attrs: res.Attrs, Cardinality: n}
		s.renderWalk(&resp, res, n, nil)
		if err := enc.Encode(resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderColumnsRows extracts columns in bulk and assembles row
// tuples (the default shape for big listings).
func BenchmarkRenderColumnsRows(b *testing.B) {
	res, n := bigListing(b)
	s := &Server{}
	enc := json.NewEncoder(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := QueryResponse{Name: res.Name, Attrs: res.Attrs, Cardinality: n}
		s.renderColumns(&resp, res, n, nil, false)
		if err := enc.Encode(resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderColumnsWire serializes the columnar wire shape
// (columns:true): per-attribute arrays end to end.
func BenchmarkRenderColumnsWire(b *testing.B) {
	res, n := bigListing(b)
	s := &Server{}
	enc := json.NewEncoder(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := QueryResponse{Name: res.Name, Attrs: res.Attrs, Cardinality: n}
		s.renderColumns(&resp, res, n, nil, true)
		if err := enc.Encode(resp); err != nil {
			b.Fatal(err)
		}
	}
}
