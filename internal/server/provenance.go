package server

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"emptyheaded/internal/prov"
	"emptyheaded/internal/trace"
)

// Determination provenance (see docs/PROVENANCE.md): every executed
// query gets a prov.Record stamping the lineage that determined its
// result — plan fingerprint, restore generation, and the per-relation
// (epoch, overlay generation, WAL applied-seq watermark) triple. The
// records feed three consumers: the /query response (opt-in via
// "provenance": true), the /debug/provenance ring + /debug/diff
// why-changed differ, and the result-cache self-auditor below.

// auditCounters books the self-auditor's lifetime totals.
type auditCounters struct {
	// sampled counts cached serves picked by the background sampler;
	// checks counts completed re-executions (sampled + on-demand sweeps).
	sampled    atomic.Int64
	checks     atomic.Int64
	mismatches atomic.Int64
	evicted    atomic.Int64
	errors     atomic.Int64
}

// AuditStats is the JSON rendering of the self-auditor's counters.
type AuditStats struct {
	Sampled    int64 `json:"sampled"`
	Checks     int64 `json:"checks"`
	Mismatches int64 `json:"mismatches"`
	Evicted    int64 `json:"evicted"`
	Errors     int64 `json:"errors"`
}

// ProvenanceStats is the provenance section of /stats.
type ProvenanceStats struct {
	Enabled bool       `json:"enabled"`
	Ring    prov.Stats `json:"ring"`
	Audit   AuditStats `json:"audit"`
}

func (s *Server) provenanceStats() ProvenanceStats {
	return ProvenanceStats{
		Enabled: s.prov != nil,
		Ring:    s.prov.StatsSnapshot(),
		Audit: AuditStats{
			Sampled:    s.audit.sampled.Load(),
			Checks:     s.audit.checks.Load(),
			Mismatches: s.audit.mismatches.Load(),
			Evicted:    s.audit.evicted.Load(),
			Errors:     s.audit.errors.Load(),
		},
	}
}

// noteProvenance builds, retains and logs the provenance record of one
// executed query. relEpochs/dictEpoch are the fork's epochs the
// execution actually ran against; the overlay/watermark coordinates are
// read from the engine's live lineage. Returns nil when provenance is
// disabled.
func (s *Server) noteProvenance(tr *trace.Trace, fp string, gen uint64, reads []string, relEpochs []uint64, dictEpoch uint64, cardinality int) *prov.Record {
	if s.prov == nil {
		return nil
	}
	var tid uint64
	if tr != nil { // internal callers (crash drills) run without a trace
		tid = tr.ID
	}
	lin := s.eng.Lineage(reads)
	rec := &prov.Record{
		TraceID:     tid,
		Fingerprint: fp,
		Generation:  gen,
		DictEpoch:   dictEpoch,
		Cardinality: cardinality,
		At:          time.Now(),
		Relations:   make([]prov.RelLineage, len(reads)),
	}
	for i, name := range reads {
		p := lin[name]
		rec.Relations[i] = prov.RelLineage{
			Relation:    name,
			Epoch:       relEpochs[i],
			OverlayGen:  p.OverlayGen,
			WALSeq:      p.WALSeq,
			OverlayRows: p.OverlayRows,
		}
	}
	s.prov.Add(rec)
	// Only executions emit: cached serves would repeat the same lineage
	// per hit, and the hit itself is already visible in the trace.
	s.obs.events.Emit("query_provenance", tid, map[string]any{
		"fingerprint": fp,
		"generation":  gen,
		"cardinality": cardinality,
		"relations":   rec.Relations,
	})
	return rec
}

// provOnServe records a cached serve: the fill-time record — the state
// that determined the bytes being served — cloned and re-stamped with
// this request's trace id and Cached: true, so /debug/trace/<id> and
// /debug/provenance/<id> resolve for hits too.
func (s *Server) provOnServe(cr *cachedResult, tr *trace.Trace) *prov.Record {
	if s.prov == nil || cr.prov == nil || tr == nil {
		return nil
	}
	rec := cr.prov.Clone()
	rec.TraceID = tr.ID
	rec.Cached = true
	rec.At = time.Now()
	s.prov.Add(rec)
	return rec
}

// maybeSampleAudit flips the AuditFraction coin on a cached serve and,
// when it lands, re-executes the served entry in the background and
// compares. The sampler is the always-on tripwire; POST /debug/audit is
// the on-demand full sweep.
func (s *Server) maybeSampleAudit(key string) {
	f := s.cfg.AuditFraction
	if f <= 0 {
		return
	}
	if f < 1 && rand.Float64() >= f {
		return
	}
	s.audit.sampled.Add(1)
	go func() {
		v, ok := s.results.peek(key)
		if !ok {
			return // evicted since the serve; nothing to audit
		}
		cr := v.(*cachedResult)
		if cr.query == "" {
			return
		}
		s.auditOne(context.Background(), key, cr)
	}()
}

// auditOne re-executes the query that filled a cache entry (bypassing
// the cache) and compares content. A mismatch means the entry's
// validity stamp lies — it claims freshness for bytes the current data
// no longer determines — so the entry is evicted, eh_audit_mismatch_total
// is bumped, and an audit_mismatch event carries the provenance diff.
// Returns whether a mismatch was found.
func (s *Server) auditOne(ctx context.Context, key string, cr *cachedResult) (bool, error) {
	s.audit.checks.Add(1)
	tr := s.rec.Start("audit")
	req := &QueryRequest{Query: cr.query, Limit: cr.limit, NoCache: true, Columns: cr.columns}
	release, err := s.adm.acquire(ctx)
	if err != nil {
		tr.SetError(err.Error())
		s.obs.finishTrace(tr)
		s.audit.errors.Add(1)
		return false, err
	}
	resp, _, err := s.runQuery(ctx, req, cr.limit, tr)
	release()
	if err != nil {
		tr.SetError(err.Error())
		s.obs.finishTrace(tr)
		s.audit.errors.Add(1)
		return false, err
	}
	s.obs.finishTrace(tr)
	if respContentEqual(&cr.resp, &resp) {
		return false, nil
	}
	s.audit.mismatches.Add(1)
	s.results.remove(key)
	s.audit.evicted.Add(1)
	fields := map[string]any{
		"key":                key,
		"fingerprint":        cr.fp,
		"cached_cardinality": cr.resp.Cardinality,
		"actual_cardinality": resp.Cardinality,
	}
	// Attribute the drift: diff the entry's fill-time record against the
	// re-execution's (same fingerprint by construction).
	if cr.prov != nil {
		if fresh, ok := s.prov.Get(tr.ID); ok {
			if d, derr := prov.Diff(cr.prov, fresh); derr == nil {
				fields["cardinality_delta"] = d.CardinalityDelta
				fields["drifted"] = d.Drifted
			}
		}
	}
	s.obs.events.Emit("audit_mismatch", tr.ID, fields)
	return true, nil
}

// respContentEqual compares the determined content of two responses:
// cardinality, scalar, tuples/columns/annotations and truncation.
// Attrs are excluded (cached entries hold canonical names, fresh
// executions client spellings), as are per-request fields (trace id,
// elapsed, cache flags).
func respContentEqual(a, b *QueryResponse) bool {
	if a.Cardinality != b.Cardinality || a.Truncated != b.Truncated {
		return false
	}
	if (a.Scalar == nil) != (b.Scalar == nil) {
		return false
	}
	if a.Scalar != nil && *a.Scalar != *b.Scalar {
		return false
	}
	if !rowsEqual(a.Tuples, b.Tuples) || !rowsEqual(a.Columns, b.Columns) {
		return false
	}
	if len(a.Anns) != len(b.Anns) {
		return false
	}
	for i := range a.Anns {
		if a.Anns[i] != b.Anns[i] {
			return false
		}
	}
	return true
}

func rowsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// handleDebugProvenance serves the ring: /debug/provenance lists recent
// records (?n=, default 50) with occupancy stats; /debug/provenance/<id>
// resolves one trace id.
func (s *Server) handleDebugProvenance(w http.ResponseWriter, r *http.Request) {
	if s.prov == nil {
		s.writeErr(w, &httpError{http.StatusNotFound, "provenance disabled"})
		return
	}
	rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/provenance"), "/")
	if rest == "" {
		n := 50
		if v := r.URL.Query().Get("n"); v != "" {
			p, err := strconv.Atoi(v)
			if err != nil || p <= 0 {
				s.writeErr(w, badRequest("bad n: %q", v))
				return
			}
			n = p
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"stats":   s.prov.StatsSnapshot(),
			"records": s.prov.Recent(n),
		})
		return
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		s.writeErr(w, badRequest("bad trace id: %q", rest))
		return
	}
	rec, ok := s.prov.Get(id)
	if !ok {
		s.writeErr(w, &httpError{http.StatusNotFound, "no provenance record for trace " + rest})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleDebugDiff answers "why did this result change?": given two trace
// ids of the same fingerprint (?a=&?b=), it reports which relations'
// lineage drifted between the executions.
func (s *Server) handleDebugDiff(w http.ResponseWriter, r *http.Request) {
	if s.prov == nil {
		s.writeErr(w, &httpError{http.StatusNotFound, "provenance disabled"})
		return
	}
	parse := func(name string) (*prov.Record, error) {
		v := r.URL.Query().Get(name)
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, badRequest("bad %s: %q", name, v)
		}
		rec, ok := s.prov.Get(id)
		if !ok {
			return nil, &httpError{http.StatusNotFound, "no provenance record for trace " + v}
		}
		return rec, nil
	}
	from, err := parse("a")
	if err != nil {
		s.writeErr(w, err)
		return
	}
	to, err := parse("b")
	if err != nil {
		s.writeErr(w, err)
		return
	}
	d, err := prov.Diff(from, to)
	if err != nil {
		s.writeErr(w, badRequest("%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"from": from, "to": to, "diff": d})
}

// handleDebugAudit sweeps the whole result cache on demand: every
// auditable entry is re-executed and compared. Entries that already
// fail their freshness check are skipped (the normal epoch vector
// handles them); the sweep exists to catch entries whose stamp lies.
func (s *Server) handleDebugAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, &httpError{http.StatusMethodNotAllowed, "POST required"})
		return
	}
	t0 := time.Now()
	var checked, skippedStale, mismatches, errs int
	var evicted []string
	for _, ent := range s.results.entries() {
		cr, ok := ent.val.(*cachedResult)
		if !ok || cr.query == "" {
			continue
		}
		if !cr.fresh(s.eng.DB) {
			skippedStale++
			continue
		}
		checked++
		bad, err := s.auditOne(r.Context(), ent.key, cr)
		if err != nil {
			errs++
			continue
		}
		if bad {
			mismatches++
			evicted = append(evicted, ent.key)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"checked":       checked,
		"skipped_stale": skippedStale,
		"mismatches":    mismatches,
		"evicted":       evicted,
		"errors":        errs,
		"elapsed_us":    time.Since(t0).Microseconds(),
	})
}
