package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"emptyheaded/internal/bench"
	"emptyheaded/internal/core"
	"emptyheaded/internal/gen"
)

// newTestService returns a server over a deterministic power-law graph
// loaded as Edge, plus its HTTP test frontend.
func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	eng := core.New()
	eng.LoadGraph("Edge", gen.PowerLaw(150, 900, 2.1, 42))
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, buf.String())
		}
	}
	return resp.StatusCode, buf.String()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func runQuery(t *testing.T, base, query string) QueryResponse {
	t.Helper()
	var qr QueryResponse
	code, body := postJSON(t, base+"/query", QueryRequest{Query: query}, &qr)
	if code != http.StatusOK {
		t.Fatalf("/query %q: status %d, body %s", query, code, body)
	}
	return qr
}

const (
	triangleQ = `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`
	pathQ     = `P(x,z) :- Edge(x,y),Edge(y,z).`
	degreeQ   = `Deg(x;w:long) :- Edge(x,y); w=<<COUNT(y)>>.`
)

func TestEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{})

	// /healthz
	var health map[string]bool
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health["ok"] {
		t.Fatalf("/healthz: code %d, body %v", code, health)
	}

	// /relations sees the startup graph.
	var rels struct {
		Relations []core.RelationInfo `json:"relations"`
	}
	getJSON(t, ts.URL+"/relations", &rels)
	if len(rels.Relations) != 1 || rels.Relations[0].Name != "Edge" || rels.Relations[0].Arity != 2 {
		t.Fatalf("/relations: %+v", rels)
	}

	// /query triangle count: scalar result, uncached on first sight.
	qr := runQuery(t, ts.URL, triangleQ)
	if qr.Scalar == nil || *qr.Scalar <= 0 {
		t.Fatalf("triangle count: %+v", qr)
	}
	if qr.PlanCached || qr.ResultCached {
		t.Errorf("first run should miss both caches: %+v", qr)
	}
	want := *qr.Scalar

	// Second identical run: plan and result cache hits.
	qr2 := runQuery(t, ts.URL, triangleQ)
	if *qr2.Scalar != want {
		t.Errorf("repeat run: got %g, want %g", *qr2.Scalar, want)
	}
	if !qr2.PlanCached || !qr2.ResultCached {
		t.Errorf("repeat run should hit both caches: %+v", qr2)
	}

	// Alpha-renamed variant: different text, same fingerprint — plan
	// cache hit without a result-cache dependency on exact text.
	qr3 := runQuery(t, ts.URL, `TC(;c:long) :- Edge(a,b),Edge(b,d),Edge(a,d); c=<<COUNT(*)>>.`)
	if *qr3.Scalar != want {
		t.Errorf("alpha-renamed run: got %g, want %g", *qr3.Scalar, want)
	}
	if !qr3.PlanCached {
		t.Errorf("alpha-renamed run should hit the plan cache: %+v", qr3)
	}

	// A listing variant's attributes carry its own variable names even
	// when the plan and result come from another spelling's cache entry.
	p1 := runQuery(t, ts.URL, `P(x,z) :- Edge(x,y),Edge(y,z).`)
	if len(p1.Attrs) != 2 || p1.Attrs[0] != "x" || p1.Attrs[1] != "z" {
		t.Errorf("first spelling attrs: %v, want [x z]", p1.Attrs)
	}
	p2 := runQuery(t, ts.URL, `P(a,c) :- Edge(a,b),Edge(b,c).`)
	if !p2.PlanCached {
		t.Errorf("alpha-renamed listing should hit the plan cache: %+v", p2)
	}
	if len(p2.Attrs) != 2 || p2.Attrs[0] != "a" || p2.Attrs[1] != "c" {
		t.Errorf("renamed spelling attrs: %v, want [a c]", p2.Attrs)
	}
	if p2.Cardinality != p1.Cardinality {
		t.Errorf("renamed spelling cardinality %d, want %d", p2.Cardinality, p1.Cardinality)
	}

	// /explain renders a plan.
	var ex map[string]string
	code, body := postJSON(t, ts.URL+"/explain", ExplainRequest{Query: triangleQ}, &ex)
	if code != http.StatusOK || ex["plan"] == "" {
		t.Fatalf("/explain: code %d body %s", code, body)
	}

	// Parse errors surface as 400.
	if code, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: "this is not datalog"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: `X(a) :- Missing(a,b).`}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown relation: status %d, want 400", code)
	}

	// /stats reflects the traffic.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.PlanCache.Hits == 0 {
		t.Errorf("plan cache hits = 0 after repeated queries: %+v", st.PlanCache)
	}
	if st.ResultCache.Hits == 0 {
		t.Errorf("result cache hits = 0 after repeated queries: %+v", st.ResultCache)
	}
	if st.Endpoints["/query"].Requests < 4 {
		t.Errorf("per-endpoint counters missing: %+v", st.Endpoints["/query"])
	}
	if st.Endpoints["/query"].Errors < 2 {
		t.Errorf("error accounting missing: %+v", st.Endpoints["/query"])
	}
}

func TestLoadInvalidatesCaches(t *testing.T) {
	_, ts := newTestService(t, Config{})

	qr := runQuery(t, ts.URL, triangleQ)
	before := *qr.Scalar
	runQuery(t, ts.URL, triangleQ) // populate result cache

	// Replace Edge with a single triangle via inline /load.
	var lr map[string]any
	code, body := postJSON(t, ts.URL+"/load", LoadRequest{
		Name:       "Edge",
		Edges:      [][2]int64{{10, 20}, {20, 30}, {10, 30}},
		Undirected: true,
	}, &lr)
	if code != http.StatusOK {
		t.Fatalf("/load: code %d body %s", code, body)
	}

	qr2 := runQuery(t, ts.URL, triangleQ)
	if qr2.ResultCached {
		t.Error("result cache survived a load")
	}
	// 1 undirected triangle = 6 ordered instances; the old graph's count
	// must be gone.
	if *qr2.Scalar != 6 || *qr2.Scalar == before {
		t.Errorf("post-load triangle count: got %g (pre-load %g), want 6", *qr2.Scalar, before)
	}

	// Listing query decodes through the new dictionary (original ids).
	qr3 := runQuery(t, ts.URL, `S(y) :- Edge(10,y).`)
	ids := map[int64]bool{}
	for _, tup := range qr3.Tuples {
		ids[tup[0]] = true
	}
	if !ids[20] || !ids[30] || len(ids) != 2 {
		t.Errorf("decoded neighbors of 10: %v, want {20,30}", qr3.Tuples)
	}
}

// TestConcurrentMixedQueries is the -race stress test: 32 goroutines fire
// a mixed workload (triangle count, path listing, degree aggregation) at
// one shared service and every response must match the sequential answer.
func TestConcurrentMixedQueries(t *testing.T) {
	// Deep queue and generous wait: this test asserts correctness and
	// cache behavior under contention, not overload shedding (the -race
	// detector makes individual queries slow enough to overflow the
	// production defaults).
	s, ts := newTestService(t, Config{Workers: 8, QueueDepth: 256, QueueWait: 2 * time.Minute})

	// Sequential ground truth.
	tri := runQuery(t, ts.URL, triangleQ)
	path := runQuery(t, ts.URL, pathQ)
	deg := runQuery(t, ts.URL, degreeQ)
	if tri.Scalar == nil || path.Cardinality == 0 || deg.Cardinality == 0 {
		t.Fatalf("degenerate ground truth: tri=%+v path.card=%d deg.card=%d", tri, path.Cardinality, deg.Cardinality)
	}

	const goroutines = 32
	const perG = 6
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Rotate the mix; sometimes bypass the result cache so
				// real executions and cache serves interleave.
				noCache := (g+i)%3 == 0
				var query string
				var check func(QueryResponse) error
				switch (g + i) % 3 {
				case 0:
					query = triangleQ
					check = func(qr QueryResponse) error {
						if qr.Scalar == nil || *qr.Scalar != *tri.Scalar {
							return fmt.Errorf("triangle: got %+v, want %g", qr.Scalar, *tri.Scalar)
						}
						return nil
					}
				case 1:
					query = pathQ
					check = func(qr QueryResponse) error {
						if qr.Cardinality != path.Cardinality {
							return fmt.Errorf("path: cardinality %d, want %d", qr.Cardinality, path.Cardinality)
						}
						return nil
					}
				default:
					query = degreeQ
					check = func(qr QueryResponse) error {
						if qr.Cardinality != deg.Cardinality {
							return fmt.Errorf("degree: cardinality %d, want %d", qr.Cardinality, deg.Cardinality)
						}
						return nil
					}
				}
				var qr QueryResponse
				code, body := postJSON(t, ts.URL+"/query", QueryRequest{Query: query, NoCache: noCache}, &qr)
				if code != http.StatusOK {
					errCh <- fmt.Errorf("status %d: %s", code, body)
					continue
				}
				if err := check(qr); err != nil {
					errCh <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := s.StatsSnapshot()
	if st.PlanCache.Hits == 0 {
		t.Errorf("stress run produced no plan-cache hits: %+v", st.PlanCache)
	}
	if st.Admission.Active != 0 || st.Admission.Queued != 0 {
		t.Errorf("admission gauges nonzero after drain: %+v", st.Admission)
	}
	if got := st.Endpoints["/query"].Errors; got != 0 {
		t.Errorf("stress run recorded %d query errors", got)
	}
}

// TestLoadGenerator drives the bench package's load-generator mode (the
// eh-bench -serve-url path) against a live service.
func TestLoadGenerator(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 4})

	rep, err := bench.RunLoad(bench.LoadConfig{
		URL:         ts.URL,
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("load generator sent no requests")
	}
	if rep.Errors != 0 {
		t.Errorf("load generator saw %d errors", rep.Errors)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput %f, want > 0", rep.Throughput)
	}
	if rep.P99 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("percentiles inconsistent: p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.PlanHits == 0 {
		t.Errorf("load run produced no plan-cache hits")
	}
	out := rep.Format()
	for _, want := range []string{"throughput", "p99 latency", "plan-cache hits"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	a := newAdmission(1, 1, 50*time.Millisecond)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Slot taken: the next caller waits alone in the gate, times out.
	if _, err := a.acquire(context.Background()); err != errQueueTimeout {
		t.Errorf("expected queue timeout, got %v", err)
	}
	// One caller occupies the gate; the next overflows it immediately.
	done := make(chan error, 1)
	go func() {
		rel2, err := a.acquire(context.Background())
		if err == nil {
			rel2()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the goroutine enter the gate
	if _, err := a.acquire(context.Background()); err != errQueueFull {
		t.Errorf("expected queue full, got %v", err)
	}
	release()
	if err := <-done; err != nil {
		t.Errorf("queued caller should get the released slot: %v", err)
	}
	st := a.stats()
	if st.RejectedFull == 0 || st.RejectedTimeout == 0 {
		t.Errorf("rejection counters: %+v", st)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Errorf("gauges after drain: %+v", st)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	c.get("a")    // a most recent
	c.put("c", 3) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived")
	}
	st := c.stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Errorf("stats: %+v", st)
	}
}
