package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"emptyheaded/internal/bench"
	"emptyheaded/internal/core"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/wal"
)

// newUpdateService serves a small hand-built edge relation (dense
// codes, no dictionary) so update bodies can speak codes directly.
func newUpdateService(t *testing.T, cfg Config) (*core.Engine, *httptest.Server) {
	t.Helper()
	eng := core.New()
	// One DAG triangle 0→1→2 with chord 0→2, plus a stray edge 3→4.
	if err := eng.AddRelationColumns("Edge",
		[][]uint32{{0, 1, 0, 3}, {1, 2, 2, 4}}, nil, semiring.None); err != nil {
		t.Fatal(err)
	}
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return eng, ts
}

func triCount(t *testing.T, base string) float64 {
	t.Helper()
	qr := runQuery(t, base, `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if qr.Scalar == nil {
		t.Fatalf("no scalar in %+v", qr)
	}
	return *qr.Scalar
}

func TestUpdateEndpoint(t *testing.T) {
	_, ts := newUpdateService(t, Config{})
	if got := triCount(t, ts.URL); got != 1 {
		t.Fatalf("seed triangle count %g, want 1", got)
	}

	// Insert rows: a second triangle 1→3→4 (closing over 3→4).
	var ur struct {
		Cardinality int `json:"cardinality"`
		OverlayRows int `json:"overlay_rows"`
		Inserted    int `json:"inserted"`
	}
	code, body := postJSON(t, ts.URL+"/update", UpdateRequest{
		Name:    "Edge",
		Inserts: [][]uint32{{1, 3}, {1, 4}},
	}, &ur)
	if code != 200 {
		t.Fatalf("update: %d %s", code, body)
	}
	if ur.Inserted != 2 || ur.Cardinality != 6 || ur.OverlayRows != 2 {
		t.Fatalf("update response %+v", ur)
	}
	if got := triCount(t, ts.URL); got != 2 {
		t.Fatalf("triangle count after insert %g, want 2", got)
	}

	// Delete via columns: remove the original triangle's chord 0→2.
	code, body = postJSON(t, ts.URL+"/update", UpdateRequest{
		Name:          "Edge",
		DeleteColumns: [][]uint32{{0}, {2}},
	}, nil)
	if code != 200 {
		t.Fatalf("delete: %d %s", code, body)
	}
	if got := triCount(t, ts.URL); got != 1 {
		t.Fatalf("triangle count after delete %g, want 1", got)
	}

	// Bad requests.
	for _, req := range []UpdateRequest{
		{},                                       // no name
		{Name: "Edge"},                           // no rows
		{Name: "Edge", Inserts: [][]uint32{{1}}}, // arity
		{Name: "Edge", Inserts: [][]uint32{{1, 2}}, InsertColumns: [][]uint32{{1}}}, // both forms
	} {
		if code, _ := postJSON(t, ts.URL+"/update", req, nil); code != 400 {
			t.Fatalf("bad request %+v: code %d", req, code)
		}
	}
}

// TestUpdateResultCacheScoping: updating Edge invalidates cached
// results that read Edge but keeps results over other relations.
func TestUpdateResultCacheScoping(t *testing.T) {
	eng, ts := newUpdateService(t, Config{})
	if err := eng.AddRelationColumns("Other", [][]uint32{{5, 6}, {6, 7}}, nil, semiring.None); err != nil {
		t.Fatal(err)
	}
	edgeQ := `L(x,y) :- Edge(x,y).`
	otherQ := `M(x,y) :- Other(x,y).`
	runQuery(t, ts.URL, edgeQ)
	runQuery(t, ts.URL, otherQ)
	if qr := runQuery(t, ts.URL, otherQ); !qr.ResultCached {
		t.Fatal("Other query should be cached before the update")
	}

	if code, body := postJSON(t, ts.URL+"/update", UpdateRequest{
		Name: "Edge", Inserts: [][]uint32{{9, 9}},
	}, nil); code != 200 {
		t.Fatalf("update: %d %s", code, body)
	}
	if qr := runQuery(t, ts.URL, otherQ); !qr.ResultCached {
		t.Fatal("Other query cache entry should survive an Edge update")
	}
	qr := runQuery(t, ts.URL, edgeQ)
	if qr.ResultCached {
		t.Fatal("Edge query cache entry should be invalidated by the update")
	}
	if qr.Cardinality != 5 {
		t.Fatalf("Edge listing cardinality %d, want 5", qr.Cardinality)
	}
}

func TestCompactEndpoint(t *testing.T) {
	_, ts := newUpdateService(t, Config{})
	postJSON(t, ts.URL+"/update", UpdateRequest{Name: "Edge", Inserts: [][]uint32{{8, 9}}}, nil)
	before := triCount(t, ts.URL)

	var cr struct {
		Compacted bool `json:"compacted"`
	}
	if code, body := postJSON(t, ts.URL+"/compact", CompactRequest{Name: "Edge"}, &cr); code != 200 || !cr.Compacted {
		t.Fatalf("compact: %d %s (%+v)", code, body, cr)
	}
	if got := triCount(t, ts.URL); got != before {
		t.Fatalf("compaction changed results: %g != %g", got, before)
	}
	// Second compact is a no-op.
	if code, _ := postJSON(t, ts.URL+"/compact", CompactRequest{Name: "Edge"}, &cr); code != 200 || cr.Compacted {
		t.Fatalf("re-compact should be a no-op, got %+v", cr)
	}
	if code, _ := postJSON(t, ts.URL+"/compact", CompactRequest{}, nil); code != 400 {
		t.Fatal("compact without name should 400")
	}
}

// TestUpdateWALRestartViaServer: a server with a WAL recovers streamed
// updates in a second server process-equivalent (fresh engine, same
// dirs) without an intervening snapshot.
func TestUpdateWALRestartViaServer(t *testing.T) {
	walDir := t.TempDir()

	eng := core.New()
	eng.AddRelationColumns("Edge", [][]uint32{{0, 1, 2}, {1, 2, 0}}, nil, semiring.None)
	if _, err := eng.OpenWAL(core.WALConfig{Dir: walDir, Sync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	postJSON(t, ts.URL+"/update", UpdateRequest{Name: "Edge", Inserts: [][]uint32{{0, 2}, {2, 1}}}, nil)
	postJSON(t, ts.URL+"/update", UpdateRequest{Name: "Edge", Deletes: [][]uint32{{2, 0}}}, nil)
	want := runQuery(t, ts.URL, `L(x,y) :- Edge(x,y).`)
	ts.Close()
	// No CloseWAL: simulate an unclean exit (fsync=always made every
	// acknowledged batch durable).

	eng2 := core.New()
	eng2.AddRelationColumns("Edge", [][]uint32{{0, 1, 2}, {1, 2, 0}}, nil, semiring.None)
	st, err := eng2.OpenWAL(core.WALConfig{Dir: walDir, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 {
		t.Fatalf("replay stats %+v", st)
	}
	ts2 := httptest.NewServer(New(eng2, Config{}).Handler())
	defer ts2.Close()
	got := runQuery(t, ts2.URL, `L(x,y) :- Edge(x,y).`)
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("restart: %d tuples, want %d", len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if got.Tuples[i][0] != want.Tuples[i][0] || got.Tuples[i][1] != want.Tuples[i][1] {
			t.Fatalf("restart tuple %d: %v != %v", i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestMixedWorkloadGenerator drives the bench package's mixed mode (the
// eh-bench -mixed path): queries and streaming updates against one live
// service, with update throughput and query latency both reported.
func TestMixedWorkloadGenerator(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 4})

	rep, err := bench.RunMixed(bench.MixedConfig{
		URL:               ts.URL,
		Relation:          "Edge",
		QueryConcurrency:  3,
		UpdateConcurrency: 2,
		Duration:          400 * time.Millisecond,
		BatchRows:         16,
		KeySpace:          200,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueryRequests == 0 || rep.UpdateBatches == 0 {
		t.Fatalf("mixed run idle: %+v", rep)
	}
	if rep.QueryErrors != 0 || rep.UpdateErrors != 0 {
		t.Fatalf("mixed run saw errors: %+v", rep)
	}
	if rep.UpdatesPerSecond <= 0 || rep.RowsPerSecond <= 0 {
		t.Fatalf("update throughput not reported: %+v", rep)
	}
	if rep.UpdateP99 < rep.UpdateP50 || rep.QueryP99 < rep.QueryP50 {
		t.Fatalf("percentiles inconsistent: %+v", rep)
	}
	out := rep.Format()
	for _, want := range []string{"updates/s", "query p99 latency", "update p99 latency", "overlay rows"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mixed report missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsIncludeDurability(t *testing.T) {
	_, ts := newUpdateService(t, Config{})
	postJSON(t, ts.URL+"/update", UpdateRequest{Name: "Edge", Inserts: [][]uint32{{7, 8}}}, nil)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"emptyheaded_updates_total 1",
		"emptyheaded_update_rows_total 1",
		"emptyheaded_overlay_rows{relation=\"Edge\"} 1",
		"emptyheaded_compactions_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}
