package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"emptyheaded/internal/core"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/storage"
)

// loadTuples posts a tuple-shaped /load (no dictionary replacement, so
// only the named relation's epoch advances).
func loadTuples(t *testing.T, base, name string, tuples [][]uint32) {
	t.Helper()
	code, body := postJSON(t, base+"/load", map[string]any{
		"name": name, "arity": 2, "tuples": tuples,
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("/load %s: %d %s", name, code, body)
	}
}

func queryOnce(t *testing.T, base, q string) QueryResponse {
	t.Helper()
	var resp QueryResponse
	code, body := postJSON(t, base+"/query", map[string]any{"query": q}, &resp)
	if code != http.StatusOK {
		t.Fatalf("/query %q: %d %s", q, code, body)
	}
	return resp
}

// TestLoadInvalidatesOnlyReadRelations is the per-relation epoch
// satellite: reloading S must not evict cached results for queries that
// never read S.
func TestLoadInvalidatesOnlyReadRelations(t *testing.T) {
	_, ts := newTestService(t, Config{})
	base := ts.URL

	loadTuples(t, base, "R", [][]uint32{{1, 2}, {2, 3}, {3, 1}})
	loadTuples(t, base, "S", [][]uint32{{5, 6}, {6, 7}})

	qR := `AR(x,y) :- R(x,y).`
	qS := `AS(x,y) :- S(x,y).`

	// Prime both caches (first call computes, second serves).
	queryOnce(t, base, qR)
	if !queryOnce(t, base, qR).ResultCached {
		t.Fatal("R query not cached after priming")
	}
	queryOnce(t, base, qS)
	if !queryOnce(t, base, qS).ResultCached {
		t.Fatal("S query not cached after priming")
	}

	// Reload S: only S's epoch advances.
	loadTuples(t, base, "S", [][]uint32{{5, 6}, {7, 8}, {8, 9}})

	if resp := queryOnce(t, base, qR); !resp.ResultCached {
		t.Fatal("reloading S evicted the cached result of a query that only reads R")
	}
	respS := queryOnce(t, base, qS)
	if respS.ResultCached {
		t.Fatal("reloading S served a stale cached result for a query reading S")
	}
	if respS.Cardinality != 3 {
		t.Fatalf("S query after reload: cardinality %d, want 3", respS.Cardinality)
	}
	// And the edge-relation queries never noticed either load.
	tri := `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`
	queryOnce(t, base, tri)
	if !queryOnce(t, base, tri).ResultCached {
		t.Fatal("tuple loads evicted the Edge-only aggregate")
	}
}

// TestSnapshotRestoreEndpoints exercises POST /snapshot and POST
// /restore end to end: snapshot, mutate, restore, and require the
// original answers back.
func TestSnapshotRestoreEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{})
	base := ts.URL
	dir := filepath.Join(t.TempDir(), "snap")

	tri := `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`
	before := queryOnce(t, base, tri)

	var snapResp map[string]any
	code, body := postJSON(t, base+"/snapshot", map[string]any{"dir": dir}, &snapResp)
	if code != http.StatusOK {
		t.Fatalf("/snapshot: %d %s", code, body)
	}
	if int(snapResp["relations"].(float64)) < 1 {
		t.Fatalf("snapshot wrote no relations: %v", snapResp)
	}

	// Clobber the database.
	loadTuples(t, base, "Edge", [][]uint32{{1, 2}})
	if got := queryOnce(t, base, tri); got.Scalar != nil && before.Scalar != nil && *got.Scalar == *before.Scalar {
		t.Skip("clobbered graph accidentally has the same triangle count")
	}

	var restResp map[string]any
	code, body = postJSON(t, base+"/restore", map[string]any{"dir": dir}, &restResp)
	if code != http.StatusOK {
		t.Fatalf("/restore: %d %s", code, body)
	}
	after := queryOnce(t, base, tri)
	if after.Scalar == nil || before.Scalar == nil || *after.Scalar != *before.Scalar {
		t.Fatalf("triangle count after restore = %v, want %v", after.Scalar, before.Scalar)
	}

	// Restoring garbage must fail cleanly.
	code, _ = postJSON(t, base+"/restore", map[string]any{"dir": filepath.Join(t.TempDir(), "missing")}, nil)
	if code == http.StatusOK {
		t.Fatal("restore of a missing snapshot returned 200")
	}
}

func TestSnapshotWithoutDirOrDataDir(t *testing.T) {
	_, ts := newTestService(t, Config{})
	code, _ := postJSON(t, ts.URL+"/snapshot", map[string]any{}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("/snapshot without dir: %d, want 400", code)
	}
}

// TestDataDirDefault: with a configured DataDir, /snapshot and /restore
// bodies may omit the directory.
func TestDataDirDefault(t *testing.T) {
	dir := t.TempDir()
	eng := core.New()
	eng.LoadGraph("Edge", gen.PowerLaw(80, 500, 2.1, 7))
	s := New(eng, Config{DataDir: dir})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	code, body := postJSON(t, ts.URL+"/snapshot", map[string]any{}, nil)
	if code != http.StatusOK {
		t.Fatalf("/snapshot with DataDir default: %d %s", code, body)
	}
	if !storage.Exists(dir) {
		t.Fatal("snapshot not written to the configured data dir")
	}
	code, body = postJSON(t, ts.URL+"/restore", map[string]any{}, nil)
	if code != http.StatusOK {
		t.Fatalf("/restore with DataDir default: %d %s", code, body)
	}
}

// TestColumnarWireShape: columns:true returns per-attribute arrays that
// agree with the row shape.
func TestColumnarWireShape(t *testing.T) {
	_, ts := newTestService(t, Config{})
	base := ts.URL
	q := `P2(x,z) :- Edge(x,y),Edge(y,z).`

	var rows QueryResponse
	postJSON(t, base+"/query", map[string]any{"query": q, "limit": 200}, &rows)
	var cols QueryResponse
	postJSON(t, base+"/query", map[string]any{"query": q, "limit": 200, "columns": true}, &cols)

	if len(cols.Tuples) != 0 {
		t.Fatal("columnar response carries row tuples")
	}
	if len(cols.Columns) != 2 {
		t.Fatalf("columnar response has %d columns, want 2", len(cols.Columns))
	}
	if len(cols.Columns[0]) != len(rows.Tuples) {
		t.Fatalf("columnar rows %d != tuple rows %d", len(cols.Columns[0]), len(rows.Tuples))
	}
	for i, row := range rows.Tuples {
		if cols.Columns[0][i] != row[0] || cols.Columns[1][i] != row[1] {
			t.Fatalf("row %d: columns (%d,%d) != tuple %v", i, cols.Columns[0][i], cols.Columns[1][i], row)
		}
	}
	// Both shapes cache independently.
	var again QueryResponse
	postJSON(t, base+"/query", map[string]any{"query": q, "limit": 200, "columns": true}, &again)
	if !again.ResultCached {
		t.Fatal("columnar response not served from cache on repeat")
	}
}
