package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/wal"
)

// TestMain doubles this test binary as the crash-test server child:
// with EH_CRASH_CHILD set it serves an engine with a WAL (fsync=always)
// instead of running tests, so TestKillAndRestartDurability can SIGKILL
// a real process mid-serve.
func TestMain(m *testing.M) {
	if os.Getenv("EH_CRASH_CHILD") == "1" {
		runCrashChild()
		return
	}
	os.Exit(m.Run())
}

func crashSeedColumns() [][]uint32 {
	return [][]uint32{{0, 1, 0, 3}, {1, 2, 2, 4}}
}

func runCrashChild() {
	eng := core.New()
	if err := eng.AddRelationColumns("Edge", crashSeedColumns(), nil, semiring.None); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	if _, err := eng.OpenWAL(core.WALConfig{Dir: os.Getenv("EH_WAL_DIR"), Sync: wal.SyncAlways}); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	// Publish the bound address atomically (write + rename) so the
	// parent never reads a half-written file.
	addrFile := os.Getenv("EH_ADDR_FILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	_ = http.Serve(ln, New(eng, Config{}).Handler())
}

// startCrashChild launches the child and waits for it to serve.
func startCrashChild(t *testing.T, walDir, addrFile string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"EH_CRASH_CHILD=1",
		"EH_WAL_DIR="+walDir,
		"EH_ADDR_FILE="+addrFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("child server never came up")
		}
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			url := "http://" + string(addr)
			if resp, err := http.Get(url + "/healthz"); err == nil {
				resp.Body.Close()
				return cmd, url
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// comparableResult reduces a query response to the bytes that must
// match across runs (order is deterministic; timings are not).
func comparableResult(t *testing.T, qr QueryResponse) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Cardinality int       `json:"cardinality"`
		Tuples      [][]int64 `json:"tuples"`
		Anns        []float64 `json:"anns"`
	}{qr.Cardinality, qr.Tuples, qr.Anns})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestKillAndRestartDurability is the acceptance crash test: apply
// update batches with fsync=always against a real server process,
// SIGKILL it, restart on the same WAL dir — every acknowledged batch is
// visible and query results match an uninterrupted run byte-for-byte.
func TestKillAndRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	walDir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")

	child, url := startCrashChild(t, walDir, addrFile)
	defer child.Process.Kill()

	// Reference engine mirrors every acknowledged batch in-process.
	ref := core.New()
	if err := ref.AddRelationColumns("Edge", crashSeedColumns(), nil, semiring.None); err != nil {
		t.Fatal(err)
	}
	post := func(req UpdateRequest) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(url+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			t.Fatalf("update %+v: %d %s", req, resp.StatusCode, buf.String())
		}
	}
	batches := []UpdateRequest{
		{Name: "Edge", Inserts: [][]uint32{{1, 3}, {1, 4}}},
		{Name: "Edge", Deletes: [][]uint32{{0, 2}}},
		{Name: "Edge", Inserts: [][]uint32{{5, 6}, {6, 7}, {5, 7}}},
		{Name: "Edge", Deletes: [][]uint32{{5, 6}}, Inserts: [][]uint32{{0, 2}}},
	}
	for _, b := range batches {
		post(b)
		// Mirror into the reference engine (rows → columns).
		ub := core.UpdateBatch{Rel: b.Name}
		if len(b.Inserts) > 0 {
			ub.InsCols = [][]uint32{make([]uint32, len(b.Inserts)), make([]uint32, len(b.Inserts))}
			for i, r := range b.Inserts {
				ub.InsCols[0][i], ub.InsCols[1][i] = r[0], r[1]
			}
		}
		if len(b.Deletes) > 0 {
			ub.DelCols = [][]uint32{make([]uint32, len(b.Deletes)), make([]uint32, len(b.Deletes))}
			for i, r := range b.Deletes {
				ub.DelCols[0][i], ub.DelCols[1][i] = r[0], r[1]
			}
		}
		if _, err := ref.Update(ub); err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL: no drain, no snapshot, no WAL close.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	child2, url2 := startCrashChild(t, walDir, addrFile)
	defer child2.Process.Kill()

	queries := []string{
		`L(x,y) :- Edge(x,y).`,
		`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`,
		`In(y;w:long) :- Edge(x,y); w=<<COUNT(x)>>.`,
	}
	refSrv := New(ref, Config{})
	for _, q := range queries {
		body, _ := json.Marshal(QueryRequest{Query: q, Limit: 10000})
		resp, err := http.Post(url2+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var got QueryResponse
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := refSrv.runQuery(context.Background(), &QueryRequest{Query: q, Limit: 10000}, 10000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Scalar != nil || want.Scalar != nil {
			if got.Scalar == nil || want.Scalar == nil || *got.Scalar != *want.Scalar {
				t.Fatalf("query %q: scalar %v vs reference %v", q, got.Scalar, want.Scalar)
			}
			continue
		}
		if g, w := comparableResult(t, got), comparableResult(t, want); !bytes.Equal(g, w) {
			t.Fatalf("query %q diverges after kill+restart:\n got %s\nwant %s", q, g, w)
		}
	}
}
