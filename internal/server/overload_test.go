package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestAdmissionCancelledWaiterNeverAcquires: a waiter whose context is
// cancelled must not end up holding a worker slot — neither when the
// cancellation arrives while queued, nor when it races the slot grant.
func TestAdmissionCancelledWaiterNeverAcquires(t *testing.T) {
	a := newAdmission(1, 4, time.Second)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Waiter cancelled while queued.
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		rel, err := a.acquire(ctx)
		if rel != nil {
			rel()
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-got; err != context.Canceled {
		t.Fatalf("queued waiter err = %v, want context.Canceled", err)
	}

	// Pre-cancelled context racing an immediately-free slot: release the
	// held slot first so both select cases are ready at once.
	release()
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	for i := 0; i < 100; i++ {
		if rel, err := a.acquire(cctx); err == nil {
			rel()
			t.Fatal("cancelled context acquired a slot")
		}
	}

	// The slot was never leaked: a healthy acquire succeeds instantly.
	rel2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatalf("slot leaked to a cancelled waiter: %v", err)
	}
	rel2()
	if st := a.stats(); st.Active != 0 {
		t.Fatalf("active = %d after all releases", st.Active)
	}
}

// TestOverloadShedsFast: a saturated 1-slot pool sheds a burst with
// immediate 503s carrying Retry-After, without goroutine pileup, and
// serves again the moment the slot frees.
func TestOverloadShedsFast(t *testing.T) {
	s, ts := newTestService(t, Config{
		Workers:    1,
		QueueDepth: 1,
		QueueWait:  100 * time.Millisecond,
		RetryAfter: 2 * time.Second,
	})

	// Occupy the only worker slot directly.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	g0 := runtime.NumGoroutine()
	const burst = 100
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := postJSON(t, ts.URL+"/query", QueryRequest{Query: triangleQ, NoCache: true}, nil)
			codes[i] = code
		}(i)
	}
	wg.Wait()
	shed := 0
	for i, code := range codes {
		switch code {
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("burst request %d: status %d", i, code)
		}
	}
	if shed != burst {
		t.Fatalf("shed %d of %d requests with a held slot", shed, burst)
	}

	// One representative rejection carries the Retry-After contract.
	body, err := json.Marshal(QueryRequest{Query: triangleQ, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("shed response: %d Retry-After=%q, want 503 with \"2\"", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// No goroutine pileup: shed requests left nothing behind. (Allow
	// slack for the HTTP keep-alive pool and runtime helpers.)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= g0+20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after shed burst", g0, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The slot frees: service resumes at once.
	release()
	runQuery(t, ts.URL, triangleQ)

	st := s.adm.stats()
	if st.RejectedFull+st.RejectedTimeout < burst {
		t.Fatalf("admission stats did not account the shed burst: %+v", st)
	}
}
