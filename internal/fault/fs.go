package fault

import (
	"fmt"
	"io"
	"os"
	"time"
)

// File is the open-file surface the WAL appends through. *os.File
// implements it.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the file-operation surface internal/wal and internal/storage
// route their write paths through. OS is the direct passthrough; NewFS
// wraps it with an Injector.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm os.FileMode) error
}

// OS is the passthrough FS used when no injector is wired in.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// NewFS wraps the real filesystem with injection points named
// prefix+".open", ".read", ".writefile", ".rename", ".remove",
// ".truncate", ".mkdir" for FS ops and prefix+".write", ".sync",
// ".close", ".ftruncate" for ops on files it opened.
func NewFS(in *Injector, prefix string) FS {
	return faultFS{in: in, prefix: prefix}
}

type faultFS struct {
	in     *Injector
	prefix string
}

func (f faultFS) point(op string) string { return f.prefix + "." + op }

// opErr evaluates a point where the only possible effects are latency
// and failure (any non-latency kind fails the op).
func (f faultFS) opErr(op, path string) error {
	act := f.in.at(f.point(op), path)
	if act == nil {
		return nil
	}
	if act.kind == Latency {
		time.Sleep(act.sleep)
		return nil
	}
	return act.error()
}

func (f faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.opErr("open", name); err != nil {
		return nil, err
	}
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fs: f}, nil
}

func (f faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.opErr("read", name); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}

func (f faultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	act := f.in.at(f.point("writefile"), name)
	if act != nil {
		switch act.kind {
		case Latency:
			time.Sleep(act.sleep)
		case ShortWrite, Torn:
			// Persist a prefix; Torn still reports success.
			n := shortLen(len(data), act.frac)
			_ = os.WriteFile(name, data[:n], perm)
			if act.kind == Torn {
				return nil
			}
			return fmt.Errorf("%w: short write (%d of %d bytes)", act.error(), n, len(data))
		default:
			return act.error()
		}
	}
	return os.WriteFile(name, data, perm)
}

func (f faultFS) Rename(oldpath, newpath string) error {
	if err := f.opErr("rename", newpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func (f faultFS) Remove(name string) error {
	if err := f.opErr("remove", name); err != nil {
		return err
	}
	return os.Remove(name)
}

func (f faultFS) Truncate(name string, size int64) error {
	if err := f.opErr("truncate", name); err != nil {
		return err
	}
	return os.Truncate(name, size)
}

func (f faultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.opErr("mkdir", path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

// faultFile wraps an open file with write/sync/close/truncate points.
type faultFile struct {
	f  *os.File
	fs faultFS
}

func (w *faultFile) Write(p []byte) (int, error) {
	act := w.fs.in.at(w.fs.point("write"), w.f.Name())
	if act == nil {
		return w.f.Write(p)
	}
	switch act.kind {
	case Latency:
		time.Sleep(act.sleep)
		return w.f.Write(p)
	case ShortWrite:
		n := shortLen(len(p), act.frac)
		n, _ = w.f.Write(p[:n])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", act.error(), n, len(p))
	case Torn:
		// The device lies: a prefix reaches the platter, the caller
		// sees success. Only reopen/replay can observe the tear.
		n := shortLen(len(p), act.frac)
		if _, err := w.f.Write(p[:n]); err != nil {
			return 0, err
		}
		return len(p), nil
	default:
		return 0, act.error()
	}
}

func (w *faultFile) Sync() error {
	if err := w.fs.opErr("sync", w.f.Name()); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error {
	if err := w.fs.opErr("close", w.f.Name()); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func (w *faultFile) Truncate(size int64) error {
	if err := w.fs.opErr("ftruncate", w.f.Name()); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w *faultFile) Stat() (os.FileInfo, error) { return w.f.Stat() }
func (w *faultFile) Name() string               { return w.f.Name() }

// shortLen is the byte count a ShortWrite/Torn rule lets through:
// frac of the buffer, at least one byte short of all of it.
func shortLen(n int, frac float64) int {
	k := int(float64(n) * frac)
	if k >= n && n > 0 {
		k = n - 1
	}
	if k < 0 {
		k = 0
	}
	return k
}
