// Package fault is a deterministic, seeded fault-injection layer for
// the serving stack's durability and execution paths.
//
// Faults are described by Rules bound to named injection points
// ("wal.sync", "storage.writefile", "exec.worker", ...). An Injector
// evaluates the rules with a seeded RNG, so a failing chaos schedule is
// reproduced by its seed alone. Injection reaches the code under test
// two ways:
//
//   - the FS/File interfaces in fs.go wrap the file operations that
//     internal/wal and internal/storage write through, and NewFS
//     returns an implementation that consults an Injector before each
//     op;
//   - Hit(point) consults a process-global Injector installed with
//     Enable, for probabilistic points inside compaction and the exec
//     pool that have no file handle to wrap.
//
// Everything is off by default: production code paths pay one nil
// atomic load (Hit) or zero overhead (FS left nil selects the direct
// os passthrough).
package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// Kind is the failure mode a Rule injects.
type Kind uint8

const (
	// Err fails the operation cleanly: nothing is written, the rule's
	// error (default ErrInjected) is returned.
	Err Kind = iota
	// ShortWrite writes a prefix of the buffer and returns the short
	// count with an error — a truthful partial write (disk full).
	ShortWrite
	// Torn writes a prefix of the buffer but reports complete success —
	// a lying device, observable only after reopen. Models the tear a
	// power cut leaves mid-sector.
	Torn
	// Latency delays the operation, then lets it proceed normally.
	Latency
	// PanicKind panics at the injection point (exec pool, compaction) —
	// exercising the panic-isolation boundaries.
	PanicKind
)

// String names the kind for schedules and events.
func (k Kind) String() string {
	switch k {
	case Err:
		return "err"
	case ShortWrite:
		return "short-write"
	case Torn:
		return "torn"
	case Latency:
		return "latency"
	case PanicKind:
		return "panic"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is the default error injected by Err/ShortWrite rules.
var ErrInjected = errors.New("fault: injected error")

// Rule arms one failure at one injection point.
type Rule struct {
	// Point names the injection point, e.g. "wal.sync".
	Point string
	// Kind is the failure mode.
	Kind Kind
	// OnCall, when > 0, fires deterministically on every matching call
	// whose per-point sequence number is >= OnCall. When 0, the rule
	// fires probabilistically with Prob.
	OnCall uint64
	// Prob is the per-call fire probability for OnCall == 0 rules,
	// drawn from the injector's seeded RNG.
	Prob float64
	// Times bounds how often the rule fires: 0 means once for OnCall
	// rules and unlimited for probabilistic ones; < 0 means unlimited.
	Times int
	// PathSubstr, when non-empty, restricts file-op rules to paths
	// containing the substring.
	PathSubstr string
	// Err overrides ErrInjected as the injected error.
	Err error
	// Sleep is the Latency kind's delay.
	Sleep time.Duration
	// Frac is the fraction of the buffer ShortWrite/Torn rules write
	// (default 0.5; clamped so at least one byte is dropped).
	Frac float64
}

// Event records one fired rule, for reproduction output.
type Event struct {
	Point string
	Call  uint64
	Kind  Kind
	Path  string
}

// Injector evaluates rules at injection points with a seeded RNG.
// Methods are safe for concurrent use.
type Injector struct {
	seed int64

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*ruleState
	calls  map[string]uint64
	events []Event
}

type ruleState struct {
	Rule
	fired int
}

// New returns an injector whose probabilistic rules draw from a RNG
// seeded with seed; the same seed and call sequence replays the same
// fault schedule.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		calls: map[string]uint64{},
	}
	in.Add(rules...)
	return in
}

// Add arms more rules; useful for enabling faults only after setup
// (boot, WAL replay) has gone through the wrapped ops cleanly.
func (in *Injector) Add(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range rules {
		in.rules = append(in.rules, &ruleState{Rule: rules[i]})
	}
}

// Clear disarms every rule (in-flight faults stop; counters and the
// event log survive). The recovery half of breaker tests.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// Events returns the fired-rule log.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// String renders the seed and fired events — printed by chaos tests on
// failure so a schedule can be replayed from the log alone.
func (in *Injector) String() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault schedule seed=%d fired=%d", in.seed, len(in.events))
	for _, ev := range in.events {
		fmt.Fprintf(&sb, "\n  %s call=%d kind=%s", ev.Point, ev.Call, ev.Kind)
		if ev.Path != "" {
			fmt.Fprintf(&sb, " path=%s", ev.Path)
		}
	}
	return sb.String()
}

// action is the resolved effect of a fired rule.
type action struct {
	kind  Kind
	err   error
	sleep time.Duration
	frac  float64
}

func (a *action) error() error {
	if a.err != nil {
		return a.err
	}
	return ErrInjected
}

// at advances point's call counter and returns the effect to apply, or
// nil to proceed normally. The first matching armed rule wins.
func (in *Injector) at(point, path string) *action {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[point]++
	n := in.calls[point]
	for _, rs := range in.rules {
		if rs.Point != point {
			continue
		}
		if rs.PathSubstr != "" && !strings.Contains(path, rs.PathSubstr) {
			continue
		}
		limit := rs.Times
		if limit == 0 {
			if rs.OnCall > 0 {
				limit = 1
			} else {
				limit = math.MaxInt
			}
		} else if limit < 0 {
			limit = math.MaxInt
		}
		if rs.fired >= limit {
			continue
		}
		var fire bool
		if rs.OnCall > 0 {
			fire = n >= rs.OnCall
		} else {
			fire = in.rng.Float64() < rs.Prob
		}
		if !fire {
			continue
		}
		rs.fired++
		in.events = append(in.events, Event{Point: point, Call: n, Kind: rs.Kind, Path: path})
		frac := rs.Frac
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		return &action{kind: rs.Kind, err: rs.Err, sleep: rs.Sleep, frac: frac}
	}
	return nil
}

// hit applies a non-file injection point: Latency sleeps, PanicKind
// panics, everything else returns the injected error.
func (in *Injector) hit(point string) error {
	act := in.at(point, "")
	if act == nil {
		return nil
	}
	switch act.kind {
	case Latency:
		time.Sleep(act.sleep)
		return nil
	case PanicKind:
		panic(fmt.Sprintf("fault: injected panic at %s", point))
	default:
		return act.error()
	}
}

// active is the process-global injector Hit consults; nil when
// injection is disabled (the default).
var active atomic.Pointer[Injector]

// Enable installs in as the process-global injector behind Hit and
// returns a function restoring the previous one. Tests that Enable an
// injector must not run in parallel with each other.
func Enable(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Hit evaluates the process-global injector at point. With no injector
// enabled it costs one nil atomic load and returns nil — the hook
// compaction and the exec pool leave in production code.
func Hit(point string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.hit(point)
}
