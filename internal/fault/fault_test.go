package fault

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Same seed, same call sequence → identical fault schedules.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []Event {
		in := New(seed, Rule{Point: "p", Kind: Err, Prob: 0.3, Times: -1})
		for i := 0; i < 200; i++ {
			in.at("p", "")
		}
		return in.Events()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("probabilistic rule never fired in 200 calls at p=0.3")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-call schedules")
	}
}

func TestOnCallAndTimes(t *testing.T) {
	in := New(1, Rule{Point: "p", Kind: Err, OnCall: 3}) // Times 0 → once
	for i := 1; i <= 5; i++ {
		act := in.at("p", "")
		if (i == 3) != (act != nil) {
			t.Fatalf("call %d: fired=%v, want fire only on call 3", i, act != nil)
		}
	}
	// OnCall with unlimited Times: persistent failure from call 2 on.
	in = New(1, Rule{Point: "q", Kind: Err, OnCall: 2, Times: -1})
	for i := 1; i <= 5; i++ {
		act := in.at("q", "")
		if (i >= 2) != (act != nil) {
			t.Fatalf("call %d: fired=%v, want fire from call 2 on", i, act != nil)
		}
	}
}

func TestPathSubstrFilter(t *testing.T) {
	in := New(1, Rule{Point: "p", Kind: Err, OnCall: 1, Times: -1, PathSubstr: "wal-"})
	if act := in.at("p", "/tmp/other.log"); act != nil {
		t.Fatal("rule fired on non-matching path")
	}
	if act := in.at("p", "/tmp/wal-00000001.log"); act == nil {
		t.Fatal("rule did not fire on matching path")
	}
}

func TestClearDisarms(t *testing.T) {
	in := New(1, Rule{Point: "p", Kind: Err, OnCall: 1, Times: -1})
	if in.at("p", "") == nil {
		t.Fatal("armed rule did not fire")
	}
	in.Clear()
	if in.at("p", "") != nil {
		t.Fatal("cleared rule still fired")
	}
	if len(in.Events()) != 1 {
		t.Fatalf("event log lost on Clear: %d events", len(in.Events()))
	}
}

func TestHitDisabledIsNil(t *testing.T) {
	if err := Hit("anything"); err != nil {
		t.Fatalf("Hit with no injector: %v", err)
	}
}

func TestEnableRestore(t *testing.T) {
	in := New(1, Rule{Point: "x", Kind: Err, OnCall: 1, Times: -1})
	restore := Enable(in)
	if err := Hit("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit with enabled injector: %v", err)
	}
	restore()
	if err := Hit("x"); err != nil {
		t.Fatalf("Hit after restore: %v", err)
	}
}

func TestHitPanicKind(t *testing.T) {
	in := New(1, Rule{Point: "x", Kind: PanicKind, OnCall: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("PanicKind did not panic")
		}
	}()
	in.hit("x")
}

func TestFSPassthroughAndShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := New(1) // no rules: pure passthrough
	fs := NewFS(in, "t")
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("passthrough write: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	in.Add(Rule{Point: "t.write", Kind: ShortWrite, OnCall: 1, Frac: 0.5})
	f, err = fs.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write returned err=%v", err)
	}
	if n != 5 {
		t.Fatalf("short write wrote %d bytes, want 5", n)
	}
	// Fault exhausted (Times defaults to once for OnCall rules): the
	// next write proceeds.
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatalf("write after exhausted fault: %v", err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "01234ab" {
		t.Fatalf("file content %q, want %q", b, "01234ab")
	}
}

func TestFSTornWriteLies(t *testing.T) {
	dir := t.TempDir()
	in := New(1, Rule{Point: "t.write", Kind: Torn, OnCall: 1, Frac: 0.5})
	fs := NewFS(in, "t")
	path := filepath.Join(dir, "f")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err != nil || n != 10 {
		t.Fatalf("torn write must report success: n=%d err=%v", n, err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if len(b) != 5 {
		t.Fatalf("torn write persisted %d bytes, want 5", len(b))
	}
}

func TestLatencyDelays(t *testing.T) {
	in := New(1, Rule{Point: "p", Kind: Latency, OnCall: 1, Sleep: 20 * time.Millisecond})
	restore := Enable(in)
	defer restore()
	t0 := time.Now()
	if err := Hit("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Fatalf("latency injection slept %v, want >= 20ms", d)
	}
}

func TestScheduleString(t *testing.T) {
	in := New(7, Rule{Point: "p", Kind: Err, OnCall: 1})
	in.at("p", "/x")
	s := in.String()
	for _, want := range []string{"seed=7", "p call=1", "kind=err", "path=/x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("schedule %q missing %q", s, want)
		}
	}
}
