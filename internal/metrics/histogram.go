// Package metrics provides the hand-rolled measurement primitives the
// server exposes over /metrics: fixed-bucket latency histograms in the
// Prometheus cumulative style. The stdlib-only constraint rules out the
// official client library; the exposition format (text version 0.0.4) is
// small enough to render by hand.
package metrics

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Bucket presets. Bounds are upper limits in seconds, ascending. The
// spreads roughly follow the Prometheus defaults, shifted to the ranges
// the engine actually occupies.
var (
	// LatencyBuckets covers query/update request latency: 100µs .. 10s.
	LatencyBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	// FsyncBuckets covers WAL fsync latency: 10µs .. 250ms.
	FsyncBuckets = []float64{
		0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.25,
	}
	// AgeBuckets covers result-cache entry age at hit time: 1ms .. 1h.
	AgeBuckets = []float64{0.001, 0.01, 0.1, 1, 5, 15, 60, 300, 900, 3600}
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe. The
// per-bucket counts are plain (non-cumulative); rendering accumulates
// them into the Prometheus `le` form. One extra bucket holds +Inf.
type Histogram struct {
	bounds   []float64 // upper bounds in seconds, ascending
	counts   []atomic.Uint64
	sumNanos atomic.Uint64
	total    atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (seconds). The bounds slice is not copied and must not be mutated.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
	h.total.Add(1)
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	if h == nil {
		return
	}
	h.Observe(time.Duration(s * float64(time.Second)))
}

// Snapshot is a consistent-enough copy of a histogram for rendering and
// JSON stats. Counts are per-bucket (non-cumulative), with the final
// entry counting observations above the last bound (+Inf bucket).
type Snapshot struct {
	Bounds     []float64 `json:"bounds_s,omitempty"`
	Counts     []uint64  `json:"counts,omitempty"`
	SumSeconds float64   `json:"sum_s"`
	Count      uint64    `json:"count"`
}

// Snapshot copies the current state. Individual loads are atomic but the
// set is not taken under a lock; concurrent observers can skew a bucket
// by a count or two, which is fine for monitoring.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Bounds:     h.bounds,
		Counts:     make([]uint64, len(h.counts)),
		SumSeconds: float64(h.sumNanos.Load()) / 1e9,
		Count:      h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// WritePromHeader emits the HELP/TYPE preamble for a histogram family.
// Call once per family, then WriteProm for each labeled series.
func WritePromHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// WriteProm renders one series of a histogram family in the Prometheus
// text format: cumulative `_bucket{le=...}` lines, then `_sum` and
// `_count`. labels is the inner label list without braces (e.g.
// `phase="execute"`) or "" for an unlabeled series.
func (s Snapshot) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum)
	}
	if n := len(s.Bounds); n < len(s.Counts) {
		cum += s.Counts[n]
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, s.SumSeconds, name, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, s.SumSeconds, name, labels, s.Count)
	}
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
