package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0 (<=1ms)
	h.Observe(1 * time.Millisecond)   // bucket 0 (boundary is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(2 * time.Second)        // +Inf bucket
	h.Observe(-time.Second)           // clamped to 0, bucket 0

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := []uint64{3, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 2
	if s.SumSeconds < wantSum-1e-6 || s.SumSeconds > wantSum+1e-6 {
		t.Fatalf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	const per = 1000
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8*per {
		t.Fatalf("count = %d, want %d", s.Count, 8*per)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestWriteProm(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Second)

	var sb strings.Builder
	WritePromHeader(&sb, "test_seconds", "A test histogram.")
	h.Snapshot().WriteProm(&sb, "test_seconds", "")
	text := sb.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.001"} 1`,
		`test_seconds_bucket{le="0.01"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		"test_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}

	// Labeled series get the label spliced before le and onto _sum/_count.
	sb.Reset()
	h.Snapshot().WriteProm(&sb, "test_seconds", `phase="x"`)
	text = sb.String()
	for _, want := range []string{
		`test_seconds_bucket{phase="x",le="+Inf"} 3`,
		`test_seconds_count{phase="x"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot count = %d", s.Count)
	}
}
