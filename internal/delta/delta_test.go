package delta

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// buildTrie materializes tuples (with optional anns) into a trie.
func buildTrie(t *testing.T, arity int, op semiring.Op, rows [][]uint32, anns []float64) *trie.Trie {
	t.Helper()
	cols := make([][]uint32, arity)
	for c := range cols {
		cols[c] = make([]uint32, len(rows))
		for i, r := range rows {
			cols[c][i] = r[c]
		}
	}
	return trie.FromColumns(cols, anns, op, nil)
}

// tupleKey packs a tuple for map-model bookkeeping.
func tupleKey(tp []uint32) string { return fmt.Sprint(tp) }

// dump enumerates a trie into a map key→ann.
func dump(tr *trie.Trie) map[string]float64 {
	out := map[string]float64{}
	tr.ForEachTuple(func(tp []uint32, ann float64) {
		out[tupleKey(tp)] = ann
	})
	return out
}

func TestMergedViewBasic(t *testing.T) {
	base := buildTrie(t, 2, semiring.None, [][]uint32{{1, 2}, {1, 3}, {2, 5}, {4, 1}}, nil)
	ins := buildTrie(t, 2, semiring.None, [][]uint32{{1, 4}, {3, 3}}, nil)
	del := buildTrie(t, 2, semiring.None, [][]uint32{{1, 2}, {4, 1}, {9, 9}}, nil)

	view := MergedView(base, ins, del, nil)
	got := dump(view)
	want := map[string]float64{
		tupleKey([]uint32{1, 3}): 1, tupleKey([]uint32{1, 4}): 1,
		tupleKey([]uint32{2, 5}): 1, tupleKey([]uint32{3, 3}): 1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged view %v, want %v", got, want)
	}
	if view.Cardinality() != 4 {
		t.Fatalf("cardinality %d, want 4", view.Cardinality())
	}
	// Untouched subtree is shared, not copied: source 2 has no overlay.
	r, _ := view.Root.Set.Rank(2)
	br, _ := base.Root.Set.Rank(2)
	if view.Root.Children[r] != base.Root.Children[br] {
		t.Fatalf("untouched subtree was copied instead of shared")
	}
}

func TestMergedViewEmptyOverlayIsBase(t *testing.T) {
	base := buildTrie(t, 2, semiring.None, [][]uint32{{1, 2}}, nil)
	if MergedView(base, nil, nil, nil) != base {
		t.Fatalf("empty overlay should return base unchanged")
	}
	ov := NewOverlay(2, false, semiring.None)
	if MergedView(base, ov.Ins, ov.Del, nil) != base {
		t.Fatalf("empty overlay tries should return base unchanged")
	}
}

func TestMergedViewAnnotationsReplace(t *testing.T) {
	base := buildTrie(t, 1, semiring.Sum, [][]uint32{{1}, {2}, {3}}, []float64{10, 20, 30})
	ins := buildTrie(t, 1, semiring.Sum, [][]uint32{{2}, {4}}, []float64{99, 44})
	view := MergedView(base, ins, nil, nil)
	got := dump(view)
	want := map[string]float64{
		tupleKey([]uint32{1}): 10, tupleKey([]uint32{2}): 99,
		tupleKey([]uint32{3}): 30, tupleKey([]uint32{4}): 44,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("annotated view %v, want %v", got, want)
	}
}

func TestOverlayApplyInvariant(t *testing.T) {
	ov := NewOverlay(2, false, semiring.None)
	ins1 := buildTrie(t, 2, semiring.None, [][]uint32{{1, 1}, {2, 2}}, nil)
	ov = ov.Apply(ins1, nil, nil)
	if ov.Rows() != 2 {
		t.Fatalf("rows %d, want 2", ov.Rows())
	}
	// Delete one inserted tuple and one unrelated tuple.
	del := buildTrie(t, 2, semiring.None, [][]uint32{{2, 2}, {7, 7}}, nil)
	ov = ov.Apply(nil, del, nil)
	if got := dump(ov.Ins); !reflect.DeepEqual(got, map[string]float64{tupleKey([]uint32{1, 1}): 1}) {
		t.Fatalf("ins after delete: %v", got)
	}
	if got := dump(ov.Del); len(got) != 2 {
		t.Fatalf("del after delete: %v", got)
	}
	// Re-insert a tombstoned tuple: tombstone must clear.
	ins2 := buildTrie(t, 2, semiring.None, [][]uint32{{7, 7}}, nil)
	ov = ov.Apply(ins2, nil, nil)
	if _, dead := dump(ov.Del)[tupleKey([]uint32{7, 7})]; dead {
		t.Fatalf("tombstone survived re-insert")
	}
	if ov.Rows() != 3 { // ins {1,1},{7,7} + del {2,2}
		t.Fatalf("rows %d, want 3", ov.Rows())
	}
}

func TestOverlaySameBatchDeleteThenInsert(t *testing.T) {
	// A tuple both deleted and inserted in one batch ends present.
	ov := NewOverlay(2, false, semiring.None)
	ins := buildTrie(t, 2, semiring.None, [][]uint32{{5, 5}}, nil)
	del := buildTrie(t, 2, semiring.None, [][]uint32{{5, 5}}, nil)
	ov = ov.Apply(ins, del, nil)
	if _, alive := dump(ov.Ins)[tupleKey([]uint32{5, 5})]; !alive {
		t.Fatalf("tuple deleted+inserted in one batch should be present")
	}
	if _, dead := dump(ov.Del)[tupleKey([]uint32{5, 5})]; dead {
		t.Fatalf("tombstone should not survive same-batch insert")
	}
}

func TestCompactEqualsView(t *testing.T) {
	base := buildTrie(t, 3, semiring.None, [][]uint32{{1, 2, 3}, {1, 2, 4}, {2, 1, 1}, {3, 3, 3}}, nil)
	ins := buildTrie(t, 3, semiring.None, [][]uint32{{1, 2, 5}, {9, 9, 9}}, nil)
	del := buildTrie(t, 3, semiring.None, [][]uint32{{2, 1, 1}, {1, 2, 3}}, nil)
	view := MergedView(base, ins, del, nil)
	compacted := Compact(view, nil)
	if !reflect.DeepEqual(dump(view), dump(compacted)) {
		t.Fatalf("compacted trie differs from merged view")
	}
	if compacted.Cardinality() != view.Cardinality() {
		t.Fatalf("compacted cardinality %d, view %d", compacted.Cardinality(), view.Cardinality())
	}
}

func TestTrimAgainst(t *testing.T) {
	// Base already absorbed {1,1} (insert) and lacks {9,9} (tombstone);
	// only the genuinely new changes must survive the trim.
	base := buildTrie(t, 2, semiring.None, [][]uint32{{1, 1}, {2, 2}, {3, 3}}, nil)
	ov := NewOverlay(2, false, semiring.None)
	ov = ov.Apply(
		buildTrie(t, 2, semiring.None, [][]uint32{{1, 1}, {5, 5}}, nil), // {1,1} absorbed, {5,5} new
		buildTrie(t, 2, semiring.None, [][]uint32{{2, 2}, {9, 9}}, nil), // {2,2} live tombstone, {9,9} no-op
		nil)
	trimmed := ov.TrimAgainst(base, nil)
	if got := dump(trimmed.Ins); !reflect.DeepEqual(got, map[string]float64{tupleKey([]uint32{5, 5}): 1}) {
		t.Fatalf("trimmed ins %v", got)
	}
	if got := dump(trimmed.Del); !reflect.DeepEqual(got, map[string]float64{tupleKey([]uint32{2, 2}): 1}) {
		t.Fatalf("trimmed del %v", got)
	}
	if trimmed.Rows() != 2 {
		t.Fatalf("trimmed rows %d, want 2", trimmed.Rows())
	}
	// The merged view is unchanged by trimming.
	if a, b := dump(MergedView(base, ov.Ins, ov.Del, nil)), dump(MergedView(base, trimmed.Ins, trimmed.Del, nil)); !reflect.DeepEqual(a, b) {
		t.Fatalf("trim changed the merged view: %v vs %v", a, b)
	}

	// Annotated: an insert with a DIFFERENT annotation than the base
	// survives (it is a live upsert); an identical one drops.
	abase := buildTrie(t, 1, semiring.Sum, [][]uint32{{1}, {2}}, []float64{10, 20})
	aov := NewOverlay(1, true, semiring.Sum)
	aov = aov.Apply(buildTrie(t, 1, semiring.Sum, [][]uint32{{1}, {2}}, []float64{10, 99}), nil, nil)
	at := aov.TrimAgainst(abase, nil)
	if got := dump(at.Ins); !reflect.DeepEqual(got, map[string]float64{tupleKey([]uint32{2}): 99}) {
		t.Fatalf("annotated trim kept %v", got)
	}
}

func TestPermute(t *testing.T) {
	tr := buildTrie(t, 2, semiring.Sum, [][]uint32{{1, 9}, {2, 8}}, []float64{0.5, 0.25})
	p := Permute(tr, []int{1, 0}, nil)
	got := dump(p)
	want := map[string]float64{
		tupleKey([]uint32{9, 1}): 0.5, tupleKey([]uint32{8, 2}): 0.25,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("permuted %v, want %v", got, want)
	}
	if Permute(nil, []int{0, 1}, nil) != nil {
		t.Fatalf("Permute(nil) should be nil")
	}
}

// TestDifferentialRandom drives random batched inserts/deletes through
// the overlay machinery and checks the merged view (and its compaction)
// against a naive map model after every batch — the property that
// base+overlay is indistinguishable from a from-scratch rebuild.
func TestDifferentialRandom(t *testing.T) {
	for _, annotated := range []bool{false, true} {
		for seed := int64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("ann=%v/seed=%d", annotated, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				arity := 2 + rng.Intn(2)
				op := semiring.None
				if annotated {
					op = semiring.Sum
				}

				randRow := func() []uint32 {
					row := make([]uint32, arity)
					for i := range row {
						row[i] = uint32(rng.Intn(12))
					}
					return row
				}

				// Random base.
				model := map[string]float64{}
				modelRows := map[string][]uint32{}
				var baseRows [][]uint32
				var baseAnns []float64
				for i := 0; i < 60; i++ {
					r := randRow()
					baseRows = append(baseRows, r)
					a := 1.0
					if annotated {
						a = float64(rng.Intn(100))
						baseAnns = append(baseAnns, a)
					}
					k := tupleKey(r)
					if annotated {
						if old, dup := model[k]; dup {
							a = op.Add(old, a) // builder ⊕-combines duplicates
						}
					}
					model[k] = a
					modelRows[k] = r
				}
				var anns []float64
				if annotated {
					anns = baseAnns
				}
				base := buildTrie(t, arity, op, baseRows, anns)

				ov := NewOverlay(arity, annotated, op)
				for batch := 0; batch < 15; batch++ {
					// Deletes first (half aimed at live tuples), then inserts.
					var delRows [][]uint32
					for i := 0; i < rng.Intn(6); i++ {
						if len(model) > 0 && rng.Intn(2) == 0 {
							keys := make([]string, 0, len(model))
							for k := range model {
								keys = append(keys, k)
							}
							sort.Strings(keys)
							delRows = append(delRows, modelRows[keys[rng.Intn(len(keys))]])
						} else {
							delRows = append(delRows, randRow())
						}
					}
					var insRows [][]uint32
					var insAnns []float64
					for i := 0; i < rng.Intn(6); i++ {
						insRows = append(insRows, randRow())
						if annotated {
							insAnns = append(insAnns, float64(rng.Intn(100)))
						}
					}

					// Model: delete-then-insert, last insert wins per tuple
					// within a batch is ⊕-combined by the mini-trie build,
					// so mirror that by building the mini tries first and
					// folding their post-dedup tuples into the model.
					var insT, delT *trie.Trie
					if len(delRows) > 0 {
						delT = buildTrie(t, arity, semiring.None, delRows, nil)
					}
					if len(insRows) > 0 {
						insT = buildTrie(t, arity, op, insRows, insAnns)
					}
					if delT != nil {
						delT.ForEachTuple(func(tp []uint32, _ float64) {
							delete(model, tupleKey(tp))
						})
					}
					if insT != nil {
						insT.ForEachTuple(func(tp []uint32, ann float64) {
							k := tupleKey(tp)
							model[k] = ann
							modelRows[k] = append([]uint32(nil), tp...)
						})
					}

					ov = ov.Apply(insT, delT, nil)
					view := MergedView(base, ov.Ins, ov.Del, nil)
					got := dump(view)
					want := model
					if !annotated {
						want = map[string]float64{}
						for k := range model {
							want[k] = 1
						}
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("batch %d: view %v, want %v", batch, got, want)
					}
					// Compaction must be invisible.
					if cd := dump(Compact(view, nil)); !reflect.DeepEqual(cd, want) {
						t.Fatalf("batch %d: compacted %v, want %v", batch, cd, want)
					}
					// Idempotent re-fold: applying the current overlay onto
					// an already-folded base is a no-op (the compaction
					// install race and WAL-replay-after-snapshot property).
					refold := MergedView(Compact(view, nil), ov.Ins, ov.Del, nil)
					if rd := dump(refold); !reflect.DeepEqual(rd, want) {
						t.Fatalf("batch %d: re-folded %v, want %v", batch, rd, want)
					}
				}
			})
		}
	}
}

// TestMergedViewMixedLayouts pins the base, insert and delete tries to
// every combination of set layout and checks the path-copying merge —
// including the word-parallel bitset Merge3 path — against a map model.
// Dense value runs make the bitset/composite layouts load-bearing
// rather than degenerate.
func TestMergedViewMixedLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var baseRows, insRows, delRows [][]uint32
	// Dense block of destinations under a few sources, plus noise.
	for src := uint32(0); src < 4; src++ {
		for d := uint32(0); d < 300; d++ {
			if rng.Intn(4) > 0 {
				baseRows = append(baseRows, []uint32{src, d})
			}
		}
	}
	for i := 0; i < 200; i++ {
		baseRows = append(baseRows, []uint32{uint32(rng.Intn(50)), uint32(rng.Intn(1 << 16))})
	}
	for i := 0; i < 150; i++ {
		r := baseRows[rng.Intn(len(baseRows))]
		delRows = append(delRows, []uint32{r[0], r[1]})
	}
	for src := uint32(0); src < 4; src++ {
		for d := uint32(300); d < 400; d++ {
			insRows = append(insRows, []uint32{src, d})
		}
	}

	model := map[string]float64{}
	for _, r := range baseRows {
		model[tupleKey(r)] = 1
	}
	for _, r := range delRows {
		delete(model, tupleKey(r))
	}
	for _, r := range insRows {
		model[tupleKey(r)] = 1
	}

	layouts := map[string]trie.LayoutFunc{
		"uint":      trie.UintLayout,
		"bitset":    trie.BitsetLayout,
		"composite": trie.CompositeLayout,
		"auto":      trie.AutoLayout,
	}
	names := []string{"uint", "bitset", "composite", "auto"}
	for _, bn := range names {
		for _, on := range names {
			base := buildTrieLayout(t, 2, baseRows, layouts[bn])
			ins := buildTrieLayout(t, 2, insRows, layouts[on])
			del := buildTrieLayout(t, 2, delRows, layouts[on])
			for _, vn := range names {
				view := MergedView(base, ins, del, layouts[vn])
				if got := dump(view); !reflect.DeepEqual(got, model) {
					t.Fatalf("base=%s overlay=%s view=%s: %d tuples, want %d",
						bn, on, vn, len(got), len(model))
				}
			}
		}
	}
}

// buildTrieLayout is buildTrie with a pinned per-set layout.
func buildTrieLayout(t *testing.T, arity int, rows [][]uint32, layout trie.LayoutFunc) *trie.Trie {
	t.Helper()
	cols := make([][]uint32, arity)
	for c := range cols {
		cols[c] = make([]uint32, len(rows))
		for i, r := range rows {
			cols[c][i] = r[c]
		}
	}
	return trie.FromColumns(cols, nil, semiring.None, layout)
}

// TestUnionDifferenceMixedLayouts runs the compaction-path trie algebra
// over pinned mixed layouts.
func TestUnionDifferenceMixedLayouts(t *testing.T) {
	var aRows, bRows [][]uint32
	for d := uint32(0); d < 280; d++ {
		aRows = append(aRows, []uint32{1, d})
		if d%3 == 0 {
			bRows = append(bRows, []uint32{1, d})
		}
	}
	bRows = append(bRows, []uint32{2, 9})

	wantU := map[string]float64{}
	for _, r := range append(append([][]uint32{}, aRows...), bRows...) {
		wantU[tupleKey(r)] = 1
	}
	wantD := map[string]float64{}
	for _, r := range aRows {
		wantD[tupleKey(r)] = 1
	}
	for _, r := range bRows {
		delete(wantD, tupleKey(r))
	}

	layouts := []trie.LayoutFunc{trie.UintLayout, trie.BitsetLayout, trie.CompositeLayout}
	for ai, al := range layouts {
		for bi, bl := range layouts {
			a := buildTrieLayout(t, 2, aRows, al)
			b := buildTrieLayout(t, 2, bRows, bl)
			if got := dump(Union(a, b, true, nil)); !reflect.DeepEqual(got, wantU) {
				t.Fatalf("union layouts %d×%d: %d tuples, want %d", ai, bi, len(got), len(wantU))
			}
			if got := dump(Difference(a, b, nil)); !reflect.DeepEqual(got, wantD) {
				t.Fatalf("difference layouts %d×%d: %d tuples, want %d", ai, bi, len(got), len(wantD))
			}
		}
	}
}
