package delta

import (
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trie"
)

// merger carries the shape of one path-copying merge (see MergedView).
type merger struct {
	arity     int
	annotated bool
	op        semiring.Op
	layout    trie.LayoutFunc
}

// merge produces the node for (base \ del) ∪ ins at one trie level.
// Any of the three nodes may be nil (treated as empty). Returns nil
// when the merged set is empty, so parents drop the value entirely —
// tries never store empty children.
func (m *merger) merge(base, ins, del *trie.Node, level int) *trie.Node {
	if ins == nil && del == nil {
		return base // untouched path: share the base subtree
	}
	if level == m.arity-1 {
		return m.mergeLeaf(base, ins, del, level)
	}
	return m.mergeInner(base, ins, del, level)
}

// mergeLeaf builds the last-level set (base \ del) ∪ ins, with insert
// annotations replacing base annotations.
func (m *merger) mergeLeaf(base, ins, del *trie.Node, level int) *trie.Node {
	vals := set.DefaultKernel.Merge3(nodeSet(base), nodeSet(ins), nodeSet(del))
	if len(vals) == 0 {
		return nil
	}
	n := &trie.Node{Set: set.BuildLayout(vals, m.layout(level, vals))}
	if m.annotated {
		anns := make([]float64, len(vals))
		for i, v := range vals {
			if ins != nil {
				if r, ok := ins.Set.Rank(v); ok {
					anns[i] = annAt(ins, r, m.op)
					continue
				}
			}
			r, _ := base.Set.Rank(v)
			anns[i] = annAt(base, r, m.op)
		}
		n.Ann = anns
	}
	return n
}

// mergeInner merges one inner level: candidate values are base ∪ ins
// (inner tombstones only remove a value by emptying its subtree), each
// candidate's child is merged recursively, and children untouched by
// the overlay are shared with the base.
func (m *merger) mergeInner(base, ins, del *trie.Node, level int) *trie.Node {
	bs, is := nodeSet(base), nodeSet(ins)
	vals := make([]uint32, 0, bs.Card()+is.Card())
	children := make([]*trie.Node, 0, bs.Card()+is.Card())
	b, i := bs.Slice(), is.Slice()
	bi, ii := 0, 0
	for bi < len(b) || ii < len(i) {
		var v uint32
		var bchild, ichild *trie.Node
		switch {
		case bi < len(b) && (ii >= len(i) || b[bi] < i[ii]):
			v = b[bi]
			bchild = base.Children[bi]
			bi++
		case bi < len(b) && ii < len(i) && b[bi] == i[ii]:
			v = b[bi]
			bchild = base.Children[bi]
			ichild = ins.Children[ii]
			bi++
			ii++
		default:
			v = i[ii]
			ichild = ins.Children[ii]
			ii++
		}
		dchild := del.Child(v)
		child := m.merge(bchild, ichild, dchild, level+1)
		if child == nil || child.Set.IsEmpty() {
			continue
		}
		vals = append(vals, v)
		children = append(children, child)
	}
	if len(vals) == 0 {
		return nil
	}
	return &trie.Node{
		Set:      set.BuildLayout(vals, m.layout(level, vals)),
		Children: children,
	}
}

func nodeSet(n *trie.Node) set.Set {
	if n == nil {
		return set.Empty()
	}
	return n.Set
}

func annAt(n *trie.Node, rank int, op semiring.Op) float64 {
	if n.Ann == nil {
		return op.One()
	}
	return n.Ann[rank]
}

// Union computes a ∪ b as a trie, sharing subtrees present in only one
// side. When preferB is set, b's leaf annotations win on common tuples
// (the "newest insert replaces" rule); otherwise a's win. Both tries
// must share arity; the result takes its shape (annotatedness, op)
// from a.
func Union(a, b *trie.Trie, preferB bool, layout trie.LayoutFunc) *trie.Trie {
	if b == nil || b.Cardinality() == 0 {
		return a
	}
	if a.Cardinality() == 0 {
		if a.Annotated == b.Annotated {
			return b
		}
	}
	u := &unioner{arity: a.Arity, annotated: a.Annotated, op: a.Op, layout: ensureLayout(layout), preferB: preferB}
	root := u.union(a.Root, b.Root, 0)
	if root == nil {
		root = &trie.Node{}
	}
	return &trie.Trie{Arity: a.Arity, Annotated: a.Annotated, Op: a.Op, Root: root}
}

type unioner struct {
	arity     int
	annotated bool
	op        semiring.Op
	layout    trie.LayoutFunc
	preferB   bool
}

func (u *unioner) union(a, b *trie.Node, level int) *trie.Node {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	as, bs := nodeSet(a), nodeSet(b)
	if bs.IsEmpty() {
		return a
	}
	if as.IsEmpty() {
		return b
	}
	av, bv := as.Slice(), bs.Slice()
	last := level == u.arity-1
	vals := make([]uint32, 0, len(av)+len(bv))
	var children []*trie.Node
	var anns []float64
	if !last {
		children = make([]*trie.Node, 0, len(av)+len(bv))
	} else if u.annotated {
		anns = make([]float64, 0, len(av)+len(bv))
	}
	ai, bi := 0, 0
	for ai < len(av) || bi < len(bv) {
		switch {
		case ai < len(av) && (bi >= len(bv) || av[ai] < bv[bi]):
			vals = append(vals, av[ai])
			if !last {
				children = append(children, a.Children[ai])
			} else if u.annotated {
				anns = append(anns, annAt(a, ai, u.op))
			}
			ai++
		case ai < len(av) && bi < len(bv) && av[ai] == bv[bi]:
			vals = append(vals, av[ai])
			if !last {
				children = append(children, u.union(a.Children[ai], b.Children[bi], level+1))
			} else if u.annotated {
				if u.preferB {
					anns = append(anns, annAt(b, bi, u.op))
				} else {
					anns = append(anns, annAt(a, ai, u.op))
				}
			}
			ai++
			bi++
		default:
			vals = append(vals, bv[bi])
			if !last {
				children = append(children, b.Children[bi])
			} else if u.annotated {
				anns = append(anns, annAt(b, bi, u.op))
			}
			bi++
		}
	}
	n := &trie.Node{Set: set.BuildLayout(vals, u.layout(level, vals))}
	n.Children = children
	n.Ann = anns
	return n
}

// Difference computes a \ b (full-tuple difference) as a trie, sharing
// subtrees b doesn't touch. Both tries must share arity; annotations
// (if any) ride along from a.
func Difference(a, b *trie.Trie, layout trie.LayoutFunc) *trie.Trie {
	if b == nil || b.Cardinality() == 0 || a.Cardinality() == 0 {
		return a
	}
	d := &differ{arity: a.Arity, annotated: a.Annotated, op: a.Op, layout: ensureLayout(layout)}
	root := d.diff(a.Root, b.Root, 0)
	if root == nil {
		root = &trie.Node{}
	}
	return &trie.Trie{Arity: a.Arity, Annotated: a.Annotated, Op: a.Op, Root: root}
}

type differ struct {
	arity     int
	annotated bool
	op        semiring.Op
	layout    trie.LayoutFunc
}

func (d *differ) diff(a, b *trie.Node, level int) *trie.Node {
	if b == nil || b.Set.IsEmpty() {
		return a
	}
	if a == nil || a.Set.IsEmpty() {
		return nil
	}
	last := level == d.arity-1
	if last {
		vals := set.DefaultKernel.Merge3(a.Set, set.Empty(), b.Set)
		if len(vals) == 0 {
			return nil
		}
		n := &trie.Node{Set: set.BuildLayout(vals, d.layout(level, vals))}
		if d.annotated {
			anns := make([]float64, len(vals))
			for i, v := range vals {
				r, _ := a.Set.Rank(v)
				anns[i] = annAt(a, r, d.op)
			}
			n.Ann = anns
		}
		return n
	}
	av := a.Set.Slice()
	vals := make([]uint32, 0, len(av))
	children := make([]*trie.Node, 0, len(av))
	for ai, v := range av {
		child := a.Children[ai]
		if r, ok := b.Set.Rank(v); ok {
			child = d.diff(child, b.Children[r], level+1)
			if child == nil || child.Set.IsEmpty() {
				continue
			}
		}
		vals = append(vals, v)
		children = append(children, child)
	}
	if len(vals) == 0 {
		return nil
	}
	return &trie.Node{
		Set:      set.BuildLayout(vals, d.layout(level, vals)),
		Children: children,
	}
}
