// Package delta implements streaming updates over EmptyHeaded's
// immutable tries: each updated relation is a compacted base trie plus a
// small overlay of two mini-tries — inserts (built with the columnar
// builder, annotated when the relation is) and tombstones (un-annotated
// full-tuple deletes). Queries run against a merged view produced by a
// path-copying merge: only nodes on overlay-touched paths are rebuilt
// ((base \ del) ∪ ins at every trie level, see set.Merge3), everything
// else is shared with the base, so an update to a 256k-edge relation
// re-links a handful of nodes instead of re-sorting the base.
//
// When the overlay grows past a size ratio, a compactor folds the merged
// view into a fresh flat base through the columnar build path (the
// enumeration is already sorted, so the radix sort is skipped) and the
// overlay resets to empty.
//
// The merged-view semantics are a function of (base, overlay) state, not
// of update history: state = (base \ Del) ∪ Ins, with an inserted
// tuple's annotation replacing the base's. Applying a newer overlay to a
// base that already absorbed an older prefix of it yields the same
// state (folding is idempotent), which is what lets compaction install
// concurrently with new updates and WAL replay restart from any
// snapshot boundary.
package delta

import (
	"fmt"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// Overlay is one relation's pending updates: Ins holds inserted tuples
// (annotated iff the relation is), Del holds full-tuple tombstones.
// Invariant: Ins ∩ Del = ∅ — the last update to a tuple wins, so a
// tuple lives in at most one side. Overlays are immutable; Apply
// returns a new overlay sharing untouched subtrees.
type Overlay struct {
	Ins *trie.Trie
	Del *trie.Trie
	// rows caches Ins.Cardinality() + Del.Cardinality(), the overlay
	// size that compaction thresholds and metrics read. insBytes /
	// delBytes cache the mini-tries' MemBytes the same way: overlays
	// are immutable, so both are computed once at construction and
	// /stats scrapes never walk the tries.
	rows     int
	insBytes int
	delBytes int
}

// NewOverlay returns the empty overlay for a relation of the given
// shape.
func NewOverlay(arity int, annotated bool, op semiring.Op) *Overlay {
	o := &Overlay{
		Ins: trie.NewEmpty(arity, annotated, op),
		Del: trie.NewEmpty(arity, false, semiring.None),
	}
	o.insBytes = o.Ins.MemBytes()
	o.delBytes = o.Del.MemBytes()
	return o
}

// Rows returns the number of live overlay tuples (inserts + tombstones).
func (o *Overlay) Rows() int { return o.rows }

// MemBytes returns the cached payload sizes of the insert and tombstone
// mini-tries.
func (o *Overlay) MemBytes() (ins, del int) { return o.insBytes, o.delBytes }

// IsEmpty reports whether the overlay holds no pending updates.
func (o *Overlay) IsEmpty() bool { return o.rows == 0 }

// Apply folds one update batch into the overlay and returns the new
// overlay (o is unchanged). Batch semantics: deletes apply first, then
// inserts — a tuple both deleted and inserted in one batch ends
// present. ins may be nil or empty; same for del.
//
//	Ins' = (Ins \ del) ∪ ins        (ins annotations win)
//	Del' = (Del ∪ del) \ ins
func (o *Overlay) Apply(ins, del *trie.Trie, layout trie.LayoutFunc) *Overlay {
	layout = ensureLayout(layout)
	newIns, newDel := o.Ins, o.Del
	if del != nil && del.Cardinality() > 0 {
		newIns = Difference(newIns, del, layout)
		newDel = Union(newDel, del, false, layout)
	}
	if ins != nil && ins.Cardinality() > 0 {
		newDel = Difference(newDel, ins, layout)
		newIns = Union(newIns, ins, true, layout)
	}
	return &Overlay{
		Ins:      newIns,
		Del:      newDel,
		rows:     newIns.Cardinality() + newDel.Cardinality(),
		insBytes: newIns.MemBytes(),
		delBytes: newDel.MemBytes(),
	}
}

// MergedView returns the query-visible relation (base \ del) ∪ ins as a
// regular trie. Nodes on overlay-touched paths are rebuilt; all other
// nodes are shared with base, so the cost is proportional to the
// overlay (plus the width of touched nodes), not the base. ins and del
// may be nil or empty; when both are, base itself is returned.
func MergedView(base, ins, del *trie.Trie, layout trie.LayoutFunc) *trie.Trie {
	insEmpty := ins == nil || ins.Cardinality() == 0
	delEmpty := del == nil || del.Cardinality() == 0
	if insEmpty && delEmpty {
		return base
	}
	layout = ensureLayout(layout)
	var insRoot, delRoot *trie.Node
	if !insEmpty {
		if ins.Arity != base.Arity {
			panic(fmt.Sprintf("delta: insert overlay arity %d over base arity %d", ins.Arity, base.Arity))
		}
		insRoot = ins.Root
	}
	if !delEmpty {
		if del.Arity != base.Arity {
			panic(fmt.Sprintf("delta: tombstone overlay arity %d over base arity %d", del.Arity, base.Arity))
		}
		delRoot = del.Root
	}
	m := &merger{arity: base.Arity, annotated: base.Annotated, op: base.Op, layout: layout}
	root := m.merge(base.Root, insRoot, delRoot, 0)
	if root == nil {
		root = &trie.Node{}
	}
	return &trie.Trie{Arity: base.Arity, Annotated: base.Annotated, Op: base.Op, Root: root}
}

// Compact folds a merged view into a fresh flat trie through the
// columnar build path: the enumeration is in lexicographic order, so
// the radix sort is skipped and the build is one dedup-free linear
// pass. The result shares nothing with the view's base or overlay
// (and in particular drops any aliases into mmap'd snapshot segments
// or overlay mini-tries).
func Compact(view *trie.Trie, layout trie.LayoutFunc) *trie.Trie {
	cols, anns := view.Columns(0)
	return trie.FromColumns(cols, anns, view.Op, ensureLayout(layout))
}

// TrimAgainst drops overlay entries a base already absorbed: inserts
// whose tuple (and, for annotated relations, annotation) the base
// holds, and tombstones for tuples the base doesn't hold. After a
// compaction that raced with updates, the re-based overlay shrinks to
// exactly the post-capture net-new changes instead of growing without
// bound under sustained writes. Cost is O(overlay × depth) lookups
// into base.
func (o *Overlay) TrimAgainst(base *trie.Trie, layout trie.LayoutFunc) *Overlay {
	layout = ensureLayout(layout)
	arity := base.Arity
	annotated := o.Ins.Annotated
	op := o.Ins.Op

	insCols := make([][]uint32, arity)
	var insAnns []float64
	o.Ins.ForEachTuple(func(tp []uint32, ann float64) {
		if bAnn, ok := lookupTuple(base, tp); ok && (!annotated || bAnn == ann) {
			return // absorbed
		}
		for c, v := range tp {
			insCols[c] = append(insCols[c], v)
		}
		if annotated {
			insAnns = append(insAnns, ann)
		}
	})
	delCols := make([][]uint32, arity)
	o.Del.ForEachTuple(func(tp []uint32, _ float64) {
		if _, ok := lookupTuple(base, tp); !ok {
			return // tombstone for an already-absent tuple
		}
		for c, v := range tp {
			delCols[c] = append(delCols[c], v)
		}
	})
	if annotated && insAnns == nil {
		insAnns = []float64{}
	}
	ins := trie.FromColumns(insCols, insAnns, op, layout)
	del := trie.FromColumns(delCols, nil, semiring.None, layout)
	return &Overlay{
		Ins: ins, Del: del,
		rows:     ins.Cardinality() + del.Cardinality(),
		insBytes: ins.MemBytes(),
		delBytes: del.MemBytes(),
	}
}

// lookupTuple descends base along one full tuple, returning the leaf
// annotation (op.One() for un-annotated) and membership.
func lookupTuple(t *trie.Trie, tuple []uint32) (float64, bool) {
	n := t.Root
	last := len(tuple) - 1
	for level, v := range tuple {
		if n == nil {
			return 0, false
		}
		if level == last {
			return n.AnnOf(v, t.Op)
		}
		n = n.Child(v)
	}
	return 0, false
}

// Permute rebuilds a (small) trie with its columns permuted: level i of
// the result stores column perm[i] of t. The overlay index path uses it
// to carry an overlay into a relation's permuted indexes without
// re-sorting the base.
func Permute(t *trie.Trie, perm []int, layout trie.LayoutFunc) *trie.Trie {
	if t == nil {
		return nil
	}
	if len(perm) != t.Arity {
		panic(fmt.Sprintf("delta: permutation %v for arity-%d trie", perm, t.Arity))
	}
	cols, anns := t.Columns(0)
	pcols := make([][]uint32, len(cols))
	for i, p := range perm {
		pcols[i] = cols[p]
	}
	return trie.FromColumns(pcols, anns, t.Op, ensureLayout(layout))
}

func ensureLayout(layout trie.LayoutFunc) trie.LayoutFunc {
	if layout == nil {
		return trie.AutoLayout
	}
	return layout
}
