// Package obs is the workload-statistics subsystem behind the server's
// /debug/workload, /debug/relations and event-log surfaces: cumulative
// per-query-fingerprint aggregates (Workload), per-relation heat
// counters fed from the exec loop nest and the update path (RelHeat),
// and a unified JSON-lines structured event log (EventLog) that pins
// one admissible order of the system's state-changing events.
//
// Everything here is designed for the serving hot path: Workload.Observe
// is one short mutex hold per finished request (not per tuple), RelHeat
// uses the same atomic-counter discipline as internal/metrics, and the
// event log only writes on events (slow queries, WAL rotations,
// compactions, breaker transitions) — never per request.
package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo describes the running binary for the eh_build_info metric.
type BuildInfo struct {
	GoVersion string
	Module    string
	Revision  string
}

// ReadBuildInfo extracts build metadata from the binary. Fields the
// toolchain didn't stamp (e.g. VCS revision in a plain `go test` build)
// come back as "unknown" so the metric's label set stays stable.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version(), Module: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Path != "" {
		bi.Module = info.Main.Path
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			rev := s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			bi.Revision = rev
		}
	}
	return bi
}

// PromLine renders the eh_build_info gauge (value 1, metadata in
// labels — the standard Prometheus build-info idiom).
func (b BuildInfo) PromLine() string {
	return fmt.Sprintf("eh_build_info{go_version=%q,module=%q,revision=%q} 1\n",
		b.GoVersion, b.Module, b.Revision)
}
