package obs

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"emptyheaded/internal/quantile"
)

func obsFor(fp string, latency time.Duration) QueryObs {
	return QueryObs{
		Fingerprint:   fp,
		Query:         "Q(x) :- " + fp + "(x).",
		TraceID:       7,
		Latency:       latency,
		Route:         RoutePlanHit,
		Rows:          3,
		Intersections: 10,
		Probes:        20,
		Skipped:       5,
	}
}

func TestWorkloadAggregates(t *testing.T) {
	w := NewWorkload(8)
	w.Observe(QueryObs{Fingerprint: "fpA", Query: "A", Latency: 100 * time.Microsecond,
		Route: RouteMiss, Rows: 10, Probes: 7, TraceID: 1})
	w.Observe(QueryObs{Fingerprint: "fpA", Latency: 300 * time.Microsecond,
		Route: RouteResultHit, Rows: 10, TraceID: 2})
	w.Observe(QueryObs{Fingerprint: "fpA", Latency: 200 * time.Microsecond,
		Route: RoutePlanHit, Err: true, TraceID: 3})
	w.Observe(QueryObs{Fingerprint: "fpB", Latency: 50 * time.Microsecond,
		Route: RouteMiss, Cancelled: true})
	w.Observe(QueryObs{Fingerprint: ""}) // no fingerprint: dropped

	rows := w.TopK(SortCount, 0)
	if len(rows) != 2 {
		t.Fatalf("got %d fingerprints, want 2", len(rows))
	}
	a := rows[0]
	if a.Fingerprint != "fpA" || a.Count != 3 {
		t.Fatalf("top row: %+v", a)
	}
	if a.Query != "A" {
		t.Fatalf("sample query %q, want first-seen spelling", a.Query)
	}
	if a.Errors != 1 || a.Cancels != 0 {
		t.Fatalf("outcomes: %+v", a)
	}
	if a.Routes[RouteMiss] != 1 || a.Routes[RouteResultHit] != 1 || a.Routes[RoutePlanHit] != 1 {
		t.Fatalf("routes: %+v", a.Routes)
	}
	if a.TotalUS != 600 || a.AvgUS != 200 || a.MaxUS != 300 {
		t.Fatalf("latency aggregates: %+v", a)
	}
	if a.Rows != 20 || a.Probes != 7 {
		t.Fatalf("kernel counters: %+v", a)
	}
	if a.LastTraceID != 3 {
		t.Fatalf("last trace id %d, want 3", a.LastTraceID)
	}

	b := rows[1]
	if b.Fingerprint != "fpB" || b.Cancels != 1 || b.Errors != 0 {
		t.Fatalf("second row: %+v", b)
	}

	tot := w.Totals()
	if tot.Observed != 4 || tot.Fingerprints != 2 {
		t.Fatalf("totals: %+v", tot)
	}
	if tot.ResultHits != 1 || tot.PlanHits != 1 || tot.Misses != 2 {
		t.Fatalf("route totals: %+v", tot)
	}
	if tot.Errors != 1 || tot.Cancels != 1 {
		t.Fatalf("outcome totals: %+v", tot)
	}
}

func TestWorkloadLRUEviction(t *testing.T) {
	w := NewWorkload(4)
	for i := 0; i < 6; i++ {
		w.Observe(obsFor(fmt.Sprintf("fp%d", i), time.Millisecond))
	}
	// fp0 and fp1 are the least recently observed: evicted.
	rows := w.TopK(SortCount, 0)
	if len(rows) != 4 {
		t.Fatalf("got %d fingerprints, want capacity 4", len(rows))
	}
	have := map[string]bool{}
	for _, r := range rows {
		have[r.Fingerprint] = true
	}
	for _, want := range []string{"fp2", "fp3", "fp4", "fp5"} {
		if !have[want] {
			t.Fatalf("missing %s in %v", want, have)
		}
	}
	if ev := w.Totals().Evictions; ev != 2 {
		t.Fatalf("evictions %d, want 2", ev)
	}

	// Re-observing fp2 makes it most recent; the next new fingerprint
	// evicts fp3 instead.
	w.Observe(obsFor("fp2", time.Millisecond))
	w.Observe(obsFor("fp6", time.Millisecond))
	rows = w.TopK(SortCount, 0)
	have = map[string]bool{}
	for _, r := range rows {
		have[r.Fingerprint] = true
	}
	if have["fp3"] || !have["fp2"] || !have["fp6"] {
		t.Fatalf("LRU order not respected: %v", have)
	}
}

// TestWorkloadQuantiles cross-checks the registry's p50/p99 against a
// brute-force recompute over the same samples — exact while the sample
// count stays inside the ring window, windowed (most recent
// fpSampleWindow samples) beyond it.
func TestWorkloadQuantiles(t *testing.T) {
	for _, n := range []int{1, 2, 10, fpSampleWindow, fpSampleWindow + 57} {
		w := NewWorkload(4)
		latencies := make([]time.Duration, n)
		for i := range latencies {
			// Deterministic, unsorted spread.
			latencies[i] = time.Duration((i*7919)%(n*13)+1) * time.Microsecond
			w.Observe(QueryObs{Fingerprint: "fp", Latency: latencies[i]})
		}
		window := latencies
		if n > fpSampleWindow {
			window = latencies[n-fpSampleWindow:]
		}
		sorted := append([]time.Duration(nil), window...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		wantP50 := float64(sorted[quantile.Index(len(sorted), 0.50)].Microseconds())
		wantP99 := float64(sorted[quantile.Index(len(sorted), 0.99)].Microseconds())

		rows := w.TopK(SortCount, 1)
		if len(rows) != 1 {
			t.Fatalf("n=%d: got %d rows", n, len(rows))
		}
		if rows[0].P50US != wantP50 || rows[0].P99US != wantP99 {
			t.Fatalf("n=%d: p50=%g p99=%g, want p50=%g p99=%g",
				n, rows[0].P50US, rows[0].P99US, wantP50, wantP99)
		}
	}
}

func TestWorkloadTopKSort(t *testing.T) {
	w := NewWorkload(8)
	w.Observe(QueryObs{Fingerprint: "many", Latency: time.Microsecond, Rows: 1})
	w.Observe(QueryObs{Fingerprint: "many", Latency: time.Microsecond, Rows: 1})
	w.Observe(QueryObs{Fingerprint: "many", Latency: time.Microsecond, Rows: 1})
	w.Observe(QueryObs{Fingerprint: "slow", Latency: time.Second, Rows: 2})
	w.Observe(QueryObs{Fingerprint: "wide", Latency: time.Microsecond, Rows: 1000})

	if rows := w.TopK(SortCount, 1); rows[0].Fingerprint != "many" {
		t.Fatalf("count sort: %+v", rows[0])
	}
	if rows := w.TopK(SortLatency, 1); rows[0].Fingerprint != "slow" {
		t.Fatalf("latency sort: %+v", rows[0])
	}
	if rows := w.TopK(SortRows, 1); rows[0].Fingerprint != "wide" {
		t.Fatalf("rows sort: %+v", rows[0])
	}
	if rows := w.TopK(SortCount, 2); len(rows) != 2 {
		t.Fatalf("k=2 returned %d rows", len(rows))
	}
}

// TestWorkloadConcurrent hammers one registry from many goroutines
// (exercised under -race in CI) and checks nothing is lost.
func TestWorkloadConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 500
	w := NewWorkload(16) // smaller than the fingerprint space: eviction races too
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				fp := fmt.Sprintf("fp%d", (g*perG+i)%24)
				w.Observe(obsFor(fp, time.Duration(i)*time.Microsecond))
				if i%17 == 0 {
					w.TopK(SortLatency, 5)
					w.Totals()
				}
			}
		}(g)
	}
	wg.Wait()
	tot := w.Totals()
	if tot.Observed != goroutines*perG {
		t.Fatalf("observed %d, want %d", tot.Observed, goroutines*perG)
	}
	if tot.Fingerprints != 16 {
		t.Fatalf("fingerprints %d, want capacity 16", tot.Fingerprints)
	}
	var count int64
	for _, r := range w.TopK(SortCount, 0) {
		count += r.Count
	}
	if count > goroutines*perG {
		t.Fatalf("retained count %d exceeds observed %d", count, goroutines*perG)
	}
}

func TestWorkloadNilSafe(t *testing.T) {
	var w *Workload
	w.Observe(obsFor("fp", time.Millisecond))
	if rows := w.TopK(SortCount, 5); rows != nil {
		t.Fatalf("nil registry returned rows: %v", rows)
	}
	if tot := w.Totals(); tot.Observed != 0 {
		t.Fatalf("nil registry totals: %+v", tot)
	}
}

func BenchmarkWorkloadObserve(b *testing.B) {
	w := NewWorkload(256)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w.Observe(QueryObs{
				Fingerprint: fmt.Sprintf("fp%d", i%64),
				Latency:     time.Duration(i%1000) * time.Microsecond,
				Route:       RoutePlanHit,
				Rows:        int64(i % 100),
			})
			i++
		}
	})
}

func BenchmarkRelHeatNoteLevel(b *testing.B) {
	h := NewRelHeat()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.NoteLevel("Edge", 1, 100, 50, 10, 25)
		}
	})
}
