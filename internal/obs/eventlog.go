package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// EventLog is the unified structured event log: one logger, one JSON
// line per event, one schema. Every line carries the envelope fields
//
//	ts       RFC3339Nano UTC timestamp
//	seq      monotone sequence number, assigned under the write mutex
//	kind     event kind (slow_query, wal_rotate, compaction, snapshot,
//	         restore, breaker_trip, breaker_recover, degraded_enter,
//	         degraded_exit, panic, boot_phase, wal_replay, ...)
//	trace_id originating request trace, when one exists (omitted
//	         otherwise)
//
// plus the event's own fields flattened alongside. Because seq is
// assigned and the line written under one mutex, the file order IS the
// seq order: of all admissible interleavings of updates, compactions,
// rotations and breaker transitions, the log pins down exactly one —
// the determination-provenance property that lets post-hoc debugging
// attribute any observed answer to the state sequence that produced it.
//
// A file-backed log (OpenEventLog) rotates by size: when a write would
// push the file past maxBytes it is renamed to path.1 (existing
// rotations shifting to path.2, ...) and a fresh file opens; at most
// keep rotated files are retained.
type EventLog struct {
	mu   sync.Mutex
	w    io.Writer
	seq  uint64
	size int64

	// File-backed rotation state; nil file means a plain writer sink.
	file     *os.File
	path     string
	maxBytes int64
	keep     int

	events    atomic.Int64
	rotations atomic.Int64
	dropped   atomic.Int64
}

// NewEventLog wraps an arbitrary writer (stderr, a test buffer) as an
// event sink without rotation. A nil writer yields a nil log, and every
// EventLog method is nil-safe, so "events disabled" is just a nil log.
func NewEventLog(w io.Writer) *EventLog {
	if w == nil {
		return nil
	}
	return &EventLog{w: w}
}

// OpenEventLog opens (appending) a file-backed event log that rotates
// when the file exceeds maxBytes (<= 0 disables rotation), keeping at
// most keep rotated files (path.1 newest).
func OpenEventLog(path string, maxBytes int64, keep int) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("event log %s: %w", path, err)
	}
	size := int64(0)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	if keep < 0 {
		keep = 0
	}
	return &EventLog{w: f, file: f, path: path, maxBytes: maxBytes, keep: keep, size: size}, nil
}

// Emit writes one event. traceID 0 means "no originating request" and
// is omitted from the line. The fields map is marshaled alongside the
// envelope; callers must not use the reserved keys ts/seq/kind/trace_id.
// Nil-safe: a nil log drops the event.
func (l *EventLog) Emit(kind string, traceID uint64, fields map[string]any) {
	if l == nil {
		return
	}
	doc := make(map[string]any, len(fields)+4)
	for k, v := range fields {
		doc[k] = v
	}
	doc["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	doc["kind"] = kind
	if traceID != 0 {
		doc["trace_id"] = traceID
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	doc["seq"] = l.seq
	b, err := json.Marshal(doc)
	if err != nil {
		l.dropped.Add(1)
		return
	}
	b = append(b, '\n')
	if l.file != nil && l.maxBytes > 0 && l.size > 0 && l.size+int64(len(b)) > l.maxBytes {
		l.rotateLocked()
	}
	n, err := l.w.Write(b)
	l.size += int64(n)
	if err != nil {
		l.dropped.Add(1)
		return
	}
	l.events.Add(1)
}

// rotateLocked shifts path.i → path.(i+1), moves the live file to
// path.1 and reopens a fresh one. On reopen failure the old handle
// keeps serving (the log degrades to unbounded rather than silent).
func (l *EventLog) rotateLocked() {
	_ = l.file.Close()
	if l.keep == 0 {
		_ = os.Remove(l.path)
	} else {
		_ = os.Remove(fmt.Sprintf("%s.%d", l.path, l.keep))
		for i := l.keep - 1; i >= 1; i-- {
			_ = os.Rename(fmt.Sprintf("%s.%d", l.path, i), fmt.Sprintf("%s.%d", l.path, i+1))
		}
		_ = os.Rename(l.path, l.path+".1")
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// Reopen the original append handle path as best effort.
		if f2, err2 := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err2 == nil {
			f = f2
		} else {
			l.dropped.Add(1)
			return
		}
	}
	l.file = f
	l.w = f
	l.size = 0
	l.rotations.Add(1)
}

// EventLogStats is the logger's counter snapshot for /metrics.
type EventLogStats struct {
	Enabled   bool  `json:"enabled"`
	Events    int64 `json:"events"`
	Seq       int64 `json:"seq"`
	Rotations int64 `json:"rotations"`
	Dropped   int64 `json:"dropped"`
}

// Stats snapshots the counters. Nil-safe.
func (l *EventLog) Stats() EventLogStats {
	if l == nil {
		return EventLogStats{}
	}
	l.mu.Lock()
	seq := int64(l.seq)
	l.mu.Unlock()
	return EventLogStats{
		Enabled:   true,
		Events:    l.events.Load(),
		Seq:       seq,
		Rotations: l.rotations.Load(),
		Dropped:   l.dropped.Load(),
	}
}

// Close closes a file-backed log. Nil-safe; plain-writer logs no-op.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	l.w = io.Discard
	return err
}
