package obs

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emptyheaded/internal/metrics"
	"emptyheaded/internal/quantile"
)

// Cache routes a finished query can have taken; every Observe books
// exactly one.
const (
	RouteResultHit = "result_hit"
	RoutePlanHit   = "plan_hit"
	RouteMiss      = "miss"
)

// fpSampleWindow bounds the per-fingerprint exact-quantile sample ring.
// 256 samples × 8 bytes × the registry capacity bounds the memory
// (512 KiB at the default 256-entry registry); p50/p99 are computed over
// the most recent window, matching the endpoint latency windows.
const fpSampleWindow = 256

// DefaultWorkloadCap is the default fingerprint-registry capacity.
const DefaultWorkloadCap = 256

// QueryObs is one finished /query request's contribution to the
// workload registry: the identity (fingerprint + a sample spelling),
// the outcome, and the kernel counters when they were collected.
type QueryObs struct {
	Fingerprint string
	Query       string
	TraceID     uint64
	Latency     time.Duration
	// PhasesUS is the request's per-lifecycle-phase breakdown.
	PhasesUS map[string]int64
	// Route is how the response was produced: RouteResultHit (served
	// from the result cache), RoutePlanHit (executed under a cached
	// plan) or RouteMiss (parsed and compiled from scratch).
	Route string
	// Rows is the response cardinality; Intersections/Probes/Skipped
	// are the run's loop-nest totals (zero on cached serves and when
	// collection was disabled).
	Rows          int64
	Intersections int64
	Probes        int64
	Skipped       int64
	Err           bool
	Cancelled     bool
}

// fpStat is one fingerprint's cumulative aggregate. All fields are
// guarded by the owning Workload's mutex.
type fpStat struct {
	fp    string
	query string

	firstSeen   time.Time
	lastSeen    time.Time
	lastTraceID uint64

	count   int64
	errors  int64
	cancels int64
	routes  [3]int64 // result_hit, plan_hit, miss

	totalUS  int64
	maxUS    int64
	phasesUS map[string]int64

	rows          int64
	intersections int64
	probes        int64
	skipped       int64

	// hist accumulates the lifetime latency distribution; ring holds the
	// most recent samples for exact nearest-rank quantiles.
	hist   *metrics.Histogram
	ring   []time.Duration
	idx    int
	filled bool
}

func routeIndex(route string) int {
	switch route {
	case RouteResultHit:
		return 0
	case RoutePlanHit:
		return 1
	default:
		return 2
	}
}

// Workload is the bounded per-fingerprint registry: an LRU-evicted map
// merging every finished query into its fingerprint's cumulative
// aggregate. One short mutex hold per request.
type Workload struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently observed
	items    map[string]*list.Element

	evictions atomic.Int64
	observed  atomic.Int64
	// Global route/outcome counters are atomics so /metrics scrapes read
	// them without taking the registry mutex.
	resultHits atomic.Int64
	planHits   atomic.Int64
	misses     atomic.Int64
	errs       atomic.Int64
	cancels    atomic.Int64
}

// NewWorkload builds a registry holding at most capacity fingerprints
// (<= 0 selects DefaultWorkloadCap).
func NewWorkload(capacity int) *Workload {
	if capacity <= 0 {
		capacity = DefaultWorkloadCap
	}
	return &Workload{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Observe merges one finished query into its fingerprint's aggregate.
// Nil-safe: a nil registry (workload stats disabled) drops it.
func (w *Workload) Observe(q QueryObs) {
	if w == nil || q.Fingerprint == "" {
		return
	}
	w.observed.Add(1)
	switch routeIndex(q.Route) {
	case 0:
		w.resultHits.Add(1)
	case 1:
		w.planHits.Add(1)
	default:
		w.misses.Add(1)
	}
	if q.Err {
		w.errs.Add(1)
	}
	if q.Cancelled {
		w.cancels.Add(1)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	var st *fpStat
	if el, ok := w.items[q.Fingerprint]; ok {
		w.ll.MoveToFront(el)
		st = el.Value.(*fpStat)
	} else {
		st = &fpStat{
			fp:        q.Fingerprint,
			query:     q.Query,
			firstSeen: time.Now(),
			phasesUS:  map[string]int64{},
			hist:      metrics.NewHistogram(metrics.LatencyBuckets),
			ring:      make([]time.Duration, fpSampleWindow),
		}
		w.items[q.Fingerprint] = w.ll.PushFront(st)
		for w.ll.Len() > w.capacity {
			last := w.ll.Back()
			w.ll.Remove(last)
			delete(w.items, last.Value.(*fpStat).fp)
			w.evictions.Add(1)
		}
	}
	st.lastSeen = time.Now()
	if q.TraceID != 0 {
		st.lastTraceID = q.TraceID
	}
	if st.query == "" {
		st.query = q.Query
	}
	st.count++
	if q.Err {
		st.errors++
	}
	if q.Cancelled {
		st.cancels++
	}
	st.routes[routeIndex(q.Route)]++
	us := q.Latency.Microseconds()
	st.totalUS += us
	if us > st.maxUS {
		st.maxUS = us
	}
	for p, v := range q.PhasesUS {
		st.phasesUS[p] += v
	}
	st.rows += q.Rows
	st.intersections += q.Intersections
	st.probes += q.Probes
	st.skipped += q.Skipped
	st.hist.Observe(q.Latency)
	st.ring[st.idx] = q.Latency
	st.idx++
	if st.idx == len(st.ring) {
		st.idx = 0
		st.filled = true
	}
}

// FingerprintStats is one registry row, JSON-shaped for /debug/workload.
type FingerprintStats struct {
	Fingerprint string `json:"fingerprint"`
	// Query is one spelling of the fingerprint (the first one seen).
	Query   string `json:"query,omitempty"`
	Count   int64  `json:"count"`
	Errors  int64  `json:"errors,omitempty"`
	Cancels int64  `json:"cancels,omitempty"`
	// Routes breaks Count down by cache route.
	Routes map[string]int64 `json:"routes"`
	// Latency aggregates: lifetime total/avg/max, windowed p50/p99
	// (nearest-rank over the recent sample ring).
	TotalUS int64   `json:"total_us"`
	AvgUS   float64 `json:"avg_us"`
	P50US   float64 `json:"p50_us"`
	P99US   float64 `json:"p99_us"`
	MaxUS   int64   `json:"max_us"`
	// PhasesUS sums the lifecycle-phase breakdowns across runs.
	PhasesUS map[string]int64 `json:"phases_us,omitempty"`
	// Cumulative kernel counters (executed runs only: cached serves and
	// collection-off runs contribute rows but no loop-nest counters).
	Rows          int64  `json:"rows"`
	Intersections int64  `json:"intersections,omitempty"`
	Probes        int64  `json:"probes,omitempty"`
	Skipped       int64  `json:"skipped,omitempty"`
	LastTraceID   uint64 `json:"last_trace_id,omitempty"`
	FirstSeen     string `json:"first_seen"`
	LastSeen      string `json:"last_seen"`
}

func (st *fpStat) snapshot() FingerprintStats {
	out := FingerprintStats{
		Fingerprint: st.fp,
		Query:       st.query,
		Count:       st.count,
		Errors:      st.errors,
		Cancels:     st.cancels,
		Routes: map[string]int64{
			RouteResultHit: st.routes[0],
			RoutePlanHit:   st.routes[1],
			RouteMiss:      st.routes[2],
		},
		TotalUS:       st.totalUS,
		MaxUS:         st.maxUS,
		Rows:          st.rows,
		Intersections: st.intersections,
		Probes:        st.probes,
		Skipped:       st.skipped,
		LastTraceID:   st.lastTraceID,
		FirstSeen:     st.firstSeen.UTC().Format(time.RFC3339Nano),
		LastSeen:      st.lastSeen.UTC().Format(time.RFC3339Nano),
	}
	if st.count > 0 {
		out.AvgUS = float64(st.totalUS) / float64(st.count)
	}
	if len(st.phasesUS) > 0 {
		out.PhasesUS = make(map[string]int64, len(st.phasesUS))
		for p, v := range st.phasesUS {
			out.PhasesUS[p] = v
		}
	}
	n := st.idx
	if st.filled {
		n = len(st.ring)
	}
	if n > 0 {
		samples := append([]time.Duration(nil), st.ring[:n]...)
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		out.P50US = float64(samples[quantile.Index(n, 0.50)].Microseconds())
		out.P99US = float64(samples[quantile.Index(n, 0.99)].Microseconds())
	}
	return out
}

// Workload sort keys for TopK.
const (
	SortCount   = "count"
	SortLatency = "latency"
	SortRows    = "rows"
)

// TopK snapshots the registry's top k fingerprints under the given sort
// key (SortCount by default; ties break by fingerprint so repeated
// snapshots are stable). k <= 0 returns every retained fingerprint.
func (w *Workload) TopK(sortKey string, k int) []FingerprintStats {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	rows := make([]FingerprintStats, 0, w.ll.Len())
	for el := w.ll.Front(); el != nil; el = el.Next() {
		rows = append(rows, el.Value.(*fpStat).snapshot())
	}
	w.mu.Unlock()
	less := func(a, b *FingerprintStats) bool { return a.Count > b.Count }
	switch sortKey {
	case SortLatency:
		less = func(a, b *FingerprintStats) bool { return a.TotalUS > b.TotalUS }
	case SortRows:
		less = func(a, b *FingerprintStats) bool { return a.Rows > b.Rows }
	}
	sort.Slice(rows, func(i, j int) bool {
		if less(&rows[i], &rows[j]) {
			return true
		}
		if less(&rows[j], &rows[i]) {
			return false
		}
		return rows[i].Fingerprint < rows[j].Fingerprint
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// WorkloadTotals is the registry's global counter snapshot for /metrics.
type WorkloadTotals struct {
	Fingerprints int   `json:"fingerprints"`
	Capacity     int   `json:"capacity"`
	Observed     int64 `json:"observed"`
	Evictions    int64 `json:"evictions"`
	ResultHits   int64 `json:"result_hits"`
	PlanHits     int64 `json:"plan_hits"`
	Misses       int64 `json:"misses"`
	Errors       int64 `json:"errors"`
	Cancels      int64 `json:"cancels"`
}

// Totals snapshots the global counters. Nil-safe.
func (w *Workload) Totals() WorkloadTotals {
	if w == nil {
		return WorkloadTotals{}
	}
	w.mu.Lock()
	n := w.ll.Len()
	capacity := w.capacity
	w.mu.Unlock()
	return WorkloadTotals{
		Fingerprints: n,
		Capacity:     capacity,
		Observed:     w.observed.Load(),
		Evictions:    w.evictions.Load(),
		ResultHits:   w.resultHits.Load(),
		PlanHits:     w.planHits.Load(),
		Misses:       w.misses.Load(),
		Errors:       w.errs.Load(),
		Cancels:      w.cancels.Load(),
	}
}
