package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestEventLogEnvelope(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit("snapshot", 0, map[string]any{"dir": "/tmp/x", "tuples": 42})
	l.Emit("slow_query", 7, map[string]any{"total_us": int64(1234)})

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first, second map[string]any
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(lines[1], &second); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "snapshot" || first["seq"] != 1.0 || first["ts"] == nil {
		t.Fatalf("first envelope: %v", first)
	}
	if _, has := first["trace_id"]; has {
		t.Fatalf("trace_id 0 should be omitted: %v", first)
	}
	if first["dir"] != "/tmp/x" || first["tuples"] != 42.0 {
		t.Fatalf("fields not flattened: %v", first)
	}
	if second["kind"] != "slow_query" || second["seq"] != 2.0 || second["trace_id"] != 7.0 {
		t.Fatalf("second envelope: %v", second)
	}

	st := l.Stats()
	if !st.Enabled || st.Events != 2 || st.Seq != 2 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEventLogSeqOrder checks the determination-provenance property:
// concurrent emitters produce a file whose line order IS the seq order,
// with no gaps or duplicates. The emitters cycle through the provenance
// kinds (query_provenance per execution, audit_mismatch from the cache
// auditor) alongside plain ticks, so the interleaving the server
// actually produces is what's exercised; per-kind counts must survive
// the interleave intact.
func TestEventLogSeqOrder(t *testing.T) {
	var buf safeBuffer
	l := NewEventLog(&buf)
	kinds := []string{"tick", "query_provenance", "audit_mismatch"}
	const goroutines = 9 // multiple of len(kinds): uniform per-kind totals
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Emit(kinds[g%len(kinds)], uint64(g+1), map[string]any{"i": i})
			}
		}(g)
	}
	wg.Wait()

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	want := uint64(1)
	byKind := map[string]int{}
	for sc.Scan() {
		var ev struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", want, err)
		}
		if ev.Seq != want {
			t.Fatalf("line %d carries seq %d: file order is not seq order", want, ev.Seq)
		}
		byKind[ev.Kind]++
		want++
	}
	if want-1 != goroutines*perG {
		t.Fatalf("got %d events, want %d", want-1, goroutines*perG)
	}
	for _, k := range kinds {
		if byKind[k] != goroutines/len(kinds)*perG {
			t.Fatalf("kind %s: %d events, want %d (counts %v)",
				k, byKind[k], goroutines/len(kinds)*perG, byKind)
		}
	}
}

// TestEventLogProvenanceKinds pins the wire shape of the two kinds this
// package's consumers grep for (docs/PROVENANCE.md): query_provenance
// carries structured per-relation lineage, audit_mismatch the drift
// attribution; both flatten into the standard envelope.
func TestEventLogProvenanceKinds(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit("query_provenance", 11, map[string]any{
		"fingerprint": "fp1",
		"generation":  uint64(0),
		"cardinality": 3,
		"relations": []map[string]any{
			{"relation": "Edge", "epoch": 4, "wal_seq": 9},
		},
	})
	l.Emit("audit_mismatch", 12, map[string]any{
		"fingerprint":        "fp1",
		"cached_cardinality": 3,
		"actual_cardinality": 4,
		"cardinality_delta":  1,
	})

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var qp struct {
		Kind      string `json:"kind"`
		TraceID   uint64 `json:"trace_id"`
		Relations []struct {
			Relation string `json:"relation"`
			Epoch    uint64 `json:"epoch"`
			WALSeq   uint64 `json:"wal_seq"`
		} `json:"relations"`
	}
	if err := json.Unmarshal(lines[0], &qp); err != nil {
		t.Fatal(err)
	}
	if qp.Kind != "query_provenance" || qp.TraceID != 11 ||
		len(qp.Relations) != 1 || qp.Relations[0].WALSeq != 9 {
		t.Fatalf("query_provenance line: %+v", qp)
	}
	var am struct {
		Kind  string `json:"kind"`
		Delta int    `json:"cardinality_delta"`
	}
	if err := json.Unmarshal(lines[1], &am); err != nil {
		t.Fatal(err)
	}
	if am.Kind != "audit_mismatch" || am.Delta != 1 {
		t.Fatalf("audit_mismatch line: %+v", am)
	}
}

type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func TestEventLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	// Each line is ~60 bytes; rotate past 1 KiB, keep 2 files.
	l, err := OpenEventLog(path, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Alternate the provenance kind into the stream: rotation must not
	// care what kinds it splits across files.
	const total = 200
	for i := 0; i < total; i++ {
		kind := "tick"
		if i%2 == 1 {
			kind = "query_provenance"
		}
		l.Emit(kind, 0, map[string]any{"i": i, "pad": "xxxxxxxxxxxxxxxx"})
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatalf("no rotations after %d events: %+v", total, st)
	}
	if st.Events != total || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// The live file plus at most keep rotations exist, each within the
	// size budget (up to one line of overshoot on the rotation trigger).
	for _, p := range []string{path, path + ".1", path + ".2"} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if fi.Size() > 1024+256 {
			t.Fatalf("%s is %d bytes, rotation budget blown", p, fi.Size())
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("keep=2 but %s.3 exists", path)
	}

	// Sequence numbers keep ascending across the rotation boundary: the
	// newest retained file ends where the live file begins.
	liveSeqs := seqsOf(t, path)
	prevSeqs := seqsOf(t, path+".1")
	if len(liveSeqs) == 0 || len(prevSeqs) == 0 {
		t.Fatal("empty event files after rotation")
	}
	if prevSeqs[len(prevSeqs)-1]+1 != liveSeqs[0] {
		t.Fatalf("seq gap across rotation: ...%d | %d...",
			prevSeqs[len(prevSeqs)-1], liveSeqs[0])
	}
}

func seqsOf(t *testing.T, path string) []uint64 {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []uint64
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		var ev struct {
			Seq uint64 `json:"seq"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, ev.Seq)
	}
	return out
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit("tick", 0, nil)
	if st := l.Stats(); st.Enabled {
		t.Fatalf("nil log reports enabled: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l2 := NewEventLog(nil); l2 != nil {
		t.Fatal("NewEventLog(nil) should yield a nil (disabled) log")
	}
}

func TestRelHeatSnapshot(t *testing.T) {
	h := NewRelHeat()
	h.NoteRead("Edge", false)
	h.NoteRead("Edge", true)
	h.NoteLevel("Edge", 0, 10, 5, 1, 3)
	h.NoteLevel("Edge", 1, 20, 8, 2, 0)
	h.NoteLevel("Edge", 1, 5, 1, 0, 1)
	h.NoteUpdate("Edge", 3, 24)
	h.NoteRead("Tri", false)

	snap := h.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d relations, want 2", len(snap))
	}
	e := snap[0]
	if e.Relation != "Edge" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	if e.Reads != 2 || e.OverlayReads != 1 || e.OverlayReadFraction != 0.5 {
		t.Fatalf("reads: %+v", e)
	}
	if e.Probes != 35 || e.Intersections != 14 || e.Skipped != 3 {
		t.Fatalf("kernel counters: %+v", e)
	}
	if len(e.LevelProbes) != 2 || e.LevelProbes[0] != 10 || e.LevelProbes[1] != 25 {
		t.Fatalf("level probes: %v", e.LevelProbes)
	}
	if e.UpdateBatches != 1 || e.UpdateRows != 3 || e.UpdateBytes != 24 {
		t.Fatalf("update counters: %+v", e)
	}
	if e.LastRead == "" || e.LastUpdate == "" {
		t.Fatalf("timestamps missing: %+v", e)
	}
	if snap[1].Relation != "Tri" || snap[1].Reads != 1 || snap[1].LastUpdate != "" {
		t.Fatalf("second relation: %+v", snap[1])
	}

	var nilHeat *RelHeat
	nilHeat.NoteRead("X", false)
	nilHeat.NoteLevel("X", 0, 1, 1, 1, 1)
	nilHeat.NoteUpdate("X", 1, 1)
	if s := nilHeat.Snapshot(); s != nil {
		t.Fatalf("nil heat snapshot: %v", s)
	}
}

func TestBuildInfoPromLine(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" || bi.Module == "" || bi.Revision == "" {
		t.Fatalf("build info has empty fields: %+v", bi)
	}
	line := bi.PromLine()
	if !strings.HasPrefix(line, "eh_build_info{go_version=") {
		t.Fatalf("prom line %q", line)
	}
	if !strings.HasSuffix(line, "} 1\n") {
		t.Fatalf("prom line %q does not end with value 1", line)
	}
}
