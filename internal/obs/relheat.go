package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// relHeat is one relation's hot counters. Everything is atomic — the
// exec loop nest attribution and the update path both write here
// without locks, the same discipline as internal/metrics — except the
// per-level probe slice, which grows under the owning RelHeat's mutex
// (growth is rare: only when a query binds a deeper trie level than any
// before it).
type relHeat struct {
	// reads counts query executions that read the relation;
	// overlayReads the subset served through a delta-overlay merged
	// view (reads-overlayReads went straight to a compacted base).
	reads        atomic.Int64
	overlayReads atomic.Int64

	// Loop-nest attribution: totals across all levels, plus per
	// original-column counters (participation counts — a level probing
	// a 3-atom intersection books the level's probes to all three
	// relations).
	probes        atomic.Int64
	intersections atomic.Int64
	skipped       atomic.Int64
	// wordParallel counts pairwise kernel dispatches attributed to the
	// relation that ran a word-parallel dense route (bitset∩bitset or
	// block∩block) — the adaptive-layout engagement signal per relation.
	wordParallel atomic.Int64

	mu          sync.Mutex
	levelProbes []*atomic.Int64 // index = original column of the relation

	// Update-path counters.
	updateBatches atomic.Int64
	updateRows    atomic.Int64
	updateBytes   atomic.Int64

	lastReadUnixNano   atomic.Int64
	lastUpdateUnixNano atomic.Int64
}

func (h *relHeat) levelCounter(col int) *atomic.Int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.levelProbes) <= col {
		h.levelProbes = append(h.levelProbes, &atomic.Int64{})
	}
	return h.levelProbes[col]
}

// RelHeat maps relation name → heat counters. The map itself is guarded
// by an RWMutex (reads on the hot path, writes only on first touch of a
// new relation); the counters inside are atomics.
type RelHeat struct {
	mu   sync.RWMutex
	rels map[string]*relHeat
}

// NewRelHeat builds an empty heat map.
func NewRelHeat() *RelHeat {
	return &RelHeat{rels: map[string]*relHeat{}}
}

func (m *RelHeat) rel(name string) *relHeat {
	m.mu.RLock()
	h, ok := m.rels[name]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.rels[name]; ok {
		return h
	}
	h = &relHeat{}
	m.rels[name] = h
	return h
}

// NoteRead books one query execution that read the relation; overlay
// reports whether the read went through a delta-overlay merged view.
// Nil-safe.
func (m *RelHeat) NoteRead(name string, overlay bool) {
	if m == nil {
		return
	}
	h := m.rel(name)
	h.reads.Add(1)
	if overlay {
		h.overlayReads.Add(1)
	}
	h.lastReadUnixNano.Store(time.Now().UnixNano())
}

// NoteLevel attributes one loop-nest level's kernel counters to the
// relation at the given original column. Nil-safe.
func (m *RelHeat) NoteLevel(name string, col int, probes, intersections, skipped, wordParallel int64) {
	if m == nil {
		return
	}
	h := m.rel(name)
	h.probes.Add(probes)
	h.intersections.Add(intersections)
	h.skipped.Add(skipped)
	h.wordParallel.Add(wordParallel)
	if col >= 0 {
		h.levelCounter(col).Add(probes)
	}
}

// NoteUpdate books one applied update batch. Nil-safe.
func (m *RelHeat) NoteUpdate(name string, rows, bytes int64) {
	if m == nil {
		return
	}
	h := m.rel(name)
	h.updateBatches.Add(1)
	h.updateRows.Add(rows)
	h.updateBytes.Add(bytes)
	h.lastUpdateUnixNano.Store(time.Now().UnixNano())
}

// RelationHeat is one relation's JSON row for /debug/relations.
type RelationHeat struct {
	Relation string `json:"relation"`
	// Reads counts query executions over the relation; OverlayReads the
	// subset that went through a delta-overlay merged view.
	// OverlayReadFraction = OverlayReads/Reads.
	Reads               int64   `json:"reads"`
	OverlayReads        int64   `json:"overlay_reads,omitempty"`
	OverlayReadFraction float64 `json:"overlay_read_fraction"`
	// Loop-nest attribution (participation counts across all queries).
	Probes        int64 `json:"probes,omitempty"`
	Intersections int64 `json:"intersections,omitempty"`
	Skipped       int64 `json:"skipped,omitempty"`
	// WordParallel counts kernel dispatches that ran word-parallel dense
	// routes while reading this relation; WordParallel/Intersections ≈
	// how often the adaptive layouts put the relation's sets in dense form.
	WordParallel int64 `json:"word_parallel,omitempty"`
	// LevelProbes[i] is the probe count attributed to original column i.
	LevelProbes []int64 `json:"level_probes,omitempty"`
	// Update-path counters.
	UpdateBatches int64  `json:"update_batches,omitempty"`
	UpdateRows    int64  `json:"update_rows,omitempty"`
	UpdateBytes   int64  `json:"update_bytes,omitempty"`
	LastRead      string `json:"last_read,omitempty"`
	LastUpdate    string `json:"last_update,omitempty"`
}

// Snapshot returns every relation's heat row, sorted by name. Nil-safe.
func (m *RelHeat) Snapshot() []RelationHeat {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	names := make([]string, 0, len(m.rels))
	for name := range m.rels {
		names = append(names, name)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	out := make([]RelationHeat, 0, len(names))
	for _, name := range names {
		m.mu.RLock()
		h := m.rels[name]
		m.mu.RUnlock()
		r := RelationHeat{
			Relation:      name,
			Reads:         h.reads.Load(),
			OverlayReads:  h.overlayReads.Load(),
			Probes:        h.probes.Load(),
			Intersections: h.intersections.Load(),
			Skipped:       h.skipped.Load(),
			WordParallel:  h.wordParallel.Load(),
			UpdateBatches: h.updateBatches.Load(),
			UpdateRows:    h.updateRows.Load(),
			UpdateBytes:   h.updateBytes.Load(),
		}
		if r.Reads > 0 {
			r.OverlayReadFraction = float64(r.OverlayReads) / float64(r.Reads)
		}
		h.mu.Lock()
		if len(h.levelProbes) > 0 {
			r.LevelProbes = make([]int64, len(h.levelProbes))
			for i, c := range h.levelProbes {
				r.LevelProbes[i] = c.Load()
			}
		}
		h.mu.Unlock()
		if ns := h.lastReadUnixNano.Load(); ns > 0 {
			r.LastRead = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
		}
		if ns := h.lastUpdateUnixNano.Load(); ns > 0 {
			r.LastUpdate = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
		}
		out = append(out, r)
	}
	return out
}
