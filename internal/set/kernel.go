package set

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// This file is the set package's single public entry point for pairwise
// set operations. Earlier revisions exposed three overlapping call
// families (Intersect/IntersectCfg/IntersectBuf plus per-layout free
// functions); they are collapsed into one layout-polymorphic Kernel
// constructed from a Config. A Kernel dispatches on the operand layouts
// (the mixed-intersection matrix of §4.2) and, when built with
// NewCountingKernel, tallies every dispatch decision by Route so the
// execution engine can report which kernels actually ran.

// Route identifies one cell of the kernel dispatch matrix: the operand
// layout pair plus, for uint∩uint, the algorithm the skew rule selected.
type Route uint8

const (
	// RouteUintMerge is uint∩uint via the textbook scalar two-pointer
	// merge (the "-RA" baseline algorithm).
	RouteUintMerge Route = iota
	// RouteUintShuffle is uint∩uint via the block-skipping shuffle merge
	// with branch-free inner loops (the SIMD-shuffle stand-in).
	RouteUintShuffle
	// RouteUintGallop is uint∩uint via galloping (cardinality skew).
	RouteUintGallop
	// RouteUintBitset probes uint keys into bitset words.
	RouteUintBitset
	// RouteBitsetWord is bitset∩bitset via word-parallel AND + popcount.
	RouteBitsetWord
	// RouteBlockBlock is composite∩composite via block-aligned merge
	// (word-parallel on dense blocks).
	RouteBlockBlock
	// RouteMixedProbe is the mixed composite/other fallback: the smaller
	// side probes the larger.
	RouteMixedProbe
	// NumRoutes bounds the Route enum (array-indexed counters).
	NumRoutes
)

var routeNames = [NumRoutes]string{
	"uint-merge", "uint-shuffle", "uint-gallop",
	"uint-bitset", "bitset-bitset", "block-block", "mixed-probe",
}

// String returns the stable route name used in EXPLAIN ANALYZE output
// and stats JSON.
func (r Route) String() string {
	if int(r) < len(routeNames) {
		return routeNames[r]
	}
	return fmt.Sprintf("Route(%d)", uint8(r))
}

// WordParallel reports whether the route executes word-parallel dense
// operations (64 members per machine-word op) rather than per-key
// scalar work.
func (r Route) WordParallel() bool {
	return r == RouteBitsetWord || r == RouteBlockBlock
}

// ParseRoute maps a stable route name back to its Route.
func ParseRoute(s string) (Route, bool) {
	for i, n := range routeNames {
		if n == s {
			return Route(i), true
		}
	}
	return 0, false
}

// KernelStats counts kernel invocations by dispatch route. It is filled
// by a counting kernel (one per worker per loop level in the execution
// engine — no atomics) and merged with Add after the workers drain.
type KernelStats struct {
	Counts [NumRoutes]int64
}

// Add folds o into st.
func (st *KernelStats) Add(o *KernelStats) {
	for i := range st.Counts {
		st.Counts[i] += o.Counts[i]
	}
}

// Total is the number of pairwise kernel invocations counted.
func (st *KernelStats) Total() int64 {
	var n int64
	for _, c := range st.Counts {
		n += c
	}
	return n
}

// WordParallel is the number of invocations that ran a word-parallel
// dense route (see Route.WordParallel).
func (st *KernelStats) WordParallel() int64 {
	var n int64
	for r, c := range st.Counts {
		if Route(r).WordParallel() {
			n += c
		}
	}
	return n
}

// IsZero reports whether no invocations were counted (lets encoders
// with the omitzero option drop empty stats).
func (st KernelStats) IsZero() bool {
	for _, c := range st.Counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// String renders the non-zero routes in dispatch-matrix order, e.g.
// "uint-gallop=12 bitset-bitset=3".
func (st *KernelStats) String() string {
	var sb bytes.Buffer
	for r, c := range st.Counts {
		if c == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d", Route(r), c)
	}
	return sb.String()
}

// MarshalJSON encodes the stats as an object of non-zero route counts
// in dispatch-matrix order: {"uint-gallop":12,"bitset-bitset":3}.
func (st KernelStats) MarshalJSON() ([]byte, error) {
	var sb bytes.Buffer
	sb.WriteByte('{')
	first := true
	for r, c := range st.Counts {
		if c == 0 {
			continue
		}
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%q:%d", Route(r).String(), c)
	}
	sb.WriteByte('}')
	return sb.Bytes(), nil
}

// UnmarshalJSON decodes the object form; unknown route names are
// ignored so newer encoders stay readable.
func (st *KernelStats) UnmarshalJSON(b []byte) error {
	m := map[string]int64{}
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	*st = KernelStats{}
	for name, c := range m {
		if r, ok := ParseRoute(name); ok {
			st.Counts[r] = c
		}
	}
	return nil
}

// Kernel is the layout-polymorphic set-operation interface: one object
// per intersection configuration, dispatching each call on the operand
// layouts. Implementations are cheap value-like objects; the execution
// engine holds one per worker (counting kernels are not safe for
// concurrent use — each worker counts into its own KernelStats).
type Kernel interface {
	// Intersect computes a ∩ b, allocating the result. The result layout
	// follows the paper: uint∩uint→uint, bitset∩bitset→bitset,
	// uint∩bitset→uint (§4.2 fn. 6), composite∩composite→composite.
	Intersect(a, b Set) Set
	// IntersectBuf is Intersect with caller-provided scratch: uint-valued
	// results land in buf, bitset results in wbuf (both grown as needed
	// and returned for reuse). Results alias the buffers, so the caller
	// owns their lifetime. This is the allocation-free fast path of the
	// generated loop nests (§3.3); it covers every layout pair.
	IntersectBuf(a, b Set, buf []uint32, wbuf []uint64) (Set, []uint32, []uint64)
	// Count computes |a ∩ b| without materializing the result.
	Count(a, b Set) int
	// Union computes a ∪ b (word-parallel OR on bitset pairs); the
	// recursion executor grows recursive relations with it.
	Union(a, b Set) Set
	// Difference computes a \ b (word-parallel ANDNOT on bitset pairs);
	// the seminaive executor forms delta frontiers with it.
	Difference(a, b Set) Set
	// Merge3 computes (base \ del) ∪ ins as a sorted value slice — the
	// per-level operation of the delta-trie overlay merge. Bitset bases
	// take a word-parallel ANDNOT/OR path regardless of the overlay
	// layouts; everything else decodes and merges.
	Merge3(base, ins, del Set) []uint32
	// Build materializes a strictly increasing value slice in the given
	// layout (the trie builders' construction entry point).
	Build(vals []uint32, l Layout) Set
	// Config reports the kernel's configuration.
	Config() Config
}

// NewKernel returns the kernel for cfg. The zero Config is the fully
// optimized EmptyHeaded kernel set.
func NewKernel(cfg Config) Kernel { return &kernel{cfg: cfg} }

// NewCountingKernel returns a kernel that additionally tallies each
// dispatch into st. Not safe for concurrent use — give each worker its
// own stats block and merge with KernelStats.Add.
func NewCountingKernel(cfg Config, st *KernelStats) Kernel {
	return &kernel{cfg: cfg, st: st}
}

// DefaultKernel is the shared fully-optimized kernel (zero Config, no
// counting); Intersect and IntersectCount are shorthands over it.
var DefaultKernel = NewKernel(Config{})

// Intersect computes a ∩ b with the default configuration.
func Intersect(a, b Set) Set { return DefaultKernel.Intersect(a, b) }

// IntersectCount computes |a ∩ b| with the default configuration.
func IntersectCount(a, b Set) int { return DefaultKernel.Count(a, b) }

type kernel struct {
	cfg Config
	st  *KernelStats
}

func (k *kernel) Config() Config { return k.cfg }

func (k *kernel) note(r Route) {
	if k.st != nil {
		k.st.Counts[r]++
	}
}

// routeOfAlgo maps a resolved uint∩uint algorithm to its route.
func routeOfAlgo(a Algo) Route {
	switch a {
	case AlgoMerge:
		return RouteUintMerge
	case AlgoGalloping:
		return RouteUintGallop
	default:
		return RouteUintShuffle
	}
}

func (k *kernel) Intersect(a, b Set) Set {
	if a.card == 0 || b.card == 0 {
		return Set{}
	}
	switch {
	case a.layout == Uint && b.layout == Uint:
		algo := pickAlgo(a.data, b.data, k.cfg)
		k.note(routeOfAlgo(algo))
		return FromSorted(intersectUintUint(a.data, b.data, algo, nil))
	case a.layout == Bitset && b.layout == Bitset:
		k.note(RouteBitsetWord)
		return intersectBitsetBitset(a, b, k.cfg.BitByBit)
	case a.layout == Uint && b.layout == Bitset:
		k.note(RouteUintBitset)
		return FromSorted(intersectUintBitset(a.data, b, nil))
	case a.layout == Bitset && b.layout == Uint:
		k.note(RouteUintBitset)
		return FromSorted(intersectUintBitset(b.data, a, nil))
	case a.layout == Composite && b.layout == Composite:
		k.note(RouteBlockBlock)
		return NewComposite(intersectCompositeComposite(a, b, nil))
	default:
		k.note(RouteMixedProbe)
		return FromSorted(intersectMixedProbe(a, b, nil))
	}
}

func (k *kernel) IntersectBuf(a, b Set, buf []uint32, wbuf []uint64) (Set, []uint32, []uint64) {
	if a.card == 0 || b.card == 0 {
		return Set{}, buf, wbuf
	}
	switch {
	case a.layout == Uint && b.layout == Uint:
		algo := pickAlgo(a.data, b.data, k.cfg)
		k.note(routeOfAlgo(algo))
		out := intersectUintUint(a.data, b.data, algo, buf[:0])
		return FromSorted(out), out, wbuf
	case a.layout == Uint && b.layout == Bitset:
		k.note(RouteUintBitset)
		out := intersectUintBitset(a.data, b, buf[:0])
		return FromSorted(out), out, wbuf
	case a.layout == Bitset && b.layout == Uint:
		k.note(RouteUintBitset)
		out := intersectUintBitset(b.data, a, buf[:0])
		return FromSorted(out), out, wbuf
	case a.layout == Bitset && b.layout == Bitset:
		k.note(RouteBitsetWord)
		base, wa, wb, n := bitsetOverlap(a, b)
		if n == 0 {
			return Set{}, buf, wbuf
		}
		if cap(wbuf) < n {
			wbuf = make([]uint64, n)
		}
		wbuf = wbuf[:n]
		if k.cfg.BitByBit {
			bitByBitAnd(wbuf, wa, wb, n)
		} else {
			for i := 0; i < n; i++ {
				wbuf[i] = wa[i] & wb[i]
			}
		}
		return fromBitsetWords(base, wbuf), buf, wbuf
	case a.layout == Composite && b.layout == Composite:
		k.note(RouteBlockBlock)
		out := intersectCompositeComposite(a, b, buf[:0])
		return FromSorted(out), out, wbuf
	default:
		k.note(RouteMixedProbe)
		out := intersectMixedProbe(a, b, buf[:0])
		return FromSorted(out), out, wbuf
	}
}

func (k *kernel) Count(a, b Set) int {
	if a.card == 0 || b.card == 0 {
		return 0
	}
	switch {
	case a.layout == Uint && b.layout == Uint:
		algo := pickAlgo(a.data, b.data, k.cfg)
		k.note(routeOfAlgo(algo))
		return intersectCountUintUint(a.data, b.data, algo)
	case a.layout == Bitset && b.layout == Bitset:
		k.note(RouteBitsetWord)
		return intersectCountBitsetBitset(a, b, k.cfg.BitByBit)
	case a.layout == Uint && b.layout == Bitset:
		k.note(RouteUintBitset)
		return intersectCountUintBitset(a.data, b)
	case a.layout == Bitset && b.layout == Uint:
		k.note(RouteUintBitset)
		return intersectCountUintBitset(b.data, a)
	case a.layout == Composite && b.layout == Composite:
		k.note(RouteBlockBlock)
		return intersectCountCompositeComposite(a, b)
	default:
		k.note(RouteMixedProbe)
		n := 0
		x, y := a, b
		if y.card < x.card {
			x, y = y, x
		}
		x.ForEach(func(_ int, v uint32) {
			if y.containsOnly(v) {
				n++
			}
		})
		return n
	}
}

func (k *kernel) Union(a, b Set) Set      { return unionSets(a, b) }
func (k *kernel) Difference(a, b Set) Set { return differenceSets(a, b) }
func (k *kernel) Merge3(base, ins, del Set) []uint32 {
	return merge3(base, ins, del)
}
func (k *kernel) Build(vals []uint32, l Layout) Set { return BuildLayout(vals, l) }

// intersectMixedProbe handles layout pairs without a specialized kernel
// (composite against uint or bitset): the smaller side streams in order
// and probes the larger, so the output stays sorted and the cost is
// bounded by the smaller cardinality times a membership probe.
func intersectMixedProbe(a, b Set, out []uint32) []uint32 {
	if b.card < a.card {
		a, b = b, a
	}
	a.ForEach(func(_ int, v uint32) {
		if b.containsOnly(v) {
			out = append(out, v)
		}
	})
	return out
}
