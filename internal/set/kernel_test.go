package set

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// oracleIntersect is the untouched scalar two-pointer merge — the "-RA"
// baseline — used as the differential oracle for every kernel route.
func oracleIntersect(a, b []uint32) []uint32 {
	return intersectMerge(a, b, nil)
}

// clusteredSet emits the skewed shape the composite band targets: a few
// dense runs plus uniform background noise, spread over a wide range.
func clusteredSet(rng *rand.Rand, runs, runLen, noise, span int) []uint32 {
	var vals []uint32
	for r := 0; r < runs; r++ {
		start := uint32(rng.Intn(span))
		for k := 0; k < runLen; k++ {
			vals = append(vals, start+uint32(k))
		}
	}
	for k := 0; k < noise; k++ {
		vals = append(vals, uint32(rng.Intn(span)))
	}
	return sortedUnique(vals)
}

// TestKernelDifferential drives every kernel entry point (Intersect,
// IntersectBuf, Count) across the full layout matrix × every algorithm
// × the bit-by-bit ablation, against the scalar merge oracle.
func TestKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfgs := []Config{
		{},
		{Algo: AlgoMerge},
		{Algo: AlgoShuffle},
		{Algo: AlgoGalloping},
		{BitByBit: true},
	}
	for trial := 0; trial < 40; trial++ {
		var av, bv []uint32
		switch trial % 3 {
		case 0: // uniform
			av = randomSet(rng, 1+rng.Intn(400), 1+rng.Intn(6000))
			bv = randomSet(rng, 1+rng.Intn(400), 1+rng.Intn(6000))
		case 1: // clustered (composite-shaped)
			av = clusteredSet(rng, 3, 40, 20, 1<<16)
			bv = clusteredSet(rng, 3, 40, 20, 1<<16)
		default: // heavy skew (galloping-shaped)
			av = randomSet(rng, 1+rng.Intn(10), 1<<16)
			bv = clusteredSet(rng, 4, 60, 100, 1<<16)
		}
		want := oracleIntersect(av, bv)
		for _, cfg := range cfgs {
			k := NewKernel(cfg)
			for _, sa := range allLayouts(av) {
				for _, sb := range allLayouts(bv) {
					got := k.Intersect(sa, sb)
					if !sliceEq(got.Slice(), want) {
						t.Fatalf("trial %d cfg %+v %s∩%s:\n got %v\nwant %v",
							trial, cfg, sa.Layout(), sb.Layout(), got.Slice(), want)
					}
					if n := k.Count(sa, sb); n != len(want) {
						t.Fatalf("trial %d cfg %+v %s∩%s: count %d want %d",
							trial, cfg, sa.Layout(), sb.Layout(), n, len(want))
					}
					bufGot, _, _ := k.IntersectBuf(sa, sb, nil, nil)
					if !sliceEq(bufGot.Slice(), want) {
						t.Fatalf("trial %d cfg %+v %s∩%s buffered:\n got %v\nwant %v",
							trial, cfg, sa.Layout(), sb.Layout(), bufGot.Slice(), want)
					}
				}
			}
		}
	}
}

// TestIntersectBufReusesBuffers checks the buffered path is allocation
// free once warm: results alias the returned scratch slices for every
// layout pair, including composite∩composite and the mixed probe.
func TestIntersectBufReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	av := clusteredSet(rng, 4, 50, 50, 1<<15)
	bv := clusteredSet(rng, 4, 50, 50, 1<<15)
	k := NewKernel(Config{})
	for _, sa := range allLayouts(av) {
		for _, sb := range allLayouts(bv) {
			// Warm the buffers, then re-run and require zero growth.
			_, buf, wbuf := k.IntersectBuf(sa, sb, nil, nil)
			allocs := testing.AllocsPerRun(10, func() {
				_, buf, wbuf = k.IntersectBuf(sa, sb, buf, wbuf)
			})
			if allocs != 0 {
				t.Errorf("%s∩%s buffered: %.1f allocs/op, want 0",
					sa.Layout(), sb.Layout(), allocs)
			}
		}
	}
}

// TestKernelStatsRoutes checks a counting kernel books each layout pair
// to the expected dispatch route.
func TestKernelStatsRoutes(t *testing.T) {
	dense := make([]uint32, 600)
	for i := range dense {
		dense[i] = uint32(i)
	}
	sparse := []uint32{1, 70, 300, 599, 1<<20 + 5}
	u := FromSorted(dense)
	b := NewBitset(dense)
	c := NewComposite(dense)
	su := FromSorted(sparse)

	cases := []struct {
		name  string
		a, b  Set
		route Route
	}{
		{"uint∩uint merge-band", u, u, RouteUintShuffle},
		{"uint∩bitset", u, b, RouteUintBitset},
		{"bitset∩uint", b, u, RouteUintBitset},
		{"bitset∩bitset", b, b, RouteBitsetWord},
		{"composite∩composite", c, c, RouteBlockBlock},
		{"composite∩uint", c, u, RouteMixedProbe},
		{"bitset∩composite", b, c, RouteMixedProbe},
		{"skewed gallop", su, u, RouteUintGallop},
	}
	for _, tc := range cases {
		var st KernelStats
		k := NewCountingKernel(Config{}, &st)
		k.Intersect(tc.a, tc.b)
		if st.Counts[tc.route] != 1 || st.Total() != 1 {
			t.Errorf("%s: stats %v, want exactly one %s", tc.name, st.String(), tc.route)
		}
		st = KernelStats{}
		k.Count(tc.a, tc.b)
		if st.Counts[tc.route] != 1 {
			t.Errorf("%s Count: stats %v, want one %s", tc.name, st.String(), tc.route)
		}
		st = KernelStats{}
		k.IntersectBuf(tc.a, tc.b, nil, nil)
		if st.Counts[tc.route] != 1 {
			t.Errorf("%s IntersectBuf: stats %v, want one %s", tc.name, st.String(), tc.route)
		}
	}

	// Algo pinning overrides the skew rule's route.
	var st KernelStats
	NewCountingKernel(Config{Algo: AlgoMerge}, &st).Intersect(u, u)
	if st.Counts[RouteUintMerge] != 1 {
		t.Errorf("pinned merge: stats %v", st.String())
	}

	// WordParallel covers exactly the dense word routes.
	st = KernelStats{}
	k := NewCountingKernel(Config{}, &st)
	k.Intersect(b, b)
	k.Intersect(c, c)
	k.Intersect(u, u)
	if got := st.WordParallel(); got != 2 {
		t.Errorf("WordParallel = %d, want 2 (stats %v)", got, st.String())
	}
	if st.Total() != 3 {
		t.Errorf("Total = %d, want 3", st.Total())
	}
}

func TestKernelStatsJSON(t *testing.T) {
	var st KernelStats
	st.Counts[RouteUintGallop] = 12
	st.Counts[RouteBitsetWord] = 3
	enc, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != `{"uint-gallop":12,"bitset-bitset":3}` {
		t.Fatalf("marshal = %s", enc)
	}
	var back KernelStats
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("round trip: %v vs %v", back, st)
	}
	// Unknown route names from a newer encoder are skipped, not fatal.
	if err := json.Unmarshal([]byte(`{"uint-merge":7,"future-route":9}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counts[RouteUintMerge] != 7 || back.Total() != 7 {
		t.Fatalf("tolerant decode: %v", back.String())
	}
	if !(KernelStats{}).IsZero() || st.IsZero() {
		t.Fatal("IsZero misreports")
	}
}

func TestParseRouteAndAlgo(t *testing.T) {
	for r := Route(0); r < NumRoutes; r++ {
		got, ok := ParseRoute(r.String())
		if !ok || got != r {
			t.Fatalf("ParseRoute(%q) = %v,%v", r.String(), got, ok)
		}
	}
	if _, ok := ParseRoute("no-such-route"); ok {
		t.Fatal("ParseRoute accepted garbage")
	}
	for _, tc := range []struct {
		in   string
		want Algo
	}{{"", AlgoAuto}, {"auto", AlgoAuto}, {"merge", AlgoMerge},
		{"shuffle", AlgoShuffle}, {"galloping", AlgoGalloping}, {"gallop", AlgoGalloping}} {
		got, err := ParseAlgo(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAlgo(%q) = %v,%v", tc.in, got, err)
		}
	}
	if _, err := ParseAlgo("simd"); err == nil {
		t.Fatal("ParseAlgo accepted garbage")
	}
}

// TestMerge3MixedLayouts drives the delta-overlay merge across the full
// base × ins × del layout matrix — including the word-parallel bitset
// base path — against a map model.
func TestMerge3MixedLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		base := clusteredSet(rng, 3, 50, 60, 1<<14)
		del := randomSubset(rng, base, len(base)/3)
		ins := randomSet(rng, 1+rng.Intn(100), 1<<14)
		// Keep the overlay invariant: ins ∩ del = ∅.
		delSet := map[uint32]bool{}
		for _, v := range del {
			delSet[v] = true
		}
		ins2 := ins[:0]
		for _, v := range ins {
			if !delSet[v] {
				ins2 = append(ins2, v)
			}
		}
		ins = ins2

		model := map[uint32]bool{}
		for _, v := range base {
			model[v] = true
		}
		for _, v := range del {
			delete(model, v)
		}
		for _, v := range ins {
			model[v] = true
		}
		var want []uint32
		for v := range model {
			want = append(want, v)
		}
		want = sortedUnique(want)

		for _, sb := range allLayouts(base) {
			for _, si := range allLayouts(ins) {
				for _, sd := range allLayouts(del) {
					got := DefaultKernel.Merge3(sb, si, sd)
					if !sliceEq(got, want) {
						t.Fatalf("trial %d merge3(%s,%s,%s):\n got %v\nwant %v",
							trial, sb.Layout(), si.Layout(), sd.Layout(), got, want)
					}
				}
			}
		}
	}
}

// TestMerge3BitsetHighRange guards the word-span arithmetic near 2^32:
// a bitset base whose last word touches the top of the value space must
// not wrap the union span.
func TestMerge3BitsetHighRange(t *testing.T) {
	const top = 1<<32 - 1
	base := NewBitset([]uint32{top - 200, top - 100, top - 1, top})
	ins := FromSorted([]uint32{top - 150, top - 2})
	del := FromSorted([]uint32{top - 100})
	got := DefaultKernel.Merge3(base, ins, del)
	want := []uint32{top - 200, top - 150, top - 2, top - 1, top}
	if !sliceEq(got, want) {
		t.Fatalf("merge3 near 2^32: got %v want %v", got, want)
	}
}

// randomSubset picks n distinct members of vals.
func randomSubset(rng *rand.Rand, vals []uint32, n int) []uint32 {
	if n > len(vals) {
		n = len(vals)
	}
	idx := rng.Perm(len(vals))[:n]
	out := make([]uint32, 0, n)
	for _, i := range idx {
		out = append(out, vals[i])
	}
	return sortedUnique(out)
}

// TestChooseLayoutComposite checks the adaptive band: clustered density
// selects composite, uniform density still selects bitset, and uniform
// sparsity stays uint.
func TestChooseLayoutComposite(t *testing.T) {
	// Two fully dense 256-blocks far apart: globally sparse (range ≫
	// 256·card is false here — range is 1<<20 ≈ 2048·card), locally dense.
	var clustered []uint32
	for i := uint32(0); i < BlockBits; i++ {
		clustered = append(clustered, i, 1<<20+i)
	}
	clustered = sortedUnique(clustered)
	if got := ChooseLayout(clustered); got != Composite {
		t.Fatalf("clustered → %s, want composite", got)
	}
	// The same cardinality spread uniformly: uint.
	var uniform []uint32
	for i := uint32(0); i < 512; i++ {
		uniform = append(uniform, i*3000)
	}
	if got := ChooseLayout(uniform); got != Uint {
		t.Fatalf("uniform sparse → %s, want uint", got)
	}
	// BuildAuto materializes the adaptive choice.
	if got := BuildAuto(clustered); got.Layout() != Composite {
		t.Fatalf("BuildAuto(clustered) layout = %s", got.Layout())
	}
}

// FuzzIntersectKernels cross-checks every layout pair and algorithm
// against the scalar merge oracle on fuzzer-chosen inputs.
func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200}, []byte{2, 3, 5, 250}, uint8(0))
	f.Add([]byte{0, 0, 0, 0, 1, 1}, []byte{255, 254, 253}, uint8(1))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, mode uint8) {
		decode := func(raw []byte) []uint32 {
			var vals []uint32
			var v uint32
			for i, x := range raw {
				// Variable stride keeps runs and gaps both reachable.
				v += uint32(x)%97 + 1
				if i%7 == 0 {
					v += uint32(x) << 6
				}
				vals = append(vals, v)
			}
			return sortedUnique(vals)
		}
		av, bv := decode(rawA), decode(rawB)
		want := oracleIntersect(av, bv)
		cfg := Config{Algo: Algo(mode % 4), BitByBit: mode%2 == 1}
		k := NewKernel(cfg)
		for _, sa := range allLayouts(av) {
			for _, sb := range allLayouts(bv) {
				if got := k.Intersect(sa, sb); !sliceEq(got.Slice(), want) {
					t.Fatalf("%s∩%s cfg %+v: got %v want %v",
						sa.Layout(), sb.Layout(), cfg, got.Slice(), want)
				}
				if n := k.Count(sa, sb); n != len(want) {
					t.Fatalf("%s∩%s cfg %+v: count %d want %d",
						sa.Layout(), sb.Layout(), cfg, n, len(want))
				}
			}
		}
	})
}

// --- pairwise kernel micro-benchmarks (CI bench-kernels step) -----------

func benchIntersectPair(b *testing.B, a, c Set) {
	k := NewKernel(Config{})
	var buf []uint32
	var wbuf []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, buf, wbuf = k.IntersectBuf(a, c, buf, wbuf)
	}
}

func benchPairInputs() (dense, noise []uint32) {
	rng := rand.New(rand.NewSource(77))
	dense = clusteredSet(rng, 16, 200, 500, 1<<16)
	noise = clusteredSet(rng, 16, 200, 500, 1<<16)
	return
}

func BenchmarkIntersectPairUintUint(b *testing.B) {
	av, bv := benchPairInputs()
	benchIntersectPair(b, FromSorted(av), FromSorted(bv))
}

func BenchmarkIntersectPairUintBitset(b *testing.B) {
	av, bv := benchPairInputs()
	benchIntersectPair(b, FromSorted(av), NewBitset(bv))
}

func BenchmarkIntersectPairBitsetBitset(b *testing.B) {
	av, bv := benchPairInputs()
	benchIntersectPair(b, NewBitset(av), NewBitset(bv))
}

func BenchmarkIntersectPairCompositeComposite(b *testing.B) {
	av, bv := benchPairInputs()
	benchIntersectPair(b, NewComposite(av), NewComposite(bv))
}
