package set

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestMerge3(t *testing.T) {
	cases := []struct {
		base, ins, del []uint32
		want           []uint32
	}{
		{nil, nil, nil, nil},
		{[]uint32{1, 2, 3}, nil, nil, []uint32{1, 2, 3}},
		{nil, []uint32{4, 5}, []uint32{4}, []uint32{4, 5}}, // ins wins over del
		{[]uint32{1, 2, 3}, []uint32{2, 4}, []uint32{3}, []uint32{1, 2, 4}},
		{[]uint32{10, 20}, []uint32{5, 30}, []uint32{10, 20}, []uint32{5, 30}},
		{[]uint32{1, 2, 3}, nil, []uint32{1, 2, 3, 4}, nil},
	}
	for _, c := range cases {
		got := DefaultKernel.Merge3(FromSorted(c.base), FromSorted(c.ins), FromSorted(c.del))
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Merge3(%v,%v,%v) = %v, want %v", c.base, c.ins, c.del, got, c.want)
		}
	}
}

func TestMerge3RandomAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randSet := func(n, space int) []uint32 {
		m := map[uint32]bool{}
		for i := 0; i < n; i++ {
			m[uint32(rng.Intn(space))] = true
		}
		out := make([]uint32, 0, len(m))
		for v := range m {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for iter := 0; iter < 200; iter++ {
		b, i, d := randSet(rng.Intn(40), 64), randSet(rng.Intn(20), 64), randSet(rng.Intn(20), 64)
		want := map[uint32]bool{}
		for _, v := range b {
			want[v] = true
		}
		for _, v := range d {
			delete(want, v)
		}
		for _, v := range i {
			want[v] = true
		}
		var wantS []uint32
		for v := range want {
			wantS = append(wantS, v)
		}
		sort.Slice(wantS, func(x, y int) bool { return wantS[x] < wantS[y] })
		got := DefaultKernel.Merge3(FromSorted(b), FromSorted(i), FromSorted(d))
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, wantS) {
			t.Fatalf("iter %d: Merge3(%v,%v,%v) = %v, want %v", iter, b, i, d, got, wantS)
		}
	}
}
