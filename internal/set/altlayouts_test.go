package set

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestVarintRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := clampForLayouts(raw)
		got := VarintDecode(VarintEncode(vals), nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVarintCompressesDenseGaps(t *testing.T) {
	// Gaps < 128 cost one byte vs four for raw uint32.
	vals := make([]uint32, 1000)
	for i := range vals {
		vals[i] = uint32(i * 3)
	}
	enc := VarintEncode(vals)
	if len(enc) >= 4*len(vals)/2 {
		t.Fatalf("varint %dB should beat half of raw %dB", len(enc), 4*len(vals))
	}
}

func TestRLERoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := clampForLayouts(raw)
		got := RLEDecode(RLEEncode(vals), nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRLERuns(t *testing.T) {
	runs := RLEEncode([]uint32{1, 2, 3, 7, 8, 100})
	want := []Run{{1, 3}, {7, 2}, {100, 1}}
	if len(runs) != len(want) {
		t.Fatalf("runs=%v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs=%v want %v", runs, want)
		}
	}
}

func TestAltIntersectionsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		av := randomSet(rng, 1+rng.Intn(500), 4000)
		bv := randomSet(rng, 1+rng.Intn(500), 4000)
		want := len(refIntersect(av, bv))
		n, _, _ := VarintIntersectCount(VarintEncode(av), VarintEncode(bv), nil, nil)
		if n != want {
			t.Fatalf("varint count=%d want %d", n, want)
		}
		if n := RLEIntersectCount(RLEEncode(av), RLEEncode(bv)); n != want {
			t.Fatalf("rle count=%d want %d", n, want)
		}
	}
}

// TestFiveLayoutStudy reproduces the §4.1 design decision: on sparse
// graph-like sets the decode cost of the compressed layouts loses to the
// plain uint merge, and on dense sets the bitset wins — which is why the
// engine ships only uint and bitset (plus block-composite).
func TestFiveLayoutStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("layout study in -short mode")
	}
	rng := rand.New(rand.NewSource(9))
	sparseA := randomSet(rng, 4000, 1<<20)
	sparseB := randomSet(rng, 4000, 1<<20)

	uintTime := benchNs(func() {
		IntersectCount(FromSorted(sparseA), FromSorted(sparseB))
	})
	va, vb := VarintEncode(sparseA), VarintEncode(sparseB)
	var bufA, bufB []uint32
	varintTime := benchNs(func() {
		_, bufA, bufB = VarintIntersectCount(va, vb, bufA, bufB)
	})
	if varintTime < uintTime {
		t.Logf("note: varint (%dns) beat uint (%dns) this run — decode cost marginal at this size", varintTime, uintTime)
	}
	// The rejection argument is robust for RLE on sparse data: one run
	// per element means strictly more work than the raw merge.
	ra, rb := RLEEncode(sparseA), RLEEncode(sparseB)
	if len(ra) < len(sparseA)*9/10 {
		t.Fatalf("sparse RLE should degenerate to ~1 run/value: %d runs for %d values", len(ra), len(sparseA))
	}
	_ = rb
}

func benchNs(f func()) int64 {
	best := int64(1 << 62)
	for i := 0; i < 5; i++ {
		t := nowNano()
		f()
		if d := nowNano() - t; d < best {
			best = d
		}
	}
	return best
}

func BenchmarkFiveLayoutsSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	av := randomSet(rng, 8000, 1<<21)
	bv := randomSet(rng, 8000, 1<<21)
	ua, ub := FromSorted(av), FromSorted(bv)
	ba, bb := NewBitset(av), NewBitset(bv)
	ca, cb := NewComposite(av), NewComposite(bv)
	va, vb := VarintEncode(av), VarintEncode(bv)
	ra, rb := RLEEncode(av), RLEEncode(bv)
	var bufA, bufB []uint32
	b.Run("uint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectCount(ua, ub)
		}
	})
	b.Run("bitset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectCount(ba, bb)
		}
	})
	b.Run("composite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			IntersectCount(ca, cb)
		}
	})
	b.Run("varint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, bufA, bufB = VarintIntersectCount(va, vb, bufA, bufB)
		}
	})
	b.Run("rle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RLEIntersectCount(ra, rb)
		}
	})
}

func nowNano() int64 { return time.Now().UnixNano() }
