package set

// The paper evaluated five set layouts from the literature before
// settling on uint and bitset (§4: "We implemented and tested five
// different set layouts previously proposed in the literature [6,8,16,40].
// We found that the simple uint and bitset layouts yield the highest
// performance in our experiments"). This file implements the two rejected
// compressed candidates — delta-encoded variable-byte (varint) and
// run-length encoding — as standalone codecs, so the rejection experiment
// is reproducible (BenchmarkAltLayouts in alt layout tests). They trade
// memory for decode work on every intersection, which is exactly why the
// engine does not use them.

// VarintEncode delta-encodes a strictly increasing set with LEB128
// variable-byte gaps (the Lemire et al. family of compressed layouts).
func VarintEncode(vals []uint32) []byte {
	out := make([]byte, 0, len(vals))
	prev := uint32(0)
	for i, v := range vals {
		gap := v - prev
		if i == 0 {
			gap = v
		}
		for gap >= 0x80 {
			out = append(out, byte(gap)|0x80)
			gap >>= 7
		}
		out = append(out, byte(gap))
		prev = v
	}
	return out
}

// VarintDecode reverses VarintEncode, appending into buf.
func VarintDecode(data []byte, buf []uint32) []uint32 {
	buf = buf[:0]
	var cur uint32
	var gap uint32
	shift := uint(0)
	first := true
	for _, b := range data {
		gap |= uint32(b&0x7f) << shift
		if b&0x80 != 0 {
			shift += 7
			continue
		}
		if first {
			cur = gap
			first = false
		} else {
			cur += gap
		}
		buf = append(buf, cur)
		gap, shift = 0, 0
	}
	return buf
}

// VarintIntersectCount intersects two varint-encoded sets by streaming
// decode + merge, using the caller's scratch buffers.
func VarintIntersectCount(a, b []byte, bufA, bufB []uint32) (int, []uint32, []uint32) {
	bufA = VarintDecode(a, bufA)
	bufB = VarintDecode(b, bufB)
	return countMerge(bufA, bufB), bufA, bufB
}

// Run is one maximal run of consecutive values [Start, Start+Len).
type Run struct {
	Start uint32
	Len   uint32
}

// RLEEncode run-length encodes a strictly increasing set.
func RLEEncode(vals []uint32) []Run {
	var runs []Run
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[j-1]+1 {
			j++
		}
		runs = append(runs, Run{Start: vals[i], Len: uint32(j - i)})
		i = j
	}
	return runs
}

// RLEDecode expands runs into values, appending into buf.
func RLEDecode(runs []Run, buf []uint32) []uint32 {
	buf = buf[:0]
	for _, r := range runs {
		for k := uint32(0); k < r.Len; k++ {
			buf = append(buf, r.Start+k)
		}
	}
	return buf
}

// RLEIntersectCount intersects two run-length encoded sets by run-overlap
// merge — efficient when runs are long, degenerate (one run per value)
// on the sparse neighborhoods that dominate graph data.
func RLEIntersectCount(a, b []Run) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, rb := a[i], b[j]
		endA := ra.Start + ra.Len
		endB := rb.Start + rb.Len
		lo := ra.Start
		if rb.Start > lo {
			lo = rb.Start
		}
		hi := endA
		if endB < hi {
			hi = endB
		}
		if hi > lo {
			n += int(hi - lo)
		}
		if endA <= endB {
			i++
		}
		if endB <= endA {
			j++
		}
	}
	return n
}

// RLEBytes is the memory footprint of the RLE encoding.
func RLEBytes(runs []Run) int { return 8 * len(runs) }
