package set

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refIntersect(a, b []uint32) []uint32 {
	m := make(map[uint32]bool, len(a))
	for _, v := range a {
		m[v] = true
	}
	var out []uint32
	for _, v := range b {
		if m[v] {
			out = append(out, v)
		}
	}
	return sortedUnique(out)
}

func sliceEq(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomSet(rng *rand.Rand, n, span int) []uint32 {
	if n > span {
		n = span
	}
	m := map[uint32]bool{}
	for len(m) < n {
		m[uint32(rng.Intn(span))] = true
	}
	var vals []uint32
	for v := range m {
		vals = append(vals, v)
	}
	return sortedUnique(vals)
}

// TestIntersectAllLayoutPairs checks a∩b across every layout combination
// against the map-based reference.
func TestIntersectAllLayoutPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		av := randomSet(rng, 1+rng.Intn(300), 1+rng.Intn(4000))
		bv := randomSet(rng, 1+rng.Intn(300), 1+rng.Intn(4000))
		want := refIntersect(av, bv)
		for _, sa := range allLayouts(av) {
			for _, sb := range allLayouts(bv) {
				got := Intersect(sa, sb)
				if !sliceEq(got.Slice(), want) {
					t.Fatalf("trial %d %s∩%s:\n got %v\nwant %v",
						trial, sa.Layout(), sb.Layout(), got.Slice(), want)
				}
				if n := IntersectCount(sa, sb); n != len(want) {
					t.Fatalf("trial %d %s∩%s count=%d want %d",
						trial, sa.Layout(), sb.Layout(), n, len(want))
				}
			}
		}
	}
}

// TestIntersectAlgorithmsAgree checks merge/shuffle/galloping give the same
// answer on uint inputs.
func TestIntersectAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	algos := []Algo{AlgoAuto, AlgoMerge, AlgoShuffle, AlgoGalloping}
	for trial := 0; trial < 40; trial++ {
		// Include heavy cardinality skew to exercise galloping.
		na := 1 + rng.Intn(20)
		nb := 1 + rng.Intn(3000)
		av := randomSet(rng, na, 10000)
		bv := randomSet(rng, nb, 10000)
		want := refIntersect(av, bv)
		sa, sb := FromSorted(av), FromSorted(bv)
		for _, algo := range algos {
			got := NewKernel(Config{Algo: algo}).Intersect(sa, sb)
			if !sliceEq(got.Slice(), want) {
				t.Fatalf("algo %s: got %v want %v", algo, got.Slice(), want)
			}
			if n := NewKernel(Config{Algo: algo}).Count(sa, sb); n != len(want) {
				t.Fatalf("algo %s: count %d want %d", algo, n, len(want))
			}
		}
	}
}

// TestBitByBitMatchesWordParallel validates the "-S" ablation path.
func TestBitByBitMatchesWordParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		av := randomSet(rng, 200, 2000)
		bv := randomSet(rng, 200, 2000)
		sa, sb := NewBitset(av), NewBitset(bv)
		fast := Intersect(sa, sb)
		slow := NewKernel(Config{BitByBit: true}).Intersect(sa, sb)
		if !Equal(fast, slow) {
			t.Fatalf("bit-by-bit mismatch: %v vs %v", fast.Slice(), slow.Slice())
		}
		if NewKernel(Config{BitByBit: true}).Count(sa, sb) != fast.Card() {
			t.Fatal("bit-by-bit count mismatch")
		}
	}
}

func TestIntersectEmpty(t *testing.T) {
	s := FromSorted([]uint32{1, 2, 3})
	if got := Intersect(s, Empty()); !got.IsEmpty() {
		t.Fatalf("s∩∅ = %v", got.Slice())
	}
	if got := Intersect(Empty(), s); !got.IsEmpty() {
		t.Fatalf("∅∩s = %v", got.Slice())
	}
	if IntersectCount(s, Empty()) != 0 {
		t.Fatal("count(s∩∅) != 0")
	}
}

func TestIntersectDisjointRanges(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	b := []uint32{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007}
	for _, sa := range allLayouts(a) {
		for _, sb := range allLayouts(b) {
			if got := Intersect(sa, sb); !got.IsEmpty() {
				t.Fatalf("%s∩%s nonempty: %v", sa.Layout(), sb.Layout(), got.Slice())
			}
		}
	}
}

func TestIntersectResultLayouts(t *testing.T) {
	dense := make([]uint32, 512)
	for i := range dense {
		dense[i] = uint32(i)
	}
	bb := Intersect(NewBitset(dense), NewBitset(dense))
	if bb.Layout() != Bitset {
		t.Fatalf("bitset∩bitset layout = %s", bb.Layout())
	}
	ub := Intersect(FromSorted(dense), NewBitset(dense))
	if ub.Layout() != Uint {
		t.Fatalf("uint∩bitset layout = %s (paper stores it as uint)", ub.Layout())
	}
	cc := Intersect(NewComposite(dense), NewComposite(dense))
	if cc.Layout() != Composite {
		t.Fatalf("composite∩composite layout = %s", cc.Layout())
	}
}

// Property test: intersection is commutative, idempotent and bounded by
// the min cardinality across all layout pairings.
func TestQuickIntersectLaws(t *testing.T) {
	f := func(rawA, rawB []uint32) bool {
		av, bv := clampForLayouts(rawA), clampForLayouts(rawB)
		for _, sa := range allLayouts(av) {
			for _, sb := range allLayouts(bv) {
				ab := Intersect(sa, sb)
				ba := Intersect(sb, sa)
				if !Equal(ab, ba) {
					return false
				}
				if ab.Card() > sa.Card() || ab.Card() > sb.Card() {
					return false
				}
				// a∩a == a
				if !Equal(Intersect(sa, sa), sa) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		av := randomSet(rng, 1+rng.Intn(200), 2000)
		bv := randomSet(rng, 1+rng.Intn(200), 2000)
		refU := map[uint32]bool{}
		for _, v := range av {
			refU[v] = true
		}
		for _, v := range bv {
			refU[v] = true
		}
		refD := map[uint32]bool{}
		for _, v := range av {
			refD[v] = true
		}
		for _, v := range bv {
			delete(refD, v)
		}
		for _, sa := range allLayouts(av) {
			for _, sb := range allLayouts(bv) {
				u := DefaultKernel.Union(sa, sb)
				if u.Card() != len(refU) {
					t.Fatalf("union card %d want %d", u.Card(), len(refU))
				}
				u.ForEach(func(_ int, v uint32) {
					if !refU[v] {
						t.Fatalf("union spurious %d", v)
					}
				})
				d := DefaultKernel.Difference(sa, sb)
				if d.Card() != len(refD) {
					t.Fatalf("%s\\%s diff card %d want %d", sa.Layout(), sb.Layout(), d.Card(), len(refD))
				}
				d.ForEach(func(_ int, v uint32) {
					if !refD[v] {
						t.Fatalf("diff spurious %d", v)
					}
				})
			}
		}
	}
}

func TestGallopSearch(t *testing.T) {
	b := []uint32{2, 4, 6, 8, 10, 12, 14, 16, 100, 1000}
	cases := []struct {
		lo   int
		v    uint32
		want int
	}{
		{0, 0, 0}, {0, 2, 0}, {0, 3, 1}, {0, 16, 7}, {0, 17, 8},
		{0, 1000, 9}, {0, 1001, 10}, {5, 12, 5}, {5, 13, 6}, {9, 2000, 10},
	}
	for _, c := range cases {
		if got := gallopSearch(b, c.lo, c.v); got != c.want {
			t.Fatalf("gallopSearch(lo=%d,v=%d)=%d want %d", c.lo, c.v, got, c.want)
		}
	}
}
