package set

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedUnique(vals []uint32) []uint32 {
	if len(vals) == 0 {
		return nil
	}
	cp := append([]uint32(nil), vals...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, v := range cp[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// clampForLayouts bounds quick-generated values: a bitset over the raw
// uint32 range would allocate range/8 bytes, so property tests restrict
// the universe to 22 bits.
func clampForLayouts(vals []uint32) []uint32 {
	cp := make([]uint32, len(vals))
	for i, v := range vals {
		cp[i] = v & ((1 << 22) - 1)
	}
	return sortedUnique(cp)
}

func allLayouts(vals []uint32) []Set {
	return []Set{
		FromSorted(vals),
		NewBitset(vals),
		NewComposite(vals),
	}
}

func TestEmptySet(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() || e.Card() != 0 {
		t.Fatalf("empty set: card=%d", e.Card())
	}
	if e.Contains(0) || e.Contains(42) {
		t.Fatal("empty set contains elements")
	}
	if got := e.Slice(); len(got) != 0 {
		t.Fatalf("empty slice = %v", got)
	}
}

func TestFromUnsortedDedups(t *testing.T) {
	s := FromUnsorted([]uint32{5, 1, 5, 3, 1, 9})
	want := []uint32{1, 3, 5, 9}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestLayoutsAgreeOnBasics(t *testing.T) {
	vals := []uint32{0, 1, 7, 63, 64, 65, 255, 256, 300, 1000, 4095, 4096, 70000}
	for _, s := range allLayouts(vals) {
		t.Run(s.Layout().String(), func(t *testing.T) {
			if s.Card() != len(vals) {
				t.Fatalf("card=%d want %d", s.Card(), len(vals))
			}
			if s.Min() != 0 || s.Max() != 70000 {
				t.Fatalf("min/max = %d/%d", s.Min(), s.Max())
			}
			for i, v := range vals {
				r, ok := s.Rank(v)
				if !ok || r != i {
					t.Fatalf("Rank(%d)=(%d,%v) want (%d,true)", v, r, ok, i)
				}
				if !s.Contains(v) {
					t.Fatalf("missing %d", v)
				}
			}
			for _, v := range []uint32{2, 62, 66, 257, 4097, 99999} {
				if s.Contains(v) {
					t.Fatalf("spurious %d", v)
				}
			}
			got := s.Slice()
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("Slice mismatch at %d: %d vs %d", i, got[i], vals[i])
				}
			}
		})
	}
}

func TestForEachRanks(t *testing.T) {
	vals := []uint32{3, 64, 128, 129, 1000}
	for _, s := range allLayouts(vals) {
		i := 0
		s.ForEach(func(rank int, v uint32) {
			if rank != i {
				t.Fatalf("%s: rank %d want %d", s.Layout(), rank, i)
			}
			if v != vals[i] {
				t.Fatalf("%s: val %d want %d", s.Layout(), v, vals[i])
			}
			i++
		})
		if i != len(vals) {
			t.Fatalf("%s: visited %d of %d", s.Layout(), i, len(vals))
		}
	}
}

func TestForEachUntilStops(t *testing.T) {
	vals := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	for _, s := range allLayouts(vals) {
		n := 0
		s.ForEachUntil(func(_ int, _ uint32) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Fatalf("%s: visited %d want 3", s.Layout(), n)
		}
	}
}

func TestChooseLayout(t *testing.T) {
	// Dense: range == card → bitset.
	dense := make([]uint32, 1000)
	for i := range dense {
		dense[i] = uint32(i)
	}
	if got := ChooseLayout(dense); got != Bitset {
		t.Fatalf("dense → %s, want bitset", got)
	}
	// Sparse: range = 10^6 × card → uint.
	sparse := []uint32{0, 1e6, 2e6, 3e6, 4e6, 5e6}
	if got := ChooseLayout(sparse); got != Uint {
		t.Fatalf("sparse → %s, want uint", got)
	}
	// Tiny sets stay uint regardless of density.
	if got := ChooseLayout([]uint32{1, 2}); got != Uint {
		t.Fatalf("tiny → %s, want uint", got)
	}
	// Exactly at the threshold: range = 256·card → bitset.
	border := []uint32{0, 255, 511, 1023} // card 4, range 1024 = 4·256
	if got := ChooseLayout(border); got != Bitset {
		t.Fatalf("border → %s, want bitset", got)
	}
}

func TestBitsetRankAcrossWords(t *testing.T) {
	// Values spread over many words exercise the cum[] prefix table.
	var vals []uint32
	for i := uint32(0); i < 100; i++ {
		vals = append(vals, i*97)
	}
	s := NewBitset(vals)
	for i, v := range vals {
		r, ok := s.Rank(v)
		if !ok || r != i {
			t.Fatalf("Rank(%d)=(%d,%v) want (%d,true)", v, r, ok, i)
		}
	}
	if _, ok := s.Rank(1); ok {
		t.Fatal("Rank(1) should be absent")
	}
}

func TestMemBytes(t *testing.T) {
	dense := make([]uint32, 256)
	for i := range dense {
		dense[i] = uint32(i)
	}
	u := FromSorted(dense)
	b := NewBitset(dense)
	if u.MemBytes() != 1024 {
		t.Fatalf("uint mem=%d want 1024", u.MemBytes())
	}
	if b.MemBytes() >= u.MemBytes() {
		t.Fatalf("bitset (%dB) should beat uint (%dB) on dense data",
			b.MemBytes(), u.MemBytes())
	}
}

func TestEqualAcrossLayouts(t *testing.T) {
	vals := []uint32{10, 20, 30, 400, 5000}
	ls := allLayouts(vals)
	for _, a := range ls {
		for _, b := range ls {
			if !Equal(a, b) {
				t.Fatalf("Equal(%s,%s)=false", a.Layout(), b.Layout())
			}
		}
	}
	other := FromSorted([]uint32{10, 20, 30, 400, 5001})
	if Equal(ls[0], other) {
		t.Fatal("Equal on different sets")
	}
}

// Property: every layout round-trips arbitrary value sets.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := clampForLayouts(raw)
		for _, s := range allLayouts(vals) {
			got := s.Slice()
			if len(got) != len(vals) {
				return false
			}
			for i := range vals {
				if got[i] != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains agrees with a map across layouts.
func TestQuickContains(t *testing.T) {
	f := func(raw []uint32, probes []uint32) bool {
		vals := clampForLayouts(raw)
		ref := make(map[uint32]bool, len(vals))
		for _, v := range vals {
			ref[v] = true
		}
		for _, s := range allLayouts(vals) {
			for _, p := range probes {
				if s.Contains(p) != ref[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAutoMatchesChooseLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		span := 1 + rng.Intn(1<<20)
		m := map[uint32]bool{}
		for len(m) < n {
			m[uint32(rng.Intn(span))] = true
		}
		var vals []uint32
		for v := range m {
			vals = append(vals, v)
		}
		vals = sortedUnique(vals)
		s := BuildAuto(vals)
		if s.Layout() != ChooseLayout(vals) {
			t.Fatalf("BuildAuto layout %s != ChooseLayout %s", s.Layout(), ChooseLayout(vals))
		}
		if !Equal(s, FromSorted(vals)) {
			t.Fatal("BuildAuto lost values")
		}
	}
}
