package set

// Union computes a ∪ b. Dense pairs use word-level OR; mixed pairs merge
// decoded streams. Union is used by the recursion executor to grow the
// recursive relation (§3.3 "Recursion").
func Union(a, b Set) Set {
	if a.card == 0 {
		return b
	}
	if b.card == 0 {
		return a
	}
	if a.layout == Bitset && b.layout == Bitset {
		lo := a.base
		if b.base < lo {
			lo = b.base
		}
		hiA := a.base + uint32(len(a.words)*64)
		hiB := b.base + uint32(len(b.words)*64)
		hi := hiA
		if hiB > hi {
			hi = hiB
		}
		out := make([]uint64, (hi-lo)/64)
		copyWords(out, lo, a)
		orWords(out, lo, b)
		return fromBitsetWords(lo, out)
	}
	return FromSorted(mergeUnion(a.Slice(), b.Slice()))
}

func copyWords(dst []uint64, lo uint32, s Set) {
	off := (s.base - lo) / 64
	copy(dst[off:], s.words)
}

func orWords(dst []uint64, lo uint32, s Set) {
	off := (s.base - lo) / 64
	for i, w := range s.words {
		dst[off+uint32(i)] |= w
	}
}

func mergeUnion(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av == bv:
			out = append(out, av)
			i++
			j++
		case av < bv:
			out = append(out, av)
			i++
		default:
			out = append(out, bv)
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Difference computes a \ b. It is used by the seminaive recursion
// executor to form delta frontiers.
func Difference(a, b Set) Set {
	if a.card == 0 || b.card == 0 {
		return a
	}
	if a.layout == Bitset && b.layout == Bitset {
		out := make([]uint64, len(a.words))
		copy(out, a.words)
		lo, hi := a.base, a.base+uint32(len(a.words)*64)
		bLo, bHi := b.base, b.base+uint32(len(b.words)*64)
		from, to := max32(lo, bLo), min32(hi, bHi)
		for v := from; v < to; v += 64 {
			out[(v-lo)/64] &^= b.words[(v-bLo)/64]
		}
		return fromBitsetWords(lo, out)
	}
	var out []uint32
	a.ForEach(func(_ int, v uint32) {
		if !b.Contains(v) {
			out = append(out, v)
		}
	})
	return FromSorted(out)
}

// Merge3 computes (base \ del) ∪ ins as a sorted values slice in one
// pass. It is the per-level set operation of the delta-trie overlay
// merge: del carries tombstoned values, ins freshly inserted ones, and
// the result is the value set a query sees at that trie level. The
// returned slice is freshly allocated (except when it can alias one
// input wholesale) and safe to hand to BuildLayout.
func Merge3(base, ins, del Set) []uint32 {
	if ins.card == 0 && del.card == 0 {
		return base.Slice()
	}
	if base.card == 0 {
		return ins.Slice()
	}
	b, i, d := base.Slice(), ins.Slice(), del.Slice()
	out := make([]uint32, 0, len(b)+len(i))
	bi, ii, di := 0, 0, 0
	for bi < len(b) || ii < len(i) {
		// Values present in ins always survive (ins ∩ del = ∅ by the
		// overlay invariant; even without it, insert-after-delete wins).
		if ii < len(i) && (bi >= len(b) || i[ii] <= b[bi]) {
			v := i[ii]
			ii++
			if bi < len(b) && b[bi] == v {
				bi++
			}
			out = append(out, v)
			continue
		}
		v := b[bi]
		bi++
		for di < len(d) && d[di] < v {
			di++
		}
		if di < len(d) && d[di] == v {
			continue // tombstoned
		}
		out = append(out, v)
	}
	return out
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
