package set

import "math/bits"

// Union, Difference and Merge3 implementations behind the Kernel
// interface (kernel.go). Dense pairs run word-parallel (OR / ANDNOT);
// mixed pairs merge decoded streams.

func unionSets(a, b Set) Set {
	if a.card == 0 {
		return b
	}
	if b.card == 0 {
		return a
	}
	if a.layout == Bitset && b.layout == Bitset {
		lo := a.base
		if b.base < lo {
			lo = b.base
		}
		hiA := a.base + uint32(len(a.words)*64)
		hiB := b.base + uint32(len(b.words)*64)
		hi := hiA
		if hiB > hi {
			hi = hiB
		}
		out := make([]uint64, (hi-lo)/64)
		copyWords(out, lo, a)
		orWords(out, lo, b)
		return fromBitsetWords(lo, out)
	}
	return FromSorted(mergeUnion(a.Slice(), b.Slice()))
}

func copyWords(dst []uint64, lo uint32, s Set) {
	off := (s.base - lo) / 64
	copy(dst[off:], s.words)
}

func orWords(dst []uint64, lo uint32, s Set) {
	off := (s.base - lo) / 64
	for i, w := range s.words {
		dst[off+uint32(i)] |= w
	}
}

func mergeUnion(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		switch {
		case av == bv:
			out = append(out, av)
			i++
			j++
		case av < bv:
			out = append(out, av)
			i++
		default:
			out = append(out, bv)
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func differenceSets(a, b Set) Set {
	if a.card == 0 || b.card == 0 {
		return a
	}
	if a.layout == Bitset && b.layout == Bitset {
		out := make([]uint64, len(a.words))
		copy(out, a.words)
		lo, hi := a.base, a.base+uint32(len(a.words)*64)
		bLo, bHi := b.base, b.base+uint32(len(b.words)*64)
		from, to := max32(lo, bLo), min32(hi, bHi)
		for v := from; v < to; v += 64 {
			out[(v-lo)/64] &^= b.words[(v-bLo)/64]
		}
		return fromBitsetWords(lo, out)
	}
	var out []uint32
	a.ForEach(func(_ int, v uint32) {
		if !b.Contains(v) {
			out = append(out, v)
		}
	})
	return FromSorted(out)
}

// merge3 computes (base \ del) ∪ ins as a sorted values slice — the
// per-level set operation of the delta-trie overlay merge: del carries
// tombstoned values, ins freshly inserted ones, and the result is the
// value set a query sees at that trie level. The returned slice is
// freshly allocated (except when it can alias one input wholesale) and
// safe to hand to BuildLayout. A bitset base takes the word-parallel
// path regardless of the overlay layouts.
func merge3(base, ins, del Set) []uint32 {
	if ins.card == 0 && del.card == 0 {
		return base.Slice()
	}
	if base.card == 0 {
		return ins.Slice()
	}
	if base.layout == Bitset {
		return merge3Bitset(base, ins, del)
	}
	b, i, d := base.Slice(), ins.Slice(), del.Slice()
	out := make([]uint32, 0, len(b)+len(i))
	bi, ii, di := 0, 0, 0
	for bi < len(b) || ii < len(i) {
		// Values present in ins always survive (ins ∩ del = ∅ by the
		// overlay invariant; even without it, insert-after-delete wins).
		if ii < len(i) && (bi >= len(b) || i[ii] <= b[bi]) {
			v := i[ii]
			ii++
			if bi < len(b) && b[bi] == v {
				bi++
			}
			out = append(out, v)
			continue
		}
		v := b[bi]
		bi++
		for di < len(d) && d[di] < v {
			di++
		}
		if di < len(d) && d[di] == v {
			continue // tombstoned
		}
		out = append(out, v)
	}
	return out
}

// merge3Bitset is the word-parallel merge3 for a bitset base: build the
// result bit-vector over the union span, clear tombstones (ANDNOT when
// del is also a bitset, per-bit otherwise), set inserts (OR when ins is
// a bitset), then decode. For a dense base with a small overlay this is
// O(words + |overlay|) instead of decoding the whole base through the
// three-way merge; clears happen before sets, so insert-after-delete
// wins even without the overlay disjointness invariant.
func merge3Bitset(base, ins, del Set) []uint32 {
	// Span arithmetic in uint64: members near 2^32 would wrap the
	// exclusive upper bound in 32 bits.
	lo64 := uint64(base.base)
	hi64 := uint64(base.base) + uint64(len(base.words))*64
	if ins.card > 0 {
		if m := uint64(ins.Min() &^ 63); m < lo64 {
			lo64 = m
		}
		if x := uint64(ins.Max())/64*64 + 64; x > hi64 {
			hi64 = x
		}
	}
	lo := uint32(lo64)
	words := make([]uint64, (hi64-lo64)/64)
	copyWords(words, lo, base)
	if del.card > 0 {
		if del.layout == Bitset {
			dLo64 := uint64(del.base)
			from, to := dLo64, dLo64+uint64(len(del.words))*64
			if lo64 > from {
				from = lo64
			}
			if hi64 < to {
				to = hi64
			}
			for v := from; v < to; v += 64 {
				words[(v-lo64)/64] &^= del.words[(v-dLo64)/64]
			}
		} else {
			del.ForEach(func(_ int, v uint32) {
				if uint64(v) >= lo64 && uint64(v) < hi64 {
					words[(v-lo)/64] &^= 1 << ((v - lo) % 64)
				}
			})
		}
	}
	if ins.card > 0 {
		if ins.layout == Bitset {
			orWords(words, lo, ins)
		} else {
			ins.ForEach(func(_ int, v uint32) {
				words[(v-lo)/64] |= 1 << ((v - lo) % 64)
			})
		}
	}
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	out := make([]uint32, 0, n)
	for wi, w := range words {
		vbase := lo + uint32(wi*64)
		for w != 0 {
			out = append(out, vbase+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
