package set

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"unsafe"
)

// Binary (de)serialization of the flat set state, used by the snapshot
// segments of internal/storage. Encodings are little-endian and 8-byte
// aligned so a decoder working over an mmap'd segment can alias the
// payload arrays ([]uint32 data, []uint64 words) directly into the page
// cache instead of copying them.
//
// Layout of one encoded set (offsets from the encoding start, which must
// itself be 8-byte aligned):
//
//	u32 layout tag | u32 cardinality
//	Uint (tag 0):   card × u32 values, padded to 8 bytes
//	Bitset (tag 1): u32 base | u32 nwords, nwords × u64 words,
//	                nwords × u32 cum, padded to 8 bytes
//	Composite (tag 3, native block form):
//	                u32 nblocks | u32 ndense
//	                nblocks × (u32 id | u32 info), info = 1<<31 for a
//	                  dense block, else the sparse length
//	                ndense × 4 u64 dense words (block order)
//	                total-sparse × u16 offsets, padded to 8 bytes
//
// Tag 2 is the legacy composite encoding (card × u32 values, blocks
// re-chosen deterministically on decode); the decoder still accepts it
// so pre-existing snapshots restore, but the writer always emits the
// native form, whose dense words and sparse offsets alias the mmap'd
// segment instead of being rebuilt.
//
// The empty set encodes as {Uint, 0}.

// compositeNativeTag is the wire tag of the native block-form composite
// encoding. It is distinct from uint32(Composite) (the legacy value-list
// tag, 2) so decoders distinguish the two generations.
const compositeNativeTag = 3

// blockDenseFlag marks a dense block in the native composite header.
const blockDenseFlag = 1 << 31

// AppendTo appends the binary encoding of s to dst and returns the
// extended slice. len(dst) must be a multiple of 8 (encodings are
// aligned back to back).
func (s Set) AppendTo(dst []byte) []byte {
	if len(dst)%8 != 0 {
		panic(fmt.Sprintf("set: AppendTo at misaligned offset %d", len(dst)))
	}
	if s.layout == Composite {
		dst = AppendUint32(dst, compositeNativeTag)
	} else {
		dst = AppendUint32(dst, uint32(s.layout))
	}
	dst = AppendUint32(dst, uint32(s.card))
	switch s.layout {
	case Uint:
		for _, v := range s.data {
			dst = AppendUint32(dst, v)
		}
	case Bitset:
		dst = AppendUint32(dst, s.base)
		dst = AppendUint32(dst, uint32(len(s.words)))
		for _, w := range s.words {
			dst = AppendUint64(dst, w)
		}
		cum := s.cum
		if cum == nil {
			// Transient (intersection-result) bitsets skip cum; stored
			// form always carries it so a restored set has O(1) rank.
			cum = make([]uint32, len(s.words))
			n := uint32(0)
			for i, w := range s.words {
				cum[i] = n
				n += uint32(bits.OnesCount64(w))
			}
		}
		for _, c := range cum {
			dst = AppendUint32(dst, c)
		}
	case Composite:
		ndense := 0
		for i := range s.blocks {
			if s.blocks[i].dense {
				ndense++
			}
		}
		dst = AppendUint32(dst, uint32(len(s.blocks)))
		dst = AppendUint32(dst, uint32(ndense))
		for i := range s.blocks {
			b := &s.blocks[i]
			dst = AppendUint32(dst, b.id)
			if b.dense {
				dst = AppendUint32(dst, blockDenseFlag)
			} else {
				dst = AppendUint32(dst, uint32(len(b.sparse)))
			}
		}
		for i := range s.blocks {
			if b := &s.blocks[i]; b.dense {
				for _, w := range b.words {
					dst = AppendUint64(dst, w)
				}
			}
		}
		for i := range s.blocks {
			if b := &s.blocks[i]; !b.dense {
				for _, o := range b.sparse {
					dst = append(dst, byte(o), byte(o>>8))
				}
			}
		}
	}
	return pad8(dst)
}

// EncodedSize returns the exact number of bytes AppendTo will emit for s.
func (s Set) EncodedSize() int {
	n := 8
	switch s.layout {
	case Uint:
		n += 4 * s.card
	case Bitset:
		n += 8 + 12*len(s.words)
	case Composite:
		n += 8 + 8*len(s.blocks)
		for i := range s.blocks {
			if b := &s.blocks[i]; b.dense {
				n += 8 * blockWords
			} else {
				n += 2 * len(b.sparse)
			}
		}
	}
	return align8(n)
}

// FromBuffers decodes one set from the front of b, returning the set and
// the number of bytes consumed. When b is 8-byte aligned (as mmap'd
// snapshot segments are), the decoded Uint data, Bitset words/cum and
// their derivatives alias b directly — zero copy; a misaligned buffer
// falls back to copying. The caller must keep b immutable and alive for
// the lifetime of the returned set.
func FromBuffers(b []byte) (Set, int, error) {
	if len(b) < 8 {
		return Set{}, 0, fmt.Errorf("set: truncated header (%d bytes)", len(b))
	}
	tag := binary.LittleEndian.Uint32(b)
	card := int(binary.LittleEndian.Uint32(b[4:]))
	if card < 0 {
		return Set{}, 0, fmt.Errorf("set: negative cardinality")
	}
	switch Layout(tag) {
	case Uint:
		size := align8(8 + 4*card)
		if len(b) < size {
			return Set{}, 0, fmt.Errorf("set: truncated uint payload (want %d bytes, have %d)", size, len(b))
		}
		if card == 0 {
			return Set{}, size, nil
		}
		data, err := aliasUint32s(b[8:], card)
		if err != nil {
			return Set{}, 0, err
		}
		return Set{layout: Uint, card: card, data: data}, size, nil
	case Bitset:
		if len(b) < 16 {
			return Set{}, 0, fmt.Errorf("set: truncated bitset header")
		}
		base := binary.LittleEndian.Uint32(b[8:])
		nw := int(binary.LittleEndian.Uint32(b[12:]))
		size := align8(16 + 12*nw)
		if nw < 0 || len(b) < size {
			return Set{}, 0, fmt.Errorf("set: truncated bitset payload (want %d bytes, have %d)", size, len(b))
		}
		words, err := aliasUint64s(b[16:], nw)
		if err != nil {
			return Set{}, 0, err
		}
		cum, err := aliasUint32s(b[16+8*nw:], nw)
		if err != nil {
			return Set{}, 0, err
		}
		return Set{layout: Bitset, card: card, base: base, words: words, cum: cum}, size, nil
	case Composite:
		// Legacy tag 2: plain value list. Rebuild the blocks from it
		// (deterministic: NewComposite's block choice depends only on the
		// values). Only pre-native snapshots carry this form.
		size := align8(8 + 4*card)
		if len(b) < size {
			return Set{}, 0, fmt.Errorf("set: truncated composite payload (want %d bytes, have %d)", size, len(b))
		}
		vals, err := aliasUint32s(b[8:], card)
		if err != nil {
			return Set{}, 0, err
		}
		return NewComposite(vals), size, nil
	case Layout(compositeNativeTag):
		if len(b) < 16 {
			return Set{}, 0, fmt.Errorf("set: truncated composite header")
		}
		nb := int(binary.LittleEndian.Uint32(b[8:]))
		ndense := int(binary.LittleEndian.Uint32(b[12:]))
		if nb < 0 || ndense < 0 || ndense > nb || len(b) < 16+8*nb {
			return Set{}, 0, fmt.Errorf("set: truncated composite block headers (%d blocks, %d bytes)", nb, len(b))
		}
		nsparse, seenDense := 0, 0
		for k := 0; k < nb; k++ {
			info := binary.LittleEndian.Uint32(b[16+8*k+4:])
			if info&blockDenseFlag != 0 {
				seenDense++
			} else if int(info) > BlockBits {
				return Set{}, 0, fmt.Errorf("set: composite sparse block length %d exceeds block size", info)
			} else {
				nsparse += int(info)
			}
		}
		if seenDense != ndense {
			return Set{}, 0, fmt.Errorf("set: composite dense count mismatch (header %d, blocks %d)", ndense, seenDense)
		}
		wordsOff := 16 + 8*nb
		sparseOff := wordsOff + 8*blockWords*ndense
		size := align8(sparseOff + 2*nsparse)
		if len(b) < size {
			return Set{}, 0, fmt.Errorf("set: truncated composite payload (want %d bytes, have %d)", size, len(b))
		}
		denseWords, err := aliasUint64s(b[wordsOff:], blockWords*ndense)
		if err != nil {
			return Set{}, 0, err
		}
		sparseAll, err := aliasUint16s(b[sparseOff:], nsparse)
		if err != nil {
			return Set{}, 0, err
		}
		blocks := make([]block, nb)
		wi, si := 0, 0
		for k := 0; k < nb; k++ {
			id := binary.LittleEndian.Uint32(b[16+8*k:])
			info := binary.LittleEndian.Uint32(b[16+8*k+4:])
			if info&blockDenseFlag != 0 {
				blocks[k] = block{id: id, dense: true, words: denseWords[wi : wi+blockWords]}
				wi += blockWords
			} else {
				blocks[k] = block{id: id, sparse: sparseAll[si : si+int(info)]}
				si += int(info)
			}
		}
		return Set{layout: Composite, card: card, blocks: blocks}, size, nil
	}
	return Set{}, 0, fmt.Errorf("set: unknown layout tag %d", tag)
}

// AppendValues appends up to max members of s to dst in increasing order
// (max <= 0 means all) — the bulk decode used by columnar result
// rendering. Uint sets copy their backing array directly.
func (s Set) AppendValues(dst []uint32, max int) []uint32 {
	if max <= 0 || max > s.card {
		max = s.card
	}
	if s.layout == Uint {
		return append(dst, s.data[:max]...)
	}
	n := 0
	s.ForEachUntil(func(_ int, v uint32) bool {
		dst = append(dst, v)
		n++
		return n < max
	})
	return dst
}

// align8 rounds n up to a multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// pad8 extends b with zero bytes to a multiple of 8.
func pad8(b []byte) []byte {
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	return b
}

// AppendUint32 appends v little-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// aliasUint32s views the first 4n bytes of b as a []uint32 without
// copying; misaligned buffers (never produced by the snapshot reader,
// which maps segments at page granularity) fall back to a copy.
func aliasUint32s(b []byte, n int) ([]uint32, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 4*n {
		return nil, fmt.Errorf("set: buffer too short for %d uint32s", n)
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%4 != 0 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
		return out, nil
	}
	return unsafe.Slice((*uint32)(p), n), nil
}

// aliasUint16s is aliasUint32s for []uint16 (composite sparse offsets).
func aliasUint16s(b []byte, n int) ([]uint16, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 2*n {
		return nil, fmt.Errorf("set: buffer too short for %d uint16s", n)
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%2 != 0 {
		out := make([]uint16, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint16(b[2*i:])
		}
		return out, nil
	}
	return unsafe.Slice((*uint16)(p), n), nil
}

// aliasUint64s is aliasUint32s for []uint64.
func aliasUint64s(b []byte, n int) ([]uint64, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 8*n {
		return nil, fmt.Errorf("set: buffer too short for %d uint64s", n)
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
		return out, nil
	}
	return unsafe.Slice((*uint64)(p), n), nil
}

// AliasFloat64s views the first 8n bytes of b as a []float64 without
// copying (same contract as the uint aliases); used by the trie snapshot
// decoder for annotation columns.
func AliasFloat64s(b []byte, n int) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	if len(b) < 8*n {
		return nil, fmt.Errorf("set: buffer too short for %d float64s", n)
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%8 != 0 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return out, nil
	}
	return unsafe.Slice((*float64)(p), n), nil
}

// AliasUint64s is the exported form of aliasUint64s for the trie snapshot
// decoder (node offset arrays).
func AliasUint64s(b []byte, n int) ([]uint64, error) { return aliasUint64s(b, n) }

// AliasUint32s is the exported form of aliasUint32s.
func AliasUint32s(b []byte, n int) ([]uint32, error) { return aliasUint32s(b, n) }
