package set

import (
	"fmt"
	"math/bits"
)

// Algo selects a uint∩uint intersection algorithm (§4.2).
type Algo uint8

const (
	// AlgoAuto is the paper's hybrid: galloping when the cardinality
	// ratio exceeds GallopRatio (cardinality skew), shuffle otherwise.
	AlgoAuto Algo = iota
	// AlgoMerge is the textbook scalar two-pointer merge.
	AlgoMerge
	// AlgoShuffle is the block-skipping merge standing in for the SIMD
	// shuffling algorithm (compares 4 keys per step, branch-free inner
	// window).
	AlgoShuffle
	// AlgoGalloping is exponential search from the smaller set into the
	// larger one; it satisfies the min property.
	AlgoGalloping
)

func (a Algo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoMerge:
		return "merge"
	case AlgoShuffle:
		return "shuffle"
	case AlgoGalloping:
		return "galloping"
	}
	return "algo?"
}

// ParseAlgo maps an algorithm name ("auto", "merge", "shuffle",
// "galloping"; "" means auto) to its Algo — the /query kernel hint and
// the CLI flags resolve through it.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "", "auto":
		return AlgoAuto, nil
	case "merge":
		return AlgoMerge, nil
	case "shuffle":
		return AlgoShuffle, nil
	case "galloping", "gallop":
		return AlgoGalloping, nil
	}
	return 0, fmt.Errorf("set: unknown intersection algorithm %q (want auto|merge|shuffle|galloping)", s)
}

// GallopRatio is the cardinality-skew threshold of the hybrid algorithm:
// the paper selects SIMD galloping when |larger| / |smaller| > 32.
const GallopRatio = 32

// Config parameterizes a Kernel (see NewKernel); the zero value is the
// full EmptyHeaded optimizer. The ablation flags reproduce the "-S",
// "-R" and "-RA" rows of Tables 8 and 11.
type Config struct {
	// Algo forces a specific uint∩uint algorithm. AlgoAuto applies the
	// hybrid cardinality-skew rule. Setting AlgoMerge reproduces the
	// "-A" (no algorithm optimization) ablations.
	Algo Algo
	// BitByBit disables data-parallel execution everywhere ("-S", no
	// SIMD): bitset words are processed one bit at a time and the
	// blocked shuffle merge degrades to the scalar merge. Layout and
	// algorithm *choices* (galloping on cardinality skew) are kept, as
	// in the paper's -S ablation.
	BitByBit bool
}

// --- uint ∩ uint ----------------------------------------------------------

// pickAlgo resolves the algorithm under cfg: the hybrid rule for
// AlgoAuto, then the "-S" degradation of the vectorized shuffle to the
// scalar merge.
func pickAlgo(a, b []uint32, cfg Config) Algo {
	algo := cfg.Algo
	if algo == AlgoAuto {
		la, lb := len(a), len(b)
		if la > lb {
			la, lb = lb, la
		}
		if la*GallopRatio < lb {
			algo = AlgoGalloping
		} else {
			algo = AlgoShuffle
		}
	}
	if cfg.BitByBit && algo == AlgoShuffle {
		algo = AlgoMerge
	}
	return algo
}

func intersectUintUint(a, b []uint32, algo Algo, out []uint32) []uint32 {
	switch algo {
	case AlgoGalloping:
		return intersectGalloping(a, b, out)
	case AlgoMerge:
		return intersectMerge(a, b, out)
	default:
		return intersectShuffle(a, b, out)
	}
}

func intersectCountUintUint(a, b []uint32, algo Algo) int {
	switch algo {
	case AlgoGalloping:
		return countGalloping(a, b)
	case AlgoMerge:
		return countMerge(a, b)
	default:
		return countShuffle(a, b)
	}
}

// intersectMerge is the scalar two-pointer merge intersection — the
// deliberately untouched "-RA" baseline and the oracle the differential
// fuzz tests compare every other kernel against.
func intersectMerge(a, b []uint32, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			out = append(out, av)
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return out
}

func countMerge(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			n++
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return n
}

// b2u is a branch-free bool→int conversion (the compiler emits SETcc,
// no jump); the branch-free merges advance both cursors with it so the
// hard-to-predict comparison never flushes the pipeline.
func b2u(b bool) int {
	if b {
		return 1
	}
	return 0
}

// intersectShuffle is the stand-in for the SIMD shuffling algorithm of
// Katsov/Schlegel et al.: it advances over the inputs in blocks of four
// keys, skipping whole blocks whose ranges cannot overlap, and merges
// overlapping blocks with a branch-free two-pointer loop (on equality
// both cursors advance via SETcc arithmetic instead of a branch). With
// 128-bit SSE registers the original compares 4×4 lanes per
// instruction; the block-skip plus branch-free window captures the same
// data-dependent fast path in portable Go.
func intersectShuffle(a, b []uint32, out []uint32) []uint32 {
	i, j := 0, 0
	la, lb := len(a), len(b)
	for i+4 <= la && j+4 <= lb {
		amax, bmax := a[i+3], b[j+3]
		if amax < b[j] { // disjoint: whole a-block below b-block
			i += 4
			continue
		}
		if bmax < a[i] { // disjoint: whole b-block below a-block
			j += 4
			continue
		}
		// Overlapping window: branch-free merge of the two blocks.
		ai, bj := i, j
		for ai < i+4 && bj < j+4 {
			av, bv := a[ai], b[bj]
			if av == bv {
				out = append(out, av)
			}
			ai += b2u(av <= bv)
			bj += b2u(bv <= av)
		}
		if amax <= bmax {
			i += 4
		}
		if bmax <= amax {
			j += 4
		}
	}
	// Branch-free scalar tail.
	for i < la && j < lb {
		av, bv := a[i], b[j]
		if av == bv {
			out = append(out, av)
		}
		i += b2u(av <= bv)
		j += b2u(bv <= av)
	}
	return out
}

func countShuffle(a, b []uint32) int {
	i, j, n := 0, 0, 0
	la, lb := len(a), len(b)
	for i+4 <= la && j+4 <= lb {
		amax, bmax := a[i+3], b[j+3]
		if amax < b[j] {
			i += 4
			continue
		}
		if bmax < a[i] {
			j += 4
			continue
		}
		ai, bj := i, j
		for ai < i+4 && bj < j+4 {
			av, bv := a[ai], b[bj]
			n += b2u(av == bv)
			ai += b2u(av <= bv)
			bj += b2u(bv <= av)
		}
		if amax <= bmax {
			i += 4
		}
		if bmax <= amax {
			j += 4
		}
	}
	for i < la && j < lb {
		av, bv := a[i], b[j]
		n += b2u(av == bv)
		i += b2u(av <= bv)
		j += b2u(bv <= av)
	}
	return n
}

// gallopSearch returns the smallest index k ≥ lo in b with b[k] ≥ v,
// using exponential (galloping) search.
func gallopSearch(b []uint32, lo int, v uint32) int {
	if lo >= len(b) || b[lo] >= v {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(b) && b[hi] < v {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(b) {
		hi = len(b)
	}
	// Binary search in (lo, hi].
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// intersectGalloping iterates the smaller input and gallops through the
// larger; its running time is O(|small| · log |large|), which satisfies
// the min property required for worst-case optimality (§2.1).
func intersectGalloping(a, b []uint32, out []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	j := 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			out = append(out, v)
			j++
		}
	}
	return out
}

func countGalloping(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	j, n := 0, 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			n++
			j++
		}
	}
	return n
}

// --- bitset ∩ bitset ------------------------------------------------------

func bitsetOverlap(a, b Set) (base uint32, wa, wb []uint64, n int) {
	loA, loB := a.base, b.base
	base = loA
	if loB > base {
		base = loB
	}
	hiA := loA + uint32(len(a.words)*64)
	hiB := loB + uint32(len(b.words)*64)
	hi := hiA
	if hiB < hi {
		hi = hiB
	}
	if hi <= base {
		return 0, nil, nil, 0
	}
	n = int(hi-base) / 64
	wa = a.words[(base-loA)/64:]
	wb = b.words[(base-loB)/64:]
	return base, wa, wb, n
}

func intersectBitsetBitset(a, b Set, bitByBit bool) Set {
	base, wa, wb, n := bitsetOverlap(a, b)
	if n == 0 {
		return Set{}
	}
	out := make([]uint64, n)
	if bitByBit {
		bitByBitAnd(out, wa, wb, n)
	} else {
		for i := 0; i < n; i++ {
			out[i] = wa[i] & wb[i]
		}
	}
	return fromBitsetWords(base, out)
}

// bitByBitAnd is the "-S" ablation: per-bit processing, no word-level
// parallelism.
func bitByBitAnd(out, wa, wb []uint64, n int) {
	for i := 0; i < n; i++ {
		var w uint64
		x, y := wa[i], wb[i]
		for bit := 0; bit < 64; bit++ {
			m := uint64(1) << uint(bit)
			if x&m != 0 && y&m != 0 {
				w |= m
			}
		}
		out[i] = w
	}
}

func intersectCountBitsetBitset(a, b Set, bitByBit bool) int {
	_, wa, wb, n := bitsetOverlap(a, b)
	c := 0
	if bitByBit {
		for i := 0; i < n; i++ {
			x, y := wa[i], wb[i]
			for bit := 0; bit < 64; bit++ {
				m := uint64(1) << uint(bit)
				if x&m != 0 && y&m != 0 {
					c++
				}
			}
		}
		return c
	}
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(wa[i] & wb[i])
	}
	return c
}

// --- uint ∩ bitset --------------------------------------------------------

// intersectUintBitset probes each uint key against the bitset words; the
// running time is bounded by the uint side, preserving the min property
// up to the block-size constant (§4.2).
func intersectUintBitset(a []uint32, b Set, out []uint32) []uint32 {
	lo := b.base
	hi := lo + uint32(len(b.words)*64)
	// Skip uint values below the bitset range.
	i := gallopSearch(a, 0, lo)
	for ; i < len(a); i++ {
		v := a[i]
		if v >= hi {
			break
		}
		off := v - lo
		if b.words[off/64]&(1<<(off%64)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

func intersectCountUintBitset(a []uint32, b Set) int {
	lo := b.base
	hi := lo + uint32(len(b.words)*64)
	n := 0
	i := gallopSearch(a, 0, lo)
	for ; i < len(a); i++ {
		v := a[i]
		if v >= hi {
			break
		}
		off := v - lo
		if b.words[off/64]&(1<<(off%64)) != 0 {
			n++
		}
	}
	return n
}

// --- composite ∩ composite ------------------------------------------------

// intersectCompositeComposite merges the block lists, intersecting
// aligned blocks word-parallel (dense·dense), by probe (sparse·dense)
// or by branch-free merge (sparse·sparse), appending values to out.
func intersectCompositeComposite(a, b Set, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a.blocks) && j < len(b.blocks) {
		ba, bb := &a.blocks[i], &b.blocks[j]
		if ba.id < bb.id {
			i++
			continue
		}
		if bb.id < ba.id {
			j++
			continue
		}
		vbase := ba.id * BlockBits
		switch {
		case ba.dense && bb.dense:
			for w := 0; w < blockWords; w++ {
				m := ba.words[w] & bb.words[w]
				wb := vbase + uint32(w*64)
				for m != 0 {
					t := bits.TrailingZeros64(m)
					out = append(out, wb+uint32(t))
					m &= m - 1
				}
			}
		case ba.dense != bb.dense:
			sp, dn := ba, bb
			if ba.dense {
				sp, dn = bb, ba
			}
			for _, o := range sp.sparse {
				if dn.words[o/64]&(1<<(o%64)) != 0 {
					out = append(out, vbase+uint32(o))
				}
			}
		default: // both sparse
			x, y := ba.sparse, bb.sparse
			p, q := 0, 0
			for p < len(x) && q < len(y) {
				xv, yv := x[p], y[q]
				if xv == yv {
					out = append(out, vbase+uint32(xv))
				}
				p += b2u(xv <= yv)
				q += b2u(yv <= xv)
			}
		}
		i++
		j++
	}
	return out
}

// intersectCountCompositeComposite merges the block lists and counts per
// block without materialization (word-parallel on dense blocks).
func intersectCountCompositeComposite(a, b Set) int {
	n := 0
	i, j := 0, 0
	for i < len(a.blocks) && j < len(b.blocks) {
		ba, bb := &a.blocks[i], &b.blocks[j]
		if ba.id < bb.id {
			i++
			continue
		}
		if bb.id < ba.id {
			j++
			continue
		}
		switch {
		case ba.dense && bb.dense:
			for w := 0; w < blockWords; w++ {
				n += bits.OnesCount64(ba.words[w] & bb.words[w])
			}
		case ba.dense != bb.dense:
			sp, dn := ba, bb
			if ba.dense {
				sp, dn = bb, ba
			}
			for _, o := range sp.sparse {
				if dn.words[o/64]&(1<<(o%64)) != 0 {
					n++
				}
			}
		default:
			x, y := ba.sparse, bb.sparse
			p, q := 0, 0
			for p < len(x) && q < len(y) {
				xv, yv := x[p], y[q]
				n += b2u(xv == yv)
				p += b2u(xv <= yv)
				q += b2u(yv <= xv)
			}
		}
		i++
		j++
	}
	return n
}
