package set

import "math/bits"

// Algo selects a uint∩uint intersection algorithm (§4.2).
type Algo uint8

const (
	// AlgoAuto is the paper's hybrid: galloping when the cardinality
	// ratio exceeds GallopRatio (cardinality skew), shuffle otherwise.
	AlgoAuto Algo = iota
	// AlgoMerge is the textbook scalar two-pointer merge.
	AlgoMerge
	// AlgoShuffle is the block-skipping merge standing in for the SIMD
	// shuffling algorithm (compares 4 keys per step).
	AlgoShuffle
	// AlgoGalloping is exponential search from the smaller set into the
	// larger one; it satisfies the min property.
	AlgoGalloping
)

func (a Algo) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoMerge:
		return "merge"
	case AlgoShuffle:
		return "shuffle"
	case AlgoGalloping:
		return "galloping"
	}
	return "algo?"
}

// GallopRatio is the cardinality-skew threshold of the hybrid algorithm:
// the paper selects SIMD galloping when |larger| / |smaller| > 32.
const GallopRatio = 32

// Config controls intersection execution; the zero value is the full
// EmptyHeaded optimizer. The ablation flags reproduce the "-S", "-R" and
// "-RA" rows of Tables 8 and 11.
type Config struct {
	// Algo forces a specific uint∩uint algorithm. AlgoAuto applies the
	// hybrid cardinality-skew rule. Setting AlgoMerge reproduces the
	// "-A" (no algorithm optimization) ablations.
	Algo Algo
	// BitByBit disables data-parallel execution everywhere ("-S", no
	// SIMD): bitset words are processed one bit at a time and the
	// blocked shuffle merge degrades to the scalar merge. Layout and
	// algorithm *choices* (galloping on cardinality skew) are kept, as
	// in the paper's -S ablation.
	BitByBit bool
}

// Default is the fully optimized configuration.
var Default = Config{}

// Intersect computes a ∩ b with the default configuration.
func Intersect(a, b Set) Set { return IntersectCfg(a, b, Default) }

// IntersectCount computes |a ∩ b| without materializing the result,
// with the default configuration.
func IntersectCount(a, b Set) int { return IntersectCountCfg(a, b, Default) }

// IntersectBuf is IntersectCfg with caller-provided scratch: uint results
// are stored in buf and bitset results in wbuf (both grown as needed and
// returned for reuse). Results alias the buffers, so the caller owns the
// lifetime. This is the allocation-free fast path of the generated loop
// nests (§3.3): one scratch pair per loop level per worker.
func IntersectBuf(a, b Set, cfg Config, buf []uint32, wbuf []uint64) (Set, []uint32, []uint64) {
	if a.card == 0 || b.card == 0 {
		return Set{}, buf, wbuf
	}
	switch {
	case a.layout == Uint && b.layout == Uint:
		out := intersectUintUint2(a.data, b.data, pickAlgo(a.data, b.data, cfg), buf[:0])
		return FromSorted(out), out, wbuf
	case a.layout == Uint && b.layout == Bitset:
		out := intersectUintBitset(a.data, b, buf[:0])
		return FromSorted(out), out, wbuf
	case a.layout == Bitset && b.layout == Uint:
		out := intersectUintBitset(b.data, a, buf[:0])
		return FromSorted(out), out, wbuf
	case a.layout == Bitset && b.layout == Bitset:
		base, wa, wb, n := bitsetOverlap(a, b)
		if n == 0 {
			return Set{}, buf, wbuf
		}
		if cap(wbuf) < n {
			wbuf = make([]uint64, n)
		}
		wbuf = wbuf[:n]
		if cfg.BitByBit {
			bitByBitAnd(wbuf, wa, wb, n)
		} else {
			for i := 0; i < n; i++ {
				wbuf[i] = wa[i] & wb[i]
			}
		}
		return fromBitsetWords(base, wbuf), buf, wbuf
	default:
		return IntersectCfg(a, b, cfg), buf, wbuf
	}
}

func intersectUintUint2(a, b []uint32, algo Algo, out []uint32) []uint32 {
	switch algo {
	case AlgoGalloping:
		return intersectGalloping(a, b, out)
	case AlgoMerge:
		return intersectMerge(a, b, out)
	default:
		return intersectShuffle(a, b, out)
	}
}

// IntersectCfg computes a ∩ b under cfg. The result layout follows the
// paper: uint∩uint→uint, bitset∩bitset→bitset, uint∩bitset→uint (the
// result is at most as dense as the sparser input, §4.2 fn. 6),
// composite∩composite→composite. Mixed composite pairs fall back to a
// decode-and-merge path.
func IntersectCfg(a, b Set, cfg Config) Set {
	if a.card == 0 || b.card == 0 {
		return Set{}
	}
	switch {
	case a.layout == Uint && b.layout == Uint:
		return FromSorted(intersectUintUint(a.data, b.data, pickAlgo(a.data, b.data, cfg)))
	case a.layout == Bitset && b.layout == Bitset:
		return intersectBitsetBitset(a, b, cfg.BitByBit)
	case a.layout == Uint && b.layout == Bitset:
		return FromSorted(intersectUintBitset(a.data, b, nil))
	case a.layout == Bitset && b.layout == Uint:
		return FromSorted(intersectUintBitset(b.data, a, nil))
	case a.layout == Composite && b.layout == Composite:
		return intersectCompositeComposite(a, b, cfg)
	default:
		// Mixed composite/other: probe the composite with the other side
		// decoded lazily.
		if a.layout == Composite {
			a, b = b, a
		}
		var out []uint32
		a.ForEach(func(_ int, v uint32) {
			if b.containsOnly(v) {
				out = append(out, v)
			}
		})
		return FromSorted(out)
	}
}

// intersectCountCompositeComposite merges the block lists and counts per
// block without materialization (word-parallel on dense blocks).
func intersectCountCompositeComposite(a, b Set) int {
	n := 0
	i, j := 0, 0
	for i < len(a.blocks) && j < len(b.blocks) {
		ba, bb := &a.blocks[i], &b.blocks[j]
		if ba.id < bb.id {
			i++
			continue
		}
		if bb.id < ba.id {
			j++
			continue
		}
		switch {
		case ba.dense && bb.dense:
			for w := 0; w < blockWords; w++ {
				n += bits.OnesCount64(ba.words[w] & bb.words[w])
			}
		case ba.dense != bb.dense:
			sp, dn := ba, bb
			if ba.dense {
				sp, dn = bb, ba
			}
			for _, o := range sp.sparse {
				if dn.words[o/64]&(1<<(o%64)) != 0 {
					n++
				}
			}
		default:
			x, y := ba.sparse, bb.sparse
			p, q := 0, 0
			for p < len(x) && q < len(y) {
				if x[p] == y[q] {
					n++
					p++
					q++
				} else if x[p] < y[q] {
					p++
				} else {
					q++
				}
			}
		}
		i++
		j++
	}
	return n
}

// IntersectCountCfg computes |a ∩ b| under cfg without materialization.
func IntersectCountCfg(a, b Set, cfg Config) int {
	if a.card == 0 || b.card == 0 {
		return 0
	}
	switch {
	case a.layout == Uint && b.layout == Uint:
		return intersectCountUintUint(a.data, b.data, pickAlgo(a.data, b.data, cfg))
	case a.layout == Bitset && b.layout == Bitset:
		return intersectCountBitsetBitset(a, b, cfg.BitByBit)
	case a.layout == Uint && b.layout == Bitset:
		return intersectCountUintBitset(a.data, b)
	case a.layout == Bitset && b.layout == Uint:
		return intersectCountUintBitset(b.data, a)
	case a.layout == Composite && b.layout == Composite:
		return intersectCountCompositeComposite(a, b)
	default:
		n := 0
		x, y := a, b
		if y.card < x.card {
			x, y = y, x
		}
		x.ForEach(func(_ int, v uint32) {
			if y.containsOnly(v) {
				n++
			}
		})
		return n
	}
}

// --- uint ∩ uint ----------------------------------------------------------

// pickAlgo resolves the algorithm under cfg: the hybrid rule for
// AlgoAuto, then the "-S" degradation of the vectorized shuffle to the
// scalar merge.
func pickAlgo(a, b []uint32, cfg Config) Algo {
	algo := cfg.Algo
	if algo == AlgoAuto {
		la, lb := len(a), len(b)
		if la > lb {
			la, lb = lb, la
		}
		if la*GallopRatio < lb {
			algo = AlgoGalloping
		} else {
			algo = AlgoShuffle
		}
	}
	if cfg.BitByBit && algo == AlgoShuffle {
		algo = AlgoMerge
	}
	return algo
}

func intersectUintUint(a, b []uint32, algo Algo) []uint32 {
	switch algo {
	case AlgoGalloping:
		return intersectGalloping(a, b, nil)
	case AlgoMerge:
		return intersectMerge(a, b, nil)
	default:
		return intersectShuffle(a, b, nil)
	}
}

func intersectCountUintUint(a, b []uint32, algo Algo) int {
	switch algo {
	case AlgoGalloping:
		return countGalloping(a, b)
	case AlgoMerge:
		return countMerge(a, b)
	default:
		return countShuffle(a, b)
	}
}

// intersectMerge is the scalar two-pointer merge intersection.
func intersectMerge(a, b []uint32, out []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			out = append(out, av)
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return out
}

func countMerge(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			n++
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return n
}

// intersectShuffle is the stand-in for the SIMD shuffling algorithm of
// Katsov/Schlegel et al.: it advances over the inputs in blocks of four
// keys, skipping whole blocks whose ranges cannot overlap, and compares
// key-by-key only within overlapping blocks. With 128-bit SSE registers
// the original compares 4×4 lanes per instruction; the block-skip here
// captures the same data-dependent fast path in portable Go.
func intersectShuffle(a, b []uint32, out []uint32) []uint32 {
	i, j := 0, 0
	la, lb := len(a), len(b)
	for i+4 <= la && j+4 <= lb {
		amax, bmax := a[i+3], b[j+3]
		// Compare the 4-blocks; emit matches within the window.
		if a[i+3] < b[j] { // disjoint: whole a-block below b-block
			i += 4
			continue
		}
		if b[j+3] < a[i] { // disjoint: whole b-block below a-block
			j += 4
			continue
		}
		// Overlapping window: merge the two blocks scalar.
		ai, bj := i, j
		for ai < i+4 && bj < j+4 {
			av, bv := a[ai], b[bj]
			if av == bv {
				out = append(out, av)
				ai++
				bj++
			} else if av < bv {
				ai++
			} else {
				bj++
			}
		}
		if amax <= bmax {
			i += 4
		}
		if bmax <= amax {
			j += 4
		}
	}
	// Scalar tail.
	for i < la && j < lb {
		av, bv := a[i], b[j]
		if av == bv {
			out = append(out, av)
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return out
}

func countShuffle(a, b []uint32) int {
	// Count via the same control flow; reuse a small stack buffer to
	// avoid allocation.
	i, j, n := 0, 0, 0
	la, lb := len(a), len(b)
	for i+4 <= la && j+4 <= lb {
		amax, bmax := a[i+3], b[j+3]
		if amax < b[j] {
			i += 4
			continue
		}
		if bmax < a[i] {
			j += 4
			continue
		}
		ai, bj := i, j
		for ai < i+4 && bj < j+4 {
			av, bv := a[ai], b[bj]
			if av == bv {
				n++
				ai++
				bj++
			} else if av < bv {
				ai++
			} else {
				bj++
			}
		}
		if amax <= bmax {
			i += 4
		}
		if bmax <= amax {
			j += 4
		}
	}
	for i < la && j < lb {
		av, bv := a[i], b[j]
		if av == bv {
			n++
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return n
}

// gallopSearch returns the smallest index k ≥ lo in b with b[k] ≥ v,
// using exponential (galloping) search.
func gallopSearch(b []uint32, lo int, v uint32) int {
	if lo >= len(b) || b[lo] >= v {
		return lo
	}
	step := 1
	hi := lo + 1
	for hi < len(b) && b[hi] < v {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(b) {
		hi = len(b)
	}
	// Binary search in (lo, hi].
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// intersectGalloping iterates the smaller input and gallops through the
// larger; its running time is O(|small| · log |large|), which satisfies
// the min property required for worst-case optimality (§2.1).
func intersectGalloping(a, b []uint32, out []uint32) []uint32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	j := 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			out = append(out, v)
			j++
		}
	}
	return out
}

func countGalloping(a, b []uint32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	j, n := 0, 0
	for _, v := range a {
		j = gallopSearch(b, j, v)
		if j == len(b) {
			break
		}
		if b[j] == v {
			n++
			j++
		}
	}
	return n
}

// --- bitset ∩ bitset ------------------------------------------------------

func bitsetOverlap(a, b Set) (base uint32, wa, wb []uint64, n int) {
	loA, loB := a.base, b.base
	base = loA
	if loB > base {
		base = loB
	}
	hiA := loA + uint32(len(a.words)*64)
	hiB := loB + uint32(len(b.words)*64)
	hi := hiA
	if hiB < hi {
		hi = hiB
	}
	if hi <= base {
		return 0, nil, nil, 0
	}
	n = int(hi-base) / 64
	wa = a.words[(base-loA)/64:]
	wb = b.words[(base-loB)/64:]
	return base, wa, wb, n
}

func intersectBitsetBitset(a, b Set, bitByBit bool) Set {
	base, wa, wb, n := bitsetOverlap(a, b)
	if n == 0 {
		return Set{}
	}
	out := make([]uint64, n)
	if bitByBit {
		bitByBitAnd(out, wa, wb, n)
	} else {
		for i := 0; i < n; i++ {
			out[i] = wa[i] & wb[i]
		}
	}
	return fromBitsetWords(base, out)
}

// bitByBitAnd is the "-S" ablation: per-bit processing, no word-level
// parallelism.
func bitByBitAnd(out, wa, wb []uint64, n int) {
	for i := 0; i < n; i++ {
		var w uint64
		x, y := wa[i], wb[i]
		for bit := 0; bit < 64; bit++ {
			m := uint64(1) << uint(bit)
			if x&m != 0 && y&m != 0 {
				w |= m
			}
		}
		out[i] = w
	}
}

func intersectCountBitsetBitset(a, b Set, bitByBit bool) int {
	_, wa, wb, n := bitsetOverlap(a, b)
	c := 0
	if bitByBit {
		for i := 0; i < n; i++ {
			x, y := wa[i], wb[i]
			for bit := 0; bit < 64; bit++ {
				m := uint64(1) << uint(bit)
				if x&m != 0 && y&m != 0 {
					c++
				}
			}
		}
		return c
	}
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(wa[i] & wb[i])
	}
	return c
}

// --- uint ∩ bitset --------------------------------------------------------

// intersectUintBitset probes each uint key against the bitset words; the
// running time is bounded by the uint side, preserving the min property
// up to the block-size constant (§4.2).
func intersectUintBitset(a []uint32, b Set, out []uint32) []uint32 {
	lo := b.base
	hi := lo + uint32(len(b.words)*64)
	// Skip uint values below the bitset range.
	i := gallopSearch(a, 0, lo)
	for ; i < len(a); i++ {
		v := a[i]
		if v >= hi {
			break
		}
		off := v - lo
		if b.words[off/64]&(1<<(off%64)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

func intersectCountUintBitset(a []uint32, b Set) int {
	lo := b.base
	hi := lo + uint32(len(b.words)*64)
	n := 0
	i := gallopSearch(a, 0, lo)
	for ; i < len(a); i++ {
		v := a[i]
		if v >= hi {
			break
		}
		off := v - lo
		if b.words[off/64]&(1<<(off%64)) != 0 {
			n++
		}
	}
	return n
}

// --- composite ∩ composite ------------------------------------------------

func intersectCompositeComposite(a, b Set, cfg Config) Set {
	var out []uint32
	i, j := 0, 0
	for i < len(a.blocks) && j < len(b.blocks) {
		ba, bb := &a.blocks[i], &b.blocks[j]
		if ba.id < bb.id {
			i++
			continue
		}
		if bb.id < ba.id {
			j++
			continue
		}
		vbase := ba.id * BlockBits
		switch {
		case ba.dense && bb.dense:
			for w := 0; w < blockWords; w++ {
				m := ba.words[w] & bb.words[w]
				wb := vbase + uint32(w*64)
				for m != 0 {
					t := bits.TrailingZeros64(m)
					out = append(out, wb+uint32(t))
					m &= m - 1
				}
			}
		case ba.dense != bb.dense:
			sp, dn := ba, bb
			if bb.dense {
				sp, dn = ba, bb
			} else {
				sp, dn = bb, ba
			}
			for _, o := range sp.sparse {
				if dn.words[o/64]&(1<<(o%64)) != 0 {
					out = append(out, vbase+uint32(o))
				}
			}
		default: // both sparse
			x, y := ba.sparse, bb.sparse
			p, q := 0, 0
			for p < len(x) && q < len(y) {
				if x[p] == y[q] {
					out = append(out, vbase+uint32(x[p]))
					p++
					q++
				} else if x[p] < y[q] {
					p++
				} else {
					q++
				}
			}
		}
		i++
		j++
	}
	return NewComposite(out)
}
