package set

import (
	"bytes"
	"encoding/binary"
	"testing"

	"emptyheaded/internal/gen"
)

func roundTripSet(t *testing.T, s Set) Set {
	t.Helper()
	enc := s.AppendTo(nil)
	if len(enc) != s.EncodedSize() {
		t.Fatalf("EncodedSize=%d, encoded %d bytes", s.EncodedSize(), len(enc))
	}
	if len(enc)%8 != 0 {
		t.Fatalf("encoding not 8-byte padded: %d bytes", len(enc))
	}
	got, n, err := FromBuffers(enc)
	if err != nil {
		t.Fatalf("FromBuffers: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !Equal(s, got) {
		t.Fatalf("round trip mismatch:\n in  %v\n out %v", s, got)
	}
	if got.Layout() != s.Layout() {
		t.Fatalf("layout changed: %v -> %v", s.Layout(), got.Layout())
	}
	// Re-encoding the decoded set must be byte-identical (snapshot →
	// restore → re-snapshot determinism).
	re := got.AppendTo(nil)
	if !bytes.Equal(enc, re) {
		t.Fatalf("re-encoding differs (%d vs %d bytes)", len(enc), len(re))
	}
	return got
}

func TestSetSerializeRoundTrip(t *testing.T) {
	inputs := [][]uint32{
		nil,
		{7},
		{0, 1, 2, 3, 63, 64, 65, 127, 128},
		{5, 1000, 2000, 1 << 20, 1<<31 + 3},
		gen.UniformSet(500, 4096, 3),  // dense-ish
		gen.UniformSet(300, 1<<24, 4), // sparse
		gen.DenseSparseSet(256, 64, 1<<22, 5),
	}
	for _, vals := range inputs {
		for _, layout := range []Layout{Uint, Bitset, Composite} {
			if len(vals) == 0 && layout != Uint {
				continue // empty set always stores as Uint
			}
			s := BuildLayout(vals, layout)
			roundTripSet(t, s)
		}
		roundTripSet(t, BuildAuto(vals))
	}
}

func TestSetSerializeTransientBitset(t *testing.T) {
	// An intersection-result bitset has no cum array; the encoder must
	// synthesize it so the restored set ranks in O(1).
	a := NewBitset([]uint32{64, 65, 130, 200, 210, 260, 600})
	b := NewBitset([]uint32{64, 130, 131, 210, 600, 601})
	inter := Intersect(a, b)
	if inter.Layout() != Bitset {
		t.Skipf("intersection produced %v, wanted a transient bitset", inter.Layout())
	}
	got := roundTripSet(t, inter)
	if got.cum == nil {
		t.Fatal("restored bitset lacks cum array")
	}
	// inter = {64, 130, 210, 600}: 210 sits at rank 2.
	if r, ok := got.Rank(210); !ok || r != 2 {
		t.Fatalf("Rank(210)=%d,%v want 2,true", r, ok)
	}
}

func TestSetSerializeRankAndIter(t *testing.T) {
	vals := gen.UniformSet(2000, 6000, 9)
	for _, layout := range []Layout{Uint, Bitset, Composite} {
		s := BuildLayout(vals, layout)
		enc := s.AppendTo(nil)
		got, _, err := FromBuffers(enc)
		if err != nil {
			t.Fatalf("FromBuffers(%v): %v", layout, err)
		}
		for i, v := range vals {
			r, ok := got.Rank(v)
			if !ok || r != i {
				t.Fatalf("layout %v: Rank(%d)=%d,%v want %d,true", layout, v, r, ok, i)
			}
		}
		if got.Contains(vals[len(vals)-1] + 1) {
			t.Fatalf("layout %v: spurious member", layout)
		}
	}
}

func TestSetSerializeTruncated(t *testing.T) {
	s := BuildLayout(gen.UniformSet(100, 1000, 1), Bitset)
	enc := s.AppendTo(nil)
	for cut := 0; cut < len(enc); cut += 3 {
		if _, _, err := FromBuffers(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes not detected", cut, len(enc))
		}
	}
	// Unknown layout tag.
	bad := append([]byte(nil), enc...)
	bad[0] = 0x7f
	if _, _, err := FromBuffers(bad); err == nil {
		t.Fatal("unknown layout tag not detected")
	}
}

func TestSetSerializeLegacyCompositeTag(t *testing.T) {
	// Pre-native snapshots encoded composites as tag 2 + the raw value
	// list. Hand-build that form and check the decoder still restores it
	// — and that re-encoding upgrades to the native block form (tag 3).
	vals := gen.DenseSparseSet(256, 64, 1<<22, 11)
	var legacy []byte
	legacy = AppendUint32(legacy, uint32(Composite)) // legacy tag 2
	legacy = AppendUint32(legacy, uint32(len(vals)))
	for _, v := range vals {
		legacy = AppendUint32(legacy, v)
	}
	for len(legacy)%8 != 0 {
		legacy = append(legacy, 0)
	}
	got, n, err := FromBuffers(legacy)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if n != len(legacy) {
		t.Fatalf("legacy decode consumed %d of %d bytes", n, len(legacy))
	}
	want := NewComposite(vals)
	if got.Layout() != Composite || !Equal(got, want) {
		t.Fatalf("legacy decode mismatch: layout %v", got.Layout())
	}
	re := got.AppendTo(nil)
	if tag := re[0]; tag != 3 {
		t.Fatalf("re-encode emitted tag %d, want native tag 3", tag)
	}
	if !bytes.Equal(re, want.AppendTo(nil)) {
		t.Fatal("re-encode of legacy decode differs from native encode")
	}
}

func TestSetSerializeCompositeCorrupt(t *testing.T) {
	s := BuildLayout(gen.DenseSparseSet(256, 64, 1<<22, 12), Composite)
	enc := s.AppendTo(nil)
	for cut := 0; cut < len(enc); cut += 5 {
		if _, _, err := FromBuffers(enc[:cut]); err == nil {
			t.Fatalf("composite truncation at %d/%d bytes not detected", cut, len(enc))
		}
	}
	// Dense-count header inconsistent with the block headers.
	bad := append([]byte(nil), enc...)
	bad[12]++
	if _, _, err := FromBuffers(bad); err == nil {
		t.Fatal("dense count mismatch not detected")
	}
	// Sparse block length exceeding the block size.
	bad = append([]byte(nil), enc...)
	for k := 0; ; k++ {
		off := 16 + 8*k + 4
		if off+4 > len(bad) {
			t.Fatal("test set has no sparse block")
		}
		info := binary.LittleEndian.Uint32(bad[off:])
		if info&(1<<31) == 0 {
			binary.LittleEndian.PutUint32(bad[off:], 257)
			break
		}
	}
	if _, _, err := FromBuffers(bad); err == nil {
		t.Fatal("oversized sparse block not detected")
	}
}

func TestAppendValues(t *testing.T) {
	vals := gen.UniformSet(777, 5000, 2)
	for _, layout := range []Layout{Uint, Bitset, Composite} {
		s := BuildLayout(vals, layout)
		full := s.AppendValues(nil, 0)
		if len(full) != len(vals) {
			t.Fatalf("layout %v: %d values, want %d", layout, len(full), len(vals))
		}
		for i := range vals {
			if full[i] != vals[i] {
				t.Fatalf("layout %v: value %d = %d, want %d", layout, i, full[i], vals[i])
			}
		}
		head := s.AppendValues(nil, 10)
		if len(head) != 10 {
			t.Fatalf("layout %v: AppendValues(max=10) returned %d", layout, len(head))
		}
		// Appends, not overwrites.
		pre := []uint32{42}
		both := s.AppendValues(pre, 3)
		if len(both) != 4 || both[0] != 42 {
			t.Fatalf("layout %v: AppendValues clobbered prefix: %v", layout, both)
		}
	}
}
