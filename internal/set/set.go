// Package set implements the skew-aware set layouts at the heart of the
// EmptyHeaded execution engine (§4 of the paper).
//
// A Set is an immutable, sorted collection of uint32 keys stored in one of
// three layouts:
//
//   - Uint: a sorted array of 32-bit unsigned integers (sparse data).
//   - Bitset: a single bit-vector spanning [base, base+64·len(words)),
//     the paper's range-sized bitset (block size = range of the set).
//   - Composite: a sequence of 256-value blocks, each stored sparse or
//     dense depending on the block's own density (the block-level layout
//     of §4.3 used in Figure 6).
//
// The paper exploits 256-bit AVX registers; Go has no stable SIMD
// intrinsics, so dense operations here are word-parallel over uint64
// (64 lanes per op instead of 256 — same algorithmic shape, smaller
// constant; see DESIGN.md "Substitutions").
package set

import (
	"fmt"
	"math/bits"
	"sort"
)

// Layout identifies the physical representation of a Set.
type Layout uint8

const (
	// Uint is the sorted 32-bit unsigned integer array layout.
	Uint Layout = iota
	// Bitset is the range-sized bit-vector layout.
	Bitset
	// Composite is the block-level hybrid layout (256-value blocks).
	Composite
)

// String returns the lower-case layout name used in the paper.
func (l Layout) String() string {
	switch l {
	case Uint:
		return "uint"
	case Bitset:
		return "bitset"
	case Composite:
		return "composite"
	}
	return fmt.Sprintf("Layout(%d)", uint8(l))
}

// BlockBits is the dense block width in bits. The paper defaults to 256
// (one AVX register); we keep the same block size, realized as four
// 64-bit words.
const BlockBits = 256

const blockWords = BlockBits / 64

// block is one 256-value aligned region of a Composite set.
// Values in a block lie in [id*BlockBits, (id+1)*BlockBits).
type block struct {
	id     uint32   // block index
	dense  bool     // true → words payload, false → sparse payload
	words  []uint64 // dense payload, blockWords words
	sparse []uint16 // sparse payload: value - id*BlockBits, sorted
}

func (b *block) card() int {
	if !b.dense {
		return len(b.sparse)
	}
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Set is an immutable sorted set of uint32 keys.
// The zero value is the empty set (Uint layout).
type Set struct {
	layout Layout
	card   int

	// Uint layout.
	data []uint32

	// Bitset layout: bit i of words[i/64] set ⇔ base+i is a member.
	// base is a multiple of 64. cum[w] is the number of members strictly
	// before word w (used for O(1) rank during ordered iteration and
	// O(1) random-access rank).
	base  uint32
	words []uint64
	cum   []uint32

	// Composite layout.
	blocks []block
}

// Empty returns the empty set.
func Empty() Set { return Set{} }

// FromSorted builds a Uint-layout set from a strictly increasing slice.
// The slice is retained; callers must not modify it afterwards.
func FromSorted(vals []uint32) Set {
	if len(vals) == 0 {
		return Set{}
	}
	return Set{layout: Uint, card: len(vals), data: vals}
}

// FromUnsorted copies, sorts and deduplicates vals into a Uint-layout set.
func FromUnsorted(vals []uint32) Set {
	if len(vals) == 0 {
		return Set{}
	}
	cp := make([]uint32, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, v := range cp[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return FromSorted(out)
}

// NewBitset builds a Bitset-layout set from a strictly increasing slice.
func NewBitset(vals []uint32) Set {
	if len(vals) == 0 {
		return Set{}
	}
	base := vals[0] &^ 63
	span := vals[len(vals)-1] - base + 1
	nw := int((span + 63) / 64)
	words := make([]uint64, nw)
	for _, v := range vals {
		off := v - base
		words[off/64] |= 1 << (off % 64)
	}
	s := Set{layout: Bitset, card: len(vals), base: base, words: words}
	s.buildCum()
	return s
}

// fromBitsetWords wraps raw words (base must be 64-aligned).
func fromBitsetWords(base uint32, words []uint64) Set {
	// Trim leading/trailing zero words so range reflects actual content.
	lo := 0
	for lo < len(words) && words[lo] == 0 {
		lo++
	}
	if lo == len(words) {
		return Set{}
	}
	hi := len(words)
	for words[hi-1] == 0 {
		hi--
	}
	words = words[lo:hi]
	base += uint32(lo * 64)
	card := 0
	for _, w := range words {
		card += bits.OnesCount64(w)
	}
	// cum stays nil: intersection results are usually only iterated, and
	// Rank falls back to a word scan when cum is absent. Stored sets
	// (NewBitset) build cum eagerly.
	return Set{layout: Bitset, card: card, base: base, words: words}
}

func (s *Set) buildCum() {
	s.cum = make([]uint32, len(s.words))
	n := uint32(0)
	for i, w := range s.words {
		s.cum[i] = n
		n += uint32(bits.OnesCount64(w))
	}
}

// denseBlockThreshold is the per-block cardinality above which a Composite
// block is stored dense: a dense block costs 32 bytes, a sparse block costs
// 2 bytes per element, so 16 elements is the break-even point.
const denseBlockThreshold = 16

// NewComposite builds a Composite-layout set from a strictly increasing
// slice, choosing sparse or dense per 256-value block.
func NewComposite(vals []uint32) Set {
	if len(vals) == 0 {
		return Set{}
	}
	var blocks []block
	i := 0
	for i < len(vals) {
		id := vals[i] / BlockBits
		j := i
		for j < len(vals) && vals[j]/BlockBits == id {
			j++
		}
		n := j - i
		b := block{id: id}
		if n >= denseBlockThreshold {
			b.dense = true
			b.words = make([]uint64, blockWords)
			for _, v := range vals[i:j] {
				off := v - id*BlockBits
				b.words[off/64] |= 1 << (off % 64)
			}
		} else {
			b.sparse = make([]uint16, n)
			for k, v := range vals[i:j] {
				b.sparse[k] = uint16(v - id*BlockBits)
			}
		}
		blocks = append(blocks, b)
		i = j
	}
	return Set{layout: Composite, card: len(vals), blocks: blocks}
}

// BitsetCostRatio is the set-level optimizer threshold (§4.4): the bitset
// layout is selected when every member costs at most one SIMD register of
// bits, i.e. range(set) ≤ BitsetCostRatio × |set|.
const BitsetCostRatio = BlockBits

// minBitsetCard avoids pathological tiny bitsets.
const minBitsetCard = 4

// minCompositeCard is the floor below which the block-hybrid layout
// cannot pay for its block headers and per-block dispatch.
const minCompositeCard = 2 * denseBlockThreshold

// ChooseLayout implements the set-level layout optimizer (§4.4),
// extended with the block-hybrid band: bitset when the whole range is
// at most BlockBits bits per element; composite when the set is
// globally sparse but at least half its members cluster into locally
// dense 256-value blocks (the skewed-degree shape where whole-range
// bitsets are too wide and uint arrays forgo word-parallel kernels);
// uint otherwise.
func ChooseLayout(vals []uint32) Layout {
	n := len(vals)
	if n < minBitsetCard {
		return Uint
	}
	rng := uint64(vals[n-1]) - uint64(vals[0]) + 1
	if rng <= uint64(n)*BitsetCostRatio {
		return Bitset
	}
	if n >= minCompositeCard && compositeWins(vals) {
		return Composite
	}
	return Uint
}

// compositeWins reports whether at least half the members fall in
// blocks that NewComposite would store dense (run length ≥
// denseBlockThreshold per 256-value block) — the one-pass local-density
// probe behind the Composite band of ChooseLayout.
func compositeWins(vals []uint32) bool {
	dense := 0
	i := 0
	for i < len(vals) {
		id := vals[i] / BlockBits
		j := i + 1
		for j < len(vals) && vals[j]/BlockBits == id {
			j++
		}
		if j-i >= denseBlockThreshold {
			dense += j - i
		}
		i = j
	}
	return 2*dense >= len(vals)
}

// BuildAuto builds a set from a strictly increasing slice using the
// set-level layout optimizer.
func BuildAuto(vals []uint32) Set {
	return BuildLayout(vals, ChooseLayout(vals))
}

// BuildLayout builds a set from a strictly increasing slice with an
// explicit layout (used by the relation-level and oracle optimizers).
func BuildLayout(vals []uint32, l Layout) Set {
	switch l {
	case Bitset:
		return NewBitset(vals)
	case Composite:
		return NewComposite(vals)
	default:
		return FromSorted(vals)
	}
}

// Layout reports the physical layout of s.
func (s Set) Layout() Layout { return s.layout }

// Card reports the number of members.
func (s Set) Card() int { return s.card }

// CardOf reports the number of members through a pointer, so callers that
// only need the cardinality of a stored Set (e.g. trie node sets read by
// the execution counters) skip copying the struct.
func CardOf(s *Set) int { return s.card }

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool { return s.card == 0 }

// Min returns the smallest member. It panics on the empty set.
func (s Set) Min() uint32 {
	switch s.layout {
	case Uint:
		return s.data[0]
	case Bitset:
		for i, w := range s.words {
			if w != 0 {
				return s.base + uint32(i*64+bits.TrailingZeros64(w))
			}
		}
	case Composite:
		b := &s.blocks[0]
		if b.dense {
			for i, w := range b.words {
				if w != 0 {
					return b.id*BlockBits + uint32(i*64+bits.TrailingZeros64(w))
				}
			}
		}
		return b.id*BlockBits + uint32(b.sparse[0])
	}
	panic("set: Min of empty set")
}

// Max returns the largest member. It panics on the empty set.
func (s Set) Max() uint32 {
	switch s.layout {
	case Uint:
		return s.data[len(s.data)-1]
	case Bitset:
		for i := len(s.words) - 1; i >= 0; i-- {
			if w := s.words[i]; w != 0 {
				return s.base + uint32(i*64+63-bits.LeadingZeros64(w))
			}
		}
	case Composite:
		b := &s.blocks[len(s.blocks)-1]
		if b.dense {
			for i := len(b.words) - 1; i >= 0; i-- {
				if w := b.words[i]; w != 0 {
					return b.id*BlockBits + uint32(i*64+63-bits.LeadingZeros64(w))
				}
			}
		}
		return b.id*BlockBits + uint32(b.sparse[len(b.sparse)-1])
	}
	panic("set: Max of empty set")
}

// Contains reports whether v is a member.
func (s Set) Contains(v uint32) bool {
	_, ok := s.Rank(v)
	return ok
}

// RankNext is Rank for callers probing ascending values: hint must be a
// lower bound on v's rank (e.g. the rank returned by the previous, smaller
// probe). Uint sets gallop from the hint, making a monotone probe sequence
// amortized O(1) per probe — the trie-descent fast path of the generated
// loop nests.
func (s Set) RankNext(v uint32, hint int) (int, bool) {
	if s.layout == Uint {
		if hint < 0 {
			hint = 0
		}
		i := gallopSearch(s.data, hint, v)
		return i, i < len(s.data) && s.data[i] == v
	}
	return s.Rank(v)
}

// Rank returns the index of v in sorted order and whether v is a member.
func (s Set) Rank(v uint32) (int, bool) {
	switch s.layout {
	case Uint:
		i := sort.Search(len(s.data), func(i int) bool { return s.data[i] >= v })
		if i < len(s.data) && s.data[i] == v {
			return i, true
		}
		return i, false
	case Bitset:
		if v < s.base {
			return 0, false
		}
		off := v - s.base
		w := int(off / 64)
		if w >= len(s.words) {
			return s.card, false
		}
		b := uint(off % 64)
		var prefix int
		if s.cum != nil {
			prefix = int(s.cum[w])
		} else {
			// cum is built for stored sets; transient intersection
			// results scan (rank on them is rare).
			for i := 0; i < w; i++ {
				prefix += bits.OnesCount64(s.words[i])
			}
		}
		before := prefix + bits.OnesCount64(s.words[w]&((1<<b)-1))
		if s.words[w]&(1<<b) != 0 {
			return before, true
		}
		return before, false
	case Composite:
		id := v / BlockBits
		// Binary search the block (blocks are sorted by id), then sum the
		// cardinalities of the blocks before it.
		bi := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].id >= id })
		rank := 0
		for i := 0; i < bi; i++ {
			rank += s.blocks[i].card()
		}
		if bi == len(s.blocks) || s.blocks[bi].id != id {
			return rank, false
		}
		b := &s.blocks[bi]
		off := v - id*BlockBits
		if b.dense {
			w := off / 64
			bit := uint(off % 64)
			for j := uint32(0); j < w; j++ {
				rank += bits.OnesCount64(b.words[j])
			}
			rank += bits.OnesCount64(b.words[w] & ((1 << bit) - 1))
			return rank, b.words[w]&(1<<bit) != 0
		}
		o16 := uint16(off)
		k := sort.Search(len(b.sparse), func(k int) bool { return b.sparse[k] >= o16 })
		rank += k
		return rank, k < len(b.sparse) && b.sparse[k] == o16
	}
	return 0, false
}

// containsOnly is Contains without rank computation (fast membership for
// Composite, where rank needs a prefix scan).
func (s Set) containsOnly(v uint32) bool {
	if s.layout != Composite {
		_, ok := s.Rank(v)
		return ok
	}
	id := v / BlockBits
	bi := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].id >= id })
	if bi == len(s.blocks) || s.blocks[bi].id != id {
		return false
	}
	b := &s.blocks[bi]
	off := v - id*BlockBits
	if b.dense {
		return b.words[off/64]&(1<<(off%64)) != 0
	}
	o16 := uint16(off)
	k := sort.Search(len(b.sparse), func(k int) bool { return b.sparse[k] >= o16 })
	return k < len(b.sparse) && b.sparse[k] == o16
}

// ForEach calls f for each member in increasing order with its rank.
func (s Set) ForEach(f func(i int, v uint32)) {
	s.ForEachUntil(func(i int, v uint32) bool { f(i, v); return true })
}

// ForEachUntil calls f for each member in increasing order with its rank,
// stopping early if f returns false.
func (s Set) ForEachUntil(f func(i int, v uint32) bool) {
	switch s.layout {
	case Uint:
		for i, v := range s.data {
			if !f(i, v) {
				return
			}
		}
	case Bitset:
		i := 0
		for wi, w := range s.words {
			vbase := s.base + uint32(wi*64)
			for w != 0 {
				t := bits.TrailingZeros64(w)
				if !f(i, vbase+uint32(t)) {
					return
				}
				i++
				w &= w - 1
			}
		}
	case Composite:
		i := 0
		for bi := range s.blocks {
			b := &s.blocks[bi]
			vbase := b.id * BlockBits
			if b.dense {
				for wi, w := range b.words {
					wb := vbase + uint32(wi*64)
					for w != 0 {
						t := bits.TrailingZeros64(w)
						if !f(i, wb+uint32(t)) {
							return
						}
						i++
						w &= w - 1
					}
				}
			} else {
				for _, o := range b.sparse {
					if !f(i, vbase+uint32(o)) {
						return
					}
					i++
				}
			}
		}
	}
}

// Slice decodes the set into a freshly allocated sorted slice.
func (s Set) Slice() []uint32 {
	out := make([]uint32, 0, s.card)
	s.ForEach(func(_ int, v uint32) { out = append(out, v) })
	return out
}

// MemBytes estimates the payload memory footprint of the set in bytes.
// It is the quantity the layout optimizers trade off against access cost.
func (s Set) MemBytes() int {
	switch s.layout {
	case Uint:
		return 4 * len(s.data)
	case Bitset:
		return 8*len(s.words) + 4*len(s.cum)
	case Composite:
		n := 0
		for i := range s.blocks {
			b := &s.blocks[i]
			n += 4 // block header
			if b.dense {
				n += 8 * len(b.words)
			} else {
				n += 2 * len(b.sparse)
			}
		}
		return n
	}
	return 0
}

// String renders a short debug form.
func (s Set) String() string {
	if s.card <= 16 {
		return fmt.Sprintf("%s%v", s.layout, s.Slice())
	}
	return fmt.Sprintf("%s(card=%d,[%d..%d])", s.layout, s.card, s.Min(), s.Max())
}

// Equal reports whether two sets have identical members (layouts may differ).
func Equal(a, b Set) bool {
	if a.card != b.card {
		return false
	}
	eq := true
	av := a.Slice()
	b.ForEachUntil(func(i int, v uint32) bool {
		if av[i] != v {
			eq = false
			return false
		}
		return true
	})
	return eq
}
