package baseline

import (
	"runtime"
	"sync"

	"emptyheaded/internal/graph"
)

// hashSetThreshold mirrors PowerGraph's adjacency representation: "a hash
// set (with a cuckoo hash) if the degree is larger than 64 and otherwise
// ... a vector of sorted node IDs" (Appendix C.1).
const hashSetThreshold = 64

type vcAdjacency struct {
	sorted [][]uint32
	hashed []map[uint32]struct{}
}

func buildVCAdjacency(g *graph.Graph) *vcAdjacency {
	a := &vcAdjacency{sorted: g.Adj, hashed: make([]map[uint32]struct{}, g.N)}
	for v, ns := range g.Adj {
		if len(ns) > hashSetThreshold {
			m := make(map[uint32]struct{}, len(ns))
			for _, w := range ns {
				m[w] = struct{}{}
			}
			a.hashed[v] = m
		}
	}
	return a
}

func (a *vcAdjacency) intersectCount(u, v uint32) int64 {
	// Probe the smaller list against the larger's hash set when present,
	// else scalar merge — PowerGraph's strategy.
	nu, nv := a.sorted[u], a.sorted[v]
	if len(nu) > len(nv) {
		u, v = v, u
		nu, nv = nv, nu
	}
	if h := a.hashed[v]; h != nil {
		var n int64
		for _, w := range nu {
			if _, ok := h[w]; ok {
				n++
			}
		}
		return n
	}
	return int64(mergeCount(nu, nv))
}

// gatherProgram is the vertex-program interface of the GAS abstraction:
// PowerGraph dispatches a virtual gather per edge and combines the
// returned accumulators — the programming-model overhead the paper
// attributes to it (Appendix C.1).
type gatherProgram interface {
	Gather(src, dst uint32) gatherAccum
	Sum(a, b gatherAccum) gatherAccum
}

// gatherAccum is the per-edge accumulator object; PowerGraph materializes
// one per gather.
type gatherAccum struct{ count int64 }

type triangleProgram struct{ adj *vcAdjacency }

func (tp *triangleProgram) Gather(src, dst uint32) gatherAccum {
	return gatherAccum{count: tp.adj.intersectCount(src, dst)}
}

func (tp *triangleProgram) Sum(a, b gatherAccum) gatherAccum {
	return gatherAccum{count: a.count + b.count}
}

// VertexCentricTriangleCount is the PowerGraph-style engine: the GAS
// abstraction dispatches a gather program per edge (virtual call +
// accumulator per edge) with hash-set intersections for high-degree
// vertices, parallelized over vertices. Input is the pruned graph.
func VertexCentricTriangleCount(g *graph.Graph, parallelism int) int64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	var prog gatherProgram = &triangleProgram{adj: buildVCAdjacency(g)}
	partial := make([]int64, parallelism)
	var wg sync.WaitGroup
	chunk := (g.N + parallelism - 1) / parallelism
	for p := 0; p < parallelism; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > g.N {
			hi = g.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			var total int64
			for x := lo; x < hi; x++ {
				acc := gatherAccum{}
				for _, y := range g.Adj[x] {
					acc = prog.Sum(acc, prog.Gather(uint32(x), y))
				}
				total += acc.count
			}
			partial[p] = total
		}(p, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, n := range partial {
		total += n
	}
	return total
}

// vcMessage models PowerGraph's gather phase with explicit per-edge
// message materialization (the programming-model overhead the paper
// refers to in Appendix C.1).
type vcMessage struct {
	dst uint32
	val float64
}

// VertexCentricPageRank runs gather-apply-scatter PageRank with per-edge
// messages.
func VertexCentricPageRank(g *graph.Graph, iters int) []float64 {
	sources := 0
	for _, ns := range g.Adj {
		if len(ns) > 0 {
			sources++
		}
	}
	pr := make([]float64, g.N)
	inv := make([]float64, g.N)
	for v := range pr {
		pr[v] = 1 / float64(sources)
		if d := len(g.Adj[v]); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	msgs := make([]vcMessage, 0, g.Edges())
	for it := 0; it < iters; it++ {
		// Scatter: each vertex sends pr·inv along its edges.
		msgs = msgs[:0]
		for z := 0; z < g.N; z++ {
			contrib := pr[z] * inv[z]
			for _, x := range g.Adj[z] {
				msgs = append(msgs, vcMessage{dst: x, val: contrib})
			}
		}
		// Gather + apply.
		acc := make([]float64, g.N)
		for _, m := range msgs {
			acc[m.dst] += m.val
		}
		for x := 0; x < g.N; x++ {
			pr[x] = 0.15 + 0.85*acc[x]
		}
	}
	return pr
}

// VertexCentricSSSP runs frontier-driven label correction with per-edge
// message materialization.
func VertexCentricSSSP(g *graph.Graph, start uint32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	frontier := map[uint32]struct{}{}
	for _, v := range g.Adj[start] {
		dist[v] = 1
		frontier[v] = struct{}{}
	}
	for len(frontier) > 0 {
		var msgs []vcMessage
		for u := range frontier {
			for _, v := range g.Adj[u] {
				msgs = append(msgs, vcMessage{dst: v, val: float64(dist[u] + 1)})
			}
		}
		next := map[uint32]struct{}{}
		for _, m := range msgs {
			nd := int32(m.val)
			if dist[m.dst] < 0 || nd < dist[m.dst] {
				dist[m.dst] = nd
				next[m.dst] = struct{}{}
			}
		}
		frontier = next
	}
	return dist
}
