package baseline

import (
	"runtime"
	"sort"
	"sync"

	"emptyheaded/internal/graph"
)

// ScalarMergeTriangleCount is the Snap-R-style engine: it "prunes each
// neighborhood on the fly using a simple merge sort algorithm and then
// intersects each neighborhood using a custom scalar intersection"
// (Appendix C.1) — the pruning cost is part of the measured runtime.
// Input is the *unpruned* undirected graph.
func ScalarMergeTriangleCount(g *graph.Graph, parallelism int) int64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	// On-the-fly pruning: sort each neighborhood copy and keep v < u.
	pruned := make([][]uint32, g.N)
	var wg sync.WaitGroup
	chunk := (g.N + parallelism - 1) / parallelism
	for p := 0; p < parallelism; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > g.N {
			hi = g.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				var keep []uint32
				for _, v := range g.Adj[u] {
					if v < uint32(u) {
						keep = append(keep, v)
					}
				}
				sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
				pruned[u] = keep
			}
		}(lo, hi)
	}
	wg.Wait()

	partial := make([]int64, parallelism)
	for p := 0; p < parallelism; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > g.N {
			hi = g.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			var n int64
			for x := lo; x < hi; x++ {
				nx := pruned[x]
				for _, y := range nx {
					n += int64(scalarIntersect(nx, pruned[y]))
				}
			}
			partial[p] = n
		}(p, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, n := range partial {
		total += n
	}
	return total
}

// scalarIntersect is a deliberately branch-heavy element-at-a-time
// intersection (the "custom scalar intersection" of Snap-R).
func scalarIntersect(a, b []uint32) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// ScalarMergePageRank is PageRank with the same per-iteration allocation
// profile as the Snap-R implementation (fresh score arrays per round).
func ScalarMergePageRank(g *graph.Graph, iters int) []float64 {
	sources := 0
	for _, ns := range g.Adj {
		if len(ns) > 0 {
			sources++
		}
	}
	pr := make([]float64, g.N)
	for v := range pr {
		pr[v] = 1 / float64(sources)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, g.N)
		for x := 0; x < g.N; x++ {
			var s float64
			for _, z := range g.Adj[x] {
				if d := len(g.Adj[z]); d > 0 {
					s += pr[z] / float64(d)
				}
			}
			next[x] = 0.15 + 0.85*s
		}
		pr = next
	}
	return pr
}
