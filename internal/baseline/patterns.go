package baseline

import (
	"fmt"

	"emptyheaded/internal/graph"
)

// triangleList materializes the triangle listing via the pairwise wedge
// plan, bounded by budget.
func triangleList(g *graph.Graph, budget int64) ([][3]uint32, error) {
	edgeSet := make(map[uint64]struct{}, g.Edges())
	for x, ns := range g.Adj {
		for _, y := range ns {
			edgeSet[uint64(x)<<32|uint64(y)] = struct{}{}
		}
	}
	var tris [][3]uint32
	var wedges int64
	for x, ns := range g.Adj {
		for _, y := range ns {
			for _, z := range g.Adj[y] {
				wedges++
				if budget > 0 && wedges > budget {
					return nil, ErrBudget
				}
				if _, ok := edgeSet[uint64(x)<<32|uint64(z)]; ok {
					tris = append(tris, [3]uint32{uint32(x), y, z})
					if budget > 0 && int64(len(tris)) > budget {
						return nil, ErrBudget
					}
				}
			}
		}
	}
	return tris, nil
}

// PairwisePatternCount runs the high-level pairwise join plan for the §5.3
// pattern queries ("k4", "l31", "b31"), modeling a datalog engine without
// worst-case optimal joins: intermediates (wedges, triangle listings,
// triangle×edge joins) are fully materialized and counted against budget.
// Exceeding the budget returns ErrBudget (reported as "t/o").
func PairwisePatternCount(g *graph.Graph, pattern string, budget int64) (int64, error) {
	switch pattern {
	case "k4":
		return pairwiseK4(g, budget)
	case "l31":
		return pairwiseL31(g, budget)
	case "b31":
		return pairwiseB31(g, budget)
	}
	return 0, fmt.Errorf("baseline: unknown pattern %q", pattern)
}

func pairwiseK4(g *graph.Graph, budget int64) (int64, error) {
	tris, err := triangleList(g, budget)
	if err != nil {
		return 0, err
	}
	edgeSet := make(map[uint64]struct{}, g.Edges())
	for x, ns := range g.Adj {
		for _, y := range ns {
			edgeSet[uint64(x)<<32|uint64(y)] = struct{}{}
		}
	}
	has := func(u, v uint32) bool {
		_, ok := edgeSet[uint64(u)<<32|uint64(v)]
		return ok
	}
	// Join the triangle listing with Edge(x,w), then filter the two
	// remaining edges by hash probes — the pairwise extension plan.
	var n, probed int64
	for _, t := range tris {
		for _, w := range g.Adj[t[0]] {
			probed++
			if budget > 0 && probed > budget {
				return 0, ErrBudget
			}
			if has(t[1], w) && has(t[2], w) {
				n++
			}
		}
	}
	return n, nil
}

func pairwiseL31(g *graph.Graph, budget int64) (int64, error) {
	tris, err := triangleList(g, budget)
	if err != nil {
		return 0, err
	}
	// Join triangles with Edge(x,w): the count is Σ deg(x), but the
	// pairwise engine materializes each joined tuple.
	var n, joined int64
	for _, t := range tris {
		d := int64(len(g.Adj[t[0]]))
		joined += d
		if budget > 0 && joined > budget {
			return 0, ErrBudget
		}
		n += d
	}
	return n, nil
}

func pairwiseB31(g *graph.Graph, budget int64) (int64, error) {
	tris, err := triangleList(g, budget)
	if err != nil {
		return 0, err
	}
	// Pairwise plan: materialize (triangle ⋈ U) then join the second
	// triangle listing on x'. We charge the join materialization.
	triAt := map[uint32]int64{}
	for _, t := range tris {
		triAt[t[0]]++
	}
	var n, joined int64
	for _, t := range tris {
		for _, x2 := range g.Adj[t[0]] {
			joined++
			if budget > 0 && joined > budget {
				return 0, ErrBudget
			}
			n += triAt[x2]
		}
	}
	return n, nil
}
