package baseline

import (
	"math"
	"testing"

	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
)

func bruteTrianglesDirected(g *graph.Graph) int64 {
	has := func(u, v uint32) bool {
		for _, w := range g.Adj[u] {
			if w == v {
				return true
			}
			if w > v {
				return false
			}
		}
		return false
	}
	var n int64
	for x := 0; x < g.N; x++ {
		for _, y := range g.Adj[x] {
			for _, z := range g.Adj[y] {
				if has(uint32(x), z) {
					n++
				}
			}
		}
	}
	return n
}

func TestTriangleEnginesAgree(t *testing.T) {
	g := gen.PowerLaw(500, 4000, 2.2, 21)
	pruned := g.Reorder(graph.OrderDegree, 0).Prune()
	want := bruteTrianglesDirected(pruned)

	if got := LowLevelTriangleCount(pruned, 0); got != want {
		t.Fatalf("lowlevel=%d want %d", got, want)
	}
	if got := LowLevelTriangleCount(pruned, 1); got != want {
		t.Fatalf("lowlevel serial=%d want %d", got, want)
	}
	if got := VertexCentricTriangleCount(pruned, 0); got != want {
		t.Fatalf("vertexcentric=%d want %d", got, want)
	}
	// Snap-R style prunes internally from the undirected graph.
	if got := ScalarMergeTriangleCount(g, 0); got != want {
		t.Fatalf("scalarmerge=%d want %d", got, want)
	}
	got, err := PairwiseTriangleCount(pruned, 0)
	if err != nil || got != want {
		t.Fatalf("pairwise=%d err=%v want %d", got, err, want)
	}
}

func TestPairwiseBudget(t *testing.T) {
	g := gen.PowerLaw(500, 4000, 2.2, 22)
	if _, err := PairwiseTriangleCount(g, 10); err != ErrBudget {
		t.Fatalf("err=%v want ErrBudget", err)
	}
}

func refPageRank(g *graph.Graph, iters int) []float64 {
	sources := 0
	for _, ns := range g.Adj {
		if len(ns) > 0 {
			sources++
		}
	}
	pr := make([]float64, g.N)
	for v := range pr {
		pr[v] = 1 / float64(sources)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, g.N)
		for x := 0; x < g.N; x++ {
			var s float64
			for _, z := range g.Adj[x] {
				if d := len(g.Adj[z]); d > 0 {
					s += pr[z] / float64(d)
				}
			}
			next[x] = 0.15 + 0.85*s
		}
		pr = next
	}
	return pr
}

func TestPageRankEnginesAgree(t *testing.T) {
	g := gen.PowerLaw(300, 2500, 2.3, 23)
	want := refPageRank(g, 5)
	for name, got := range map[string][]float64{
		"lowlevel":      LowLevelPageRank(g, 5, 0),
		"vertexcentric": VertexCentricPageRank(g, 5),
		"scalarmerge":   ScalarMergePageRank(g, 5),
		"pairwise":      PairwisePageRank(g, 5),
	} {
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("%s: pr[%d]=%v want %v", name, v, got[v], want[v])
			}
		}
	}
}

func refSSSP(g *graph.Graph, start uint32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	frontier := []uint32{}
	for _, v := range g.Adj[start] {
		dist[v] = 1
		frontier = append(frontier, v)
	}
	d := int32(1)
	for len(frontier) > 0 {
		d++
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if dist[v] < 0 {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

func TestSSSPEnginesAgree(t *testing.T) {
	g := gen.PowerLaw(400, 2000, 2.3, 24)
	start := g.MaxDegreeNode()
	want := refSSSP(g, start)
	for name, got := range map[string][]int32{
		"lowlevel":      LowLevelSSSP(g, start),
		"vertexcentric": VertexCentricSSSP(g, start),
		"pairwise":      PairwiseSSSP(g, start),
	} {
		for v := range want {
			if uint32(v) == start {
				continue
			}
			if got[v] != want[v] {
				t.Fatalf("%s: dist[%d]=%d want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestMergeCount(t *testing.T) {
	a := []uint32{1, 3, 5, 7}
	b := []uint32{3, 4, 5, 9}
	if n := mergeCount(a, b); n != 2 {
		t.Fatalf("mergeCount=%d", n)
	}
	if n := scalarIntersect(a, b); n != 2 {
		t.Fatalf("scalarIntersect=%d", n)
	}
	if n := mergeCount(nil, b); n != 0 {
		t.Fatalf("empty mergeCount=%d", n)
	}
}
