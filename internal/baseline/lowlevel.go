// Package baseline implements the comparison engines of §5: from-scratch
// stand-ins for the systems EmptyHeaded is benchmarked against. Each
// reproduces the algorithmic property the paper attributes to the engine:
//
//   - lowlevel (Galois-like): best-effort hand-coded CSR kernels.
//   - vertexcentric (PowerGraph-like): gather-apply-scatter with hash-set
//     adjacency for high-degree vertices (App. C.1).
//   - scalarmerge (Snap-R-like): scalar merge intersections with on-the-fly
//     pruning (App. C.1).
//   - pairwise (SociaLite-like): pairwise hash joins, materializing the
//     Ω(N²) wedge intermediate the worst-case optimal engines avoid (§1).
//
// The LogicBlox stand-in is EmptyHeaded itself with single-bag plans,
// uint-only layouts and galloping-only intersections (exec.Options), since
// LogicBlox runs a worst-case optimal leapfrog triejoin without GHDs or
// SIMD layouts (§5.1.2).
package baseline

import (
	"runtime"
	"sync"

	"emptyheaded/internal/graph"
)

// LowLevelTriangleCount is the Galois-style hand-tuned kernel: parallel
// iteration over vertices with sorted-adjacency merge intersections.
// The input should be the degree-ordered, src>dst pruned graph, as in
// §5.2.1.
func LowLevelTriangleCount(g *graph.Graph, parallelism int) int64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	partial := make([]int64, parallelism)
	chunk := (g.N + parallelism - 1) / parallelism
	for p := 0; p < parallelism; p++ {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > g.N {
			hi = g.N
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(p, lo, hi int) {
			defer wg.Done()
			var n int64
			for x := lo; x < hi; x++ {
				nx := g.Adj[x]
				for _, y := range nx {
					n += int64(mergeCount(nx, g.Adj[y]))
				}
			}
			partial[p] = n
		}(p, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, n := range partial {
		total += n
	}
	return total
}

func mergeCount(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			n++
			i++
			j++
		} else if av < bv {
			i++
		} else {
			j++
		}
	}
	return n
}

// LowLevelPageRank is the Galois-style pull-based PageRank over CSR.
func LowLevelPageRank(g *graph.Graph, iters, parallelism int) []float64 {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	sources := 0
	for _, ns := range g.Adj {
		if len(ns) > 0 {
			sources++
		}
	}
	pr := make([]float64, g.N)
	next := make([]float64, g.N)
	inv := make([]float64, g.N)
	for v := range pr {
		pr[v] = 1 / float64(sources)
		if d := len(g.Adj[v]); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	for it := 0; it < iters; it++ {
		var wg sync.WaitGroup
		chunk := (g.N + parallelism - 1) / parallelism
		for p := 0; p < parallelism; p++ {
			lo, hi := p*chunk, (p+1)*chunk
			if hi > g.N {
				hi = g.N
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for x := lo; x < hi; x++ {
					var s float64
					for _, z := range g.Adj[x] {
						s += pr[z] * inv[z]
					}
					next[x] = 0.15 + 0.85*s
				}
			}(lo, hi)
		}
		wg.Wait()
		pr, next = next, pr
	}
	return pr
}

// LowLevelSSSP is breadth-first level propagation (the unit-weight special
// case the Table 7 query computes), using a frontier queue like Galois'
// data-driven executor.
func LowLevelSSSP(g *graph.Graph, start uint32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	frontier := make([]uint32, 0, len(g.Adj[start]))
	for _, v := range g.Adj[start] {
		dist[v] = 1
		frontier = append(frontier, v)
	}
	d := int32(1)
	for len(frontier) > 0 {
		d++
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if dist[v] < 0 {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}
