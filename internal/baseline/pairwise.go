package baseline

import (
	"errors"

	"emptyheaded/internal/graph"
)

// ErrBudget reports that a pairwise plan exceeded its intermediate-result
// budget; the benchmark harness reports it as the paper reports LogicBlox
// and SociaLite timeouts ("t/o").
var ErrBudget = errors.New("baseline: pairwise intermediate budget exceeded")

// PairwiseTriangleCount is the high-level relational baseline
// (SociaLite-style): a pairwise join plan that materializes the wedge
// intermediate R(x,y) ⋈ S(y,z) — provably Ω(N²) in the worst case (§1) —
// then probes T(x,z) with a hash join. maxIntermediate bounds the wedge
// materialization (0 = unlimited); exceeding it returns ErrBudget.
func PairwiseTriangleCount(g *graph.Graph, maxIntermediate int64) (int64, error) {
	// Hash index on edges for the final probe.
	edgeSet := make(map[uint64]struct{}, g.Edges())
	for x, ns := range g.Adj {
		for _, y := range ns {
			edgeSet[uint64(x)<<32|uint64(y)] = struct{}{}
		}
	}
	// Materialize wedges (x,y,z) with (x,y),(y,z) ∈ E.
	type wedge struct{ x, z uint32 }
	var wedges []wedge
	for x, ns := range g.Adj {
		for _, y := range ns {
			for _, z := range g.Adj[y] {
				wedges = append(wedges, wedge{uint32(x), z})
				if maxIntermediate > 0 && int64(len(wedges)) > maxIntermediate {
					return 0, ErrBudget
				}
			}
		}
	}
	var n int64
	for _, w := range wedges {
		if _, ok := edgeSet[uint64(w.x)<<32|uint64(w.z)]; ok {
			n++
		}
	}
	return n, nil
}

// pairRel is a simple tuple-list relation for the pairwise engine.
type pairRel struct {
	tuples [][2]uint32
	anns   []float64
}

// hashJoin joins l.col(lk) = r.col(rk), producing (l-tuple ++ r-other)
// with multiplied annotations — the classic pairwise building block.
func hashJoin(l, r *pairRel, lk, rk int) *pairRel {
	idx := map[uint32][]int{}
	for i, t := range r.tuples {
		idx[t[rk]] = append(idx[t[rk]], i)
	}
	out := &pairRel{}
	for i, t := range l.tuples {
		for _, j := range idx[t[lk]] {
			rt := r.tuples[j]
			out.tuples = append(out.tuples, [2]uint32{t[1-lk], rt[1-rk]})
			la, ra := 1.0, 1.0
			if l.anns != nil {
				la = l.anns[i]
			}
			if r.anns != nil {
				ra = r.anns[j]
			}
			out.anns = append(out.anns, la*ra)
		}
	}
	return out
}

// PairwisePageRank is PageRank expressed as iterated pairwise hash joins
// over tuple lists — the execution style of a datalog engine without
// worst-case optimal joins or columnar storage.
func PairwisePageRank(g *graph.Graph, iters int) []float64 {
	edges := &pairRel{}
	for x, ns := range g.Adj {
		for _, z := range ns {
			edges.tuples = append(edges.tuples, [2]uint32{uint32(x), z})
		}
	}
	sources := 0
	deg := make([]float64, g.N)
	for v, ns := range g.Adj {
		deg[v] = float64(len(ns))
		if len(ns) > 0 {
			sources++
		}
	}
	pr := make([]float64, g.N)
	for v := range pr {
		pr[v] = 1 / float64(sources)
	}
	for it := 0; it < iters; it++ {
		// PR'(x) = 0.15 + 0.85 Σ_z Edge(x,z)·PR(z)/deg(z), via a hash
		// join of Edge with the PR vector.
		contrib := &pairRel{}
		for v := 0; v < g.N; v++ {
			if deg[v] > 0 {
				contrib.tuples = append(contrib.tuples, [2]uint32{uint32(v), 0})
				contrib.anns = append(contrib.anns, pr[v]/deg[v])
			}
		}
		joined := hashJoin(edges, contrib, 1, 0)
		next := make([]float64, g.N)
		for i, t := range joined.tuples {
			next[t[0]] += joined.anns[i]
		}
		for x := range next {
			next[x] = 0.15 + 0.85*next[x]
		}
		pr = next
	}
	return pr
}

// PairwiseSSSP iterates a join of the frontier with the edge relation,
// rebuilding a hash index every round (no incremental frontier storage).
func PairwiseSSSP(g *graph.Graph, start uint32) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	frontier := map[uint32]int32{}
	for _, v := range g.Adj[start] {
		dist[v] = 1
		frontier[v] = 1
	}
	for len(frontier) > 0 {
		// "Join" frontier ⋈ Edge via per-round scan of all edges
		// (SociaLite's seminaive without indexed deltas).
		next := map[uint32]int32{}
		for w := 0; w < g.N; w++ {
			dw, inF := frontier[uint32(w)]
			if !inF {
				continue
			}
			for _, x := range g.Adj[w] {
				nd := dw + 1
				if dist[x] < 0 || nd < dist[x] {
					dist[x] = nd
					next[x] = nd
				}
			}
		}
		frontier = next
	}
	return dist
}
