package lp

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestTriangleFractionalCover(t *testing.T) {
	// Triangle query: 3 attributes, 3 edges each covering 2 attributes.
	// min x_R + x_S + x_T  s.t. each vertex covered: known optimum 3/2
	// at x = (1/2, 1/2, 1/2)  (Example 2.1 of the paper).
	c := []float64{1, 1, 1}
	A := [][]float64{
		{1, 0, 1}, // x covered by R(x,y), T(x,z)
		{1, 1, 0}, // y covered by R(x,y), S(y,z)
		{0, 1, 1}, // z covered by S(y,z), T(x,z)
	}
	b := []float64{1, 1, 1}
	x, obj, err := Minimize(c, A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(obj, 1.5) {
		t.Fatalf("triangle cover obj=%v want 1.5 (x=%v)", obj, x)
	}
}

func TestSingleEdgeCover(t *testing.T) {
	// One relation covering both attributes: optimum 1.
	c := []float64{1}
	A := [][]float64{{1}, {1}}
	b := []float64{1, 1}
	_, obj, err := Minimize(c, A, b)
	if err != nil || !almost(obj, 1) {
		t.Fatalf("obj=%v err=%v", obj, err)
	}
}

func TestFourCliqueCover(t *testing.T) {
	// 4-clique: 4 vertices, 6 edges; fractional cover number = 2
	// (each vertex in 3 edges; x_e = 1/3 each gives Σ=2).
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}, {2, 3}}
	c := make([]float64, 6)
	for i := range c {
		c[i] = 1
	}
	A := make([][]float64, 4)
	for v := 0; v < 4; v++ {
		A[v] = make([]float64, 6)
		for e, pair := range edges {
			if pair[0] == v || pair[1] == v {
				A[v][e] = 1
			}
		}
	}
	b := []float64{1, 1, 1, 1}
	_, obj, err := Minimize(c, A, b)
	if err != nil || !almost(obj, 2) {
		t.Fatalf("4-clique cover obj=%v err=%v", obj, err)
	}
}

func TestWeightedCover(t *testing.T) {
	// AGM with unequal relation sizes: min x_R·log|R| + x_S·log|S| for a
	// path query R(x,y),S(y,z): both attrs need full cover of x,y,z;
	// optimum is x_R = x_S = 1.
	c := []float64{math.Log(100), math.Log(10)}
	A := [][]float64{
		{1, 0}, // x
		{1, 1}, // y
		{0, 1}, // z
	}
	b := []float64{1, 1, 1}
	x, obj, err := Minimize(c, A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(x[0], 1) || !almost(x[1], 1) {
		t.Fatalf("x=%v want [1 1]", x)
	}
	if !almost(obj, math.Log(1000)) {
		t.Fatalf("obj=%v want log(1000)", obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≥ 1 and -x ≥ 0 (i.e. x ≤ 0) with x ≥ 0 → infeasible.
	_, _, err := Minimize([]float64{1}, [][]float64{{1}, {-1}}, []float64{1, 1})
	if err != ErrInfeasible {
		t.Fatalf("err=%v want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x ≥ 0: unbounded below.
	_, _, err := Minimize([]float64{-1}, [][]float64{{1}}, []float64{0})
	if err != ErrUnbounded {
		t.Fatalf("err=%v want ErrUnbounded", err)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate constraints must not break the solver.
	c := []float64{1, 1}
	A := [][]float64{{1, 1}, {1, 1}, {1, 0}}
	b := []float64{1, 1, 0.25}
	x, obj, err := Minimize(c, A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(obj, 1) {
		t.Fatalf("obj=%v x=%v want 1", obj, x)
	}
}

func TestLollipopCover(t *testing.T) {
	// Lollipop L3,1: triangle on (x,y,z) plus pendant edge U(x,w).
	// Vertices x,y,z,w; edges R(x,y),S(y,z),T(x,z),U(x,w).
	// w only covered by U → x_U = 1; triangle needs 3/2 more… but U also
	// covers x, so constraint on x is x_R + x_T + x_U ≥ 1 and the optimum
	// is 1 + 1 = 2 (cover S fully + U fully: S covers y,z; U covers x,w).
	c := []float64{1, 1, 1, 1}
	A := [][]float64{
		{1, 0, 1, 1}, // x: R,T,U
		{1, 1, 0, 0}, // y: R,S
		{0, 1, 1, 0}, // z: S,T
		{0, 0, 0, 1}, // w: U
	}
	b := []float64{1, 1, 1, 1}
	_, obj, err := Minimize(c, A, b)
	if err != nil || !almost(obj, 2) {
		t.Fatalf("lollipop cover obj=%v err=%v", obj, err)
	}
}
