// Package lp provides a small dense two-phase simplex solver.
//
// EmptyHeaded's query compiler needs to solve the fractional edge cover
// linear program to compute AGM bounds and fractional hypertree widths
// (§2.1, §3.1 of the paper: "One can find the best bound, AGM(Q), in
// polynomial time: take the log of Eq. 1 and solve the linear program").
// Query hypergraphs have at most a handful of vertices and edges, so a
// dense tableau solver is entirely adequate.
package lp

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when no x ≥ 0 satisfies the constraints.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// Minimize solves
//
//	min c·x   s.t.  A·x ≥ b,  x ≥ 0
//
// with the two-phase simplex method, returning an optimal x and the
// objective value.
func Minimize(c []float64, A [][]float64, b []float64) ([]float64, float64, error) {
	m, n := len(A), len(c)
	if m != len(b) {
		return nil, 0, errors.New("lp: dimension mismatch")
	}
	for _, row := range A {
		if len(row) != n {
			return nil, 0, errors.New("lp: dimension mismatch")
		}
	}
	// Standard form: A·x − s + a = b, with b ≥ 0 after sign-flips.
	// Columns: [x (n)] [s (m)] [a (m)] and the RHS.
	cols := n + 2*m
	t := make([][]float64, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, cols+1)
		sign := 1.0
		if b[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * A[i][j]
		}
		t[i][n+i] = -sign // surplus
		t[i][n+m+i] = 1   // artificial
		t[i][cols] = sign * b[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + m + i
	}

	// Phase 1: minimize the sum of artificials. The phase-1 cost vector is
	// 1 on artificial columns and 0 elsewhere; with the artificials basic,
	// the reduced-cost row is c − Σ_i row_i.
	obj := make([]float64, cols+1)
	for j := n + m; j < cols; j++ {
		obj[j] = 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j <= cols; j++ {
			obj[j] -= t[i][j]
		}
	}
	if err := pivotLoop(t, obj, basis, cols); err != nil {
		return nil, 0, err
	}
	if -obj[cols] > eps { // phase-1 optimum > 0 → infeasible
		return nil, 0, ErrInfeasible
	}
	// Drive any artificial variables out of the basis.
	for i, bv := range basis {
		if bv < n+m {
			continue
		}
		done := false
		for j := 0; j < n+m && !done; j++ {
			if math.Abs(t[i][j]) > eps {
				pivot(t, obj, basis, i, j, cols)
				done = true
			}
		}
		// A row with no pivot candidate is all-zero (redundant); leave it.
	}

	// Phase 2: minimize c·x, with artificial columns frozen out.
	for j := 0; j <= cols; j++ {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = c[j]
	}
	for i, bv := range basis {
		if bv < n && math.Abs(obj[bv]) > 0 {
			coef := obj[bv]
			for j := 0; j <= cols; j++ {
				obj[j] -= coef * t[i][j]
			}
		}
	}
	// Forbid re-entering artificial columns.
	for j := n + m; j < cols; j++ {
		obj[j] = math.Inf(1)
	}
	if err := pivotLoop(t, obj, basis, cols); err != nil {
		return nil, 0, err
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = t[i][cols]
		}
	}
	val := 0.0
	for j := 0; j < n; j++ {
		val += c[j] * x[j]
	}
	return x, val, nil
}

// pivotLoop runs simplex iterations until optimality, using Bland's rule
// (smallest eligible index) to guarantee termination.
func pivotLoop(t [][]float64, obj []float64, basis []int, cols int) error {
	m := len(t)
	for iter := 0; iter < 10000; iter++ {
		// Entering column: first with negative reduced cost (Bland).
		enter := -1
		for j := 0; j < cols; j++ {
			if !math.IsInf(obj[j], 1) && obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][cols] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		pivot(t, obj, basis, leave, enter, cols)
	}
	return errors.New("lp: iteration limit exceeded")
}

func pivot(t [][]float64, obj []float64, basis []int, row, col, cols int) {
	p := t[row][col]
	for j := 0; j <= cols; j++ {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= cols; j++ {
			t[i][j] -= f * t[row][j]
		}
	}
	if !math.IsInf(obj[col], 1) {
		f := obj[col]
		if f != 0 {
			for j := 0; j <= cols; j++ {
				if !math.IsInf(obj[j], 1) {
					obj[j] -= f * t[row][j]
				}
			}
		}
	}
	basis[row] = col
}
