// Package quantile provides the nearest-rank quantile index shared by the
// server's /stats latency windows and the bench load generator.
package quantile

// Index returns the nearest-rank index of the p-quantile (0 < p <= 1) in
// n ascending-sorted samples; callers index their sorted slice with it.
func Index(n int, p float64) int {
	i := int(p*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
