package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func square() *Graph {
	// 0-1-2-3-0 cycle plus chord 0-2.
	return FromEdges(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}, true)
}

func TestFromEdges(t *testing.T) {
	g := square()
	if g.N != 4 || g.Edges() != 10 {
		t.Fatalf("N=%d M=%d", g.N, g.Edges())
	}
	if !reflect.DeepEqual(g.Adj[0], []uint32{1, 2, 3}) {
		t.Fatalf("adj[0]=%v", g.Adj[0])
	}
	// Self loops and duplicates dropped.
	g2 := FromEdges(3, [][2]uint32{{0, 0}, {0, 1}, {0, 1}, {1, 0}}, false)
	if g2.Edges() != 2 {
		t.Fatalf("M=%d want 2", g2.Edges())
	}
}

func TestParseEdgeList(t *testing.T) {
	src := `# comment
10 20
20 30
10 30
% another comment
30 10
`
	g, dict, err := ParseEdgeList(strings.NewReader(src), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || dict.Len() != 3 {
		t.Fatalf("N=%d dict=%d", g.N, dict.Len())
	}
	c10, _ := dict.Lookup(10)
	c30, _ := dict.Lookup(30)
	found := false
	for _, v := range g.Adj[c30] {
		if v == c10 {
			found = true
		}
	}
	if !found {
		t.Fatal("edge 30→10 missing")
	}
	if dict.Decode(c10) != 10 {
		t.Fatal("decode broken")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	if _, _, err := ParseEdgeList(strings.NewReader("1\n"), false); err == nil {
		t.Fatal("single-field line should error")
	}
	if _, _, err := ParseEdgeList(strings.NewReader("a b\n"), false); err == nil {
		t.Fatal("non-numeric should error")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g := square()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ParseEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Edges() != g.Edges() {
		t.Fatalf("edges %d vs %d", g2.Edges(), g.Edges())
	}
}

func TestPrune(t *testing.T) {
	g := square()
	p := g.Prune()
	if p.Edges() != 5 {
		t.Fatalf("pruned edges=%d want 5", p.Edges())
	}
	for u, ns := range p.Adj {
		for _, v := range ns {
			if uint32(u) <= v {
				t.Fatalf("pruned edge %d→%d violates src>dst", u, v)
			}
		}
	}
}

func TestUndirect(t *testing.T) {
	g := FromEdges(3, [][2]uint32{{0, 1}, {1, 2}}, false)
	u := g.Undirect()
	if u.Edges() != 4 {
		t.Fatalf("edges=%d want 4", u.Edges())
	}
	if len(u.Adj[1]) != 2 {
		t.Fatalf("adj[1]=%v", u.Adj[1])
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := square()
	perm := []uint32{3, 2, 1, 0}
	r := g.Relabel(perm)
	if r.Edges() != g.Edges() {
		t.Fatalf("edges %d vs %d", r.Edges(), g.Edges())
	}
	// Edge 0-1 becomes 3-2.
	found := false
	for _, v := range r.Adj[3] {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("relabeled edge missing")
	}
}

func TestOrderingsArePermutations(t *testing.T) {
	g := FromEdges(50, genChain(50), true)
	for _, o := range Orderings {
		perm := g.Permutation(o, 42)
		if len(perm) != g.N {
			t.Fatalf("%s: len=%d", o, len(perm))
		}
		seen := make([]bool, g.N)
		for _, p := range perm {
			if int(p) >= g.N || seen[p] {
				t.Fatalf("%s: not a permutation", o)
			}
			seen[p] = true
		}
		r := g.Reorder(o, 42)
		if r.Edges() != g.Edges() {
			t.Fatalf("%s: edges %d vs %d", o, r.Edges(), g.Edges())
		}
	}
}

func genChain(n int) [][2]uint32 {
	var es [][2]uint32
	for i := 0; i+1 < n; i++ {
		es = append(es, [2]uint32{uint32(i), uint32(i + 1)})
	}
	return es
}

func TestDegreeOrdering(t *testing.T) {
	// Star: center has max degree → new id 0 under degree ordering.
	edges := [][2]uint32{{4, 0}, {4, 1}, {4, 2}, {4, 3}}
	g := FromEdges(5, edges, true)
	perm := g.Permutation(OrderDegree, 0)
	if perm[4] != 0 {
		t.Fatalf("center got id %d want 0", perm[4])
	}
	rev := g.Permutation(OrderRevDegree, 0)
	if rev[4] != 4 {
		t.Fatalf("center got id %d want 4 under revdegree", rev[4])
	}
}

func TestBFSOrderingStartsAtMaxDegree(t *testing.T) {
	edges := [][2]uint32{{4, 0}, {4, 1}, {4, 2}, {4, 3}, {0, 1}}
	g := FromEdges(5, edges, true)
	perm := g.Permutation(OrderBFS, 0)
	if perm[4] != 0 {
		t.Fatalf("BFS should start at max-degree vertex, perm[4]=%d", perm[4])
	}
}

func TestBFSHandlesDisconnected(t *testing.T) {
	g := FromEdges(6, [][2]uint32{{0, 1}, {2, 3}, {4, 5}}, true)
	perm := g.Permutation(OrderBFS, 0)
	seen := make([]bool, 6)
	for _, p := range perm {
		seen[p] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("vertex id %d unassigned", i)
		}
	}
}

func TestHybridEqualsDegreeOnDistinctDegrees(t *testing.T) {
	// When all degrees are distinct, hybrid == degree ordering.
	edges := [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}
	g := FromEdges(5, edges, true)
	hd := g.Permutation(OrderHybrid, 0)
	dg := g.Permutation(OrderDegree, 0)
	if hd[3] != dg[3] {
		t.Fatalf("highest degree mismatch: hybrid=%d degree=%d", hd[3], dg[3])
	}
}

func TestMaxDegreeNode(t *testing.T) {
	g := FromEdges(5, [][2]uint32{{4, 0}, {4, 1}, {4, 2}, {4, 3}}, true)
	if g.MaxDegreeNode() != 4 {
		t.Fatalf("MaxDegreeNode=%d", g.MaxDegreeNode())
	}
}

func TestDensitySkew(t *testing.T) {
	// Regular graph: zero skew (mean == mode).
	reg := FromEdges(6, [][2]uint32{{0, 1}, {2, 3}, {4, 5}}, true)
	if s := reg.DensitySkew(); s != 0 {
		t.Fatalf("regular graph skew=%v want 0", s)
	}
	// Star graph: one huge hub, many degree-1 leaves → positive skew.
	var es [][2]uint32
	for i := uint32(1); i < 100; i++ {
		es = append(es, [2]uint32{0, i})
	}
	star := FromEdges(100, es, true)
	if s := star.DensitySkew(); s <= 0 {
		t.Fatalf("star skew=%v want >0", s)
	}
}

func TestDictionaryPermute(t *testing.T) {
	d := NewDictionary()
	a := d.Encode(100) // 0
	b := d.Encode(200) // 1
	d.Permute([]uint32{1, 0})
	if d.Decode(1) != 100 || d.Decode(0) != 200 {
		t.Fatal("permuted decode wrong")
	}
	na, _ := d.Lookup(100)
	nb, _ := d.Lookup(200)
	if na != 1 || nb != 0 {
		t.Fatalf("permuted lookup: %d %d (was %d %d)", na, nb, a, b)
	}
}
