package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ordering identifies a node-ordering scheme (Appendix A.1.1).
type Ordering uint8

const (
	// OrderNone keeps the input numbering.
	OrderNone Ordering = iota
	// OrderRandom shuffles vertex ids (the Appendix A.1 baseline).
	OrderRandom
	// OrderBFS labels vertices in breadth-first order from the highest
	// degree vertex.
	OrderBFS
	// OrderDegree sorts by descending degree (the standard graph-engine
	// choice, used for the pruned triangle benchmarks).
	OrderDegree
	// OrderRevDegree sorts by ascending degree.
	OrderRevDegree
	// OrderStrongRun sorts by degree, then assigns consecutive ids to the
	// neighbors of each vertex in that order (a BFS approximation).
	OrderStrongRun
	// OrderShingle orders by neighborhood similarity via min-hash
	// shingles (Chierichetti et al.).
	OrderShingle
	// OrderHybrid is BFS followed by a stable sort on descending degree
	// (the paper's proposed hybrid, Appendix A.1.1).
	OrderHybrid
)

// String returns the ordering name as used in Table 9 / Figure 7.
func (o Ordering) String() string {
	switch o {
	case OrderNone:
		return "none"
	case OrderRandom:
		return "random"
	case OrderBFS:
		return "bfs"
	case OrderDegree:
		return "degree"
	case OrderRevDegree:
		return "revdegree"
	case OrderStrongRun:
		return "strongrun"
	case OrderShingle:
		return "shingle"
	case OrderHybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Ordering(%d)", uint8(o))
}

// ParseOrdering maps an ordering name to its constant.
func ParseOrdering(s string) (Ordering, error) {
	for _, o := range []Ordering{OrderNone, OrderRandom, OrderBFS, OrderDegree,
		OrderRevDegree, OrderStrongRun, OrderShingle, OrderHybrid} {
		if o.String() == s {
			return o, nil
		}
	}
	return OrderNone, fmt.Errorf("graph: unknown ordering %q", s)
}

// Orderings lists every scheme benchmarked in Table 9 and Figure 7.
var Orderings = []Ordering{
	OrderRandom, OrderBFS, OrderDegree, OrderRevDegree,
	OrderStrongRun, OrderShingle, OrderHybrid,
}

// Permutation computes perm[old] = new for the ordering; seed feeds the
// randomized schemes (Random, Shingle hashing).
func (g *Graph) Permutation(o Ordering, seed int64) []uint32 {
	switch o {
	case OrderNone:
		perm := make([]uint32, g.N)
		for i := range perm {
			perm[i] = uint32(i)
		}
		return perm
	case OrderRandom:
		return g.randomPerm(seed)
	case OrderBFS:
		return g.bfsPerm()
	case OrderDegree:
		return g.degreePerm(false)
	case OrderRevDegree:
		return g.degreePerm(true)
	case OrderStrongRun:
		return g.strongRunPerm()
	case OrderShingle:
		return g.shinglePerm(seed)
	case OrderHybrid:
		return g.hybridPerm()
	}
	panic("graph: unknown ordering")
}

// Reorder relabels the graph under the ordering.
func (g *Graph) Reorder(o Ordering, seed int64) *Graph {
	return g.Relabel(g.Permutation(o, seed))
}

func (g *Graph) randomPerm(seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]uint32, g.N)
	for i := range perm {
		perm[i] = uint32(i)
	}
	rng.Shuffle(g.N, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// rankToPerm converts a visit order (rank[i] = i-th visited vertex) into a
// relabeling permutation.
func rankToPerm(order []uint32) []uint32 {
	perm := make([]uint32, len(order))
	for newID, old := range order {
		perm[old] = uint32(newID)
	}
	return perm
}

func (g *Graph) bfsPerm() []uint32 {
	visited := make([]bool, g.N)
	order := make([]uint32, 0, g.N)
	// Seed the BFS from the highest-degree vertex; restart from the next
	// unvisited highest-degree vertex for disconnected graphs.
	byDeg := g.verticesByDegree(false)
	queue := make([]uint32, 0, g.N)
	for _, s := range byDeg {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range g.Adj[v] {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return rankToPerm(order)
}

func (g *Graph) verticesByDegree(ascending bool) []uint32 {
	vs := make([]uint32, g.N)
	for i := range vs {
		vs[i] = uint32(i)
	}
	sort.SliceStable(vs, func(i, j int) bool {
		di, dj := len(g.Adj[vs[i]]), len(g.Adj[vs[j]])
		if di != dj {
			if ascending {
				return di < dj
			}
			return di > dj
		}
		return vs[i] < vs[j]
	})
	return vs
}

func (g *Graph) degreePerm(ascending bool) []uint32 {
	return rankToPerm(g.verticesByDegree(ascending))
}

func (g *Graph) strongRunPerm() []uint32 {
	byDeg := g.verticesByDegree(false)
	assigned := make([]bool, g.N)
	order := make([]uint32, 0, g.N)
	take := func(v uint32) {
		if !assigned[v] {
			assigned[v] = true
			order = append(order, v)
		}
	}
	for _, v := range byDeg {
		take(v)
		for _, w := range g.Adj[v] {
			take(w)
		}
	}
	return rankToPerm(order)
}

func (g *Graph) shinglePerm(seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	// Random hash h(v) = (a·v + b) mod p over a large prime.
	const p = 2147483647
	a := uint64(rng.Int63n(p-1) + 1)
	b := uint64(rng.Int63n(p))
	hash := func(v uint32) uint64 { return (a*uint64(v) + b) % p }
	shingle := make([]uint64, g.N)
	for v := range g.Adj {
		best := uint64(p)
		for _, w := range g.Adj[v] {
			if h := hash(w); h < best {
				best = h
			}
		}
		shingle[v] = best
	}
	vs := make([]uint32, g.N)
	for i := range vs {
		vs[i] = uint32(i)
	}
	sort.SliceStable(vs, func(i, j int) bool {
		if shingle[vs[i]] != shingle[vs[j]] {
			return shingle[vs[i]] < shingle[vs[j]]
		}
		return len(g.Adj[vs[i]]) > len(g.Adj[vs[j]])
	})
	return rankToPerm(vs)
}

func (g *Graph) hybridPerm() []uint32 {
	// BFS order, then stable sort by descending degree: equal-degree
	// vertices retain their BFS relative order (Appendix A.1.1).
	bfs := g.bfsPerm() // bfs[old] = bfs rank
	vs := make([]uint32, g.N)
	for i := range vs {
		vs[i] = uint32(i)
	}
	sort.SliceStable(vs, func(i, j int) bool {
		di, dj := len(g.Adj[vs[i]]), len(g.Adj[vs[j]])
		if di != dj {
			return di > dj
		}
		return bfs[vs[i]] < bfs[vs[j]]
	})
	return rankToPerm(vs)
}
