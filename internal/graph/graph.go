// Package graph provides the graph substrate of the reproduction: edge
// list loading, dictionary encoding, the node-ordering schemes of
// Appendix A.1, symmetric pruning, and density-skew measurement.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"slices"
	"strconv"
	"strings"
)

// Graph is an in-memory graph over vertices 0..N-1 with sorted adjacency
// lists. For directed graphs Adj holds out-neighbors; undirected graphs
// store each edge in both lists.
type Graph struct {
	N   int
	Adj [][]uint32
}

// Edges returns the number of directed edges (sum of list lengths).
func (g *Graph) Edges() int64 {
	var m int64
	for _, ns := range g.Adj {
		m += int64(len(ns))
	}
	return m
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// MaxDegreeNode returns the vertex with the largest degree (the SSSP start
// node convention of §5.2.2).
func (g *Graph) MaxDegreeNode() uint32 {
	best, bd := 0, -1
	for v := range g.Adj {
		if len(g.Adj[v]) > bd {
			best, bd = v, len(g.Adj[v])
		}
	}
	return uint32(best)
}

// FromEdges builds a graph from (src,dst) pairs; when undirected is set
// each pair is inserted in both directions. Duplicate edges and self-loops
// are dropped.
func FromEdges(n int, edges [][2]uint32, undirected bool) *Graph {
	srcs := make([]uint32, len(edges))
	dsts := make([]uint32, len(edges))
	for i, e := range edges {
		srcs[i], dsts[i] = e[0], e[1]
	}
	return FromEdgeColumns(n, srcs, dsts, undirected)
}

// FromEdgeColumns builds a graph from parallel src/dst columns — the
// columnar bulk-ingestion path. Adjacency is laid out with counting-sort
// placement into one flat backing array (two passes: degree count, then
// scatter), so ingestion does no per-vertex append growth; each list is
// then sorted and deduplicated in place. Duplicate edges, self-loops and
// out-of-range endpoints are dropped.
func FromEdgeColumns(n int, srcs, dsts []uint32, undirected bool) *Graph {
	if len(srcs) != len(dsts) {
		panic(fmt.Sprintf("graph: %d srcs, %d dsts", len(srcs), len(dsts)))
	}
	deg := make([]int, n)
	for i := range srcs {
		u, v := srcs[i], dsts[i]
		if u == v || int(u) >= n || int(v) >= n {
			continue
		}
		deg[u]++
		if undirected {
			deg[v]++
		}
	}
	total := 0
	pos := make([]int, n)
	for v, d := range deg {
		pos[v] = total
		total += d
	}
	flat := make([]uint32, total)
	fill := make([]int, n)
	copy(fill, pos)
	for i := range srcs {
		u, v := srcs[i], dsts[i]
		if u == v || int(u) >= n || int(v) >= n {
			continue
		}
		flat[fill[u]] = v
		fill[u]++
		if undirected {
			flat[fill[v]] = u
			fill[v]++
		}
	}
	adj := make([][]uint32, n)
	for v := range adj {
		adj[v] = sortDedup(flat[pos[v] : pos[v]+deg[v]])
	}
	return &Graph{N: n, Adj: adj}
}

func sortDedup(ns []uint32) []uint32 {
	if len(ns) == 0 {
		return ns
	}
	slices.Sort(ns)
	out := ns[:1]
	for _, v := range ns[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Dictionary maps original vertex identifiers to dense 32-bit codes
// (§2.2 "Dictionary Encoding").
type Dictionary struct {
	toCode map[int64]uint32
	toOrig []int64
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{toCode: map[int64]uint32{}}
}

// Encode returns the code for orig, assigning the next code on first use.
func (d *Dictionary) Encode(orig int64) uint32 {
	if c, ok := d.toCode[orig]; ok {
		return c
	}
	c := uint32(len(d.toOrig))
	d.toCode[orig] = c
	d.toOrig = append(d.toOrig, orig)
	return c
}

// Lookup returns the code for orig without assigning.
func (d *Dictionary) Lookup(orig int64) (uint32, bool) {
	c, ok := d.toCode[orig]
	return c, ok
}

// Decode returns the original identifier for a code.
func (d *Dictionary) Decode(code uint32) int64 { return d.toOrig[code] }

// Len returns the number of encoded identifiers.
func (d *Dictionary) Len() int { return len(d.toOrig) }

// Origs exposes the code → original-identifier column (index = code).
// The slice is the dictionary's backing store; callers must not modify
// it. The snapshot writer serializes it verbatim.
func (d *Dictionary) Origs() []int64 { return d.toOrig }

// DictFromOrigs rebuilds a dictionary from its code → original column
// (the snapshot restore path): code i maps to origs[i]. The reverse map
// is reconstructed eagerly.
func DictFromOrigs(origs []int64) *Dictionary {
	d := &Dictionary{toCode: make(map[int64]uint32, len(origs)), toOrig: origs}
	for c, o := range origs {
		d.toCode[o] = uint32(c)
	}
	return d
}

// Permute renumbers the dictionary with perm (perm[oldCode] = newCode),
// keeping original identifiers attached to their vertices.
func (d *Dictionary) Permute(perm []uint32) {
	orig := make([]int64, len(d.toOrig))
	for oldCode, o := range d.toOrig {
		orig[perm[oldCode]] = o
	}
	d.toOrig = orig
	for o, c := range d.toCode {
		d.toCode[o] = perm[c]
	}
}

// FromEdgePairs dictionary-encodes (src,dst) pairs given as original
// identifiers and builds the graph — the in-memory twin of ParseEdgeList,
// used by the query service's inline /load.
func FromEdgePairs(pairs [][2]int64, undirected bool) (*Graph, *Dictionary) {
	dict := NewDictionary()
	srcs := make([]uint32, len(pairs))
	dsts := make([]uint32, len(pairs))
	for i, p := range pairs {
		srcs[i], dsts[i] = dict.Encode(p[0]), dict.Encode(p[1])
	}
	return FromEdgeColumns(dict.Len(), srcs, dsts, undirected), dict
}

// ParseEdgeList reads a whitespace-separated "src dst" edge list (# or %
// comment lines are skipped), dictionary-encodes the vertex identifiers
// and returns the graph plus the dictionary.
func ParseEdgeList(r io.Reader, undirected bool) (*Graph, *Dictionary, error) {
	dict := NewDictionary()
	var srcs, dsts []uint32 // parsed straight into columns
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		srcs = append(srcs, dict.Encode(u))
		dsts = append(dsts, dict.Encode(v))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return FromEdgeColumns(dict.Len(), srcs, dsts, undirected), dict, nil
}

// WriteEdgeList writes the graph as "src dst" lines.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for u, ns := range g.Adj {
		for _, v := range ns {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Relabel applies perm (perm[old] = new) and returns the renumbered graph.
func (g *Graph) Relabel(perm []uint32) *Graph {
	adj := make([][]uint32, g.N)
	for u, ns := range g.Adj {
		nu := perm[u]
		out := make([]uint32, len(ns))
		for i, v := range ns {
			out[i] = perm[v]
		}
		slices.Sort(out)
		adj[nu] = out
	}
	return &Graph{N: g.N, Adj: adj}
}

// Undirect returns the symmetric closure of g.
func (g *Graph) Undirect() *Graph {
	adj := make([][]uint32, g.N)
	for u, ns := range g.Adj {
		for _, v := range ns {
			if uint32(u) == v {
				continue
			}
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], uint32(u))
		}
	}
	for v := range adj {
		adj[v] = sortDedup(adj[v])
	}
	return &Graph{N: g.N, Adj: adj}
}

// Prune keeps only edges with src > dst, the standard symmetric-query
// preprocessing of §5.2.1 ("each undirected edge is pruned such that
// srcid > dstid"); it assumes ids were already assigned by the desired
// ordering.
func (g *Graph) Prune() *Graph {
	adj := make([][]uint32, g.N)
	for u, ns := range g.Adj {
		for _, v := range ns {
			if uint32(u) > v {
				adj[u] = append(adj[u], v)
			}
		}
	}
	for v := range adj {
		adj[v] = sortDedup(adj[v])
	}
	return &Graph{N: g.N, Adj: adj}
}

// DensitySkew measures Pearson's first skewness coefficient of the degree
// distribution, 3·(mean − mode)/σ — the paper's density-skew metric
// (§4 footnote 4, Table 3).
func (g *Graph) DensitySkew() float64 {
	if g.N == 0 {
		return 0
	}
	counts := map[int]int{}
	var sum, sumSq float64
	for _, ns := range g.Adj {
		d := float64(len(ns))
		sum += d
		sumSq += d * d
		counts[len(ns)]++
	}
	n := float64(g.N)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance <= 0 {
		return 0
	}
	mode, best := 0, -1
	for d, c := range counts {
		if c > best || (c == best && d < mode) {
			mode, best = d, c
		}
	}
	return 3 * (mean - float64(mode)) / math.Sqrt(variance)
}
