package prov

import (
	"fmt"
	"testing"
)

func rec(trace uint64, fp string, card int, rels ...RelLineage) *Record {
	return &Record{TraceID: trace, Fingerprint: fp, Cardinality: card, Relations: rels}
}

func TestRingAddGetEvict(t *testing.T) {
	g := NewRing(3)
	for i := uint64(1); i <= 5; i++ {
		g.Add(rec(i, "fp", int(i)))
	}
	if _, ok := g.Get(1); ok {
		t.Fatal("trace 1 should have been evicted")
	}
	if _, ok := g.Get(2); ok {
		t.Fatal("trace 2 should have been evicted")
	}
	for i := uint64(3); i <= 5; i++ {
		r, ok := g.Get(i)
		if !ok || r.TraceID != i {
			t.Fatalf("trace %d: got %+v, ok=%v", i, r, ok)
		}
	}
	recent := g.Recent(10)
	if len(recent) != 3 || recent[0].TraceID != 5 || recent[2].TraceID != 3 {
		t.Fatalf("recent (newest first): %+v", recent)
	}
	st := g.StatsSnapshot()
	if st.Capacity != 3 || st.Retained != 3 || st.Total != 5 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRingNilSafe(t *testing.T) {
	var g *Ring
	g.Add(rec(1, "fp", 1))
	if _, ok := g.Get(1); ok {
		t.Fatal("nil ring returned a record")
	}
	if g.Recent(5) != nil {
		t.Fatal("nil ring returned recent records")
	}
	if st := g.StatsSnapshot(); st.Capacity != 0 {
		t.Fatalf("nil ring stats: %+v", st)
	}
	if NewRing(0) != nil {
		t.Fatal("NewRing(0) should be nil (disabled)")
	}
}

func TestDiffDetectsDrift(t *testing.T) {
	from := rec(1, "fp", 10,
		RelLineage{Relation: "Edge", Epoch: 3, OverlayGen: 2, WALSeq: 7, OverlayRows: 4},
		RelLineage{Relation: "Node", Epoch: 1},
	)
	to := rec(2, "fp", 14,
		RelLineage{Relation: "Edge", Epoch: 5, OverlayGen: 4, WALSeq: 11, OverlayRows: 9},
		RelLineage{Relation: "Node", Epoch: 1},
	)
	rep, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CardinalityDelta != 4 {
		t.Fatalf("cardinality delta %d, want 4", rep.CardinalityDelta)
	}
	if rep.EpochOnly {
		t.Fatal("records carry watermarks; diff should not be epoch-only")
	}
	if len(rep.Drifted) != 1 {
		t.Fatalf("drifted: %+v", rep.Drifted)
	}
	d := rep.Drifted[0]
	if d.Relation != "Edge" || d.FromWALSeq != 7 || d.ToWALSeq != 11 || d.OverlayRowsDelta != 5 {
		t.Fatalf("drift row: %+v", d)
	}
}

func TestDiffEpochOnlyAndMembership(t *testing.T) {
	from := rec(1, "fp", 3, RelLineage{Relation: "A", Epoch: 1}, RelLineage{Relation: "Gone", Epoch: 2})
	to := rec(2, "fp", 3, RelLineage{Relation: "A", Epoch: 1}, RelLineage{Relation: "New", Epoch: 1, OverlayRows: 2})
	rep, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EpochOnly {
		t.Fatal("no watermarks anywhere: diff should be epoch-only")
	}
	if len(rep.Drifted) != 2 {
		t.Fatalf("drifted: %+v", rep.Drifted)
	}
	if rep.Drifted[0].Relation != "Gone" || !rep.Drifted[0].Removed {
		t.Fatalf("removed relation: %+v", rep.Drifted[0])
	}
	if rep.Drifted[1].Relation != "New" || !rep.Drifted[1].Added || rep.Drifted[1].OverlayRowsDelta != 2 {
		t.Fatalf("added relation: %+v", rep.Drifted[1])
	}
}

func TestDiffRejectsMismatchedFingerprints(t *testing.T) {
	if _, err := Diff(rec(1, "a", 0), rec(2, "b", 0)); err == nil {
		t.Fatal("diff across fingerprints should error")
	}
	if _, err := Diff(nil, rec(1, "a", 0)); err == nil {
		t.Fatal("nil record should error")
	}
}

func TestRecordClone(t *testing.T) {
	r := rec(1, "fp", 2, RelLineage{Relation: "Edge", Epoch: 3})
	c := r.Clone()
	c.Relations[0].Epoch = 99
	c.Cached = true
	if r.Relations[0].Epoch != 3 || r.Cached {
		t.Fatalf("clone aliased the original: %+v", r)
	}
	if (*Record)(nil).Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func BenchmarkRingAdd(b *testing.B) {
	g := NewRing(256)
	rels := []RelLineage{{Relation: "Edge", Epoch: 1, WALSeq: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(&Record{TraceID: uint64(i + 1), Fingerprint: "fp", Relations: rels})
	}
}

func BenchmarkDiff(b *testing.B) {
	var fromRels, toRels []RelLineage
	for i := 0; i < 8; i++ {
		fromRels = append(fromRels, RelLineage{Relation: fmt.Sprintf("R%d", i), Epoch: uint64(i), WALSeq: uint64(i)})
		toRels = append(toRels, RelLineage{Relation: fmt.Sprintf("R%d", i), Epoch: uint64(i + 1), WALSeq: uint64(i + 2)})
	}
	from := rec(1, "fp", 10, fromRels...)
	to := rec(2, "fp", 20, toRels...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Diff(from, to); err != nil {
			b.Fatal(err)
		}
	}
}
