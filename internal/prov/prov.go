// Package prov implements determination provenance for query results:
// the minimal lineage a deployment needs to decide whether two results
// were determined by the same inputs in the same admissible order.
//
// A Record captures, for one query execution, the plan fingerprint and
// per-relation lineage triple (mutation epoch, overlay generation, WAL
// applied-seq watermark). The epoch says *whether* the relation changed,
// the overlay generation says *how many* streamed batches shaped its
// merged view, and the WAL watermark pins *which prefix of the one
// admissible update order* the relation's visible state reflects — the
// same sequence every replica must agree on (see docs/PROVENANCE.md).
//
// The package is deliberately engine-agnostic: the serving layer builds
// Records at result time, retains them in a Ring keyed by trace id, and
// feeds pairs to Diff to answer "why did this result change?".
package prov

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// RelLineage is one relation's determination lineage at result time.
type RelLineage struct {
	Relation string `json:"relation"`
	// Epoch is the relation's mutation epoch as seen by the query's fork.
	Epoch uint64 `json:"epoch"`
	// OverlayGen counts the streamed update batches folded into the
	// relation's merged view since its base was last replaced (0 when the
	// relation is fully compacted or has never been streamed into).
	OverlayGen uint64 `json:"overlay_gen,omitempty"`
	// WALSeq is the applied-seq watermark: the highest WAL sequence
	// number whose record is reflected in the relation's visible state.
	// 0 means epoch-only lineage (no WAL, or a pre-watermark snapshot).
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// OverlayRows is the relation's live overlay size (pending inserts +
	// tombstones); the differ uses it to attribute cardinality drift.
	OverlayRows int `json:"overlay_rows,omitempty"`
}

// Record is the determination-provenance record of one query result.
type Record struct {
	// TraceID links the record to its query-lifecycle trace (and through
	// it to the workload registry); the Ring indexes on it.
	TraceID uint64 `json:"trace_id"`
	// Fingerprint is the normalized plan fingerprint of the query.
	Fingerprint string `json:"fingerprint"`
	// Generation is the server's restore generation at execution time.
	Generation uint64 `json:"generation"`
	// DictEpoch is the identifier dictionary's mutation epoch.
	DictEpoch uint64 `json:"dict_epoch,omitempty"`
	// Cardinality is the result's tuple count (1 for scalars).
	Cardinality int `json:"cardinality"`
	// Cached reports whether the result was served from the result cache
	// (the record then describes the execution that filled the entry).
	Cached bool `json:"cached,omitempty"`
	// At is the wall time the record was built.
	At time.Time `json:"at"`
	// Relations is the per-relation lineage of the query's read set,
	// sorted by relation name.
	Relations []RelLineage `json:"relations"`
}

// Clone returns a deep copy of r (rings hand out aliases; consumers that
// mutate — e.g. to mark a cache hit — copy first).
func (r *Record) Clone() *Record {
	if r == nil {
		return nil
	}
	out := *r
	out.Relations = append([]RelLineage(nil), r.Relations...)
	return &out
}

// Ring retains the most recent provenance records in a bounded buffer
// with O(1) lookup by trace id. All methods are safe for concurrent use
// and degrade to no-ops on a nil receiver.
type Ring struct {
	mu      sync.Mutex
	buf     []*Record
	next    int
	total   uint64
	byTrace map[uint64]*Record
}

// NewRing returns a ring retaining the last n records; n <= 0 yields a
// nil (disabled) ring.
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	return &Ring{buf: make([]*Record, n), byTrace: make(map[uint64]*Record, n)}
}

// Add retains rec, evicting the oldest record once the ring is full.
func (g *Ring) Add(rec *Record) {
	if g == nil || rec == nil {
		return
	}
	g.mu.Lock()
	if old := g.buf[g.next]; old != nil && g.byTrace[old.TraceID] == old {
		delete(g.byTrace, old.TraceID)
	}
	g.buf[g.next] = rec
	if rec.TraceID != 0 {
		g.byTrace[rec.TraceID] = rec
	}
	g.next = (g.next + 1) % len(g.buf)
	g.total++
	g.mu.Unlock()
}

// Get returns the retained record for a trace id.
func (g *Ring) Get(traceID uint64) (*Record, bool) {
	if g == nil {
		return nil, false
	}
	g.mu.Lock()
	rec, ok := g.byTrace[traceID]
	g.mu.Unlock()
	return rec, ok
}

// Recent returns up to max retained records, newest first.
func (g *Ring) Recent(max int) []*Record {
	if g == nil || max <= 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Record, 0, max)
	for i := 1; i <= len(g.buf) && len(out) < max; i++ {
		rec := g.buf[(g.next-i+len(g.buf))%len(g.buf)]
		if rec == nil {
			break
		}
		out = append(out, rec)
	}
	return out
}

// Stats reports the ring's occupancy.
type Stats struct {
	Capacity int    `json:"capacity"`
	Retained int    `json:"retained"`
	Total    uint64 `json:"total"`
}

// StatsSnapshot returns point-in-time occupancy counters.
func (g *Ring) StatsSnapshot() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	retained := 0
	for _, rec := range g.buf {
		if rec != nil {
			retained++
		}
	}
	return Stats{Capacity: len(g.buf), Retained: retained, Total: g.total}
}

// RelDrift reports one relation whose lineage differs between two
// records of the same fingerprint.
type RelDrift struct {
	Relation string `json:"relation"`
	// FromEpoch/ToEpoch (and the overlay/WAL pairs) are the lineage
	// coordinates in the two records; a relation present in only one
	// record reports the missing side as zeros with Added/Removed set.
	FromEpoch      uint64 `json:"from_epoch"`
	ToEpoch        uint64 `json:"to_epoch"`
	FromOverlayGen uint64 `json:"from_overlay_gen,omitempty"`
	ToOverlayGen   uint64 `json:"to_overlay_gen,omitempty"`
	FromWALSeq     uint64 `json:"from_wal_seq,omitempty"`
	ToWALSeq       uint64 `json:"to_wal_seq,omitempty"`
	// OverlayRowsDelta is the change in live overlay size — the differ's
	// first-order attribution of the cardinality delta.
	OverlayRowsDelta int  `json:"overlay_rows_delta,omitempty"`
	Added            bool `json:"added,omitempty"`
	Removed          bool `json:"removed,omitempty"`
}

// DiffReport is the why-changed analysis of two records.
type DiffReport struct {
	Fingerprint string `json:"fingerprint"`
	FromTrace   uint64 `json:"from_trace"`
	ToTrace     uint64 `json:"to_trace"`
	// CardinalityDelta is to.Cardinality - from.Cardinality.
	CardinalityDelta int `json:"cardinality_delta"`
	// GenerationChanged marks a restore between the two executions: the
	// whole database was replaced, so per-relation drift is secondary.
	GenerationChanged bool `json:"generation_changed,omitempty"`
	DictDrifted       bool `json:"dict_drifted,omitempty"`
	// Drifted lists relations whose lineage moved, sorted by name;
	// empty means the two results were determined by identical inputs.
	Drifted []RelDrift `json:"drifted,omitempty"`
	// EpochOnly marks records lacking WAL watermarks (pre-watermark
	// snapshot or no WAL): drift is attributed by epoch alone.
	EpochOnly bool `json:"epoch_only,omitempty"`
}

// Diff explains why two results of the same fingerprint differ: which
// relations' epochs/watermarks drifted between the executions, with the
// overlay row delta as the cardinality attribution. Records with
// different fingerprints are not comparable.
func Diff(from, to *Record) (*DiffReport, error) {
	if from == nil || to == nil {
		return nil, fmt.Errorf("prov: diff needs two records")
	}
	if from.Fingerprint != to.Fingerprint {
		return nil, fmt.Errorf("prov: fingerprints differ (%s vs %s); records are not comparable",
			from.Fingerprint, to.Fingerprint)
	}
	rep := &DiffReport{
		Fingerprint:       from.Fingerprint,
		FromTrace:         from.TraceID,
		ToTrace:           to.TraceID,
		CardinalityDelta:  to.Cardinality - from.Cardinality,
		GenerationChanged: from.Generation != to.Generation,
		DictDrifted:       from.DictEpoch != to.DictEpoch,
		EpochOnly:         true,
	}
	fromRels := map[string]RelLineage{}
	for _, rl := range from.Relations {
		fromRels[rl.Relation] = rl
		if rl.WALSeq != 0 {
			rep.EpochOnly = false
		}
	}
	seen := map[string]bool{}
	for _, b := range to.Relations {
		seen[b.Relation] = true
		if b.WALSeq != 0 {
			rep.EpochOnly = false
		}
		a, ok := fromRels[b.Relation]
		if !ok {
			rep.Drifted = append(rep.Drifted, RelDrift{
				Relation: b.Relation, ToEpoch: b.Epoch, ToOverlayGen: b.OverlayGen,
				ToWALSeq: b.WALSeq, OverlayRowsDelta: b.OverlayRows, Added: true,
			})
			continue
		}
		if a == b {
			continue
		}
		rep.Drifted = append(rep.Drifted, RelDrift{
			Relation:  b.Relation,
			FromEpoch: a.Epoch, ToEpoch: b.Epoch,
			FromOverlayGen: a.OverlayGen, ToOverlayGen: b.OverlayGen,
			FromWALSeq: a.WALSeq, ToWALSeq: b.WALSeq,
			OverlayRowsDelta: b.OverlayRows - a.OverlayRows,
		})
	}
	for _, a := range from.Relations {
		if !seen[a.Relation] {
			rep.Drifted = append(rep.Drifted, RelDrift{
				Relation: a.Relation, FromEpoch: a.Epoch, FromOverlayGen: a.OverlayGen,
				FromWALSeq: a.WALSeq, OverlayRowsDelta: -a.OverlayRows, Removed: true,
			})
		}
	}
	sort.Slice(rep.Drifted, func(i, j int) bool { return rep.Drifted[i].Relation < rep.Drifted[j].Relation })
	return rep, nil
}
