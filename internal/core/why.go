package core

import (
	"fmt"
	"strings"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/graph"
)

// Why is the per-tuple provenance probe behind `eh-query -why` (fact
// attribution): given a query and one of its output tuples, it re-runs
// the final rule with the output bindings pinned as selection constants
// to confirm the tuple is derivable (counting its derivations), and for
// each body atom lists the contributing rows — classified base vs
// overlay — that join under the pinned bindings. See docs/PROVENANCE.md.

// WhyRow is one contributing row of a body relation, in original
// identifier space when a dictionary is attached.
type WhyRow struct {
	Tuple []int64 `json:"tuple"`
	// Ann is the row's semiring annotation (annotated relations only).
	Ann float64 `json:"ann,omitempty"`
	// Source is "base" or "overlay" (see exec.Relation.Source).
	Source string `json:"source"`
}

// WhyAtom is one body atom's contribution listing.
type WhyAtom struct {
	Pred string `json:"pred"`
	// Pattern is the atom with the output bindings substituted, e.g.
	// "Edge(1,y)" for a probe of x=1 over Edge(x,y).
	Pattern string `json:"pattern"`
	// Rows are up to WhyMaxRows contributing rows; Total counts all of
	// them (Truncated marks a capped listing).
	Rows      []WhyRow `json:"rows,omitempty"`
	Total     int      `json:"total"`
	Truncated bool     `json:"truncated,omitempty"`
	// OverlayRows counts listed rows contributed by the insert overlay.
	OverlayRows int `json:"overlay_rows,omitempty"`
	// Err reports an atom whose listing could not be built (unknown
	// relation, constant outside the dictionary).
	Err string `json:"error,omitempty"`
}

// WhyRelation is one body relation's lineage at probe time.
type WhyRelation struct {
	Name       string `json:"name"`
	Epoch      uint64 `json:"epoch"`
	OverlayGen uint64 `json:"overlay_gen,omitempty"`
	WALSeq     uint64 `json:"wal_seq,omitempty"`
}

// WhyReport is the probe's result.
type WhyReport struct {
	// Tuple echoes the probed tuple spec.
	Tuple string `json:"tuple"`
	// Derivable reports whether the pinned body still joins; Derivations
	// counts the distinct ways it does.
	Derivable   bool `json:"derivable"`
	Derivations int  `json:"derivations"`
	// Err reports a failed derivability re-run (the atom listings may
	// still be present).
	Err       string        `json:"error,omitempty"`
	Atoms     []WhyAtom     `json:"atoms"`
	Relations []WhyRelation `json:"relations"`
}

// WhyMaxRows caps each atom's contributing-row listing.
const WhyMaxRows = 20

// Why probes why tuple (a spec like "T(1,2,3)" or "(1,2,3)", arity
// matching the final rule's head variables) is in the query's output.
// The final rule must be non-recursive.
func (e *Engine) Why(query, tuple string) (*WhyReport, error) {
	prog, err := datalog.Parse(query)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("core: why: empty program")
	}
	rule := prog.Rules[len(prog.Rules)-1]
	if rule.Head.Recursive {
		return nil, fmt.Errorf("core: why: recursive rules are not probeable")
	}
	consts, err := parseTupleSpec(tuple, rule.Head.Name, len(rule.Head.Vars))
	if err != nil {
		return nil, err
	}
	pinned := map[string]*datalog.Const{}
	for i, v := range rule.Head.Vars {
		pinned[v] = consts[i]
	}

	rep := &WhyReport{Tuple: tuple}

	// Derivability: re-run the program with the final rule's head
	// bindings pinned into its body and the head collapsed to a
	// derivation count.
	pinnedRule := &datalog.Rule{
		Head: datalog.Head{Name: "__why", AnnVar: "c", AnnType: "long"},
		Assign: &datalog.Assign{
			Var:  "c",
			Expr: datalog.AggExpr{Op: "COUNT", Arg: "*"},
		},
	}
	for _, a := range rule.Atoms {
		pinnedRule.Atoms = append(pinnedRule.Atoms, pinAtom(a, pinned))
	}
	var src strings.Builder
	for _, r := range prog.Rules[:len(prog.Rules)-1] {
		src.WriteString(r.String())
		src.WriteString("\n")
	}
	src.WriteString(pinnedRule.String())
	if res, err := e.Run(src.String()); err != nil {
		rep.Err = err.Error()
	} else {
		rep.Derivations = int(res.Scalar())
		rep.Derivable = rep.Derivations > 0
	}

	// Per-atom contribution listings: walk each body relation's visible
	// view, keep rows consistent with the pinned bindings, and classify
	// each as base or overlay.
	dict := e.DB.Dict()
	for _, a := range rule.Atoms {
		pa := pinAtom(a, pinned)
		wa := WhyAtom{Pred: a.Pred, Pattern: atomString(pa)}
		rel, ok := e.DB.Relation(a.Pred)
		if !ok {
			wa.Err = fmt.Sprintf("unknown relation %s", a.Pred)
			rep.Atoms = append(rep.Atoms, wa)
			continue
		}
		// Encode the pattern's constants into code space; a constant
		// outside the dictionary matches nothing.
		codes := make([]uint32, len(pa.Args))
		fixed := make([]bool, len(pa.Args))
		match := true
		for i, t := range pa.Args {
			if t.Const == nil {
				continue
			}
			fixed[i] = true
			code, err := encodeWhyConst(dict, t.Const)
			if err != nil {
				match = false
				break
			}
			codes[i] = code
		}
		if !match {
			rep.Atoms = append(rep.Atoms, wa)
			continue
		}
		varPos := map[string]int{}
		rel.Canonical().ForEachTuple(func(tp []uint32, ann float64) {
			for i := range tp {
				if fixed[i] && tp[i] != codes[i] {
					return
				}
			}
			// Repeated variables must bind consistently (Edge(x,x)).
			clear(varPos)
			for i, t := range pa.Args {
				if t.Const != nil {
					continue
				}
				if j, seen := varPos[t.Var]; seen && tp[j] != tp[i] {
					return
				} else if !seen {
					varPos[t.Var] = i
				}
			}
			wa.Total++
			if len(wa.Rows) >= WhyMaxRows {
				wa.Truncated = true
				return
			}
			row := WhyRow{Tuple: make([]int64, len(tp)), Source: rel.Source(tp)}
			for i, v := range tp {
				if dict != nil {
					row.Tuple[i] = dict.Decode(v)
				} else {
					row.Tuple[i] = int64(v)
				}
			}
			if rel.Annotated {
				row.Ann = ann
			}
			if row.Source == "overlay" {
				wa.OverlayRows++
			}
			wa.Rows = append(wa.Rows, row)
		})
		rep.Atoms = append(rep.Atoms, wa)
	}

	lineage := e.Lineage(prog.Relations())
	for _, name := range prog.Relations() {
		p := lineage[name]
		rep.Relations = append(rep.Relations, WhyRelation{
			Name:       name,
			Epoch:      e.DB.EpochOf(name),
			OverlayGen: p.OverlayGen,
			WALSeq:     p.WALSeq,
		})
	}
	return rep, nil
}

// parseTupleSpec parses "Name(1,2,3)", "(1,2,3)" or "1,2,3" into
// constants, validating the optional name against the head and the
// arity against the head's variable count.
func parseTupleSpec(spec, headName string, arity int) ([]*datalog.Const, error) {
	s := strings.TrimSpace(spec)
	if i := strings.IndexByte(s, '('); i >= 0 {
		name := strings.TrimSpace(s[:i])
		if name != "" && name != headName {
			return nil, fmt.Errorf("core: why: tuple names %s, query head is %s", name, headName)
		}
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("core: why: malformed tuple spec %q", spec)
		}
		s = s[i+1 : len(s)-1]
	}
	parts := strings.Split(s, ",")
	if len(parts) == 1 && strings.TrimSpace(parts[0]) == "" {
		parts = nil
	}
	if len(parts) != arity {
		return nil, fmt.Errorf("core: why: tuple has %d values, head has %d variables", len(parts), arity)
	}
	out := make([]*datalog.Const, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		c := &datalog.Const{}
		if strings.HasPrefix(p, `"`) && strings.HasSuffix(p, `"`) && len(p) >= 2 {
			c.IsString = true
			c.Str = p[1 : len(p)-1]
		} else if _, err := fmt.Sscanf(p, "%g", &c.Num); err != nil {
			return nil, fmt.Errorf("core: why: bad constant %q", p)
		}
		out[i] = c
	}
	return out, nil
}

// pinAtom substitutes pinned variables with their constants.
func pinAtom(a *datalog.Atom, pinned map[string]*datalog.Const) *datalog.Atom {
	out := &datalog.Atom{Pred: a.Pred, Args: make([]datalog.Term, len(a.Args))}
	for i, t := range a.Args {
		if t.Var != "" {
			if c, ok := pinned[t.Var]; ok {
				out.Args[i] = datalog.Term{Const: c}
				continue
			}
		}
		out.Args[i] = t
	}
	return out
}

// atomString renders an atom the way Rule.String does.
func atomString(a *datalog.Atom) string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteString("(")
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(",")
		}
		switch {
		case t.Var != "":
			sb.WriteString(t.Var)
		case t.Const.IsString:
			fmt.Fprintf(&sb, "%q", t.Const.Str)
		default:
			fmt.Fprintf(&sb, "%g", t.Const.Num)
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// encodeWhyConst mirrors the planner's constant encoding (original
// identifiers through the dictionary, raw codes without one).
func encodeWhyConst(dict *graph.Dictionary, c *datalog.Const) (uint32, error) {
	var orig int64
	if c.IsString {
		if _, err := fmt.Sscanf(c.Str, "%d", &orig); err != nil {
			return 0, fmt.Errorf("core: why: non-numeric constant %q", c.Str)
		}
	} else {
		orig = int64(c.Num)
	}
	if dict != nil {
		code, ok := dict.Lookup(orig)
		if !ok {
			return 0, fmt.Errorf("core: why: constant %d not in dictionary", orig)
		}
		return code, nil
	}
	return uint32(orig), nil
}
