package core

import (
	"math/rand"
	"testing"
	"time"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trace"
	"emptyheaded/internal/wal"
)

// TestMaintainedCardinalityMatchesWalk drives a randomized batch
// sequence (duplicate inserts, deletes of absent tuples, re-inserts of
// deleted tuples) and checks the incrementally maintained cardinality
// in every UpdateResult against both the ground-truth model and a full
// walk of the installed merged trie — the walk the maintained count
// replaced.
func TestMaintainedCardinalityMatchesWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	eng := New()
	model := edgeSet{}
	var rows [][2]uint32
	for i := 0; i < 120; i++ {
		e := [2]uint32{uint32(rng.Intn(20)), uint32(rng.Intn(20))}
		rows = append(rows, e)
		model[e] = true
	}
	eng.AddRelationColumns("Edge", toCols(rows), nil, semiring.None)

	check := func(step string, got int) {
		t.Helper()
		if got != len(model) {
			t.Fatalf("%s: maintained cardinality %d, model has %d", step, got, len(model))
		}
		rel, ok := eng.DB.Relation("Edge")
		if !ok {
			t.Fatalf("%s: Edge vanished", step)
		}
		if walk := rel.Canonical().Cardinality(); walk != got {
			t.Fatalf("%s: maintained cardinality %d, trie walk says %d", step, got, walk)
		}
	}

	for batch := 0; batch < 30; batch++ {
		var ins, del [][2]uint32
		// Deletes first (batch semantics), drawn from live and absent
		// tuples alike; inserts include duplicates of live tuples and
		// re-inserts of tuples this very batch deletes.
		for i := 0; i < rng.Intn(6); i++ {
			del = append(del, [2]uint32{uint32(rng.Intn(22)), uint32(rng.Intn(22))})
		}
		for i := 0; i < rng.Intn(8); i++ {
			ins = append(ins, [2]uint32{uint32(rng.Intn(22)), uint32(rng.Intn(22))})
		}
		if len(del) > 0 && rng.Intn(2) == 0 {
			ins = append(ins, del[rng.Intn(len(del))]) // delete-then-reinsert
		}
		b := UpdateBatch{Rel: "Edge"}
		if len(ins) > 0 {
			b.InsCols = toCols(ins)
		}
		if len(del) > 0 {
			b.DelCols = toCols(del)
		}
		if b.InsCols == nil && b.DelCols == nil {
			continue
		}
		res, err := eng.Update(b)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for _, e := range del {
			delete(model, e)
		}
		for _, e := range ins {
			model[e] = true
		}
		check("batch", res.Cardinality)
	}

	// Compaction re-anchors the count to the compacted base.
	if did, err := eng.Compact("Edge"); err != nil || !did {
		t.Fatalf("compact: did=%v err=%v", did, err)
	}
	res, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{30, 30}})})
	if err != nil {
		t.Fatal(err)
	}
	model[[2]uint32{30, 30}] = true
	check("post-compaction", res.Cardinality)
}

// TestUpdateTracedSpans checks UpdateTraced records the apply-path
// spans (and wal_append once a WAL is open) with fsync attribution.
func TestUpdateTracedSpans(t *testing.T) {
	eng := New()
	if _, err := eng.OpenWAL(WALConfig{Dir: t.TempDir(), Sync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	defer eng.CloseWAL()
	rec := trace.NewRecorder(4)
	tr := rec.Start("update")
	if _, err := eng.UpdateTraced(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}, {2, 3}})}, tr); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	got := map[string]bool{}
	for _, sp := range tr.SpansSnapshot() {
		if sp.DurUS < 0 {
			t.Fatalf("span %q left open", sp.Name)
		}
		got[sp.Name] = true
	}
	for _, want := range []string{"wal_append", "cardinality", "overlay_merge"} {
		if !got[want] {
			t.Fatalf("missing span %q in %v", want, got)
		}
	}
}

// TestOverlayMemoryAndObservers checks per-overlay byte accounting in
// /stats and the compaction latency observer.
func TestOverlayMemoryAndObservers(t *testing.T) {
	eng := New()
	var compactions []time.Duration
	eng.SetObservers(Observers{Compaction: func(d time.Duration) { compactions = append(compactions, d) }})

	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}, {3, 4}, {5, 6}})}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", DelCols: toCols([][2]uint32{{3, 4}})}); err != nil {
		t.Fatal(err)
	}
	st := eng.Durability()
	if len(st.Overlays) != 1 {
		t.Fatalf("overlays: %+v", st.Overlays)
	}
	ov := st.Overlays[0]
	if ov.InsBytes <= 0 || ov.DelBytes <= 0 {
		t.Fatalf("overlay byte accounting empty: %+v", ov)
	}
	if did, err := eng.Compact("Edge"); err != nil || !did {
		t.Fatalf("compact: did=%v err=%v", did, err)
	}
	if len(compactions) != 1 || compactions[0] < 0 {
		t.Fatalf("compaction observer calls: %v", compactions)
	}
}
