package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"emptyheaded/internal/fault"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/storage"
	"emptyheaded/internal/wal"
)

// chaosQueries is the invariant probe: listing, join, and aggregate over
// the surviving Edge relation.
var chaosQueries = []string{
	`L(x,y) :- Edge(x,y).`,
	`P2(x,z) :- Edge(x,y),Edge(y,z).`,
	`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`,
}

// TestChaosWALUpdateSchedule replays seeded probabilistic fault
// schedules over a stream of update batches and asserts the
// crash-consistency contract: after dropping the engine mid-stream and
// replaying the WAL, the recovered state holds exactly the acknowledged
// batches — failed appends (clean errors, short writes, fsync failures)
// leave no trace, and no acked record is lost.
func TestChaosWALUpdateSchedule(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			in := fault.New(seed)
			eng := New()
			// Open through a clean injector; faults arm only after boot so
			// segment creation isn't part of the schedule.
			if _, err := eng.OpenWAL(WALConfig{Dir: dir, Sync: wal.SyncAlways, FS: fault.NewFS(in, "wal")}); err != nil {
				t.Fatal(err)
			}
			in.Add(
				fault.Rule{Point: "wal.write", Kind: fault.ShortWrite, Prob: 0.1, Times: -1},
				fault.Rule{Point: "wal.write", Kind: fault.Err, Prob: 0.1, Times: -1},
				fault.Rule{Point: "wal.sync", Kind: fault.Err, Prob: 0.15, Times: -1},
			)

			rng := rand.New(rand.NewSource(seed))
			model := edgeSet{}
			acked, failed := 0, 0
			for i := 0; i < 60; i++ {
				var ins, del [][2]uint32
				for n := rng.Intn(4) + 1; n > 0; n-- {
					ins = append(ins, [2]uint32{uint32(rng.Intn(12)), uint32(rng.Intn(12))})
				}
				if rng.Intn(3) == 0 && len(model) > 0 {
					for e := range model {
						del = append(del, e)
						break
					}
				}
				b := UpdateBatch{Rel: "Edge", InsCols: toCols(ins)}
				if len(del) > 0 {
					b.DelCols = toCols(del)
				}
				_, err := eng.Update(b)
				if err != nil {
					if !errors.Is(err, ErrDurability) {
						t.Fatalf("batch %d: non-durability failure %v (%s)", i, err, in)
					}
					failed++
					continue // NOT acked: the model must not absorb it
				}
				acked++
				for _, e := range del {
					delete(model, e)
				}
				for _, e := range ins {
					model[e] = true
				}
			}
			if failed == 0 {
				t.Fatalf("schedule injected no faults — dead test (%s)", in)
			}
			if acked == 0 {
				t.Skipf("schedule failed every batch; nothing to verify (%s)", in)
			}
			in.Clear()

			// Crash: no snapshot, no clean close. A fresh engine replays.
			eng2 := New()
			if _, err := eng2.OpenWAL(WALConfig{Dir: dir, Sync: wal.SyncAlways}); err != nil {
				t.Fatalf("replay after chaos: %v (%s)", err, in)
			}
			ref := referenceEngine(model)
			for _, q := range chaosQueries {
				if got, want := queryKey(t, eng2, q), queryKey(t, ref, q); got != want {
					t.Fatalf("query %q diverges after replay (acked=%d failed=%d):\n got %s\nwant %s\n%s",
						q, acked, failed, got, want, in)
				}
			}
		})
	}
}

// TestChaosCompactionFault: an injected failure inside compaction
// installs nothing — the relation keeps serving its pre-compaction
// state — and a retry after the fault clears succeeds.
func TestChaosCompactionFault(t *testing.T) {
	eng := New()
	if err := eng.AddRelationColumns("Edge", toCols([][2]uint32{{1, 2}, {2, 3}}), nil, semiring.None); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{3, 1}, {4, 2}})}); err != nil {
		t.Fatal(err)
	}
	before := queryKey(t, eng, chaosQueries[0])

	in := fault.New(21, fault.Rule{Point: "core.compact", Kind: fault.Err, OnCall: 1})
	restore := fault.Enable(in)
	did, err := eng.Compact("Edge")
	restore()
	if did || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted compact: did=%v err=%v (%s)", did, err, in)
	}
	if got := queryKey(t, eng, chaosQueries[0]); got != before {
		t.Fatalf("failed compaction changed visible state:\n got %s\nwant %s", got, before)
	}
	// Fault cleared: the retry compacts for real and is invisible.
	did, err = eng.Compact("Edge")
	if err != nil || !did {
		t.Fatalf("retry compact: did=%v err=%v", did, err)
	}
	if got := queryKey(t, eng, chaosQueries[0]); got != before {
		t.Fatalf("compaction changed visible state:\n got %s\nwant %s", got, before)
	}
}

// TestChaosSnapshotWriteFault: a snapshot that dies mid-write must not
// damage the previous good snapshot in the same directory (atomic
// tmp+rename per file), and a retry persists the new state.
func TestChaosSnapshotWriteFault(t *testing.T) {
	dir := t.TempDir()
	eng := New()
	if err := eng.AddRelationColumns("Edge", toCols([][2]uint32{{1, 2}, {2, 3}}), nil, semiring.None); err != nil {
		t.Fatal(err)
	}
	v1 := queryKey(t, eng, chaosQueries[0])
	if _, err := eng.Snapshot(dir); err != nil {
		t.Fatal(err)
	}

	// The state advances, then the next snapshot hits a dying disk.
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{3, 1}})}); err != nil {
		t.Fatal(err)
	}
	v2 := queryKey(t, eng, chaosQueries[0])
	in := fault.New(22, fault.Rule{Point: "storage.writefile", Kind: fault.Err, OnCall: 1})
	restoreFS := storage.SetFS(fault.NewFS(in, "storage"))
	if _, err := eng.Snapshot(dir); !errors.Is(err, fault.ErrInjected) {
		restoreFS()
		t.Fatalf("faulted snapshot err = %v (%s)", err, in)
	}
	restoreFS()

	// The old snapshot is still restorable, bit for bit.
	eng2 := New()
	if _, err := eng2.Restore(dir); err != nil {
		t.Fatalf("restore after failed snapshot: %v (%s)", err, in)
	}
	if got := queryKey(t, eng2, chaosQueries[0]); got != v1 {
		t.Fatalf("failed snapshot damaged the previous one:\n got %s\nwant %s", got, v1)
	}
	// The retry persists the new state.
	if _, err := eng.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	eng3 := New()
	if _, err := eng3.Restore(dir); err != nil {
		t.Fatal(err)
	}
	if got := queryKey(t, eng3, chaosQueries[0]); got != v2 {
		t.Fatalf("retried snapshot lost state:\n got %s\nwant %s", got, v2)
	}
}

// TestChaosPoisonedWALDegradesAndProbes: at the engine level, a failed
// rollback poisons the log, every further update fails fast with
// ErrDurability, and ProbeDurability (the breaker's probe) repairs it.
func TestChaosPoisonedWALDegradesAndProbes(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(23)
	eng := New()
	if _, err := eng.OpenWAL(WALConfig{Dir: dir, Sync: wal.SyncAlways, FS: fault.NewFS(in, "wal")}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}})}); err != nil {
		t.Fatal(err)
	}
	in.Add(
		fault.Rule{Point: "wal.sync", Kind: fault.Err, OnCall: 1},
		fault.Rule{Point: "wal.ftruncate", Kind: fault.Err, OnCall: 1},
	)
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{2, 3}})}); !errors.Is(err, ErrDurability) {
		t.Fatalf("poisoning update err = %v (%s)", err, in)
	}
	// Degraded: fails fast without touching in-memory state.
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{3, 4}})}); !errors.Is(err, ErrDurability) {
		t.Fatalf("update on poisoned WAL err = %v", err)
	}
	// A probe against the still-broken disk fails and repairs nothing
	// (the poisoning rules are spent, so arm a fresh one for it).
	in.Add(fault.Rule{Point: "wal.sync", Kind: fault.Err, OnCall: 1})
	if err := eng.ProbeDurability(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("probe on broken disk err = %v (%s)", err, in)
	}
	in.Clear()
	if err := eng.ProbeDurability(); err != nil {
		t.Fatalf("probe after heal: %v (%s)", err, in)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{4, 5}})}); err != nil {
		t.Fatalf("update after probe repair: %v", err)
	}

	// The recovered log replays exactly the acked updates.
	eng2 := New()
	if _, err := eng2.OpenWAL(WALConfig{Dir: dir, Sync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	ref := referenceEngine(edgeSet{{1, 2}: true, {4, 5}: true})
	if got, want := queryKey(t, eng2, chaosQueries[0]), queryKey(t, ref, chaosQueries[0]); got != want {
		t.Fatalf("replay after poison+repair:\n got %s\nwant %s\n%s", got, want, in)
	}
}
