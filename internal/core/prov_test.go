package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/storage"
)

// TestWatermarksSurviveSnapshotRoundTrip: journaled updates advance the
// per-relation WAL applied-seq watermark, the snapshot catalog records
// it, restore adopts it, and snapshot → restore → re-snapshot is
// byte-identical (the acceptance criterion for watermark persistence).
func TestWatermarksSurviveSnapshotRoundTrip(t *testing.T) {
	walDir, snapA, snapB := t.TempDir(), t.TempDir(), t.TempDir()
	eng := New()
	eng.AddRelationColumns("Edge", toCols([][2]uint32{{1, 2}, {2, 3}}), nil, semiring.None)
	if _, err := eng.OpenWAL(walCfg(walDir)); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]uint32{{3, 1}, {4, 2}} {
		if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{e})}); err != nil {
			t.Fatal(err)
		}
	}
	if wm := eng.Watermarks(); wm["Edge"] != 2 {
		t.Fatalf("watermark after 2 journaled updates: %v", wm)
	}
	lin := eng.Lineage([]string{"Edge"})["Edge"]
	if lin.WALSeq != 2 || lin.OverlayGen != 2 || lin.OverlayRows != 2 {
		t.Fatalf("lineage: %+v", lin)
	}

	cat, err := eng.Snapshot(snapA)
	if err != nil {
		t.Fatal(err)
	}
	if cat.ProvFormat != storage.ProvFormatVersion {
		t.Fatalf("catalog prov format %d, want %d", cat.ProvFormat, storage.ProvFormatVersion)
	}
	for _, rm := range cat.Relations {
		if rm.Name == "Edge" && rm.WALSeq != 2 {
			t.Fatalf("catalog watermark: %+v", rm)
		}
	}

	eng2 := New()
	if _, err := eng2.Restore(snapA); err != nil {
		t.Fatal(err)
	}
	if wm := eng2.Watermarks(); wm["Edge"] != 2 {
		t.Fatalf("restored watermark: %v", wm)
	}
	if _, err := eng2.Snapshot(snapB); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(snapA, storage.CatalogFile))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(snapB, storage.CatalogFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot→restore→re-snapshot catalog differs:\n%s\nvs\n%s", a, b)
	}
}

// TestWatermarksRecoveredByReplay: a crashed engine's watermarks are
// reconstructed from the WAL scan (the replay-synthesized apply records
// carry Seq 0, so the scan maxima must be promoted explicitly).
func TestWatermarksRecoveredByReplay(t *testing.T) {
	dir := t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(walCfg(dir)); err != nil {
		t.Fatal(err)
	}
	for _, b := range []UpdateBatch{
		{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}})},  // seq 1
		{Rel: "Edge", InsCols: toCols([][2]uint32{{2, 3}})},  // seq 2
		{Rel: "Other", InsCols: toCols([][2]uint32{{7, 8}})}, // seq 3
	} {
		if _, err := eng.Update(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no snapshot, no clean close.

	eng2 := New()
	if _, err := eng2.OpenWAL(walCfg(dir)); err != nil {
		t.Fatal(err)
	}
	wm := eng2.Watermarks()
	if wm["Edge"] != 2 || wm["Other"] != 3 {
		t.Fatalf("replayed watermarks: %v", wm)
	}
}

// TestWatermarkUnchangedByCompaction: compaction is content-preserving,
// so it must not move the watermark (nor the epoch — the invariant the
// snapshot segment-reuse path relies on).
func TestWatermarkUnchangedByCompaction(t *testing.T) {
	dir := t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(walCfg(dir)); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 4; i++ {
		if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{i, i + 1}})}); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := eng.DB.EpochOf("Edge")
	if ok, err := eng.Compact("Edge"); !ok || err != nil {
		t.Fatalf("compact: ok=%v err=%v", ok, err)
	}
	if wm := eng.Watermarks(); wm["Edge"] != 4 {
		t.Fatalf("watermark moved across compaction: %v", wm)
	}
	if got := eng.DB.EpochOf("Edge"); got != epochBefore {
		t.Fatalf("epoch moved across compaction: %d -> %d", epochBefore, got)
	}
	lin := eng.Lineage([]string{"Edge"})["Edge"]
	if lin.OverlayRows != 0 {
		t.Fatalf("clean compaction should empty the overlay: %+v", lin)
	}
}

// TestPreProvenanceSnapshotRestoresEpochOnly: a catalog written before
// the watermark fields existed (simulated by stripping them) still
// restores; lineage degrades to epoch-only (all watermarks zero).
func TestPreProvenanceSnapshotRestoresEpochOnly(t *testing.T) {
	walDir, snapDir := t.TempDir(), t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(walCfg(walDir)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}, {2, 3}})}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}

	// Rewrite the catalog the way a pre-provenance writer would have:
	// no prov_format, no wal_seq fields.
	path := filepath.Join(snapDir, storage.CatalogFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(raw, '\n')
	var doc map[string]any
	if err := json.Unmarshal(raw[nl+1:], &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "prov_format")
	for _, r := range doc["relations"].([]any) {
		delete(r.(map[string]any), "wal_seq")
	}
	payload, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	header := fmt.Sprintf("EHCATALOG v%d crc32=%08x len=%d\n", storage.FormatVersion, storage.Checksum(payload), len(payload))
	if err := os.WriteFile(path, append([]byte(header), payload...), 0o644); err != nil {
		t.Fatal(err)
	}

	eng2 := New()
	cat, err := eng2.Restore(snapDir)
	if err != nil {
		t.Fatalf("pre-provenance snapshot must restore: %v", err)
	}
	if cat.ProvFormat != 0 {
		t.Fatalf("stripped catalog reports prov format %d", cat.ProvFormat)
	}
	if wm := eng2.Watermarks(); len(wm) != 0 {
		t.Fatalf("epoch-only restore grew watermarks: %v", wm)
	}
	if lin := eng2.Lineage([]string{"Edge"})["Edge"]; lin.WALSeq != 0 {
		t.Fatalf("epoch-only lineage carries a watermark: %+v", lin)
	}
	// The data itself is intact.
	if got := queryKey(t, eng2, `L(x,y) :- Edge(x,y).`); got != queryKey(t, eng, `L(x,y) :- Edge(x,y).`) {
		t.Fatal("restored relation content diverges")
	}
}
