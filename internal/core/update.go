package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"emptyheaded/internal/delta"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/fault"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trace"
	"emptyheaded/internal/trie"
	"emptyheaded/internal/wal"
)

// Streaming updates (update.go) turn the engine from a load-then-query
// accelerator into a serving system: Update applies per-relation
// insert/delete batches through delta-trie overlays (internal/delta),
// optionally journaled in a write-ahead log (internal/wal) that replays
// on boot on top of the latest snapshot, with a background compactor
// folding grown overlays into fresh base tries.
//
// Ordering and determinism: upd.mu serializes updates, so the WAL
// sequence order IS the in-memory apply order — of all admissible
// interleavings of concurrent updates, the log pins down exactly one,
// and replay re-executes it deterministically. Because overlay state is
// a function "last action per tuple wins", replay is also idempotent
// across a snapshot boundary: re-applying records the snapshot already
// absorbed converges to the same state.

// ErrDurability marks update failures on the durability path (the WAL
// append, not the request): the batch was NOT acknowledged and NOT
// applied, and retrying may succeed once the underlying condition
// (disk full, I/O error) clears. Servers should surface these as 5xx,
// not client errors.
var ErrDurability = errors.New("core: durable append failed")

const (
	// DefaultCompactRatio is the overlay/base row ratio past which the
	// background compactor folds the overlay into a fresh base.
	DefaultCompactRatio = 0.10
	// DefaultCompactMin is the minimum overlay row count before
	// compaction is considered at all (tiny overlays are cheaper to
	// merge through than to compact).
	DefaultCompactMin = 1024
)

// updState is the engine's streaming-update state; mu serializes every
// update, WAL append, replay, compaction install, and restore.
type updState struct {
	mu     sync.Mutex
	wal    *wal.Log
	walCfg WALConfig
	deltas map[string]*relDelta

	// watermarks holds each relation's WAL applied-seq watermark: the
	// highest WAL sequence number reflected in the relation's visible
	// state. It advances only in applyRecordLocked (every advance pairs
	// with an epoch bump — the invariant snapshot segment reuse relies
	// on), survives snapshot/restore through the catalog, and is NOT
	// touched by compaction (folding is content-preserving).
	watermarks map[string]uint64

	compactRatio float64
	compactMin   int
	// compactWG tracks in-flight background compactions so Close (and
	// tests) can wait for them.
	compactWG sync.WaitGroup

	replay ReplayStats

	updates     atomic.Uint64
	updateRows  atomic.Uint64
	compactions atomic.Uint64
	compactNS   atomic.Uint64

	// obs holds the latency observers wired by the serving layer
	// (histograms); both optional.
	obs Observers
}

// Observers are latency-event callbacks the serving layer installs to
// feed its histograms without coupling core to a metrics package. All
// fields are optional; callbacks must be cheap and non-blocking (they
// run inside subsystem critical sections).
type Observers struct {
	// WALFsync receives every WAL fsync's wall duration.
	WALFsync func(time.Duration)
	// Compaction receives every finished compaction's wall duration.
	Compaction func(time.Duration)
	// Event receives structured subsystem events (wal_rotate,
	// compaction, snapshot, restore, wal_replay) for the serving
	// layer's unified event log, keeping core metrics-free the same way
	// the latency callbacks do. Emissions are ordered with the state
	// changes they describe: each fires under (or captured from) the
	// update mutex, so the event sequence is an admissible serialization
	// of the subsystem's history.
	Event func(kind string, fields map[string]any)
}

// SetObservers installs latency observers. Call it once at startup;
// installing after the WAL is open still takes effect.
func (e *Engine) SetObservers(o Observers) {
	e.upd.mu.Lock()
	e.upd.obs = o
	if e.upd.wal != nil {
		e.upd.wal.SetFsyncObserver(o.WALFsync)
	}
	e.upd.mu.Unlock()
}

// relDelta is one relation's streaming-update state: the compacted base
// (wrapped in a standalone relation so permuted base indexes are built
// once and shared across overlay installs), the current overlay, and
// the merged view last installed into the DB (pointer identity detects
// external replacement by /load or /restore).
type relDelta struct {
	baseRel *exec.Relation
	// baseCard caches the base's cardinality (the base is immutable);
	// compaction thresholds and /stats read it without a trie walk.
	baseCard int
	// card is the maintained cardinality of the installed merged view:
	// updated incrementally per batch (O(batch × depth) membership
	// probes), so acknowledging an update never re-walks the merged
	// trie. Compaction leaves it untouched — folding is content-
	// preserving — except the clean path, which re-anchors it to the
	// compacted base's exact count.
	card       int
	ov         *delta.Overlay
	installed  *trie.Trie
	version    uint64
	compacting bool
}

// UpdateBatch is one streaming update: columnar inserts (optionally
// annotated) and full-tuple deletes against one relation. Deletes apply
// before inserts. The engine takes ownership of the column slices.
type UpdateBatch struct {
	// Rel names the target relation. A batch whose relation doesn't
	// exist creates it (arity from the columns, semiring from Op).
	Rel string
	// InsCols holds inserted tuples column-wise; InsAnns their
	// annotations (required exactly when the relation is annotated).
	InsCols [][]uint32
	InsAnns []float64
	// DelCols holds deleted tuples column-wise (full-tuple tombstones;
	// deleting an absent tuple is a no-op).
	DelCols [][]uint32
	// Op is the semiring for a newly created annotated relation;
	// ignored when the relation exists.
	Op semiring.Op
}

// UpdateResult reports one applied batch.
type UpdateResult struct {
	Rel string `json:"name"`
	// Seq is the WAL sequence number (0 when no WAL is configured).
	Seq uint64 `json:"seq,omitempty"`
	// Inserted / Deleted are the batch's row counts as submitted.
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Cardinality is the relation's tuple count after the batch.
	Cardinality int `json:"cardinality"`
	// OverlayRows is the live overlay size after the batch (inserts +
	// tombstones not yet compacted into the base).
	OverlayRows int `json:"overlay_rows"`
}

// Update validates, journals (when a WAL is open) and applies one
// update batch. The batch is acknowledged only after it is durable
// under the configured fsync policy and visible to new queries.
// Concurrent updates serialize; queries never block on updates (they
// run on forks of immutable tries).
func (e *Engine) Update(b UpdateBatch) (UpdateResult, error) {
	return e.UpdateTraced(b, nil)
}

// UpdateTraced is Update with query-lifecycle tracing: the WAL append
// (annotated with the fsyncs it absorbed and their wall time) and the
// overlay apply record spans on tr. A nil tr is the untraced path —
// every site degrades to a nil check.
func (e *Engine) UpdateTraced(b UpdateBatch, tr *trace.Trace) (UpdateResult, error) {
	e.upd.mu.Lock()
	defer e.upd.mu.Unlock()
	rec, err := e.recordForLocked(&b)
	if err != nil {
		return UpdateResult{}, err
	}
	if e.upd.wal != nil {
		sp := tr.Begin("wal_append")
		f0, n0 := e.upd.wal.FsyncTotals()
		_, err := e.upd.wal.Append(rec)
		if f1, n1 := e.upd.wal.FsyncTotals(); f1 > f0 {
			tr.SpanAttrInt(sp, "fsyncs", int64(f1-f0))
			tr.SpanAttrInt(sp, "fsync_us", int64((n1-n0)/1e3))
		}
		tr.End(sp)
		if err != nil {
			return UpdateResult{}, fmt.Errorf("%w: %w", ErrDurability, err)
		}
	}
	res, err := e.applyRecordLocked(rec, tr)
	if err != nil {
		return UpdateResult{}, err
	}
	e.maybeCompactLocked(b.Rel)
	return res, nil
}

// recordForLocked validates a batch against the live catalog and shapes
// it as a WAL record.
func (e *Engine) recordForLocked(b *UpdateBatch) (*wal.Record, error) {
	if b.Rel == "" {
		return nil, fmt.Errorf("core: update without relation name")
	}
	arity := len(b.InsCols)
	if arity == 0 {
		arity = len(b.DelCols)
	}
	if arity == 0 {
		return nil, fmt.Errorf("core: update %s: no insert or delete columns", b.Rel)
	}
	if len(b.InsCols) != 0 && len(b.DelCols) != 0 && len(b.InsCols) != len(b.DelCols) {
		return nil, fmt.Errorf("core: update %s: insert arity %d, delete arity %d", b.Rel, len(b.InsCols), len(b.DelCols))
	}
	op := b.Op
	annotated := b.InsAnns != nil
	if rel, ok := e.DB.Relation(b.Rel); ok {
		if rel.Arity != arity {
			return nil, fmt.Errorf("core: update %s: batch arity %d, relation arity %d", b.Rel, arity, rel.Arity)
		}
		if rel.Arity == 0 {
			return nil, fmt.Errorf("core: update %s: scalar relations are not updatable", b.Rel)
		}
		op = rel.Op
		if rel.Annotated && b.InsAnns == nil && insRows(b.InsCols) > 0 {
			// Un-annotated inserts into an annotated relation default to
			// the ⊗-identity, matching the loader's convention.
			b.InsAnns = fillOnes(op, insRows(b.InsCols))
		}
		if !rel.Annotated && b.InsAnns != nil {
			return nil, fmt.Errorf("core: update %s: annotations for un-annotated relation", b.Rel)
		}
		annotated = rel.Annotated
	} else if annotated && op == semiring.None {
		return nil, fmt.Errorf("core: update %s: annotated batch for a new relation needs an op", b.Rel)
	}
	rec := &wal.Record{
		Rel:     b.Rel,
		Arity:   arity,
		Op:      op,
		InsCols: b.InsCols,
		DelCols: b.DelCols,
	}
	if annotated {
		if rec.InsAnns = b.InsAnns; rec.InsAnns == nil {
			rec.InsAnns = []float64{}
		}
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("core: update %s: %w", b.Rel, err)
	}
	return rec, nil
}

func insRows(cols [][]uint32) int {
	if len(cols) == 0 {
		return 0
	}
	return len(cols[0])
}

// RowsToColumns transposes row-major tuples into the column-major shape
// UpdateBatch takes, validating that every row shares one arity. The
// server's /update handler and the library facade both feed through it.
func RowsToColumns(rows [][]uint32) ([][]uint32, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("core: empty update batch")
	}
	arity := len(rows[0])
	cols := make([][]uint32, arity)
	for c := range cols {
		cols[c] = make([]uint32, len(rows))
	}
	for i, row := range rows {
		if len(row) != arity {
			return nil, fmt.Errorf("core: tuple %v does not match arity %d", row, arity)
		}
		for c, v := range row {
			cols[c][i] = v
		}
	}
	return cols, nil
}

func fillOnes(op semiring.Op, n int) []float64 {
	out := make([]float64, n)
	one := op.One()
	for i := range out {
		out[i] = one
	}
	return out
}

// deltaForLocked resolves (or creates) the relation's overlay state. A
// relation replaced behind our back (by /load or /restore) resets the
// overlay: the replacement legitimately discarded the merged view.
func (e *Engine) deltaForLocked(rec *wal.Record) (*relDelta, error) {
	cur, exists := e.DB.Relation(rec.Rel)
	rd := e.upd.deltas[rec.Rel]
	if rd != nil && (!exists || cur.Canonical() != rd.installed) {
		rd = nil
	}
	if rd != nil {
		return rd, nil
	}
	var base *trie.Trie
	if exists {
		if cur.Arity != rec.Arity {
			return nil, fmt.Errorf("core: update %s: record arity %d, relation arity %d", rec.Rel, rec.Arity, cur.Arity)
		}
		base = cur.Canonical()
	} else {
		base = trie.NewEmpty(rec.Arity, rec.Annotated(), rec.Op)
	}
	rd = &relDelta{
		baseRel:   exec.NewRelation(rec.Rel, base),
		baseCard:  base.Cardinality(),
		ov:        delta.NewOverlay(rec.Arity, base.Annotated, base.Op),
		installed: base,
	}
	rd.card = rd.baseCard
	e.upd.deltas[rec.Rel] = rd
	return rd, nil
}

// applyRecordLocked folds one record into the relation's overlay and
// installs the merged view. The only failure mode is a shape conflict
// with a relation that was concurrently replaced under a different
// arity (recordForLocked validated against the catalog as of entry).
func (e *Engine) applyRecordLocked(rec *wal.Record, tr *trace.Trace) (UpdateResult, error) {
	rd, err := e.deltaForLocked(rec)
	if err != nil {
		return UpdateResult{}, err
	}
	insT, delT := miniTries(rec, rd.baseRel, e.Opts.Layout)

	// Maintain the merged cardinality against the pre-batch view:
	// deletes apply first, so a delete counts iff the tuple was visible,
	// and an insert counts iff it was absent or deleted by this batch.
	// This replaces the full merged-trie walk the response used to pay.
	sp := tr.Begin("cardinality")
	prev := rd.installed
	if delT != nil {
		delT.ForEachTuple(func(tp []uint32, _ float64) {
			if prev.Contains(tp) {
				rd.card--
			}
		})
	}
	if insT != nil {
		insT.ForEachTuple(func(tp []uint32, _ float64) {
			if !prev.Contains(tp) || (delT != nil && delT.Contains(tp)) {
				rd.card++
			}
		})
	}
	tr.End(sp)

	sp = tr.Begin("overlay_merge")
	rd.ov = rd.ov.Apply(insT, delT, e.Opts.Layout)
	merged := delta.MergedView(rd.baseRel.Canonical(), rd.ov.Ins, rd.ov.Del, e.Opts.Layout)
	e.DB.AddTrieOverlay(rec.Rel, merged, rd.baseRel, rd.ov.Ins, rd.ov.Del)
	tr.SpanAttrInt(sp, "overlay_rows", int64(rd.ov.Rows()))
	tr.End(sp)
	rd.installed = merged
	rd.version++
	if rec.Seq > 0 {
		// Journaled update: the relation's visible state now reflects the
		// WAL prefix through rec.Seq. Replay-synthesized records carry
		// Seq 0; installLocked advances their watermarks from the scanned
		// maxima instead.
		if e.upd.watermarks == nil {
			e.upd.watermarks = map[string]uint64{}
		}
		e.upd.watermarks[rec.Rel] = rec.Seq
	}
	e.upd.updates.Add(1)
	e.upd.updateRows.Add(uint64(rec.InsRows() + rec.DelRows()))
	return UpdateResult{
		Rel:         rec.Rel,
		Seq:         rec.Seq,
		Inserted:    rec.InsRows(),
		Deleted:     rec.DelRows(),
		Cardinality: rd.card,
		OverlayRows: rd.ov.Rows(),
	}, nil
}

// miniTries builds the batch's insert and tombstone mini-tries (nil
// when the respective side is empty). The record's column slices are
// consumed.
func miniTries(rec *wal.Record, baseRel *exec.Relation, layout trie.LayoutFunc) (insT, delT *trie.Trie) {
	if rec.InsRows() > 0 {
		var anns []float64
		if baseRel.Annotated {
			anns = rec.InsAnns
		}
		insT = trie.FromColumns(rec.InsCols, anns, baseRel.Op, layout)
	}
	if rec.DelRows() > 0 {
		delT = trie.FromColumns(rec.DelCols, nil, semiring.None, layout)
	}
	return insT, delT
}

// SetAutoCompact tunes the background compactor: the overlay/base row
// ratio that triggers compaction and the minimum overlay row count.
// ratio <= 0 disables automatic compaction (Compact still works).
func (e *Engine) SetAutoCompact(ratio float64, minRows int) {
	e.upd.mu.Lock()
	e.upd.compactRatio = ratio
	if minRows > 0 {
		e.upd.compactMin = minRows
	}
	e.upd.mu.Unlock()
}

// maybeCompactLocked spawns a background compaction when the overlay
// outgrew the configured ratio of the base.
func (e *Engine) maybeCompactLocked(name string) {
	rd := e.upd.deltas[name]
	if rd == nil || rd.compacting || e.upd.compactRatio <= 0 {
		return
	}
	rows := rd.ov.Rows()
	if rows < e.upd.compactMin {
		return
	}
	if float64(rows) < e.upd.compactRatio*float64(rd.baseCard) {
		return
	}
	e.upd.compactWG.Add(1)
	go func() {
		defer e.upd.compactWG.Done()
		_, _ = e.Compact(name)
	}()
}

// Compact folds the relation's overlay into a fresh compacted base and
// installs it. The heavy rebuild runs outside the update mutex, so
// updates keep flowing; if any landed meanwhile, the (idempotent)
// overlay is re-folded onto the new base and stays live until the next
// compaction. Returns false when there was nothing to compact (or a
// compaction was already in flight).
func (e *Engine) Compact(name string) (bool, error) {
	e.upd.mu.Lock()
	rd := e.upd.deltas[name]
	if rd == nil || rd.compacting || rd.ov.IsEmpty() {
		e.upd.mu.Unlock()
		return false, nil
	}
	if cur, ok := e.DB.Relation(name); !ok || cur.Canonical() != rd.installed {
		delete(e.upd.deltas, name) // replaced externally; stale state
		e.upd.mu.Unlock()
		return false, nil
	}
	view := rd.installed
	ver := rd.version
	rd.compacting = true
	e.upd.mu.Unlock()

	// Chaos hook: Latency here widens the rebuild/install race window,
	// Err aborts before anything is installed — either way the relation
	// keeps serving its pre-compaction state.
	if err := fault.Hit("core.compact"); err != nil {
		e.upd.mu.Lock()
		rd.compacting = false
		e.upd.mu.Unlock()
		return false, err
	}

	t0 := time.Now()
	compacted := delta.Compact(view, e.Opts.Layout)

	e.upd.mu.Lock()
	defer e.upd.mu.Unlock()
	rd.compacting = false
	cur, ok := e.DB.Relation(name)
	if !ok || cur.Canonical() != rd.installed {
		// Replaced externally while compacting: the merged view (and our
		// whole overlay state) is obsolete; drop the work. Only remove
		// the map entry if it is still ours — a restore may already have
		// installed fresh state under this name.
		if e.upd.deltas[name] == rd {
			delete(e.upd.deltas, name)
		}
		return false, nil
	}
	// Both install shapes carry exactly the current logical content (the
	// raced branch by overlay-fold idempotence), so they go through
	// SwapTrie: no epoch bump, and every epoch-keyed cached result over
	// the relation stays valid — compaction is invisible to clients.
	old := rd.installed
	baseRel := exec.NewRelation(name, compacted)
	if rd.version == ver {
		// No updates landed during the rebuild: the compacted trie IS
		// the current state; overlay resets to empty.
		if !e.DB.SwapTrie(name, old, compacted, nil, nil, nil) {
			if e.upd.deltas[name] == rd {
				delete(e.upd.deltas, name)
			}
			return false, nil
		}
		rd.baseRel = baseRel
		rd.baseCard = compacted.Cardinality()
		// Re-anchor the maintained count to the exact base cardinality;
		// any accumulated drift (there should be none) resets here.
		rd.card = rd.baseCard
		rd.ov = delta.NewOverlay(compacted.Arity, compacted.Annotated, compacted.Op)
		rd.installed = compacted
	} else {
		// Updates landed: adopt the compacted trie as the new base,
		// trim the overlay down to the post-capture net-new changes
		// (entries the compaction already absorbed drop out — without
		// the trim, sustained writes overlapping every compaction
		// window would grow the overlay without bound), and re-fold.
		ov := rd.ov.TrimAgainst(compacted, e.Opts.Layout)
		merged := delta.MergedView(compacted, ov.Ins, ov.Del, e.Opts.Layout)
		if !e.DB.SwapTrie(name, old, merged, baseRel, ov.Ins, ov.Del) {
			if e.upd.deltas[name] == rd {
				delete(e.upd.deltas, name)
			}
			return false, nil
		}
		rd.baseRel = baseRel
		rd.baseCard = compacted.Cardinality()
		rd.ov = ov
		rd.installed = merged
	}
	dur := time.Since(t0)
	e.upd.compactions.Add(1)
	e.upd.compactNS.Add(uint64(dur))
	if e.upd.obs.Compaction != nil {
		e.upd.obs.Compaction(dur)
	}
	if e.upd.obs.Event != nil {
		e.upd.obs.Event("compaction", map[string]any{
			"relation":     name,
			"duration_us":  dur.Microseconds(),
			"base_rows":    rd.baseCard,
			"overlay_rows": rd.ov.Rows(),
			"raced":        rd.version != ver,
		})
	}
	return true, nil
}

// WaitCompactions blocks until in-flight background compactions finish
// (shutdown and test hook).
func (e *Engine) WaitCompactions() { e.upd.compactWG.Wait() }

// WALConfig configures the engine's write-ahead log.
type WALConfig struct {
	// Dir is the WAL segment directory.
	Dir string
	// Sync is the fsync policy (always / interval / off).
	Sync wal.SyncPolicy
	// SyncInterval paces interval fsyncs (default 50ms).
	SyncInterval time.Duration
	// SnapshotDir pairs the WAL with one snapshot directory: only a
	// successful snapshot to it truncates replayed segments. Empty
	// means snapshots never truncate — without a paired directory there
	// is no guarantee the next boot restores the state that absorbed
	// the records, so they are conservatively kept (replay is
	// idempotent; segments can be removed manually once snapshotted).
	SnapshotDir string
	// FS overrides the log's file operations — fault injection in
	// chaos tests. Nil selects the real filesystem.
	FS fault.FS
}

// ReplayStats reports what OpenWAL recovered on boot.
type ReplayStats struct {
	Segments  int   `json:"segments"`
	Records   int   `json:"records"`
	Rows      int64 `json:"rows"`
	Bytes     int64 `json:"bytes"`
	Truncated bool  `json:"truncated,omitempty"`
	// DurationUS is the wall time of the scan+apply, microseconds.
	DurationUS int64 `json:"duration_us"`
	// Relations is the number of distinct relations the replay touched.
	Relations int `json:"relations,omitempty"`
	// SkippedRelations counts relations whose accumulated records could
	// not apply (arity conflict with the restored catalog — e.g. an
	// unjournaled load replaced the relation mid-log). Their records
	// are dropped rather than failing the boot; the restored snapshot
	// wins.
	SkippedRelations int `json:"skipped_relations,omitempty"`
}

// OpenWAL opens (creating if needed) the write-ahead log and replays
// its records on top of the engine's current state — call it on boot
// after Restore. Records accumulate per relation during the scan and
// install once at the end (one merged view per relation, not one per
// record), so replaying 100k single-row updates costs one overlay
// fold, not 100k. After OpenWAL returns, every Update appends to the
// log before applying.
func (e *Engine) OpenWAL(cfg WALConfig) (ReplayStats, error) {
	e.upd.mu.Lock()
	defer e.upd.mu.Unlock()
	if e.upd.wal != nil {
		return ReplayStats{}, fmt.Errorf("core: WAL already open")
	}
	acc := newReplayAcc()
	l, info, err := wal.Open(wal.Options{Dir: cfg.Dir, Sync: cfg.Sync, SyncInterval: cfg.SyncInterval, FS: cfg.FS},
		func(rec *wal.Record) error { return acc.add(rec, e) })
	if err != nil {
		return ReplayStats{}, err
	}
	skipped, err := acc.installLocked(e)
	if err != nil {
		l.Close()
		return ReplayStats{}, err
	}
	e.upd.wal = l
	e.upd.walCfg = cfg
	if e.upd.obs.WALFsync != nil {
		l.SetFsyncObserver(e.upd.obs.WALFsync)
	}
	st := ReplayStats{
		Segments:         info.Segments,
		Records:          info.Records,
		Rows:             info.Rows,
		Bytes:            info.Bytes,
		Truncated:        info.Truncated,
		DurationUS:       info.Duration.Microseconds(),
		Relations:        len(acc.rels),
		SkippedRelations: skipped,
	}
	e.upd.replay = st
	if e.upd.obs.Event != nil {
		e.upd.obs.Event("wal_replay", map[string]any{
			"segments":    st.Segments,
			"records":     st.Records,
			"rows":        st.Rows,
			"relations":   st.Relations,
			"truncated":   st.Truncated,
			"duration_us": st.DurationUS,
		})
	}
	for name := range acc.rels {
		e.maybeCompactLocked(name)
	}
	return st, nil
}

// CloseWAL fsyncs and closes the log (further updates apply in memory
// only). It waits for in-flight compactions first.
func (e *Engine) CloseWAL() error {
	e.upd.compactWG.Wait()
	e.upd.mu.Lock()
	defer e.upd.mu.Unlock()
	if e.upd.wal == nil {
		return nil
	}
	err := e.upd.wal.Close()
	e.upd.wal = nil
	return err
}

// ProbeDurability checks whether durable WAL appends can succeed right
// now: it writes, fsyncs, and removes a scratch file in the log
// directory (repairing a log poisoned by an unrollbackable append — see
// wal.Log.Probe). With no WAL open it reports success. The server's
// durability circuit breaker polls it to leave degraded read-only mode.
func (e *Engine) ProbeDurability() error {
	e.upd.mu.Lock()
	l := e.upd.wal
	e.upd.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.Probe()
}

// replayAcc folds WAL records into per-relation "last action per tuple"
// state, the exact semantics of sequential overlay application, so the
// final install is one batch per relation.
type replayAcc struct {
	rels map[string]*replayRel
	// maxSeq tracks, per relation, the highest WAL sequence number seen
	// during the scan; installLocked promotes it to the relation's
	// watermark (the synthesized install records carry Seq 0).
	maxSeq map[string]uint64
}

type replayRel struct {
	arity     int
	op        semiring.Op
	annotated bool
	last      map[string]replayTuple
}

type replayTuple struct {
	row []uint32
	ins bool
	ann float64
}

func newReplayAcc() *replayAcc {
	return &replayAcc{rels: map[string]*replayRel{}, maxSeq: map[string]uint64{}}
}

func (a *replayAcc) add(rec *wal.Record, e *Engine) error {
	if rec.Seq > a.maxSeq[rec.Rel] {
		a.maxSeq[rec.Rel] = rec.Seq
	}
	rr := a.rels[rec.Rel]
	if rr != nil && rr.arity != rec.Arity {
		// The relation changed shape mid-log (an unjournaled load
		// replaced it between journaled updates). Later records win, the
		// way the live apply path resets the overlay on external
		// replacement: restart the accumulator at the new shape.
		rr = nil
	}
	if rr == nil {
		annotated := rec.Annotated()
		op := rec.Op
		if rel, ok := e.DB.Relation(rec.Rel); ok && rel.Arity == rec.Arity {
			annotated = rel.Annotated
			op = rel.Op
		}
		rr = &replayRel{arity: rec.Arity, op: op, annotated: annotated, last: map[string]replayTuple{}}
		a.rels[rec.Rel] = rr
	}
	// Deletes first, then inserts (batch semantics). Inserts go through
	// the same mini-trie build as the live path so duplicate tuples
	// within one record ⊕-combine identically.
	row := make([]uint32, rec.Arity)
	for i := 0; i < rec.DelRows(); i++ {
		for c := range row {
			row[c] = rec.DelCols[c][i]
		}
		rr.last[string(packRow(row))] = replayTuple{ins: false}
	}
	if rec.InsRows() > 0 {
		var anns []float64
		if rr.annotated {
			anns = rec.InsAnns
			if len(anns) != rec.InsRows() {
				anns = fillOnes(rr.op, rec.InsRows())
			}
		}
		mini := trie.FromColumns(rec.InsCols, anns, rr.op, nil)
		mini.ForEachTuple(func(tp []uint32, ann float64) {
			rr.last[string(packRow(tp))] = replayTuple{row: append([]uint32(nil), tp...), ins: true, ann: ann}
		})
	}
	return nil
}

func packRow(row []uint32) []byte {
	out := make([]byte, 4*len(row))
	for i, v := range row {
		out[4*i] = byte(v)
		out[4*i+1] = byte(v >> 8)
		out[4*i+2] = byte(v >> 16)
		out[4*i+3] = byte(v >> 24)
	}
	return out
}

func unpackRow(key string, arity int) []uint32 {
	row := make([]uint32, arity)
	for i := range row {
		row[i] = uint32(key[4*i]) | uint32(key[4*i+1])<<8 | uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
	}
	return row
}

// installLocked folds each accumulated relation's net effect as one
// overlay apply + merged-view install. Relations whose records cannot
// apply (arity conflict with the restored catalog) are skipped and
// counted rather than failing the boot — availability beats replaying
// records the snapshot has already superseded.
func (a *replayAcc) installLocked(e *Engine) (skipped int, err error) {
	for name, rr := range a.rels {
		insCols := make([][]uint32, rr.arity)
		delCols := make([][]uint32, rr.arity)
		var insAnns []float64
		for key, tp := range rr.last {
			if tp.ins {
				for c, v := range tp.row {
					insCols[c] = append(insCols[c], v)
				}
				if rr.annotated {
					insAnns = append(insAnns, tp.ann)
				}
			} else {
				row := unpackRow(key, rr.arity)
				for c, v := range row {
					delCols[c] = append(delCols[c], v)
				}
			}
		}
		rec := &wal.Record{Rel: name, Arity: rr.arity, Op: rr.op}
		if insRows(insCols) > 0 {
			rec.InsCols = insCols
			if rr.annotated {
				rec.InsAnns = insAnns
			}
		}
		if insRows(delCols) > 0 {
			rec.DelCols = delCols
		}
		if rec.InsRows() == 0 && rec.DelRows() == 0 {
			continue
		}
		if rr.annotated && rec.InsAnns == nil {
			rec.InsAnns = []float64{}
		}
		if _, err := e.applyRecordLocked(rec, nil); err != nil {
			skipped++
			continue
		}
		// The synthesized record carries Seq 0; the installed view
		// reflects the scanned prefix, so promote the scan's maximum to
		// the watermark (pairing with the epoch bump the apply just made).
		if seq := a.maxSeq[name]; seq > e.upd.watermarks[name] {
			e.upd.watermarks[name] = seq
		}
	}
	return skipped, nil
}

// OverlayStat describes one relation's live overlay for metrics.
type OverlayStat struct {
	Relation string `json:"relation"`
	// Rows is the overlay size (pending inserts + tombstones).
	Rows int `json:"rows"`
	// BaseRows is the compacted base's cardinality.
	BaseRows int `json:"base_rows"`
	// InsBytes / DelBytes are the estimated payload sizes of the insert
	// and tombstone mini-tries (cached at overlay construction, so a
	// scrape never walks them).
	InsBytes int `json:"ins_bytes"`
	DelBytes int `json:"del_bytes"`
	// Compacting reports an in-flight background compaction.
	Compacting bool `json:"compacting,omitempty"`
}

// DurabilityStats is the streaming-update subsystem's metrics document.
type DurabilityStats struct {
	WAL      wal.Stats     `json:"wal"`
	Replay   ReplayStats   `json:"replay"`
	Overlays []OverlayStat `json:"overlays,omitempty"`
	// Updates / UpdateRows count applied batches and their rows.
	Updates    uint64 `json:"updates"`
	UpdateRows uint64 `json:"update_rows"`
	// Compactions counts finished compactions; CompactTotalUS their
	// total wall time.
	Compactions    uint64 `json:"compactions"`
	CompactTotalUS int64  `json:"compact_total_us"`
}

// Durability returns a point-in-time snapshot of the streaming-update
// subsystem's counters. The WAL's own stats (which stat the segment
// directory) are read after the update mutex is released, so a metrics
// scrape never blocks updates on filesystem I/O.
func (e *Engine) Durability() DurabilityStats {
	e.upd.mu.Lock()
	st := DurabilityStats{
		Replay:         e.upd.replay,
		Updates:        e.upd.updates.Load(),
		UpdateRows:     e.upd.updateRows.Load(),
		Compactions:    e.upd.compactions.Load(),
		CompactTotalUS: int64(e.upd.compactNS.Load() / 1e3),
	}
	walHandle := e.upd.wal
	for name, rd := range e.upd.deltas {
		if rd.ov.IsEmpty() && !rd.compacting {
			continue
		}
		insB, delB := rd.ov.MemBytes()
		st.Overlays = append(st.Overlays, OverlayStat{
			Relation:   name,
			Rows:       rd.ov.Rows(),
			BaseRows:   rd.baseCard,
			InsBytes:   insB,
			DelBytes:   delB,
			Compacting: rd.compacting,
		})
	}
	e.upd.mu.Unlock()
	if walHandle != nil {
		st.WAL = walHandle.StatsSnapshot()
	}
	sort.Slice(st.Overlays, func(i, j int) bool { return st.Overlays[i].Relation < st.Overlays[j].Relation })
	return st
}

// RelProv is one relation's live determination-provenance coordinates
// (see internal/prov and docs/PROVENANCE.md).
type RelProv struct {
	// OverlayGen counts the update batches folded into the relation's
	// merged view since its base was last replaced.
	OverlayGen uint64
	// WALSeq is the relation's WAL applied-seq watermark (0 = epoch-only
	// lineage: no WAL, or restored from a pre-provenance snapshot).
	WALSeq uint64
	// OverlayRows is the live overlay size (pending inserts + tombstones).
	OverlayRows int
}

// Lineage returns the provenance coordinates of the named relations,
// read atomically under the update mutex so the set is one admissible
// point in the update order. Unknown relations report zeros.
func (e *Engine) Lineage(names []string) map[string]RelProv {
	out := make(map[string]RelProv, len(names))
	e.upd.mu.Lock()
	for _, name := range names {
		p := RelProv{WALSeq: e.upd.watermarks[name]}
		if rd := e.upd.deltas[name]; rd != nil {
			p.OverlayGen = rd.version
			p.OverlayRows = rd.ov.Rows()
		}
		out[name] = p
	}
	e.upd.mu.Unlock()
	return out
}

// Watermarks returns a copy of every relation's WAL applied-seq
// watermark (zero-valued entries are omitted).
func (e *Engine) Watermarks() map[string]uint64 {
	e.upd.mu.Lock()
	defer e.upd.mu.Unlock()
	out := make(map[string]uint64, len(e.upd.watermarks))
	for name, seq := range e.upd.watermarks {
		if seq > 0 {
			out[name] = seq
		}
	}
	return out
}

// walSnapshotDirMatches reports whether a snapshot to dir may truncate
// the WAL (see WALConfig.SnapshotDir). An unpaired WAL is never
// truncated by snapshots: nothing guarantees the next boot restores
// from the directory that absorbed the records, so deleting them could
// orphan acknowledged batches.
func (e *Engine) walSnapshotDirMatches(dir string) bool {
	if e.upd.walCfg.SnapshotDir == "" {
		return false
	}
	a, err1 := filepath.Abs(e.upd.walCfg.SnapshotDir)
	b, err2 := filepath.Abs(dir)
	if err1 != nil || err2 != nil {
		return e.upd.walCfg.SnapshotDir == dir
	}
	return a == b
}
