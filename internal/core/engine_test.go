package core

import (
	"strings"
	"testing"

	"emptyheaded/internal/exec"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/semiring"
)

func TestEngineEndToEnd(t *testing.T) {
	g := gen.ErdosRenyi(150, 900, 41)
	e := New()
	e.LoadGraph("Edge", g)
	if _, ok := e.Graph("Edge"); !ok {
		t.Fatal("graph not tracked")
	}
	res, err := e.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() < 0 {
		t.Fatal("negative count")
	}
	// The same count under the LogicBlox-style configuration.
	lb := NewWithOptions(exec.Options{SingleBag: true})
	lb.LoadGraph("Edge", g)
	res2, err := lb.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != res2.Scalar() {
		t.Fatalf("configs disagree: %v vs %v", res.Scalar(), res2.Scalar())
	}
}

func TestEngineLoadEdgeListDictionary(t *testing.T) {
	e := New()
	// Original ids far outside dense range exercise dictionary encoding.
	err := e.LoadEdgeList("Edge", strings.NewReader("1000000 2000000\n2000000 3000000\n3000000 1000000\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != 6 {
		t.Fatalf("triangles=%v want 6", res.Scalar())
	}
	// Selection through the dictionary.
	sel, err := e.Run(`Nbr(x) :- Edge("2000000",x).`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cardinality() != 2 {
		t.Fatalf("neighbors=%d want 2", sel.Cardinality())
	}
}

func TestEngineRelationsAndAliases(t *testing.T) {
	e := New()
	e.AddRelation("E", 2, [][]uint32{{0, 1}, {1, 2}, {2, 0}})
	if err := e.Alias("F", "E"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(`P(a,c) :- E(a,b),F(b,c).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality() != 3 {
		t.Fatalf("paths=%d want 3", res.Cardinality())
	}
	if err := e.AddAnnotatedRelation("W", 1, semiring.Sum,
		[][]uint32{{0}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched annotations should error")
	}
	if _, err := e.Run(`Bad(x) :- `); err == nil {
		t.Fatal("parse error should propagate")
	}
	if _, err := e.Explain(`Bad(x) :- Missing(x,y).`); err == nil {
		t.Fatal("unknown relation should propagate in Explain")
	}
}
