package core

import (
	"math/rand"
	"testing"

	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
)

// Bulk-load benchmarks: unsorted tuples → trie, the /load hot path.

func benchTuples(n int) ([][]uint32, [][]uint32) {
	rng := rand.New(rand.NewSource(17))
	tuples := make([][]uint32, n)
	cols := [][]uint32{make([]uint32, n), make([]uint32, n)}
	for i := range tuples {
		u, v := uint32(rng.Intn(1<<17)), uint32(rng.Intn(1<<17))
		tuples[i] = []uint32{u, v}
		cols[0][i], cols[1][i] = u, v
	}
	return tuples, cols
}

func BenchmarkBulkLoadTuples(b *testing.B) {
	tuples, _ := benchTuples(1 << 18)
	eng := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AddRelation("R", 2, tuples)
	}
}

func BenchmarkBulkLoadColumns(b *testing.B) {
	_, cols := benchTuples(1 << 18)
	eng := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := [][]uint32{append([]uint32(nil), cols[0]...), append([]uint32(nil), cols[1]...)}
		if err := eng.AddRelationColumns("R", c, nil, semiring.None); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeListIngest(b *testing.B) {
	_, cols := benchTuples(1 << 18)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.FromEdgeColumns(1<<17, cols[0], cols[1], true)
		if g.Edges() == 0 {
			b.Fatal("no edges")
		}
	}
}
