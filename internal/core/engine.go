// Package core ties EmptyHeaded together: the query compiler (datalog →
// GHD → physical plan), the execution engine, and graph/relation loading.
// It is the paper's primary contribution assembled behind one facade
// (Figure 1): query compiler → code generation → execution engine with
// automatic algorithmic and layout decisions.
package core

import (
	"fmt"
	"io"
	"sync"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/storage"
	"emptyheaded/internal/trie"
)

// Engine is an EmptyHeaded instance: a database of trie-stored relations
// plus execution options. Loading and querying are safe for concurrent
// use; Run mutates the shared database (head relations persist), while
// RunIsolated / RunPrepared execute against a session-local fork so
// concurrent queries never observe each other's intermediates.
type Engine struct {
	DB   *exec.DB
	Opts exec.Options
	// mu guards graphs and restored; the DB carries its own
	// synchronization.
	mu sync.RWMutex
	// graphs remembers loaded graphs by relation name for the
	// benchmark harness and examples.
	graphs map[string]*graph.Graph
	// restored holds the storage handle of every Restore, keeping their
	// mmap'd segments alive for the tries that alias them (see
	// Engine.Restore for the lifecycle discussion).
	restored []*storage.Database
	// lastSnaps remembers, per snapshot directory, the catalog this
	// engine last wrote to (or restored from) it; Snapshot passes it to
	// storage.WriteIncremental so relations whose epoch hasn't advanced
	// reuse their existing checksummed segments. Guarded by mu. The
	// epochs are only comparable because they come from this engine's
	// own lifetime — never seed the map from a foreign catalog.
	lastSnaps map[string]*storage.Catalog
	// upd owns the streaming-update subsystem: the WAL handle, the
	// per-relation base+overlay state, and compaction configuration
	// (see update.go). upd.mu serializes every update — the WAL append
	// order is the apply order, which is what makes replay
	// deterministic.
	upd updState
}

// New returns an engine with the full optimizer enabled.
func New() *Engine {
	e := &Engine{
		DB:        exec.NewDB(),
		graphs:    map[string]*graph.Graph{},
		lastSnaps: map[string]*storage.Catalog{},
	}
	e.upd.deltas = map[string]*relDelta{}
	e.upd.watermarks = map[string]uint64{}
	e.upd.compactRatio = DefaultCompactRatio
	e.upd.compactMin = DefaultCompactMin
	return e
}

// NewWithOptions returns an engine with explicit execution options
// (ablations, layout policies, parallelism).
func NewWithOptions(opts exec.Options) *Engine {
	e := New()
	e.Opts = opts
	return e
}

// LoadGraph registers a graph as the binary edge relation `name`.
func (e *Engine) LoadGraph(name string, g *graph.Graph) {
	e.DB.AddGraph(name, g, e.Opts.Layout, e.layoutName())
	e.mu.Lock()
	e.graphs[name] = g
	e.mu.Unlock()
}

func (e *Engine) layoutName() string {
	if e.Opts.LayoutName == "" {
		return "auto"
	}
	return e.Opts.LayoutName
}

// Graph returns a previously loaded graph.
func (e *Engine) Graph(name string) (*graph.Graph, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	g, ok := e.graphs[name]
	return g, ok
}

// LoadGraphWithDict registers a graph and its identifier dictionary as
// one atomic installation: concurrent forks never observe the new
// dictionary paired with the old relation (or vice versa).
func (e *Engine) LoadGraphWithDict(name string, g *graph.Graph, dict *graph.Dictionary) {
	e.DB.ReplaceGraph(name, g, dict, e.Opts.Layout, e.layoutName())
	e.mu.Lock()
	e.graphs[name] = g
	e.mu.Unlock()
}

// LoadEdgeList reads a "src dst" edge list, dictionary-encodes it, and
// registers it as relation `name`. The dictionary becomes the engine's
// constant-resolution dictionary.
func (e *Engine) LoadEdgeList(name string, r io.Reader, undirected bool) error {
	g, dict, err := graph.ParseEdgeList(r, undirected)
	if err != nil {
		return err
	}
	e.LoadGraphWithDict(name, g, dict)
	return nil
}

// AddRelation registers an arbitrary relation from tuples: rows are
// transposed into columns in one pass and handed to the columnar builder,
// skipping the per-tuple Add path entirely.
func (e *Engine) AddRelation(name string, arity int, tuples [][]uint32) {
	e.DB.AddTrie(name, trie.FromColumns(transpose(arity, tuples), nil, semiring.None, e.Opts.Layout))
}

// AddAnnotatedRelation registers an annotated relation via the same
// columnar bulk path.
func (e *Engine) AddAnnotatedRelation(name string, arity int, op semiring.Op, tuples [][]uint32, anns []float64) error {
	if len(tuples) != len(anns) {
		return fmt.Errorf("core: %d tuples, %d annotations", len(tuples), len(anns))
	}
	e.DB.AddTrie(name, trie.FromColumns(transpose(arity, tuples), anns, op, e.Opts.Layout))
	return nil
}

// AddRelationColumns registers a relation given column-wise: cols[i]
// holds attribute i of every row, anns is nil for un-annotated relations.
// The columns are handed to the trie builder zero-copy (the engine takes
// ownership).
func (e *Engine) AddRelationColumns(name string, cols [][]uint32, anns []float64, op semiring.Op) error {
	n := -1
	for _, c := range cols {
		if n < 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("core: ragged columns (%d vs %d rows)", len(c), n)
		}
	}
	if anns != nil && n >= 0 && len(anns) != n {
		return fmt.Errorf("core: %d rows, %d annotations", n, len(anns))
	}
	e.DB.AddTrie(name, trie.FromColumns(cols, anns, op, e.Opts.Layout))
	return nil
}

// transpose flips row-major tuples into column-major slices, allocating
// each column exactly once.
func transpose(arity int, tuples [][]uint32) [][]uint32 {
	cols := make([][]uint32, arity)
	for c := range cols {
		cols[c] = make([]uint32, len(tuples))
	}
	for i, t := range tuples {
		if len(t) != arity {
			panic(fmt.Sprintf("core: tuple arity %d, want %d", len(t), arity))
		}
		for c, v := range t {
			cols[c][i] = v
		}
	}
	return cols
}

// Alias registers `alias` as another name for relation `target` (the
// paper's pattern queries spell the edge relation R, S, T, …).
func (e *Engine) Alias(alias, target string) error {
	rel, ok := e.DB.Relation(target)
	if !ok {
		return fmt.Errorf("core: unknown relation %s", target)
	}
	e.DB.AddTrie(alias, rel.Canonical())
	e.mu.Lock()
	if g, ok := e.graphs[target]; ok {
		e.graphs[alias] = g
	}
	e.mu.Unlock()
	return nil
}

// Run parses and executes a datalog program, returning the result of its
// final rule group. Intermediate head relations stay registered in the
// database.
func (e *Engine) Run(query string) (*exec.Result, error) {
	prog, err := datalog.Parse(query)
	if err != nil {
		return nil, err
	}
	return exec.RunProgram(e.DB, prog, e.Opts)
}

// RunAnalyze executes a query with the EXPLAIN ANALYZE counters enabled
// and returns the result together with the physical plan annotated with
// actuals (per-level intersection counts, cardinalities, wall time; see
// exec.Plan.ExplainAnalyze). Multi-rule and recursive programs execute
// without a pinned plan and return an empty annotation.
func (e *Engine) RunAnalyze(query string) (*exec.Result, string, error) {
	prog, err := datalog.Parse(query)
	if err != nil {
		return nil, "", err
	}
	pr, err := exec.Prepare(e.DB, prog, e.Opts)
	if err != nil {
		return nil, "", err
	}
	res, err := pr.RunWith(e.DB, exec.RunParams{Limit: e.Opts.Limit, Collect: true})
	if err != nil {
		return nil, "", err
	}
	var text string
	if res.Plan != nil && res.Stats != nil {
		text = res.Plan.ExplainAnalyze(res.Stats)
	}
	return res, text, nil
}

// RunIsolated executes an already parsed program against a fork of the
// database: intermediate and final head relations stay session-local, so
// any number of RunIsolated calls may proceed concurrently with each
// other (and with loads). Embedders serving concurrent queries should
// use this (or RunPrepared) instead of Run.
func (e *Engine) RunIsolated(prog *datalog.Program) (*exec.Result, error) {
	return exec.RunProgram(e.DB.Fork(), prog, e.Opts)
}

// Prepare compiles a parsed program into a reusable Prepared query (see
// exec.Prepare); the service's plan cache stores these.
func (e *Engine) Prepare(prog *datalog.Program) (*exec.Prepared, error) {
	return exec.Prepare(e.DB, prog, e.Opts)
}

// RunPrepared executes a prepared query against a fresh fork. Callers
// that need the fork afterwards (e.g. its dictionary snapshot, as the
// query service does for decoding) should fork explicitly and call
// Prepared.Run themselves.
func (e *Engine) RunPrepared(pr *exec.Prepared) (*exec.Result, error) {
	return pr.Run(e.DB.Fork())
}

// Version exposes the database mutation counter for cache invalidation.
func (e *Engine) Version() uint64 { return e.DB.Version() }

// RelationInfo is a catalog row describing one stored relation.
type RelationInfo struct {
	Name        string `json:"name"`
	Arity       int    `json:"arity"`
	Cardinality int    `json:"cardinality"`
	Annotated   bool   `json:"annotated"`
}

// Relations returns catalog rows for every stored relation, sorted by
// name.
func (e *Engine) Relations() []RelationInfo {
	var out []RelationInfo
	for _, n := range e.DB.Names() {
		r, ok := e.DB.Relation(n)
		if !ok {
			continue // dropped between Names and lookup
		}
		out = append(out, RelationInfo{
			Name:        r.Name,
			Arity:       r.Arity,
			Cardinality: r.Cardinality(),
			Annotated:   r.Annotated,
		})
	}
	return out
}

// Explain compiles the (single-rule) query and renders its physical plan
// in the paper's generated-code shape (Figure 1).
func (e *Engine) Explain(query string) (string, error) {
	rule, err := datalog.ParseRule(query)
	if err != nil {
		return "", err
	}
	p, err := exec.Compile(e.DB, rule, e.Opts)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}
