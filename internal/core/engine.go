// Package core ties EmptyHeaded together: the query compiler (datalog →
// GHD → physical plan), the execution engine, and graph/relation loading.
// It is the paper's primary contribution assembled behind one facade
// (Figure 1): query compiler → code generation → execution engine with
// automatic algorithmic and layout decisions.
package core

import (
	"fmt"
	"io"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// Engine is an EmptyHeaded instance: a database of trie-stored relations
// plus execution options.
type Engine struct {
	DB   *exec.DB
	Opts exec.Options
	// graphs remembers loaded graphs by relation name for the
	// benchmark harness and examples.
	graphs map[string]*graph.Graph
}

// New returns an engine with the full optimizer enabled.
func New() *Engine {
	return &Engine{DB: exec.NewDB(), graphs: map[string]*graph.Graph{}}
}

// NewWithOptions returns an engine with explicit execution options
// (ablations, layout policies, parallelism).
func NewWithOptions(opts exec.Options) *Engine {
	e := New()
	e.Opts = opts
	return e
}

// LoadGraph registers a graph as the binary edge relation `name`.
func (e *Engine) LoadGraph(name string, g *graph.Graph) {
	e.DB.AddGraph(name, g, e.Opts.Layout, e.layoutName())
	e.graphs[name] = g
}

func (e *Engine) layoutName() string {
	if e.Opts.LayoutName == "" {
		return "auto"
	}
	return e.Opts.LayoutName
}

// Graph returns a previously loaded graph.
func (e *Engine) Graph(name string) (*graph.Graph, bool) {
	g, ok := e.graphs[name]
	return g, ok
}

// LoadEdgeList reads a "src dst" edge list, dictionary-encodes it, and
// registers it as relation `name`. The dictionary becomes the engine's
// constant-resolution dictionary.
func (e *Engine) LoadEdgeList(name string, r io.Reader, undirected bool) error {
	g, dict, err := graph.ParseEdgeList(r, undirected)
	if err != nil {
		return err
	}
	e.DB.Dict = dict
	e.LoadGraph(name, g)
	return nil
}

// AddRelation registers an arbitrary relation from tuples.
func (e *Engine) AddRelation(name string, arity int, tuples [][]uint32) {
	b := trie.NewBuilder(arity, semiring.None, e.Opts.Layout)
	for _, t := range tuples {
		b.Add(t...)
	}
	e.DB.AddTrie(name, b.Build())
}

// AddAnnotatedRelation registers an annotated relation.
func (e *Engine) AddAnnotatedRelation(name string, arity int, op semiring.Op, tuples [][]uint32, anns []float64) error {
	if len(tuples) != len(anns) {
		return fmt.Errorf("core: %d tuples, %d annotations", len(tuples), len(anns))
	}
	b := trie.NewBuilder(arity, op, e.Opts.Layout)
	for i, t := range tuples {
		b.AddAnn(anns[i], t...)
	}
	e.DB.AddTrie(name, b.Build())
	return nil
}

// Alias registers `alias` as another name for relation `target` (the
// paper's pattern queries spell the edge relation R, S, T, …).
func (e *Engine) Alias(alias, target string) error {
	rel, ok := e.DB.Relation(target)
	if !ok {
		return fmt.Errorf("core: unknown relation %s", target)
	}
	e.DB.AddTrie(alias, rel.Canonical())
	if g, ok := e.graphs[target]; ok {
		e.graphs[alias] = g
	}
	return nil
}

// Run parses and executes a datalog program, returning the result of its
// final rule group. Intermediate head relations stay registered in the
// database.
func (e *Engine) Run(query string) (*exec.Result, error) {
	prog, err := datalog.Parse(query)
	if err != nil {
		return nil, err
	}
	return exec.RunProgram(e.DB, prog, e.Opts)
}

// Explain compiles the (single-rule) query and renders its physical plan
// in the paper's generated-code shape (Figure 1).
func (e *Engine) Explain(query string) (string, error) {
	rule, err := datalog.ParseRule(query)
	if err != nil {
		return "", err
	}
	p, err := exec.Compile(e.DB, rule, e.Opts)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}
