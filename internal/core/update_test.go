package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/semiring"
)

// updateQueries exercises identity and permuted indexes plus joins over
// the merged base+overlay view.
var updateQueries = []string{
	`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`,
	`Tri(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).`,
	`P2(x,z) :- Edge(x,y),Edge(y,z).`,
	`Deg(x;w:long) :- Edge(x,y); w=<<COUNT(y)>>.`,
	`In(y;w:long) :- Edge(x,y); w=<<COUNT(x)>>.`,
}

// edgeSet tracks the ground-truth tuple set of the Edge relation.
type edgeSet map[[2]uint32]bool

func (s edgeSet) cols() [][]uint32 {
	keys := make([][2]uint32, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	cols := [][]uint32{make([]uint32, len(keys)), make([]uint32, len(keys))}
	for i, k := range keys {
		cols[0][i] = k[0]
		cols[1][i] = k[1]
	}
	return cols
}

// referenceEngine builds a fresh engine holding exactly the model's
// tuples (the from-scratch rebuild the overlay view must match).
func referenceEngine(s edgeSet) *Engine {
	ref := New()
	cols := s.cols()
	if err := ref.AddRelationColumns("Edge", cols, nil, semiring.None); err != nil {
		panic(err)
	}
	return ref
}

func toCols(rows [][2]uint32) [][]uint32 {
	cols := [][]uint32{make([]uint32, len(rows)), make([]uint32, len(rows))}
	for i, r := range rows {
		cols[0][i] = r[0]
		cols[1][i] = r[1]
	}
	return cols
}

func TestUpdateInsertDeleteQuery(t *testing.T) {
	eng := New()
	model := edgeSet{}
	// Seed a small cycle graph plus chords.
	var rows [][2]uint32
	for v := uint32(0); v < 10; v++ {
		rows = append(rows, [2]uint32{v, (v + 1) % 10})
		model[[2]uint32{v, (v + 1) % 10}] = true
	}
	eng.AddRelationColumns("Edge", toCols(rows), nil, semiring.None)

	// Insert a triangle 0→2→4→0 chord set.
	ins := [][2]uint32{{0, 2}, {2, 4}, {4, 0}}
	res, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols(ins)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ins {
		model[r] = true
	}
	if res.Inserted != 3 || res.Cardinality != len(model) || res.OverlayRows != 3 {
		t.Fatalf("insert result %+v (model %d)", res, len(model))
	}
	ref := referenceEngine(model)
	for _, q := range updateQueries {
		if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
			t.Fatalf("after insert, %q: got %s want %s", q, got, want)
		}
	}

	// Delete one triangle edge and one never-present tuple.
	res, err = eng.Update(UpdateBatch{Rel: "Edge", DelCols: toCols([][2]uint32{{2, 4}, {99, 99}})})
	if err != nil {
		t.Fatal(err)
	}
	delete(model, [2]uint32{2, 4})
	if res.Deleted != 2 || res.Cardinality != len(model) {
		t.Fatalf("delete result %+v (model %d)", res, len(model))
	}
	ref = referenceEngine(model)
	for _, q := range updateQueries {
		if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
			t.Fatalf("after delete, %q: got %s want %s", q, got, want)
		}
	}

	// Same-batch delete+insert: net effect present.
	_, err = eng.Update(UpdateBatch{
		Rel:     "Edge",
		InsCols: toCols([][2]uint32{{7, 3}}),
		DelCols: toCols([][2]uint32{{7, 3}, {0, 2}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	model[[2]uint32{7, 3}] = true
	delete(model, [2]uint32{0, 2})
	ref = referenceEngine(model)
	for _, q := range updateQueries {
		if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
			t.Fatalf("after mixed batch, %q: got %s want %s", q, got, want)
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	eng := New()
	eng.AddRelationColumns("Edge", [][]uint32{{1}, {2}}, nil, semiring.None)
	cases := []UpdateBatch{
		{},                                      // no relation
		{Rel: "Edge"},                           // no columns
		{Rel: "Edge", InsCols: [][]uint32{{1}}}, // arity 1 vs 2
		{Rel: "Edge", InsCols: [][]uint32{{1}, {2, 3}}},                     // ragged
		{Rel: "Edge", InsCols: [][]uint32{{1}, {2}}, InsAnns: []float64{1}}, // anns on un-annotated
		{Rel: "New", InsCols: [][]uint32{{1}}, InsAnns: []float64{2}},       // annotated, no op
	}
	for i, b := range cases {
		if _, err := eng.Update(b); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Creating a new relation by insert works, deletes on it too.
	if _, err := eng.Update(UpdateBatch{Rel: "R3", InsCols: [][]uint32{{1, 2}, {3, 4}, {5, 6}}}); err != nil {
		t.Fatal(err)
	}
	rel, ok := eng.DB.Relation("R3")
	if !ok || rel.Arity != 3 || rel.Cardinality() != 2 {
		t.Fatalf("created relation: %+v ok=%v", rel, ok)
	}
}

func TestUpdateAnnotatedReplace(t *testing.T) {
	eng := New()
	eng.AddAnnotatedRelation("W", 2, semiring.Sum, [][]uint32{{1, 2}, {3, 4}}, []float64{10, 20})
	// Upsert {1,2} with a new weight; insert {5,6}.
	_, err := eng.Update(UpdateBatch{
		Rel:     "W",
		InsCols: [][]uint32{{1, 5}, {2, 6}},
		InsAnns: []float64{99, 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(`S(;w:float) :- W(x,y); w=<<SUM(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar(); got != 99+20+7 {
		t.Fatalf("sum after upsert = %g, want 126", got)
	}
	// Un-annotated insert into annotated relation defaults to ⊗-identity.
	if _, err := eng.Update(UpdateBatch{Rel: "W", InsCols: [][]uint32{{8}, {8}}}); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Run(`S(;w:float) :- W(x,y); w=<<SUM(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar(); got != 99+20+7+1 {
		t.Fatalf("sum after default-ann insert = %g, want 127", got)
	}
}

func TestUpdateDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eng := New()
	model := edgeSet{}
	var rows [][2]uint32
	for i := 0; i < 150; i++ {
		e := [2]uint32{uint32(rng.Intn(25)), uint32(rng.Intn(25))}
		rows = append(rows, e)
		model[e] = true
	}
	eng.AddRelationColumns("Edge", toCols(rows), nil, semiring.None)

	live := func() [][2]uint32 {
		out := make([][2]uint32, 0, len(model))
		for k := range model {
			out = append(out, k)
		}
		return out
	}
	for batch := 0; batch < 20; batch++ {
		var ins, del [][2]uint32
		for i := 0; i < rng.Intn(8); i++ {
			ins = append(ins, [2]uint32{uint32(rng.Intn(25)), uint32(rng.Intn(25))})
		}
		if l := live(); len(l) > 0 {
			for i := 0; i < rng.Intn(6); i++ {
				del = append(del, l[rng.Intn(len(l))])
			}
		}
		b := UpdateBatch{Rel: "Edge"}
		if len(ins) > 0 {
			b.InsCols = toCols(ins)
		}
		if len(del) > 0 {
			b.DelCols = toCols(del)
		}
		if b.InsCols == nil && b.DelCols == nil {
			continue
		}
		if _, err := eng.Update(b); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		for _, e := range del {
			delete(model, e)
		}
		for _, e := range ins {
			model[e] = true
		}
		ref := referenceEngine(model)
		for _, q := range updateQueries {
			if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
				t.Fatalf("batch %d, %q: overlay view diverges from rebuild\n got %s\nwant %s", batch, q, got, want)
			}
		}
	}

	// Compaction is invisible to queries and resets the overlay.
	if did, err := eng.Compact("Edge"); err != nil || !did {
		t.Fatalf("compact: did=%v err=%v", did, err)
	}
	ref := referenceEngine(model)
	for _, q := range updateQueries {
		if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
			t.Fatalf("after compaction, %q diverges", q)
		}
	}
	st := eng.Durability()
	if st.Compactions != 1 || len(st.Overlays) != 0 {
		t.Fatalf("durability after compaction: %+v", st)
	}
	// Updates keep working on the compacted base.
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 24}})}); err != nil {
		t.Fatal(err)
	}
	model[[2]uint32{1, 24}] = true
	ref = referenceEngine(model)
	for _, q := range updateQueries {
		if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
			t.Fatalf("after post-compaction update, %q diverges", q)
		}
	}
}

func TestUpdateEpochInvalidation(t *testing.T) {
	eng := New()
	eng.AddRelationColumns("Edge", [][]uint32{{1, 2}, {2, 3}}, nil, semiring.None)
	eng.AddRelationColumns("Other", [][]uint32{{9}, {9}}, nil, semiring.None)
	e0, o0 := eng.DB.EpochOf("Edge"), eng.DB.EpochOf("Other")
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: [][]uint32{{5}, {5}}}); err != nil {
		t.Fatal(err)
	}
	if eng.DB.EpochOf("Edge") == e0 {
		t.Fatal("Edge epoch did not advance on update")
	}
	if eng.DB.EpochOf("Other") != o0 {
		t.Fatal("Other epoch advanced on unrelated update")
	}
}

func TestAutoCompaction(t *testing.T) {
	eng := New()
	var rows [][2]uint32
	for i := uint32(0); i < 200; i++ {
		rows = append(rows, [2]uint32{i, i + 1})
	}
	eng.AddRelationColumns("Edge", toCols(rows), nil, semiring.None)
	eng.SetAutoCompact(0.05, 8) // trigger at 8 overlay rows

	var ins [][2]uint32
	for i := uint32(0); i < 32; i++ {
		ins = append(ins, [2]uint32{1000 + i, i})
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols(ins)}); err != nil {
		t.Fatal(err)
	}
	eng.WaitCompactions()
	st := eng.Durability()
	if st.Compactions == 0 {
		t.Fatalf("auto-compaction never ran: %+v", st)
	}
	if len(st.Overlays) != 0 {
		t.Fatalf("overlay not reset after compaction: %+v", st.Overlays)
	}
	rel, _ := eng.DB.Relation("Edge")
	if rel.Cardinality() != 232 {
		t.Fatalf("cardinality %d, want 232", rel.Cardinality())
	}
}

// TestUpdateExternalReplaceResetsOverlay: a /load-style replacement
// discards the overlay; subsequent updates start fresh from the new
// base.
func TestUpdateExternalReplaceResetsOverlay(t *testing.T) {
	eng := New()
	eng.AddRelationColumns("Edge", [][]uint32{{1}, {2}}, nil, semiring.None)
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: [][]uint32{{5}, {6}}}); err != nil {
		t.Fatal(err)
	}
	// External replace (a fresh load).
	eng.AddRelationColumns("Edge", [][]uint32{{7}, {8}}, nil, semiring.None)
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: [][]uint32{{9}, {10}}}); err != nil {
		t.Fatal(err)
	}
	model := edgeSet{{7, 8}: true, {9, 10}: true}
	ref := referenceEngine(model)
	q := `L(x,y) :- Edge(x,y).`
	if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
		t.Fatalf("after external replace: got %s want %s", got, want)
	}
}

// TestCompactionPreservesEpoch: compaction installs identical content
// through SwapTrie, so the relation's epoch (and therefore every
// epoch-keyed cached result over it) survives.
func TestCompactionPreservesEpoch(t *testing.T) {
	eng := New()
	eng.AddRelationColumns("Edge", toCols([][2]uint32{{1, 2}, {2, 3}}), nil, semiring.None)
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{3, 4}})}); err != nil {
		t.Fatal(err)
	}
	before := eng.DB.EpochOf("Edge")
	if did, err := eng.Compact("Edge"); err != nil || !did {
		t.Fatalf("compact: did=%v err=%v", did, err)
	}
	if got := eng.DB.EpochOf("Edge"); got != before {
		t.Fatalf("compaction bumped epoch %d → %d; cached results would flush for identical content", before, got)
	}
	rel, _ := eng.DB.Relation("Edge")
	if rel.Cardinality() != 3 {
		t.Fatalf("cardinality %d after compaction, want 3", rel.Cardinality())
	}
	// The next real update still bumps.
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{9, 9}})}); err != nil {
		t.Fatal(err)
	}
	if eng.DB.EpochOf("Edge") == before {
		t.Fatal("post-compaction update did not bump the epoch")
	}
}

// TestConcurrentUpdatesQueriesCompactions races updaters, queriers and
// aggressive auto-compaction against one relation; each updater owns a
// disjoint source-id range so the final state is deterministic
// regardless of interleaving.
func TestConcurrentUpdatesQueriesCompactions(t *testing.T) {
	eng := New()
	var seedRows [][2]uint32
	for i := uint32(0); i < 300; i++ {
		seedRows = append(seedRows, [2]uint32{i % 40, (i * 7) % 40})
	}
	eng.AddRelationColumns("Edge", toCols(seedRows), nil, semiring.None)
	eng.SetAutoCompact(0.01, 16) // compact constantly

	const (
		updaters = 3
		batches  = 25
		rows     = 8
	)
	var updWG, queryWG sync.WaitGroup
	stop := make(chan struct{})
	// Queriers: results must always be internally consistent (never a
	// torn view); errors are the only failure signal here.
	for q := 0; q < 2; q++ {
		queryWG.Add(1)
		go func() {
			defer queryWG.Done()
			prog, err := datalog.Parse(`P(x,z) :- Edge(x,y),Edge(y,z).`)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.RunIsolated(prog); err != nil {
					t.Errorf("query under churn: %v", err)
					return
				}
			}
		}()
	}
	for u := 0; u < updaters; u++ {
		updWG.Add(1)
		go func(u int) {
			defer updWG.Done()
			rng := rand.New(rand.NewSource(int64(u)))
			base := uint32(1000 * (u + 1))
			for b := 0; b < batches; b++ {
				var ins [][2]uint32
				for r := 0; r < rows; r++ {
					ins = append(ins, [2]uint32{base + uint32(rng.Intn(50)), uint32(rng.Intn(50))})
				}
				if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols(ins)}); err != nil {
					t.Errorf("updater %d: %v", u, err)
					return
				}
			}
		}(u)
	}
	// Wait for updaters, then stop queriers.
	updWG.Wait()
	close(stop)
	queryWG.Wait()
	eng.WaitCompactions()

	// Deterministic final state: seed ∪ each updater's inserts.
	model := edgeSet{}
	for _, r := range seedRows {
		model[r] = true
	}
	for u := 0; u < updaters; u++ {
		rng := rand.New(rand.NewSource(int64(u)))
		base := uint32(1000 * (u + 1))
		for b := 0; b < batches; b++ {
			for r := 0; r < rows; r++ {
				model[[2]uint32{base + uint32(rng.Intn(50)), uint32(rng.Intn(50))}] = true
			}
		}
	}
	ref := referenceEngine(model)
	q := `L(x,y) :- Edge(x,y).`
	if got, want := queryKey(t, eng, q), queryKey(t, ref, q); got != want {
		t.Fatalf("state after concurrent churn diverges:\n got %s\nwant %s", got, want)
	}
}

// sanity helper so the file compiles if fmt is otherwise unused.
var _ = fmt.Sprintf
