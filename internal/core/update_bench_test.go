package core

import (
	"math/rand"
	"testing"
	"time"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/wal"
)

// benchUpdateEngine loads the standard 256k-edge power-law graph.
func benchUpdateEngine(tb testing.TB) *Engine {
	tb.Helper()
	eng := New()
	eng.LoadGraph("Edge", gen.PowerLaw(60000, 262144, 2.2, 3))
	return eng
}

func randomBatch(rng *rand.Rand, rows, keySpace int) [][]uint32 {
	cols := [][]uint32{make([]uint32, rows), make([]uint32, rows)}
	for i := 0; i < rows; i++ {
		cols[0][i] = uint32(rng.Intn(keySpace))
		cols[1][i] = uint32(rng.Intn(keySpace))
	}
	return cols
}

// BenchmarkUpdateApply256k measures one streaming update batch (128
// random edges) against a 256k-edge base: mini-trie build + overlay
// fold + path-copying merge + install.
func BenchmarkUpdateApply256k(b *testing.B) {
	eng := benchUpdateEngine(b)
	eng.SetAutoCompact(0, 0) // measure the update path, not compaction
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: randomBatch(rng, 128, 60000)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompact256k measures folding a ~2.5k-row overlay into a
// fresh 256k-edge base trie.
func BenchmarkCompact256k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := benchUpdateEngine(b)
		eng.SetAutoCompact(0, 0)
		for j := 0; j < 20; j++ {
			if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: randomBatch(rng, 128, 60000)}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := eng.Compact("Edge"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay100k measures boot replay of 100k update rows
// (1000 records × 100 rows) into a fresh engine — the recovery-time
// number for the durability story.
func BenchmarkWALReplay100k(b *testing.B) {
	dir := b.TempDir()
	writer := New()
	if _, err := writer.OpenWAL(WALConfig{Dir: dir, Sync: wal.SyncOff}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if _, err := writer.Update(UpdateBatch{Rel: "Edge", InsCols: randomBatch(rng, 100, 1<<20)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := writer.CloseWAL(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New()
		st, err := eng.OpenWAL(WALConfig{Dir: dir, Sync: wal.SyncOff})
		if err != nil {
			b.Fatal(err)
		}
		if st.Records != 1000 {
			b.Fatalf("replayed %d records", st.Records)
		}
		b.StopTimer()
		if err := eng.CloseWAL(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

const triangleListing = `Tri(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).`

// overlayEngines builds the two sides of the overlay-overhead
// comparison: the same 256k-edge base plus a ~1% overlay, once live
// (base + delta overlay) and once compacted.
func overlayEngine(tb testing.TB, compact bool) *Engine {
	tb.Helper()
	eng := benchUpdateEngine(tb)
	eng.SetAutoCompact(0, 0)
	rng := rand.New(rand.NewSource(17))
	// ~2.6k overlay rows (1% of 262k): 16 batches of 128 inserts + a
	// few tombstones aimed at real edges.
	g, _ := eng.Graph("Edge")
	for i := 0; i < 16; i++ {
		batch := UpdateBatch{Rel: "Edge", InsCols: randomBatch(rng, 128, 60000)}
		if i%4 == 0 {
			var src, dst []uint32
			for j := 0; j < 32; j++ {
				v := rng.Intn(len(g.Adj))
				for len(g.Adj[v]) == 0 {
					v = rng.Intn(len(g.Adj))
				}
				src = append(src, uint32(v))
				dst = append(dst, g.Adj[v][rng.Intn(len(g.Adj[v]))])
			}
			batch.DelCols = [][]uint32{src, dst}
		}
		if _, err := eng.Update(batch); err != nil {
			tb.Fatal(err)
		}
	}
	if compact {
		if did, err := eng.Compact("Edge"); err != nil || !did {
			tb.Fatalf("compact: did=%v err=%v", did, err)
		}
	}
	return eng
}

func runTriangleListing(tb testing.TB, eng *Engine) int {
	tb.Helper()
	prog, err := datalog.Parse(triangleListing)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := eng.RunIsolated(prog)
	if err != nil {
		tb.Fatal(err)
	}
	return res.Trie.Cardinality()
}

// BenchmarkTriangleOverlay1pct times triangle listing over the merged
// base+overlay view (≤1% uncompacted overlay).
func BenchmarkTriangleOverlay1pct(b *testing.B) {
	eng := overlayEngine(b, false)
	runTriangleListing(b, eng) // warm permuted indexes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTriangleListing(b, eng)
	}
}

// BenchmarkTriangleCompacted times the same listing after compaction —
// the baseline the overlay must stay within 25% of.
func BenchmarkTriangleCompacted(b *testing.B) {
	eng := overlayEngine(b, true)
	runTriangleListing(b, eng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTriangleListing(b, eng)
	}
}

// TestOverlayQueryOverheadGate is the acceptance gate: triangle listing
// over a 256k-edge base with a ≤1% uncompacted overlay must regress
// less than 25% versus the compacted trie, and compaction must restore
// baseline performance (the compacted run IS the baseline — it goes
// through the same engine after Compact).
func TestOverlayQueryOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test, skipped with -short")
	}
	overlayEng := overlayEngine(t, false)
	compactEng := overlayEngine(t, true)

	// Same data on both sides, by construction.
	wantCard := runTriangleListing(t, compactEng)
	if got := runTriangleListing(t, overlayEng); got != wantCard {
		t.Fatalf("overlay listing %d triangles, compacted %d", got, wantCard)
	}

	best := func(eng *Engine) time.Duration {
		bestD := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			runTriangleListing(t, eng)
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	// Interleave measurement order to decorrelate machine noise.
	compacted := best(compactEng)
	overlay := best(overlayEng)
	t.Logf("triangle listing: compacted %v, 1%% overlay %v (+%.1f%%)",
		compacted, overlay, 100*(float64(overlay)/float64(compacted)-1))
	if float64(overlay) > 1.25*float64(compacted) {
		t.Fatalf("overlay listing %v regresses ≥25%% vs compacted %v", overlay, compacted)
	}
}
