package core

import (
	"bytes"
	"testing"

	"emptyheaded/internal/gen"
)

// benchSnapshotDir snapshots a 256k-edge power-law graph once and
// returns the directory plus the equivalent edge-list text.
func benchSnapshotDir(b *testing.B) (string, []byte) {
	b.Helper()
	g := gen.PowerLaw(60000, 262144, 2.2, 3)
	text := edgeListText(g)
	eng := New()
	if err := eng.LoadEdgeList("Edge", bytes.NewReader(text), false); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, err := eng.Snapshot(dir); err != nil {
		b.Fatal(err)
	}
	return dir, text
}

// BenchmarkRestore256k measures mmap zero-copy restore of a snapshotted
// 256k-edge database (checksum pass + node linking).
func BenchmarkRestore256k(b *testing.B) {
	dir, _ := benchSnapshotDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New()
		if _, err := eng.Restore(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTextLoad256k is the baseline restore replaces: parsing the
// same dataset from an edge-list text (parse + dictionary encode + trie
// build).
func BenchmarkTextLoad256k(b *testing.B) {
	_, text := benchSnapshotDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := New()
		if err := eng.LoadEdgeList("Edge", bytes.NewReader(text), false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshot256k measures the write side.
func BenchmarkSnapshot256k(b *testing.B) {
	g := gen.PowerLaw(60000, 262144, 2.2, 3)
	eng := New()
	eng.LoadGraph("Edge", g)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Snapshot(dir); err != nil {
			b.Fatal(err)
		}
	}
}
