package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"emptyheaded/internal/exec"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// exampleQueries mirrors the workloads of examples/: pattern counting
// and listing (quickstart, patterns), aggregation with projection, and
// the annotated PageRank pipeline whose intermediates register extra
// relations (scalars, annotated unaries) in the database.
var exampleQueries = []string{
	`TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`,
	`Tri(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).`,
	`P2(x,z) :- Edge(x,y),Edge(y,z).`,
	`Deg(x;w:long) :- Edge(x,y); w=<<COUNT(y)>>.`,
}

const pagerankQuery = `
N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.
InvDeg(x;d:float) :- Edge(x,y); d=1/<<COUNT(*)>>.
PageRank(x;y:float) :- Edge(x,z); y=1/N.
PageRank(x;y:float)*[i=3] :- Edge(x,z),PageRank(z),InvDeg(z); y=0.15+0.85*<<SUM(z)>>.
`

func queryKey(t *testing.T, eng *Engine, q string) string {
	t.Helper()
	res, err := eng.Run(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if res.Trie.Arity == 0 {
		return fmt.Sprintf("scalar:%g", res.Scalar())
	}
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "card=%d;", res.Cardinality())
	res.ForEach(func(tp []uint32, ann float64) {
		fmt.Fprintf(&sb, "%v:%g;", tp, ann)
	})
	return sb.String()
}

// TestSnapshotRestoreRoundTrip: for each example-style dataset and both
// relation-level set layouts (plus the auto optimizer), every query must
// return identical results before snapshot and after restore, and
// re-snapshotting the restored database must be byte-identical.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	layouts := []struct {
		name string
		opts exec.Options
	}{
		{"auto", exec.Options{}},
		{"uint", exec.OptNoLayout},
		{"bitset", exec.Options{Layout: trie.BitsetLayout, LayoutName: "bitset"}},
	}
	datasets := []struct {
		name string
		load func(e *Engine)
	}{
		{"quickstart", func(e *Engine) { e.LoadGraph("Edge", gen.PowerLaw(800, 5000, 2.2, 42)) }},
		{"erdos", func(e *Engine) { e.LoadGraph("Edge", gen.ErdosRenyi(600, 4000, 9)) }},
		{"dict", func(e *Engine) {
			// Dictionary-encoded load: original ids are sparse multiples,
			// exercising selection-constant decoding after restore.
			var sb bytes.Buffer
			g := gen.PowerLaw(400, 2500, 2.1, 5)
			for u, ns := range g.Adj {
				for _, v := range ns {
					fmt.Fprintf(&sb, "%d %d\n", u*7+1, int(v)*7+1)
				}
			}
			if err := e.LoadEdgeList("Edge", &sb, false); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, lc := range layouts {
		for _, ds := range datasets {
			t.Run(lc.name+"/"+ds.name, func(t *testing.T) {
				eng := NewWithOptions(lc.opts)
				ds.load(eng)
				// PageRank first: its pipeline registers scalar and
				// annotated intermediates that the snapshot must carry.
				prKey := queryKey(t, eng, pagerankQuery)
				before := make([]string, len(exampleQueries))
				for i, q := range exampleQueries {
					before[i] = queryKey(t, eng, q)
				}

				dir1 := t.TempDir()
				cat, err := eng.Snapshot(dir1)
				if err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				if len(cat.Relations) < 5 { // Edge + TC/Tri/P2/Deg/N/InvDeg/PageRank heads
					t.Fatalf("catalog has only %d relations", len(cat.Relations))
				}

				restored := NewWithOptions(lc.opts)
				if _, err := restored.Restore(dir1); err != nil {
					t.Fatalf("restore: %v", err)
				}
				for i, q := range exampleQueries {
					if got := queryKey(t, restored, q); got != before[i] {
						t.Fatalf("query %q diverges after restore", q)
					}
				}
				if got := queryKey(t, restored, pagerankQuery); got != prKey {
					t.Fatal("pagerank diverges after restore")
				}

				// Byte-identical re-snapshot. Restore from dir1 again into
				// a third engine so the re-snapshot sees exactly the
				// restored state (the query runs above registered fresh
				// head relations in `restored`).
				again := NewWithOptions(lc.opts)
				if _, err := again.Restore(dir1); err != nil {
					t.Fatalf("re-restore: %v", err)
				}
				dir2 := t.TempDir()
				if _, err := again.Snapshot(dir2); err != nil {
					t.Fatalf("re-snapshot: %v", err)
				}
				compareDirs(t, dir1, dir2)
			})
		}
	}
}

func compareDirs(t *testing.T, dir1, dir2 string) {
	t.Helper()
	for _, dir := range []string{dir1, dir2} {
		_ = dir
	}
	e1, err := os.ReadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := os.ReadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	names := func(es []os.DirEntry) []string {
		var out []string
		for _, e := range es {
			out = append(out, e.Name())
		}
		sort.Strings(out)
		return out
	}
	n1, n2 := names(e1), names(e2)
	if fmt.Sprint(n1) != fmt.Sprint(n2) {
		t.Fatalf("snapshot file sets differ: %v vs %v", n1, n2)
	}
	for _, name := range n1 {
		b1, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(dir2, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("file %s not byte-identical after restore + re-snapshot", name)
		}
	}
}

// TestSnapshotRestoreAnnotatedRelation round-trips a standalone annotated
// relation registered outside any graph load (MIN semiring, arity 2).
func TestSnapshotRestoreAnnotatedRelation(t *testing.T) {
	eng := New()
	tuples := make([][]uint32, 0, 2000)
	anns := make([]float64, 0, 2000)
	for i := 0; i < 2000; i++ {
		tuples = append(tuples, []uint32{uint32(i % 50), uint32(i % 133)})
		anns = append(anns, float64(i%17)+0.25)
	}
	if err := eng.AddAnnotatedRelation("W", 2, semiring.Min, tuples, anns); err != nil {
		t.Fatal(err)
	}
	before := queryKey(t, eng, `Out(x;m:float) :- W(x,y); m=<<MIN(y)>>.`)

	dir := t.TempDir()
	if _, err := eng.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if _, err := restored.Restore(dir); err != nil {
		t.Fatal(err)
	}
	if got := queryKey(t, restored, `Out(x;m:float) :- W(x,y); m=<<MIN(y)>>.`); got != before {
		t.Fatal("MIN-annotated relation diverges after restore")
	}
}

func TestRestoreMissingDir(t *testing.T) {
	eng := New()
	if _, err := eng.Restore(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("restore of a missing snapshot succeeded")
	}
}

// edgeListText renders g as the "src dst" text format served by /load
// and LoadEdgeList.
func edgeListText(g *graph.Graph) []byte {
	var sb bytes.Buffer
	for u, ns := range g.Adj {
		for _, v := range ns {
			fmt.Fprintf(&sb, "%d %d\n", u, v)
		}
	}
	return sb.Bytes()
}

// TestRestoreFasterThanTextLoad is the acceptance gate: restoring a
// snapshotted 256k-edge dataset must be at least 5x faster than the
// equivalent text load (parse + dictionary encode + trie build). Both
// sides take their best of three runs to shake scheduler noise.
func TestRestoreFasterThanTextLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test, skipped with -short")
	}
	g := gen.PowerLaw(60000, 262144, 2.2, 3)
	text := edgeListText(g)

	loader := New()
	best := func(runs int, f func()) time.Duration {
		bestD := time.Duration(1<<62 - 1)
		for i := 0; i < runs; i++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	textLoad := best(3, func() {
		if err := loader.LoadEdgeList("Edge", bytes.NewReader(text), false); err != nil {
			t.Fatal(err)
		}
	})

	dir := t.TempDir()
	if _, err := loader.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	restore := best(3, func() {
		eng := New()
		if _, err := eng.Restore(dir); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("256k edges: text load %v, restore %v (%.1fx)", textLoad, restore,
		float64(textLoad)/float64(restore))
	if restore*5 > textLoad {
		t.Fatalf("restore %v not ≥5x faster than text load %v", restore, textLoad)
	}

	// And the restored database answers identically.
	eng := New()
	if _, err := eng.Restore(dir); err != nil {
		t.Fatal(err)
	}
	const q = `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`
	if a, b := queryKey(t, loader, q), queryKey(t, eng, q); a != b {
		t.Fatalf("triangle count diverges after restore: %s vs %s", a, b)
	}
}
