package core

import (
	"fmt"
	"path/filepath"

	"emptyheaded/internal/graph"
	"emptyheaded/internal/storage"
)

// Snapshot writes the engine's entire database — every relation's trie,
// the per-relation epochs, and the identifier dictionary — to dir as a
// checksummed binary snapshot (see internal/storage). The state is
// captured through one Fork, so a snapshot taken under concurrent loads
// is a consistent point-in-time image. Returns the written catalog.
//
// Snapshots are incremental: the engine remembers the catalog it last
// wrote to (or restored from) each directory, and relations whose
// epoch hasn't advanced since reuse their existing checksummed
// segments instead of re-serializing — an update-heavy workload only
// rewrites the relations that actually changed.
//
// With a WAL open, the snapshot is also the log's truncation point:
// the log rotates inside the update mutex (so the sealed segments hold
// exactly the records the fork absorbed), and once the snapshot
// commits, the sealed segments are deleted. If the snapshot fails the
// segments survive, and replay-on-boot remains correct because update
// replay is idempotent across a snapshot boundary.
func (e *Engine) Snapshot(dir string) (*storage.Catalog, error) {
	// Fork and rotate under the update mutex: no update can land between
	// the two, so "records at or below the sealed generation" and
	// "updates visible in the fork" are the same set.
	e.upd.mu.Lock()
	var sealed uint64
	truncate := false
	rotated := false
	if e.upd.wal != nil {
		g, err := e.upd.wal.Rotate()
		if err != nil {
			e.upd.mu.Unlock()
			return nil, fmt.Errorf("snapshot %s: wal rotate: %w", dir, err)
		}
		sealed = g
		truncate = e.walSnapshotDirMatches(dir)
		rotated = true
	}
	fork := e.DB.Fork()
	// Copy the watermarks in the same critical section as the fork and
	// the rotate: the three agree on one point in the update order, so
	// the catalog's (epoch, wal_seq) pairs describe exactly the state the
	// segments serialize.
	marks := make(map[string]uint64, len(e.upd.watermarks))
	for name, seq := range e.upd.watermarks {
		marks[name] = seq
	}
	walHandle := e.upd.wal
	event := e.upd.obs.Event
	e.upd.mu.Unlock()
	if rotated && event != nil {
		event("wal_rotate", map[string]any{"sealed_seq": sealed, "reason": "snapshot", "dir": dir})
	}

	snap := &storage.Snapshot{
		Dict:      fork.Dict(),
		DictEpoch: fork.DictEpoch(),
	}
	for _, name := range fork.Names() {
		rel, ok := fork.Relation(name)
		if !ok {
			continue
		}
		snap.Relations = append(snap.Relations, storage.Relation{
			Name:   name,
			Trie:   rel.Canonical(),
			Epoch:  fork.EpochOf(name),
			WALSeq: marks[name],
		})
	}
	key := snapKey(dir)
	e.mu.RLock()
	prev := e.lastSnaps[key]
	e.mu.RUnlock()
	cat, err := storage.WriteIncremental(dir, snap, prev)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.lastSnaps[key] = cat
	e.mu.Unlock()
	if walHandle != nil && truncate {
		// Best effort: a survived segment replays idempotently.
		_ = walHandle.TruncateThrough(sealed)
	}
	if event != nil {
		event("snapshot", map[string]any{
			"dir":           dir,
			"relations":     len(cat.Relations),
			"tuples":        cat.CardinalityTotal(),
			"bytes":         cat.BytesTotal(),
			"truncated_wal": truncate,
		})
	}
	return cat, nil
}

// snapKey canonicalizes a snapshot directory for the incremental
// catalog map.
func snapKey(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		return abs
	}
	return filepath.Clean(dir)
}

// Restore replaces the engine's database with the snapshot in dir. The
// restored tries alias mmap'd segment files (zero copy — the segments
// are paged in lazily by the kernel), so restore of a multi-gigabyte
// database costs checksum verification plus node linking, not a parse
// and rebuild. The mappings live for the remaining process lifetime.
//
// The snapshot's epochs are adopted into the database; embedders serving
// epoch-keyed caches must flush them around a restore (the query service
// advances a generation counter). Graphs registered through LoadGraph
// are engine-side conveniences (benchmark harness); they do not survive
// a restore — the relations themselves do. Streaming-update overlays
// reset: the restored state replaces any pending overlay wholesale, and
// an open WAL is NOT re-replayed (replay happens once, at OpenWAL).
//
// Each restore retains its storage handle on the engine: the mappings
// cannot be unmapped while any fork, cached result, or in-flight query
// may still alias the previous restore's tries (there is no refcount on
// trie buffers), so a server that restores repeatedly accumulates one
// set of file mappings per restore. They are virtual mappings of
// page-cache data — cheap, but not free; a future mapping lifecycle can
// close the retained handles once trie aliasing is refcounted.
func (e *Engine) Restore(dir string) (*storage.Catalog, error) {
	db, err := storage.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", dir, err)
	}
	// Install and reset overlay state under the update mutex, so no
	// update interleaves between the new database appearing and the old
	// overlays vanishing. An open WAL rotates and drops its sealed
	// segments: the restore just discarded every pre-restore update, so
	// replaying those records on the next boot would resurrect state
	// clients observed as rolled back. (To re-anchor the recovery chain
	// fully, follow a runtime restore with a snapshot to the WAL's
	// paired directory — eh-server's SIGTERM path does.)
	e.upd.mu.Lock()
	e.DB.InstallSnapshot(db.Tries, db.Epochs, db.Dict, db.Catalog.DictEpoch)
	e.upd.deltas = map[string]*relDelta{}
	// Adopt the snapshot's watermarks wholesale: the restored state
	// reflects exactly the WAL prefixes the catalog recorded. A
	// pre-provenance catalog restores all-zero watermarks — epoch-only
	// lineage from here on.
	e.upd.watermarks = make(map[string]uint64, len(db.Watermarks))
	for name, seq := range db.Watermarks {
		e.upd.watermarks[name] = seq
	}
	var sealed uint64
	walHandle := e.upd.wal
	if walHandle != nil {
		if sealed, err = walHandle.Rotate(); err != nil {
			e.upd.mu.Unlock()
			return nil, fmt.Errorf("restore %s: wal rotate: %w", dir, err)
		}
	}
	event := e.upd.obs.Event
	e.upd.mu.Unlock()
	if walHandle != nil {
		_ = walHandle.TruncateThrough(sealed)
		if event != nil {
			event("wal_rotate", map[string]any{"sealed_seq": sealed, "reason": "restore", "dir": dir})
		}
	}
	if event != nil {
		event("restore", map[string]any{
			"dir":       dir,
			"relations": len(db.Catalog.Relations),
			"tuples":    db.Catalog.CardinalityTotal(),
		})
	}
	e.mu.Lock()
	e.graphs = map[string]*graph.Graph{}
	e.restored = append(e.restored, db)
	e.lastSnaps[snapKey(dir)] = db.Catalog
	e.mu.Unlock()
	return db.Catalog, nil
}
