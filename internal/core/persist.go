package core

import (
	"fmt"

	"emptyheaded/internal/graph"
	"emptyheaded/internal/storage"
)

// Snapshot writes the engine's entire database — every relation's trie,
// the per-relation epochs, and the identifier dictionary — to dir as a
// checksummed binary snapshot (see internal/storage). The state is
// captured through one Fork, so a snapshot taken under concurrent loads
// is a consistent point-in-time image. Returns the written catalog.
func (e *Engine) Snapshot(dir string) (*storage.Catalog, error) {
	fork := e.DB.Fork()
	snap := &storage.Snapshot{
		Dict:      fork.Dict(),
		DictEpoch: fork.DictEpoch(),
	}
	for _, name := range fork.Names() {
		rel, ok := fork.Relation(name)
		if !ok {
			continue
		}
		snap.Relations = append(snap.Relations, storage.Relation{
			Name:  name,
			Trie:  rel.Canonical(),
			Epoch: fork.EpochOf(name),
		})
	}
	return storage.Write(dir, snap)
}

// Restore replaces the engine's database with the snapshot in dir. The
// restored tries alias mmap'd segment files (zero copy — the segments
// are paged in lazily by the kernel), so restore of a multi-gigabyte
// database costs checksum verification plus node linking, not a parse
// and rebuild. The mappings live for the remaining process lifetime.
//
// The snapshot's epochs are adopted into the database; embedders serving
// epoch-keyed caches must flush them around a restore (the query service
// advances a generation counter). Graphs registered through LoadGraph
// are engine-side conveniences (benchmark harness); they do not survive
// a restore — the relations themselves do.
//
// Each restore retains its storage handle on the engine: the mappings
// cannot be unmapped while any fork, cached result, or in-flight query
// may still alias the previous restore's tries (there is no refcount on
// trie buffers), so a server that restores repeatedly accumulates one
// set of file mappings per restore. They are virtual mappings of
// page-cache data — cheap, but not free; a future mapping lifecycle can
// close the retained handles once trie aliasing is refcounted.
func (e *Engine) Restore(dir string) (*storage.Catalog, error) {
	db, err := storage.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", dir, err)
	}
	e.DB.InstallSnapshot(db.Tries, db.Epochs, db.Dict, db.Catalog.DictEpoch)
	e.mu.Lock()
	e.graphs = map[string]*graph.Graph{}
	e.restored = append(e.restored, db)
	e.mu.Unlock()
	return db.Catalog, nil
}
