package core

import (
	"strings"
	"testing"
)

// triangleEngine loads a small graph with two triangles (1-2-3 via base
// load, 3-4-5 completed by a streamed update) so probes can tell base
// rows from overlay rows.
func triangleEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	edges := "1 2\n2 3\n1 3\n3 4\n4 5\n"
	if err := e.LoadEdgeList("Edge", strings.NewReader(edges), true); err != nil {
		t.Fatal(err)
	}
	return e
}

const whyQuery = `Tri(x,y,z) :- Edge(x,y),Edge(y,z),Edge(x,z).`

func TestWhyDerivableTriangle(t *testing.T) {
	e := triangleEngine(t)
	rep, err := e.Why(whyQuery, "Tri(1,2,3)")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Derivable || rep.Derivations != 1 {
		t.Fatalf("1-2-3 triangle should derive exactly once: %+v", rep)
	}
	if len(rep.Atoms) != 3 {
		t.Fatalf("3 body atoms, got %+v", rep.Atoms)
	}
	for _, a := range rep.Atoms {
		if a.Total != 1 || len(a.Rows) != 1 || a.Rows[0].Source != "base" {
			t.Fatalf("atom %s: %+v", a.Pattern, a)
		}
	}
	if rep.Atoms[0].Pattern != "Edge(1,2)" {
		t.Fatalf("pinned pattern: %q", rep.Atoms[0].Pattern)
	}
	if len(rep.Relations) != 2 { // Edge + head shadow Tri
		t.Fatalf("lineage relations: %+v", rep.Relations)
	}
}

func TestWhyNotDerivable(t *testing.T) {
	e := triangleEngine(t)
	rep, err := e.Why(whyQuery, "Tri(3,4,5)")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Derivable {
		t.Fatalf("3-4-5 is not a triangle yet: %+v", rep)
	}
	// Edge(3,4) and Edge(4,5) exist; Edge(3,5) does not.
	if rep.Atoms[0].Total != 1 || rep.Atoms[1].Total != 1 || rep.Atoms[2].Total != 0 {
		t.Fatalf("atom totals: %+v", rep.Atoms)
	}
}

func TestWhyClassifiesOverlayRows(t *testing.T) {
	e := triangleEngine(t)
	// Close the 3-4-5 triangle through the streaming path. The edge list
	// was loaded undirected, so insert both orientations; codes equal
	// original ids here because vertices were inserted in order 1..5
	// (code = orig-1), so look the codes up through the probe instead of
	// assuming — Update takes code-space columns.
	d := e.DB.Dict()
	c3, _ := d.Lookup(3)
	c5, _ := d.Lookup(5)
	if _, err := e.Update(UpdateBatch{Rel: "Edge", InsCols: [][]uint32{{c3, c5}, {c5, c3}}}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Why(whyQuery, "Tri(3,4,5)")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Derivable {
		t.Fatalf("3-4-5 should be a triangle after the update: %+v", rep)
	}
	// Edge(3,5) comes from the overlay; Edge(3,4) and Edge(4,5) from base.
	if rep.Atoms[2].Pattern != "Edge(3,5)" || rep.Atoms[2].OverlayRows != 1 {
		t.Fatalf("overlay attribution: %+v", rep.Atoms[2])
	}
	if rep.Atoms[0].OverlayRows != 0 || rep.Atoms[0].Rows[0].Source != "base" {
		t.Fatalf("base attribution: %+v", rep.Atoms[0])
	}
	// Lineage carries the overlay generation for Edge.
	for _, rl := range rep.Relations {
		if rl.Name == "Edge" && rl.OverlayGen == 0 {
			t.Fatalf("Edge overlay generation missing: %+v", rl)
		}
	}
}

func TestWhySpecValidation(t *testing.T) {
	e := triangleEngine(t)
	if _, err := e.Why(whyQuery, "Wrong(1,2,3)"); err == nil {
		t.Fatal("mismatched head name should error")
	}
	if _, err := e.Why(whyQuery, "Tri(1,2)"); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if _, err := e.Why(`R*(x,y) :- Edge(x,y).`, "(1,2)"); err == nil {
		t.Fatal("recursive rule should be rejected")
	}
}
