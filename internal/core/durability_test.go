package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"emptyheaded/internal/semiring"
	"emptyheaded/internal/wal"
)

func walCfg(dir string) WALConfig {
	return WALConfig{Dir: dir, Sync: wal.SyncAlways}
}

// TestWALReplayFreshEngine: updates journaled by one engine are fully
// recovered by a second engine replaying the same WAL directory, with
// no snapshot involved — even the relation itself is created by replay.
func TestWALReplayFreshEngine(t *testing.T) {
	dir := t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(walCfg(dir)); err != nil {
		t.Fatal(err)
	}
	model := edgeSet{}
	apply := func(ins, del [][2]uint32) {
		b := UpdateBatch{Rel: "Edge"}
		if len(ins) > 0 {
			b.InsCols = toCols(ins)
		}
		if len(del) > 0 {
			b.DelCols = toCols(del)
		}
		if _, err := eng.Update(b); err != nil {
			t.Fatal(err)
		}
		for _, e := range del {
			delete(model, e)
		}
		for _, e := range ins {
			model[e] = true
		}
	}
	apply([][2]uint32{{1, 2}, {2, 3}, {3, 1}, {4, 5}}, nil)
	apply([][2]uint32{{5, 6}}, [][2]uint32{{4, 5}})
	apply(nil, [][2]uint32{{5, 6}, {9, 9}})
	apply([][2]uint32{{4, 5}}, nil) // re-insert a deleted tuple
	before := queryKey(t, eng, `L(x,y) :- Edge(x,y).`)
	// Crash: the engine is dropped without snapshot or clean close.

	eng2 := New()
	st, err := eng2.OpenWAL(walCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 4 || st.Relations != 1 || st.Truncated {
		t.Fatalf("replay stats %+v", st)
	}
	if got := queryKey(t, eng2, `L(x,y) :- Edge(x,y).`); got != before {
		t.Fatalf("replayed state diverges:\n got %s\nwant %s", got, before)
	}
	ref := referenceEngine(model)
	if got, want := queryKey(t, eng2, `L(x,y) :- Edge(x,y).`), queryKey(t, ref, `L(x,y) :- Edge(x,y).`); got != want {
		t.Fatalf("replayed state vs model:\n got %s\nwant %s", got, want)
	}
}

// TestWALReplayOnSnapshot: snapshot + WAL compose — records before the
// snapshot truncate away, records after it replay on top of the
// restore, and an interrupted engine converges with an uninterrupted
// reference.
func TestWALReplayOnSnapshot(t *testing.T) {
	dataDir := t.TempDir()
	walDir := t.TempDir()

	eng := New()
	eng.AddRelationColumns("Edge", toCols([][2]uint32{{1, 2}, {2, 3}, {3, 1}}), nil, semiring.None)
	if _, err := eng.OpenWAL(WALConfig{Dir: walDir, Sync: wal.SyncAlways, SnapshotDir: dataDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 3}})}); err != nil {
		t.Fatal(err)
	}
	// Snapshot: absorbs {1,3}, truncates the sealed segment.
	if _, err := eng.Snapshot(dataDir); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot updates live only in the WAL.
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{3, 2}}), DelCols: toCols([][2]uint32{{1, 2}})}); err != nil {
		t.Fatal(err)
	}
	want := queryKey(t, eng, `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	wantList := queryKey(t, eng, `L(x,y) :- Edge(x,y).`)
	// Crash without final snapshot.

	eng2 := New()
	if _, err := eng2.Restore(dataDir); err != nil {
		t.Fatal(err)
	}
	st, err := eng2.OpenWAL(walCfg(walDir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("expected only the post-snapshot record to replay, got %+v", st)
	}
	if got := queryKey(t, eng2, `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`); got != want {
		t.Fatalf("triangle count diverges after restore+replay")
	}
	if got := queryKey(t, eng2, `L(x,y) :- Edge(x,y).`); got != wantList {
		t.Fatalf("listing diverges after restore+replay:\n got %s\nwant %s", got, wantList)
	}
}

// TestRestoreRotatesWAL: a runtime restore discards pre-restore
// updates; the WAL must drop their records so a later boot doesn't
// resurrect them.
func TestRestoreRotatesWAL(t *testing.T) {
	dataDir := t.TempDir()
	walDir := t.TempDir()
	eng := New()
	eng.AddRelationColumns("Edge", toCols([][2]uint32{{1, 2}}), nil, semiring.None)
	// Persist the base WITHOUT the WAL knowing (separate engine write).
	if _, err := eng.Snapshot(dataDir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OpenWAL(WALConfig{Dir: walDir, Sync: wal.SyncAlways, SnapshotDir: dataDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{8, 8}})}); err != nil {
		t.Fatal(err)
	}
	// Roll back to the snapshot: {8,8} must be gone and must NOT come
	// back after a crash+replay.
	if _, err := eng.Restore(dataDir); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{9, 9}})}); err != nil {
		t.Fatal(err)
	}
	want := queryKey(t, eng, `L(x,y) :- Edge(x,y).`)

	eng2 := New()
	if _, err := eng2.Restore(dataDir); err != nil {
		t.Fatal(err)
	}
	st, err := eng2.OpenWAL(walCfg(walDir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("replay should hold only the post-restore record, got %+v", st)
	}
	if got := queryKey(t, eng2, `L(x,y) :- Edge(x,y).`); got != want {
		t.Fatalf("rolled-back update resurrected:\n got %s\nwant %s", got, want)
	}
}

// TestWALSurvivedSegmentIdempotent: if snapshot truncation never
// happened (crash between snapshot commit and truncate), replaying the
// pre-snapshot records on top of the snapshot is a no-op.
func TestWALSurvivedSegmentIdempotent(t *testing.T) {
	dataDir := t.TempDir()
	walDir := t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(WALConfig{Dir: walDir, Sync: wal.SyncAlways, SnapshotDir: filepath.Join(dataDir, "elsewhere")}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}, {2, 1}})}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", DelCols: toCols([][2]uint32{{2, 1}})}); err != nil {
		t.Fatal(err)
	}
	// SnapshotDir doesn't match dataDir → segments survive the snapshot.
	if _, err := eng.Snapshot(dataDir); err != nil {
		t.Fatal(err)
	}
	want := queryKey(t, eng, `L(x,y) :- Edge(x,y).`)

	eng2 := New()
	if _, err := eng2.Restore(dataDir); err != nil {
		t.Fatal(err)
	}
	st, err := eng2.OpenWAL(walCfg(walDir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 {
		t.Fatalf("survived segments should replay both records, got %+v", st)
	}
	if got := queryKey(t, eng2, `L(x,y) :- Edge(x,y).`); got != want {
		t.Fatalf("idempotent replay diverges:\n got %s\nwant %s", got, want)
	}
}

// TestWALTornTailAtEngineLevel: a torn final record is truncated and
// the intact prefix recovered.
func TestWALTornTailAtEngineLevel(t *testing.T) {
	walDir := t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(walCfg(walDir)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}})}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{3, 4}})}); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop 3 bytes off the segment.
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			seg = filepath.Join(walDir, e.Name())
		}
	}
	stat, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, stat.Size()-3); err != nil {
		t.Fatal(err)
	}

	eng2 := New()
	st, err := eng2.OpenWAL(walCfg(walDir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || !st.Truncated {
		t.Fatalf("torn-tail replay stats %+v", st)
	}
	rel, ok := eng2.DB.Relation("Edge")
	if !ok || rel.Cardinality() != 1 {
		t.Fatalf("recovered relation: ok=%v card=%d", ok, rel.Cardinality())
	}
}

// TestWALReplayArityConflictDoesNotBrickBoot: records whose shape
// conflicts (an unjournaled load replaced the relation mid-log) are
// dropped in favor of later records / the restored catalog instead of
// failing startup.
func TestWALReplayArityConflictDoesNotBrickBoot(t *testing.T) {
	walDir := t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(walCfg(walDir)); err != nil {
		t.Fatal(err)
	}
	// Arity-2 records, then an unjournaled load changes R to arity 3,
	// then arity-3 records.
	if _, err := eng.Update(UpdateBatch{Rel: "R", InsCols: [][]uint32{{1}, {2}}}); err != nil {
		t.Fatal(err)
	}
	eng.AddRelationColumns("R", [][]uint32{{7}, {8}, {9}}, nil, semiring.None)
	if _, err := eng.Update(UpdateBatch{Rel: "R", InsCols: [][]uint32{{4}, {5}, {6}}}); err != nil {
		t.Fatal(err)
	}
	// Crash; fresh boot with no snapshot: the log holds both shapes.
	eng2 := New()
	st, err := eng2.OpenWAL(walCfg(walDir))
	if err != nil {
		t.Fatalf("boot bricked by arity-conflicting WAL: %v", err)
	}
	if st.Records != 2 {
		t.Fatalf("replay stats %+v", st)
	}
	rel, ok := eng2.DB.Relation("R")
	if !ok || rel.Arity != 3 || rel.Cardinality() != 1 {
		t.Fatalf("later-shape records should win: ok=%v arity=%d card=%d", ok, rel.Arity, rel.Cardinality())
	}

	// And a restored catalog that conflicts with ALL records: replay
	// skips the relation, reports it, and the boot succeeds.
	eng3 := New()
	eng3.AddRelationColumns("R", [][]uint32{{1, 2}, {1, 2}, {1, 2}, {1, 2}}, nil, semiring.None) // arity 4
	st3, err := eng3.OpenWAL(walCfg(walDir))
	if err != nil {
		t.Fatalf("boot bricked by catalog-conflicting WAL: %v", err)
	}
	if st3.SkippedRelations != 1 {
		t.Fatalf("expected 1 skipped relation, got %+v", st3)
	}
	rel3, _ := eng3.DB.Relation("R")
	if rel3.Arity != 4 || rel3.Cardinality() != 2 {
		t.Fatalf("existing relation should win: arity=%d card=%d", rel3.Arity, rel3.Cardinality())
	}
}

// TestIncrementalSnapshot: re-snapshotting after updating one relation
// rewrites only that relation's segment; untouched segments are reused
// byte-identically (same file, same mtime) and the result restores to
// the same state.
func TestIncrementalSnapshot(t *testing.T) {
	dir := t.TempDir()
	eng := New()
	eng.AddRelationColumns("Hot", toCols([][2]uint32{{1, 2}, {2, 3}}), nil, semiring.None)
	eng.AddRelationColumns("Cold", toCols([][2]uint32{{7, 8}, {8, 9}}), nil, semiring.None)
	if _, err := eng.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	segTimes := func() map[string]time.Time {
		out := map[string]time.Time{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".seg") {
				info, err := e.Info()
				if err != nil {
					t.Fatal(err)
				}
				out[e.Name()] = info.ModTime()
			}
		}
		return out
	}
	before := segTimes()

	// Let mtime resolution tick, then update only Hot.
	time.Sleep(10 * time.Millisecond)
	if _, err := eng.Update(UpdateBatch{Rel: "Hot", InsCols: toCols([][2]uint32{{5, 5}})}); err != nil {
		t.Fatal(err)
	}
	cat2, err := eng.Snapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	after := segTimes()

	var coldSeg, hotSeg string
	for _, rm := range cat2.Relations {
		switch rm.Name {
		case "Cold":
			coldSeg = rm.Segment
		case "Hot":
			hotSeg = rm.Segment
		}
	}
	if coldSeg == "" || hotSeg == "" {
		t.Fatalf("catalog missing relations: %+v", cat2.Relations)
	}
	bt, ok := before[coldSeg]
	if !ok {
		t.Fatalf("cold segment %s not reused from the first snapshot", coldSeg)
	}
	if !after[coldSeg].Equal(bt) {
		t.Fatalf("cold segment %s was rewritten (mtime %v → %v)", coldSeg, bt, after[coldSeg])
	}
	if _, existed := before[hotSeg]; existed {
		t.Fatalf("hot segment %s should be a fresh file", hotSeg)
	}

	// The incremental snapshot restores to the live state.
	want := queryKey(t, eng, `L(x,y) :- Hot(x,y).`) + queryKey(t, eng, `M(x,y) :- Cold(x,y).`)
	eng2 := New()
	if _, err := eng2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	got := queryKey(t, eng2, `L(x,y) :- Hot(x,y).`) + queryKey(t, eng2, `M(x,y) :- Cold(x,y).`)
	if got != want {
		t.Fatalf("incremental snapshot restore diverges:\n got %s\nwant %s", got, want)
	}

	// Restore-then-snapshot also reuses: the engine adopted the catalog.
	time.Sleep(10 * time.Millisecond)
	if _, err := eng2.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	final := segTimes()
	for name, mt := range after {
		if ft, ok := final[name]; !ok || !ft.Equal(mt) {
			t.Fatalf("segment %s rewritten by idempotent re-snapshot", name)
		}
	}
}

// TestSnapshotTruncatesOnlyPairedDir: ad-hoc snapshots to a side
// directory must not truncate the WAL paired with the primary one.
func TestSnapshotTruncatesOnlyPairedDir(t *testing.T) {
	primary := t.TempDir()
	side := t.TempDir()
	walDir := t.TempDir()
	eng := New()
	if _, err := eng.OpenWAL(WALConfig{Dir: walDir, Sync: wal.SyncAlways, SnapshotDir: primary}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{1, 2}})}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Snapshot(side); err != nil {
		t.Fatal(err)
	}
	// Fresh engine, no restore: WAL alone must still hold the update.
	eng2 := New()
	st, err := eng2.OpenWAL(walCfg(walDir))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("side snapshot truncated the WAL: %+v", st)
	}

	// Snapshot to the paired dir truncates.
	eng3 := New()
	if _, err := eng3.OpenWAL(WALConfig{Dir: t.TempDir(), Sync: wal.SyncAlways, SnapshotDir: primary}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng3.Update(UpdateBatch{Rel: "Edge", InsCols: toCols([][2]uint32{{5, 6}})}); err != nil {
		t.Fatal(err)
	}
	cfg := eng3.upd.walCfg
	if _, err := eng3.Snapshot(primary); err != nil {
		t.Fatal(err)
	}
	if err := eng3.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	eng4 := New()
	st4, err := eng4.OpenWAL(walCfg(cfg.Dir))
	if err != nil {
		t.Fatal(err)
	}
	if st4.Records != 0 {
		t.Fatalf("paired snapshot did not truncate the WAL: %+v", st4)
	}
}
