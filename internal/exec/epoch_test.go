package exec

import (
	"testing"

	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

func tinyTrie(vals ...uint32) *trie.Trie {
	b := trie.NewColumnarBuilder(1, semiring.None, nil)
	for _, v := range vals {
		b.Add(v)
	}
	return b.Build()
}

// TestPerRelationEpochs pins the epoch contract the result cache relies
// on: mutating relation R advances R's epoch and nobody else's.
func TestPerRelationEpochs(t *testing.T) {
	db := NewDB()
	db.AddTrie("R", tinyTrie(1, 2, 3))
	db.AddTrie("S", tinyTrie(4, 5))

	rEpoch, sEpoch := db.EpochOf("R"), db.EpochOf("S")
	if rEpoch == 0 || sEpoch == 0 || rEpoch == sEpoch {
		t.Fatalf("epochs not distinct and nonzero: R=%d S=%d", rEpoch, sEpoch)
	}
	if db.EpochOf("missing") != 0 {
		t.Fatal("absent relation must report epoch 0")
	}

	db.AddTrie("R", tinyTrie(9))
	if db.EpochOf("R") == rEpoch {
		t.Fatal("replacing R did not advance its epoch")
	}
	if db.EpochOf("S") != sEpoch {
		t.Fatal("replacing R advanced S's epoch")
	}

	dictEpoch := db.DictEpoch()
	db.SetDict(graph.NewDictionary())
	if db.DictEpoch() == dictEpoch {
		t.Fatal("SetDict did not advance the dictionary epoch")
	}
	if db.EpochOf("S") != sEpoch {
		t.Fatal("SetDict advanced a relation epoch")
	}

	rEpoch = db.EpochOf("R")
	db.Drop("R")
	if db.EpochOf("R") == rEpoch {
		t.Fatal("Drop did not advance the dropped relation's epoch")
	}

	// EpochsOf returns a consistent aligned vector.
	got := db.EpochsOf([]string{"S", "R", "missing"})
	if got[0] != sEpoch || got[1] != db.EpochOf("R") || got[2] != 0 {
		t.Fatalf("EpochsOf vector %v inconsistent", got)
	}
}

func TestForkCarriesEpochs(t *testing.T) {
	db := NewDB()
	db.AddTrie("R", tinyTrie(1))
	f := db.Fork()
	rEpoch := f.EpochOf("R")
	if rEpoch != db.EpochOf("R") {
		t.Fatal("fork epoch differs from source at fork time")
	}
	// Later mutations of the source must not leak into the fork.
	db.AddTrie("R", tinyTrie(2))
	if f.EpochOf("R") != rEpoch {
		t.Fatal("source mutation changed the fork's epoch")
	}
	// Fork-local writes stay local.
	f.AddTrie("S", tinyTrie(3))
	if db.EpochOf("S") != 0 {
		t.Fatal("fork write leaked into the source db")
	}
}

func TestInstallSnapshot(t *testing.T) {
	db := NewDB()
	db.AddTrie("Old", tinyTrie(1))
	oldVersion := db.Version()

	dict := graph.NewDictionary()
	dict.Encode(100)
	db.InstallSnapshot(map[string]*trie.Trie{
		"Edge": tinyTrie(1, 2),
		"Rank": tinyTrie(7),
	}, map[string]uint64{"Edge": 41, "Rank": 97}, dict, 55)

	if db.Version() <= oldVersion {
		t.Fatal("install did not advance the version")
	}
	if _, ok := db.Relation("Old"); ok {
		t.Fatal("install kept a pre-existing relation")
	}
	// Saved epochs are adopted verbatim (byte-identical re-snapshots
	// depend on this) and the version jumps strictly past all of them.
	if e := db.EpochOf("Edge"); e != 41 {
		t.Fatalf("Edge epoch %d, want adopted 41", e)
	}
	if e := db.EpochOf("Rank"); e != 97 {
		t.Fatalf("Rank epoch %d, want adopted 97", e)
	}
	if db.DictEpoch() != 55 {
		t.Fatalf("dict epoch %d, want adopted 55", db.DictEpoch())
	}
	if db.Version() <= 97 {
		t.Fatalf("version %d not past the adopted epochs", db.Version())
	}
	if d := db.Dict(); d == nil || d.Len() != 1 {
		t.Fatal("installed dictionary lost")
	}
	// A post-install mutation must outrank every adopted epoch.
	db.AddTrie("Edge", tinyTrie(9))
	if db.EpochOf("Edge") <= 97 {
		t.Fatalf("post-install epoch %d not monotone past adopted epochs", db.EpochOf("Edge"))
	}
}
