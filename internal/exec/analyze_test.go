package exec

import (
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/trace"
)

func prepareQ(t testing.TB, db *DB, query string) *Prepared {
	t.Helper()
	prog, err := datalog.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pr, err := Prepare(db, prog, Options{})
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return pr
}

func TestRunWithCollectTriangle(t *testing.T) {
	g := testGraph(200, 1500, 11)
	db := dbWithGraph(g)
	pr := prepareQ(t, db, `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)

	base, err := pr.Run(db.Fork())
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats != nil {
		t.Fatal("default run must not collect stats")
	}

	res, err := pr.RunWith(db.Fork(), RunParams{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalar() != base.Scalar() {
		t.Fatalf("collected run changed the result: %g vs %g", res.Scalar(), base.Scalar())
	}
	st := res.Stats
	if st == nil || len(st.Bags) == 0 {
		t.Fatalf("no stats collected: %+v", st)
	}
	bs := st.Bags[0]
	if len(bs.Levels) != 3 {
		t.Fatalf("triangle bag has %d levels, want 3", len(bs.Levels))
	}
	if bs.Levels[0].Attr != "x" || bs.Levels[1].Attr != "y" || bs.Levels[2].Attr != "z" {
		t.Fatalf("level attrs = %v", bs.Levels)
	}
	if bs.Levels[0].Probes == 0 {
		t.Fatal("no probes recorded at level 0")
	}
	// Every level evaluates at least one intersection with inputs and
	// outputs booked.
	for i, l := range bs.Levels {
		if l.Intersections == 0 || l.InputCard == 0 {
			t.Fatalf("level %d counters empty: %+v", i, l)
		}
	}
	// The count tail's OutputCard sums the per-(x,y) triangle closers,
	// which is exactly the ordered triangle count.
	if got := bs.Levels[2].OutputCard; got != int64(base.Scalar()) {
		t.Fatalf("tail OutputCard = %d, want triangle count %g", got, base.Scalar())
	}
	if bs.Emitted == 0 {
		t.Fatal("no emits recorded")
	}
	if bs.WallUS < 0 {
		t.Fatalf("negative wall time %d", bs.WallUS)
	}
}

// Counter totals must not depend on how the work-stealing pool splits the
// first level: per-worker counters merge losslessly.
func TestCollectParallelMatchesSerial(t *testing.T) {
	g := testGraph(300, 3000, 5)
	db := dbWithGraph(g)
	q := `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`

	prog, err := datalog.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	serialPr, err := Prepare(db, prog, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parPr, err := Prepare(db, prog, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialPr.RunWith(db.Fork(), RunParams{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := parPr.RunWith(db.Fork(), RunParams{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	sb, pb := serial.Stats.Bags[0], par.Stats.Bags[0]
	if sb.Emitted != pb.Emitted {
		t.Fatalf("emitted: serial %d, parallel %d", sb.Emitted, pb.Emitted)
	}
	for i := range sb.Levels {
		if sb.Levels[i] != pb.Levels[i] {
			t.Fatalf("level %d diverges: serial %+v, parallel %+v", i, sb.Levels[i], pb.Levels[i])
		}
	}
}

func TestExplainAnalyzeAnnotates(t *testing.T) {
	g := testGraph(100, 600, 3)
	db := dbWithGraph(g)
	pr := prepareQ(t, db, `P(x,z) :- Edge(x,y),Edge(y,z).`)
	res, err := pr.RunWith(db.Fork(), RunParams{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("no stats")
	}
	plain := res.Plan.Explain()
	if strings.Contains(plain, "actual:") {
		t.Fatal("plain Explain leaked annotations")
	}
	ann := res.Plan.ExplainAnalyze(res.Stats)
	for _, want := range []string{"actual:", "probes=", "emitted=", "∩="} {
		if !strings.Contains(ann, want) {
			t.Fatalf("ExplainAnalyze missing %q:\n%s", want, ann)
		}
	}
}

func TestRunWithTraceRecordsBagSpans(t *testing.T) {
	g := testGraph(100, 600, 3)
	db := dbWithGraph(g)
	pr := prepareQ(t, db, `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`)
	rec := trace.NewRecorder(4)
	tr := rec.Start("query")
	if _, err := pr.RunWith(db.Fork(), RunParams{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	spans := tr.SpansSnapshot()
	found := false
	for _, sp := range spans {
		if sp.Name == "bag 0" && sp.DurUS >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no bag span recorded: %+v", spans)
	}
}

// TestAnalyzeOverheadGate is the CI bench-smoke gate: running triangle and
// 2-path with the ExecStats collector enabled must cost < 3% over the
// default path. The default path itself only pays nil checks on the same
// sites, so its overhead is bounded well below the measured delta.
//
// Methodology: serial execution (Parallelism 1) isolates the collector
// from scheduler noise on small CI machines, and off/on runs interleave
// so clock-frequency drift and GC cycles hit both sides equally; the
// minimum of many rounds approximates each side's ideal runtime. Env-
// gated so tier-1 `go test ./...` stays timing-free.
func TestAnalyzeOverheadGate(t *testing.T) {
	if os.Getenv("EH_ANALYZE_GATE") == "" {
		t.Skip("set EH_ANALYZE_GATE=1 to run the instrumentation overhead gate")
	}
	for _, tc := range []struct {
		name, q string
		n, m    int
		rounds  int
	}{
		{"triangle", `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`, 3000, 60000, 25},
		{"path2", `P(x,z) :- Edge(x,y),Edge(y,z).`, 1000, 15000, 15},
	} {
		g := testGraph(tc.n, tc.m, 17)
		db := dbWithGraph(g)
		prog, err := datalog.Parse(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := Prepare(db, prog, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		run := func(collect bool) time.Duration {
			fork := db.Fork()
			start := time.Now()
			if _, err := pr.RunWith(fork, RunParams{Collect: collect}); err != nil {
				t.Fatal(err)
			}
			return time.Since(start)
		}
		run(false) // warm lazily built indexes
		run(true)
		measure := func() (off, on time.Duration) {
			offs := make([]time.Duration, 0, tc.rounds)
			ons := make([]time.Duration, 0, tc.rounds)
			for i := 0; i < tc.rounds; i++ {
				offs = append(offs, run(false))
				ons = append(ons, run(true))
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			sort.Slice(ons, func(i, j int) bool { return ons[i] < ons[j] })
			return offs[0], ons[0]
		}
		// Shared single-core CI boxes jitter by several percent; a true
		// regression shows in every attempt, noise does not.
		best := 1e9
		for attempt := 0; attempt < 3; attempt++ {
			off, on := measure()
			overhead := float64(on-off) / float64(off)
			t.Logf("%s attempt %d: off=%v on=%v overhead=%.2f%%", tc.name, attempt, off, on, overhead*100)
			if overhead < best {
				best = overhead
			}
			if best <= 0.03 {
				break
			}
		}
		if best > 0.03 {
			t.Errorf("%s: analyze instrumentation overhead %.2f%% exceeds 3%% in all attempts",
				tc.name, best*100)
		}
	}
}
