package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"emptyheaded/internal/fault"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trace"
	"emptyheaded/internal/trie"
)

// ErrTimeout is returned when Options.Timeout elapses during execution.
var ErrTimeout = errors.New("exec: query timeout exceeded")

// ErrCanceled is returned when Options.Ctx is cancelled mid-execution —
// a client that hung up. A context that instead ran out its deadline
// maps to ErrTimeout.
var ErrCanceled = errors.New("exec: query canceled")

// ErrExecPanic wraps a panic recovered at an executor boundary: the
// query fails, the process keeps serving.
var ErrExecPanic = errors.New("exec: panic in executor")

// panicError converts a recovered loop-nest panic into an error
// carrying the panic value and stack.
func panicError(r any) error {
	return fmt.Errorf("%w: %v\n%s", ErrExecPanic, r, debug.Stack())
}

// Run executes the plan and returns the result relation.
func (p *Plan) Run() (*Result, error) {
	if p.opts.Timeout > 0 {
		p.deadline = time.Now().Add(p.opts.Timeout)
		p.stop = new(atomic.Bool)
	}
	if ctx := p.opts.Ctx; ctx != nil && ctx.Done() != nil {
		// Cooperative cancellation rides the same stop flag the timeout
		// uses: the loop nest already checks it per candidate value.
		if p.stop == nil {
			p.stop = new(atomic.Bool)
		}
		flag := p.stop
		unregister := context.AfterFunc(ctx, func() { flag.Store(true) })
		defer unregister()
	}
	results := map[int]*trie.Trie{}
	if err := p.runBag(p.Root, results); err != nil {
		return nil, err
	}
	out := results[p.Root.ID]
	final := p.Root
	if p.Assembly != nil {
		// Bind every materialized bag into the assembly join.
		for _, a := range p.Assembly.Atoms {
			a.child.result = results[a.child.resolveID()]
		}
		var sp trace.SpanID = -1
		if p.tr != nil {
			sp = p.tr.Begin("assembly")
		}
		t, err := p.execBag(p.Assembly)
		p.tr.End(sp)
		if err != nil {
			return nil, err
		}
		out = t
		final = p.Assembly
	}
	res := &Result{
		Name:      p.Rule.Head.Name,
		Attrs:     final.OutAttrs,
		Trie:      out,
		Plan:      p,
		Truncated: p.truncated,
		Stats:     p.stats,
	}
	return res, nil
}

// stopErr attributes a latched stop flag to its cause: a cancelled
// request context, a spent context deadline, or the execution timeout.
func (p *Plan) stopErr() error {
	if ctx := p.opts.Ctx; ctx != nil {
		switch ctx.Err() {
		case context.Canceled:
			return ErrCanceled
		case context.DeadlineExceeded:
			return fmt.Errorf("%w: request deadline exceeded", ErrTimeout)
		}
	}
	return ErrTimeout
}

// resolveID follows dedup links.
func (bp *BagPlan) resolveID() int {
	if bp.DedupOf >= 0 {
		return bp.DedupOf
	}
	return bp.ID
}

// runBag executes the bag tree bottom-up (the first Yannakakis pass,
// §3.3.2 "Across Nodes"), sharing results between equivalent bags
// (App. B.2).
func (p *Plan) runBag(bp *BagPlan, results map[int]*trie.Trie) error {
	for _, c := range bp.Children {
		if err := p.runBag(c, results); err != nil {
			return err
		}
	}
	if bp.DedupOf >= 0 {
		if _, ok := results[bp.DedupOf]; !ok {
			return fmt.Errorf("exec: dedup target bag %d not yet computed", bp.DedupOf)
		}
		if p.stats != nil {
			p.stats.Bags = append(p.stats.Bags, &BagStats{
				BagID: bp.ID, Attrs: bp.Attrs, OutAttrs: bp.OutAttrs,
				Reused: true, ReusedFrom: bp.DedupOf,
			})
		}
		return nil
	}
	for _, a := range bp.Atoms {
		if a.child != nil {
			a.child.result = results[a.child.resolveID()]
		}
	}
	var sp trace.SpanID = -1
	if p.tr != nil {
		sp = p.tr.Begin(fmt.Sprintf("bag %d", bp.ID))
	}
	t, err := p.execBag(bp)
	p.tr.End(sp)
	if err != nil {
		return err
	}
	results[bp.ID] = t
	return nil
}

// cursor tracks one atom's descent through its trie during the loop nest.
type cursor struct {
	atom *AtomRef
	t    *trie.Trie
	// nodes[l] is the trie node whose Set binds atom level l; nodes has
	// one entry per atom level, filled during descent.
	nodes []*trie.Node
	// hints[l] is a monotone rank hint into nodes[l].Set: within one loop
	// nest level, probed values ascend, so ranks ascend too.
	hints []int
	// bagLevel[l] maps the atom level to the bag loop-nest level (-1 for
	// constants, handled in preDescend).
	bagLevel []int
}

// bagExec carries per-execution state.
type bagExec struct {
	p  *Plan
	bp *BagPlan
	// perLevel[lvl] lists (cursor, atomLevel) pairs participating at each
	// bag level.
	perLevel [][]curRef
	cursors  []*cursor
	op       semiring.Op
	cfg      set.Config
	// kern executes every pairwise set operation of the loop nest; on the
	// analyze path kerns holds one counting kernel per loop level, each
	// tallying routes into the matching lc[lvl].Kernel (per-worker, no
	// atomics — see kernelAt).
	kern      set.Kernel
	kerns     []set.Kernel
	countTail bool // last level computable via kernel Count
	// scalarFactor is the ⊗-product of zero-arity participants (scalar
	// child bags from disconnected components, e.g. the second triangle
	// of the Barbell-selection plan).
	scalarFactor float64
	// lim is non-nil when this bag is the final listing bag of a limited
	// query (see Plan.limitFor); shared across worker clones.
	lim *limitState
	// lc holds the EXPLAIN ANALYZE level counters (see stats.go): nil on
	// the default path, private per worker clone (padded allocation, see
	// newLevelCounters), merged after the pool drains. emits accumulates
	// workers' emit counts at merge time; the hot per-emit counter lives
	// on the worker.
	lc    []LevelStats
	emits int64
}

type curRef struct {
	c         *cursor
	atomLevel int
}

// limitState is the cooperative row budget shared by all workers of a
// limited listing bag (the limit-pushdown path): hit latches once the
// budget is spent so every loop nest unwinds at its next candidate
// value. When every loop-nest level is an output level each emit is a
// distinct tuple, so a plain counter suffices; listings that project
// variables away can emit the same output tuple many times, so the
// budget counts post-dedup distinct tuples through the seen map —
// a limit:k request yields k distinct tuples whenever k exist, instead
// of stopping after k pre-dedup rows.
type limitState struct {
	limit   int64
	emitted atomic.Int64
	hit     atomic.Bool

	// Distinct mode (nil when emits are already distinct). seen holds the
	// packed output tuples counted so far; it never grows past limit
	// entries, since the hit latch fires when it fills.
	mu   sync.Mutex
	seen map[string]struct{}
}

func (ls *limitState) stopped() bool { return ls != nil && ls.hit.Load() }

// noteRow books one emitted output row against the budget.
func (ls *limitState) noteRow(row []uint32) {
	if ls == nil {
		return
	}
	if ls.seen == nil {
		if ls.emitted.Add(1) >= ls.limit {
			ls.hit.Store(true)
		}
		return
	}
	key := make([]byte, 4*len(row))
	for i, v := range row {
		key[4*i] = byte(v)
		key[4*i+1] = byte(v >> 8)
		key[4*i+2] = byte(v >> 16)
		key[4*i+3] = byte(v >> 24)
	}
	ls.mu.Lock()
	if _, dup := ls.seen[string(key)]; !dup {
		ls.seen[string(key)] = struct{}{}
		if int64(len(ls.seen)) >= ls.limit {
			ls.hit.Store(true)
		}
	}
	ls.mu.Unlock()
}

// execBag runs the generic worst-case optimal join (Algorithm 1) for one
// bag and materializes its output trie. A panic anywhere below (the
// inline single-worker path included) is recovered into ErrExecPanic.
func (p *Plan) execBag(bp *BagPlan) (t *trie.Trie, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, panicError(r)
		}
	}()
	op := p.aggOp()
	ex := &bagExec{p: p, bp: bp, op: op, cfg: p.opts.Intersect}
	ex.kern = set.NewKernel(ex.cfg)
	ex.perLevel = make([][]curRef, len(bp.Attrs))
	ex.scalarFactor = op.One()
	var bs *BagStats
	if p.stats != nil {
		bs = &BagStats{BagID: bp.ID, Attrs: bp.Attrs, OutAttrs: bp.OutAttrs,
			Levels: make([]LevelStats, len(bp.Attrs))}
		for i, a := range bp.Attrs {
			bs.Levels[i].Attr = a
		}
		p.stats.Bags = append(p.stats.Bags, bs)
		ex.lc = newLevelCounters(len(bp.Attrs))
		ex.initCountingKernels()
		t0 := time.Now()
		defer func() {
			ex.drainInto(bs)
			bs.WallUS = time.Since(t0).Microseconds()
		}()
	}
	for _, a := range bp.Atoms {
		var t *trie.Trie
		if a.child != nil {
			t = a.child.result
		} else {
			rel, ok := p.db.Relation(a.Rel)
			if !ok {
				return nil, fmt.Errorf("exec: relation %s vanished", a.Rel)
			}
			t = rel.Index(a.Perm, p.opts.layout(), p.opts.layoutName())
		}
		if t.Arity == 0 {
			if !a.SemijoinOnly {
				// Semijoin-only scalar children contribute in the
				// assembly instead (spanning aggregates).
				ex.scalarFactor = op.Mul(ex.scalarFactor, t.Scalar)
			}
			continue
		}
		c := &cursor{atom: a, t: t}
		c.nodes = make([]*trie.Node, t.Arity+1)
		c.hints = make([]int, t.Arity)
		c.nodes[0] = t.Root
		for al := range a.Attrs {
			c.bagLevel = append(c.bagLevel, levelOf(bp, a, al))
		}
		ex.cursors = append(ex.cursors, c)
		for al, bl := range c.bagLevel {
			if bl >= 0 {
				ex.perLevel[bl] = append(ex.perLevel[bl], curRef{c: c, atomLevel: al})
			}
		}
	}
	// Sanity: every level has at least one participant.
	for lvl, refs := range ex.perLevel {
		if len(refs) == 0 {
			return nil, fmt.Errorf("exec: no atom binds attribute %s", bp.Attrs[lvl])
		}
	}
	// Pre-descend selection constants (App. B.1: selections are
	// processed first; constant levels sort before variable levels in
	// every atom's index order).
	for _, c := range ex.cursors {
		if !ex.preDescend(c) {
			// A selection constant is absent: the bag result is empty.
			if bs != nil {
				bs.SelectionMiss = true
			}
			return ex.emptyResult(), nil
		}
	}
	// Count-only tail: the final level is eliminated, aggregates by
	// multiplicity under SUM/COUNT, and no annotated atom contributes
	// there — the triangle-count inner loop (§5.2.1) hits this path.
	ex.countTail = ex.countTailOK()

	if len(bp.Attrs) == 0 {
		// All-constant bag: the result is the scalar factor.
		return trie.NewScalar(ex.scalarFactor, op), nil
	}
	if n := p.limitFor(bp); n > 0 {
		ex.lim = &limitState{limit: int64(n)}
		if len(bp.OutAttrs) < len(bp.Attrs) {
			// Projected listing: count distinct output tuples, so the
			// truncated result holds `limit` tuples post-dedup.
			ex.lim.seen = make(map[string]struct{}, n)
		}
	}
	cols, anns, scalar, err := ex.runParallel()
	if err != nil {
		return nil, err
	}
	if p.stop != nil && p.stop.Load() {
		return nil, p.stopErr()
	}
	if ex.lim.stopped() {
		p.truncated = true
	}
	return ex.materialize(cols, anns, scalar), nil
}

// limitFor reports the row budget to push into bp, or 0. Pushdown applies
// only to the bag that produces the final listing (the assembly when
// present, else the root) and only without aggregation; inner bags always
// materialize fully, since their results feed joins. The budget counts
// post-dedup distinct output tuples: when every loop-nest level is an
// output level each emit is distinct and a plain counter suffices; with
// projected-away variables the limitState tracks distinct tuples
// explicitly, so a limit:N request yields N distinct tuples whenever the
// full result has that many.
func (p *Plan) limitFor(bp *BagPlan) int {
	if p.opts.Limit <= 0 || p.Agg.Present {
		return 0
	}
	final := p.Root
	if p.Assembly != nil {
		final = p.Assembly
	}
	if bp != final || len(bp.OutAttrs) == 0 {
		return 0
	}
	return p.opts.Limit
}

func (p *Plan) aggOp() semiring.Op {
	if p.Agg.Present {
		return p.Agg.Op
	}
	return semiring.Sum
}

// preDescend walks an atom's leading constant levels.
func (ex *bagExec) preDescend(c *cursor) bool {
	if c.t.Arity == 0 {
		return true
	}
	for al := 0; al < len(c.atom.Attrs); al++ {
		v, isConst := c.atom.Consts[al]
		if !isConst {
			return true
		}
		n := c.nodes[al]
		if n == nil || !n.Set.Contains(v) {
			return false
		}
		c.nodes[al+1] = n.Child(v)
	}
	return true
}

func (ex *bagExec) countTailOK() bool {
	bp := ex.bp
	last := len(bp.Attrs) - 1
	if last < 0 || bp.Out[last] {
		return false
	}
	if !ex.p.Agg.Present {
		return false
	}
	if ex.op != semiring.Sum && ex.op != semiring.Count {
		return false
	}
	// Multiplicity semantics at the tail: either COUNT(*)/no agg var, or
	// the aggregate variable *is* the last attribute.
	if ex.p.Agg.Var != "*" && ex.p.Agg.Var != "" && bp.AggVarLevel != last {
		return false
	}
	if bp.ExistsFrom <= last {
		return false
	}
	for _, a := range ex.bp.Atoms {
		if a.Annotated && a.LastLevel >= 0 && levelOf(bp, a, a.LastLevel) == last {
			return false
		}
	}
	return true
}

func (ex *bagExec) emptyResult() *trie.Trie {
	b := trie.NewColumnarBuilder(len(ex.bp.OutAttrs), ex.op, ex.p.opts.layout())
	return b.Build()
}

// initCountingKernels builds one counting kernel per loop level, each
// writing into the matching lc[lvl].Kernel stats block. ex.lc must be
// set; each worker clone calls this on its private lc, so the counters
// stay contention-free and merge through LevelStats.add.
func (ex *bagExec) initCountingKernels() {
	ex.kerns = make([]set.Kernel, len(ex.lc))
	for i := range ex.kerns {
		ex.kerns[i] = set.NewCountingKernel(ex.cfg, &ex.lc[i].Kernel)
	}
}

// kernelAt returns the kernel executing level lvl's pairwise set ops: the
// shared plain kernel normally, the level's counting kernel under analyze.
func (ex *bagExec) kernelAt(lvl int) set.Kernel {
	if ex.kerns != nil {
		return ex.kerns[lvl]
	}
	return ex.kern
}

// worker holds one goroutine's accumulation state. Output accumulates
// column-wise: cols[i] holds output attribute i of every emitted row, so
// an emit is one append per attribute (no per-row allocation) and the
// result hands straight to the columnar trie builder.
type worker struct {
	ex     *bagExec
	outBuf []uint32
	cols   [][]uint32
	anns   []float64
	scalar float64
	tick   uint32 // timeout check pacing
	// emits counts emit() calls when analyze counters are on. It lives
	// here, not on bagExec: emit already writes this struct's slice
	// headers, so the extra store adds no cross-worker cache traffic.
	emits int64
	// scratch provides two ping-pong intersection buffer pairs per loop
	// level, so the loop nest runs allocation-free on uint and bitset
	// results.
	scratch []scratchLevel
}

type scratchBuf struct {
	u []uint32
	w []uint64
}

type scratchLevel [2]scratchBuf

func (w *worker) initScratch(levels int) {
	w.scratch = make([]scratchLevel, levels)
}

// intersectionAtBuf is intersectionAt using the worker's per-level
// scratch buffers.
func (w *worker) intersectionAtBuf(lvl int) set.Set {
	s := w.intersectionAtBufInner(lvl)
	if w.ex.lc != nil {
		w.ex.noteIntersect(lvl, s.Card())
	}
	return s
}

func (w *worker) intersectionAtBufInner(lvl int) set.Set {
	ex := w.ex
	refs := ex.perLevel[lvl]
	cur := ex.levelSet(refs[0])
	flip := 0
	for _, r := range refs[1:] {
		if cur.IsEmpty() {
			return cur
		}
		sb := &w.scratch[lvl][flip]
		cur, sb.u, sb.w = ex.kernelAt(lvl).IntersectBuf(cur, ex.levelSet(r), sb.u, sb.w)
		flip ^= 1
	}
	return cur
}

// countAtBuf counts the tail-level intersection using scratch buffers.
func (w *worker) countAtBuf(lvl int) int {
	n := w.countAtBufInner(lvl)
	if w.ex.lc != nil {
		w.ex.noteIntersect(lvl, n)
	}
	return n
}

func (w *worker) countAtBufInner(lvl int) int {
	ex := w.ex
	refs := ex.perLevel[lvl]
	if len(refs) == 1 {
		return ex.levelSet(refs[0]).Card()
	}
	cur := ex.levelSet(refs[0])
	flip := 0
	for i := 1; i < len(refs)-1; i++ {
		if cur.IsEmpty() {
			return 0
		}
		sb := &w.scratch[lvl][flip]
		cur, sb.u, sb.w = ex.kernelAt(lvl).IntersectBuf(cur, ex.levelSet(refs[i]), sb.u, sb.w)
		flip ^= 1
	}
	if cur.IsEmpty() {
		return 0
	}
	return ex.kernelAt(lvl).Count(cur, ex.levelSet(refs[len(refs)-1]))
}

// stealBlockMax bounds the work-stealing block size: small enough that a
// handful of power-law high-degree vertices spread across workers instead
// of serializing the tail, large enough to amortize the atomic claim and
// the per-block set construction.
const stealBlockMax = 64

// runParallel distributes the first variable level across workers with
// work stealing: the sorted first-level values are split into fixed-size
// blocks claimed off an atomic cursor, so workers that drew cheap (low
// degree) values keep pulling blocks while a worker stuck on a skewed
// high-degree vertex finishes its one block. Output accumulates in
// per-worker columns, concatenated once at the end.
func (ex *bagExec) runParallel() ([][]uint32, []float64, float64, error) {
	nw := ex.p.opts.Parallelism
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	first := ex.intersectionAt(0)
	if first.IsEmpty() {
		return make([][]uint32, len(ex.bp.OutAttrs)), nil, ex.op.Zero(), nil
	}
	if nw > first.Card() {
		nw = first.Card()
	}
	if nw <= 1 || len(ex.bp.Attrs) == 1 {
		// Chaos hook (Latency/PanicKind); the inline path's panics are
		// recovered by execBag.
		_ = fault.Hit("exec.worker")
		w := ex.newWorker()
		w.initScratch(len(ex.bp.Attrs))
		w.levelValues(0, first, ex.scalarFactor)
		if ex.lc != nil {
			ex.mergeCounters(w)
		}
		return w.cols, w.anns, w.scalar, nil
	}
	vals := first.Slice()
	block := len(vals) / (nw * 8)
	if block < 1 {
		block = 1
	}
	if block > stealBlockMax {
		block = stealBlockMax
	}
	workers := make([]*worker, 0, nw)
	var next atomic.Int64
	var wg sync.WaitGroup
	// Panic isolation: a worker that panics must not kill the process —
	// the first panic is captured, the stop flag unwinds its peers, and
	// the whole bag fails with ErrExecPanic.
	var panicOnce sync.Once
	var panicErr error
	for i := 0; i < nw; i++ {
		// Each worker needs private cursor state below level 0.
		w := ex.newWorker().withPrivateCursors()
		w.initScratch(len(ex.bp.Attrs))
		workers = append(workers, w)
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicErr = panicError(r) })
					if ex.p.stop != nil {
						ex.p.stop.Store(true)
					}
				}
			}()
			for {
				if ex.p.stop != nil && ex.p.stop.Load() {
					return
				}
				if ex.lim.stopped() {
					return
				}
				// Chaos hook: PanicKind exercises this recover, Latency
				// stretches a worker mid-bag.
				_ = fault.Hit("exec.worker")
				lo := int(next.Add(int64(block))) - block
				if lo >= len(vals) {
					return
				}
				hi := lo + block
				if hi > len(vals) {
					hi = len(vals)
				}
				w.levelValues(0, set.FromSorted(vals[lo:hi]), w.ex.scalarFactor)
			}
		}(w)
	}
	wg.Wait()
	if panicErr != nil {
		return nil, nil, 0, panicErr
	}
	if ex.lc != nil {
		for _, w := range workers {
			ex.mergeCounters(w)
		}
	}
	// Concatenate the per-worker columns: one flat copy per attribute, no
	// pointer chasing, sized exactly once.
	total := 0
	for _, w := range workers {
		total += len(w.anns)
	}
	cols := make([][]uint32, len(ex.bp.OutAttrs))
	for c := range cols {
		col := make([]uint32, 0, total)
		for _, w := range workers {
			col = append(col, w.cols[c]...)
		}
		cols[c] = col
	}
	anns := make([]float64, 0, total)
	scalar := ex.op.Zero()
	for _, w := range workers {
		anns = append(anns, w.anns...)
		scalar = ex.op.Add(scalar, w.scalar)
	}
	return cols, anns, scalar, nil
}

// withPrivateCursors clones the execution state so a worker can descend
// independently. Cursor node stacks are per-worker; tries are shared
// (immutable).
func (w *worker) withPrivateCursors() *worker {
	old := w.ex
	ex := &bagExec{
		p: old.p, bp: old.bp, op: old.op, cfg: old.cfg, kern: old.kern,
		countTail: old.countTail, scalarFactor: old.scalarFactor,
		lim: old.lim,
	}
	if old.lc != nil {
		ex.lc = newLevelCounters(len(old.lc))
		ex.initCountingKernels()
	}
	ex.perLevel = make([][]curRef, len(old.perLevel))
	cmap := map[*cursor]*cursor{}
	for _, c := range old.cursors {
		nc := &cursor{atom: c.atom, t: c.t, bagLevel: c.bagLevel}
		nc.nodes = make([]*trie.Node, len(c.nodes))
		copy(nc.nodes, c.nodes)
		nc.hints = make([]int, len(c.hints))
		cmap[c] = nc
		ex.cursors = append(ex.cursors, nc)
	}
	for lvl, refs := range old.perLevel {
		for _, r := range refs {
			ex.perLevel[lvl] = append(ex.perLevel[lvl], curRef{c: cmap[r.c], atomLevel: r.atomLevel})
		}
	}
	return &worker{ex: ex, outBuf: w.outBuf, cols: w.cols, anns: w.anns, scalar: w.scalar}
}

// intersectionAt computes the set of candidate values at a bag level from
// the current cursor nodes (the ∩ of Algorithm 1).
func (ex *bagExec) intersectionAt(lvl int) set.Set {
	s := ex.intersectionAtInner(lvl)
	if ex.lc != nil {
		ex.noteIntersect(lvl, s.Card())
	}
	return s
}

func (ex *bagExec) intersectionAtInner(lvl int) set.Set {
	refs := ex.perLevel[lvl]
	cur := ex.levelSet(refs[0])
	for _, r := range refs[1:] {
		if cur.IsEmpty() {
			return cur
		}
		cur = ex.kernelAt(lvl).Intersect(cur, ex.levelSet(r))
	}
	return cur
}

func (ex *bagExec) levelSet(r curRef) set.Set {
	n := r.c.nodes[r.atomLevel]
	if n == nil {
		return set.Empty()
	}
	return n.Set
}

// levelCard is levelSet(r).Card() without copying the ~90-byte Set
// struct out of the trie node — the analyze counters read participant
// cardinalities on every intersection, and the full-struct copy showed
// up as a third of the profile.
func (ex *bagExec) levelCard(r curRef) int {
	n := r.c.nodes[r.atomLevel]
	if n == nil {
		return 0
	}
	return set.CardOf(&n.Set)
}

// levelValues iterates the candidate values of a level and recurses.
// ann carries the ⊗-product of annotations collected so far.
func (w *worker) levelValues(lvl int, candidates set.Set, ann float64) {
	ex := w.ex
	bp := ex.bp
	last := lvl == len(bp.Attrs)-1

	// Count-only tail: |∩ sets| with SUM/COUNT multiplicity.
	if last && ex.countTail {
		n := w.countAtBuf(lvl)
		if n > 0 {
			w.emit(ex.op.Mul(ann, float64(n)))
		}
		return
	}
	// Existence tail: all remaining levels only need one witness.
	if lvl >= bp.ExistsFrom {
		if ex.exists(lvl) {
			w.emit(ann)
		}
		return
	}

	outPos := -1
	if bp.Out[lvl] {
		outPos = 0
		for i := 0; i < lvl; i++ {
			if bp.Out[i] {
				outPos++
			}
		}
	}
	// Fresh iteration over this level: rank hints restart at zero (values
	// ascend only within one pass).
	for _, r := range ex.perLevel[lvl] {
		r.c.hints[r.atomLevel] = 0
	}
	// A trailing eliminated level folds in place: one ⊕-accumulator and a
	// single emit, instead of one row per value with builder-side
	// combining (the early-aggregation inner loop of §3.1.1).
	foldHere := last && !bp.Out[lvl]
	acc := ex.op.Zero()
	folded := false
	var lvlStats *LevelStats
	if ex.lc != nil {
		lvlStats = &ex.lc[lvl]
	}
	candidates.ForEachUntil(func(_ int, v uint32) bool {
		if lvlStats != nil {
			lvlStats.Probes++
		}
		if ex.lim.stopped() {
			// Limit pushdown: the listing budget is spent; unwind.
			return false
		}
		if ex.p.stop != nil {
			// Cooperative timeout/cancellation: cheap flag check per
			// value, wall clock consulted periodically (only when a
			// timeout armed a deadline — a ctx-only stop flag has none).
			w.tick++
			if w.tick&1023 == 0 && !ex.p.deadline.IsZero() && time.Now().After(ex.p.deadline) {
				ex.p.stop.Store(true)
			}
			if ex.p.stop.Load() {
				return false
			}
		}
		a := ann
		ok := true
		// Descend every atom participating at this level, tracking
		// monotone rank hints; collect annotations of atoms fully bound
		// here. v ∈ n.Set by construction (candidates ⊆ every
		// participant), so the rank lookup almost always succeeds.
		for _, r := range ex.perLevel[lvl] {
			c := r.c
			al := r.atomLevel
			n := c.nodes[al]
			rank, found := n.Set.RankNext(v, c.hints[al])
			c.hints[al] = rank
			if !found {
				ok = false
				break
			}
			if al == c.atom.LastLevel {
				if c.atom.Annotated && !c.atom.SemijoinOnly && n.Ann != nil {
					a = ex.op.Mul(a, n.Ann[rank])
				}
			} else {
				child := n.Children[rank]
				c.nodes[al+1] = child
				if al+1 < len(c.hints) {
					c.hints[al+1] = 0
				}
			}
		}
		if !ok {
			if lvlStats != nil {
				lvlStats.Skipped++
			}
			return true
		}
		if outPos >= 0 {
			w.outBuf[outPos] = v
		}
		if last {
			if foldHere {
				acc = ex.op.Add(acc, a)
				folded = true
			} else {
				w.emit(a)
			}
			return true
		}
		// Count-only tail shortcut: don't materialize the last-level
		// intersection just to recount it.
		if lvl+1 == len(bp.Attrs)-1 && ex.countTail {
			if n := w.countAtBuf(lvl + 1); n > 0 {
				w.emit(ex.op.Mul(a, float64(n)))
			}
			return true
		}
		next := w.intersectionAtBuf(lvl + 1)
		if !next.IsEmpty() {
			w.levelValues(lvl+1, next, a)
		}
		return true
	})
	// An unwind mid-fold leaves acc partially ⊕-combined; emitting it
	// would present an undercounted annotation as a real one. Drop it —
	// the limit path returns a truncated result anyway, and the timeout
	// path discards the whole result.
	if folded && !ex.lim.stopped() {
		w.emit(acc)
	}
}

// exists reports whether any full binding exists from lvl on.
func (ex *bagExec) exists(lvl int) bool {
	candidates := ex.intersectionAt(lvl)
	if candidates.IsEmpty() {
		return false
	}
	if lvl == len(ex.bp.Attrs)-1 {
		return true
	}
	found := false
	candidates.ForEachUntil(func(_ int, v uint32) bool {
		ok := true
		for _, r := range ex.perLevel[lvl] {
			if r.atomLevel+1 < len(r.c.atom.Attrs) {
				child := r.c.nodes[r.atomLevel].Child(v)
				if child == nil {
					ok = false
					break
				}
				r.c.nodes[r.atomLevel+1] = child
			}
		}
		if ok && ex.exists(lvl+1) {
			found = true
			return false
		}
		return true
	})
	return found
}

// emit records one output row (or folds into the scalar when the bag has
// no output attributes): one amortized append per output attribute.
func (w *worker) emit(ann float64) {
	if w.ex.lc != nil {
		w.emits++
	}
	if len(w.ex.bp.OutAttrs) == 0 {
		w.scalar = w.ex.op.Add(w.scalar, ann)
		return
	}
	for i, v := range w.outBuf {
		w.cols[i] = append(w.cols[i], v)
	}
	w.anns = append(w.anns, ann)
	w.ex.lim.noteRow(w.outBuf)
}

// newWorker allocates one goroutine's accumulation state.
func (ex *bagExec) newWorker() *worker {
	w := &worker{ex: ex, outBuf: make([]uint32, len(ex.bp.OutAttrs)), scalar: ex.op.Zero()}
	w.cols = make([][]uint32, len(ex.bp.OutAttrs))
	return w
}

// materialize hands the emitted columns to the columnar trie builder
// zero-copy; duplicate rows combine with ⊕ (the early aggregation GHDs
// enable, §3.1.1).
func (ex *bagExec) materialize(cols [][]uint32, anns []float64, scalar float64) *trie.Trie {
	if len(ex.bp.OutAttrs) == 0 {
		return trie.NewScalar(scalar, ex.op)
	}
	b := trie.NewColumnarBuilder(len(ex.bp.OutAttrs), ex.op, ex.p.opts.layout())
	if len(anns) == 0 {
		anns = nil // no emits: an empty un-annotated trie, as before
	}
	b.SetColumns(cols, anns)
	return b.Build()
}
