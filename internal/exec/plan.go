package exec

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/ghd"
	"emptyheaded/internal/hypergraph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trace"
	"emptyheaded/internal/trie"
)

// Plan is a compiled physical plan for one rule.
type Plan struct {
	Rule *datalog.Rule
	GHD  *ghd.GHD
	// AttrOrder is the global attribute order (§3.2).
	AttrOrder []string
	Root      *BagPlan
	// Agg describes the rule's aggregation (zero value when the head is
	// un-annotated).
	Agg AggInfo
	// Assembly is non-nil when head variables span multiple bags: a final
	// join of the materialized bag results replaces the classical
	// top-down Yannakakis pass.
	Assembly *BagPlan
	opts     Options
	db       *DB

	// Cooperative timeout state (set by Run when Options.Timeout > 0).
	deadline time.Time
	stop     *atomic.Bool
	// truncated reports that limit pushdown stopped the final listing bag
	// early (Result.Truncated).
	truncated bool

	// Per-run observability, set through Prepared.RunWith; both nil on
	// the default path.
	stats *ExecStats
	tr    *trace.Trace
}

// AggInfo captures the semiring aggregation of a rule.
type AggInfo struct {
	Present bool
	Op      semiring.Op
	// Var is the aggregate argument: a body variable or "*" for
	// per-tuple multiplicity (COUNT(*)).
	Var string
	// Expr is the full annotation expression (may wrap the aggregate in
	// arithmetic, e.g. 0.15+0.85*<<SUM(z)>>), nil when the rule merely
	// assigns a constant expression.
	Expr datalog.Expr
}

// AtomRef binds one body atom (or child bag result) to a trie index.
type AtomRef struct {
	// SemijoinOnly suppresses annotation collection: in spanning
	// aggregate plans child results restrict their parent bag but their
	// semiring values are multiplied exactly once, in the assembly join.
	SemijoinOnly bool
	// Rel is the relation name ("@bag<i>" for child results).
	Rel string
	// Attrs are the global attribute names per trie level, in index
	// order; constant positions use the synthetic name "".
	Attrs []string
	// Perm maps trie level → original column of the relation.
	Perm []int
	// Consts maps trie level → the dictionary-encoded constant bound at
	// that level (selection constants, §B.1).
	Consts map[int]uint32
	// Annotated relations contribute their annotation (⊗) when fully
	// bound.
	Annotated bool
	Op        semiring.Op
	// LastLevel is the deepest non-constant level (where the atom's
	// annotation is collected); -1 when the atom is all constants.
	LastLevel int

	child *BagPlan // non-nil for "@bag" atoms
}

// BagPlan is the physical plan of one GHD bag: a Generic-Join loop nest.
type BagPlan struct {
	ID int
	// Attrs is the loop-nest order: the bag's variables ordered by the
	// global attribute order.
	Attrs []string
	// Out marks which levels are output (materialized) vs aggregated
	// away.
	Out []bool
	// OutAttrs lists the output attributes in level order.
	OutAttrs []string
	// Atoms participate in the join; children results are included as
	// "@bag" atoms.
	Atoms []*AtomRef
	// Children are executed first (bottom-up Yannakakis).
	Children []*BagPlan
	// AggVarLevel is the level of the aggregate variable (-1 when the
	// aggregate is "*" or absent from this bag).
	AggVarLevel int
	// ExistsFrom marks the first level from which all remaining levels
	// only need an existence check (distinct-semantics aggregation,
	// e.g. COUNT(x) over Edge(x,y)); len(Attrs) when none.
	ExistsFrom int
	// DedupOf points at an earlier equivalent bag whose result this bag
	// reuses (Appendix B.2); -1 otherwise.
	DedupOf int

	signature string
	// result caches the materialized output during execution.
	result *trie.Trie
}

// Compile builds the physical plan for a parsed rule.
func Compile(db *DB, rule *datalog.Rule, opts Options) (*Plan, error) {
	// 1. Hypergraph: one edge per atom over its variables; atoms with
	// constants become selection edges.
	var edges []hypergraph.Edge
	var selEdges []int
	selectedVars := map[string]bool{}
	for i, atom := range rule.Atoms {
		rel, ok := db.Relation(atom.Pred)
		if !ok {
			return nil, fmt.Errorf("exec: unknown relation %s", atom.Pred)
		}
		if len(atom.Args) != rel.Arity {
			return nil, fmt.Errorf("exec: %s has arity %d, used with %d args",
				atom.Pred, rel.Arity, len(atom.Args))
		}
		var vars []string
		hasConst := false
		seen := map[string]bool{}
		for _, arg := range atom.Args {
			if arg.Var != "" {
				if seen[arg.Var] {
					return nil, fmt.Errorf("exec: repeated variable %s in one atom is unsupported", arg.Var)
				}
				seen[arg.Var] = true
				vars = append(vars, arg.Var)
			} else {
				hasConst = true
			}
		}
		edges = append(edges, hypergraph.Edge{
			Name: fmt.Sprintf("%s#%d", atom.Pred, i),
			Rel:  atom.Pred,
			Vars: vars,
			Size: float64(rel.Cardinality()),
		})
		if hasConst {
			selEdges = append(selEdges, i)
			for _, v := range vars {
				selectedVars[v] = true
			}
		}
	}
	h := hypergraph.New(edges)

	// 2. GHD.
	g := ghd.Decompose(h, ghd.Options{
		SingleBag:      opts.SingleBag,
		SelectionEdges: selEdges,
		NoPushdown:     opts.NoPushdown,
	})
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("exec: optimizer produced invalid GHD: %w", err)
	}

	// 3. Global attribute order (§3.2): pre-order GHD traversal,
	// selection-bound variables first within each bag (App. B.1).
	order := g.AttributeOrder(selectedVars)

	p := &Plan{Rule: rule, GHD: g, AttrOrder: order, opts: opts, db: db}

	// 4. Aggregation info.
	if rule.Assign != nil {
		p.Agg.Present = true
		p.Agg.Expr = rule.Assign.Expr
		if agg := datalog.FindAgg(rule.Assign.Expr); agg != nil {
			op, err := semiring.ParseOp(agg.Op)
			if err != nil {
				return nil, err
			}
			p.Agg.Op = op
			p.Agg.Var = agg.Arg
		} else {
			// Pure expression (e.g. y=1): annotate each head tuple.
			p.Agg.Op = semiring.Sum
			p.Agg.Var = ""
		}
	}

	// 5. Bag plans, bottom-up.
	headVars := map[string]bool{}
	for _, v := range rule.Head.Vars {
		headVars[v] = true
	}
	// Spanning aggregates: head variables outside the root bag mean the
	// FAQ-style fold up the tree cannot produce the grouped result
	// directly (matrix multiplication C(i,k) over bags A(i,j), B(j,k) is
	// the canonical case). Bags then keep their join keys, children join
	// as semijoins, and the final assembly performs the ⊗/⊕ aggregation.
	spanning := false
	if p.Agg.Present {
		rootVars := map[string]bool{}
		for _, v := range g.Root.Vars {
			rootVars[v] = true
		}
		for _, v := range rule.Head.Vars {
			if !rootVars[v] {
				spanning = true
			}
		}
	}
	nextID := 0
	sigs := map[string]int{}
	var build func(b *ghd.Bag, parent *ghd.Bag) (*BagPlan, error)
	build = func(b *ghd.Bag, parent *ghd.Bag) (*BagPlan, error) {
		bp := &BagPlan{ID: nextID, DedupOf: -1}
		nextID++
		// Output attrs: head vars in χ, plus vars shared with the parent.
		// Listing queries (no aggregation) additionally keep variables
		// shared with children: the final assembly join needs those join
		// keys, whereas aggregate queries fold children into annotations.
		need := map[string]bool{}
		for _, v := range b.Vars {
			if headVars[v] {
				need[v] = true
			}
			if parent != nil && bagHasVar(parent, v) {
				need[v] = true
			}
			if rule.Assign == nil || spanning {
				for _, cb := range b.Children {
					if bagHasVar(cb, v) {
						need[v] = true
					}
				}
			}
		}
		// Loop-nest order: bag vars sorted by global attribute order.
		bp.Attrs = sortByOrder(b.Vars, order)
		for _, v := range bp.Attrs {
			bp.Out = append(bp.Out, need[v])
			if need[v] {
				bp.OutAttrs = append(bp.OutAttrs, v)
			}
		}
		// Atoms.
		for _, ei := range b.Edges {
			ar, err := p.atomRef(rule.Atoms[ei], bp.Attrs)
			if err != nil {
				return nil, err
			}
			bp.Atoms = append(bp.Atoms, ar)
		}
		// Children first; their results join as "@bag" atoms.
		for _, cb := range b.Children {
			cp, err := build(cb, b)
			if err != nil {
				return nil, err
			}
			bp.Children = append(bp.Children, cp)
			ca := childAtom(cp)
			ca.SemijoinOnly = spanning
			bp.Atoms = append(bp.Atoms, ca)
		}
		// Redundant-bag elimination (App. B.2).
		bp.signature = g.EquivalentSignature(b)
		if !opts.NoBagDedup {
			if prev, ok := sigs[bp.signature]; ok {
				bp.DedupOf = prev
			} else {
				sigs[bp.signature] = bp.ID
			}
		}
		p.finishLevels(bp)
		return bp, nil
	}
	root, err := build(g.Root, nil)
	if err != nil {
		return nil, err
	}
	p.Root = root

	// 6. Top-down pass / final assembly: needed unless the root bag
	// produces exactly the head attributes (App. B.2 "we can also
	// eliminate the top-down pass if all the attributes appearing in the
	// result also appear in the root node"). Multi-bag listings whose
	// root carries extra join keys also assemble (projecting the keys
	// away with set semantics), as do spanning aggregates (performing
	// the grouped ⊗/⊕ fold over the bag results).
	if (!p.Agg.Present || spanning) && !sameAttrSet(root.OutAttrs, rule.Head.Vars) {
		p.Assembly = p.assemblyPlan(root, rule.Head.Vars, order, spanning)
	}
	return p, nil
}

func sameAttrSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		if !m[v] {
			return false
		}
	}
	return true
}

func bagHasVar(b *ghd.Bag, v string) bool {
	for _, x := range b.Vars {
		if x == v {
			return true
		}
	}
	return false
}

func sortByOrder(vars []string, order []string) []string {
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	out := append([]string(nil), vars...)
	sort.Slice(out, func(i, j int) bool { return pos[out[i]] < pos[out[j]] })
	return out
}

// atomRef builds the index binding for one body atom under the bag's
// attribute order: constant columns first (pre-descended, App. B.1
// "pushing down selections within a node"), then variable columns in
// loop-nest order.
func (p *Plan) atomRef(atom *datalog.Atom, bagAttrs []string) (*AtomRef, error) {
	rel, _ := p.db.Relation(atom.Pred)
	pos := map[string]int{}
	for i, v := range bagAttrs {
		pos[v] = i
	}
	type col struct {
		orig    int
		v       string
		c       *datalog.Const
		sortKey int
	}
	var cols []col
	for i, arg := range atom.Args {
		cl := col{orig: i, v: arg.Var, c: arg.Const}
		if arg.Const != nil {
			cl.sortKey = -1 // constants first
		} else {
			k, ok := pos[arg.Var]
			if !ok {
				return nil, fmt.Errorf("exec: atom %s var %s outside bag attrs %v",
					atom.Pred, arg.Var, bagAttrs)
			}
			cl.sortKey = k
		}
		cols = append(cols, cl)
	}
	sort.SliceStable(cols, func(i, j int) bool { return cols[i].sortKey < cols[j].sortKey })
	ar := &AtomRef{
		Rel:       atom.Pred,
		Annotated: rel.Annotated,
		Op:        rel.Op,
		Consts:    map[int]uint32{},
		LastLevel: -1,
	}
	for lvl, cl := range cols {
		ar.Perm = append(ar.Perm, cl.orig)
		if cl.c != nil {
			code, err := p.encodeConst(cl.c)
			if err != nil {
				return nil, err
			}
			ar.Attrs = append(ar.Attrs, "")
			ar.Consts[lvl] = code
		} else {
			ar.Attrs = append(ar.Attrs, cl.v)
			ar.LastLevel = lvl
		}
	}
	return ar, nil
}

// encodeConst maps a query constant to its dictionary code. String
// constants name original vertex identifiers; numbers are used directly
// when no dictionary is attached.
func (p *Plan) encodeConst(c *datalog.Const) (uint32, error) {
	var orig int64
	if c.IsString {
		var v int64
		if _, err := fmt.Sscanf(c.Str, "%d", &v); err != nil {
			return 0, fmt.Errorf("exec: non-numeric constant %q", c.Str)
		}
		orig = v
	} else {
		orig = int64(c.Num)
	}
	if dict := p.db.Dict(); dict != nil {
		code, ok := dict.Lookup(orig)
		if !ok {
			return 0, fmt.Errorf("exec: constant %d not in dictionary", orig)
		}
		return code, nil
	}
	return uint32(orig), nil
}

// childAtom wraps a materialized child bag as an atom of its parent.
func childAtom(cp *BagPlan) *AtomRef {
	ar := &AtomRef{
		Rel:       fmt.Sprintf("@bag%d", cp.ID),
		Annotated: true, // child results always carry a semiring value
		Consts:    map[int]uint32{},
		LastLevel: len(cp.OutAttrs) - 1,
		child:     cp,
	}
	for i, v := range cp.OutAttrs {
		ar.Attrs = append(ar.Attrs, v)
		ar.Perm = append(ar.Perm, i)
	}
	return ar
}

// finishLevels computes AggVarLevel and ExistsFrom for a bag.
func (p *Plan) finishLevels(bp *BagPlan) {
	bp.AggVarLevel = -1
	bp.ExistsFrom = len(bp.Attrs)
	if !p.Agg.Present {
		return
	}
	for i, v := range bp.Attrs {
		if p.Agg.Var != "" && p.Agg.Var != "*" && v == p.Agg.Var {
			bp.AggVarLevel = i
		}
	}
	if p.Agg.Var == "*" || p.Agg.Var == "" {
		return // every full match contributes (multiplicity semantics)
	}
	// Distinct semantics (e.g. COUNT(x)): eliminated levels beyond the
	// aggregate variable only witness existence. In bags that do not
	// contain the aggregate variable at all (children of the bag that
	// does), every trailing eliminated level is existence-only —
	// otherwise their multiplicities would leak into the parent's fold.
	from := len(bp.Attrs)
	for lvl := len(bp.Attrs) - 1; lvl >= 0; lvl-- {
		if bp.Out[lvl] {
			break
		}
		from = lvl
	}
	if bp.AggVarLevel >= 0 && bp.AggVarLevel+1 > from {
		from = bp.AggVarLevel + 1
	}
	for _, a := range bp.Atoms {
		if a.Annotated && a.LastLevel >= 0 && levelOf(bp, a, a.LastLevel) >= from {
			return // an annotation is collected in the exists region
		}
	}
	bp.ExistsFrom = from
}

// levelOf maps an atom trie level to its bag loop-nest level.
func levelOf(bp *BagPlan, a *AtomRef, atomLevel int) int {
	v := a.Attrs[atomLevel]
	if v == "" {
		return -1
	}
	for i, x := range bp.Attrs {
		if x == v {
			return i
		}
	}
	return -1
}

// assemblyPlan joins the materialized bag results to produce the full
// output listing (replacing the classical top-down pass; see DESIGN.md).
// The loop nest iterates every attribute any bag materialized — join keys
// included — and projects the output to the head variables.
func (p *Plan) assemblyPlan(root *BagPlan, headVars []string, order []string, spanning bool) *BagPlan {
	var bags []*BagPlan
	var collect func(bp *BagPlan)
	collect = func(bp *BagPlan) {
		bags = append(bags, bp)
		for _, c := range bp.Children {
			collect(c)
		}
	}
	collect(root)
	isHead := map[string]bool{}
	for _, v := range headVars {
		isHead[v] = true
	}
	attrSet := map[string]bool{}
	var all []string
	for _, bp := range bags {
		for _, v := range bp.OutAttrs {
			if !attrSet[v] {
				attrSet[v] = true
				all = append(all, v)
			}
		}
	}
	attrs := sortByOrder(all, order)
	ap := &BagPlan{ID: -1, Attrs: attrs, DedupOf: -1, AggVarLevel: -1}
	ap.ExistsFrom = len(attrs)
	for _, v := range attrs {
		out := isHead[v]
		ap.Out = append(ap.Out, out)
		if out {
			ap.OutAttrs = append(ap.OutAttrs, v)
		}
	}
	for _, bp := range bags {
		if len(bp.OutAttrs) == 0 && !spanning {
			continue // listing: scalar bags restrict nothing
		}
		ap.Atoms = append(ap.Atoms, childAtom(bp))
	}
	p.finishLevels(ap)
	return ap
}
