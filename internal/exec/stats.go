package exec

import "emptyheaded/internal/set"

// ExecStats is the per-run EXPLAIN ANALYZE collector: live counters from
// the generic-join loop nest, one BagStats per executed bag (assembly
// included, BagID -1). Collection is opt-in per run (RunParams.Collect);
// on the default path every instrumentation site is behind one nil check
// so serving latency is unaffected.
//
// Counters are plain ints: each worker goroutine increments its own
// bagExec clone's counters (no atomics in the inner loops), and the
// per-worker sets merge into the coordinating bagExec after the
// work-stealing pool drains.

// LevelStats aggregates the set-kernel activity of one loop-nest level.
type LevelStats struct {
	// Attr is the bag attribute bound at this level.
	Attr string `json:"attr"`
	// Intersections counts multi-way intersection evaluations at this
	// level (one per candidate-set construction, not per pairwise kernel
	// call).
	Intersections int64 `json:"intersections"`
	// InputCard sums the cardinalities of every participating set across
	// those evaluations; OutputCard sums the result cardinalities, so
	// OutputCard/InputCard approximates the level's selectivity.
	InputCard  int64 `json:"input_card"`
	OutputCard int64 `json:"output_card"`
	// Probes counts candidate values iterated at this level; Skipped
	// counts probes rejected because a participating atom had no matching
	// child (rank miss during descent).
	Probes  int64 `json:"probes"`
	Skipped int64 `json:"skipped"`
	// Kernel counts pairwise set-kernel dispatches at this level by route
	// (layout pair + chosen algorithm) — the evidence for which cells of
	// the mixed-intersection matrix the level actually exercised.
	Kernel set.KernelStats `json:"kernel_routes,omitzero"`
}

func (l *LevelStats) add(o *LevelStats) {
	l.Intersections += o.Intersections
	l.InputCard += o.InputCard
	l.OutputCard += o.OutputCard
	l.Probes += o.Probes
	l.Skipped += o.Skipped
	l.Kernel.Add(&o.Kernel)
}

// BagStats aggregates one bag execution of the plan's Yannakakis pass.
type BagStats struct {
	// BagID matches BagPlan.ID; -1 is the final assembly join.
	BagID    int      `json:"bag_id"`
	Attrs    []string `json:"attrs,omitempty"`
	OutAttrs []string `json:"out_attrs,omitempty"`
	// Levels holds per-loop-level counters in loop-nest order.
	Levels []LevelStats `json:"levels,omitempty"`
	// Emitted counts output rows (or scalar folds) this bag produced,
	// pre-dedup: materialization may ⊕-combine duplicates.
	Emitted int64 `json:"emitted"`
	// WallUS is the bag's wall-clock execution time in microseconds.
	WallUS int64 `json:"wall_us"`
	// Reused marks a dedup'd bag whose result came from ReusedFrom
	// (App. B.2); no loop nest ran.
	Reused     bool `json:"reused,omitempty"`
	ReusedFrom int  `json:"reused_from,omitempty"`
	// SelectionMiss marks a bag short-circuited to an empty result by an
	// absent pre-descent selection constant.
	SelectionMiss bool `json:"selection_miss,omitempty"`
}

// ExecStats is one run's collected statistics, in bag execution order
// (bottom-up, assembly last).
type ExecStats struct {
	Bags []*BagStats `json:"bags"`
}

// TotalEmitted sums emitted rows across bags.
func (st *ExecStats) TotalEmitted() int64 {
	if st == nil {
		return 0
	}
	var n int64
	for _, b := range st.Bags {
		n += b.Emitted
	}
	return n
}

// newLevelCounters allocates a level-counter slice with two pad elements
// on each side, so concurrent workers' hot counters land on different
// cache lines (the merge after the pool drains reads them anyway, but
// false sharing during the run costs real throughput).
func newLevelCounters(n int) []LevelStats {
	b := make([]LevelStats, n+4)
	return b[2 : n+2 : n+2]
}

// noteIntersect books one multi-way intersection at a level: inputs are
// the participating set cardinalities, output the result cardinality.
// Callers guard on ex.lc != nil.
func (ex *bagExec) noteIntersect(lvl int, out int) {
	l := &ex.lc[lvl]
	l.Intersections++
	for _, r := range ex.perLevel[lvl] {
		l.InputCard += int64(ex.levelCard(r))
	}
	l.OutputCard += int64(out)
}

// mergeCounters folds a worker clone's counters into the coordinator.
func (ex *bagExec) mergeCounters(w *worker) {
	if w.ex != ex {
		for i := range w.ex.lc {
			ex.lc[i].add(&w.ex.lc[i])
		}
	}
	ex.emits += w.emits
}

// drainInto moves the accumulated counters into the bag's stats record.
func (ex *bagExec) drainInto(bs *BagStats) {
	for i := range ex.lc {
		bs.Levels[i].add(&ex.lc[i])
	}
	bs.Emitted += ex.emits
}
