package exec

import (
	"fmt"
	"sort"
	"testing"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/gen"
)

func mustParse(t *testing.T, query string) *datalog.Program {
	t.Helper()
	prog, err := datalog.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

const qTriangleListing = `Tri(x,y,z) :- R(x,y),S(y,z),T(x,z).`

func TestLimitPushdownTriangleListing(t *testing.T) {
	g := testGraph(200, 1500, 11)
	db := dbWithGraph(g)
	total := int(bruteTriangles(g))
	if total < 50 {
		t.Fatalf("graph too sparse for the test: %d triangles", total)
	}

	for _, par := range []int{1, 8} {
		limit := 25
		res := mustRun(t, db, qTriangleListing, Options{Limit: limit, Parallelism: par})
		if !res.Truncated {
			t.Fatalf("par=%d: expected truncated result", par)
		}
		// The stop is cooperative: every worker finishes its current
		// candidate, so the result holds at least `limit` tuples and at
		// most a small overshoot — never the full join.
		if got := res.Cardinality(); got < limit || got >= total {
			t.Fatalf("par=%d: cardinality=%d want [%d,%d)", par, got, limit, total)
		}
		// Whatever was materialized must be real triangles.
		res.ForEach(func(tp []uint32, _ float64) {
			if !hasEdge(g, tp[0], tp[1]) || !hasEdge(g, tp[1], tp[2]) || !hasEdge(g, tp[0], tp[2]) {
				t.Fatalf("par=%d: non-triangle %v in limited result", par, tp)
			}
		})
	}

	// A limit above the full cardinality must not truncate anything.
	res := mustRun(t, db, qTriangleListing, Options{Limit: total + 1})
	if res.Truncated || res.Cardinality() != total {
		t.Fatalf("limit>total: card=%d truncated=%v want %d,false", res.Cardinality(), res.Truncated, total)
	}
}

// TestLimitProjectedCountsDistinct pins the post-dedup limit semantics:
// a projected listing (P2 projects y away, so the loop nest emits the
// same (x,z) pair once per witness y) with limit k must return at least
// k distinct tuples whenever the full result has that many — the budget
// counts distinct output tuples, not pre-dedup emitted rows.
func TestLimitProjectedCountsDistinct(t *testing.T) {
	g := testGraph(120, 2400, 17) // dense enough that (x,z) pairs have many witnesses
	db := dbWithGraph(g)
	const q = `P2(x,z) :- R(x,y),S(y,z).`

	full := mustRun(t, db, q, OptDefault)
	total := full.Cardinality()
	if total < 200 {
		t.Fatalf("graph too sparse: %d distinct 2-paths", total)
	}

	for _, par := range []int{1, 8} {
		limit := 50
		res := mustRun(t, db, q, Options{Limit: limit, Parallelism: par})
		if !res.Truncated {
			t.Fatalf("par=%d: expected truncated result", par)
		}
		if got := res.Cardinality(); got < limit || got >= total {
			t.Fatalf("par=%d: %d distinct tuples, want [%d,%d) — limit must count post-dedup",
				par, got, limit, total)
		}
		// Every returned pair must be a real 2-path.
		res.ForEach(func(tp []uint32, _ float64) {
			okPath := false
			for _, y := range g.Adj[tp[0]] {
				if hasEdge(g, y, tp[1]) {
					okPath = true
					break
				}
			}
			if !okPath {
				t.Fatalf("par=%d: %v is not a 2-path", par, tp)
			}
		})
	}
}

func TestLimitIgnoredForAggregates(t *testing.T) {
	g := testGraph(150, 900, 12)
	db := dbWithGraph(g)
	want := mustRun(t, db, qTriangleCount, OptDefault).Scalar()
	res := mustRun(t, db, qTriangleCount, Options{Limit: 1})
	if res.Truncated || res.Scalar() != want {
		t.Fatalf("aggregate under limit: got %v (truncated=%v) want %v", res.Scalar(), res.Truncated, want)
	}
}

func TestLimitPreparedPerRunOverride(t *testing.T) {
	g := testGraph(150, 900, 13)
	db := dbWithGraph(g)
	prog := mustParse(t, qTriangleListing)
	pr, err := Prepare(db, prog, OptDefault)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	full, err := pr.Run(db.Fork())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	limited, err := pr.RunLimit(db.Fork(), 10)
	if err != nil {
		t.Fatalf("run limited: %v", err)
	}
	if !limited.Truncated || limited.Cardinality() >= full.Cardinality() {
		t.Fatalf("limited run: card=%d truncated=%v (full=%d)",
			limited.Cardinality(), limited.Truncated, full.Cardinality())
	}
	// The same prepared plan must still serve unlimited runs.
	again, err := pr.Run(db.Fork())
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if again.Truncated || again.Cardinality() != full.Cardinality() {
		t.Fatalf("full rerun after limited: card=%d truncated=%v", again.Cardinality(), again.Truncated)
	}
}

// TestWorkStealingMatchesSequential pins the work-stealing scheduler
// against single-threaded execution on a power-law graph (the skewed
// degree distribution the block scheduler exists for): identical tuples
// and annotations regardless of worker count.
func TestWorkStealingMatchesSequential(t *testing.T) {
	g := gen.PowerLaw(400, 4000, 2.2, 21)
	db := dbWithGraph(g)
	queries := []string{
		qTriangleListing,
		`P2(x,z) :- R(x,y),S(y,z).`,
		qTriangleCount,
		`Deg(x;w:long) :- Edge(x,y); w=<<COUNT(y)>>.`,
	}
	for _, q := range queries {
		want := resultKey(t, mustRun(t, db, q, Options{Parallelism: 1}))
		for _, par := range []int{2, 4, 16} {
			got := resultKey(t, mustRun(t, db, q, Options{Parallelism: par}))
			if got != want {
				t.Fatalf("query %q: parallelism %d diverges from sequential", q, par)
			}
		}
	}
}

// resultKey renders a result into a canonical comparable string.
func resultKey(t *testing.T, res *Result) string {
	t.Helper()
	if res.Trie.Arity == 0 {
		return fmt.Sprintf("scalar:%v", res.Scalar())
	}
	var rows []string
	res.ForEach(func(tp []uint32, ann float64) {
		rows = append(rows, fmt.Sprintf("%v:%v", tp, ann))
	})
	sort.Strings(rows)
	return fmt.Sprintf("%d|%v", res.Cardinality(), rows)
}
