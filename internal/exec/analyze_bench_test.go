package exec

import (
	"testing"
)

// Benchmarks for the bench-smoke CI job: triangle count and 2-path
// listing, with and without the EXPLAIN ANALYZE collector. The Off
// variants measure the default serving path (instrumentation behind nil
// checks); the On variants bound the collector's cost.

func benchAnalyze(b *testing.B, query string, collect bool) {
	g := testGraph(2000, 40000, 13)
	db := dbWithGraph(g)
	pr := prepareQ(b, db, query)
	if _, err := pr.RunWith(db.Fork(), RunParams{}); err != nil {
		b.Fatal(err) // warm lazily built indexes
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.RunWith(db.Fork(), RunParams{Collect: collect}); err != nil {
			b.Fatal(err)
		}
	}
}

const (
	benchTriangleQ = `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`
	benchPath2Q    = `P(x,z) :- Edge(x,y),Edge(y,z).`
)

func BenchmarkTriangleAnalyzeOff(b *testing.B) { benchAnalyze(b, benchTriangleQ, false) }
func BenchmarkTriangleAnalyzeOn(b *testing.B)  { benchAnalyze(b, benchTriangleQ, true) }
func BenchmarkPath2AnalyzeOff(b *testing.B)    { benchAnalyze(b, benchPath2Q, false) }
func BenchmarkPath2AnalyzeOn(b *testing.B)     { benchAnalyze(b, benchPath2Q, true) }
