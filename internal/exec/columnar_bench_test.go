package exec

import (
	"testing"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
)

// Materialization-heavy benchmarks: listing queries whose output dwarfs
// their intermediate work, so builder and emit costs dominate.

func benchListing(b *testing.B, query string, par int) {
	benchListingOn(b, gen.PowerLaw(3000, 60000, 2.2, 5), query, par)
}

func benchListingOn(b *testing.B, g *graph.Graph, query string, par int) {
	db := dbWithGraph(g)
	prog, err := datalog.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := Prepare(db, prog, Options{Parallelism: par})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pr.Run(db.Fork())
		if err != nil {
			b.Fatal(err)
		}
		if res.Cardinality() == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTriangleListing(b *testing.B) {
	benchListing(b, `Tri(x,y,z) :- R(x,y),S(y,z),T(x,z).`, 0)
}

func BenchmarkTriangleListingSerial(b *testing.B) {
	benchListing(b, `Tri(x,y,z) :- R(x,y),S(y,z),T(x,z).`, 1)
}

func BenchmarkTwoPathListing(b *testing.B) {
	// Smaller graph: the 2-path output grows with Σdeg², which explodes
	// under power-law skew.
	benchListingOn(b, gen.PowerLaw(1200, 15000, 2.2, 5), `P2(x,z) :- R(x,y),S(y,z).`, 0)
}

func BenchmarkTriangleCount(b *testing.B) {
	benchListing(b, `TC(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.`, 0)
}
