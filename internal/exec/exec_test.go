package exec

import (
	"math"
	"math/rand"
	"testing"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// testGraph returns a small undirected random graph for correctness tests.
func testGraph(n, m int, seed int64) *graph.Graph {
	return gen.ErdosRenyi(n, m, seed)
}

// dbWithGraph registers g under every relation alias the Table 1 queries
// use (R,S,T,U,V,Q,R2,S2,T2,Edge all name the edge relation, as in the
// paper's self-join pattern queries).
func dbWithGraph(g *graph.Graph) *DB {
	db := NewDB()
	for _, name := range []string{"R", "S", "T", "U", "V", "Q", "R2", "S2", "T2", "Edge"} {
		db.AddGraph(name, g, nil, "auto")
	}
	return db
}

func mustRun(t *testing.T, db *DB, query string, opts Options) *Result {
	t.Helper()
	prog, err := datalog.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := RunProgram(db, prog, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// --- brute force references ------------------------------------------

func hasEdge(g *graph.Graph, u, v uint32) bool {
	ns := g.Adj[u]
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == v
}

func bruteTriangles(g *graph.Graph) int64 {
	var n int64
	for x := 0; x < g.N; x++ {
		for _, y := range g.Adj[x] {
			for _, z := range g.Adj[y] {
				if hasEdge(g, uint32(x), z) {
					n++
				}
			}
		}
	}
	return n
}

func brute4Cliques(g *graph.Graph) int64 {
	var n int64
	for x := 0; x < g.N; x++ {
		for _, y := range g.Adj[x] {
			for _, z := range g.Adj[y] {
				if !hasEdge(g, uint32(x), z) {
					continue
				}
				for _, w := range g.Adj[z] {
					if hasEdge(g, uint32(x), w) && hasEdge(g, y, w) {
						n++
					}
				}
			}
		}
	}
	return n
}

func bruteLollipop(g *graph.Graph) int64 {
	var n int64
	for x := 0; x < g.N; x++ {
		for _, y := range g.Adj[x] {
			for _, z := range g.Adj[y] {
				if hasEdge(g, uint32(x), z) {
					n += int64(len(g.Adj[x])) // any w adjacent to x
				}
			}
		}
	}
	return n
}

func bruteBarbell(g *graph.Graph) int64 {
	// Triangle count per vertex.
	triAt := make([]int64, g.N)
	for x := 0; x < g.N; x++ {
		for _, y := range g.Adj[x] {
			for _, z := range g.Adj[y] {
				if hasEdge(g, uint32(x), z) {
					triAt[x]++
				}
			}
		}
	}
	var n int64
	for x := 0; x < g.N; x++ {
		for _, x2 := range g.Adj[x] {
			n += triAt[x] * triAt[x2]
		}
	}
	return n
}

// --- pattern queries ---------------------------------------------------

const qTriangleCount = `TC(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.`

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := testGraph(300, 2000, 1)
	db := dbWithGraph(g)
	want := bruteTriangles(g)
	for name, opts := range map[string]Options{
		"default": OptDefault,
		"-R":      OptNoLayout,
		"-RA":     OptNoLayoutNoAlgo,
		"-S":      OptNoSIMD,
		"-GHD":    OptNoGHD,
		"serial":  {Parallelism: 1},
	} {
		res := mustRun(t, db, qTriangleCount, opts)
		if got := int64(res.Scalar()); got != want {
			t.Fatalf("%s: triangles=%d want %d", name, got, want)
		}
	}
}

func TestTriangleListing(t *testing.T) {
	g := testGraph(100, 500, 2)
	db := dbWithGraph(g)
	res := mustRun(t, db, `Tri(x,y,z) :- R(x,y),S(y,z),T(x,z).`, OptDefault)
	if int64(res.Cardinality()) != bruteTriangles(g) {
		t.Fatalf("listing card=%d want %d", res.Cardinality(), bruteTriangles(g))
	}
	res.ForEach(func(tp []uint32, _ float64) {
		if !hasEdge(g, tp[0], tp[1]) || !hasEdge(g, tp[1], tp[2]) || !hasEdge(g, tp[0], tp[2]) {
			t.Fatalf("non-triangle %v in result", tp)
		}
	})
}

func TestFourCliqueCount(t *testing.T) {
	g := testGraph(150, 1200, 3)
	db := dbWithGraph(g)
	want := brute4Cliques(g)
	res := mustRun(t, db,
		`K4(;w:long) :- R(x,y),S(y,z),T(x,z),U(x,w_),V(y,w_),Q(z,w_); w=<<COUNT(*)>>.`,
		OptDefault)
	if got := int64(res.Scalar()); got != want {
		t.Fatalf("4-cliques=%d want %d", got, want)
	}
}

func TestLollipopCount(t *testing.T) {
	g := testGraph(200, 1200, 4)
	db := dbWithGraph(g)
	want := bruteLollipop(g)
	for name, opts := range map[string]Options{"default": OptDefault, "-GHD": OptNoGHD} {
		res := mustRun(t, db,
			`L31(;c:long) :- R(x,y),S(y,z),T(x,z),U(x,w); c=<<COUNT(*)>>.`, opts)
		if got := int64(res.Scalar()); got != want {
			t.Fatalf("%s: lollipop=%d want %d", name, got, want)
		}
	}
}

func TestBarbellCount(t *testing.T) {
	g := testGraph(120, 700, 5)
	db := dbWithGraph(g)
	want := bruteBarbell(g)
	for name, opts := range map[string]Options{
		"default":  OptDefault,
		"-GHD":     OptNoGHD,
		"no-dedup": {NoBagDedup: true},
	} {
		res := mustRun(t, db,
			`B31(;c:long) :- R(x,y),S(y,z),T(x,z),U(x,x2),R2(x2,y2),S2(y2,z2),T2(x2,z2); c=<<COUNT(*)>>.`,
			opts)
		if got := int64(res.Scalar()); got != want {
			t.Fatalf("%s: barbell=%d want %d", name, got, want)
		}
	}
}

func TestBarbellDedupDetected(t *testing.T) {
	g := testGraph(60, 300, 6)
	db := dbWithGraph(g)
	prog, err := datalog.Parse(
		`B31(;c:long) :- R(x,y),S(y,z),T(x,z),U(x,x2),R(x2,y2),S(y2,z2),T(x2,z2); c=<<COUNT(*)>>.`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(db, prog.Rules[0], OptDefault)
	if err != nil {
		t.Fatal(err)
	}
	// The two triangle bags use identical relations: one must dedup.
	found := false
	var visit func(bp *BagPlan)
	visit = func(bp *BagPlan) {
		if bp.DedupOf >= 0 {
			found = true
		}
		for _, c := range bp.Children {
			visit(c)
		}
	}
	visit(p.Root)
	if !found {
		t.Fatalf("no deduplicated bag found:\n%s", p.Explain())
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(res.Scalar()); got != bruteBarbell(g) {
		t.Fatalf("dedup barbell=%d want %d", got, bruteBarbell(g))
	}
}

// --- selections ---------------------------------------------------------

func TestSelectionQueries(t *testing.T) {
	g := testGraph(150, 1200, 7)
	db := dbWithGraph(g)
	node := g.MaxDegreeNode()

	// Brute-force K4 containing `node` at position x.
	var want int64
	x := node
	for _, y := range g.Adj[x] {
		for _, z := range g.Adj[y] {
			if !hasEdge(g, x, z) {
				continue
			}
			for _, w := range g.Adj[z] {
				if hasEdge(g, x, w) && hasEdge(g, y, w) {
					want++
				}
			}
		}
	}
	for name, opts := range map[string]Options{
		"pushdown":    OptDefault,
		"no-pushdown": {NoPushdown: true},
	} {
		res := mustRun(t, db,
			`SK4(;c:long) :- R(x,y),S(y,z),T(x,z),U(x,w_),V(y,w_),Q(z,w_),Edge("`+
				itoa(int64(node))+`",x); c=<<COUNT(*)>>.`, opts)
		// The selection atom Edge(node,x) restricts x to neighbors of node.
		var wantSel int64
		for _, xx := range g.Adj[node] {
			for _, y := range g.Adj[xx] {
				for _, z := range g.Adj[y] {
					if !hasEdge(g, xx, z) {
						continue
					}
					for _, w := range g.Adj[z] {
						if hasEdge(g, xx, w) && hasEdge(g, y, w) {
							wantSel++
						}
					}
				}
			}
		}
		if got := int64(res.Scalar()); got != wantSel {
			t.Fatalf("%s: SK4=%d want %d", name, got, wantSel)
		}
	}
}

func TestSelectionMissingConstant(t *testing.T) {
	g := testGraph(50, 200, 8)
	db := dbWithGraph(g)
	if _, err := datalog.Parse(`Q(x) :- Edge("99999",x).`); err != nil {
		t.Fatal(err)
	}
	prog, _ := datalog.Parse(`Q(x) :- Edge("49",x).`)
	res, err := RunProgram(db, prog, OptDefault)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality() != len(g.Adj[49]) {
		t.Fatalf("neighbors=%d want %d", res.Cardinality(), len(g.Adj[49]))
	}
}

// --- aggregations --------------------------------------------------------

func TestCountDistinctSemantics(t *testing.T) {
	// N(;w) :- Edge(x,y); w=<<COUNT(x)>> counts distinct sources
	// (the paper's node-count idiom for PageRank).
	g := testGraph(80, 400, 9)
	db := dbWithGraph(g)
	res := mustRun(t, db, `N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.`, OptDefault)
	sources := 0
	for _, ns := range g.Adj {
		if len(ns) > 0 {
			sources++
		}
	}
	if got := int(res.Scalar()); got != sources {
		t.Fatalf("COUNT(x)=%d want %d distinct sources", got, sources)
	}
}

func TestGroupedCount(t *testing.T) {
	// Per-vertex degree via Deg(x;d) :- Edge(x,y); d=<<COUNT(*)>>.
	g := testGraph(80, 400, 10)
	db := dbWithGraph(g)
	res := mustRun(t, db, `Deg(x;d:long) :- Edge(x,y); d=<<COUNT(*)>>.`, OptDefault)
	res.ForEach(func(tp []uint32, ann float64) {
		if int(ann) != len(g.Adj[tp[0]]) {
			t.Fatalf("deg(%d)=%v want %d", tp[0], ann, len(g.Adj[tp[0]]))
		}
	})
	if res.Cardinality() == 0 {
		t.Fatal("empty degree relation")
	}
}

func TestSumOverAnnotatedRelation(t *testing.T) {
	// W(x;s) :- Edge(x,z),Val(z); s=<<SUM(z)>> where Val(z;v) carries
	// weights: s(x) = Σ_{z∈N(x)} v(z).
	g := testGraph(60, 300, 11)
	db := dbWithGraph(g)
	vb := trie.NewColumnarBuilder(1, semiring.Sum, nil)
	vals := make([]float64, g.N)
	rng := rand.New(rand.NewSource(12))
	for v := 0; v < g.N; v++ {
		vals[v] = float64(rng.Intn(10))
		vb.AddAnn(vals[v], uint32(v))
	}
	db.AddTrie("Val", vb.Build())
	res := mustRun(t, db, `W(x;s:float) :- Edge(x,z),Val(z); s=<<SUM(z)>>.`, OptDefault)
	res.ForEach(func(tp []uint32, ann float64) {
		var want float64
		for _, z := range g.Adj[tp[0]] {
			want += vals[z]
		}
		if math.Abs(ann-want) > 1e-9 {
			t.Fatalf("W(%d)=%v want %v", tp[0], ann, want)
		}
	})
}

func TestMinAggregate(t *testing.T) {
	// M(x;m) :- Edge(x,z),Val(z); m=<<MIN(z)>>+1.
	g := testGraph(60, 300, 13)
	db := dbWithGraph(g)
	vb := trie.NewColumnarBuilder(1, semiring.Min, nil)
	vals := make([]float64, g.N)
	rng := rand.New(rand.NewSource(14))
	for v := 0; v < g.N; v++ {
		vals[v] = float64(rng.Intn(100))
		vb.AddAnn(vals[v], uint32(v))
	}
	db.AddTrie("Val", vb.Build())
	res := mustRun(t, db, `M(x;m:int) :- Edge(x,z),Val(z); m=<<MIN(z)>>+1.`, OptDefault)
	res.ForEach(func(tp []uint32, ann float64) {
		want := math.Inf(1)
		for _, z := range g.Adj[tp[0]] {
			want = math.Min(want, vals[z])
		}
		if ann != want+1 {
			t.Fatalf("M(%d)=%v want %v", tp[0], ann, want+1)
		}
	})
}

func TestMatrixMultiply(t *testing.T) {
	// Sparse matrix multiplication via semiring annotations (§2.2: "more
	// sophisticated operations such as matrix multiplication"):
	// C(i,k) = Σ_j A(i,j)·B(j,k). The head variables span two GHD bags,
	// exercising the spanning-aggregate assembly.
	rng := rand.New(rand.NewSource(77))
	const n = 20
	a := make([][]float64, n)
	bm := make([][]float64, n)
	ab := trie.NewColumnarBuilder(2, semiring.Sum, nil)
	bb := trie.NewColumnarBuilder(2, semiring.Sum, nil)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		bm[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				a[i][j] = float64(1 + rng.Intn(9))
				ab.AddAnn(a[i][j], uint32(i), uint32(j))
			}
			if rng.Intn(3) == 0 {
				bm[i][j] = float64(1 + rng.Intn(9))
				bb.AddAnn(bm[i][j], uint32(i), uint32(j))
			}
		}
	}
	db := NewDB()
	db.AddTrie("A", ab.Build())
	db.AddTrie("B", bb.Build())
	res := mustRun(t, db, `C(i,k;v:float) :- A(i,j),B(j,k); v=<<SUM(j)>>.`, OptDefault)
	want := make([][]float64, n)
	nonzero := 0
	for i := 0; i < n; i++ {
		want[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				want[i][k] += a[i][j] * bm[j][k]
			}
			if want[i][k] != 0 {
				nonzero++
			}
		}
	}
	got := 0
	res.ForEach(func(tp []uint32, ann float64) {
		got++
		if math.Abs(ann-want[tp[0]][tp[1]]) > 1e-9 {
			t.Fatalf("C[%d][%d]=%v want %v", tp[0], tp[1], ann, want[tp[0]][tp[1]])
		}
	})
	if got != nonzero {
		t.Fatalf("nonzeros=%d want %d", got, nonzero)
	}
}

// --- recursion -----------------------------------------------------------

func refPageRank(g *graph.Graph, iters int) []float64 {
	n := 0
	for _, ns := range g.Adj {
		if len(ns) > 0 {
			n++
		}
	}
	pr := make([]float64, g.N)
	for v := range pr {
		pr[v] = 1 / float64(n)
	}
	inv := make([]float64, g.N)
	for v := range inv {
		if d := len(g.Adj[v]); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, g.N)
		for x := 0; x < g.N; x++ {
			var s float64
			for _, z := range g.Adj[x] {
				s += pr[z] * inv[z]
			}
			next[x] = 0.15 + 0.85*s
		}
		pr = next
	}
	return pr
}

const qPageRank = `
N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.
InvDeg(x;d:float) :- Edge(x,y); d=1/<<COUNT(*)>>.
PageRank(x;y:float) :- Edge(x,z); y=1/N.
PageRank(x;y:float)*[i=5] :- Edge(x,z),PageRank(z),InvDeg(z); y=0.15+0.85*<<SUM(z)>>.
`

func TestPageRank(t *testing.T) {
	g := testGraph(100, 600, 15)
	db := dbWithGraph(g)
	res := mustRun(t, db, qPageRank, OptDefault)
	want := refPageRank(g, 5)
	count := 0
	res.ForEach(func(tp []uint32, ann float64) {
		count++
		if math.Abs(ann-want[tp[0]]) > 1e-9 {
			t.Fatalf("PR(%d)=%v want %v", tp[0], ann, want[tp[0]])
		}
	})
	if count == 0 {
		t.Fatal("empty PageRank result")
	}
}

func refSSSP(g *graph.Graph, start uint32) map[uint32]float64 {
	dist := map[uint32]float64{}
	// BFS from start; dist excludes start itself (the paper's query
	// assigns via Edge("start",x)).
	frontier := []uint32{}
	for _, v := range g.Adj[start] {
		dist[v] = 1
		frontier = append(frontier, v)
	}
	d := float64(1)
	for len(frontier) > 0 {
		d++
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Adj[u] {
				if _, ok := dist[v]; !ok {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

func TestSSSP(t *testing.T) {
	g := testGraph(150, 500, 16)
	db := dbWithGraph(g)
	start := g.MaxDegreeNode()
	res := mustRun(t, db, `
SSSP(x;y:int) :- Edge("`+itoa(int64(start))+`",x); y=1.
SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.
`, OptDefault)
	want := refSSSP(g, start)
	got := map[uint32]float64{}
	res.ForEach(func(tp []uint32, ann float64) { got[tp[0]] = ann })
	// Every reachable vertex must carry the BFS distance. The start
	// vertex itself may additionally appear (cycles back into it).
	for v, d := range want {
		if got[v] != d && v != start {
			t.Fatalf("dist(%d)=%v want %v", v, got[v], d)
		}
	}
	for v := range got {
		if _, ok := want[v]; !ok && v != start {
			t.Fatalf("unreachable vertex %d got dist %v", v, got[v])
		}
	}
}

func TestSSSPNaiveMatchesSeminaive(t *testing.T) {
	g := testGraph(120, 400, 18)
	db := dbWithGraph(g)
	start := g.MaxDegreeNode()
	q := `
SSSP(x;y:int) :- Edge("` + itoa(int64(start)) + `",x); y=1.
SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.
`
	semi := mustRun(t, db, q, OptDefault)
	db2 := dbWithGraph(g)
	naive := mustRun(t, db2, q, Options{NaiveRecursion: true})
	semiM := map[uint32]float64{}
	semi.ForEach(func(tp []uint32, ann float64) { semiM[tp[0]] = ann })
	naiveM := map[uint32]float64{}
	naive.ForEach(func(tp []uint32, ann float64) { naiveM[tp[0]] = ann })
	if len(semiM) != len(naiveM) {
		t.Fatalf("cardinality: seminaive %d vs naive %d", len(semiM), len(naiveM))
	}
	for v, d := range semiM {
		if naiveM[v] != d {
			t.Fatalf("dist(%d): seminaive %v vs naive %v", v, d, naiveM[v])
		}
	}
}

// --- plumbing ------------------------------------------------------------

func TestExplainRendersLoopNest(t *testing.T) {
	g := testGraph(30, 100, 17)
	db := dbWithGraph(g)
	prog, _ := datalog.Parse(qTriangleCount)
	p, err := Compile(db, prog.Rules[0], OptDefault)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Explain()
	for _, frag := range []string{"attribute order", "∩", "for", "aggregate over"} {
		if !contains(s, frag) {
			t.Fatalf("Explain missing %q:\n%s", frag, s)
		}
	}
}

func TestUnknownRelationError(t *testing.T) {
	db := NewDB()
	prog, _ := datalog.Parse(`Q(x) :- Nope(x,y).`)
	if _, err := RunProgram(db, prog, OptDefault); err == nil {
		t.Fatal("unknown relation should error")
	}
}

func TestIndexPermutations(t *testing.T) {
	db := NewDB()
	b := trie.NewColumnarBuilder(2, semiring.None, nil)
	b.Add(1, 10)
	b.Add(2, 20)
	b.Add(2, 30)
	rel := db.AddTrie("R", b.Build())
	rev := rel.Index([]int{1, 0}, trie.AutoLayout, "auto")
	if rev.Cardinality() != 3 {
		t.Fatalf("card=%d", rev.Cardinality())
	}
	n := rev.Root.Child(20)
	if n == nil || n.Set.Card() != 1 || !n.Set.Contains(2) {
		t.Fatal("reversed index wrong")
	}
	// Cached: same pointer.
	if rel.Index([]int{1, 0}, trie.AutoLayout, "auto") != rev {
		t.Fatal("index not cached")
	}
}

func itoa(v int64) string {
	return fmtInt(v)
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
