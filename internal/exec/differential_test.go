package exec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// naiveEval evaluates a conjunctive rule by brute-force nested loops over
// the cross product of candidate bindings, with semiring aggregation —
// the specification our engine is tested against.
type naiveRel struct {
	arity  int
	tuples [][]uint32
	anns   []float64
	op     semiring.Op
	annot  bool
}

func naiveEval(rels map[string]*naiveRel, rule *datalog.Rule) (map[string]float64, semiring.Op) {
	vars := rule.Vars()
	idx := map[string]int{}
	for i, v := range vars {
		idx[v] = i
	}
	op := semiring.Sum
	aggVar := "*"
	if rule.Assign != nil {
		if agg := datalog.FindAgg(rule.Assign.Expr); agg != nil {
			op, _ = semiring.ParseOp(agg.Op)
			aggVar = agg.Arg
		}
	}
	type headKeyed struct {
		ann float64
		set bool
	}
	groups := map[string]*headKeyed{}
	// For distinct-variable aggregate semantics (COUNT(x)), dedup on
	// (head vars, agg var) bindings.
	seen := map[string]bool{}

	binding := make([]uint32, len(vars))
	var rec func(ai int, ann float64)
	rec = func(ai int, ann float64) {
		if ai == len(rule.Atoms) {
			var hk strings.Builder
			for _, v := range rule.Head.Vars {
				fmt.Fprintf(&hk, "%d,", binding[idx[v]])
			}
			key := hk.String()
			if aggVar != "*" {
				dk := key + "|" + fmt.Sprint(binding[idx[aggVar]])
				if seen[dk] {
					return
				}
				seen[dk] = true
			}
			g := groups[key]
			if g == nil {
				g = &headKeyed{ann: op.Zero()}
				groups[key] = g
			}
			g.ann = op.Add(g.ann, ann)
			g.set = true
			return
		}
		atom := rule.Atoms[ai]
		rel := rels[atom.Pred]
		for ti, tp := range rel.tuples {
			ok := true
			saved := map[int]uint32{}
			bound := map[int]bool{}
			for pos, arg := range atom.Args {
				if arg.Const != nil {
					if tp[pos] != uint32(arg.Const.Num) {
						ok = false
						break
					}
					continue
				}
				vi := idx[arg.Var]
				if bnd, was := varBound(binding, vi, ai, rule, idx); was {
					if bnd != tp[pos] {
						ok = false
						break
					}
				} else if prev, dup := saved[vi]; dup {
					if prev != tp[pos] {
						ok = false
						break
					}
				} else {
					saved[vi] = tp[pos]
					bound[vi] = true
				}
			}
			_ = ti
			if !ok {
				continue
			}
			for vi, val := range saved {
				binding[vi] = val
			}
			a := ann
			if rel.annot {
				a = op.Mul(a, rel.anns[indexOfTuple(rel, tp)])
			}
			markBound(ai, saved)
			rec(ai+1, a)
			unmarkBound(ai, saved)
		}
	}
	boundState = map[int]bool{}
	rec(0, op.One())
	out := map[string]float64{}
	for k, g := range groups {
		if g.set {
			out[k] = g.ann
		}
	}
	return out, op
}

// Variable binding bookkeeping for the naive evaluator: a variable is
// bound once any earlier atom (or earlier position) fixed it.
var boundState map[int]bool

func varBound(binding []uint32, vi, ai int, rule *datalog.Rule, idx map[string]int) (uint32, bool) {
	if boundState[vi] {
		return binding[vi], true
	}
	return 0, false
}

func markBound(ai int, saved map[int]uint32) {
	for vi := range saved {
		boundState[vi] = true
	}
}

func unmarkBound(ai int, saved map[int]uint32) {
	for vi := range saved {
		delete(boundState, vi)
	}
}

func indexOfTuple(r *naiveRel, tp []uint32) int {
	for i, t := range r.tuples {
		same := true
		for k := range t {
			if t[k] != tp[k] {
				same = false
				break
			}
		}
		if same {
			return i
		}
	}
	return -1
}

// randomRel builds a random relation with optional annotations.
func randomRel(rng *rand.Rand, arity, maxCard int, domain uint32, annotated bool, op semiring.Op) *naiveRel {
	// Cap at the universe size so the rejection loop terminates.
	universe := 1
	for i := 0; i < arity; i++ {
		universe *= int(domain)
	}
	if maxCard > universe {
		maxCard = universe
	}
	n := 1 + rng.Intn(maxCard)
	seen := map[string]bool{}
	r := &naiveRel{arity: arity, op: op, annot: annotated}
	for len(r.tuples) < n {
		tp := make([]uint32, arity)
		var key strings.Builder
		for i := range tp {
			tp[i] = uint32(rng.Intn(int(domain)))
			fmt.Fprintf(&key, "%d,", tp[i])
		}
		if seen[key.String()] {
			continue
		}
		seen[key.String()] = true
		r.tuples = append(r.tuples, tp)
		if annotated {
			r.anns = append(r.anns, float64(1+rng.Intn(5)))
		}
	}
	return r
}

func registerNaive(db *DB, name string, r *naiveRel) {
	op := semiring.None
	if r.annot {
		op = r.op
	}
	b := trie.NewColumnarBuilder(r.arity, op, nil)
	for i, tp := range r.tuples {
		if r.annot {
			b.AddAnn(r.anns[i], tp...)
		} else {
			b.Add(tp...)
		}
	}
	db.AddTrie(name, b.Build())
}

// TestDifferentialRandomQueries generates random conjunctive queries over
// random relations and checks the engine (under several option sets)
// against the brute-force evaluator — the strongest end-to-end invariant
// in the suite.
func TestDifferentialRandomQueries(t *testing.T) {
	shapes := []string{
		`Q(a) :- R(a,b).`,
		`Q(a,c) :- R(a,b),S(b,c).`,
		`Q(a;n:long) :- R(a,b),S(b,c); n=<<COUNT(*)>>.`,
		`Q(;n:long) :- R(a,b),S(b,c),R(a,c); n=<<COUNT(*)>>.`,
		`Q(a;n:long) :- R(a,b),S(a,c); n=<<COUNT(b)>>.`,
		`Q(b;s:float) :- R(a,b),W(a); s=<<SUM(a)>>.`,
		`Q(b;s:float) :- R(a,b),W(a); s=<<MIN(a)>>.`,
		`Q(a,d) :- R(a,b),S(b,c),T(c,d).`,
		`Q(;n:long) :- R(a,b),S(b,c),T(c,d),R(a,d); n=<<COUNT(*)>>.`,
		`Q(a) :- R(a,b),S(b,7).`,
	}
	optionSets := map[string]Options{
		"default": OptDefault,
		"-RA":     OptNoLayoutNoAlgo,
		"-GHD":    OptNoGHD,
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		shape := shapes[trial%len(shapes)]
		rule, err := datalog.ParseRule(shape)
		if err != nil {
			t.Fatalf("shape %q: %v", shape, err)
		}
		op := semiring.Sum
		if rule.Assign != nil {
			if agg := datalog.FindAgg(rule.Assign.Expr); agg != nil {
				op, _ = semiring.ParseOp(agg.Op)
			}
		}
		rels := map[string]*naiveRel{}
		for _, a := range rule.Atoms {
			if _, ok := rels[a.Pred]; ok {
				continue
			}
			annotated := a.Pred == "W"
			arity := len(a.Args)
			rels[a.Pred] = randomRel(rng, arity, 60, 12, annotated, op)
		}
		want, wop := naiveEval(rels, rule)
		for oname, opts := range optionSets {
			db := NewDB()
			for n, r := range rels {
				registerNaive(db, n, r)
			}
			prog := &datalog.Program{Rules: []*datalog.Rule{rule}}
			res, err := RunProgram(db, prog, opts)
			if err != nil {
				t.Fatalf("trial %d %s shape %q: %v", trial, oname, shape, err)
			}
			got := map[string]float64{}
			if res.Trie.Arity == 0 {
				if len(rule.Head.Vars) == 0 {
					key := ""
					if res.Scalar() != wop.Zero() || len(want) > 0 {
						got[key] = res.Scalar()
					}
				}
			} else {
				res.ForEach(func(tp []uint32, ann float64) {
					var sb strings.Builder
					for _, v := range tp {
						fmt.Fprintf(&sb, "%d,", v)
					}
					got[sb.String()] = ann
				})
			}
			// Un-annotated listing queries: compare tuple sets only.
			if rule.Assign == nil {
				if len(got) != len(want) {
					t.Fatalf("trial %d %s shape %q: card %d want %d",
						trial, oname, shape, len(got), len(want))
				}
				for k := range want {
					if _, ok := got[k]; !ok {
						t.Fatalf("trial %d %s shape %q: missing %v", trial, oname, shape, k)
					}
				}
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %s shape %q: groups %d want %d\n got=%v\nwant=%v",
					trial, oname, shape, len(got), len(want), got, want)
			}
			for k, w := range want {
				g, ok := got[k]
				if !ok || math.Abs(g-w) > 1e-6 {
					t.Fatalf("trial %d %s shape %q key %q: got %v want %v",
						trial, oname, shape, k, g, w)
				}
			}
		}
	}
}
