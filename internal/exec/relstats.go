package exec

import "sort"

// RelLevelStat is one (relation, column) cell of a run's loop-nest
// attribution: the share of the collected counters booked to a base
// relation at one of its original columns.
//
// Attribution is by participation: a loop level intersecting three
// atoms books its probes/intersections/skipped to all three relations
// (each at the column its trie binds at that level), so per-relation
// numbers answer "how hot is this relation's column c across the
// workload" rather than partitioning the total.
type RelLevelStat struct {
	Rel string
	// Col is the relation's original column bound at the level (the
	// canonical trie level, stable across per-query index permutations).
	Col           int
	Probes        int64
	Intersections int64
	Skipped       int64
	// WordParallel counts pairwise kernel dispatches at this cell's levels
	// that ran a word-parallel dense route (bitset∩bitset or block∩block)
	// — the heat map's evidence that the adaptive layouts engage where the
	// relation is dense.
	WordParallel int64
}

// RelationLevelStats maps a collected run's per-bag, per-level counters
// back onto the participating base relations. Child-bag atoms ("@bag"
// intermediates) are skipped — only stored relations appear. Dedup'd
// and selection-missed bags contribute nothing (no loop nest ran).
// Returns cells sorted by relation then column.
func (p *Plan) RelationLevelStats(st *ExecStats) []RelLevelStat {
	if p == nil || st == nil {
		return nil
	}
	bags := map[int]*BagPlan{}
	var walk func(bp *BagPlan)
	walk = func(bp *BagPlan) {
		if bp == nil {
			return
		}
		bags[bp.ID] = bp
		for _, c := range bp.Children {
			walk(c)
		}
	}
	walk(p.Root)
	if p.Assembly != nil {
		bags[p.Assembly.ID] = p.Assembly
	}

	type key struct {
		rel string
		col int
	}
	acc := map[key]*RelLevelStat{}
	for _, bs := range st.Bags {
		bp := bags[bs.BagID]
		if bp == nil || bs.Reused {
			continue
		}
		for _, lv := range bs.Levels {
			if lv.Probes == 0 && lv.Intersections == 0 && lv.Skipped == 0 {
				continue
			}
			for _, atom := range bp.Atoms {
				if atom.child != nil {
					continue
				}
				for al, a := range atom.Attrs {
					if a != lv.Attr || a == "" {
						continue
					}
					col := al
					if al < len(atom.Perm) {
						col = atom.Perm[al]
					}
					k := key{rel: atom.Rel, col: col}
					cell := acc[k]
					if cell == nil {
						cell = &RelLevelStat{Rel: atom.Rel, Col: col}
						acc[k] = cell
					}
					cell.Probes += lv.Probes
					cell.Intersections += lv.Intersections
					cell.Skipped += lv.Skipped
					cell.WordParallel += lv.Kernel.WordParallel()
				}
			}
		}
	}
	out := make([]RelLevelStat, 0, len(acc))
	for _, cell := range acc {
		out = append(out, *cell)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// Totals sums the loop-nest counters across every bag and level —
// the cumulative intersections/probes/skipped a workload registry
// accumulates per fingerprint.
func (st *ExecStats) Totals() (intersections, probes, skipped int64) {
	if st == nil {
		return 0, 0, 0
	}
	for _, b := range st.Bags {
		for i := range b.Levels {
			intersections += b.Levels[i].Intersections
			probes += b.Levels[i].Probes
			skipped += b.Levels[i].Skipped
		}
	}
	return intersections, probes, skipped
}
