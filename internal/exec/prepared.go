package exec

import (
	"context"
	"time"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trace"
)

// Prepared is a reusable compiled query: the parsed program plus, for
// single-rule non-recursive programs (the common served shape — every
// pattern query of Table 1), the fully compiled physical plan. Preparing
// once amortizes parsing and GHD optimization across executions, the way
// EmptyHeaded's original compiler amortizes code generation across runs.
// A Prepared is immutable and safe for concurrent Run calls: each run
// clones the plan's mutable execution state.
type Prepared struct {
	Prog *datalog.Program
	opts Options
	plan *Plan
}

// Prepare parses nothing — it compiles an already parsed program against
// db. Single-rule non-recursive programs get a cached physical plan;
// multi-rule and recursive programs keep only the parse (their later
// rules compile against relations the earlier rules produce, so their
// GHDs cannot be pinned ahead of time).
func Prepare(db *DB, prog *datalog.Program, opts Options) (*Prepared, error) {
	pr := &Prepared{Prog: prog, opts: opts}
	if len(prog.Rules) == 1 && !prog.Rules[0].Head.Recursive {
		p, err := Compile(db, prog.Rules[0], opts)
		if err != nil {
			return nil, err
		}
		pr.plan = p
	}
	return pr, nil
}

// HasPlan reports whether executions reuse a compiled physical plan
// (true) or only the parse (false).
func (pr *Prepared) HasPlan() bool { return pr.plan != nil }

// Run executes the prepared query against db — typically a Fork of the
// database the query was prepared on, so intermediate head relations stay
// session-local. The final head relation is registered in db, matching
// RunProgram semantics.
func (pr *Prepared) Run(db *DB) (*Result, error) {
	return pr.RunLimit(db, pr.opts.Limit)
}

// RunLimit executes the prepared query with a per-run listing row budget
// (see Options.Limit); limit 0 runs to completion. The budget is a
// per-execution override, so one cached plan serves requests with
// different limits.
func (pr *Prepared) RunLimit(db *DB, limit int) (*Result, error) {
	return pr.RunWith(db, RunParams{Limit: limit})
}

// RunParams carries per-execution observability and limit options.
type RunParams struct {
	// Limit is the listing row budget (0 = run to completion).
	Limit int
	// Collect enables the EXPLAIN ANALYZE counters; the run's ExecStats
	// lands in Result.Stats. Multi-rule and recursive programs execute
	// without a pinned plan and collect nothing.
	Collect bool
	// Trace, when non-nil, receives one span per executed bag plus the
	// assembly join.
	Trace *trace.Trace
	// Ctx cancels execution cooperatively (client disconnect, request
	// deadline — see Options.Ctx); nil runs without a watcher.
	Ctx context.Context
	// Kernel overrides the set-kernel configuration for this run (the
	// /query "kernel" hint): pin the uint∩uint algorithm, or force
	// bit-by-bit dense ops. Results are identical under any configuration
	// — only the dispatch routes change — so plan and result caches stay
	// valid across hints. nil keeps the prepared options.
	Kernel *set.Config
}

// RunWith executes the prepared query with per-run parameters.
func (pr *Prepared) RunWith(db *DB, rp RunParams) (*Result, error) {
	if pr.plan == nil {
		opts := pr.opts
		opts.Limit = rp.Limit
		opts.Ctx = rp.Ctx
		if rp.Kernel != nil {
			opts.Intersect = *rp.Kernel
		}
		return RunProgram(db, pr.Prog, opts)
	}
	p := pr.plan.Clone(db)
	p.opts.Limit = rp.Limit
	p.opts.Ctx = rp.Ctx
	if rp.Kernel != nil {
		p.opts.Intersect = *rp.Kernel
	}
	if rp.Collect {
		p.stats = &ExecStats{}
	}
	p.tr = rp.Trace
	res, err := runCompiled(db, p, pr.plan.Rule)
	if err != nil {
		return nil, err
	}
	db.AddTrie(res.Name, res.Trie)
	return res, nil
}

// Clone returns an independently runnable copy of a compiled plan, bound
// to db: the bag tree is deep-copied (execution materializes bag results
// into the tree), the rule/GHD/attribute metadata is shared. The clone's
// timeout state is fresh.
func (p *Plan) Clone(db *DB) *Plan {
	np := *p
	np.db = db
	np.deadline = time.Time{}
	np.stop = nil
	np.truncated = false
	np.stats = nil
	np.tr = nil
	np.opts.Ctx = nil
	m := map[*BagPlan]*BagPlan{}
	np.Root = cloneBag(p.Root, m)
	np.Assembly = cloneBag(p.Assembly, m)
	return &np
}

// cloneBag deep-copies a bag plan; m keeps sharing intact (assembly atoms
// reference bags of the main tree, dedup'd bags reference earlier ones).
func cloneBag(bp *BagPlan, m map[*BagPlan]*BagPlan) *BagPlan {
	if bp == nil {
		return nil
	}
	if c, ok := m[bp]; ok {
		return c
	}
	c := *bp
	c.result = nil
	m[bp] = &c
	if bp.Children != nil {
		c.Children = make([]*BagPlan, len(bp.Children))
		for i, ch := range bp.Children {
			c.Children[i] = cloneBag(ch, m)
		}
	}
	if bp.Atoms != nil {
		c.Atoms = make([]*AtomRef, len(bp.Atoms))
		for i, a := range bp.Atoms {
			na := *a
			na.child = cloneBag(a.child, m)
			c.Atoms[i] = &na
		}
	}
	return &c
}
