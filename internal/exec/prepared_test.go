package exec

import (
	"sync"
	"testing"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// k4DB returns a DB with the complete directed graph on 4 vertices as
// Edge (24 directed edges, 4 triangles counted as 24 ordered instances).
func k4DB() *DB {
	b := trie.NewColumnarBuilder(2, semiring.None, nil)
	for i := uint32(0); i < 4; i++ {
		for j := uint32(0); j < 4; j++ {
			if i != j {
				b.Add(i, j)
			}
		}
	}
	db := NewDB()
	db.AddTrie("Edge", b.Build())
	return db
}

const triangleQ = `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`

func TestPreparedConcurrentRunsMatchSequential(t *testing.T) {
	db := k4DB()
	prog, err := datalog.Parse(triangleQ)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prepare(db, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.HasPlan() {
		t.Fatal("single-rule program should carry a compiled plan")
	}
	seq, err := pr.Run(db.Fork())
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Scalar()
	if want == 0 {
		t.Fatal("expected non-zero triangle count")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pr.Run(db.Fork())
			if err != nil {
				errs <- err
				return
			}
			if got := res.Scalar(); got != want {
				t.Errorf("concurrent run: got %g, want %g", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestForkIsolation(t *testing.T) {
	db := k4DB()
	f := db.Fork()

	prog, err := datalog.Parse(triangleQ)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(f, prog, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Relation("TC"); !ok {
		t.Error("fork should see its own head relation TC")
	}
	if _, ok := db.Relation("TC"); ok {
		t.Error("parent must not see the fork's head relation TC")
	}

	// Dropping in a fork: the fork stops seeing Edge, the parent keeps it.
	f2 := db.Fork()
	f2.Drop("Edge")
	if _, ok := f2.Relation("Edge"); ok {
		t.Error("fork should not see dropped Edge")
	}
	if _, ok := db.Relation("Edge"); !ok {
		t.Error("parent lost Edge after fork drop")
	}
	for _, n := range f2.Names() {
		if n == "Edge" {
			t.Error("fork Names() still lists dropped Edge")
		}
	}

	// Snapshot semantics: relations loaded into the parent after the fork
	// are invisible to it.
	f3 := db.Fork()
	nb := trie.NewColumnarBuilder(1, semiring.None, nil)
	nb.Add(7)
	db.AddTrie("Late", nb.Build())
	if _, ok := f3.Relation("Late"); ok {
		t.Error("fork sees a relation loaded into the parent after Fork()")
	}
	if _, ok := db.Relation("Late"); !ok {
		t.Error("parent lost its own late relation")
	}

	// Re-adding in the fork shadows only the fork's view.
	b := trie.NewColumnarBuilder(2, semiring.None, nil)
	b.Add(0, 1)
	f2.AddTrie("Edge", b.Build())
	if r, ok := f2.Relation("Edge"); !ok || r.Cardinality() != 1 {
		t.Error("fork should see its re-added Edge")
	}
	if r, _ := db.Relation("Edge"); r.Cardinality() == 1 {
		t.Error("parent Edge replaced by fork re-add")
	}
}

func TestDBVersionAdvances(t *testing.T) {
	db := NewDB()
	v0 := db.Version()
	b := trie.NewColumnarBuilder(1, semiring.None, nil)
	b.Add(1)
	db.AddTrie("R", b.Build())
	if db.Version() == v0 {
		t.Error("AddTrie did not advance version")
	}
	v1 := db.Version()
	db.Drop("R")
	if db.Version() == v1 {
		t.Error("Drop did not advance version")
	}
}
