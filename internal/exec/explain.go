package exec

import (
	"fmt"
	"strings"
)

// Explain renders the physical plan as the loop nest the paper's code
// generator would emit (Figure 1 "Generated Code"): per bag, one loop per
// attribute with the participating set intersections, plus the Yannakakis
// passes across bags.
func (p *Plan) Explain() string {
	return p.explain(nil)
}

// ExplainAnalyze renders the same loop nest annotated with the measured
// counters of one run (EXPLAIN ANALYZE): per level the intersection count,
// summed input/output set cardinalities, and probe/skip counts; per bag
// the emitted-row count and wall time.
func (p *Plan) ExplainAnalyze(st *ExecStats) string {
	return p.explain(st)
}

func (p *Plan) explain(st *ExecStats) string {
	byBag := map[int]*BagStats{}
	if st != nil {
		for _, b := range st.Bags {
			byBag[b.BagID] = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- query: %s\n", p.Rule)
	fmt.Fprintf(&sb, "-- GHD (width %.2f, %d bag(s)):\n", p.GHD.Width, p.GHD.Bags)
	for _, line := range strings.Split(strings.TrimRight(p.GHD.String(), "\n"), "\n") {
		fmt.Fprintf(&sb, "--   %s\n", line)
	}
	fmt.Fprintf(&sb, "-- attribute order: %s\n", strings.Join(p.AttrOrder, ","))
	var emitBag func(bp *BagPlan)
	emitBag = func(bp *BagPlan) {
		for _, c := range bp.Children {
			emitBag(c)
		}
		bs := byBag[bp.ID]
		fmt.Fprintf(&sb, "bag %d", bp.ID)
		if len(bp.OutAttrs) > 0 {
			fmt.Fprintf(&sb, " -> @bag%d(%s)", bp.ID, strings.Join(bp.OutAttrs, ","))
		} else {
			fmt.Fprintf(&sb, " -> scalar")
		}
		if bp.DedupOf >= 0 {
			fmt.Fprintf(&sb, "  // identical to bag %d, result reused (App. B.2)\n", bp.DedupOf)
			return
		}
		sb.WriteString(":")
		if bs != nil {
			fmt.Fprintf(&sb, "  // actual: emitted=%d wall=%dµs", bs.Emitted, bs.WallUS)
			if bs.SelectionMiss {
				sb.WriteString(" selection-miss(empty)")
			}
		}
		sb.WriteString("\n")
		indent := "  "
		// Selection pre-descent.
		for _, a := range bp.Atoms {
			for lvl := 0; lvl < len(a.Attrs); lvl++ {
				if c, ok := a.Consts[lvl]; ok {
					fmt.Fprintf(&sb, "%s%s := %s[%d]  // selection\n", indent, a.Rel, a.Rel, c)
				}
			}
		}
		for lvl, attr := range bp.Attrs {
			var parts []string
			for _, a := range bp.Atoms {
				for al, v := range a.Attrs {
					if v != attr {
						continue
					}
					path := a.Rel
					if al > 0 {
						var bound []string
						for k := 0; k < al; k++ {
							if a.Attrs[k] == "" {
								bound = append(bound, "σ")
							} else {
								bound = append(bound, a.Attrs[k])
							}
						}
						path = fmt.Sprintf("%s[%s]", a.Rel, strings.Join(bound, ","))
					}
					parts = append(parts, fmt.Sprintf("π%s %s", attr, path))
				}
			}
			sx := fmt.Sprintf("s%s := %s", attr, strings.Join(parts, " ∩ "))
			if lvl >= bp.ExistsFrom {
				sx += "  // existence check only"
			}
			if bs != nil && lvl < len(bs.Levels) {
				l := bs.Levels[lvl]
				sx += fmt.Sprintf("  // actual: ∩=%d in=%d out=%d", l.Intersections, l.InputCard, l.OutputCard)
				if !l.Kernel.IsZero() {
					sx += " kernels[" + l.Kernel.String() + "]"
				}
			}
			fmt.Fprintf(&sb, "%s%s\n", indent, sx)
			verb := "for"
			if lvl == len(bp.Attrs)-1 && !bp.Out[lvl] {
				verb = "aggregate over"
			}
			loop := fmt.Sprintf("%s %s in s%s:", verb, attr, attr)
			if bs != nil && lvl < len(bs.Levels) {
				l := bs.Levels[lvl]
				loop += fmt.Sprintf("  // actual: probes=%d skipped=%d", l.Probes, l.Skipped)
			}
			fmt.Fprintf(&sb, "%s%s\n", indent, loop)
			indent += "  "
		}
		if len(bp.OutAttrs) > 0 {
			fmt.Fprintf(&sb, "%semit (%s) with ⊕-combined annotation\n", indent, strings.Join(bp.OutAttrs, ","))
		} else {
			fmt.Fprintf(&sb, "%sfold annotation into scalar\n", indent)
		}
	}
	emitBag(p.Root)
	if p.Assembly != nil {
		sb.WriteString("-- final assembly join (replaces top-down pass):\n")
		var rels []string
		for _, a := range p.Assembly.Atoms {
			rels = append(rels, a.Rel)
		}
		fmt.Fprintf(&sb, "join %s -> %s(%s)", strings.Join(rels, " ⋈ "),
			p.Rule.Head.Name, strings.Join(p.Assembly.OutAttrs, ","))
		if bs := byBag[-1]; bs != nil {
			fmt.Fprintf(&sb, "  // actual: emitted=%d wall=%dµs", bs.Emitted, bs.WallUS)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
