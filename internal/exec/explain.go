package exec

import (
	"fmt"
	"strings"
)

// Explain renders the physical plan as the loop nest the paper's code
// generator would emit (Figure 1 "Generated Code"): per bag, one loop per
// attribute with the participating set intersections, plus the Yannakakis
// passes across bags.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- query: %s\n", p.Rule)
	fmt.Fprintf(&sb, "-- GHD (width %.2f, %d bag(s)):\n", p.GHD.Width, p.GHD.Bags)
	for _, line := range strings.Split(strings.TrimRight(p.GHD.String(), "\n"), "\n") {
		fmt.Fprintf(&sb, "--   %s\n", line)
	}
	fmt.Fprintf(&sb, "-- attribute order: %s\n", strings.Join(p.AttrOrder, ","))
	var emitBag func(bp *BagPlan)
	emitBag = func(bp *BagPlan) {
		for _, c := range bp.Children {
			emitBag(c)
		}
		fmt.Fprintf(&sb, "bag %d", bp.ID)
		if len(bp.OutAttrs) > 0 {
			fmt.Fprintf(&sb, " -> @bag%d(%s)", bp.ID, strings.Join(bp.OutAttrs, ","))
		} else {
			fmt.Fprintf(&sb, " -> scalar")
		}
		if bp.DedupOf >= 0 {
			fmt.Fprintf(&sb, "  // identical to bag %d, result reused (App. B.2)\n", bp.DedupOf)
			return
		}
		sb.WriteString(":\n")
		indent := "  "
		// Selection pre-descent.
		for _, a := range bp.Atoms {
			for lvl := 0; lvl < len(a.Attrs); lvl++ {
				if c, ok := a.Consts[lvl]; ok {
					fmt.Fprintf(&sb, "%s%s := %s[%d]  // selection\n", indent, a.Rel, a.Rel, c)
				}
			}
		}
		for lvl, attr := range bp.Attrs {
			var parts []string
			for _, a := range bp.Atoms {
				for al, v := range a.Attrs {
					if v != attr {
						continue
					}
					path := a.Rel
					if al > 0 {
						var bound []string
						for k := 0; k < al; k++ {
							if a.Attrs[k] == "" {
								bound = append(bound, "σ")
							} else {
								bound = append(bound, a.Attrs[k])
							}
						}
						path = fmt.Sprintf("%s[%s]", a.Rel, strings.Join(bound, ","))
					}
					parts = append(parts, fmt.Sprintf("π%s %s", attr, path))
				}
			}
			sx := fmt.Sprintf("s%s := %s", attr, strings.Join(parts, " ∩ "))
			if lvl >= bp.ExistsFrom {
				sx += "  // existence check only"
			}
			fmt.Fprintf(&sb, "%s%s\n", indent, sx)
			verb := "for"
			if lvl == len(bp.Attrs)-1 && !bp.Out[lvl] {
				verb = "aggregate over"
			}
			fmt.Fprintf(&sb, "%s%s %s in s%s:\n", indent, verb, attr, attr)
			indent += "  "
		}
		if len(bp.OutAttrs) > 0 {
			fmt.Fprintf(&sb, "%semit (%s) with ⊕-combined annotation\n", indent, strings.Join(bp.OutAttrs, ","))
		} else {
			fmt.Fprintf(&sb, "%sfold annotation into scalar\n", indent)
		}
	}
	emitBag(p.Root)
	if p.Assembly != nil {
		sb.WriteString("-- final assembly join (replaces top-down pass):\n")
		var rels []string
		for _, a := range p.Assembly.Atoms {
			rels = append(rels, a.Rel)
		}
		fmt.Fprintf(&sb, "join %s -> %s(%s)\n", strings.Join(rels, " ⋈ "),
			p.Rule.Head.Name, strings.Join(p.Assembly.OutAttrs, ","))
	}
	return sb.String()
}
