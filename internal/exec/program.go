package exec

import (
	"fmt"
	"math"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/trie"
)

// maxFixpointIters bounds un-bounded recursion (safety net; seminaive
// recursion on finite graphs terminates well before this).
const maxFixpointIters = 100000

// RunProgram executes a parsed program rule by rule, registering each head
// relation in the database so later rules (and the caller) can use it.
// Rules sharing a head name form a group; a group containing a starred
// rule runs the recursion executor (§3.3 "Recursion"). The result of the
// final group is returned.
func RunProgram(db *DB, prog *datalog.Program, opts Options) (*Result, error) {
	// Limit pushdown only applies to the final rule group: intermediate
	// head relations feed later rules and recursion rounds feed each
	// other, so both must materialize fully.
	interOpts := opts
	interOpts.Limit = 0
	var last *Result
	i := 0
	for i < len(prog.Rules) {
		j := i + 1
		for j < len(prog.Rules) && prog.Rules[j].Head.Name == prog.Rules[i].Head.Name {
			j++
		}
		ropts := interOpts
		if j == len(prog.Rules) && !groupRecursive(prog.Rules[i:j]) {
			ropts = opts
		}
		res, err := runGroup(db, prog.Rules[i:j], ropts)
		if err != nil {
			return nil, err
		}
		db.AddTrie(res.Name, res.Trie)
		last = res
		i = j
	}
	return last, nil
}

func groupRecursive(group []*datalog.Rule) bool {
	for _, r := range group {
		if r.Head.Recursive {
			return true
		}
	}
	return false
}

func runGroup(db *DB, group []*datalog.Rule, opts Options) (*Result, error) {
	var base []*datalog.Rule
	var rec []*datalog.Rule
	for _, r := range group {
		if r.Head.Recursive {
			rec = append(rec, r)
		} else {
			base = append(base, r)
		}
	}
	if len(rec) == 0 {
		if len(base) != 1 {
			return nil, fmt.Errorf("exec: %d non-recursive rules for head %s (union heads unsupported)",
				len(base), group[0].Head.Name)
		}
		return runRule(db, base[0], opts)
	}
	if len(rec) != 1 || len(base) != 1 {
		return nil, fmt.Errorf("exec: recursion requires exactly one base and one starred rule for %s",
			group[0].Head.Name)
	}
	return runRecursive(db, base[0], rec[0], opts)
}

// runRule compiles and executes one non-recursive rule, applying the
// annotation expression to the raw semiring fold.
func runRule(db *DB, rule *datalog.Rule, opts Options) (*Result, error) {
	p, err := Compile(db, rule, opts)
	if err != nil {
		return nil, err
	}
	return runCompiled(db, p, rule)
}

// runCompiled executes an already compiled plan (freshly compiled, or a
// Clone of a cached Prepared plan) and applies the rule's annotation
// expression.
func runCompiled(db *DB, p *Plan, rule *datalog.Rule) (*Result, error) {
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if rule.Assign != nil {
		if err := applyExpr(db, res.Trie, rule.Assign.Expr); err != nil {
			return nil, err
		}
	}
	res.Name = rule.Head.Name
	return res, nil
}

// applyExpr rewrites every annotation a ↦ expr(a), resolving scalar
// relation references against the database (PageRank's 1/N).
func applyExpr(db *DB, t *trie.Trie, e datalog.Expr) error {
	// Fast path: identity expression (the bare aggregate).
	if _, ok := e.(datalog.AggExpr); ok {
		return nil
	}
	eval, err := compileExpr(db, e)
	if err != nil {
		return err
	}
	if t.Arity == 0 {
		t.Scalar = eval(t.Scalar)
		return nil
	}
	var walk func(n *trie.Node, depth int)
	walk = func(n *trie.Node, depth int) {
		if n == nil {
			return
		}
		if depth == t.Arity-1 {
			if n.Ann == nil {
				// Un-annotated leaves take the expression of the
				// semiring identity (constant expressions like y=1).
				n.Ann = make([]float64, n.Set.Card())
				for i := range n.Ann {
					n.Ann[i] = eval(t.Op.One())
				}
			} else {
				for i := range n.Ann {
					n.Ann[i] = eval(n.Ann[i])
				}
			}
			return
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	t.Annotated = true
	return nil
}

// compileExpr builds an evaluator f(agg) for an annotation expression.
func compileExpr(db *DB, e datalog.Expr) (func(float64) float64, error) {
	switch x := e.(type) {
	case datalog.NumExpr:
		return func(float64) float64 { return x.Value }, nil
	case datalog.AggExpr:
		return func(a float64) float64 { return a }, nil
	case datalog.RefExpr:
		rel, ok := db.Relation(x.Name)
		if !ok {
			return nil, fmt.Errorf("exec: expression references unknown relation %s", x.Name)
		}
		t := rel.Canonical()
		if t.Arity != 0 {
			return nil, fmt.Errorf("exec: expression reference %s is not scalar", x.Name)
		}
		v := t.Scalar
		return func(float64) float64 { return v }, nil
	case datalog.BinExpr:
		l, err := compileExpr(db, x.L)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(db, x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case '+':
			return func(a float64) float64 { return l(a) + r(a) }, nil
		case '-':
			return func(a float64) float64 { return l(a) - r(a) }, nil
		case '*':
			return func(a float64) float64 { return l(a) * r(a) }, nil
		case '/':
			return func(a float64) float64 { return l(a) / r(a) }, nil
		}
	}
	return nil, fmt.Errorf("exec: unsupported expression %v", e)
}

// runRecursive evaluates base once, then iterates the starred rule.
// Monotone aggregates (MIN/MAX) use seminaive evaluation over delta
// frontiers; others use naive re-evaluation with replace semantics, for a
// fixed iteration count or until fixpoint (§3.3 "Recursion").
func runRecursive(db *DB, base, rec *datalog.Rule, opts Options) (*Result, error) {
	name := rec.Head.Name
	baseRes, err := runRule(db, base, opts)
	if err != nil {
		return nil, err
	}
	var op semiring.Op = semiring.Sum
	if rec.Assign != nil {
		if agg := datalog.FindAgg(rec.Assign.Expr); agg != nil {
			if op, err = semiring.ParseOp(agg.Op); err != nil {
				return nil, err
			}
		}
	}
	// Ensure the base result carries the recursion's semiring so delta
	// joins combine correctly.
	current := retag(baseRes.Trie, op)

	defer db.Drop(name) // RunProgram re-registers the final result

	if op.Monotone() && rec.Head.Iterations == 0 && !opts.NaiveRecursion {
		return runSeminaive(db, rec, current, op, opts)
	}
	return runNaive(db, rec, current, op, opts)
}

// retag rebuilds a trie under a different semiring op (annotation values
// are preserved; only the combine semantics change).
func retag(t *trie.Trie, op semiring.Op) *trie.Trie {
	if t.Op == op {
		return t
	}
	b := trie.NewColumnarBuilder(t.Arity, op, nil)
	t.ForEachTuple(func(tp []uint32, ann float64) {
		b.AddAnn(ann, tp...)
	})
	return b.Build()
}

// runNaive re-evaluates the rule body against the full current relation
// each round. Non-monotone aggregates replace the relation (PageRank's
// unrolled iterations); monotone aggregates accumulate — new derivations
// are ⊕-combined with existing tuples ("new tuples are added to R",
// §2.3), so naive SSSP converges to the same fixpoint as seminaive, just
// wastefully.
func runNaive(db *DB, rec *datalog.Rule, current *trie.Trie, op semiring.Op, opts Options) (*Result, error) {
	name := rec.Head.Name
	iters := rec.Head.Iterations
	bounded := iters > 0
	if !bounded {
		iters = maxFixpointIters
	}
	var attrs []string
	for it := 0; it < iters; it++ {
		db.AddTrie(name, current)
		res, err := runRule(db, rec, opts)
		if err != nil {
			return nil, err
		}
		attrs = res.Attrs
		var next *trie.Trie
		if op.Monotone() {
			nb := trie.NewColumnarBuilder(res.Trie.Arity, op, nil)
			current.ForEachTuple(func(tp []uint32, ann float64) { nb.AddAnn(ann, tp...) })
			res.Trie.ForEachTuple(func(tp []uint32, ann float64) { nb.AddAnn(ann, tp...) })
			next = nb.Build()
		} else {
			next = retag(res.Trie, op)
		}
		if !bounded && triesEqual(current, next) {
			current = next
			break
		}
		current = next
	}
	return &Result{Name: name, Attrs: attrs, Trie: current}, nil
}

// runSeminaive maintains a delta frontier: the rule body joins only the
// tuples improved in the previous round, and a round's improvements form
// the next frontier. This is the engine's SSSP execution mode, selected
// automatically because MIN is monotone (§3.3).
func runSeminaive(db *DB, rec *datalog.Rule, base *trie.Trie, op semiring.Op, opts Options) (*Result, error) {
	name := rec.Head.Name
	best := map[uint32]float64{}
	var attrs []string
	base.ForEachTuple(func(tp []uint32, ann float64) {
		if len(tp) != 1 {
			return
		}
		best[tp[0]] = ann
	})
	if base.Arity != 1 {
		return nil, fmt.Errorf("exec: seminaive recursion supports unary heads, got arity %d", base.Arity)
	}
	delta := base
	for round := 0; round < maxFixpointIters; round++ {
		if delta.Cardinality() == 0 {
			break
		}
		db.AddTrie(name, delta)
		res, err := runRule(db, rec, opts)
		if err != nil {
			return nil, err
		}
		attrs = res.Attrs
		nb := trie.NewColumnarBuilder(1, op, nil)
		improved := 0
		res.Trie.ForEachTuple(func(tp []uint32, ann float64) {
			old, ok := best[tp[0]]
			if !ok || op.Better(ann, old) {
				best[tp[0]] = ann
				nb.AddAnn(ann, tp[0])
				improved++
			}
		})
		if improved == 0 {
			break
		}
		delta = nb.Build()
	}
	out := trie.NewColumnarBuilder(1, op, nil)
	for k, v := range best {
		out.AddAnn(v, k)
	}
	if attrs == nil {
		attrs = []string{rec.Head.Vars[0]}
	}
	return &Result{Name: name, Attrs: attrs, Trie: out.Build()}, nil
}

// triesEqual compares two tries tuple-by-tuple with exact annotations.
func triesEqual(a, b *trie.Trie) bool {
	if a.Arity != b.Arity || a.Cardinality() != b.Cardinality() {
		return false
	}
	if a.Arity == 0 {
		return a.Scalar == b.Scalar
	}
	equal := true
	type entry struct {
		tp  []uint32
		ann float64
	}
	var bs []entry
	b.ForEachTuple(func(tp []uint32, ann float64) {
		bs = append(bs, entry{append([]uint32(nil), tp...), ann})
	})
	i := 0
	a.ForEachTuple(func(tp []uint32, ann float64) {
		if !equal || i >= len(bs) {
			equal = false
			return
		}
		e := bs[i]
		i++
		if ann != e.ann && !(math.IsNaN(ann) && math.IsNaN(e.ann)) {
			equal = false
			return
		}
		for k := range tp {
			if tp[k] != e.tp[k] {
				equal = false
				return
			}
		}
	})
	return equal
}
