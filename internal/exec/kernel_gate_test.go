package exec

import (
	"os"
	"sort"
	"testing"
	"time"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/set"
)

// The kernel gate: on a skewed power-law graph the adaptive layouts +
// word-parallel kernels must beat the scalar uint baseline (the paper's
// "-RA" ablation: every set a sorted uint array, every intersection a
// two-pointer merge) by ≥1.3× on triangle and 4-clique counting, and
// the win must come from the dense routes — the analyze counters have
// to show bitset/composite word-parallel dispatches.

const (
	qKernelTriangle = `TC(;w:long) :- R(x,y),S(y,z),T(x,z); w=<<COUNT(*)>>.`
	qKernel4Clique  = `K4(;w:long) :- R(x,y),S(y,z),T(x,z),U(x,w_),V(y,w_),Q(z,w_); w=<<COUNT(*)>>.`
)

// kernelGateDB builds a skewed power-law graph dense enough (avg degree
// 40, power-law hubs) that hub adjacency sets land in the
// bitset/composite bands. 4-clique uses a smaller instance: its scalar
// baseline is quartic-ish in hub degree and would dominate CI time.
func kernelGateDB(n, m int) *DB {
	return dbWithGraph(gen.PowerLaw(n, m, 2.2, 5))
}

func prepareQOpts(t testing.TB, db *DB, query string, opts Options) *Prepared {
	prog, err := datalog.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prepare(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// wordParallelDispatches sums the word-parallel kernel dispatches
// (bitset∩bitset and composite∩composite routes) across a run's levels.
func wordParallelDispatches(st *ExecStats) int64 {
	var n int64
	for _, b := range st.Bags {
		for i := range b.Levels {
			n += b.Levels[i].Kernel.WordParallel()
		}
	}
	return n
}

func TestKernelSpeedupGate(t *testing.T) {
	if os.Getenv("EH_KERNEL_GATE") == "" {
		t.Skip("set EH_KERNEL_GATE=1 to run the adaptive-kernel speedup gate")
	}
	for _, tc := range []struct {
		name, q string
		n, m    int
		rounds  int
	}{
		{"triangle", qKernelTriangle, 3000, 60000, 15},
		{"fourclique", qKernel4Clique, 1000, 20000, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := kernelGateDB(tc.n, tc.m)
			scalarOpts := OptNoLayoutNoAlgo
			scalarOpts.Parallelism = 1
			adaptive := prepareQOpts(t, db, tc.q, Options{Parallelism: 1})
			scalar := prepareQOpts(t, db, tc.q, scalarOpts)

			run := func(pr *Prepared) (time.Duration, float64) {
				fork := db.Fork()
				start := time.Now()
				res, err := pr.Run(fork)
				if err != nil {
					t.Fatal(err)
				}
				return time.Since(start), res.Scalar()
			}
			// Warm both plans' lazily built relation indexes (the scalar
			// side builds a separate uint-tagged index cache entry).
			_, wantCount := run(adaptive)
			if _, got := run(scalar); got != wantCount {
				t.Fatalf("scalar baseline disagrees: %v vs %v", got, wantCount)
			}

			// The adaptive side must actually take the word-parallel routes
			// — otherwise any speedup would be measuring something else.
			st := &ExecStats{}
			fork := db.Fork()
			res, err := adaptive.RunWith(fork, RunParams{Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			_ = res
			if wp := wordParallelDispatches(res.Stats); wp == 0 {
				t.Fatalf("no word-parallel kernel dispatches recorded; stats %+v", st)
			} else {
				t.Logf("%s: %d word-parallel dispatches", tc.name, wp)
			}

			measure := func() float64 {
				sc := make([]time.Duration, 0, tc.rounds)
				ad := make([]time.Duration, 0, tc.rounds)
				for i := 0; i < tc.rounds; i++ {
					d, _ := run(scalar)
					sc = append(sc, d)
					d, _ = run(adaptive)
					ad = append(ad, d)
				}
				sort.Slice(sc, func(i, j int) bool { return sc[i] < sc[j] })
				sort.Slice(ad, func(i, j int) bool { return ad[i] < ad[j] })
				return float64(sc[0]) / float64(ad[0])
			}
			// Interleaved min-of-rounds; best of 3 attempts rides out CI
			// noise — a real regression fails every attempt.
			best := 0.0
			for attempt := 0; attempt < 3; attempt++ {
				if r := measure(); r > best {
					best = r
				}
				if best >= 1.3 {
					break
				}
			}
			t.Logf("%s: adaptive speedup %.2fx over scalar merge", tc.name, best)
			if best < 1.3 {
				t.Fatalf("%s: adaptive kernels %.2fx over scalar baseline, want ≥1.3x", tc.name, best)
			}
		})
	}
}

// TestKernelHintRoutes checks the per-run kernel override: pinning the
// algorithm changes the dispatch routes but never the result. Uint
// layouts keep every dispatch in the uint∩uint cell, where the algo
// choice is visible.
func TestKernelHintRoutes(t *testing.T) {
	db := dbWithGraph(testGraph(400, 4000, 19))
	opts := OptNoLayout
	opts.Parallelism = 1
	pr := prepareQOpts(t, db, qKernelTriangle, opts)
	base, err := pr.RunWith(db.Fork(), RunParams{Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := pr.RunWith(db.Fork(), RunParams{
		Collect: true,
		Kernel:  &set.Config{Algo: set.AlgoMerge},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Scalar() != pinned.Scalar() {
		t.Fatalf("kernel hint changed the result: %v vs %v", base.Scalar(), pinned.Scalar())
	}
	routeCount := func(st *ExecStats, r set.Route) int64 {
		var n int64
		for _, b := range st.Bags {
			for i := range b.Levels {
				n += b.Levels[i].Kernel.Counts[r]
			}
		}
		return n
	}
	// Under AlgoMerge no uint∩uint pair may take shuffle or galloping.
	if n := routeCount(pinned.Stats, set.RouteUintShuffle) + routeCount(pinned.Stats, set.RouteUintGallop); n != 0 {
		t.Fatalf("pinned merge still dispatched %d adaptive uint routes", n)
	}
	if n := routeCount(pinned.Stats, set.RouteUintMerge); n == 0 {
		t.Fatal("pinned merge dispatched no uint-merge routes")
	}
}

// --- benchmarks for BENCH_pr10.json ------------------------------------

func benchKernel(b *testing.B, query string, n, m int, opts Options) {
	db := kernelGateDB(n, m)
	pr := prepareQOpts(b, db, query, opts)
	if _, err := pr.Run(db.Fork()); err != nil { // warm index caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pr.Run(db.Fork())
		if err != nil {
			b.Fatal(err)
		}
		if res.Scalar() == 0 {
			b.Fatal("empty result")
		}
	}
}

func scalarBenchOpts() Options {
	o := OptNoLayoutNoAlgo
	o.Parallelism = 1
	return o
}

func BenchmarkKernelTriangleAdaptive(b *testing.B) {
	benchKernel(b, qKernelTriangle, 3000, 60000, Options{Parallelism: 1})
}

func BenchmarkKernelTriangleScalar(b *testing.B) {
	benchKernel(b, qKernelTriangle, 3000, 60000, scalarBenchOpts())
}

func BenchmarkKernel4CliqueAdaptive(b *testing.B) {
	benchKernel(b, qKernel4Clique, 1000, 20000, Options{Parallelism: 1})
}

func BenchmarkKernel4CliqueScalar(b *testing.B) {
	benchKernel(b, qKernel4Clique, 1000, 20000, scalarBenchOpts())
}
