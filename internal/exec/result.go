package exec

import (
	"fmt"
	"strings"

	"emptyheaded/internal/trie"
)

// Result is the output of one rule execution.
type Result struct {
	// Name is the head relation name.
	Name string
	// Attrs are the output attribute names, in storage order.
	Attrs []string
	// Trie holds the result tuples (Arity 0 for scalar results).
	Trie *trie.Trie
	// Plan is the physical plan that produced the result.
	Plan *Plan
	// Truncated reports that limit pushdown (Options.Limit) stopped the
	// listing early: the trie holds roughly the first Limit tuples found,
	// not the full result.
	Truncated bool
	// Stats holds the EXPLAIN ANALYZE counters when the run collected
	// them (RunParams.Collect); nil otherwise.
	Stats *ExecStats
}

// Scalar returns the annotation of a zero-arity result.
func (r *Result) Scalar() float64 {
	if r.Trie.Arity != 0 {
		panic(fmt.Sprintf("exec: Scalar() on arity-%d result", r.Trie.Arity))
	}
	return r.Trie.Scalar
}

// Cardinality returns the number of result tuples.
func (r *Result) Cardinality() int { return r.Trie.Cardinality() }

// ForEach enumerates result tuples with annotations.
func (r *Result) ForEach(f func(tuple []uint32, ann float64)) {
	r.Trie.ForEachTuple(f)
}

// Columns materializes the first max result tuples (max <= 0 means all)
// into flat per-attribute columns plus the aligned annotation column
// (nil for un-annotated results). Large listings decode an order of
// magnitude faster this way than through the per-tuple ForEach walk —
// leaf values bulk-copy straight out of the trie's leaf sets.
func (r *Result) Columns(max int) ([][]uint32, []float64) {
	cols, anns := r.Trie.Columns(max)
	if !r.Trie.Annotated {
		anns = nil
	}
	return cols, anns
}

// String summarizes the result.
func (r *Result) String() string {
	if r.Trie.Arity == 0 {
		return fmt.Sprintf("%s = %g", r.Name, r.Trie.Scalar)
	}
	return fmt.Sprintf("%s(%s): %d tuples", r.Name, strings.Join(r.Attrs, ","), r.Cardinality())
}
