package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"emptyheaded/internal/datalog"
	"emptyheaded/internal/fault"
	"emptyheaded/internal/gen"
)

// slowDB returns a database whose 4-clique count takes long enough
// (hundreds of ms) that a mid-flight cancellation is observable, and
// the query that makes it sweat. A count, not a listing: the full loop
// nest runs without materializing a giant result.
func slowDB() (*DB, string) {
	g := gen.PowerLaw(2000, 40000, 2.1, 7)
	db := NewDB()
	db.AddGraph("Edge", g, nil, "auto")
	return db, `K4(;w:long) :- Edge(a,b),Edge(a,c),Edge(a,d),Edge(b,c),Edge(b,d),Edge(c,d); w=<<COUNT(*)>>.`
}

func runCtx(t *testing.T, db *DB, query string, ctx context.Context, par int) error {
	t.Helper()
	prog, err := datalog.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunProgram(db, prog, Options{Ctx: ctx, Parallelism: par})
	return err
}

// A context cancelled before the run starts stops the loop nest at its
// first per-value check.
func TestCancelBeforeRun(t *testing.T) {
	db, q := slowDB()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	err := runCtx(t, db, q, ctx, 0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("pre-cancelled run took %v", d)
	}
}

// A context cancelled mid-flight stops the run within the cooperative
// stop-check interval — the dropped-client contract.
func TestCancelMidFlight(t *testing.T) {
	db, q := slowDB()
	// Baseline: the uncancelled query must be genuinely slow, or the
	// cancellation below proves nothing.
	t0 := time.Now()
	if err := runCtx(t, db, q, context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)
	if full < 200*time.Millisecond {
		t.Skipf("baseline query too fast (%v) to observe cancellation", full)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 = time.Now()
	err := runCtx(t, db, q, ctx, 2)
	d := time.Since(t0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if d > full/2 {
		t.Fatalf("cancelled run took %v of a %v baseline — stop flag not honored", d, full)
	}
}

// A context deadline maps to ErrTimeout, not ErrCanceled.
func TestCtxDeadlineIsTimeout(t *testing.T) {
	db, q := slowDB()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := runCtx(t, db, q, ctx, 2)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// An injected worker panic surfaces as ErrExecPanic — the process (and
// the test binary) must survive, and the next run must succeed.
func TestWorkerPanicIsolated(t *testing.T) {
	for _, par := range []int{1, 4} {
		in := fault.New(1, fault.Rule{Point: "exec.worker", Kind: fault.PanicKind, OnCall: 1})
		restore := fault.Enable(in)
		db, q := slowDB()
		prog, err := datalog.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		_, err = RunProgram(db, prog, Options{Parallelism: par})
		if !errors.Is(err, ErrExecPanic) {
			restore()
			t.Fatalf("par=%d: err = %v, want ErrExecPanic", par, err)
		}
		restore()
		// Fault exhausted and disabled: the engine still serves.
		cheap, err := datalog.Parse(`P(x,z) :- Edge(x,y),Edge(y,z).`)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunProgram(db, cheap, Options{Parallelism: par, Limit: 10}); err != nil {
			t.Fatalf("par=%d: run after recovered panic: %v", par, err)
		}
	}
}
