// Package exec is EmptyHeaded's execution engine: it compiles parsed
// datalog rules against GHD query plans (§3) and runs the generic
// worst-case optimal join inside each bag with Yannakakis' algorithm
// across bags (§3.3), over the skew-optimized trie storage (§4).
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trie"
)

// DB is a named collection of relations.
type DB struct {
	mu   sync.RWMutex
	rels map[string]*Relation
	// Dict translates between original vertex identifiers and the dense
	// codes used inside tries; selection constants in queries are
	// expressed as original identifiers.
	Dict *graph.Dictionary
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{rels: map[string]*Relation{}}
}

// Relation is a stored relation with lazily built trie indexes, one per
// (column permutation, layout policy) — the paper stores "both orders" of
// each edge relation (§2.2 "Column (Index) Order"); we generalize to any
// permutation and build on demand.
type Relation struct {
	Name      string
	Arity     int
	Annotated bool
	Op        semiring.Op

	mu        sync.Mutex
	canonical *trie.Trie
	indexes   map[string]*trie.Trie
}

// AddTrie registers (or replaces) a relation stored as a trie in natural
// column order.
func (db *DB) AddTrie(name string, t *trie.Trie) *Relation {
	r := &Relation{
		Name:      name,
		Arity:     t.Arity,
		Annotated: t.Annotated,
		Op:        t.Op,
		canonical: t,
		indexes:   map[string]*trie.Trie{},
	}
	db.mu.Lock()
	db.rels[name] = r
	db.mu.Unlock()
	return r
}

// AddGraph registers the graph's edge relation under the given name using
// the adjacency fast path; layout selects the storage policy (nil = the
// set-level auto optimizer), layoutName its cache key.
func (db *DB) AddGraph(name string, g *graph.Graph, layout trie.LayoutFunc, layoutName string) *Relation {
	t := trie.FromAdjacency(g.Adj, layout)
	r := db.AddTrie(name, t)
	r.mu.Lock()
	r.indexes[indexKey([]int{0, 1}, layoutName)] = t
	r.mu.Unlock()
	return r
}

// Relation looks up a relation by name.
func (db *DB) Relation(name string) (*Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	return r, ok
}

// Drop removes a relation.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	delete(db.rels, name)
	db.mu.Unlock()
}

// Names returns the registered relation names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Cardinality returns the tuple count of the relation.
func (r *Relation) Cardinality() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.canonical.Cardinality()
}

// Canonical returns the natural-order trie.
func (r *Relation) Canonical() *trie.Trie {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.canonical
}

func indexKey(perm []int, layoutName string) string {
	var sb strings.Builder
	for _, p := range perm {
		fmt.Fprintf(&sb, "%d,", p)
	}
	sb.WriteString("/")
	sb.WriteString(layoutName)
	return sb.String()
}

// Index returns (building and caching if needed) the trie whose level i
// stores column perm[i], under the given layout policy.
func (r *Relation) Index(perm []int, layout trie.LayoutFunc, layoutName string) *trie.Trie {
	if len(perm) != r.Arity {
		panic(fmt.Sprintf("exec: index perm %v for arity-%d relation %s", perm, r.Arity, r.Name))
	}
	key := indexKey(perm, layoutName)
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.indexes[key]; ok {
		return t
	}
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
		}
	}
	var t *trie.Trie
	if identity && layoutName == "auto" && r.canonical != nil {
		t = r.canonical
	} else {
		b := trie.NewBuilder(r.Arity, r.Op, layout)
		buf := make([]uint32, r.Arity)
		r.canonical.ForEachTuple(func(tp []uint32, ann float64) {
			for i, p := range perm {
				buf[i] = tp[p]
			}
			if r.Annotated {
				b.AddAnn(ann, buf...)
			} else {
				b.Add(buf...)
			}
		})
		t = b.Build()
	}
	r.indexes[key] = t
	return t
}

// Options configures query execution; the zero value is the fully
// optimized engine. The ablation fields reproduce the "-R", "-RA", "-S"
// and "-GHD" rows of Tables 8, 11 and 13.
type Options struct {
	// Layout is the storage layout policy (nil = set-level auto
	// optimizer, §4.4); LayoutName keys the relation index cache
	// ("auto", "uint", "bitset", "composite").
	Layout     trie.LayoutFunc
	LayoutName string
	// Intersect controls intersection algorithm selection (§4.2).
	Intersect set.Config
	// SingleBag forces single-bag GHDs (Table 8 "-GHD").
	SingleBag bool
	// NoPushdown disables cross-bag selection pushdown (Table 13 "-GHD").
	NoPushdown bool
	// NoBagDedup disables redundant-bag elimination (Appendix B.2).
	NoBagDedup bool
	// NaiveRecursion disables seminaive evaluation for monotone
	// aggregates: the full rule body is re-evaluated each round (§3.3
	// "Naive recursion is not an acceptable solution in applications
	// such as SSSP" — this models engines without seminaive deltas).
	NaiveRecursion bool
	// Parallelism bounds the worker count for the outer loop of each
	// bag's generic join; 0 means GOMAXPROCS.
	Parallelism int
	// Timeout aborts query execution cooperatively after the given
	// duration (0 = no limit); Run returns ErrTimeout. The benchmark
	// harness uses it to reproduce the paper's "t/o" entries.
	Timeout time.Duration
}

func (o Options) layout() trie.LayoutFunc {
	if o.Layout == nil {
		return trie.AutoLayout
	}
	return o.Layout
}

func (o Options) layoutName() string {
	if o.LayoutName == "" {
		return "auto"
	}
	return o.LayoutName
}

// Ablations used across the benchmark suite (§5.3).
var (
	// OptDefault is the full EmptyHeaded optimizer.
	OptDefault = Options{}
	// OptNoLayout ("-R") disables SIMD-friendly layout mixing: all sets
	// stored as uint arrays.
	OptNoLayout = Options{Layout: trie.UintLayout, LayoutName: "uint"}
	// OptNoLayoutNoAlgo ("-RA") additionally disables intersection
	// algorithm selection (scalar merge only).
	OptNoLayoutNoAlgo = Options{
		Layout: trie.UintLayout, LayoutName: "uint",
		Intersect: set.Config{Algo: set.AlgoMerge},
	}
	// OptNoSIMD ("-S") keeps layouts but processes dense words
	// bit-by-bit.
	OptNoSIMD = Options{Intersect: set.Config{BitByBit: true}}
	// OptNoGHD forces single-bag plans (the LogicBlox-style plan of
	// Fig. 3b).
	OptNoGHD = Options{SingleBag: true}
)
