// Package exec is EmptyHeaded's execution engine: it compiles parsed
// datalog rules against GHD query plans (§3) and runs the generic
// worst-case optimal join inside each bag with Yannakakis' algorithm
// across bags (§3.3), over the skew-optimized trie storage (§4).
//
// Each bag's outer loop is scheduled with work stealing (small blocks of
// first-level values claimed off an atomic cursor, so skewed high-degree
// vertices don't serialize the tail), workers emit output column-wise,
// and results materialize through the columnar trie builder — the loop
// nest and the materialization path are allocation-free per tuple.
package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"emptyheaded/internal/delta"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/semiring"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trie"
)

// DB is a named collection of relations. All methods are safe for
// concurrent use; a fork (see Fork) is a session-local snapshot so
// concurrent programs can register intermediate head relations without
// clobbering each other.
type DB struct {
	mu   sync.RWMutex
	rels map[string]*Relation
	// dict translates between original vertex identifiers and the dense
	// codes used inside tries; selection constants in queries are
	// expressed as original identifiers. Guarded by mu (see Dict/SetDict).
	dict *graph.Dictionary
	// version counts mutations (AddTrie, Drop, SetDict); it remains the
	// coarse invalidation epoch for compiled plans.
	version atomic.Uint64
	// epochs carries one mutation epoch per relation name (guarded by
	// mu): a relation's epoch advances exactly when that relation is
	// added, replaced, dropped, or installed from a snapshot. Caches that
	// know a query's read set key on these instead of the global version,
	// so loading relation R never evicts results that never read R.
	epochs map[string]uint64
	// dictEpoch advances when the identifier dictionary changes; every
	// decoded (rendered) result depends on it.
	dictEpoch uint64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{rels: map[string]*Relation{}, epochs: map[string]uint64{}}
}

// bumpLocked advances the global version and returns the new value; the
// caller must hold mu.
func (db *DB) bumpLocked() uint64 {
	return db.version.Add(1)
}

// bumpRelLocked advances relation name's epoch (and the global version);
// the caller must hold mu.
func (db *DB) bumpRelLocked(name string) {
	db.epochs[name] = db.bumpLocked()
}

// Fork returns a session-local snapshot of db: the relation bindings and
// the dictionary are copied at call time (sharing the immutable tries),
// so a forked session sees one consistent database state even while the
// original absorbs loads, and its writes (AddTrie, Drop) — intermediate
// head relations, recursion deltas — never escape the fork. The fork's
// Version starts at the snapshot's version (read before the copy, so it
// never claims to be newer than the data it holds).
func (db *DB) Fork() *DB {
	f := &DB{}
	db.mu.RLock()
	f.rels = make(map[string]*Relation, len(db.rels))
	for n, r := range db.rels {
		f.rels[n] = r
	}
	f.epochs = make(map[string]uint64, len(db.epochs))
	for n, e := range db.epochs {
		f.epochs[n] = e
	}
	f.dict = db.dict
	f.dictEpoch = db.dictEpoch
	// Read under the same lock writers bump it under, so the snapshot's
	// version always matches its data.
	f.version.Store(db.version.Load())
	db.mu.RUnlock()
	return f
}

// Dict returns the identifier dictionary (nil when relations were loaded
// from raw codes).
func (db *DB) Dict() *graph.Dictionary {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dict
}

// SetDict installs the identifier dictionary.
func (db *DB) SetDict(d *graph.Dictionary) {
	db.mu.Lock()
	db.dict = d
	db.dictEpoch = db.bumpLocked()
	db.mu.Unlock()
}

// Version is a monotone mutation counter: it advances whenever a relation
// is added, replaced or dropped, or the dictionary changes. The plan
// cache keys compilations on it; the result cache uses the finer
// per-relation epochs (EpochsOf) instead.
func (db *DB) Version() uint64 { return db.version.Load() }

// EpochOf returns relation name's mutation epoch (0 when the relation
// has never existed — a later load under that name advances it, so 0 is
// a valid "absent" epoch for cache keys).
func (db *DB) EpochOf(name string) uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epochs[name]
}

// EpochsOf returns the epochs of the given relation names, aligned with
// names, read under one lock so the vector is a consistent snapshot.
func (db *DB) EpochsOf(names []string) []uint64 {
	out := make([]uint64, len(names))
	db.mu.RLock()
	for i, n := range names {
		out[i] = db.epochs[n]
	}
	db.mu.RUnlock()
	return out
}

// EpochsWithDict returns the epochs of the given relation names plus the
// dictionary epoch, all read under one lock — the consistent validity
// vector the result cache stamps on (and checks against) each entry.
func (db *DB) EpochsWithDict(names []string) ([]uint64, uint64) {
	out := make([]uint64, len(names))
	db.mu.RLock()
	for i, n := range names {
		out[i] = db.epochs[n]
	}
	de := db.dictEpoch
	db.mu.RUnlock()
	return out, de
}

// DictEpoch returns the identifier dictionary's mutation epoch. Results
// rendered through the dictionary depend on it in addition to the epochs
// of the relations they read.
func (db *DB) DictEpoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dictEpoch
}

// InstallSnapshot atomically replaces the entire database — relations,
// per-relation epochs, and dictionary — with restored snapshot state, in
// one critical section: a concurrent Fork sees either the old database
// or the new one, never a mix. The snapshot's saved epochs are adopted
// verbatim (which is what makes snapshot → restore → re-snapshot
// byte-identical), and the global version jumps past every adopted epoch
// so later mutations stay strictly monotone. Epoch numbering is NOT
// comparable across an install — the snapshot may come from another
// process — so holders of epoch-keyed caches must flush them when they
// trigger a restore; version-keyed caches (compiled plans) invalidate
// automatically via the version jump.
func (db *DB) InstallSnapshot(tries map[string]*trie.Trie, epochs map[string]uint64, dict *graph.Dictionary, dictEpoch uint64) {
	rels := make(map[string]*Relation, len(tries))
	eps := make(map[string]uint64, len(tries))
	maxE := dictEpoch
	for name, t := range tries {
		rels[name] = &Relation{
			Name:      name,
			Arity:     t.Arity,
			Annotated: t.Annotated,
			Op:        t.Op,
			canonical: t,
			indexes:   map[string]*trie.Trie{},
		}
		e := epochs[name]
		eps[name] = e
		if e > maxE {
			maxE = e
		}
	}
	db.mu.Lock()
	if cur := db.version.Load(); cur > maxE {
		maxE = cur
	}
	db.version.Store(maxE + 1)
	db.rels = rels
	db.epochs = eps
	db.dict = dict
	db.dictEpoch = dictEpoch
	db.mu.Unlock()
}

// Relation is a stored relation with lazily built trie indexes, one per
// (column permutation, layout policy) — the paper stores "both orders" of
// each edge relation (§2.2 "Column (Index) Order"); we generalize to any
// permutation and build on demand.
type Relation struct {
	Name      string
	Arity     int
	Annotated bool
	Op        semiring.Op

	// mu guards the lazily built index cache: concurrent queries share
	// relations, so every access to canonical/indexes goes through it.
	// Cache hits take the read lock only.
	mu        sync.RWMutex
	canonical *trie.Trie
	indexes   map[string]*trie.Trie

	// Overlay decomposition (see AddTrieOverlay): when base is non-nil,
	// canonical is the merged view (base \ ovDel) ∪ ovIns, and permuted
	// indexes are assembled as base.Index(perm) merged with the permuted
	// overlay — O(overlay) per index instead of re-sorting the whole
	// merged relation. base is a standalone relation whose index cache
	// is shared across successive overlay installs of the same relation.
	base  *Relation
	ovIns *trie.Trie
	ovDel *trie.Trie
}

// NewRelation wraps a trie as a standalone relation (with its own index
// cache) outside any DB. The streaming-update layer holds each updated
// relation's compacted base this way, so permuted base indexes are
// built once and reused by every overlay install on top of it.
func NewRelation(name string, t *trie.Trie) *Relation {
	return &Relation{
		Name:      name,
		Arity:     t.Arity,
		Annotated: t.Annotated,
		Op:        t.Op,
		canonical: t,
		indexes:   map[string]*trie.Trie{},
	}
}

// AddTrie registers (or replaces) a relation stored as a trie in natural
// column order.
func (db *DB) AddTrie(name string, t *trie.Trie) *Relation {
	r := &Relation{
		Name:      name,
		Arity:     t.Arity,
		Annotated: t.Annotated,
		Op:        t.Op,
		canonical: t,
		indexes:   map[string]*trie.Trie{},
	}
	db.mu.Lock()
	db.rels[name] = r
	db.bumpRelLocked(name)
	db.mu.Unlock()
	return r
}

// AddTrieOverlay registers (or replaces) relation name with its merged
// streaming-update view plus the overlay decomposition it was built
// from: base is the compacted-base relation (its index cache is shared
// across installs), ins/del the overlay mini-tries (either may be nil).
// Like AddTrie it bumps the relation's epoch, so read-set-keyed result
// caches invalidate exactly the queries that read this relation.
func (db *DB) AddTrieOverlay(name string, merged *trie.Trie, base *Relation, ins, del *trie.Trie) *Relation {
	r := &Relation{
		Name:      name,
		Arity:     merged.Arity,
		Annotated: merged.Annotated,
		Op:        merged.Op,
		canonical: merged,
		indexes:   map[string]*trie.Trie{},
		base:      base,
		ovIns:     ins,
		ovDel:     del,
	}
	db.mu.Lock()
	db.rels[name] = r
	db.bumpRelLocked(name)
	db.mu.Unlock()
	return r
}

// SwapTrie replaces relation name's physical representation WITHOUT
// advancing its epoch or the global version — strictly for installs
// whose logical content is unchanged (the compactor folding an overlay
// into a fresh base). Epoch-keyed result caches therefore stay valid
// across the swap, which is what makes compaction invisible to clients
// instead of flushing every cached query over the relation. The swap
// is conditional on the caller's view still being installed (old must
// be the current canonical trie) so it can never clobber a concurrent
// load; it returns false when the relation moved on. base/ins/del
// carry the overlay decomposition (nil for a plain compacted install).
func (db *DB) SwapTrie(name string, old, merged *trie.Trie, base *Relation, ins, del *trie.Trie) bool {
	r := &Relation{
		Name:      name,
		Arity:     merged.Arity,
		Annotated: merged.Annotated,
		Op:        merged.Op,
		canonical: merged,
		indexes:   map[string]*trie.Trie{},
		base:      base,
		ovIns:     ins,
		ovDel:     del,
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	cur, ok := db.rels[name]
	if !ok || cur.Canonical() != old {
		return false
	}
	db.rels[name] = r
	return true
}

// AddGraph registers the graph's edge relation under the given name using
// the adjacency fast path; layout selects the storage policy (nil = the
// set-level auto optimizer), layoutName its cache key.
func (db *DB) AddGraph(name string, g *graph.Graph, layout trie.LayoutFunc, layoutName string) *Relation {
	t := trie.FromAdjacency(g.Adj, layout)
	r := db.AddTrie(name, t)
	r.mu.Lock()
	r.indexes[indexKey([]int{0, 1}, layoutName)] = t
	r.mu.Unlock()
	return r
}

// ReplaceGraph atomically installs a graph relation together with its
// identifier dictionary in one critical section and one version bump:
// a concurrent Fork sees either the old (dict, relation) pair or the new
// one, never a mix of the two.
func (db *DB) ReplaceGraph(name string, g *graph.Graph, dict *graph.Dictionary, layout trie.LayoutFunc, layoutName string) *Relation {
	t := trie.FromAdjacency(g.Adj, layout)
	r := &Relation{
		Name:      name,
		Arity:     t.Arity,
		Annotated: t.Annotated,
		Op:        t.Op,
		canonical: t,
		indexes:   map[string]*trie.Trie{indexKey([]int{0, 1}, layoutName): t},
	}
	db.mu.Lock()
	db.rels[name] = r
	db.dict = dict
	db.bumpRelLocked(name)
	db.dictEpoch = db.epochs[name]
	db.mu.Unlock()
	return r
}

// Relation looks up a relation by name.
func (db *DB) Relation(name string) (*Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	return r, ok
}

// Drop removes a relation. Dropping in a fork never affects the database
// it was forked from.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	delete(db.rels, name)
	db.bumpRelLocked(name)
	db.mu.Unlock()
}

// Names returns the registered relation names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Cardinality returns the tuple count of the relation.
func (r *Relation) Cardinality() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.canonical.Cardinality()
}

// Canonical returns the natural-order trie.
func (r *Relation) Canonical() *trie.Trie {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.canonical
}

// HasOverlay reports whether the relation serves through a delta-overlay
// merged view (reads see base+overlay rather than a compacted trie). The
// overlay decomposition is fixed at construction, so no lock is needed.
func (r *Relation) HasOverlay() bool { return r.base != nil }

// Source classifies how a visible tuple enters the relation's merged
// view: "overlay" when the streaming-update insert overlay contributes
// it, "base" otherwise (including fully compacted relations). Callers
// pass tuples in the relation's natural column order and internal code
// space. The overlay decomposition is fixed at construction, so no lock
// is needed.
func (r *Relation) Source(tp []uint32) string {
	if r.ovIns != nil && r.ovIns.Contains(tp) {
		return "overlay"
	}
	return "base"
}

func indexKey(perm []int, layoutName string) string {
	var sb strings.Builder
	for _, p := range perm {
		fmt.Fprintf(&sb, "%d,", p)
	}
	sb.WriteString("/")
	sb.WriteString(layoutName)
	return sb.String()
}

// Index returns (building and caching if needed) the trie whose level i
// stores column perm[i], under the given layout policy.
func (r *Relation) Index(perm []int, layout trie.LayoutFunc, layoutName string) *trie.Trie {
	if len(perm) != r.Arity {
		panic(fmt.Sprintf("exec: index perm %v for arity-%d relation %s", perm, r.Arity, r.Name))
	}
	key := indexKey(perm, layoutName)
	// Fast path: the index already exists; concurrent readers proceed in
	// parallel under the read lock.
	r.mu.RLock()
	cached, ok := r.indexes[key]
	r.mu.RUnlock()
	if ok {
		return cached
	}
	// Slow path: build under the write lock (double-checked — another
	// goroutine may have built it while we waited).
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.indexes[key]; ok {
		return t
	}
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
		}
	}
	var t *trie.Trie
	if identity && layoutName == "auto" && r.canonical != nil {
		t = r.canonical
	} else if r.base != nil {
		// Overlay path: permute only the (small) overlay and merge it
		// over the base's cached permuted index, instead of enumerating
		// and re-sorting the whole merged relation. Lock order is always
		// merged-relation → base-relation, never the reverse, so holding
		// r.mu across base.Index cannot deadlock.
		baseIdx := r.base.Index(perm, layout, layoutName)
		t = delta.MergedView(baseIdx,
			delta.Permute(r.ovIns, perm, layout),
			delta.Permute(r.ovDel, perm, layout),
			layout)
	} else {
		// Re-sort the permuted columns through the columnar builder: one
		// enumeration pass fills exact-size columns, the radix sort does
		// the rest (no per-tuple buffers or comparison closures).
		n := r.canonical.Cardinality()
		cols := make([][]uint32, r.Arity)
		for i := range cols {
			cols[i] = make([]uint32, 0, n)
		}
		var anns []float64
		if r.Annotated {
			anns = make([]float64, 0, n)
		}
		r.canonical.ForEachTuple(func(tp []uint32, ann float64) {
			for i, p := range perm {
				cols[i] = append(cols[i], tp[p])
			}
			if r.Annotated {
				anns = append(anns, ann)
			}
		})
		t = trie.FromColumns(cols, anns, r.Op, layout)
	}
	r.indexes[key] = t
	return t
}

// Options configures query execution; the zero value is the fully
// optimized engine. The ablation fields reproduce the "-R", "-RA", "-S"
// and "-GHD" rows of Tables 8, 11 and 13.
type Options struct {
	// Layout is the storage layout policy (nil = set-level auto
	// optimizer, §4.4); LayoutName keys the relation index cache
	// ("auto", "uint", "bitset", "composite").
	Layout     trie.LayoutFunc
	LayoutName string
	// Intersect controls intersection algorithm selection (§4.2).
	Intersect set.Config
	// SingleBag forces single-bag GHDs (Table 8 "-GHD").
	SingleBag bool
	// NoPushdown disables cross-bag selection pushdown (Table 13 "-GHD").
	NoPushdown bool
	// NoBagDedup disables redundant-bag elimination (Appendix B.2).
	NoBagDedup bool
	// NaiveRecursion disables seminaive evaluation for monotone
	// aggregates: the full rule body is re-evaluated each round (§3.3
	// "Naive recursion is not an acceptable solution in applications
	// such as SSSP" — this models engines without seminaive deltas).
	NaiveRecursion bool
	// Parallelism bounds the worker count for the outer loop of each
	// bag's generic join; 0 means GOMAXPROCS.
	Parallelism int
	// Timeout aborts query execution cooperatively after the given
	// duration (0 = no limit); Run returns ErrTimeout. The benchmark
	// harness uses it to reproduce the paper's "t/o" entries.
	Timeout time.Duration
	// Limit pushes a row budget into listing execution: the final listing
	// bag stops its loop nest cooperatively once Limit distinct output
	// tuples have been emitted (Result.Truncated reports the early stop),
	// instead of materializing the full join. The budget counts
	// post-deduplication tuples even when the listing projects variables
	// away, so a limited result holds at least Limit distinct tuples
	// whenever the full result has that many (workers may overshoot by
	// the tuples in flight when the stop latches). It applies only to
	// un-aggregated rules; aggregates execute in full. 0 means no limit.
	Limit int
	// Ctx, when non-nil, cancels execution cooperatively: a cancelled
	// context (client disconnect) or spent context deadline trips the
	// loop nest's stop flag at the next per-value check. Run returns
	// ErrCanceled or ErrTimeout accordingly. Per-request, not part of a
	// cacheable plan — servers thread it through Prepared.RunWith.
	Ctx context.Context
}

func (o Options) layout() trie.LayoutFunc {
	if o.Layout == nil {
		return trie.AutoLayout
	}
	return o.Layout
}

func (o Options) layoutName() string {
	if o.LayoutName == "" {
		return "auto"
	}
	return o.LayoutName
}

// Ablations used across the benchmark suite (§5.3).
var (
	// OptDefault is the full EmptyHeaded optimizer.
	OptDefault = Options{}
	// OptNoLayout ("-R") disables SIMD-friendly layout mixing: all sets
	// stored as uint arrays.
	OptNoLayout = Options{Layout: trie.UintLayout, LayoutName: "uint"}
	// OptNoLayoutNoAlgo ("-RA") additionally disables intersection
	// algorithm selection (scalar merge only).
	OptNoLayoutNoAlgo = Options{
		Layout: trie.UintLayout, LayoutName: "uint",
		Intersect: set.Config{Algo: set.AlgoMerge},
	}
	// OptNoSIMD ("-S") keeps layouts but processes dense words
	// bit-by-bit.
	OptNoSIMD = Options{Intersect: set.Config{BitByBit: true}}
	// OptNoGHD forces single-bag plans (the LogicBlox-style plan of
	// Fig. 3b).
	OptNoGHD = Options{SingleBag: true}
)
