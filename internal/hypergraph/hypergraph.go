// Package hypergraph models conjunctive queries as hypergraphs (§2.1):
// one vertex per query variable, one hyperedge per body atom. It computes
// fractional edge covers and AGM bounds via the lp package.
package hypergraph

import (
	"fmt"
	"math"
	"sort"

	"emptyheaded/internal/lp"
)

// Edge is one hyperedge: the variables of one body atom.
type Edge struct {
	// Name identifies the atom (unique per atom, e.g. "R#0").
	Name string
	// Rel is the underlying relation name.
	Rel string
	// Vars are the distinct variables the atom binds.
	Vars []string
	// Size is the cardinality estimate |R_e| (≥ 1).
	Size float64
}

// Hypergraph is a query hypergraph.
type Hypergraph struct {
	Edges []Edge
	vars  []string
}

// New builds a hypergraph from edges, collecting the variable universe.
func New(edges []Edge) *Hypergraph {
	h := &Hypergraph{Edges: edges}
	seen := map[string]bool{}
	for _, e := range edges {
		for _, v := range e.Vars {
			if !seen[v] {
				seen[v] = true
				h.vars = append(h.vars, v)
			}
		}
	}
	return h
}

// Vars returns the variable universe in first-appearance order.
func (h *Hypergraph) Vars() []string { return h.vars }

// HasVar reports whether edge e binds variable v.
func (e Edge) HasVar(v string) bool {
	for _, x := range e.Vars {
		if x == v {
			return true
		}
	}
	return false
}

// FractionalCover solves the fractional edge cover LP for covering the
// given variables using the edges with the given indices: minimize
// Σ x_e·w_e subject to, for each variable, Σ_{e∋v} x_e ≥ 1, x ≥ 0.
// Uniform weights (w=1) give the fractional edge cover number used as the
// GHD width; w_e = log|R_e| gives the log of the AGM bound.
func (h *Hypergraph) FractionalCover(vars []string, edgeIdx []int, weighted bool) (cover []float64, obj float64, err error) {
	if len(vars) == 0 {
		return make([]float64, len(edgeIdx)), 0, nil
	}
	c := make([]float64, len(edgeIdx))
	for i, ei := range edgeIdx {
		if weighted {
			sz := h.Edges[ei].Size
			if sz < 2 {
				sz = 2 // avoid zero-cost edges making the LP degenerate
			}
			c[i] = math.Log(sz)
		} else {
			c[i] = 1
		}
	}
	A := make([][]float64, len(vars))
	b := make([]float64, len(vars))
	for vi, v := range vars {
		A[vi] = make([]float64, len(edgeIdx))
		b[vi] = 1
		for i, ei := range edgeIdx {
			if h.Edges[ei].HasVar(v) {
				A[vi][i] = 1
			}
		}
	}
	return lp.Minimize(c, A, b)
}

// Width returns the fractional edge cover number of vars using the given
// edges (the AGM exponent with uniform relation sizes). It returns +Inf
// when the edges cannot cover vars.
func (h *Hypergraph) Width(vars []string, edgeIdx []int) float64 {
	_, w, err := h.FractionalCover(vars, edgeIdx, false)
	if err != nil {
		return math.Inf(1)
	}
	return w
}

// AGM returns the AGM bound on the output size of joining the given edges
// over all their variables: the minimum of Π|R_e|^{x_e} over feasible
// fractional covers (Eq. 1 of the paper).
func (h *Hypergraph) AGM(edgeIdx []int) float64 {
	vars := map[string]bool{}
	var vlist []string
	for _, ei := range edgeIdx {
		for _, v := range h.Edges[ei].Vars {
			if !vars[v] {
				vars[v] = true
				vlist = append(vlist, v)
			}
		}
	}
	_, logBound, err := h.FractionalCover(vlist, edgeIdx, true)
	if err != nil {
		return math.Inf(1)
	}
	return math.Exp(logBound)
}

// ConnectedComponents partitions the given edges into components, where
// two edges are connected when they share any variable not in the
// separator set. This drives the recursive GHD construction (§3.1).
func (h *Hypergraph) ConnectedComponents(edgeIdx []int, separator map[string]bool) [][]int {
	parent := make(map[int]int, len(edgeIdx))
	for _, e := range edgeIdx {
		parent[e] = e
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVar := map[string][]int{}
	for _, ei := range edgeIdx {
		for _, v := range h.Edges[ei].Vars {
			if !separator[v] {
				byVar[v] = append(byVar[v], ei)
			}
		}
	}
	for _, es := range byVar {
		for i := 1; i < len(es); i++ {
			union(es[0], es[i])
		}
	}
	groups := map[int][]int{}
	for _, ei := range edgeIdx {
		r := find(ei)
		groups[r] = append(groups[r], ei)
	}
	var comps [][]int
	for _, g := range groups {
		sort.Ints(g)
		comps = append(comps, g)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// String renders the hypergraph for debugging.
func (h *Hypergraph) String() string {
	s := "H{"
	for i, e := range h.Edges {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s%v", e.Rel, e.Vars)
	}
	return s + "}"
}
