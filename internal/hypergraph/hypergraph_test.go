package hypergraph

import (
	"math"
	"testing"
)

func triangle() *Hypergraph {
	return New([]Edge{
		{Name: "R#0", Rel: "R", Vars: []string{"x", "y"}, Size: 100},
		{Name: "S#1", Rel: "S", Vars: []string{"y", "z"}, Size: 100},
		{Name: "T#2", Rel: "T", Vars: []string{"x", "z"}, Size: 100},
	})
}

func TestVarsUniverse(t *testing.T) {
	h := triangle()
	vars := h.Vars()
	if len(vars) != 3 || vars[0] != "x" || vars[1] != "y" || vars[2] != "z" {
		t.Fatalf("vars=%v", vars)
	}
}

func TestTriangleWidth(t *testing.T) {
	h := triangle()
	w := h.Width([]string{"x", "y", "z"}, []int{0, 1, 2})
	if math.Abs(w-1.5) > 1e-6 {
		t.Fatalf("width=%v want 1.5", w)
	}
	// Uncoverable variables have infinite width.
	if w := h.Width([]string{"q"}, []int{0}); !math.IsInf(w, 1) {
		t.Fatalf("uncoverable width=%v", w)
	}
	// Empty variable set costs nothing.
	if w := h.Width(nil, []int{0}); w != 0 {
		t.Fatalf("empty width=%v", w)
	}
}

func TestAGMBound(t *testing.T) {
	h := triangle()
	// AGM for the triangle with |R|=|S|=|T|=100 is 100^{3/2} = 1000
	// (Example 2.1 of the paper).
	agm := h.AGM([]int{0, 1, 2})
	if math.Abs(agm-1000) > 1 {
		t.Fatalf("AGM=%v want 1000", agm)
	}
	// A single binary edge: AGM = |R|.
	agm1 := h.AGM([]int{0})
	if math.Abs(agm1-100) > 1e-6 {
		t.Fatalf("AGM single=%v want 100", agm1)
	}
}

func TestAGMUnequalSizes(t *testing.T) {
	// Path query R(x,y) ⋈ S(y,z): AGM = |R|·|S|.
	h := New([]Edge{
		{Name: "R#0", Rel: "R", Vars: []string{"x", "y"}, Size: 50},
		{Name: "S#1", Rel: "S", Vars: []string{"y", "z"}, Size: 20},
	})
	agm := h.AGM([]int{0, 1})
	if math.Abs(agm-1000) > 1 {
		t.Fatalf("AGM=%v want 1000", agm)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Barbell: removing x (the separator of the U bag) splits the two
	// triangles.
	h := New([]Edge{
		{Name: "R#0", Rel: "R", Vars: []string{"x", "y"}, Size: 10},
		{Name: "S#1", Rel: "S", Vars: []string{"y", "z"}, Size: 10},
		{Name: "T#2", Rel: "T", Vars: []string{"x", "z"}, Size: 10},
		{Name: "R2#3", Rel: "R", Vars: []string{"x2", "y2"}, Size: 10},
		{Name: "S2#4", Rel: "S", Vars: []string{"y2", "z2"}, Size: 10},
		{Name: "T2#5", Rel: "T", Vars: []string{"x2", "z2"}, Size: 10},
	})
	comps := h.ConnectedComponents([]int{0, 1, 2, 3, 4, 5}, map[string]bool{})
	if len(comps) != 2 {
		t.Fatalf("components=%v", comps)
	}
	// With every variable in the separator, each edge is isolated.
	sep := map[string]bool{"x": true, "y": true, "z": true, "x2": true, "y2": true, "z2": true}
	comps = h.ConnectedComponents([]int{0, 1, 2, 3, 4, 5}, sep)
	if len(comps) != 6 {
		t.Fatalf("fully separated components=%v", comps)
	}
}

func TestFractionalCoverVector(t *testing.T) {
	h := triangle()
	cover, obj, err := h.FractionalCover([]string{"x", "y", "z"}, []int{0, 1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-1.5) > 1e-6 {
		t.Fatalf("obj=%v", obj)
	}
	// The optimal cover is (1/2,1/2,1/2); verify feasibility.
	for vi, v := range []string{"x", "y", "z"} {
		var sum float64
		for i, ei := range []int{0, 1, 2} {
			if h.Edges[ei].HasVar(v) {
				sum += cover[i]
			}
		}
		if sum < 1-1e-6 {
			t.Fatalf("var %d (%s) uncovered: %v", vi, v, cover)
		}
	}
}

func TestStringRendering(t *testing.T) {
	if s := triangle().String(); s == "" {
		t.Fatal("empty String()")
	}
}
