package bench

import (
	"strings"
	"testing"
	"time"
)

func TestCellFormatting(t *testing.T) {
	cases := []struct {
		c    Cell
		want string
	}{
		{Seconds(1500 * time.Millisecond), "1.50s"},
		{Seconds(2500 * time.Microsecond), "2.5ms"},
		{Seconds(800 * time.Nanosecond), "0.8µs"},
		{Ratio(3.456), "3.46x"},
		{Num(42), "42"},
		{Note("t/o"), "t/o"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Fatalf("Cell %v = %q want %q", c.c, got, c.want)
		}
	}
}

func TestTableFormatAligned(t *testing.T) {
	tbl := &Table{
		ID: "t", Title: "demo",
		Columns: []string{"a", "bb"},
		Rows: []Row{
			{Label: "row1", Cells: []Cell{Num(1), Num(2)}},
			{Label: "longer-row", Cells: []Cell{Num(3), Note("t/o")}},
		},
	}
	s := tbl.Format()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "t/o") {
		t.Fatalf("format:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d:\n%s", len(lines), s)
	}
}

func TestByIDCoversAllExperiments(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %s unmapped", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id accepted")
	}
}

// TestFigure5Quick smoke-runs one figure experiment end to end and checks
// the expected crossover property: at the highest density the bitset
// layout beats uint.
func TestFigure5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment in -short mode")
	}
	cfg := Config{Reps: 3, Quick: true}
	tbl := Figure5(cfg)
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	last := tbl.Rows[len(tbl.Rows)-1] // density 1e-1
	uintT, bitsetT := last.Cells[0].Value, last.Cells[1].Value
	if bitsetT >= uintT {
		t.Errorf("at density 0.1 bitset (%v) should beat uint (%v)", bitsetT, uintT)
	}
}

// TestTable4Quick checks the set-level optimizer is never the worst
// granularity (its Table 4 property).
func TestTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench experiment in -short mode")
	}
	cfg := Config{Reps: 1, Quick: true}
	tbl := Table4(cfg)
	for _, r := range tbl.Rows {
		rel, set, blk := r.Cells[0].Value, r.Cells[1].Value, r.Cells[2].Value
		if set > rel && set > blk {
			t.Errorf("%s: set-level (%.2fx) worst of (rel %.2fx, block %.2fx)",
				r.Label, set, rel, blk)
		}
	}
}
