package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"emptyheaded/internal/quantile"
)

// LoadConfig drives the server load generator: Concurrency workers replay
// Queries round-robin against the /query endpoint at URL for Duration.
type LoadConfig struct {
	// URL is the server base URL (e.g. http://localhost:8080).
	URL string
	// Queries is the replayed mix; workers rotate through it.
	Queries []string
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Duration is the measurement window (default 5s).
	Duration time.Duration
	// Timeout bounds one request (default 30s).
	Timeout time.Duration
	// Limit caps tuples per response, keeping payloads comparable across
	// queries (default 10).
	Limit int
	// NoResultCache sets no_cache on every request so the run measures
	// execution rather than result-cache lookups.
	NoResultCache bool
	// Retry configures shed-response (503/429) retries; the zero value
	// takes the policy defaults (3 attempts, 50ms jittered backoff).
	Retry RetryPolicy
}

// LoadReport aggregates a load-generation run. Throughput and the
// latency percentiles cover successful (200) responses only — fast 503
// rejections would otherwise make an overloaded server look faster.
type LoadReport struct {
	Requests   int64 // total requests sent
	Errors     int64 // transport failures + non-200 responses
	Elapsed    time.Duration
	Throughput float64 // successful requests/second
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
	// Retries counts backoff-and-resend cycles taken on shed (503/429)
	// responses under the retry policy.
	Retries int64
	// Cache/admission deltas over the run, read from /stats (zero when
	// the server's stats endpoint is unavailable).
	PlanHits   int64
	ResultHits int64
	Rejected   int64
}

// DefaultQueryMix is the standard served workload: triangle count (cyclic,
// plan-cache friendly), two-path listing (acyclic, larger output), and a
// degree aggregation (single-atom group-by) over the edge relation.
func DefaultQueryMix(rel string) []string {
	return []string{
		fmt.Sprintf(`TC(;w:long) :- %s(x,y),%s(y,z),%s(x,z); w=<<COUNT(*)>>.`, rel, rel, rel),
		fmt.Sprintf(`P(x,z) :- %s(x,y),%s(y,z).`, rel, rel),
		fmt.Sprintf(`Deg(x;w:long) :- %s(x,y); w=<<COUNT(y)>>.`, rel),
	}
}

type statsCounters struct {
	planHits   int64
	resultHits int64
	rejected   int64
}

func fetchStats(client *http.Client, url string) (statsCounters, bool) {
	var out statsCounters
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return out, false
	}
	defer resp.Body.Close()
	var payload struct {
		PlanCache struct {
			Hits int64 `json:"hits"`
		} `json:"plan_cache"`
		ResultCache struct {
			Hits int64 `json:"hits"`
		} `json:"result_cache"`
		Admission struct {
			RejectedFull    int64 `json:"rejected_full"`
			RejectedTimeout int64 `json:"rejected_timeout"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return out, false
	}
	out.planHits = payload.PlanCache.Hits
	out.resultHits = payload.ResultCache.Hits
	out.rejected = payload.Admission.RejectedFull + payload.Admission.RejectedTimeout
	return out, true
}

// RunLoad replays the query mix against a live eh-server and reports
// throughput and latency percentiles.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("bench: load generator needs a server URL")
	}
	if len(cfg.Queries) == 0 {
		cfg.Queries = DefaultQueryMix("Edge")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 10
	}
	url := strings.TrimSuffix(cfg.URL, "/")
	client := &http.Client{
		Timeout: cfg.Timeout,
		// Default MaxIdleConnsPerHost (2) would churn TCP connections at
		// any real concurrency, measuring handshakes instead of queries.
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Concurrency + 2,
			MaxIdleConnsPerHost: cfg.Concurrency + 2,
		},
	}

	rc := NewRetryClient(client, cfg.Retry)
	before, haveStats := fetchStats(client, url)

	type reqBody struct {
		Query   string `json:"query"`
		Limit   int    `json:"limit"`
		NoCache bool   `json:"no_cache,omitempty"`
	}
	bodies := make([][]byte, len(cfg.Queries))
	for i, q := range cfg.Queries {
		b, err := json.Marshal(reqBody{Query: q, Limit: cfg.Limit, NoCache: cfg.NoResultCache})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	var (
		wg       sync.WaitGroup
		requests atomic.Int64
		errs     atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []time.Duration
			for i := w; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := rc.Post(url+"/query", "application/json", body)
				d := time.Since(t0)
				requests.Add(1)
				if err != nil {
					errs.Add(1)
					continue
				}
				ok := resp.StatusCode == http.StatusOK
				// Drain before closing so the connection is reused.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if !ok {
					errs.Add(1)
					continue
				}
				local = append(local, d)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Requests: requests.Load(),
		Errors:   errs.Load(),
		Retries:  rc.Retries(),
		Elapsed:  elapsed,
	}
	// Workers stop issuing at the deadline but drain in-flight requests
	// (up to Timeout) afterwards; the issuing window, not the drain, is
	// the throughput denominator.
	window := cfg.Duration
	if elapsed < window {
		window = elapsed
	}
	if window > 0 {
		rep.Throughput = float64(rep.Requests-rep.Errors) / window.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		rep.P50 = lats[quantile.Index(n, 0.50)]
		rep.P95 = lats[quantile.Index(n, 0.95)]
		rep.P99 = lats[quantile.Index(n, 0.99)]
		rep.Max = lats[n-1]
	}
	if haveStats {
		if after, ok := fetchStats(client, url); ok {
			rep.PlanHits = after.planHits - before.planHits
			rep.ResultHits = after.resultHits - before.resultHits
			rep.Rejected = after.rejected - before.rejected
		}
	}
	return rep, nil
}

// Format renders the report as an eh-bench table.
func (r *LoadReport) Format() string {
	t := &Table{
		ID:      "load",
		Title:   "query mix replay against a live eh-server",
		Columns: []string{"value"},
	}
	t.Rows = []Row{
		{Label: "requests", Cells: []Cell{Num(float64(r.Requests))}},
		{Label: "errors", Cells: []Cell{Num(float64(r.Errors))}},
		{Label: "retries (shed resends)", Cells: []Cell{Num(float64(r.Retries))}},
		{Label: "throughput (req/s)", Cells: []Cell{Num(r.Throughput)}},
		{Label: "p50 latency", Cells: []Cell{Seconds(r.P50)}},
		{Label: "p95 latency", Cells: []Cell{Seconds(r.P95)}},
		{Label: "p99 latency", Cells: []Cell{Seconds(r.P99)}},
		{Label: "max latency", Cells: []Cell{Seconds(r.Max)}},
		{Label: "plan-cache hits", Cells: []Cell{Num(float64(r.PlanHits))}},
		{Label: "result-cache hits", Cells: []Cell{Num(float64(r.ResultHits))}},
		{Label: "rejected (503)", Cells: []Cell{Num(float64(r.Rejected))}},
	}
	return t.Format()
}
