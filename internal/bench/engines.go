package bench

import (
	"fmt"
	"time"

	"emptyheaded/internal/core"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trie"
)

// Query strings used across the experiments (all atoms name the single
// edge relation, the benchmark convention for self-join pattern queries).
const (
	qTriangle = `TC(;w:long) :- Edge(x,y),Edge(y,z),Edge(x,z); w=<<COUNT(*)>>.`
	qK4       = `K4(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,w),Edge(y,w),Edge(z,w); c=<<COUNT(*)>>.`
	qL31      = `L31(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,w); c=<<COUNT(*)>>.`
	qB31      = `B31(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,x2),Edge(x2,y2),Edge(y2,z2),Edge(x2,z2); c=<<COUNT(*)>>.`
	qPageRank = `
N(;w:int) :- Edge(x,y); w=<<COUNT(x)>>.
InvDeg(x;d:float) :- Edge(x,y); d=1/<<COUNT(*)>>.
PageRank(x;y:float) :- Edge(x,z); y=1/N.
PageRank(x;y:float)*[i=5] :- Edge(x,z),PageRank(z),InvDeg(z); y=0.15+0.85*<<SUM(z)>>.`
)

func qSK4(node uint32) string {
	return fmt.Sprintf(`SK4(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,w),Edge(y,w),Edge(z,w),Edge("%d",x); c=<<COUNT(*)>>.`, node)
}

func qSB31(node uint32) string {
	return fmt.Sprintf(`SB31(;c:long) :- Edge(x,y),Edge(y,z),Edge(x,z),Edge(x,"%d"),Edge("%d",x2),Edge(x2,y2),Edge(y2,z2),Edge(x2,z2); c=<<COUNT(*)>>.`, node, node)
}

func qSSSP(start uint32) string {
	return fmt.Sprintf(`
SSSP(x;y:int) :- Edge("%d",x); y=1.
SSSP(x;y:int)* :- Edge(w,x),SSSP(w); y=<<MIN(w)>>+1.`, start)
}

// Engine configurations: the EmptyHeaded optimizer, its ablations, and
// the LogicBlox stand-in (worst-case optimal leapfrog-style execution:
// single-bag plans, uint-only layouts, min-property galloping, naive
// recursion; §5.1.2).
var (
	engineDefault = exec.Options{}
	engineNoR     = exec.OptNoLayout
	engineNoRA    = exec.OptNoLayoutNoAlgo
	engineNoSIMD  = exec.OptNoSIMD
	engineNoGHD   = exec.OptNoGHD
	engineLB      = exec.Options{
		SingleBag:      true,
		Layout:         trie.UintLayout,
		LayoutName:     "uint",
		Intersect:      set.Config{Algo: set.AlgoGalloping},
		NaiveRecursion: true,
	}
)

// withTimeout attaches the harness timeout used for "t/o" rows.
func withTimeout(o exec.Options, d time.Duration) exec.Options {
	o.Timeout = d
	return o
}

// benchTimeout is the per-measurement cap standing in for the paper's
// 30-minute timeout, scaled to our ~100×-smaller datasets.
const benchTimeout = 20 * time.Second

// newEngine loads g as Edge under the given options.
func newEngine(g *graph.Graph, opts exec.Options) *core.Engine {
	e := core.NewWithOptions(opts)
	e.LoadGraph("Edge", g)
	return e
}

// runQuery executes a query on a fresh engine over g; it returns the
// scalar result and whether the run timed out.
func runQuery(g *graph.Graph, opts exec.Options, query string) (float64, bool) {
	e := newEngine(g, opts)
	res, err := e.Run(query)
	if err == exec.ErrTimeout {
		return 0, true
	}
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	if res.Trie.Arity == 0 {
		return res.Scalar(), false
	}
	return float64(res.Cardinality()), false
}

// runTriangleCount is the Figure 7 inner measurement.
func runTriangleCount(g *graph.Graph, opts exec.Options) float64 {
	v, _ := runQuery(g, opts, qTriangle)
	return v
}

// measureQuery times query execution (engine construction excluded, as
// the paper excludes loading and index build, §5.1.3) and reports "t/o"
// cells on timeout.
func measureQuery(reps int, g *graph.Graph, opts exec.Options, query string) Cell {
	e := newEngine(g, opts)
	// Warm the index cache outside the timed region.
	if _, err := e.Run(query); err != nil {
		if err == exec.ErrTimeout {
			return Note("t/o")
		}
		panic(fmt.Sprintf("bench: %v", err))
	}
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if _, err := e.Run(query); err != nil {
			if err == exec.ErrTimeout {
				return Note("t/o")
			}
			panic(fmt.Sprintf("bench: %v", err))
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return Seconds(best)
}
