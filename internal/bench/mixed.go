package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"emptyheaded/internal/quantile"
)

// MixedConfig drives the mixed update/query workload: QueryConcurrency
// workers replay the query mix while UpdateConcurrency workers stream
// insert/delete batches to /update, both against the same live server —
// the "serving under churn" benchmark.
type MixedConfig struct {
	// URL is the server base URL.
	URL string
	// Queries is the replayed query mix (default: the built-in mix over
	// Relation).
	Queries []string
	// Relation is the updated (and default-queried) edge relation.
	Relation string
	// QueryConcurrency / UpdateConcurrency size the two worker pools
	// (defaults 6 and 2).
	QueryConcurrency  int
	UpdateConcurrency int
	// Duration is the measurement window (default 5s).
	Duration time.Duration
	// Timeout bounds one request (default 30s).
	Timeout time.Duration
	// Limit caps tuples per query response (default 10).
	Limit int
	// BatchRows is the rows per update batch (default 64).
	BatchRows int
	// DeleteFrac is the fraction of update batches that delete a
	// previously inserted batch instead of inserting (default 0.5, so
	// the relation's cardinality stays roughly steady under churn).
	DeleteFrac float64
	// KeySpace bounds the random vertex ids (default 1<<20 — mostly new
	// edges, exercising overlay growth and compaction).
	KeySpace int
	// Seed makes the update stream reproducible.
	Seed int64
	// NoResultCache sets no_cache on queries (churn invalidates the
	// updated relation's entries anyway; this measures pure execution).
	NoResultCache bool
	// Retry configures shed-response (503/429) retries; the zero value
	// takes the policy defaults (3 attempts, 50ms jittered backoff).
	Retry RetryPolicy
}

// MixedReport aggregates one mixed run.
type MixedReport struct {
	Elapsed time.Duration

	// Query side (successful responses only).
	QueryRequests   int64
	QueryErrors     int64
	QueryThroughput float64
	QueryP50        time.Duration
	QueryP95        time.Duration
	QueryP99        time.Duration

	// Retries counts backoff-and-resend cycles taken on shed (503/429)
	// responses across both worker pools.
	Retries int64

	// Update side.
	UpdateBatches    int64
	UpdateRows       int64
	UpdateErrors     int64
	UpdatesPerSecond float64
	RowsPerSecond    float64
	UpdateP50        time.Duration
	UpdateP99        time.Duration

	// Server-side durability deltas over the run (zero when /stats is
	// unavailable).
	WALRecords  int64
	Compactions int64
	OverlayRows int64
}

type durabilityCounters struct {
	walRecords  int64
	compactions int64
	overlayRows int64
}

func fetchDurability(client *http.Client, url string) (durabilityCounters, bool) {
	var out durabilityCounters
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return out, false
	}
	defer resp.Body.Close()
	var payload struct {
		Durability struct {
			WAL struct {
				Records int64 `json:"records"`
			} `json:"wal"`
			Compactions int64 `json:"compactions"`
			Overlays    []struct {
				Rows int64 `json:"rows"`
			} `json:"overlays"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return out, false
	}
	out.walRecords = payload.Durability.WAL.Records
	out.compactions = payload.Durability.Compactions
	for _, ov := range payload.Durability.Overlays {
		out.overlayRows += ov.Rows
	}
	return out, true
}

// RunMixed replays a query mix and an update stream concurrently
// against a live eh-server and reports update throughput plus query
// latency under churn.
func RunMixed(cfg MixedConfig) (*MixedReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("bench: mixed workload needs a server URL")
	}
	if cfg.Relation == "" {
		cfg.Relation = "Edge"
	}
	if len(cfg.Queries) == 0 {
		cfg.Queries = DefaultQueryMix(cfg.Relation)
	}
	if cfg.QueryConcurrency <= 0 {
		cfg.QueryConcurrency = 6
	}
	if cfg.UpdateConcurrency <= 0 {
		cfg.UpdateConcurrency = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 10
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 64
	}
	if cfg.DeleteFrac < 0 || cfg.DeleteFrac > 1 {
		cfg.DeleteFrac = 0.5
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 1 << 20
	}
	url := strings.TrimSuffix(cfg.URL, "/")
	conns := cfg.QueryConcurrency + cfg.UpdateConcurrency + 2
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
		},
	}
	before, haveStats := fetchDurability(client, url)

	type queryBody struct {
		Query   string `json:"query"`
		Limit   int    `json:"limit"`
		NoCache bool   `json:"no_cache,omitempty"`
	}
	queryBodies := make([][]byte, len(cfg.Queries))
	for i, q := range cfg.Queries {
		b, err := json.Marshal(queryBody{Query: q, Limit: cfg.Limit, NoCache: cfg.NoResultCache})
		if err != nil {
			return nil, err
		}
		queryBodies[i] = b
	}

	var (
		wg         sync.WaitGroup
		qRequests  atomic.Int64
		qErrors    atomic.Int64
		uBatches   atomic.Int64
		uRows      atomic.Int64
		uErrors    atomic.Int64
		mu         sync.Mutex
		queryLats  []time.Duration
		updateLats []time.Duration
	)
	rc := NewRetryClient(client, cfg.Retry)
	post := func(path string, body []byte) (bool, time.Duration) {
		t0 := time.Now()
		resp, err := rc.Post(url+path, "application/json", body)
		d := time.Since(t0)
		if err != nil {
			return false, d
		}
		ok := resp.StatusCode == http.StatusOK
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return ok, d
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)

	for w := 0; w < cfg.QueryConcurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []time.Duration
			for i := w; time.Now().Before(deadline); i++ {
				ok, d := post("/query", queryBodies[i%len(queryBodies)])
				qRequests.Add(1)
				if !ok {
					qErrors.Add(1)
					continue
				}
				local = append(local, d)
			}
			mu.Lock()
			queryLats = append(queryLats, local...)
			mu.Unlock()
		}(w)
	}

	type updateBody struct {
		Name          string     `json:"name"`
		InsertColumns [][]uint32 `json:"insert_columns,omitempty"`
		DeleteColumns [][]uint32 `json:"delete_columns,omitempty"`
	}
	for w := 0; w < cfg.UpdateConcurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			var local []time.Duration
			// Ring of previously inserted batches available for deletion,
			// keeping cardinality roughly steady under sustained churn.
			var ring [][][]uint32
			randBatch := func() [][]uint32 {
				cols := [][]uint32{make([]uint32, cfg.BatchRows), make([]uint32, cfg.BatchRows)}
				for i := 0; i < cfg.BatchRows; i++ {
					cols[0][i] = uint32(rng.Intn(cfg.KeySpace))
					cols[1][i] = uint32(rng.Intn(cfg.KeySpace))
				}
				return cols
			}
			for time.Now().Before(deadline) {
				var body updateBody
				body.Name = cfg.Relation
				if len(ring) > 0 && rng.Float64() < cfg.DeleteFrac {
					body.DeleteColumns = ring[0]
					ring = ring[1:]
				} else {
					cols := randBatch()
					body.InsertColumns = cols
					ring = append(ring, cols)
				}
				b, err := json.Marshal(body)
				if err != nil {
					uErrors.Add(1)
					continue
				}
				ok, d := post("/update", b)
				uBatches.Add(1)
				uRows.Add(int64(cfg.BatchRows))
				if !ok {
					uErrors.Add(1)
					continue
				}
				local = append(local, d)
			}
			mu.Lock()
			updateLats = append(updateLats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &MixedReport{
		Elapsed:       elapsed,
		QueryRequests: qRequests.Load(),
		QueryErrors:   qErrors.Load(),
		Retries:       rc.Retries(),
		UpdateBatches: uBatches.Load(),
		UpdateRows:    uRows.Load(),
		UpdateErrors:  uErrors.Load(),
	}
	window := cfg.Duration
	if elapsed < window {
		window = elapsed
	}
	if window > 0 {
		rep.QueryThroughput = float64(rep.QueryRequests-rep.QueryErrors) / window.Seconds()
		rep.UpdatesPerSecond = float64(rep.UpdateBatches-rep.UpdateErrors) / window.Seconds()
		rep.RowsPerSecond = rep.UpdatesPerSecond * float64(cfg.BatchRows)
	}
	sort.Slice(queryLats, func(i, j int) bool { return queryLats[i] < queryLats[j] })
	if n := len(queryLats); n > 0 {
		rep.QueryP50 = queryLats[quantile.Index(n, 0.50)]
		rep.QueryP95 = queryLats[quantile.Index(n, 0.95)]
		rep.QueryP99 = queryLats[quantile.Index(n, 0.99)]
	}
	sort.Slice(updateLats, func(i, j int) bool { return updateLats[i] < updateLats[j] })
	if n := len(updateLats); n > 0 {
		rep.UpdateP50 = updateLats[quantile.Index(n, 0.50)]
		rep.UpdateP99 = updateLats[quantile.Index(n, 0.99)]
	}
	if haveStats {
		if after, ok := fetchDurability(client, url); ok {
			rep.WALRecords = after.walRecords - before.walRecords
			rep.Compactions = after.compactions - before.compactions
			rep.OverlayRows = after.overlayRows
		}
	}
	return rep, nil
}

// Format renders the report as an eh-bench table.
func (r *MixedReport) Format() string {
	t := &Table{
		ID:      "mixed",
		Title:   "mixed update/query workload against a live eh-server",
		Columns: []string{"value"},
	}
	t.Rows = []Row{
		{Label: "query requests", Cells: []Cell{Num(float64(r.QueryRequests))}},
		{Label: "query errors", Cells: []Cell{Num(float64(r.QueryErrors))}},
		{Label: "query throughput (req/s)", Cells: []Cell{Num(r.QueryThroughput)}},
		{Label: "query p50 latency", Cells: []Cell{Seconds(r.QueryP50)}},
		{Label: "query p95 latency", Cells: []Cell{Seconds(r.QueryP95)}},
		{Label: "query p99 latency", Cells: []Cell{Seconds(r.QueryP99)}},
		{Label: "retries (shed resends)", Cells: []Cell{Num(float64(r.Retries))}},
		{Label: "update batches", Cells: []Cell{Num(float64(r.UpdateBatches))}},
		{Label: "update errors", Cells: []Cell{Num(float64(r.UpdateErrors))}},
		{Label: "updates/s (batches)", Cells: []Cell{Num(r.UpdatesPerSecond)}},
		{Label: "update rows/s", Cells: []Cell{Num(r.RowsPerSecond)}},
		{Label: "update p50 latency", Cells: []Cell{Seconds(r.UpdateP50)}},
		{Label: "update p99 latency", Cells: []Cell{Seconds(r.UpdateP99)}},
		{Label: "wal records", Cells: []Cell{Num(float64(r.WALRecords))}},
		{Label: "compactions", Cells: []Cell{Num(float64(r.Compactions))}},
		{Label: "overlay rows (end)", Cells: []Cell{Num(float64(r.OverlayRows))}},
	}
	return t.Format()
}
