package bench

import (
	"emptyheaded/internal/datasets"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/set"
	"emptyheaded/internal/trie"
)

// Table10 measures the relative cost of a random node ordering versus
// ordering by degree on triangle counting, with the default (undirected)
// and symmetrically filtered (pruned) inputs, under the homogeneous uint
// layout and the full EmptyHeaded optimizer (Appendix A.1.2).
func Table10(cfg Config) *Table {
	t := &Table{
		ID:      "table10",
		Title:   "Random vs degree ordering (relative time, triangle counting)",
		Columns: []string{"default-uint", "default-EH", "filtered-uint", "filtered-EH"},
	}
	uintOpts := exec.Options{Layout: trie.UintLayout, LayoutName: "uint"}
	for _, name := range datasets.Small {
		g := datasets.Load(name)
		deg := g.Reorder(graph.OrderDegree, 0)
		rnd := g.Reorder(graph.OrderRandom, 7)
		cells := make([]Cell, 0, 4)
		for _, filtered := range []bool{false, true} {
			gd, gr := deg, rnd
			if filtered {
				gd, gr = deg.Prune(), rnd.Prune()
			}
			for _, opts := range []exec.Options{uintOpts, engineDefault} {
				td := measureQuery(cfg.reps(), gd, withTimeout(opts, benchTimeout), qTriangle)
				tr := measureQuery(cfg.reps(), gr, withTimeout(opts, benchTimeout), qTriangle)
				if td.Note != "" || tr.Note != "" {
					cells = append(cells, Note("t/o"))
					continue
				}
				cells = append(cells, Ratio(tr.Value/td.Value))
			}
		}
		// Reorder to match the column layout (uint, EH per filter state).
		t.Rows = append(t.Rows, Row{Label: name, Cells: cells})
	}
	return t
}

// Table11 disables engine features on triangle counting: "-S" (no
// word-level parallelism), "-R" (homogeneous uint layout), "-SR" (both),
// on the default and symmetrically filtered inputs (Appendix A.1.2).
func Table11(cfg Config) *Table {
	t := &Table{
		ID:      "table11",
		Title:   "Feature ablations on triangle counting (relative time)",
		Columns: []string{"def -S", "def -R", "def -SR", "filt -S", "filt -R", "filt -SR"},
	}
	noS := exec.OptNoSIMD
	noR := exec.OptNoLayout
	noSR := exec.Options{
		Layout: trie.UintLayout, LayoutName: "uint",
		Intersect: set.Config{BitByBit: true},
	}
	for _, name := range datasets.Small {
		full := datasets.Load(name).Reorder(graph.OrderDegree, 0)
		pruned := datasets.LoadPruned(name)
		var cells []Cell
		for _, g := range []*graph.Graph{full, pruned} {
			base := measureQuery(cfg.reps(), g, engineDefault, qTriangle)
			for _, opts := range []exec.Options{noS, noR, noSR} {
				c := measureQuery(cfg.reps(), g, withTimeout(opts, benchTimeout), qTriangle)
				cells = append(cells, relOrTO(c, base))
			}
		}
		t.Rows = append(t.Rows, Row{Label: name, Cells: cells})
	}
	return t
}
