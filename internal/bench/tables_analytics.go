package bench

import (
	"emptyheaded/internal/baseline"
	"emptyheaded/internal/datasets"
)

// Table6 runs 5 iterations of PageRank on the undirected datasets:
// EH vs Galois (G), PowerGraph (PG), Snap-R (SR), SociaLite (SL),
// LogicBlox (LB) stand-ins. All cells are seconds, as in the paper.
func Table6(cfg Config) *Table {
	t := &Table{
		ID:      "table6",
		Title:   "PageRank ×5 iterations (seconds)",
		Columns: []string{"EH", "G", "PG", "SR", "SL", "LB"},
	}
	names := datasets.Names()
	if cfg.Quick {
		names = datasets.Small
	}
	for _, name := range names {
		g := datasets.Load(name)
		eh := measureQuery(cfg.reps(), g, engineDefault, qPageRank)
		gt := timedBest(cfg.reps(), func() { baseline.LowLevelPageRank(g, 5, 0) })
		pg := timedBest(cfg.reps(), func() { baseline.VertexCentricPageRank(g, 5) })
		sr := timedBest(cfg.reps(), func() { baseline.ScalarMergePageRank(g, 5) })
		sl := timedBest(cfg.reps(), func() { baseline.PairwisePageRank(g, 5) })
		lb := measureQuery(1, g, withTimeout(engineLB, benchTimeout), qPageRank)
		t.Rows = append(t.Rows, Row{Label: name, Cells: []Cell{
			eh, Seconds(gt), Seconds(pg), Seconds(sr), Seconds(sl), lb,
		}})
	}
	return t
}

// Table7 runs SSSP from the highest-degree node of the undirected graphs:
// EH (seminaive) vs Galois (G), PowerGraph (PG), SociaLite (SL) and
// LogicBlox (LB = naive recursion) stand-ins. Seconds.
func Table7(cfg Config) *Table {
	t := &Table{
		ID:      "table7",
		Title:   "SSSP from max-degree node (seconds)",
		Columns: []string{"EH", "G", "PG", "SL", "LB"},
	}
	names := datasets.Names()
	if cfg.Quick {
		names = datasets.Small
	}
	for _, name := range names {
		g := datasets.Load(name)
		start := g.MaxDegreeNode()
		query := qSSSP(start)
		eh := measureQuery(cfg.reps(), g, engineDefault, query)
		gt := timedBest(cfg.reps(), func() { baseline.LowLevelSSSP(g, start) })
		pg := timedBest(cfg.reps(), func() { baseline.VertexCentricSSSP(g, start) })
		sl := timedBest(cfg.reps(), func() { baseline.PairwiseSSSP(g, start) })
		lb := measureQuery(1, g, withTimeout(engineLB, benchTimeout), query)
		t.Rows = append(t.Rows, Row{Label: name, Cells: []Cell{
			eh, Seconds(gt), Seconds(pg), Seconds(sl), lb,
		}})
	}
	return t
}
