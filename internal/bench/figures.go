package bench

import (
	"fmt"

	"emptyheaded/internal/datasets"
	"emptyheaded/internal/gen"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/set"
)

// Table3 prints the dataset inventory: the synthetic stand-ins, their
// sizes, the measured Pearson density skew (§4 fn. 4) and the bitset
// fraction under the set-level optimizer.
func Table3(cfg Config) *Table {
	t := &Table{
		ID:      "table3",
		Title:   "Graph datasets (synthetic stand-ins; see DESIGN.md)",
		Columns: []string{"nodes", "dir-edges", "skew", "bitset-frac", "paper-skew"},
	}
	names := datasets.Names()
	if cfg.Quick {
		names = datasets.Small
	}
	for _, name := range names {
		p, _ := datasets.ByName(name)
		g := datasets.Load(name)
		t.Rows = append(t.Rows, Row{Label: name, Cells: []Cell{
			Num(float64(g.N)),
			Num(float64(g.Edges())),
			Num(g.DensitySkew()),
			Num(datasets.BitsetFraction(g)),
			Num(p.PaperSkew),
		}})
	}
	return t
}

// Figure5 measures uint vs bitset intersection time across densities:
// two sets of the given density over a fixed span, intersected with each
// layout. The crossover (bitset wins at high density) is the figure's
// point.
func Figure5(cfg Config) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Intersection time vs density (uint vs bitset)",
		Columns: []string{"uint", "bitset"},
	}
	const span = 1 << 20
	densities := []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}
	if cfg.Quick {
		densities = []float64{1e-4, 1e-3, 1e-2, 1e-1}
	}
	reps := cfg.reps() * 3 // micro-measurements need more repetitions
	for i, d := range densities {
		card := int(d * span)
		a := gen.UniformSet(card, span, int64(1000+i))
		b := gen.UniformSet(card, span, int64(2000+i))
		ua, ub := set.FromSorted(a), set.FromSorted(b)
		ba, bb := set.NewBitset(a), set.NewBitset(b)
		ut := timedBest(reps, func() { set.IntersectCount(ua, ub) })
		bt := timedBest(reps, func() { set.IntersectCount(ba, bb) })
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("density=%.0e", d),
			Cells: []Cell{Seconds(ut), Seconds(bt)},
		})
	}
	return t
}

// Figure6 measures layouts on sets with a dense region plus a sparse tail
// of varying cardinality: the composite (block-level) layout handles the
// mix where homogeneous layouts pay (§4.3).
func Figure6(cfg Config) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "Intersection time vs sparse-region cardinality (composite layout)",
		Columns: []string{"uint", "bitset", "composite"},
	}
	const denseCard = 1 << 14
	const sparseSpan = 1 << 26
	cards := []int{128, 512, 2048, 8192, 32768}
	if cfg.Quick {
		cards = []int{128, 2048, 32768}
	}
	reps := cfg.reps() * 3
	for i, sc := range cards {
		a := gen.DenseSparseSet(denseCard, sc, sparseSpan, int64(3000+i))
		b := gen.DenseSparseSet(denseCard, sc, sparseSpan, int64(4000+i))
		ua, ub := set.FromSorted(a), set.FromSorted(b)
		ba, bb := set.NewBitset(a), set.NewBitset(b)
		ca, cb := set.NewComposite(a), set.NewComposite(b)
		ut := timedBest(reps, func() { set.IntersectCount(ua, ub) })
		bt := timedBest(reps, func() { set.IntersectCount(ba, bb) })
		ct := timedBest(reps, func() { set.IntersectCount(ca, cb) })
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("sparse-card=%d", sc),
			Cells: []Cell{Seconds(ut), Seconds(bt), Seconds(ct)},
		})
	}
	return t
}

// Figure7 measures node-ordering effect on triangle counting over
// synthetic power-law graphs with varying exponents (Appendix A.1.1).
func Figure7(cfg Config) *Table {
	exps := []float64{2.0, 2.3, 3.0}
	orderings := graph.Orderings
	t := &Table{
		ID:    "fig7",
		Title: "Node ordering effect on triangle counting (synthetic power law)",
	}
	for _, o := range orderings {
		t.Columns = append(t.Columns, o.String())
	}
	n, m := 30000, 300000
	if cfg.Quick {
		n, m = 8000, 60000
	}
	for _, exp := range exps {
		g := gen.PowerLaw(n, m, exp, 777)
		row := Row{Label: fmt.Sprintf("exponent=%.1f", exp)}
		for _, o := range orderings {
			pg := g.Reorder(o, 99).Prune()
			d := timedBest(cfg.reps(), func() {
				runTriangleCount(pg, engineDefault)
			})
			row.Cells = append(row.Cells, Seconds(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table9 measures the cost of computing each node ordering (App. A.1.1).
func Table9(cfg Config) *Table {
	t := &Table{
		ID:    "table9",
		Title: "Node ordering build times",
	}
	for _, o := range graph.Orderings {
		t.Columns = append(t.Columns, o.String())
	}
	names := []string{"higgs", "livejournal"}
	for _, name := range names {
		g := datasets.Load(name)
		row := Row{Label: name}
		for _, o := range graph.Orderings {
			d := timedBest(cfg.reps(), func() { g.Permutation(o, 42) })
			row.Cells = append(row.Cells, Seconds(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
