// Package bench regenerates every table and figure of the paper's
// evaluation (§5, Appendices A and B). Each experiment returns a Table of
// measured values; cmd/eh-bench prints them and bench_test.go wraps them
// as Go benchmarks. EXPERIMENTS.md records measured-vs-paper shapes.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Cell is one measurement.
type Cell struct {
	// Value is seconds (Kind "s"), a ratio (Kind "x"), or a plain number.
	Value float64
	Kind  string
	// Note overrides the value ("t/o", "-").
	Note string
}

// Seconds formats a timing cell.
func Seconds(d time.Duration) Cell { return Cell{Value: d.Seconds(), Kind: "s"} }

// Ratio formats a relative-slowdown cell.
func Ratio(v float64) Cell { return Cell{Value: v, Kind: "x"} }

// Num formats a plain numeric cell.
func Num(v float64) Cell { return Cell{Value: v} }

// Note formats a textual cell ("t/o", "-").
func Note(s string) Cell { return Cell{Note: s} }

func (c Cell) String() string {
	if c.Note != "" {
		return c.Note
	}
	switch c.Kind {
	case "s":
		switch {
		case c.Value < 0.001:
			return fmt.Sprintf("%.1fµs", c.Value*1e6)
		case c.Value < 1:
			return fmt.Sprintf("%.1fms", c.Value*1e3)
		default:
			return fmt.Sprintf("%.2fs", c.Value)
		}
	case "x":
		return fmt.Sprintf("%.2fx", c.Value)
	default:
		if c.Value == float64(int64(c.Value)) && c.Value < 1e15 {
			return fmt.Sprintf("%d", int64(c.Value))
		}
		return fmt.Sprintf("%.3g", c.Value)
	}
}

// Row is one labeled line of a table.
type Row struct {
	Label string
	Cells []Cell
}

// Table is one regenerated experiment.
type Table struct {
	ID      string // "table5", "fig7", …
	Title   string
	Columns []string // cell headers (excluding the row label)
	Rows    []Row
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("dataset")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		if len(c) > widths[i+1] {
			widths[i+1] = len(c)
		}
	}
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r.Cells))
		for ci, c := range r.Cells {
			s := c.String()
			cells[ri][ci] = s
			if ci+1 < len(widths) && len(s) > widths[ci+1] {
				widths[ci+1] = len(s)
			}
		}
	}
	fmt.Fprintf(&sb, "%-*s", widths[0]+2, "")
	for i, c := range t.Columns {
		fmt.Fprintf(&sb, "%*s", widths[i+1]+2, c)
	}
	sb.WriteString("\n")
	for ri, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", widths[0]+2, r.Label)
		for ci := range r.Cells {
			fmt.Fprintf(&sb, "%*s", widths[ci+1]+2, cells[ri][ci])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// timed measures one execution of f.
func timed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// timedBest runs f reps times and keeps the fastest (the paper averages
// the middle five of seven runs; min-of-k is the standard Go equivalent
// for stable micro-measurements).
func timedBest(reps int, f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		if d := timed(f); d < best {
			best = d
		}
	}
	return best
}

// Config scales the experiments.
type Config struct {
	// Reps is the number of repetitions per measurement (fastest kept).
	Reps int
	// Quick restricts experiments to fewer datasets/points for CI runs.
	Quick bool
	// PairwiseBudget bounds intermediate materialization for the
	// pairwise (SociaLite-style) baseline; exceeding it reports "t/o",
	// mirroring the paper's 30-minute timeouts.
	PairwiseBudget int64
}

// DefaultConfig is used by cmd/eh-bench.
var DefaultConfig = Config{Reps: 3, PairwiseBudget: 50_000_000}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 1
	}
	return c.Reps
}

func (c Config) budget() int64 {
	if c.PairwiseBudget == 0 {
		return 50_000_000
	}
	return c.PairwiseBudget
}

// All runs every experiment, in paper order.
func All(cfg Config) []*Table {
	return []*Table{
		Table3(cfg),
		Figure5(cfg),
		Figure6(cfg),
		Figure7(cfg),
		Table4(cfg),
		Table5(cfg),
		Table6(cfg),
		Table7(cfg),
		Table8(cfg),
		Table9(cfg),
		Table10(cfg),
		Table11(cfg),
		Table13(cfg),
	}
}

// ByID returns the experiment function for an id.
func ByID(id string) (func(Config) *Table, bool) {
	m := map[string]func(Config) *Table{
		"table3": Table3, "fig5": Figure5, "fig6": Figure6, "fig7": Figure7,
		"table4": Table4, "table5": Table5, "table6": Table6, "table7": Table7,
		"table8": Table8, "table9": Table9, "table10": Table10,
		"table11": Table11, "table13": Table13,
	}
	f, ok := m[id]
	return f, ok
}

// IDs lists experiment ids in paper order.
func IDs() []string {
	return []string{"table3", "fig5", "fig6", "fig7", "table4", "table5",
		"table6", "table7", "table8", "table9", "table10", "table11", "table13"}
}
