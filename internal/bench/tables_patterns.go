package bench

import (
	"time"

	"emptyheaded/internal/baseline"
	"emptyheaded/internal/datasets"
	"emptyheaded/internal/exec"
	"emptyheaded/internal/graph"
	"emptyheaded/internal/trie"
)

// Table4 compares the relation-, set-, and block-level layout optimizers
// against the oracle on triangle counting (§4.4). The oracle lower bound
// is approximated as the fastest of all whole-relation layout policies
// plus the set-level optimizer (see EXPERIMENTS.md for the caveat).
func Table4(cfg Config) *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Layout optimizer granularity vs oracle (triangle counting, relative time)",
		Columns: []string{"relation", "set", "block"},
	}
	policies := map[string]exec.Options{
		"relation": {Layout: trie.UintLayout, LayoutName: "uint"},
		"set":      {},
		"block":    {Layout: trie.CompositeLayout, LayoutName: "composite"},
	}
	for _, name := range datasets.Small {
		g := datasets.LoadPruned(name)
		times := map[string]float64{}
		for pname, opts := range policies {
			c := measureQuery(cfg.reps(), g, opts, qTriangle)
			times[pname] = c.Value
		}
		// Relation level stores every set as uint ("we found that uint
		// provides the best performance at the relation level", §4.3).
		rel := times["relation"]
		oracle := rel
		for _, k := range []string{"set", "block"} {
			if times[k] < oracle {
				oracle = times[k]
			}
		}
		t.Rows = append(t.Rows, Row{Label: name, Cells: []Cell{
			Ratio(rel / oracle),
			Ratio(times["set"] / oracle),
			Ratio(times["block"] / oracle),
		}})
	}
	return t
}

// Table5 is the headline triangle-counting comparison (§5.2.1): EH vs
// PowerGraph (PG), CGT-X, Snap-R (SR), SociaLite (SL), LogicBlox (LB) on
// pruned, degree-ordered graphs. Columns after EH are relative slowdowns.
func Table5(cfg Config) *Table {
	t := &Table{
		ID:      "table5",
		Title:   "Triangle counting: EH seconds, others relative (×)",
		Columns: []string{"EH", "PG", "CGT-X", "SR", "SL", "LB"},
	}
	names := datasets.Names()
	if cfg.Quick {
		names = datasets.Small
	}
	for _, name := range names {
		gU := datasets.Load(name)
		g := datasets.LoadPruned(name)
		eh := measureQuery(cfg.reps(), g, engineDefault, qTriangle)
		pg := timedBest(cfg.reps(), func() { baseline.VertexCentricTriangleCount(g, 0) })
		cgtx := timedBest(cfg.reps(), func() { baseline.LowLevelTriangleCount(g, 1) })
		sr := timedBest(cfg.reps(), func() { baseline.ScalarMergeTriangleCount(gU, 0) })
		slCell := Note("t/o")
		t0 := time.Now()
		if _, err := baseline.PairwiseTriangleCount(g, cfg.budget()); err == nil {
			slCell = Ratio(time.Since(t0).Seconds() / eh.Value)
		}
		lb := measureQuery(cfg.reps(), g, withTimeout(engineLB, benchTimeout), qTriangle)
		row := Row{Label: name, Cells: []Cell{
			eh,
			Ratio(pg.Seconds() / eh.Value),
			Ratio(cgtx.Seconds() / eh.Value),
			Ratio(sr.Seconds() / eh.Value),
			slCell,
			relOrTO(lb, eh),
		}}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func relOrTO(c, baseline Cell) Cell {
	if c.Note != "" {
		return c
	}
	return Ratio(c.Value / baseline.Value)
}

// Table8 runs the advanced pattern queries (K4, Lollipop, Barbell) with
// the engine ablations of §5.3: "-R" (no layout optimization), "-RA" (no
// layout + no algorithm selection), "-GHD" (single-bag plans), plus the
// SociaLite and LogicBlox stand-ins.
func Table8(cfg Config) *Table {
	t := &Table{
		ID:      "table8",
		Title:   "K4/L31/B31: EH seconds, ablations and baselines relative (×)",
		Columns: []string{"query", "EH", "-R", "-RA", "-GHD", "SL", "LB"},
	}
	type q struct {
		name    string
		query   string
		pruned  bool // K4 is symmetric → pruned input (§5.3)
		pattern string
	}
	qs := []q{
		{"K4", qK4, true, "k4"},
		{"L31", qL31, false, "l31"},
		{"B31", qB31, false, "b31"},
	}
	names := datasets.Small
	if cfg.Quick {
		names = []string{"gplus", "higgs", "patents"}
	}
	for _, name := range names {
		for _, qq := range qs {
			var g *graph.Graph
			if qq.pruned {
				g = datasets.LoadPruned(name)
			} else {
				g = datasets.Load(name)
			}
			eh := measureQuery(cfg.reps(), g, withTimeout(engineDefault, benchTimeout), qq.query)
			noR := measureQuery(1, g, withTimeout(engineNoR, benchTimeout), qq.query)
			noRA := measureQuery(1, g, withTimeout(engineNoRA, benchTimeout), qq.query)
			noGHD := measureQuery(1, g, withTimeout(engineNoGHD, benchTimeout), qq.query)
			sl := Note("t/o")
			t0 := time.Now()
			if _, err := baseline.PairwisePatternCount(g, qq.pattern, cfg.budget()); err == nil {
				if eh.Note == "" {
					sl = Ratio(time.Since(t0).Seconds() / eh.Value)
				} else {
					sl = Seconds(time.Since(t0))
				}
			}
			lb := measureQuery(1, g, withTimeout(engineLB, benchTimeout), qq.query)
			if eh.Note != "" {
				t.Rows = append(t.Rows, Row{Label: name + "/" + qq.name,
					Cells: []Cell{Note(qq.name), eh, noR, noRA, noGHD, sl, lb}})
				continue
			}
			t.Rows = append(t.Rows, Row{Label: name + "/" + qq.name, Cells: []Cell{
				Note(qq.name), eh,
				relOrTO(noR, eh), relOrTO(noRA, eh), relOrTO(noGHD, eh),
				sl, relOrTO(lb, eh),
			}})
		}
	}
	return t
}

// Table13 runs the selection queries (Table 12 / Appendix B.1): 4-clique
// and barbell anchored at a specific node, for a high-degree and a
// low-degree node, with and without cross-bag selection pushdown.
func Table13(cfg Config) *Table {
	t := &Table{
		ID:      "table13",
		Title:   "Selection queries: EH seconds, -GHD (no pushdown) and LB relative (×)",
		Columns: []string{"query", "node", "EH", "-GHD", "LB"},
	}
	names := datasets.Small
	if cfg.Quick {
		names = []string{"higgs", "patents"}
	}
	for _, name := range names {
		g := datasets.Load(name)
		hi := g.MaxDegreeNode()
		lo := minDegreeNode(g)
		for _, sel := range []struct {
			qname string
			build func(uint32) string
		}{{"SK4", qSK4}, {"SB31", qSB31}} {
			for _, node := range []struct {
				label string
				v     uint32
			}{{"high", hi}, {"low", lo}} {
				query := sel.build(node.v)
				eh := measureQuery(cfg.reps(), g, withTimeout(engineDefault, benchTimeout), query)
				noPush := measureQuery(1, g,
					withTimeout(exec.Options{NoPushdown: true}, benchTimeout), query)
				lb := measureQuery(1, g, withTimeout(engineLB, benchTimeout), query)
				label := name + "/" + sel.qname + "/" + node.label
				if eh.Note != "" {
					t.Rows = append(t.Rows, Row{Label: label,
						Cells: []Cell{Note(sel.qname), Note(node.label), eh, noPush, lb}})
					continue
				}
				t.Rows = append(t.Rows, Row{Label: label, Cells: []Cell{
					Note(sel.qname), Note(node.label), eh,
					relOrTO(noPush, eh), relOrTO(lb, eh),
				}})
			}
		}
	}
	return t
}

func minDegreeNode(g *graph.Graph) uint32 {
	best, bd := 0, int(^uint(0)>>1)
	for v := range g.Adj {
		if d := len(g.Adj[v]); d > 0 && d < bd {
			best, bd = v, d
		}
	}
	return uint32(best)
}
