package bench

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy is the client half of the server's failure contract:
// shed responses (503 overload/degraded, 429) are retried with jittered
// exponential backoff, honoring the server's Retry-After hint as a
// floor. Transport errors and every other status pass straight through
// — the caller decides what a 400 or a 500 means.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, the first
	// included (default 3; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the first retry's backoff, doubled per attempt
	// (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the computed backoff, before the Retry-After
	// floor is applied (default 2s).
	MaxBackoff time.Duration
	// Seed feeds the jitter RNG so runs are reproducible (default 1).
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// RetryClient posts JSON bodies with the retry policy applied. Safe for
// concurrent use.
type RetryClient struct {
	c   *http.Client
	pol RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64
}

// NewRetryClient wraps c (nil selects http.DefaultClient) with pol.
func NewRetryClient(c *http.Client, pol RetryPolicy) *RetryClient {
	if c == nil {
		c = http.DefaultClient
	}
	pol = pol.withDefaults()
	return &RetryClient{c: c, pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
}

// Retries returns how many backoff-and-resend cycles the client has
// taken across all requests — the bench report's retry count.
func (rc *RetryClient) Retries() int64 { return rc.retries.Load() }

// Post sends body until it gets a non-shed response or attempts run
// out. The final shed response (body undrained) is returned rather than
// an error so callers can account the 503 exactly like an unwrapped
// client would.
func (rc *RetryClient) Post(url, contentType string, body []byte) (*http.Response, error) {
	for attempt := 1; ; attempt++ {
		resp, err := rc.c.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if !shedStatus(resp.StatusCode) || attempt >= rc.pol.MaxAttempts {
			return resp, nil
		}
		floor := retryAfter(resp)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d := rc.backoff(attempt)
		if floor > d {
			d = floor
		}
		rc.retries.Add(1)
		time.Sleep(d)
	}
}

// Get fetches url under the same shed-retry policy as Post.
func (rc *RetryClient) Get(url string) (*http.Response, error) {
	for attempt := 1; ; attempt++ {
		resp, err := rc.c.Get(url)
		if err != nil {
			return nil, err
		}
		if !shedStatus(resp.StatusCode) || attempt >= rc.pol.MaxAttempts {
			return resp, nil
		}
		floor := retryAfter(resp)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d := rc.backoff(attempt)
		if floor > d {
			d = floor
		}
		rc.retries.Add(1)
		time.Sleep(d)
	}
}

func shedStatus(code int) bool {
	return code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests
}

// retryAfter parses the response's Retry-After seconds (0 when absent
// or not an integer; HTTP-date values are rare enough to ignore here).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff is the jittered exponential schedule: base doubled per
// attempt, capped, then scaled by a uniform [0.5,1.0) factor so a
// synchronized burst of shed clients decorrelates instead of
// stampeding back in lockstep.
func (rc *RetryClient) backoff(attempt int) time.Duration {
	d := rc.pol.BaseBackoff << uint(attempt-1)
	if d > rc.pol.MaxBackoff || d <= 0 {
		d = rc.pol.MaxBackoff
	}
	rc.mu.Lock()
	f := 0.5 + 0.5*rc.rng.Float64()
	rc.mu.Unlock()
	return time.Duration(float64(d) * f)
}
