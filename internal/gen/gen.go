// Package gen produces the synthetic inputs of the reproduction: power-law
// (Chung-Lu) and Erdős–Rényi random graphs standing in for the paper's
// datasets (see DESIGN.md "Substitutions"), plus the synthetic set
// distributions used by the layout experiments (Figures 5 and 6).
package gen

import (
	"math"
	"math/rand"
	"sort"

	"emptyheaded/internal/graph"
)

// PowerLaw generates an undirected Chung-Lu graph: vertex v receives
// expected degree w_v ∝ (v+1)^(−1/(exponent−1)), scaled so the expected
// number of undirected edges is m. This matches the degree-law exponent of
// the SNAP power-law generator used in Figure 7.
func PowerLaw(n int, m int, exponent float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if exponent <= 1.01 {
		exponent = 1.01
	}
	alpha := 1.0 / (exponent - 1.0)
	w := make([]float64, n)
	var total float64
	for v := 0; v < n; v++ {
		w[v] = math.Pow(float64(v+1), -alpha)
		total += w[v]
	}
	// Cumulative distribution for weighted endpoint sampling.
	cum := make([]float64, n)
	acc := 0.0
	for v := 0; v < n; v++ {
		acc += w[v] / total
		cum[v] = acc
	}
	pick := func() uint32 {
		x := rng.Float64()
		i := sort.SearchFloat64s(cum, x)
		if i >= n {
			i = n - 1
		}
		return uint32(i)
	}
	seen := make(map[uint64]bool, m)
	edges := make([][2]uint32, 0, m)
	attempts := 0
	for len(edges) < m && attempts < 20*m {
		attempts++
		u, v := pick(), pick()
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, [2]uint32{u, v})
	}
	return graph.FromEdges(n, edges, true)
}

// ErdosRenyi generates an undirected G(n, m) random graph.
func ErdosRenyi(n int, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, m)
	edges := make([][2]uint32, 0, m)
	attempts := 0
	for len(edges) < m && attempts < 20*m {
		attempts++
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, [2]uint32{u, v})
	}
	return graph.FromEdges(n, edges, true)
}

// UniformSet samples a sorted set of the given cardinality with values
// drawn uniformly from [0, span). It is the Figure 5 workload: density =
// card/span.
func UniformSet(card int, span uint32, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	if card > int(span) {
		card = int(span)
	}
	m := make(map[uint32]bool, card)
	for len(m) < card {
		m[uint32(rng.Int63n(int64(span)))] = true
	}
	out := make([]uint32, 0, card)
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DenseSparseSet builds the Figure 6 workload: a fully dense region of
// denseCard consecutive values starting at 0, followed by sparseCard
// values scattered uniformly over a wide sparse tail.
func DenseSparseSet(denseCard, sparseCard int, sparseSpan uint32, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, 0, denseCard+sparseCard)
	for i := 0; i < denseCard; i++ {
		out = append(out, uint32(i))
	}
	lo := uint32(denseCard)
	m := map[uint32]bool{}
	for len(m) < sparseCard {
		m[lo+uint32(rng.Int63n(int64(sparseSpan)))] = true
	}
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
