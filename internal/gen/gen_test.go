package gen

import (
	"sort"
	"testing"
)

func TestPowerLawBasics(t *testing.T) {
	g := PowerLaw(1000, 5000, 2.3, 1)
	if g.N != 1000 {
		t.Fatalf("N=%d", g.N)
	}
	m := g.Edges()
	if m < 9000 || m > 10000 { // 5000 undirected ≈ 10000 directed
		t.Fatalf("directed edges=%d want ≈10000", m)
	}
	// Determinism.
	g2 := PowerLaw(1000, 5000, 2.3, 1)
	if g2.Edges() != m {
		t.Fatal("not deterministic")
	}
	// Heavier-tailed exponent → higher max degree.
	heavy := PowerLaw(1000, 5000, 1.8, 1)
	light := PowerLaw(1000, 5000, 3.0, 1)
	if heavy.Degree(int(heavy.MaxDegreeNode())) <= light.Degree(int(light.MaxDegreeNode())) {
		t.Fatalf("exponent 1.8 max degree %d should exceed exponent 3.0 max degree %d",
			heavy.Degree(int(heavy.MaxDegreeNode())), light.Degree(int(light.MaxDegreeNode())))
	}
}

func TestPowerLawSkewPositive(t *testing.T) {
	// Power-law graphs have mode ≪ mean, so Pearson's first skewness
	// coefficient (the paper's metric, §4 fn. 4) must be positive.
	for _, exp := range []float64{1.7, 2.3, 3.0} {
		g := PowerLaw(5000, 40000, exp, 7)
		if s := g.DensitySkew(); s <= 0 {
			t.Fatalf("exponent %v: skew=%v want >0", exp, s)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 2000, 3)
	if g.N != 500 {
		t.Fatalf("N=%d", g.N)
	}
	if m := g.Edges(); m < 3900 || m > 4000 {
		t.Fatalf("edges=%d", m)
	}
}

func TestUniformSet(t *testing.T) {
	s := UniformSet(1000, 100000, 5)
	if len(s) != 1000 {
		t.Fatalf("card=%d", len(s))
	}
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Fatal("not sorted")
	}
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			t.Fatal("duplicates")
		}
	}
	// Card capped at span.
	s2 := UniformSet(100, 10, 5)
	if len(s2) != 10 {
		t.Fatalf("capped card=%d want 10", len(s2))
	}
}

func TestDenseSparseSet(t *testing.T) {
	s := DenseSparseSet(256, 100, 1000000, 9)
	if len(s) != 356 {
		t.Fatalf("card=%d", len(s))
	}
	// Dense prefix intact.
	for i := 0; i < 256; i++ {
		if s[i] != uint32(i) {
			t.Fatalf("dense region broken at %d: %d", i, s[i])
		}
	}
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i] < s[j] }) {
		t.Fatal("not sorted")
	}
}
