package wal

import (
	"errors"
	"testing"

	"emptyheaded/internal/fault"
)

// faultLog opens a log in a temp dir routed through a seeded injector.
// Rules are Added after open so segment-creation writes don't shift the
// per-point call counts the tests arm against.
func faultLog(t *testing.T, sync SyncPolicy, seed int64) (*Log, *fault.Injector, string) {
	t.Helper()
	dir := t.TempDir()
	in := fault.New(seed)
	l, _, err := Open(Options{Dir: dir, Sync: sync, FS: fault.NewFS(in, "wal")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l, in, dir
}

// mustAppend appends n records and checks the assigned sequences are
// contiguous from firstSeq.
func mustAppend(t *testing.T, l *Log, n int, firstSeq uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq, err := l.Append(testRecord("Edge", 2))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if seq != firstSeq+uint64(i) {
			t.Fatalf("append: seq %d, want %d", seq, firstSeq+uint64(i))
		}
	}
}

// A short write mid-append is rolled back: the failed record never gets
// a sequence a later append reuses, and replay sees only acked records.
func TestShortWriteRollbackKeepsSeqContiguous(t *testing.T) {
	l, in, dir := faultLog(t, SyncAlways, 11)
	mustAppend(t, l, 2, 1)
	in.Add(fault.Rule{Point: "wal.write", Kind: fault.ShortWrite, OnCall: 1, Frac: 0.5})
	if _, err := l.Append(testRecord("Edge", 3)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("short-write append err = %v (injector: %s)", err, in)
	}
	// The log stays serviceable and the sequence has no hole.
	mustAppend(t, l, 1, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := collect(t, dir)
	if info.Truncated {
		t.Fatalf("replay truncated after in-band rollback: %+v", info)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (injector: %s)", len(got), in)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
	}
}

// A failed fsync under SyncAlways must un-acknowledge the record: the
// frame is truncated away so no future boot replays a batch the caller
// was told did not apply.
func TestFsyncFailureRollback(t *testing.T) {
	l, in, dir := faultLog(t, SyncAlways, 12)
	mustAppend(t, l, 2, 1)
	in.Add(fault.Rule{Point: "wal.sync", Kind: fault.Err, OnCall: 1})
	if _, err := l.Append(testRecord("Edge", 3)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("fsync-failure append err = %v (injector: %s)", err, in)
	}
	mustAppend(t, l, 1, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := collect(t, dir)
	if info.Truncated || len(got) != 3 {
		t.Fatalf("replayed %d records (truncated=%v), want 3 clean (injector: %s)",
			len(got), info.Truncated, in)
	}
}

// When even the rollback truncate fails, the log poisons itself and
// refuses appends — and Probe repairs it once the disk answers again.
func TestPoisonedLogProbeRecovery(t *testing.T) {
	l, in, dir := faultLog(t, SyncAlways, 13)
	mustAppend(t, l, 2, 1)
	in.Add(
		fault.Rule{Point: "wal.sync", Kind: fault.Err, OnCall: 1},
		fault.Rule{Point: "wal.ftruncate", Kind: fault.Err, OnCall: 1},
	)
	if _, err := l.Append(testRecord("Edge", 3)); err == nil {
		t.Fatalf("append with failed rollback should error (injector: %s)", in)
	}
	// Poisoned: appending is refused outright.
	if _, err := l.Append(testRecord("Edge", 1)); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
	// Probe against the still-broken disk fails and repairs nothing.
	in.Add(fault.Rule{Point: "wal.sync", Kind: fault.Err, OnCall: 1})
	if err := l.Probe(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("probe on broken disk err = %v", err)
	}
	// Disk heals: probe repairs the tail and service resumes.
	in.Clear()
	if err := l.Probe(); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	mustAppend(t, l, 1, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := collect(t, dir)
	if info.Truncated || len(got) != 3 {
		t.Fatalf("replayed %d records (truncated=%v), want 3 clean (injector: %s)",
			len(got), info.Truncated, in)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d — the un-acked frame survived repair", i, r.Seq)
		}
	}
}

// Probe on a healthy log is a no-op that leaves no scratch file behind.
func TestProbeHealthyLog(t *testing.T) {
	l, _, dir := faultLog(t, SyncAlways, 14)
	mustAppend(t, l, 1, 1)
	if err := l.Probe(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir)
	if info.Truncated || len(got) != 2 {
		t.Fatalf("replayed %d records (truncated=%v), want 2", len(got), info.Truncated)
	}
}

// A torn write under SyncOff is the documented loss window: the device
// reports success for a frame that only partially hit the platter, and
// the tear is only observable at replay — which truncates it cleanly
// instead of corrupting the records before it.
func TestTornWriteSyncOffLossWindow(t *testing.T) {
	l, in, dir := faultLog(t, SyncOff, 15)
	mustAppend(t, l, 2, 1)
	in.Add(fault.Rule{Point: "wal.write", Kind: fault.Torn, OnCall: 1, Frac: 0.5})
	// The lying device: this append reports success.
	mustAppend(t, l, 1, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := collect(t, dir)
	if !info.Truncated {
		t.Fatalf("torn tail not detected at replay: %+v (injector: %s)", info, in)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones (injector: %s)", len(got), in)
	}
	// The truncated log accepts appends again.
	l2, _, err := Open(Options{Dir: dir, Sync: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if seq, err := l2.Append(testRecord("Edge", 1)); err != nil || seq != 3 {
		t.Fatalf("append after torn-tail truncation: seq %d err %v", seq, err)
	}
}
