package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"emptyheaded/internal/semiring"
)

func testRecord(rel string, n int) *Record {
	ins := [][]uint32{make([]uint32, n), make([]uint32, n)}
	for i := 0; i < n; i++ {
		ins[0][i] = uint32(i)
		ins[1][i] = uint32(i * 7)
	}
	return &Record{Rel: rel, Arity: 2, Op: semiring.None, InsCols: ins}
}

func collect(t *testing.T, dir string) ([]*Record, *ReplayInfo) {
	t.Helper()
	var got []*Record
	l, info, err := Open(Options{Dir: dir, Sync: SyncOff}, func(r *Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	return got, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, info, err := Open(Options{Dir: dir, Sync: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Segments != 0 {
		t.Fatalf("fresh log replayed %+v", info)
	}
	recs := []*Record{
		testRecord("Edge", 3),
		{Rel: "W", Arity: 1, Op: semiring.Sum, InsCols: [][]uint32{{5, 6}}, InsAnns: []float64{0.5, -2}},
		{Rel: "Edge", Arity: 2, Op: semiring.None, DelCols: [][]uint32{{1}, {7}}},
		{Rel: "Edge", Arity: 2, Op: semiring.None,
			InsCols: [][]uint32{{9}, {9}}, DelCols: [][]uint32{{0, 2}, {0, 14}}},
	}
	for i, r := range recs {
		seq, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	st := l.StatsSnapshot()
	if st.Records != 4 || st.Fsyncs < 4 || st.Seq != 4 {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord("Edge", 1)); err == nil {
		t.Fatal("append after close should fail")
	}

	got, info := collect(t, dir)
	if info.Truncated || info.Records != 4 || info.Segments != 1 {
		t.Fatalf("replay info %+v", info)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if !reflect.DeepEqual(got[i], r) {
			t.Fatalf("record %d: %+v != %+v", i, got[i], r)
		}
	}
}

func TestRotateAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord("A", 1)); err != nil {
		t.Fatal(err)
	}
	sealed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if sealed != 1 {
		t.Fatalf("sealed gen %d, want 1", sealed)
	}
	if _, err := l.Append(testRecord("B", 1)); err != nil {
		t.Fatal(err)
	}
	// Replay spans both segments in order, seq continues.
	l.Close()
	got, info := collect(t, dir)
	if info.Segments != 2 || len(got) != 2 || got[0].Rel != "A" || got[1].Rel != "B" || got[1].Seq != 2 {
		t.Fatalf("cross-segment replay: info %+v, records %+v", info, got)
	}

	l, _, err = Open(Options{Dir: dir, Sync: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.TruncateThrough(sealed); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("sealed segment should be removed: %v", err)
	}
	// The current segment survives even if its gen is <= the target.
	if err := l.TruncateThrough(99); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(segPath(dir, 2)); err != nil {
		t.Fatalf("current segment must survive truncation: %v", err)
	}
	got2, _ := func() ([]*Record, *ReplayInfo) { l.Close(); return collect(t, dir) }()
	if len(got2) != 1 || got2[0].Rel != "B" {
		t.Fatalf("post-truncate replay %+v", got2)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncInterval, SyncInterval: 5 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord("Edge", 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.StatsSnapshot().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	l.Close()
}

func TestCorruptMiddleSegmentRefusesReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, Sync: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord("A", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord("B", 4)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload byte in the sealed (non-final) segment.
	p := segPath(dir, 1)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, Sync: SyncOff}, nil); err == nil {
		t.Fatal("corrupt middle segment should fail replay")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "off": SyncOff, "none": SyncOff} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy should error")
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Unrelated files are ignored.
	os.WriteFile(filepath.Join(dir, "wal-junk.log"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	l, info, err := Open(Options{Dir: dir, Sync: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if info.Segments != 0 {
		t.Fatalf("segments %d, want 0", info.Segments)
	}
}
