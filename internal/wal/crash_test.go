package wal

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"emptyheaded/internal/semiring"
)

// writeLog writes n records and returns the frame boundaries (file
// offsets at which a replay may validly stop: after the magic and after
// each complete record).
func writeLog(t *testing.T, dir string, n int, rng *rand.Rand) []int64 {
	t.Helper()
	l, _, err := Open(Options{Dir: dir, Sync: SyncOff}, nil)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int64{int64(len(segMagic))}
	for i := 0; i < n; i++ {
		rows := 1 + rng.Intn(5)
		rec := &Record{Rel: fmt.Sprintf("R%d", rng.Intn(3)), Arity: 2, Op: semiring.None,
			InsCols: [][]uint32{randCol(rng, rows), randCol(rng, rows)}}
		if rng.Intn(3) == 0 {
			d := 1 + rng.Intn(3)
			rec.DelCols = [][]uint32{randCol(rng, d), randCol(rng, d)}
		}
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(segPath(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return boundaries
}

func randCol(rng *rand.Rand, n int) []uint32 {
	col := make([]uint32, n)
	for i := range col {
		col[i] = rng.Uint32() % 1000
	}
	return col
}

// longestPrefix returns how many boundaries (≈ records+1) fit wholly
// below size.
func recordsBelow(boundaries []int64, size int64) int {
	n := 0
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= size {
			n = i
		}
	}
	return n
}

// TestCrashTruncationProperty truncates the log tail at every possible
// byte offset and asserts replay recovers exactly the records whose
// frames fit completely — never a partial batch, never fewer than the
// intact prefix.
func TestCrashTruncationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dir := t.TempDir()
	boundaries := writeLog(t, dir, 12, rng)
	path := segPath(dir, 1)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for size := int64(0); size <= int64(len(full)); size++ {
		if err := os.WriteFile(path, full[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		l, info, err := Open(Options{Dir: dir, Sync: SyncOff}, func(r *Record) error {
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		want := recordsBelow(boundaries, size)
		if got != want {
			t.Fatalf("size %d: replayed %d records, want %d", size, got, want)
		}
		// Truncation is reported whenever bytes past a valid boundary
		// were cut: any size that is neither 0 (a fresh segment) nor
		// exactly a record boundary.
		wantTrunc := size > 0
		for _, b := range boundaries {
			if size == b {
				wantTrunc = false
			}
		}
		if info.Truncated != wantTrunc {
			t.Fatalf("size %d: truncated=%v, want %v", size, info.Truncated, wantTrunc)
		}
		// The file is now cut back to the last valid boundary; append
		// must work and a re-replay must see prefix + the new record.
		if _, err := l.Append(testRecord("X", 1)); err != nil {
			t.Fatalf("size %d: append after recovery: %v", size, err)
		}
		l.Close()
		var again int
		l2, info2, err := Open(Options{Dir: dir, Sync: SyncOff}, func(r *Record) error {
			again++
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: reopen: %v", size, err)
		}
		if again != want+1 || info2.Truncated {
			t.Fatalf("size %d: re-replay %d records (trunc=%v), want %d", size, again, info2.Truncated, want+1)
		}
		l2.Close()
	}
}

// TestCrashCorruptionProperty flips bytes at random offsets and asserts
// replay stops at (or before) the damaged record with a valid prefix,
// applying no partial batch.
func TestCrashCorruptionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		dir := t.TempDir()
		boundaries := writeLog(t, dir, 8, rng)
		path := segPath(dir, 1)
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := len(segMagic) + rng.Intn(len(full)-len(segMagic))
		corrupted := append([]byte(nil), full...)
		corrupted[off] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}

		var seqs []uint64
		l, _, err := Open(Options{Dir: dir, Sync: SyncOff}, func(r *Record) error {
			if err := r.Validate(); err != nil {
				return fmt.Errorf("invalid record surfaced: %w", err)
			}
			seqs = append(seqs, r.Seq)
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: open: %v", trial, err)
		}
		// The corrupted byte lives in some record k (0-based among
		// records); every record before k must replay, none after.
		damaged := recordsBelow(boundaries, int64(off)) // records wholly before the flipped byte
		if len(seqs) < damaged {
			t.Fatalf("trial %d: lost intact records: replayed %d, intact prefix %d", trial, len(seqs), damaged)
		}
		// Replay may exceed `damaged` only if the flip landed in a frame
		// and still checksummed — CRC32C makes that impossible for a
		// single byte flip, so equality must hold.
		if len(seqs) != damaged {
			t.Fatalf("trial %d: replayed %d records past corruption at offset %d (prefix %d)", trial, len(seqs), off, damaged)
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("trial %d: out-of-order seq %v", trial, seqs)
			}
		}
		l.Close()
	}
}

// TestLengthFieldSanity plants an absurd length in a frame header and
// checks replay treats it as a torn tail instead of allocating it.
func TestLengthFieldSanity(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 2, rand.New(rand.NewSource(1)))
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:], 1<<31) // > maxRecordBytes
	f.Write(frame[:])
	f.Close()
	var got int
	l, info, err := Open(Options{Dir: dir, Sync: SyncOff}, func(*Record) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got != 2 || !info.Truncated {
		t.Fatalf("replayed %d (trunc=%v), want 2 truncated", got, info.Truncated)
	}
}
