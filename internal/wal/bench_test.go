package wal

import (
	"math/rand"
	"testing"

	"emptyheaded/internal/semiring"
)

func benchRecord(rng *rand.Rand, rows int) *Record {
	ins := [][]uint32{make([]uint32, rows), make([]uint32, rows)}
	for i := 0; i < rows; i++ {
		ins[0][i] = rng.Uint32()
		ins[1][i] = rng.Uint32()
	}
	return &Record{Rel: "Edge", Arity: 2, Op: semiring.None, InsCols: ins}
}

func benchAppend(b *testing.B, policy SyncPolicy) {
	l, _, err := Open(Options{Dir: b.TempDir(), Sync: policy}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(1))
	rec := benchRecord(rng, 100)
	b.SetBytes(int64(100 * 2 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendFsyncAlways measures the durable-per-batch append
// path (write + fsync per 100-row record).
func BenchmarkWALAppendFsyncAlways(b *testing.B) { benchAppend(b, SyncAlways) }

// BenchmarkWALAppendFsyncOff measures the raw framing+write path.
func BenchmarkWALAppendFsyncOff(b *testing.B) { benchAppend(b, SyncOff) }
