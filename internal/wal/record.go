package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"emptyheaded/internal/semiring"
)

// Record is one durable update batch: per-relation columnar inserts
// (optionally annotated) and full-tuple deletes. Records are the unit
// of atomicity — replay applies a record completely or not at all — and
// the unit of ordering: Seq is assigned by the log at append time, so
// replay re-executes concurrent updates in the one serialized order the
// engine chose (the WAL pins down a single admissible order, which is
// what makes recovery deterministic).
type Record struct {
	// Seq is the log sequence number (assigned by Log.Append).
	Seq uint64
	// Rel names the target relation.
	Rel string
	// Arity is the relation's key-attribute count.
	Arity int
	// Op is the relation's semiring (None for un-annotated relations).
	Op semiring.Op
	// InsCols holds inserted tuples column-wise (InsCols[i] is attribute
	// i of every inserted row); nil or empty when the batch only deletes.
	InsCols [][]uint32
	// InsAnns holds per-row insert annotations; nil iff un-annotated.
	InsAnns []float64
	// DelCols holds deleted tuples column-wise.
	DelCols [][]uint32
}

// InsRows returns the number of inserted rows.
func (r *Record) InsRows() int {
	if len(r.InsCols) == 0 {
		return 0
	}
	return len(r.InsCols[0])
}

// DelRows returns the number of deleted rows.
func (r *Record) DelRows() int {
	if len(r.DelCols) == 0 {
		return 0
	}
	return len(r.DelCols[0])
}

// Annotated reports whether the record carries insert annotations.
func (r *Record) Annotated() bool { return r.InsAnns != nil }

const (
	flagAnnotated = 1 << 0

	// maxRecordBytes caps one record's payload (1 GiB): a corrupt length
	// field must not drive a giant allocation during replay.
	maxRecordBytes = 1 << 30
	// maxRelName caps the relation-name field.
	maxRelName = 1 << 16
)

// Validate checks the record's internal consistency before encoding.
func (r *Record) Validate() error {
	if r.Rel == "" {
		return fmt.Errorf("wal: record without relation name")
	}
	if len(r.Rel) >= maxRelName {
		return fmt.Errorf("wal: relation name %d bytes", len(r.Rel))
	}
	if r.Arity <= 0 || r.Arity > 255 {
		return fmt.Errorf("wal: record arity %d", r.Arity)
	}
	if len(r.InsCols) != 0 && len(r.InsCols) != r.Arity {
		return fmt.Errorf("wal: %d insert columns for arity %d", len(r.InsCols), r.Arity)
	}
	if len(r.DelCols) != 0 && len(r.DelCols) != r.Arity {
		return fmt.Errorf("wal: %d delete columns for arity %d", len(r.DelCols), r.Arity)
	}
	n := -1
	for _, c := range r.InsCols {
		if n < 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("wal: ragged insert columns (%d vs %d rows)", len(c), n)
		}
	}
	if r.InsAnns != nil && n >= 0 && len(r.InsAnns) != n {
		return fmt.Errorf("wal: %d insert rows, %d annotations", n, len(r.InsAnns))
	}
	m := -1
	for _, c := range r.DelCols {
		if m < 0 {
			m = len(c)
		} else if len(c) != m {
			return fmt.Errorf("wal: ragged delete columns (%d vs %d rows)", len(c), m)
		}
	}
	if r.InsRows() == 0 && r.DelRows() == 0 {
		return fmt.Errorf("wal: empty record")
	}
	// An acknowledged record larger than the replay scanner accepts
	// would be classified as a torn tail on boot and silently discarded
	// (together with everything after it) — reject it up front instead.
	size := int64(14+len(r.Rel)) + 4*int64(r.Arity)*int64(r.InsRows()+r.DelRows())
	if r.InsAnns != nil {
		size += 8 * int64(r.InsRows())
	}
	if size > maxRecordBytes {
		return fmt.Errorf("wal: record payload %d bytes exceeds the %d limit; split the batch", size, maxRecordBytes)
	}
	return nil
}

// appendPayload encodes the record body (everything the frame checksums):
//
//	uint64  seq
//	uint8   flags (bit 0: annotated)
//	uint8   arity
//	uint8   op
//	uint8   reserved (0)
//	uint16  len(rel) | rel bytes
//	uint32  nIns
//	uint32  nDel
//	arity × nIns uint32   insert columns, column-major
//	nIns × float64        insert annotations (annotated only)
//	arity × nDel uint32   delete columns, column-major
func (r *Record) appendPayload(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	flags := byte(0)
	if r.Annotated() {
		flags |= flagAnnotated
	}
	dst = append(dst, flags, byte(r.Arity), byte(r.Op), 0)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Rel)))
	dst = append(dst, r.Rel...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.InsRows()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.DelRows()))
	for _, col := range r.InsCols {
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	}
	if r.Annotated() {
		for _, a := range r.InsAnns {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a))
		}
	}
	for _, col := range r.DelCols {
		for _, v := range col {
			dst = binary.LittleEndian.AppendUint32(dst, v)
		}
	}
	return dst
}

// decodeRecord parses one payload. Every length is validated against
// the remaining bytes, so a corrupt (but checksum-colliding) payload
// fails decode instead of panicking.
func decodeRecord(payload []byte) (*Record, error) {
	r := &Record{}
	if len(payload) < 8+4+2 {
		return nil, fmt.Errorf("wal: payload %d bytes, below fixed header", len(payload))
	}
	r.Seq = binary.LittleEndian.Uint64(payload)
	flags := payload[8]
	r.Arity = int(payload[9])
	r.Op = semiring.Op(payload[10])
	relLen := int(binary.LittleEndian.Uint16(payload[12:]))
	p := payload[14:]
	if r.Arity == 0 {
		return nil, fmt.Errorf("wal: zero arity")
	}
	if len(p) < relLen+8 {
		return nil, fmt.Errorf("wal: truncated relation name")
	}
	r.Rel = string(p[:relLen])
	p = p[relLen:]
	nIns := int(binary.LittleEndian.Uint32(p))
	nDel := int(binary.LittleEndian.Uint32(p[4:]))
	p = p[8:]

	annotated := flags&flagAnnotated != 0
	need := r.Arity*nIns*4 + r.Arity*nDel*4
	if annotated {
		need += nIns * 8
	}
	if len(p) != need {
		return nil, fmt.Errorf("wal: body %d bytes, want %d", len(p), need)
	}
	readCols := func(n int) [][]uint32 {
		if n == 0 {
			return nil
		}
		cols := make([][]uint32, r.Arity)
		for c := range cols {
			col := make([]uint32, n)
			for i := range col {
				col[i] = binary.LittleEndian.Uint32(p)
				p = p[4:]
			}
			cols[c] = col
		}
		return cols
	}
	r.InsCols = readCols(nIns)
	if annotated {
		anns := make([]float64, nIns)
		for i := range anns {
			anns[i] = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		}
		r.InsAnns = anns
	}
	r.DelCols = readCols(nDel)
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
