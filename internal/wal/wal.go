// Package wal is EmptyHeaded's write-ahead log: an append-only,
// checksummed, length-framed record log of per-relation insert/delete
// batches, the durability layer between snapshots. Updates append a
// Record (columnar payload) before they apply in memory; on boot the
// log replays on top of the latest snapshot; after a successful
// snapshot the segments it covers are truncated away.
//
// The log is a directory of numbered segment files:
//
//	wal-00000001.log    8-byte magic, then length-framed records
//	wal-00000002.log    … (a new segment starts at every snapshot)
//
// Each record is framed as
//
//	uint32 payloadLen | uint32 crc32c(payload) | payload
//
// so replay can detect a torn tail precisely: it accepts the longest
// prefix of records whose frames are complete and whose checksums
// match, truncates the file there, and resumes appending — an
// acknowledged batch (fsync=always) is never lost, and a half-written
// one is never half-applied.
//
// Fsync policy is configurable: SyncAlways fsyncs before every append
// returns (each acknowledged record survives power loss), SyncInterval
// fsyncs on a background ticker (bounded data loss, much higher
// throughput), SyncOff leaves flushing to the OS.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"emptyheaded/internal/fault"
)

const (
	// segMagic is the 8-byte segment file header.
	segMagic = "EHWALv1\n"
	// segPrefix/segSuffix frame segment file names: wal-%08d.log.
	segPrefix = "wal-"
	segSuffix = ".log"

	frameBytes = 8 // uint32 len + uint32 crc
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs before every Append returns.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (see Options.SyncInterval).
	SyncInterval
	// SyncOff never fsyncs explicitly (the OS flushes when it pleases).
	SyncOff
)

// ParseSyncPolicy maps flag spellings to policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// String returns the flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// Options configures a log.
type Options struct {
	// Dir is the segment directory (created if absent).
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval paces SyncInterval flushes (default 50ms).
	SyncInterval time.Duration
	// FS overrides the log's file operations — fault injection in chaos
	// tests. Nil selects the real filesystem.
	FS fault.FS
}

// ReplayInfo reports what Open recovered.
type ReplayInfo struct {
	// Segments is the number of segment files scanned.
	Segments int
	// Records / Rows / Bytes count the replayed records, their
	// insert+delete rows, and their payload bytes.
	Records int
	Rows    int64
	Bytes   int64
	// Truncated reports that the final segment carried a torn or corrupt
	// tail, which was cut back to the last valid record boundary.
	Truncated bool
	// Duration is the wall time of the replay scan (decode + apply).
	Duration time.Duration
}

// Stats is a point-in-time counter snapshot for metrics.
type Stats struct {
	// Enabled distinguishes a live log from the zero Stats.
	Enabled bool `json:"enabled"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// Seq is the last assigned sequence number.
	Seq uint64 `json:"seq"`
	// Records / Bytes count appends since open (payload bytes).
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes"`
	// Fsyncs / FsyncNanos count explicit fsyncs and their total latency.
	Fsyncs     uint64 `json:"fsyncs"`
	FsyncNanos uint64 `json:"fsync_nanos"`
	// Policy is the configured fsync policy.
	Policy string `json:"policy"`
}

// Log is an open write-ahead log. Append/Rotate/TruncateThrough/Close
// are safe for concurrent use (the engine additionally serializes
// Append to pin the record order to the apply order).
type Log struct {
	opts Options
	fs   fault.FS

	mu       sync.Mutex
	f        fault.File
	gen      uint64 // current segment generation
	seq      uint64 // last assigned record sequence
	size     int64  // committed byte length of the current segment
	dirty    bool   // bytes written since the last fsync
	poisoned bool   // a failed append could not be rolled back; Probe repairs
	closed   bool   // Close was called; terminal

	records    atomic.Uint64
	bytes      atomic.Uint64
	fsyncs     atomic.Uint64
	fsyncNanos atomic.Uint64

	// fsyncObs, when set, receives every fsync's wall duration (called
	// under mu; keep it cheap — a histogram observe, not I/O).
	fsyncObs func(time.Duration)

	closeOnce sync.Once
	stopSync  chan struct{}
	syncDone  chan struct{}
}

// Open recovers the log in opts.Dir: every segment is scanned in
// generation order, each valid record is handed to apply (in sequence
// order), a torn tail on the final segment is truncated away, and the
// log opens for appending. A nil apply just validates and positions.
//
// Corruption anywhere except the final segment's tail is returned as an
// error — records beyond a damaged middle segment were acknowledged
// after it, and silently skipping them would reorder recovery.
func Open(opts Options, apply func(*Record) error) (*Log, *ReplayInfo, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: no directory")
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 50 * time.Millisecond
	}
	fs := opts.FS
	if fs == nil {
		fs = fault.OS
	}
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	gens, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{opts: opts, fs: fs}
	info := &ReplayInfo{}
	t0 := time.Now()
	for i, gen := range gens {
		last := i == len(gens)-1
		if err := l.replaySegment(gen, last, apply, info); err != nil {
			return nil, nil, err
		}
	}
	info.Segments = len(gens)
	info.Duration = time.Since(t0)

	// Open (or create) the tail segment for appending.
	if len(gens) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, nil, err
		}
	} else {
		tail := segPath(opts.Dir, gens[len(gens)-1])
		f, err := fs.OpenFile(tail, os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		l.f = f
		l.gen = gens[len(gens)-1]
		l.size = st.Size()
	}

	if opts.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, info, nil
}

func segPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, gen, segSuffix))
}

// listSegments returns the segment generations in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var gen uint64
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &gen); err != nil || gen == 0 {
			continue
		}
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// replaySegment scans one segment. On the final segment, damage
// truncates; on earlier segments, damage is an error.
func (l *Log) replaySegment(gen uint64, isLast bool, apply func(*Record) error, info *ReplayInfo) error {
	path := segPath(l.opts.Dir, gen)
	data, err := l.fs.ReadFile(path)
	if err != nil {
		return err
	}
	truncateTo := func(off int) error {
		info.Truncated = true
		return l.fs.Truncate(path, int64(off))
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		if !isLast {
			return fmt.Errorf("wal: %s: bad segment magic", path)
		}
		// Torn segment creation: rewrite the header, keep nothing.
		if err := l.fs.WriteFile(path, []byte(segMagic), 0o644); err != nil {
			return err
		}
		if len(data) > 0 {
			info.Truncated = true
		}
		return nil
	}
	off := len(segMagic)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return nil // clean end
		}
		if len(rest) < frameBytes {
			break // torn frame header
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen <= 0 || plen > maxRecordBytes || len(rest) < frameBytes+plen {
			break // absurd or truncated length
		}
		payload := rest[frameBytes : frameBytes+plen]
		if crc32.Checksum(payload, castagnoli) != crc {
			break // corrupt payload
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break // checksum collided with garbage; treat as corruption
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				return fmt.Errorf("wal: replay record seq %d: %w", rec.Seq, err)
			}
		}
		if rec.Seq > l.seq {
			l.seq = rec.Seq
		}
		info.Records++
		info.Rows += int64(rec.InsRows() + rec.DelRows())
		info.Bytes += int64(plen)
		off += frameBytes + plen
	}
	if !isLast {
		return fmt.Errorf("wal: %s: corrupt record at offset %d (not the final segment; refusing to skip)", path, off)
	}
	return truncateTo(off)
}

func (l *Log) createSegment(gen uint64) error {
	// O_APPEND matters beyond convenience: the failed-append rollback
	// truncates the segment, and without it the next write would land at
	// the stale file offset past EOF, leaving a hole of zeros that replay
	// reads as a torn tail (silently dropping the acked records after it).
	f, err := l.fs.OpenFile(segPath(l.opts.Dir, gen), os.O_RDWR|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.gen = gen
	l.size = int64(len(segMagic))
	return nil
}

// Append assigns the record its sequence number, writes one frame, and
// applies the fsync policy. It returns the assigned sequence.
func (l *Log) Append(rec *Record) (uint64, error) {
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		if l.poisoned {
			return 0, fmt.Errorf("wal: log poisoned by failed rollback (Probe repairs)")
		}
		return 0, fmt.Errorf("wal: log is closed")
	}
	l.seq++
	rec.Seq = l.seq

	payload := rec.appendPayload(make([]byte, frameBytes, frameBytes+256))
	body := payload[frameBytes:]
	binary.LittleEndian.PutUint32(payload, uint32(len(body)))
	binary.LittleEndian.PutUint32(payload[4:], crc32.Checksum(body, castagnoli))
	if n, err := l.f.Write(payload); err != nil {
		l.seq--
		// A short write leaves a torn frame mid-segment; a later
		// successful append after it would be masked at replay (the scan
		// stops at the first bad frame), silently discarding an
		// acknowledged record. Cut the file back to the last committed
		// boundary; if even that fails, poison the log — refusing further
		// appends is strictly safer than acknowledging unrecoverable ones.
		if n > 0 {
			if terr := l.f.Truncate(l.size); terr != nil {
				l.f.Close()
				l.f = nil
				l.poisoned = true
				return 0, fmt.Errorf("wal: %v; truncate after short write failed: %w", err, terr)
			}
		}
		return 0, err
	}
	l.size += int64(len(payload))
	l.records.Add(1)
	l.bytes.Add(uint64(len(body)))
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// The caller will report the batch as NOT applied, so the
			// record must not survive to replay: roll the segment back to
			// the pre-record boundary (poisoning the log if even that
			// fails). The write may or may not have reached the platter —
			// truncating removes both possibilities from future boots.
			l.seq--
			l.size -= int64(len(payload))
			l.records.Add(^uint64(0))
			l.bytes.Add(^uint64(uint64(len(body)) - 1))
			if terr := l.f.Truncate(l.size); terr != nil {
				l.f.Close()
				l.f = nil
				l.poisoned = true
				return 0, fmt.Errorf("wal: fsync: %v; rollback truncate failed: %w", err, terr)
			}
			return 0, err
		}
	}
	return l.seq, nil
}

func (l *Log) syncLocked() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	d := time.Since(t0)
	l.fsyncs.Add(1)
	l.fsyncNanos.Add(uint64(d))
	if l.fsyncObs != nil {
		l.fsyncObs(d)
	}
	l.dirty = false
	return nil
}

// SetFsyncObserver installs a callback receiving every fsync's wall
// duration (latency histograms hook in here). The callback runs under
// the log mutex and must be cheap.
func (l *Log) SetFsyncObserver(fn func(time.Duration)) {
	l.mu.Lock()
	l.fsyncObs = fn
	l.mu.Unlock()
}

// FsyncTotals returns the cumulative fsync count and wall nanoseconds.
// Unlike StatsSnapshot it touches no filesystem state (no directory
// listing), so the update hot path can read it per append to attribute
// fsync time to individual batches.
func (l *Log) FsyncTotals() (count, nanos uint64) {
	return l.fsyncs.Load(), l.fsyncNanos.Load()
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stopSync:
			return
		}
	}
}

// Rotate fsyncs and closes the current segment and starts the next
// one, returning the generation just sealed. Snapshots call it inside
// the update mutex: records at or below the returned generation are in
// the snapshot's fork; after the snapshot commits, TruncateThrough
// removes them.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	sealed := l.gen
	l.f = nil
	if err := l.createSegment(sealed + 1); err != nil {
		// The sealed segment is intact on disk; mark the log poisoned so
		// a later Probe can resume appending to it.
		l.poisoned = true
		return 0, err
	}
	return sealed, nil
}

// TruncateThrough removes segments with generation <= gen (never the
// current one). Call it only after the covering snapshot has committed.
func (l *Log) TruncateThrough(gen uint64) error {
	l.mu.Lock()
	cur := l.gen
	l.mu.Unlock()
	gens, err := listSegments(l.opts.Dir)
	if err != nil {
		return err
	}
	var first error
	for _, g := range gens {
		if g <= gen && g != cur {
			if err := l.fs.Remove(segPath(l.opts.Dir, g)); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// StatsSnapshot returns current counters.
func (l *Log) StatsSnapshot() Stats {
	gens, _ := listSegments(l.opts.Dir)
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return Stats{
		Enabled:    true,
		Segments:   len(gens),
		Seq:        seq,
		Records:    l.records.Load(),
		Bytes:      l.bytes.Load(),
		Fsyncs:     l.fsyncs.Load(),
		FsyncNanos: l.fsyncNanos.Load(),
		Policy:     l.opts.Sync.String(),
	}
}

// Close fsyncs and closes the log. Further Appends fail.
func (l *Log) Close() error {
	var err error
	l.closeOnce.Do(func() {
		if l.stopSync != nil {
			close(l.stopSync)
			<-l.syncDone
		}
		l.mu.Lock()
		defer l.mu.Unlock()
		l.closed = true
		if l.f == nil {
			return
		}
		err = l.syncLocked()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	})
	return err
}

// probeFile is the scratch file Probe writes in the log directory.
const probeFile = "wal-probe.tmp"

// Probe verifies the log's directory accepts durable writes again and
// repairs a poisoned log. It writes, fsyncs, and removes a scratch file
// through the same file operations appends use; on success, a log whose
// failed append could not be rolled back (appends refused since) is
// reopened with its tail segment truncated back to the last committed
// record boundary, restoring read-write service. The durability circuit
// breaker calls Probe from its background recovery loop.
func (l *Log) Probe() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	path := filepath.Join(l.opts.Dir, probeFile)
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("probe"))
	serr := f.Sync()
	cerr := f.Close()
	_ = l.fs.Remove(path)
	switch {
	case werr != nil:
		return werr
	case serr != nil:
		return serr
	case cerr != nil:
		return cerr
	}
	if l.f == nil && l.poisoned {
		// The disk answers again: cut the tail segment back to the last
		// committed boundary (dropping whatever the failed append left
		// behind) and resume appending on it. A half-created successor
		// segment from a failed Rotate holds no acknowledged records and
		// would collide with the next create; drop it.
		if gens, lerr := listSegments(l.opts.Dir); lerr == nil {
			for _, g := range gens {
				if g > l.gen {
					_ = l.fs.Remove(segPath(l.opts.Dir, g))
				}
			}
		}
		tail := segPath(l.opts.Dir, l.gen)
		f, err := l.fs.OpenFile(tail, os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		if err := f.Truncate(l.size); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		f.Close()
		// Reopen in append mode, matching the boot-time tail open.
		af, err := l.fs.OpenFile(tail, os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.f = af
		l.poisoned = false
		l.dirty = false
	}
	return nil
}
